(* Machine-readable bench export (bench/main.exe --json FILE).

   One self-contained measurement pass per index: YCSB throughput and
   per-op-type latency percentiles for every applicable workload, flush and
   fence counts per insert, simulated LLC misses per operation, and the
   per-site flush attribution from the observability registry.  Each index
   section carries both the site-summed totals and the legacy [Pmem.Stats]
   totals so consumers (and bench/check_json.ml under [dune runtest]) can
   check the attribution invariant: every flush lands on exactly one site,
   so the sums must be equal. *)

module J = Obs.Json
module H = Util.Histogram

(* Every index of the reproduction.  [ordered] doubles as scan support:
   workload E runs only on the ordered (tree) indexes. *)
let indexes =
  let space () = Recipe.Wordkey.int_space () in
  [
    ("P-ART", true, fun p -> Harness.Drivers.art p (Art.create ()));
    ("P-HOT", true, fun p -> Harness.Drivers.hot p (Hot.create ()));
    ("P-Masstree", true, fun p -> Harness.Drivers.masstree p (Masstree.create ()));
    ( "P-BwTree",
      true,
      fun p -> Harness.Drivers.bwtree p (Bwtree.create ~space:(space ()) ()) );
    ( "FAST&FAIR",
      true,
      fun p -> Harness.Drivers.fastfair p (Fastfair.create ~space:(space ()) ()) );
    ("WOART", true, fun p -> Harness.Drivers.woart p (Woart.create ()));
    ("P-CLHT", false, fun p -> Harness.Drivers.clht p (Clht.create ()));
    ("CCEH", false, fun p -> Harness.Drivers.cceh p (Cceh.create ()));
    ("Level", false, fun p -> Harness.Drivers.levelhash p (Levelhash.create ()));
  ]

let hist_json = function
  | Some h when H.count h > 0 ->
      J.Obj
        [
          ("count", J.int (H.count h));
          ("mean_ns", J.Num (H.mean h));
          ("p50_ns", J.int (H.percentile h 0.50));
          ("p99_ns", J.int (H.percentile h 0.99));
          ("p999_ns", J.int (H.percentile h 0.999));
        ]
  | _ -> J.Null

(* One (index, workload) cell: throughput + latency under the configured
   thread count, then LLC misses per op from a separate single-threaded run
   with the cache simulator on. *)
let workload_json cfg build w =
  let { Experiments.nloaded; nops; threads; seed; _ } = cfg in
  Experiments.reset_env ();
  let p =
    Ycsb.prepare ~workload:w ~kind:Ycsb.Randint ~nloaded ~nops ~threads ~seed ()
  in
  let d = build p in
  let r =
    if w = Ycsb.Load_a then Ycsb.load ~latency:true p d
    else begin
      ignore (Ycsb.load p d);
      Ycsb.run ~latency:true p d
    end
  in
  let llc = Experiments.llc_misses_per_op Ycsb.Randint build w nloaded nops in
  J.Obj
    [
      ("workload", J.Str (Ycsb.workload_name w));
      ("seed", J.int r.Ycsb.seed);
      ("ops", J.int r.Ycsb.ops);
      ("seconds", J.Num r.Ycsb.seconds);
      ("mops", J.Num r.Ycsb.mops);
      ("reads_found", J.int r.Ycsb.reads_found);
      ("reads_missed", J.int r.Ycsb.reads_missed);
      ("scanned_total", J.int r.Ycsb.scanned_total);
      ("llc_misses_per_op", J.Num llc);
      ( "latency",
        J.Obj
          [
            ("overall", hist_json r.Ycsb.latency);
            ("insert", hist_json r.Ycsb.lat_insert);
            ("read", hist_json r.Ycsb.lat_read);
            ("scan", hist_json r.Ycsb.lat_scan);
          ] );
    ]

(* Per-site flush/fence attribution over one load + workload-A run, against
   a registry zeroed by [reset_env].  Only sites that fired are listed
   (sorted by clwb count, descending, capped at [top_k] with the remainder
   noted); the totals are over *all* sites so the invariant check is exact
   regardless of the cap. *)
let site_attribution cfg build =
  let { Experiments.nloaded; nops; threads; seed; _ } = cfg in
  Experiments.reset_env ();
  let p =
    Ycsb.prepare ~workload:Ycsb.A ~kind:Ycsb.Randint ~nloaded ~nops ~threads
      ~seed ()
  in
  let d = build p in
  ignore (Ycsb.load p d);
  ignore (Ycsb.run p d);
  let stats = Pmem.Stats.snapshot () in
  let fired =
    List.filter
      (fun s -> Obs.Site.clwb_count s > 0 || Obs.Site.sfence_count s > 0)
      (Obs.Site.all ())
  in
  let clwb_total =
    List.fold_left (fun a s -> a + Obs.Site.clwb_count s) 0 fired
  and sfence_total =
    List.fold_left (fun a s -> a + Obs.Site.sfence_count s) 0 fired
  in
  let ranked =
    List.sort
      (fun a b -> compare (Obs.Site.clwb_count b) (Obs.Site.clwb_count a))
      fired
  in
  let top_k = 16 in
  let shown = List.filteri (fun i _ -> i < top_k) ranked in
  J.Obj
    [
      ("site_clwb_total", J.int clwb_total);
      ("site_sfence_total", J.int sfence_total);
      ("stats_clwb_total", J.int stats.Pmem.Stats.s_clwb);
      ("stats_sfence_total", J.int stats.Pmem.Stats.s_sfence);
      ("sites_fired", J.int (List.length fired));
      ("sites_listed", J.int (List.length shown));
      ( "attribution",
        J.List
          (List.map
             (fun s ->
               J.Obj
                 [
                   ("site", J.Str (Obs.Site.name s));
                   ("clwb", J.int (Obs.Site.clwb_count s));
                   ("sfence", J.int (Obs.Site.sfence_count s));
                 ])
             shown) );
    ]

let index_json cfg (name, ordered, build) =
  Printf.printf "json: measuring %s...\n%!" name;
  let workloads =
    if ordered then Ycsb.all_workloads
    else [ Ycsb.Load_a; Ycsb.A; Ycsb.B; Ycsb.C ]
  in
  let cells = List.map (workload_json cfg build) workloads in
  let clwb_ins, sfence_ins =
    Experiments.flush_counters ~nloaded:cfg.Experiments.nloaded build
  in
  let sites = site_attribution cfg build in
  J.Obj
    [
      ("name", J.Str name);
      ("ordered", J.Bool ordered);
      ("scan_supported", J.Bool ordered);
      ("workloads", J.List cells);
      ( "counters",
        J.Obj
          [
            ("clwb_per_insert", J.Num clwb_ins);
            ("sfence_per_insert", J.Num sfence_ins);
          ] );
      ("sites", sites);
    ]

(* Substrate accessor costs (the micro-pmem experiment): ns/op for the
   Words/Refs hot path, single-domain and aggregated over domains. *)
let micro_pmem_json cfg =
  Printf.printf "json: measuring micro-pmem...\n%!";
  let threads = max 2 cfg.Experiments.threads in
  let single, multi = Experiments.micro_pmem_measure ~threads () in
  let sanitize = Experiments.micro_pmem_sanitize_measure () in
  let rows l = J.Obj (List.map (fun (n, v) -> (n, J.Num v)) l) in
  J.Obj
    [
      ("threads", J.int threads);
      ("single_domain_ns_per_op", rows single);
      ("multi_domain_ns_per_op", rows multi);
      ( "sanitize_ns_per_op",
        J.Obj
          (List.map
             (fun (n, off, on_) ->
               ( n,
                 J.Obj
                   [
                     ("off", J.Num off);
                     ("on", J.Num on_);
                     ("ratio", J.Num (on_ /. off));
                   ] ))
             sanitize) );
    ]

(* Recovery-time table: one fault-injected recovery-under-load campaign per
   index (crashes at arbitrary substrate events, power failure, timed
   recovery, reclaiming leak sweep, resumed traffic).  Reports wall-clock
   recovery cost and structural-repair counts next to the zero-lost-acks
   verdict; check_json.ml requires the verdict columns to be zero. *)
let recovery_json ~smoke () =
  Printf.printf "json: measuring recovery...\n%!";
  let states = if smoke then 5 else 20
  and load = if smoke then 150 else 600 in
  let subjects =
    [
      ("P-ART", Harness.Subjects.art);
      ("P-HOT", Harness.Subjects.hot);
      ("P-Masstree", Harness.Subjects.masstree);
      ("P-BwTree", Harness.Subjects.bwtree);
      ("FAST&FAIR", fun () -> Harness.Subjects.fastfair ());
      ("WOART", Harness.Subjects.woart);
      ("P-CLHT", Harness.Subjects.clht);
      ("CCEH", fun () -> Harness.Subjects.cceh ());
      ("Level", Harness.Subjects.levelhash);
    ]
  in
  J.Obj
    (List.map
       (fun (name, make) ->
         let r =
           Crashtest.recovery_under_load_campaign ~make ~states ~load
             ~ops:load ~threads:4 ~seed:7 ~faults:true
             ~crash_during_recovery:false ()
         in
         let b = r.Crashtest.base and s = r.Crashtest.sweep_stats in
         let recoveries = max 1 r.Crashtest.recoveries in
         ( name,
           J.Obj
             [
               ("states", J.int b.Crashtest.states_tested);
               ("crashes", J.int b.Crashtest.crashes_fired);
               ("faults_injected", J.int r.Crashtest.faults_injected);
               ("recoveries", J.int r.Crashtest.recoveries);
               ("recover_ns_total", J.int r.Crashtest.recover_ns);
               ( "recover_ns_mean",
                 J.Num (float_of_int r.Crashtest.recover_ns /. float_of_int recoveries) );
               ("repaired", J.int s.Recipe.Recovery.repaired);
               ("orphans", J.int s.Recipe.Recovery.orphans);
               ("reclaimed", J.int s.Recipe.Recovery.reclaimed);
               ("lost", J.int b.Crashtest.lost_keys);
               ("wrong", J.int b.Crashtest.wrong_values);
               ("stalled", J.int b.Crashtest.stalled);
             ] ))
       subjects)

(* Batched-durability table: the KV service layer (lib/kvserve) over the
   standard grid — shard counts × {per_op, group, epoch} — driven with
   write-heavy overwrite traffic by the closed-loop load generator.  The
   rows come from {!Kvserve.Servebench.run_one}, the same measurement
   bin/kv_bench.exe prints, so the committed report and the CLI always
   agree; check_json.ml gates the cross-mode invariants (epoch batching is
   never a loss) on committed reports.  Full-size campaigns ack >= 51.2k
   ops per cell (4 workers x 800 requests x 16 ops) so p99s are
   populations, not a couple of histogram samples. *)
let serve_json ~smoke () =
  Printf.printf "json: measuring serve...\n%!";
  let requests = if smoke then 50 else 800
  and warmup_requests = if smoke then 10 else 50 in
  Experiments.reset_env ();
  Kvserve.Servebench.rows_json
    (Kvserve.Servebench.run_grid ~make:Harness.Kvparts.art
       ~shard_counts:[ 2; 4 ] ~batch:32 ~workers:4 ~requests ~warmup_requests
       ~ops_per_request:16 ~write_pct:100 ~key_space:64 ~seed:42 ())

let write cfg ~smoke file =
  let { Experiments.nloaded; nops; threads; seed; _ } = cfg in
  let doc =
    J.Obj
      [
        (* /3: serve rows carry persist_mode (per_op|group|epoch) and the
           breakdown gains the epoch_wait phase; check_json gates the
           epoch-never-a-loss invariants on committed reports. *)
        ("schema", J.Str "recipe-bench/3");
        ( "meta",
          J.Obj
            [
              ("nloaded", J.int nloaded);
              ("nops", J.int nops);
              ("threads", J.int threads);
              ("seed", J.int seed);
              ("smoke", J.Bool smoke);
              ("key_kind", J.Str "randint");
            ] );
        ("micro_pmem", micro_pmem_json cfg);
        ("recovery", recovery_json ~smoke ());
        ("serve", serve_json ~smoke ());
        ("indexes", J.List (List.map (index_json cfg) indexes));
      ]
  in
  let oc = open_out file in
  J.to_channel oc doc;
  close_out oc;
  Printf.printf "json: wrote %s\n%!" file
