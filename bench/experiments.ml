(* The experiment implementations behind every figure and table of the
   paper's evaluation (§7).  See DESIGN.md's per-experiment index (E1-E13)
   for the mapping. *)

type config = { nloaded : int; nops : int; threads : int; states : int; seed : int }

let reset_env () =
  Pmem.Mode.set_shadow false;
  Pmem.Llc.set_enabled false;
  Pmem.Crash.disarm ();
  ignore (Pmem.persist_everything ());
  Pmem.Stats.reset ();
  (* Zero the whole metrics registry (site counters, histograms, trace ring)
     so per-cell measurements never leak across experiments. *)
  Obs.reset_all ();
  Util.Lock.new_epoch ();
  Recipe.Persist.set_naive false

let space_of = function
  | Ycsb.Randint -> Recipe.Wordkey.int_space ()
  | Ycsb.Strkey -> Recipe.Wordkey.string_space ()

(* Fresh instance + driver per ordered index. *)
let ordered_indexes kind =
  [
    ( "FAST&FAIR",
      fun p -> Harness.Drivers.fastfair p (Fastfair.create ~space:(space_of kind) ()) );
    ( "P-BwTree",
      fun p -> Harness.Drivers.bwtree p (Bwtree.create ~space:(space_of kind) ()) );
    ("P-Masstree", fun p -> Harness.Drivers.masstree p (Masstree.create ()));
    ("P-ART", fun p -> Harness.Drivers.art p (Art.create ()));
    ("P-HOT", fun p -> Harness.Drivers.hot p (Hot.create ()));
  ]

let hash_indexes =
  [
    ("CCEH", fun p -> Harness.Drivers.cceh p (Cceh.create ()));
    ("Level", fun p -> Harness.Drivers.levelhash p (Levelhash.create ()));
    ("P-CLHT", fun p -> Harness.Drivers.clht p (Clht.create ()));
  ]

(* One (index, workload) cell: fresh index, load, then measure.  Load_a's
   measurement is the load phase itself. *)
let run_cell cfg kind build workload =
  reset_env ();
  let p =
    Ycsb.prepare ~workload ~kind ~nloaded:cfg.nloaded ~nops:cfg.nops
      ~threads:cfg.threads ~seed:cfg.seed ()
  in
  let d = build p in
  let loadres = Ycsb.load p d in
  if workload = Ycsb.Load_a then loadres else Ycsb.run p d

(* --- E1/E2: Fig 4a / 4b — ordered indexes, YCSB throughput ------------------- *)

let fig4 cfg kind =
  let workloads = Ycsb.all_workloads in
  let rows =
    List.map
      (fun (name, build) ->
        name
        :: List.map
             (fun w -> Report.f3 (run_cell cfg kind build w).Ycsb.mops)
             workloads)
      (ordered_indexes kind)
  in
  Report.print_table
    ~title:
      (Printf.sprintf "Fig 4%s: YCSB %s keys, ordered indexes, %d threads (Mops/s)"
         (if kind = Ycsb.Randint then "a" else "b")
         (if kind = Ycsb.Randint then "integer" else "string")
         cfg.threads)
    ~header:("Index" :: List.map Ycsb.workload_name workloads)
    rows

(* --- E5: Fig 5 — hash indexes, YCSB throughput --------------------------------- *)

let fig5 cfg =
  let workloads = [ Ycsb.Load_a; Ycsb.A; Ycsb.B; Ycsb.C ] in
  let rows =
    List.map
      (fun (name, build) ->
        name
        :: List.map
             (fun w -> Report.f3 (run_cell cfg Ycsb.Randint build w).Ycsb.mops)
             workloads)
      hash_indexes
  in
  Report.print_table
    ~title:
      (Printf.sprintf
         "Fig 5: YCSB integer keys, hash indexes, %d threads (Mops/s), 48KB start"
         cfg.threads)
    ~header:("Index" :: List.map Ycsb.workload_name workloads)
    rows

(* --- E3/E4/E6: Fig 4c / 4d / Table 4 — performance counters --------------------- *)

(* clwb and mfence per insert: measured single-threaded over the second half
   of a load (the table warm, rehashes amortized in). *)
let flush_counters ?(nloaded = 40_000) build =
  reset_env ();
  let p =
    Ycsb.prepare ~workload:Ycsb.Load_a ~kind:Ycsb.Randint ~nloaded ~nops:0
      ~threads:1 ~seed:7 ()
  in
  let d = build p in
  let half = Ycsb.nloaded p / 2 in
  for i = 0 to half - 1 do
    d.Ycsb.insert i
  done;
  let s0 = Pmem.Stats.snapshot () in
  for i = half to Ycsb.nloaded p - 1 do
    d.Ycsb.insert i
  done;
  let s = Pmem.Stats.(diff (snapshot ()) s0) in
  let per x = float_of_int x /. float_of_int half in
  (per s.Pmem.Stats.s_clwb, per s.Pmem.Stats.s_sfence)

(* LLC misses per operation for one workload, single-threaded with the
   cache simulator on (32 MB LLC, like the evaluation machine). *)
let llc_misses_per_op kind build workload nloaded nops =
  reset_env ();
  let p =
    Ycsb.prepare ~workload ~kind ~nloaded ~nops ~threads:1 ~seed:7 ()
  in
  let d = build p in
  (* The paper's dataset (64M keys) exceeds its 32 MB LLC ~200x.  The
     scaled-down runs keep a comparable dataset:cache ratio by shrinking
     the simulated LLC to 2 MB. *)
  Pmem.Llc.configure ~capacity_bytes:(2 * 1024 * 1024) ();
  Pmem.Llc.set_enabled true;
  Pmem.Llc.reset ();
  if workload = Ycsb.Load_a then begin
    (* Misses during the load itself, after a warm-up half. *)
    let half = nloaded / 2 in
    for i = 0 to half - 1 do
      d.Ycsb.insert i
    done;
    let m0 = Pmem.Llc.misses () in
    for i = half to nloaded - 1 do
      d.Ycsb.insert i
    done;
    let m = Pmem.Llc.misses () - m0 in
    Pmem.Llc.set_enabled false;
    float_of_int m /. float_of_int half
  end
  else begin
    ignore (Ycsb.load p d);
    let m0 = Pmem.Llc.misses () in
    let r = Ycsb.run p d in
    let m = Pmem.Llc.misses () - m0 in
    Pmem.Llc.set_enabled false;
    float_of_int m /. float_of_int r.Ycsb.ops
  end

let counters_table ~title kind indexes workloads ~nloaded ~nops =
  let rows =
    List.map
      (fun (name, build) ->
        let clwb, mfence = flush_counters build in
        (name :: [ Report.f2 clwb; Report.f2 mfence ])
        @ List.map
            (fun w -> Report.f2 (llc_misses_per_op kind build w nloaded nops))
            workloads)
      indexes
  in
  Report.print_table ~title
    ~header:
      (("Index" :: [ "clwb/ins"; "mfence/ins" ])
      @ List.map (fun w -> "LLC:" ^ Ycsb.workload_name w) workloads)
    rows

let fig4c () =
  counters_table ~title:"Fig 4c: counters, integer keys (per operation)"
    Ycsb.Randint
    (ordered_indexes Ycsb.Randint)
    Ycsb.all_workloads ~nloaded:200_000 ~nops:50_000

let fig4d () =
  counters_table ~title:"Fig 4d: counters, string keys (per operation)"
    Ycsb.Strkey
    (ordered_indexes Ycsb.Strkey)
    Ycsb.all_workloads ~nloaded:200_000 ~nops:50_000

let table4 () =
  counters_table ~title:"Table 4: counters, hash indexes, integer keys"
    Ycsb.Randint hash_indexes
    [ Ycsb.Load_a; Ycsb.A; Ycsb.B; Ycsb.C ]
    ~nloaded:200_000 ~nops:50_000

(* --- E8: §7.3 — P-ART vs WOART ----------------------------------------------------- *)

let woart_comparison cfg =
  let indexes =
    [
      ("P-ART", fun p -> Harness.Drivers.art p (Art.create ()));
      ("WOART", fun p -> Harness.Drivers.woart p (Woart.create ()));
    ]
  in
  let workloads = [ Ycsb.A; Ycsb.B; Ycsb.C; Ycsb.E ] in
  let cells =
    List.map
      (fun (name, build) ->
        ( name,
          List.map (fun w -> (run_cell cfg Ycsb.Randint build w).Ycsb.mops) workloads ))
      indexes
  in
  let rows =
    List.map (fun (name, xs) -> name :: List.map Report.f3 xs) cells
  in
  let art_runs = List.assoc "P-ART" cells and wo = List.assoc "WOART" cells in
  let speedups = List.map2 (fun a b -> a /. b) art_runs wo in
  Report.print_table
    ~title:
      (Printf.sprintf "§7.3: P-ART vs WOART (global lock), %d threads (Mops/s)"
         cfg.threads)
    ~header:("Index" :: List.map Ycsb.workload_name workloads)
    (rows @ [ "speedup" :: List.map Report.f2 speedups ]);
  Report.note
    "paper: P-ART outperforms WOART by 2-20x on multi-threaded YCSB.";
  Report.note
    "CAVEAT: that gap is lost parallelism from WOART's global lock; on a";
  Report.note
    "single hardware core (this container) no parallelism exists to lose,";
  Report.note
    "so the two run near parity here.  See DESIGN.md / EXPERIMENTS.md."

(* --- E9: §7.5 — crash-recovery campaign ---------------------------------------------- *)

let crash_campaign cfg =
  Report.section "§7.5: crash-recovery testing";
  let subjects =
    [
      ("P-CLHT", Harness.Subjects.clht);
      ("P-HOT", Harness.Subjects.hot);
      ("P-BwTree", Harness.Subjects.bwtree);
      ("P-ART", Harness.Subjects.art);
      ("P-Masstree", Harness.Subjects.masstree);
      ("FAST&FAIR", fun () -> Harness.Subjects.fastfair ());
      ("CCEH", fun () -> Harness.Subjects.cceh ());
      ("Level", Harness.Subjects.levelhash);
      ("WOART", Harness.Subjects.woart);
    ]
  in
  Printf.printf
    "consistency: %d crash states each; load=400 keys, 400 mixed ops on 4 threads\n"
    cfg.states;
  List.iter
    (fun (name, mk) ->
      let r =
        Crashtest.consistency_campaign ~make:mk ~states:cfg.states ~load:400
          ~ops:400 ~threads:4 ~seed:cfg.seed ()
      in
      Format.printf "  %-12s %a@." name Crashtest.pp_report r)
    subjects;
  print_endline "";
  print_endline "double-crash campaigns (crash during recovery-era writes too):";
  List.iter
    (fun (name, mk) ->
      let r =
        Crashtest.double_crash_campaign ~make:mk ~states:(cfg.states / 2)
          ~load:400 ~seed:cfg.seed ()
      in
      Format.printf "  %-12s %a@." name Crashtest.pp_report r)
    [
      ("P-CLHT", Harness.Subjects.clht);
      ("P-HOT", Harness.Subjects.hot);
      ("P-BwTree", Harness.Subjects.bwtree);
      ("P-ART", Harness.Subjects.art);
      ("P-Masstree", Harness.Subjects.masstree);
    ];
  print_endline "";
  print_endline "deterministic sweeps against the reproduced paper bugs:";
  let sweep name mk =
    let r = Crashtest.sweep ~make:mk ~points:20_000 ~stride:1 ~load:3_000 () in
    Format.printf "  %-18s %a@." name Crashtest.pp_report r
  in
  sweep "FAST&FAIR(buggy)" (fun () ->
      Harness.Subjects.fastfair ~bug_split_order:true ());
  sweep "CCEH(buggy)" (fun () -> Harness.Subjects.cceh ~bug_doubling:true ())

(* --- E10: §5 durability test ----------------------------------------------------------- *)

let durability () =
  Report.section "§5 durability: every dirtied cache line flushed per operation";
  List.iter
    (fun (name, mk) ->
      let v = Crashtest.durability_test ~make:mk ~inserts:2_000 ~seed:3 () in
      Printf.printf "  %-18s violations=%-3d -> %s\n" name v
        (if v = 0 then "PASS" else "FAIL"))
    [
      ("P-CLHT", Harness.Subjects.clht);
      ("P-HOT", Harness.Subjects.hot);
      ("P-BwTree", Harness.Subjects.bwtree);
      ("P-ART", Harness.Subjects.art);
      ("P-Masstree", Harness.Subjects.masstree);
      ("FAST&FAIR", fun () -> Harness.Subjects.fastfair ());
      ("CCEH", fun () -> Harness.Subjects.cceh ());
      ("Level", Harness.Subjects.levelhash);
      ("FAST&FAIR(buggy)", fun () -> Harness.Subjects.fastfair ~bug_root_flush:true ());
    ];
  Report.note "paper: the buggy baselines fail to persist the initial root"

(* --- E11: Tables 1 & 2 — the RECIPE taxonomy --------------------------------------------- *)

let taxonomy () =
  Report.section "Tables 1 & 2: the RECIPE taxonomy";
  List.iter
    (fun e -> Format.printf "  %a@." Recipe.Condition.pp_entry e)
    Recipe.Condition.converted

(* --- E12: bechamel micro-benchmarks -------------------------------------------------------- *)

let micro () =
  let open Bechamel in
  reset_env ();
  let preload = 50_000 in
  let keyspace = Array.init preload (fun i -> Util.Keys.encode_int ((i * 2) + 1)) in
  let mk_pair name insert lookup =
    let rng = Util.Rng.create 99 in
    [
      Test.make ~name:(name ^ "/insert")
        (Staged.stage (fun () -> insert (Util.Keys.encode_int (Util.Rng.key rng))));
      Test.make ~name:(name ^ "/lookup")
        (Staged.stage (fun () -> lookup keyspace.(Util.Rng.below rng preload)));
    ]
  in
  let art = Art.create () in
  Array.iter (fun k -> ignore (Art.insert art k 1)) keyspace;
  let hot = Hot.create () in
  Array.iter (fun k -> ignore (Hot.insert hot k 1)) keyspace;
  let mt = Masstree.create () in
  Array.iter (fun k -> ignore (Masstree.insert mt k 1)) keyspace;
  let bw = Bwtree.create ~space:(Recipe.Wordkey.int_space ()) () in
  Array.iter (fun k -> ignore (Bwtree.insert bw k 1)) keyspace;
  let ff = Fastfair.create ~space:(Recipe.Wordkey.int_space ()) () in
  Array.iter (fun k -> ignore (Fastfair.insert ff k 1)) keyspace;
  let clht = Clht.create () in
  Array.iter (fun k -> ignore (Clht.insert clht (Util.Keys.decode_int k) 1)) keyspace;
  let tests =
    List.concat
      [
        mk_pair "P-ART"
          (fun k -> ignore (Art.insert art k 1))
          (fun k -> ignore (Art.lookup art k));
        mk_pair "P-HOT"
          (fun k -> ignore (Hot.insert hot k 1))
          (fun k -> ignore (Hot.lookup hot k));
        mk_pair "P-Masstree"
          (fun k -> ignore (Masstree.insert mt k 1))
          (fun k -> ignore (Masstree.lookup mt k));
        mk_pair "P-BwTree"
          (fun k -> ignore (Bwtree.insert bw k 1))
          (fun k -> ignore (Bwtree.lookup bw k));
        mk_pair "FAST&FAIR"
          (fun k -> ignore (Fastfair.insert ff k 1))
          (fun k -> ignore (Fastfair.lookup ff k));
        mk_pair "P-CLHT"
          (fun k -> ignore (Clht.insert clht (Util.Keys.decode_int k) 1))
          (fun k -> ignore (Clht.lookup clht (Util.Keys.decode_int k)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw =
    Benchmark.all cfg
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"micro" tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (x :: _) -> x | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
    |> List.map (fun (name, ns) -> [ name; Report.f2 ns ])
  in
  Report.print_table ~title:"Bechamel micro-benchmarks (single op)"
    ~header:[ "benchmark"; "ns/op" ] rows

(* --- E19: micro-pmem — substrate accessor cost (ns/op) ----------------------------------------- *)

(* Raw cost of the {!Pmem.Words}/{!Pmem.Refs} hot-path accessors in fast
   mode (no shadow, no LLC probe): the floor every index operation pays per
   word touched.  Single-domain loops, then the same accessors aggregated
   over [threads] domains on disjoint objects (plus one deliberately shared
   CAS word).  Multi-domain rows report aggregate ns/op: wall time divided
   by total operations, so perfect scaling shows as single/threads. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let micro_pmem_measure ?(threads = 4) () =
  reset_env ();
  let module W = Pmem.Words in
  let module R = Pmem.Refs in
  let iters = 1_000_000 in
  let mask = 4095 in
  let time name f =
    f (iters / 10);
    (* warm-up *)
    let t0 = now_ns () in
    f iters;
    (name, float_of_int (now_ns () - t0) /. float_of_int iters)
  in
  let w = W.make ~name:"micro.words" (mask + 1) 0 in
  let wc = W.make ~name:"micro.cas" ~atomic_words:[ 0 ] 1 0 in
  let rf = R.make ~name:"micro.refs-flat" ~atomic:false (mask + 1) 0 in
  let ra = R.make ~name:"micro.refs-atomic" ~atomic:true (mask + 1) 0 in
  let sink = ref 0 in
  let single =
    [
      time "words_get" (fun n ->
          let acc = ref 0 in
          for i = 0 to n - 1 do
            acc := !acc + W.get w (i land mask)
          done;
          sink := !acc);
      time "words_set" (fun n ->
          for i = 0 to n - 1 do
            W.set w (i land mask) i
          done);
      time "words_cas" (fun n ->
          W.set wc 0 0;
          for i = 0 to n - 1 do
            ignore (W.cas wc 0 ~expected:i ~desired:(i + 1) : bool)
          done);
      time "words_clwb" (fun n ->
          for i = 0 to n - 1 do
            W.clwb w (i land mask)
          done);
      time "refs_get_flat" (fun n ->
          let acc = ref 0 in
          for i = 0 to n - 1 do
            acc := !acc + R.get rf (i land mask)
          done;
          sink := !acc);
      time "refs_get_atomic" (fun n ->
          let acc = ref 0 in
          for i = 0 to n - 1 do
            acc := !acc + R.get ra (i land mask)
          done;
          sink := !acc);
    ]
  in
  (* Multi-domain: a start barrier, then [threads] domains each running
     [per] iterations; ns/op is wall time over total ops. *)
  let run_domains body =
    let ready = Atomic.make 0 and go = Atomic.make false in
    let worker tid () =
      Atomic.incr ready;
      while not (Atomic.get go) do
        Domain.cpu_relax ()
      done;
      body tid
    in
    let ds = List.init threads (fun tid -> Domain.spawn (worker tid)) in
    while Atomic.get ready < threads do
      Domain.cpu_relax ()
    done;
    let t0 = now_ns () in
    Atomic.set go true;
    List.iter Domain.join ds;
    now_ns () - t0
  in
  let per = iters / threads in
  let mt name body =
    let dt = run_domains body in
    (name, float_of_int dt /. float_of_int (per * threads))
  in
  let ws = Array.init threads (fun _ -> W.make ~name:"micro.words-mt" (mask + 1) 0) in
  let multi =
    [
      mt "mt_words_get" (fun tid ->
          let w = ws.(tid) in
          let acc = ref 0 in
          for i = 0 to per - 1 do
            acc := !acc + W.get w (i land mask)
          done;
          sink := !acc);
      mt "mt_words_set" (fun tid ->
          let w = ws.(tid) in
          for i = 0 to per - 1 do
            W.set w (i land mask) i
          done);
      mt "mt_words_cas_shared" (fun _tid ->
          (* Contended read-modify-write on one shared atomic word. *)
          for _ = 1 to per do
            let rec bump () =
              let v = W.get wc 0 in
              if not (W.cas wc 0 ~expected:v ~desired:(v + 1)) then bump ()
            in
            bump ()
          done);
    ]
  in
  reset_env ();
  (single, multi)

(* Sanitize-off vs sanitize-on cost of the single-domain accessors: the
   PSan slow path takes a shard lock per event, so this runs fewer
   iterations and reports both columns plus the ratio.  The off column is
   remeasured here (not reused from [micro_pmem_measure]) so both numbers
   come from the same loop shapes and iteration count. *)
let micro_pmem_sanitize_measure () =
  reset_env ();
  let module W = Pmem.Words in
  let module R = Pmem.Refs in
  let iters = 100_000 in
  let mask = 4095 in
  let time f =
    f (iters / 10);
    (* warm-up *)
    let t0 = now_ns () in
    f iters;
    float_of_int (now_ns () - t0) /. float_of_int iters
  in
  let w = W.make ~name:"micro.words" (mask + 1) 0 in
  let wc = W.make ~name:"micro.cas" ~atomic_words:[ 0 ] 1 0 in
  let rf = R.make ~name:"micro.refs-flat" ~atomic:false (mask + 1) 0 in
  let ra = R.make ~name:"micro.refs-atomic" ~atomic:true (mask + 1) 0 in
  let sink = ref 0 in
  let ops =
    [
      ( "words_get",
        fun n ->
          let acc = ref 0 in
          for i = 0 to n - 1 do
            acc := !acc + W.get w (i land mask)
          done;
          sink := !acc );
      ( "words_set",
        fun n ->
          for i = 0 to n - 1 do
            W.set w (i land mask) i
          done );
      ( "words_cas",
        fun n ->
          W.set wc 0 0;
          for i = 0 to n - 1 do
            ignore (W.cas wc 0 ~expected:i ~desired:(i + 1) : bool)
          done );
      ( "words_clwb",
        fun n ->
          for i = 0 to n - 1 do
            W.clwb w (i land mask)
          done );
      ( "refs_get_flat",
        fun n ->
          let acc = ref 0 in
          for i = 0 to n - 1 do
            acc := !acc + R.get rf (i land mask)
          done;
          sink := !acc );
      ( "refs_get_atomic",
        fun n ->
          let acc = ref 0 in
          for i = 0 to n - 1 do
            acc := !acc + R.get ra (i land mask)
          done;
          sink := !acc );
    ]
  in
  let off = List.map (fun (n, f) -> (n, time f)) ops in
  Psan.enable ();
  let on_ = List.map (fun (n, f) -> (n, time f)) ops in
  Psan.disable ();
  (* The raw accessor loops never publish, so a clean run reports nothing;
     clear anyway so a diagnostics-asserting caller is never polluted. *)
  Obs.Diag.clear ();
  reset_env ();
  List.map2 (fun (n, o) (_, s) -> (n, o, s)) off on_

let micro_pmem cfg =
  let threads = max 2 cfg.threads in
  let single, multi = micro_pmem_measure ~threads () in
  Report.print_table
    ~title:"micro-pmem: substrate accessor cost, single domain (fast mode)"
    ~header:[ "op"; "ns/op" ]
    (List.map (fun (n, v) -> [ n; Report.f2 v ]) single);
  Report.print_table
    ~title:
      (Printf.sprintf
         "micro-pmem: %d domains, disjoint objects (aggregate ns/op)" threads)
    ~header:[ "op"; "ns/op" ]
    (List.map (fun (n, v) -> [ n; Report.f2 v ]) multi);
  Report.print_table
    ~title:"micro-pmem: PSan sanitizer overhead, single domain"
    ~header:[ "op"; "off ns/op"; "on ns/op"; "ratio" ]
    (List.map
       (fun (n, o, s) -> [ n; Report.f2 o; Report.f2 s; Report.f2 (s /. o) ])
       (micro_pmem_sanitize_measure ()))

(* --- E13: ablation — literal vs coalesced conversion flushes -------------------------------- *)

let ablation cfg =
  Report.section
    "Ablation (§8): flush-after-every-store vs hand-coalesced flushes";
  let measure name build =
    List.iter
      (fun naive ->
        reset_env ();
        Recipe.Persist.set_naive naive;
        let p =
          Ycsb.prepare ~workload:Ycsb.Load_a ~kind:Ycsb.Randint
            ~nloaded:cfg.nloaded ~nops:0 ~threads:1 ~seed:cfg.seed ()
        in
        let d = build p in
        let s0 = Pmem.Stats.snapshot () in
        let r = Ycsb.load p d in
        let s = Pmem.Stats.(diff (snapshot ()) s0) in
        let per x = float_of_int x /. float_of_int cfg.nloaded in
        Printf.printf
          "  %-10s %-9s  %6.2f clwb/ins  %6.2f mfence/ins  %8.3f Mops/s\n" name
          (if naive then "naive" else "coalesced")
          (per s.Pmem.Stats.s_clwb)
          (per s.Pmem.Stats.s_sfence)
          r.Ycsb.mops)
      [ false; true ];
    Recipe.Persist.set_naive false
  in
  measure "P-CLHT" (fun p -> Harness.Drivers.clht p (Clht.create ()));
  measure "P-ART" (fun p -> Harness.Drivers.art p (Art.create ()));
  measure "P-Masstree" (fun p -> Harness.Drivers.masstree p (Masstree.create ()))

(* --- E7: single-thread CLHT vs CCEH gap ------------------------------------------------------- *)

let single_thread_hash cfg =
  Report.section "§7.2: P-CLHT vs CCEH, single thread, insert-only (Load A)";
  List.iter
    (fun (name, build) ->
      let r = run_cell { cfg with threads = 1 } Ycsb.Randint build Ycsb.Load_a in
      Printf.printf "  %-8s %8.3f Mops/s\n" name r.Ycsb.mops)
    [
      ("P-CLHT", fun p -> Harness.Drivers.clht p (Clht.create ()));
      ("CCEH", fun p -> Harness.Drivers.cceh p (Cceh.create ()));
    ];
  Report.note "paper: single-threaded P-CLHT is only ~12%% slower than CCEH"

(* --- E14: extension — conversion overhead (DRAM vs PM builds) ------------------ *)

(* The RECIPE thesis is that a converted index inherits its DRAM ancestor's
   performance, paying only for flushes and fences.  Measure each converted
   index with persistence on and off (clwb/sfence as no-ops). *)
let conversion_overhead cfg =
  Report.section
    "Extension: conversion overhead — same index, persistence on vs off";
  let indexes =
    [
      ("P-CLHT", fun p -> Harness.Drivers.clht p (Clht.create ()));
      ("P-ART", fun p -> Harness.Drivers.art p (Art.create ()));
      ("P-HOT", fun p -> Harness.Drivers.hot p (Hot.create ()));
      ("P-Masstree", fun p -> Harness.Drivers.masstree p (Masstree.create ()));
      ( "P-BwTree",
        fun p ->
          Harness.Drivers.bwtree p
            (Bwtree.create ~space:(Recipe.Wordkey.int_space ()) ()) );
    ]
  in
  List.iter
    (fun (name, build) ->
      let measure dram =
        reset_env ();
        Pmem.Mode.set_dram dram;
        (* Charge realistic write-path costs per flush/fence (~Optane DC
           write latency) so the conversion's cost is visible at all. *)
        if not dram then Pmem.Latency.set ~flush:100 ~fence:30;
        let p =
          Ycsb.prepare ~workload:Ycsb.Load_a ~kind:Ycsb.Randint
            ~nloaded:cfg.nloaded ~nops:0 ~threads:1 ~seed:cfg.seed ()
        in
        let r = Ycsb.load p (build p) in
        Pmem.Mode.set_dram false;
        Pmem.Latency.set ~flush:0 ~fence:0;
        r.Ycsb.mops
      in
      let pm = measure false and dram = measure true in
      Printf.printf
        "  %-12s DRAM %8.3f Mops/s   PM %8.3f Mops/s   overhead %4.1f%%\n" name
        dram pm
        (100.0 *. (dram -. pm) /. Float.max dram 1e-9))
    indexes;
  Report.note
    "paper thesis: converted indexes inherit DRAM performance, paying only";
  Report.note
    "for flushes and fences (charged here at 100ns/clwb + 30ns/fence)"

(* --- E15: extension — instant recovery vs DRAM rebuild (§2.4) ------------------- *)

let recovery_time cfg =
  Report.section
    "Extension (§2.4): PM index recovery vs rebuilding a DRAM index";
  let n = cfg.nloaded in
  let cases =
    [
      ( "P-CLHT",
        fun () ->
          let t = Clht.create () in
          let insert k = ignore (Clht.insert t k k) in
          let recover () = Clht.recover t in
          (insert, recover) );
      ( "P-ART",
        fun () ->
          let t = Art.create () in
          let insert k = ignore (Art.insert t (Util.Keys.encode_int k) k) in
          let recover () = Art.recover t in
          (insert, recover) );
      ( "P-Masstree",
        fun () ->
          let t = Masstree.create () in
          let insert k = ignore (Masstree.insert t (Util.Keys.encode_int k) k) in
          let recover () = Masstree.recover t in
          (insert, recover) );
    ]
  in
  List.iter
    (fun (name, mk) ->
      reset_env ();
      let insert, recover = mk () in
      (* Build once (this is the PM index's persistent state). *)
      let t0 = Unix.gettimeofday () in
      for k = 1 to n do
        insert k
      done;
      let build_s = Unix.gettimeofday () -. t0 in
      (* PM restart: recovery is lock re-initialization only. *)
      let t0 = Unix.gettimeofday () in
      recover ();
      let recover_s = Unix.gettimeofday () -. t0 in
      (* A DRAM index would re-insert everything after restart: the build
         time IS its recovery time. *)
      Printf.printf
        "  %-12s %d keys: DRAM rebuild %8.3f ms   PM recovery %8.4f ms  (%.0fx)\n"
        name n (build_s *. 1e3) (recover_s *. 1e3)
        (build_s /. Float.max recover_s 1e-9))
    cases;
  Report.note "paper §2.4: a PM index is instantly available after restart"

(* --- E16: extension — Zipfian skew on the hash indexes --------------------------- *)

let zipfian cfg =
  Report.section
    "Extension: uniform vs scrambled-Zipfian(0.99) reads, hash indexes";
  let workloads = [ (Ycsb.Uniform, "uniform"); (Ycsb.Zipfian 0.99, "zipf99") ] in
  List.iter
    (fun (name, build) ->
      let cells =
        List.map
          (fun (dist, dname) ->
            reset_env ();
            let p =
              Ycsb.prepare ~workload:Ycsb.C ~kind:Ycsb.Randint ~dist
                ~nloaded:cfg.nloaded ~nops:cfg.nops ~threads:cfg.threads
                ~seed:cfg.seed ()
            in
            let d = build p in
            ignore (Ycsb.load p d);
            (dname, (Ycsb.run p d).Ycsb.mops))
          workloads
      in
      Printf.printf "  %-8s %s\n" name
        (String.concat "   "
           (List.map (fun (dn, m) -> Printf.sprintf "%s %8.3f Mops/s" dn m) cells)))
    hash_indexes;
  Report.note
    "skew concentrates hits on a few cache lines: Zipfian reads run hotter"

(* --- E17: extension — per-operation latency percentiles --------------------------- *)

let latency cfg =
  Report.section "Extension: per-operation latency percentiles (workload A)";
  let indexes =
    [
      ("P-CLHT", fun p -> Harness.Drivers.clht p (Clht.create ()));
      ("P-ART", fun p -> Harness.Drivers.art p (Art.create ()));
      ( "FAST&FAIR",
        fun p ->
          Harness.Drivers.fastfair p
            (Fastfair.create ~space:(Recipe.Wordkey.int_space ()) ()) );
      ("P-Masstree", fun p -> Harness.Drivers.masstree p (Masstree.create ()));
    ]
  in
  List.iter
    (fun (name, build) ->
      reset_env ();
      let p =
        Ycsb.prepare ~workload:Ycsb.A ~kind:Ycsb.Randint ~nloaded:cfg.nloaded
          ~nops:cfg.nops ~threads:cfg.threads ~seed:cfg.seed ()
      in
      let d = build p in
      ignore (Ycsb.load p d);
      let r = Ycsb.run ~latency:true p d in
      match r.Ycsb.latency with
      | Some h ->
          Printf.printf
            "  %-12s p50 %7d ns   p99 %8d ns   p99.9 %8d ns   mean %7.0f ns\n"
            name
            (Util.Histogram.percentile h 0.50)
            (Util.Histogram.percentile h 0.99)
            (Util.Histogram.percentile h 0.999)
            (Util.Histogram.mean h)
      | None -> ())
    indexes
