(* Validator for bench/main.exe --json reports, run under [dune runtest]
   against a freshly generated smoke report.  Checks that the file parses,
   that every index of the reproduction is present with workload cells and
   latency percentiles, and that the per-site flush attribution sums to the
   legacy Stats totals (the exporter's core invariant). *)

module J = Obs.Json

let required_indexes =
  [
    "P-ART"; "P-HOT"; "P-Masstree"; "P-BwTree"; "FAST&FAIR"; "WOART";
    "P-CLHT"; "CCEH"; "Level";
  ]

let fail fmt = Printf.ksprintf failwith fmt

let get o k =
  match J.member k o with Some v -> v | None -> fail "missing field %S" k

let num ctx v =
  match J.to_num v with Some f -> f | None -> fail "%s: expected a number" ctx

let check_latency name w =
  let lat = get w "latency" in
  let overall = get lat "overall" in
  match overall with
  | J.Null -> () (* cell measured zero samples; legal for tiny smoke runs *)
  | o ->
      let p50 = num (name ^ ".p50") (get o "p50_ns")
      and p99 = num (name ^ ".p99") (get o "p99_ns")
      and p999 = num (name ^ ".p999") (get o "p999_ns") in
      if p50 > p99 then fail "%s: p50 (%g) > p99 (%g)" name p50 p99;
      if p99 > p999 then fail "%s: p99 (%g) > p99.9 (%g)" name p99 p999;
      (* Every op class present in the cell must also carry percentiles. *)
      List.iter
        (fun cls ->
          match J.member cls lat with
          | Some (J.Obj _) | Some J.Null -> ()
          | _ -> fail "%s: latency.%s malformed" name cls)
        [ "insert"; "read"; "scan" ]

let check_workload name w =
  let wname =
    match J.to_str (get w "workload") with
    | Some s -> s
    | None -> fail "%s: workload name missing" name
  in
  let ctx = name ^ "/" ^ wname in
  let mops = num (ctx ^ ".mops") (get w "mops") in
  if not (mops >= 0.0) then fail "%s: negative throughput" ctx;
  let llc = num (ctx ^ ".llc") (get w "llc_misses_per_op") in
  if not (llc >= 0.0) then fail "%s: negative LLC misses" ctx;
  check_latency ctx w;
  wname

let check_sites name ix =
  let s = get ix "sites" in
  let n k = num (name ^ "." ^ k) (get s k) in
  let sc = n "site_clwb_total" and tc = n "stats_clwb_total" in
  if sc <> tc then
    fail "%s: site clwb sum %g <> Stats total %g — attribution leak" name sc tc;
  let ss = n "site_sfence_total" and ts = n "stats_sfence_total" in
  if ss <> ts then
    fail "%s: site sfence sum %g <> Stats total %g — attribution leak" name ss
      ts;
  match J.to_list (get s "attribution") with
  | None -> fail "%s: attribution not a list" name
  | Some rows ->
      List.iter
        (fun r ->
          match J.to_str (get r "site") with
          | Some _ -> ()
          | None -> fail "%s: attribution row without a site name" name)
        rows

let check_index ix =
  let name =
    match J.to_str (get ix "name") with
    | Some s -> s
    | None -> fail "index without a name"
  in
  let wls =
    match J.to_list (get ix "workloads") with
    | Some [] -> fail "%s: no workload cells" name
    | Some l -> l
    | None -> fail "%s: workloads not a list" name
  in
  let wnames = List.map (check_workload name) wls in
  (match J.member "scan_supported" ix with
  | Some (J.Bool true) ->
      if not (List.mem "E" wnames) then
        fail "%s: scan-capable but workload E missing" name
  | Some (J.Bool false) ->
      if List.mem "E" wnames then
        fail "%s: unordered index must not report workload E" name
  | _ -> fail "%s: scan_supported missing" name);
  check_sites name ix;
  ignore (get ix "counters");
  name

(* The micro-pmem section: every substrate accessor must report a finite,
   non-negative ns/op, in both the single- and multi-domain tables. *)
let check_micro_pmem doc =
  let m = get doc "micro_pmem" in
  let table key required =
    match get m key with
    | J.Obj rows ->
        List.iter
          (fun (n, v) ->
            let x = num ("micro_pmem." ^ key ^ "." ^ n) v in
            if not (x >= 0.0 && Float.is_finite x) then
              fail "micro_pmem.%s.%s: bad ns/op %g" key n x)
          rows;
        List.iter
          (fun r ->
            if not (List.mem_assoc r rows) then
              fail "micro_pmem.%s: required op %S missing" key r)
          required
    | _ -> fail "micro_pmem.%s: not an object" key
  in
  table "single_domain_ns_per_op"
    [ "words_get"; "words_set"; "words_cas"; "words_clwb" ];
  table "multi_domain_ns_per_op" [ "mt_words_get"; "mt_words_cas_shared" ];
  (* The sanitizer-overhead table arrived after the first committed reports;
     validate it only when present so older reports keep checking. *)
  match J.member "sanitize_ns_per_op" m with
  | None -> ()
  | Some (J.Obj rows) ->
      List.iter
        (fun (n, v) ->
          let cell k =
            num
              ("micro_pmem.sanitize_ns_per_op." ^ n ^ "." ^ k)
              (get v k)
          in
          let off = cell "off" and on_ = cell "on" in
          ignore (cell "ratio");
          if not (off >= 0.0 && Float.is_finite off) then
            fail "micro_pmem.sanitize_ns_per_op.%s: bad off ns/op %g" n off;
          if not (on_ >= 0.0 && Float.is_finite on_) then
            fail "micro_pmem.sanitize_ns_per_op.%s: bad on ns/op %g" n on_)
        rows
  | Some _ -> fail "micro_pmem.sanitize_ns_per_op: not an object"

(* The recovery table arrived with the fault-injection subsystem; validate
   it only when present so older reports keep checking.  When present it
   must cover every index, carry well-formed counters, and report a clean
   verdict: zero lost acknowledged operations, zero wrong values, zero
   stalls — the recovery-under-load invariant is part of the schema, not
   just of the test suite. *)
let check_recovery doc =
  match J.member "recovery" doc with
  | None -> ()
  | Some (J.Obj rows) ->
      List.iter
        (fun (name, v) ->
          let cell k = num ("recovery." ^ name ^ "." ^ k) (get v k) in
          let states = cell "states" and recoveries = cell "recoveries" in
          if states < 1.0 then fail "recovery.%s: no states tested" name;
          if recoveries < states then
            fail "recovery.%s: fewer recoveries (%g) than states (%g)" name
              recoveries states;
          List.iter
            (fun k ->
              if cell k < 0.0 then fail "recovery.%s: negative %s" name k)
            [
              "crashes"; "faults_injected"; "recover_ns_total";
              "recover_ns_mean"; "repaired"; "orphans"; "reclaimed";
            ];
          List.iter
            (fun k ->
              if cell k <> 0.0 then
                fail "recovery.%s: %s = %g — recovery lost acknowledged work"
                  name k (cell k))
            [ "lost"; "wrong"; "stalled" ])
        rows;
      List.iter
        (fun r ->
          if not (List.mem_assoc r rows) then
            fail "recovery: required index %S missing" r)
        required_indexes
  | Some _ -> fail "recovery: not an object"

(* The serve table arrived with the KV service layer (lib/kvserve);
   validate it only when present so older reports keep checking.  When
   present it must sweep at least two shard counts with both the
   group-persist and per-op-persist rows for each, every row well-formed,
   and batching must not increase flushes per operation — and must strictly
   reduce fences per operation — versus the per-op ablation on the same
   traffic.  The batching win is part of the schema, not just a claim.

   From schema recipe-bench/2 every serve row must additionally carry the
   [latency_breakdown] table: one entry per (shard, phase), percentiles
   ordered, spans actually sampled, and — since per span the pipeline
   phases sum to at most ack by construction — the phase means must sum to
   at most the ack mean (within tolerance for histogram bucketing).  That
   last inequality is what makes the breakdown an *attribution* of ack
   latency rather than an unrelated measurement.

   From schema recipe-bench/3 rows carry [persist_mode]
   ("per_op"|"group"|"epoch") instead of the [group_persist] bool, the
   breakdown gains the epoch_wait phase (parked / batch-tail wait, split
   out of fence), every shard count must sweep all three modes, and —
   unless perf gates are waived for freshly generated smoke reports — the
   epoch mode must never be a loss: sfence/op at or below group mode's,
   throughput at or above per-op mode's, ack p99 within 2x per-op mode's.
   Committed BENCH_pr7+.json reports are validated with the gates on. *)
let serve_phases ~version =
  if version >= 3 then [ "queue"; "apply"; "epoch_wait"; "fence"; "ack" ]
  else [ "queue"; "apply"; "fence"; "ack" ]

let check_breakdown ~version ix shards r =
  let entries =
    match J.to_list (get r "latency_breakdown") with
    | Some l -> l
    | None -> fail "serve.%s: latency_breakdown not a list" ix
  in
  let parsed =
    List.map
      (fun e ->
        let ctx = "serve." ^ ix ^ ".latency_breakdown" in
        let sid = int_of_float (num (ctx ^ ".shard") (get e "shard")) in
        let phase =
          match J.to_str (get e "phase") with
          | Some p when List.mem p (serve_phases ~version) -> p
          | Some p -> fail "%s: unknown phase %S" ctx p
          | None -> fail "%s: phase missing" ctx
        in
        let n k = num (Printf.sprintf "%s.%d.%s.%s" ctx sid phase k) (get e k) in
        let count = n "count"
        and mean = n "mean_ns"
        and p50 = n "p50_ns"
        and p99 = n "p99_ns" in
        if count < 0.0 then fail "%s: negative count" ctx;
        if count > 0.0 && p50 > p99 then
          fail "%s: %d/%s p50 (%g) > p99 (%g)" ctx sid phase p50 p99;
        ((sid, phase), (count, mean)))
      entries
  in
  let lookup sid phase =
    match List.assoc_opt (sid, phase) parsed with
    | Some v -> v
    | None -> fail "serve.%s: breakdown missing shard %d phase %s" ix sid phase
  in
  let total_acks = ref 0.0 in
  for sid = 0 to shards - 1 do
    let sum_parts =
      List.fold_left
        (fun a phase -> a +. snd (lookup sid phase))
        0.0
        (List.filter (fun p -> p <> "ack") (serve_phases ~version))
    in
    let ack_count, ack_mean = lookup sid "ack" in
    total_acks := !total_acks +. ack_count;
    (* 5% + 1us slack: histogram means are exact sums but the phases are
       stamped with separate clock reads, so allow measurement noise. *)
    if ack_count > 0.0 && sum_parts > (ack_mean *. 1.05) +. 1000.0 then
      fail "serve.%s: shard %d phases sum %.0fns > ack mean %.0fns" ix sid
        sum_parts ack_mean
  done;
  if !total_acks <= 0.0 then
    fail "serve.%s: breakdown has no samples — spans were not enabled" ix

(* One parsed serve row: the fields the cross-mode gates compare. *)
type serve_row = {
  sr_shards : int;
  sr_mode : string;  (* "per_op" | "group" | "epoch" *)
  sr_clwb : float;
  sr_sfence : float;
  sr_kops : float;
  sr_ack_p99 : float;
}

let check_serve ~version ~perf_gates doc =
  match J.member "serve" doc with
  | None -> ()
  | Some (J.List rows) ->
      let parsed =
        List.map
          (fun r ->
            let ix =
              match J.to_str (get r "index") with
              | Some s -> s
              | None -> fail "serve: row without an index name"
            in
            let cell k = num ("serve." ^ ix ^ "." ^ k) (get r k) in
            let mode =
              if version >= 3 then
                match J.to_str (get r "persist_mode") with
                | Some (("per_op" | "group" | "epoch") as m) -> m
                | Some m -> fail "serve.%s: unknown persist_mode %S" ix m
                | None -> fail "serve.%s: persist_mode missing" ix
              else
                match J.member "group_persist" r with
                | Some (J.Bool b) -> if b then "group" else "per_op"
                | _ -> fail "serve.%s: group_persist missing" ix
            in
            if cell "batch" < 1.0 then fail "serve.%s: batch < 1" ix;
            if cell "ops_acked" <= 0.0 then fail "serve.%s: no acked ops" ix;
            ignore (cell "seed");
            let kops = cell "kops" in
            if not (kops >= 0.0 && Float.is_finite kops) then
              fail "serve.%s: bad throughput %g" ix kops;
            if cell "ack_p50_ns" > cell "ack_p99_ns" then
              fail "serve.%s: ack p50 > p99" ix;
            if cell "mean_batch_ops" < 1.0 then
              fail "serve.%s: batches below one op" ix;
            if version >= 2 then
              check_breakdown ~version ix (int_of_float (cell "shards")) r;
            {
              sr_shards = int_of_float (cell "shards");
              sr_mode = mode;
              sr_clwb = cell "clwb_per_op";
              sr_sfence = cell "sfence_per_op";
              sr_kops = kops;
              sr_ack_p99 = cell "ack_p99_ns";
            })
          rows
      in
      let shard_counts =
        List.sort_uniq compare (List.map (fun r -> r.sr_shards) parsed)
      in
      if List.length shard_counts < 2 then
        fail "serve: %d shard count(s) measured, need >= 2"
          (List.length shard_counts);
      List.iter
        (fun sc ->
          let cell m =
            match
              List.find_opt
                (fun r -> r.sr_shards = sc && r.sr_mode = m)
                parsed
            with
            | Some r -> r
            | None -> fail "serve: shard count %d missing %s row" sc m
          in
          let group = cell "group" and per_op = cell "per_op" in
          if group.sr_clwb > per_op.sr_clwb then
            fail "serve: %d shards: batching RAISED clwb/op (%g > %g)" sc
              group.sr_clwb per_op.sr_clwb;
          if group.sr_sfence >= per_op.sr_sfence then
            fail "serve: %d shards: batching did not reduce sfence/op (%g >= %g)"
              sc group.sr_sfence per_op.sr_sfence;
          if version >= 3 then begin
            let epoch = cell "epoch" in
            if epoch.sr_clwb > per_op.sr_clwb then
              fail "serve: %d shards: epoch mode RAISED clwb/op (%g > %g)" sc
                epoch.sr_clwb per_op.sr_clwb;
            (* Batching-is-never-a-loss: these compare timing-dependent
               numbers across cells, so freshly generated smoke reports may
               waive them (--no-perf-gates); committed campaign reports are
               validated with them on. *)
            if perf_gates then begin
              if epoch.sr_sfence > group.sr_sfence then
                fail
                  "serve: %d shards: epoch sfence/op %g above group mode's %g"
                  sc epoch.sr_sfence group.sr_sfence;
              (* 5% noise floor: with the simulator's near-free flushes the
                 epoch win over per-op is small, and closed-loop throughput
                 jitters a few percent run to run — the gate catches a real
                 regression, not an unlucky draw. *)
              if epoch.sr_kops < 0.95 *. per_op.sr_kops then
                fail
                  "serve: %d shards: epoch throughput %g kops below 0.95x \
                   per-op's %g"
                  sc epoch.sr_kops per_op.sr_kops;
              if epoch.sr_ack_p99 > 2.0 *. per_op.sr_ack_p99 then
                fail
                  "serve: %d shards: epoch ack p99 %gns above 2x per-op's %gns"
                  sc epoch.sr_ack_p99 per_op.sr_ack_p99
            end
          end)
        shard_counts
  | Some _ -> fail "serve: not a list"

let run ~perf_gates file =
  let s = In_channel.with_open_text file In_channel.input_all in
  let doc =
    match J.parse s with
    | Ok v -> v
    | Error e -> fail "%s does not parse: %s" file e
  in
  ignore (get doc "meta");
  let version =
    match Option.bind (J.member "schema" doc) J.to_str with
    | Some "recipe-bench/1" -> 1
    | Some "recipe-bench/2" -> 2
    | Some "recipe-bench/3" -> 3
    | Some s -> fail "unknown schema %S" s
    | None -> fail "schema missing"
  in
  check_micro_pmem doc;
  check_recovery doc;
  check_serve ~version ~perf_gates doc;
  let idxs =
    match J.to_list (get doc "indexes") with
    | Some l -> l
    | None -> fail "indexes not a list"
  in
  let names = List.map check_index idxs in
  List.iter
    (fun r ->
      if not (List.mem r names) then fail "required index %S missing" r)
    required_indexes;
  Printf.printf "check_json: %s OK (%d indexes%s)\n" file (List.length names)
    (if perf_gates then "" else ", perf gates waived")

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let perf_gates = not (List.mem "--no-perf-gates" args) in
  match List.filter (fun a -> a <> "--no-perf-gates") args with
  | [ file ] -> (
      try run ~perf_gates file
      with Failure m ->
        prerr_endline ("check_json: " ^ m);
        exit 1)
  | _ ->
      prerr_endline "usage: check_json [--no-perf-gates] FILE.json";
      exit 2
