(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (§7).  Run with no arguments for a scaled-down pass over all
   experiments, or name specific ones:

     dune exec bench/main.exe -- fig4a fig5 --keys 1000000 --threads 8

   Experiments: fig4a fig4b fig4c fig4d fig5 table4 woart crash durability
   taxonomy micro ablation single  (see DESIGN.md, E1-E13). *)

open Cmdliner

let all_experiments =
  [
    "fig4a"; "fig4b"; "fig4c"; "fig4d"; "fig5"; "table4"; "woart"; "crash";
    "durability"; "taxonomy"; "micro"; "micro-pmem"; "ablation"; "single";
    "overhead"; "recovery"; "zipf"; "latency";
  ]

let run_experiment cfg name =
  match name with
  | "fig4a" -> Experiments.fig4 cfg Ycsb.Randint
  | "fig4b" -> Experiments.fig4 cfg Ycsb.Strkey
  | "fig4c" -> Experiments.fig4c ()
  | "fig4d" -> Experiments.fig4d ()
  | "fig5" -> Experiments.fig5 cfg
  | "table4" -> Experiments.table4 ()
  | "woart" -> Experiments.woart_comparison cfg
  | "crash" -> Experiments.crash_campaign cfg
  | "durability" -> Experiments.durability ()
  | "taxonomy" -> Experiments.taxonomy ()
  | "micro" -> Experiments.micro ()
  | "micro-pmem" -> Experiments.micro_pmem cfg
  | "ablation" -> Experiments.ablation cfg
  | "single" -> Experiments.single_thread_hash cfg
  | "overhead" -> Experiments.conversion_overhead cfg
  | "recovery" -> Experiments.recovery_time cfg
  | "zipf" -> Experiments.zipfian cfg
  | "latency" -> Experiments.latency cfg
  | other ->
      Printf.eprintf "unknown experiment %S (have: %s)\n" other
        (String.concat " " all_experiments)

let main experiments keys ops threads states seed json smoke =
  let cfg =
    if smoke then
      { Experiments.nloaded = 2_000; nops = 2_000; threads = 2; states = 10; seed }
    else { Experiments.nloaded = keys; nops = ops; threads; states; seed }
  in
  Printf.printf
    "RECIPE reproduction benchmarks — keys=%d ops=%d threads=%d states=%d seed=%d%s\n"
    cfg.Experiments.nloaded cfg.Experiments.nops cfg.Experiments.threads
    cfg.Experiments.states cfg.Experiments.seed
    (if smoke then " (smoke)" else "");
  Printf.printf
    "(paper setup: 64M keys, 16 threads on Optane DC PMM; scale with --keys/--ops/--threads)\n";
  (match json with
  | Some file -> Json_export.write cfg ~smoke file
  | None -> ());
  (* --json with no named experiments is a pure export run; otherwise fall
     back to the usual default of every experiment. *)
  let todo =
    if experiments <> [] then experiments
    else if json = None then all_experiments
    else []
  in
  List.iter (run_experiment cfg) todo

let experiments_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"EXPERIMENT"
        ~doc:
          "Experiments to run (default: all). One of: fig4a fig4b fig4c fig4d \
           fig5 table4 woart crash durability taxonomy micro ablation single.")

let keys_arg =
  Arg.(
    value & opt int 100_000
    & info [ "keys" ] ~docv:"N"
        ~doc:"Keys loaded before each measured run (paper: 64M).")

let ops_arg =
  Arg.(
    value & opt int 100_000
    & info [ "ops" ] ~docv:"N" ~doc:"Operations per measured run (paper: 64M).")

let threads_arg =
  Arg.(
    value & opt int 4
    & info [ "threads" ] ~docv:"N" ~doc:"Worker domains (paper: 16 threads).")

let states_arg =
  Arg.(
    value & opt int 50
    & info [ "states" ] ~docv:"N"
        ~doc:"Crash states per index in the crash campaign (paper: 10K).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write a machine-readable JSON report to $(docv): per-index \
           throughput, latency percentiles per op type, clwb/sfence/LLC \
           counts per operation, and per-site flush attribution.  Without \
           named experiments, only the export runs.")

let smoke_arg =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:
          "Tiny fixed sizes (2K keys, 2K ops, 2 threads) for CI smoke runs; \
           overrides --keys/--ops/--threads.")

let cmd =
  let doc = "Regenerate the tables and figures of the RECIPE paper (SOSP '19)" in
  Cmd.v
    (Cmd.info "recipe-bench" ~doc)
    Term.(
      const main $ experiments_arg $ keys_arg $ ops_arg $ threads_arg
      $ states_arg $ seed_arg $ json_arg $ smoke_arg)

let () = exit (Cmd.eval cmd)
