(* Plain-text table rendering for the benchmark reports (paper-style rows:
   one index per row, one workload per column). *)

let print_table ~title ~header rows =
  Printf.printf "\n== %s ==\n" title;
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let line row =
    String.concat "  "
      (List.mapi (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell) row)
  in
  print_endline (line header);
  print_endline (String.make (String.length (line header)) '-');
  List.iter (fun row -> print_endline (line row)) rows;
  flush stdout

let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x

let note fmt = Printf.printf ("   " ^^ fmt ^^ "\n")

let section name = Printf.printf "\n###### %s ######\n" name
