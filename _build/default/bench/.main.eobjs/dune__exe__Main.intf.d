bench/main.mli:
