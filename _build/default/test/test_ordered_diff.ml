(* Differential testing: all five ordered indexes (and WOART) must agree
   with each other and with a reference model on arbitrary operation
   sequences — inserts, deletes, lookups, and ordered scans. *)

module SM = Map.Make (String)

let reset () =
  Pmem.Mode.set_shadow false;
  Pmem.Crash.disarm ();
  ignore (Pmem.persist_everything ());
  Pmem.Stats.reset ();
  Util.Lock.new_epoch ()

type ops = {
  oname : string;
  insert : string -> int -> bool;
  lookup : string -> int option;
  delete : string -> bool;
  scan : string -> int -> (string * int) list;
}

let all_indexes () =
  let collect scanf key n =
    let acc = ref [] in
    let _ = scanf key n (fun k v -> acc := (k, v) :: !acc) in
    List.rev !acc
  in
  let art = Art.create () in
  let hot = Hot.create () in
  let mt = Masstree.create () in
  let bw = Bwtree.create ~space:(Recipe.Wordkey.int_space ()) () in
  let ff = Fastfair.create ~space:(Recipe.Wordkey.int_space ()) () in
  let wo = Woart.create () in
  [
    {
      oname = "P-ART";
      insert = Art.insert art;
      lookup = Art.lookup art;
      delete = Art.delete art;
      scan = (fun k n -> collect (Art.scan art) k n);
    };
    {
      oname = "P-HOT";
      insert = Hot.insert hot;
      lookup = Hot.lookup hot;
      delete = Hot.delete hot;
      scan = (fun k n -> collect (Hot.scan hot) k n);
    };
    {
      oname = "P-Masstree";
      insert = Masstree.insert mt;
      lookup = Masstree.lookup mt;
      delete = Masstree.delete mt;
      scan = (fun k n -> collect (Masstree.scan mt) k n);
    };
    {
      oname = "P-BwTree";
      insert = Bwtree.insert bw;
      lookup = Bwtree.lookup bw;
      delete = Bwtree.delete bw;
      scan = (fun k n -> collect (Bwtree.scan bw) k n);
    };
    {
      oname = "FAST&FAIR";
      insert = Fastfair.insert ff;
      lookup = Fastfair.lookup ff;
      delete = Fastfair.delete ff;
      scan = (fun k n -> collect (Fastfair.scan ff) k n);
    };
    {
      oname = "WOART";
      insert = Woart.insert wo;
      lookup = Woart.lookup wo;
      delete = Woart.delete wo;
      scan = (fun k n -> collect (Woart.scan wo) k n);
    };
  ]

type op = Insert of int * int | Delete of int | Lookup of int | Scan of int * int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun k v -> Insert (k, v)) (int_range 1 300) (int_range 1 999));
        (2, map (fun k -> Delete k) (int_range 1 300));
        (2, map (fun k -> Lookup k) (int_range 1 300));
        (1, map2 (fun k n -> Scan (k, n)) (int_range 1 300) (int_range 1 20));
      ])

let show_op = function
  | Insert (k, v) -> Printf.sprintf "I(%d,%d)" k v
  | Delete k -> Printf.sprintf "D%d" k
  | Lookup k -> Printf.sprintf "L%d" k
  | Scan (k, n) -> Printf.sprintf "S(%d,%d)" k n

let prop_all_agree =
  QCheck.Test.make ~name:"six ordered indexes agree with the Map model"
    ~count:30
    QCheck.(
      make
        ~print:(fun l -> String.concat ";" (List.map show_op l))
        (QCheck.Gen.list_size (QCheck.Gen.int_range 0 250) op_gen))
    (fun ops ->
      reset ();
      let idxs = all_indexes () in
      let model = ref SM.empty in
      List.for_all
        (fun op ->
          match op with
          | Insert (k, v) ->
              let key = Util.Keys.encode_int k in
              let fresh = not (SM.mem key !model) in
              if fresh then model := SM.add key v !model;
              List.for_all (fun i -> i.insert key v = fresh) idxs
          | Delete k ->
              let key = Util.Keys.encode_int k in
              let present = SM.mem key !model in
              model := SM.remove key !model;
              List.for_all (fun i -> i.delete key = present) idxs
          | Lookup k ->
              let key = Util.Keys.encode_int k in
              let expect = SM.find_opt key !model in
              List.for_all (fun i -> i.lookup key = expect) idxs
          | Scan (k, n) ->
              let key = Util.Keys.encode_int k in
              let expect =
                SM.bindings !model
                |> List.filter (fun (key', _) -> String.compare key' key >= 0)
                |> List.filteri (fun i _ -> i < n)
              in
              List.for_all (fun i -> i.scan key n = expect) idxs)
        ops)

(* Same differential check with string keys on the indexes that take them
   natively. *)
let prop_string_keys_agree =
  QCheck.Test.make ~name:"ordered indexes agree on string keys" ~count:20
    QCheck.(
      make
        ~print:(fun l -> String.concat "," (List.map string_of_int l))
        (QCheck.Gen.list_size (QCheck.Gen.int_range 0 200)
           (QCheck.Gen.int_range 1 500)))
    (fun ids ->
      reset ();
      let art = Art.create () in
      let hot = Hot.create () in
      let mt = Masstree.create () in
      let model = ref SM.empty in
      List.iter
        (fun id ->
          let key = Util.Keys.string_key id in
          if not (SM.mem key !model) then model := SM.add key id !model;
          ignore (Art.insert art key id);
          ignore (Hot.insert hot key id);
          ignore (Masstree.insert mt key id))
        ids;
      SM.for_all
        (fun key v ->
          Art.lookup art key = Some v
          && Hot.lookup hot key = Some v
          && Masstree.lookup mt key = Some v)
        !model)

(* Update agreement across the five update-capable ordered indexes. *)
let prop_updates_agree =
  QCheck.Test.make ~name:"update-capable indexes agree" ~count:25
    QCheck.(
      make
        ~print:(fun l ->
          String.concat ";"
            (List.map (fun (op, key) -> Printf.sprintf "%d:%d" op key) l))
        (QCheck.Gen.list_size (QCheck.Gen.int_range 0 250)
           (QCheck.Gen.pair (QCheck.Gen.int_range 0 3) (QCheck.Gen.int_range 1 200))))
    (fun ops ->
      reset ();
      let art = Art.create () in
      let hot = Hot.create () in
      let mt = Masstree.create () in
      let bw = Bwtree.create ~space:(Recipe.Wordkey.int_space ()) () in
      let wo = Woart.create () in
      let model = Hashtbl.create 16 in
      let tick = ref 0 in
      List.for_all
        (fun (op, key) ->
          incr tick;
          let kk = Util.Keys.encode_int key in
          match op with
          | 0 ->
              let fresh = not (Hashtbl.mem model key) in
              if fresh then Hashtbl.replace model key !tick;
              let v = !tick in
              Art.insert art kk v = fresh
              && Hot.insert hot kk v = fresh
              && Masstree.insert mt kk v = fresh
              && Bwtree.insert bw kk v = fresh
              && Woart.insert wo kk v = fresh
          | 1 ->
              let present = Hashtbl.mem model key in
              if present then Hashtbl.replace model key (- !tick);
              let v = - !tick in
              Art.update art kk v = present
              && Hot.update hot kk v = present
              && Masstree.update mt kk v = present
              && Bwtree.update bw kk v = present
              && Woart.update wo kk v = present
          | 2 ->
              let present = Hashtbl.mem model key in
              Hashtbl.remove model key;
              Art.delete art kk = present
              && Hot.delete hot kk = present
              && Masstree.delete mt kk = present
              && Bwtree.delete bw kk = present
              && Woart.delete wo kk = present
          | _ ->
              let expect = Hashtbl.find_opt model key in
              Art.lookup art kk = expect
              && Hot.lookup hot kk = expect
              && Masstree.lookup mt kk = expect
              && Bwtree.lookup bw kk = expect
              && Woart.lookup wo kk = expect)
        ops)

let () =
  Alcotest.run "ordered-diff"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_all_agree;
          QCheck_alcotest.to_alcotest prop_string_keys_agree;
          QCheck_alcotest.to_alcotest prop_updates_agree;
        ] );
    ]
