test/test_util.ml: Alcotest Domain List QCheck QCheck_alcotest String Util
