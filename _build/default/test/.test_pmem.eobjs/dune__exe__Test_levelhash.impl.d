test/test_levelhash.ml: Alcotest Array Domain Hashtbl Levelhash List Pmem Printf QCheck QCheck_alcotest String Util
