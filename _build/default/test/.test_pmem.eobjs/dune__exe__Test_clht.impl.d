test/test_clht.ml: Alcotest Array Atomic Clht Domain Hashtbl List Pmem Printf QCheck QCheck_alcotest String Util
