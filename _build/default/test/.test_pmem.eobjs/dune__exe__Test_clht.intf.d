test/test_clht.mli:
