test/test_art.ml: Alcotest Array Art Atomic Domain Hashtbl List Pmem Printf QCheck QCheck_alcotest String Util
