test/test_fastfair.ml: Alcotest Array Atomic Domain Fastfair List Pmem Printf QCheck QCheck_alcotest Recipe String Util
