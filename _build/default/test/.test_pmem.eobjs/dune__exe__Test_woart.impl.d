test/test_woart.ml: Alcotest Array Domain List Pmem Util Woart
