test/test_ordered_diff.mli:
