test/test_ycsb.ml: Alcotest Art Atomic Clht Harness Hashtbl List Pmem Printf String Util Ycsb
