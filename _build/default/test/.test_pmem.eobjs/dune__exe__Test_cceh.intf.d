test/test_cceh.mli:
