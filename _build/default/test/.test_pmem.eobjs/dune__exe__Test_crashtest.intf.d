test/test_crashtest.mli:
