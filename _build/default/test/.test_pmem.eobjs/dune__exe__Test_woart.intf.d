test/test_woart.mli:
