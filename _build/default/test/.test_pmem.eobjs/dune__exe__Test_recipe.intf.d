test/test_recipe.mli:
