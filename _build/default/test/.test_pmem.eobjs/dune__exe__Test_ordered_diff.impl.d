test/test_ordered_diff.ml: Alcotest Art Bwtree Fastfair Hashtbl Hot List Map Masstree Pmem Printf QCheck QCheck_alcotest Recipe String Util Woart
