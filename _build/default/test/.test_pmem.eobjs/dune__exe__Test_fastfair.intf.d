test/test_fastfair.mli:
