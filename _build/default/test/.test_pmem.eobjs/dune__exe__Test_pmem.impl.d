test/test_pmem.ml: Alcotest Array Domain List Pmem
