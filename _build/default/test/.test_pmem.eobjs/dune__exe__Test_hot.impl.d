test/test_hot.ml: Alcotest Array Atomic Domain Hashtbl Hot List Pmem Printf QCheck QCheck_alcotest String Util
