test/test_hot.mli:
