test/test_recipe.ml: Alcotest List Pmem QCheck QCheck_alcotest Recipe String Util
