test/test_cceh.ml: Alcotest Array Atomic Cceh Crashtest Domain Hashtbl List Pmem Printf QCheck QCheck_alcotest String Util
