test/test_crashtest.ml: Alcotest Crashtest Format Harness List
