test/test_bwtree.ml: Alcotest Array Atomic Bwtree Domain Hashtbl List Pmem Printf QCheck QCheck_alcotest Recipe String Util
