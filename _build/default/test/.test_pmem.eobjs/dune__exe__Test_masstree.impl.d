test/test_masstree.ml: Alcotest Array Atomic Domain Hashtbl List Masstree Pmem Printf QCheck QCheck_alcotest String Util
