test/test_levelhash.mli:
