examples/crash_demo.ml: Crashtest Format Harness Printf
