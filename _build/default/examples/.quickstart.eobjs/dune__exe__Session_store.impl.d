examples/session_store.ml: Array Clht Domain List Pmem Printf Util
