examples/threaded_conversations.mli:
