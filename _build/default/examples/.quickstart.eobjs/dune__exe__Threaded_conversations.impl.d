examples/threaded_conversations.ml: Domain Hashtbl List Masstree Pmem Printf Util
