examples/quickstart.mli:
