examples/quickstart.ml: Art Clht Option Pmem Printf Util
