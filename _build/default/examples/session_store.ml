(* Session store — the application pattern behind YCSB workload A
   (Table 3: "Read/Write 50/50 — a session store").

   Four worker domains record and look up user sessions against one shared
   P-CLHT.  Midway through, the machine "loses power"; after recovery every
   acknowledged write is still readable — without the index running any
   recovery code beyond lock re-initialization.

     dune exec examples/session_store.exe *)

let n_workers = 4
let sessions_per_worker = 5_000

let () =
  Pmem.Mode.set_shadow true;
  let store = Clht.create () in

  (* Phase 1: concurrent session traffic. Each worker interleaves creating
     sessions with looking up its previous ones; acknowledged session ids
     are collected so we can audit them after the crash. *)
  let acked = Array.init n_workers (fun _ -> ref []) in
  let worker w () =
    let rng = Util.Rng.create (w + 1) in
    for i = 0 to sessions_per_worker - 1 do
      let session_id = (i * n_workers) + w + 1 in
      let user_id = Util.Rng.below rng 10_000 in
      if Clht.insert store session_id user_id then
        acked.(w) := (session_id, user_id) :: !(acked.(w));
      (* 50/50: every insert is paired with a lookup of an earlier session. *)
      if i > 0 then begin
        let earlier = ((i / 2) * n_workers) + w + 1 in
        ignore (Clht.lookup store earlier)
      end
    done
  in
  let domains = List.init n_workers (fun w -> Domain.spawn (worker w)) in
  List.iter Domain.join domains;
  Printf.printf "recorded %d sessions across %d workers\n" (Clht.length store)
    n_workers;

  (* Phase 2: power failure in the middle of further traffic. *)
  Pmem.Crash.arm ~probability:0.001 ~seed:99;
  let extra = ref [] in
  (try
     for i = 1 to 10_000 do
       let session_id = 1_000_000 + i in
       if Clht.insert store session_id i then extra := (session_id, i) :: !extra
     done;
     Pmem.Crash.disarm ()
   with Pmem.Crash.Simulated_crash ->
     print_endline "power failure during session traffic!");
  Pmem.simulate_power_failure ();
  Clht.recover store;

  (* Phase 3: audit — every acknowledged session must still resolve. *)
  let audit label list =
    let lost = ref 0 in
    List.iter
      (fun (sid, uid) -> if Clht.lookup store sid <> Some uid then incr lost)
      list;
    Printf.printf "%s: %d sessions audited, %d lost\n" label (List.length list)
      !lost;
    assert (!lost = 0)
  in
  Array.iteri (fun w acks -> audit (Printf.sprintf "worker %d" w) !acks) acked;
  audit "post-crash batch" !extra;
  print_endline "session store audit clean: no acknowledged write was lost"
