(* Crash-recovery testing demo (paper §5 / §7.5): run the consistency
   campaign against a RECIPE-converted index and against the deliberately
   buggy variants of the hand-crafted baselines, and watch the framework
   find the paper's bugs.

     dune exec examples/crash_demo.exe *)

let run name make =
  let r =
    Crashtest.consistency_campaign ~make ~states:30 ~load:400 ~ops:400
      ~threads:4 ~seed:2024 ()
  in
  Format.printf "%-18s %a@." name Crashtest.pp_report r;
  r

let () =
  print_endline "consistency campaigns (30 crash states each):";
  let art = run "P-ART" Harness.Subjects.art in
  let clht = run "P-CLHT" Harness.Subjects.clht in
  let ff_ok = run "FAST&FAIR (fixed)" (fun () -> Harness.Subjects.fastfair ()) in
  assert (art.Crashtest.lost_keys = 0 && clht.Crashtest.lost_keys = 0);
  assert (ff_ok.Crashtest.lost_keys = 0);

  (* The baselines' bugs hide in single crash points inside SMOs, so hunt
     them with the deterministic point sweep (§5's "crash after each atomic
     store"). *)
  print_endline "";
  print_endline "deterministic crash-point sweeps against the buggy variants:";
  let sweep name make =
    let r = Crashtest.sweep ~make ~points:20_000 ~stride:1 ~load:3_000 () in
    Format.printf "%-18s %a@." name Crashtest.pp_report r;
    r
  in
  let ff_bug =
    sweep "FAST&FAIR (buggy)" (fun () ->
        Harness.Subjects.fastfair ~bug_split_order:true ())
  in
  let cceh_bug =
    sweep "CCEH (buggy)" (fun () -> Harness.Subjects.cceh ~bug_doubling:true ())
  in
  assert (ff_bug.Crashtest.lost_keys > 0);
  assert (cceh_bug.Crashtest.stalled > 0);

  print_endline "";
  print_endline "durability checks (every dirtied line flushed per op):";
  let dur name make =
    let v = Crashtest.durability_test ~make ~inserts:500 ~seed:1 () in
    Printf.printf "%-18s violations=%d -> %s\n" name v
      (if v = 0 then "PASS" else "FAIL")
  in
  dur "P-ART" Harness.Subjects.art;
  dur "P-Masstree" Harness.Subjects.masstree;
  dur "FAST&FAIR (fixed)" (fun () -> Harness.Subjects.fastfair ());
  dur "FAST&FAIR (buggy)" (fun () ->
      Harness.Subjects.fastfair ~bug_root_flush:true ());
  print_endline "";
  print_endline
    "RECIPE-converted indexes pass; the baselines' §3 bugs are caught."
