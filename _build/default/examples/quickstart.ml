(* Quickstart: the two index families, persistence, and crash recovery in
   one small program.

     dune exec examples/quickstart.exe *)

let () =
  (* Shadow mode makes the simulated persistent memory enforce real crash
     semantics: stores survive a power failure only once their cache line
     is flushed.  Turn it on before building any index. *)
  Pmem.Mode.set_shadow true;

  (* --- An unordered index: P-CLHT (hash table, integer keys) ------------ *)
  let sessions = Clht.create () in
  ignore (Clht.insert sessions 1001 42);
  ignore (Clht.insert sessions 1002 77);
  (match Clht.lookup sessions 1001 with
  | Some v -> Printf.printf "P-CLHT: session 1001 -> %d\n" v
  | None -> assert false);

  (* --- An ordered index: P-ART (radix tree, byte-string keys) ----------- *)
  let index = Art.create () in
  for i = 1 to 100 do
    ignore (Art.insert index (Util.Keys.encode_int i) (i * i))
  done;
  Printf.printf "P-ART: 17^2 = %d\n"
    (Option.get (Art.lookup index (Util.Keys.encode_int 17)));
  let n =
    Art.scan index (Util.Keys.encode_int 10) 5 (fun k v ->
        Printf.printf "  scan %d -> %d\n" (Util.Keys.decode_int k) v)
  in
  Printf.printf "P-ART: scanned %d keys in order\n" n;

  (* --- Crash and recover ------------------------------------------------- *)
  (* Arm a crash inside the next insert's atomic-step sequence; the
     operation unwinds mid-way, then the power failure discards every
     unflushed cache line. *)
  Pmem.Crash.arm_at 2;
  (try ignore (Art.insert index (Util.Keys.encode_int 999) 999)
   with Pmem.Crash.Simulated_crash -> print_endline "...crash during insert!");
  Pmem.simulate_power_failure ();

  (* RECIPE-converted indexes need no recovery algorithm: re-initializing
     the volatile locks is all that happens here. *)
  Art.recover index;
  Clht.recover sessions;

  (* Everything committed before the crash is still there. *)
  assert (Art.lookup index (Util.Keys.encode_int 17) = Some 289);
  assert (Clht.lookup sessions 1002 = Some 77);

  (* The interrupted insert is atomic: fully present or fully absent, and
     retrying always works. *)
  (match Art.lookup index (Util.Keys.encode_int 999) with
  | Some _ -> print_endline "interrupted insert committed before the crash"
  | None ->
      ignore (Art.insert index (Util.Keys.encode_int 999) 999);
      print_endline "interrupted insert rolled back; retried fine");
  assert (Art.lookup index (Util.Keys.encode_int 999) = Some 999);

  let stats = Pmem.Stats.snapshot () in
  Printf.printf "persistence: %d clwb, %d sfence, %d cache lines allocated\n"
    stats.Pmem.Stats.s_clwb stats.Pmem.Stats.s_sfence
    stats.Pmem.Stats.s_lines_allocated;
  print_endline "quickstart OK"
