(* Threaded conversations — the application pattern behind YCSB workload E
   (Table 3: "Scan/Write 95/5 — threaded conversations").

   Messages are keyed by (conversation id, sequence number) encoded
   big-endian, so one ordered range scan returns a conversation's recent
   messages in order.  P-Masstree serves as the message index: its trie of
   B+ trees eats the shared conversation-id prefix in the first layer.

     dune exec examples/threaded_conversations.exe *)

let conversations = 200
let messages_per_conversation = 50

(* 16-byte key: 8-byte conversation id ++ 8-byte sequence number. *)
let message_key conv seq = Util.Keys.encode_int conv ^ Util.Keys.encode_int seq

let () =
  Pmem.Mode.set_shadow true;
  let index = Masstree.create () in
  let message_bodies = Hashtbl.create 1024 in

  (* Writers appending to conversations concurrently. *)
  let writer w () =
    for conv = 1 to conversations do
      if conv mod 4 = w then
        for seq = 1 to messages_per_conversation do
          let body_id = (conv * 1_000) + seq in
          ignore (Masstree.insert index (message_key conv seq) body_id)
        done
    done
  in
  let ds = List.init 4 (fun w -> Domain.spawn (writer w)) in
  List.iter Domain.join ds;
  for conv = 1 to conversations do
    for seq = 1 to messages_per_conversation do
      Hashtbl.replace message_bodies ((conv * 1_000) + seq)
        (Printf.sprintf "conversation %d message %d" conv seq)
    done
  done;

  (* Read a conversation thread: one range scan, in order. *)
  let read_thread conv ~latest =
    let seen = ref [] in
    let _ =
      Masstree.scan index (message_key conv 1) latest (fun _key body_id ->
          seen := body_id :: !seen)
    in
    List.rev !seen
  in
  let thread = read_thread 42 ~latest:10 in
  Printf.printf "conversation 42, first %d messages:\n" (List.length thread);
  List.iter
    (fun body_id -> Printf.printf "  %s\n" (Hashtbl.find message_bodies body_id))
    thread;
  assert (List.length thread = 10);
  List.iteri (fun i body_id -> assert (body_id = (42 * 1_000) + i + 1)) thread;

  (* The 95/5 mix: mostly scans with occasional new messages. *)
  let rng = Util.Rng.create 7 in
  let scans = ref 0 and writes = ref 0 in
  for _ = 1 to 2_000 do
    if Util.Rng.below rng 100 < 5 then begin
      let conv = 1 + Util.Rng.below rng conversations in
      let seq = messages_per_conversation + 1 + Util.Rng.below rng 100 in
      if Masstree.insert index (message_key conv seq) ((conv * 1_000) + seq) then
        incr writes
    end
    else begin
      let conv = 1 + Util.Rng.below rng conversations in
      ignore (read_thread conv ~latest:20);
      incr scans
    end
  done;
  Printf.printf "served %d thread scans and %d new messages\n" !scans !writes;

  (* Crash mid-posting; the thread index recovers with no lost messages. *)
  Pmem.Crash.arm ~probability:0.01 ~seed:5;
  (try
     for seq = 1_000 to 1_200 do
       ignore (Masstree.insert index (message_key 42 seq) (42_000 + seq))
     done;
     Pmem.Crash.disarm ()
   with Pmem.Crash.Simulated_crash -> print_endline "crash while posting!");
  Pmem.simulate_power_failure ();
  Masstree.recover index;
  let again = read_thread 42 ~latest:10 in
  assert (again = thread);
  print_endline "conversation index intact after crash"
