(* Small bit-twiddling helpers used across the index implementations. *)

(** Number of leading zero bits of a positive 63-bit int (result counts from
    bit 62 downwards; [count_leading_zeros 1 = 62]). *)
let count_leading_zeros n =
  if n <= 0 then invalid_arg "Bits.count_leading_zeros: need positive";
  let rec go n acc =
    if n land 0x4000000000000000 <> 0 then acc else go (n lsl 1) (acc + 1)
  in
  go n 0

(** Index (from the most significant end, 0-based) of the highest bit where
    [a] and [b] differ, for 8-byte big-endian semantics over 64-bit values
    packed in an int.  Raises if equal. *)
let highest_differing_bit a b =
  let x = a lxor b in
  if x = 0 then invalid_arg "Bits.highest_differing_bit: equal";
  count_leading_zeros x

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(** Smallest power of two >= n. *)
let next_power_of_two n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(** Population count. *)
let popcount n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
  go n 0
