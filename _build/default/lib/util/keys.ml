(* Key encodings shared by the ordered indexes.

   Ordered indexes in this repository are keyed by byte strings compared
   lexicographically.  The paper's two YCSB key types map onto that as:

   - randint: 8-byte random integers.  We encode them big-endian so that
     integer order equals byte order, the standard trick radix trees rely on
     (ART §IV.B of Leis et al.);
   - string: 24-byte YCSB keys ("user" + zero-padded decimal id), uniformly
     distributed via a random id. *)

let int_key_length = 8

(** Big-endian 8-byte encoding of a non-negative integer. *)
let encode_int k =
  if k < 0 then invalid_arg "Keys.encode_int: negative key";
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int k);
  Bytes.unsafe_to_string b

let decode_int s =
  if String.length s <> 8 then invalid_arg "Keys.decode_int: want 8 bytes";
  Int64.to_int (String.get_int64_be s 0)

let string_key_length = 24

(** 24-byte YCSB-style string key for integer id [n]. *)
let string_key n =
  if n < 0 then invalid_arg "Keys.string_key: negative id";
  Printf.sprintf "user%020d" n

(** First key strictly greater than every key of length [len] that starts
    with [prefix] — used to turn prefix scans into range queries. *)
let successor s =
  let b = Bytes.of_string s in
  let rec bump i =
    if i < 0 then None
    else
      let c = Char.code (Bytes.get b i) in
      if c < 255 then begin
        Bytes.set b i (Char.chr (c + 1));
        Some (Bytes.sub_string b 0 (i + 1))
      end
      else bump (i - 1)
  in
  bump (Bytes.length b - 1)
