lib/util/keys.ml: Bytes Char Int64 Printf String
