lib/util/bits.ml:
