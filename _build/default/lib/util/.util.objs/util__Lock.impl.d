lib/util/lock.ml: Atomic Domain Float Unix
