(* Volatile spinlocks with crash re-initialization semantics.

   RECIPE assumes "the locks used in the index are non-persistent, and that
   the locks are re-initialized after a crash (to prevent deadlock)" (§4.2);
   §6 realizes this with a lock table rebuilt at restart.  We get the same
   effect without walking the structure: a global lock epoch.  A lock is held
   iff its word equals the *current* epoch; recovery bumps the epoch, which
   atomically frees every lock in the index — including locks held by the
   thread that "died" at the simulated crash point. *)

type t = int Atomic.t

let epoch = Atomic.make 1

(** Recovery: instantly re-initialize (free) every lock ever created. *)
let new_epoch () = Atomic.incr epoch

let create () = Atomic.make 0

let is_locked t = Atomic.get t = Atomic.get epoch

let try_lock t =
  let cur = Atomic.get epoch in
  let v = Atomic.get t in
  if v = cur then false else Atomic.compare_and_set t v cur

(* Bounded spinning, then yield the OS thread: on machines with fewer cores
   than domains (this container has one), a preempted lock holder would
   otherwise stall every spinner for a whole scheduling quantum. *)
let lock t =
  let rec go spins pause =
    if not (try_lock t) then
      if spins > 0 then begin
        Domain.cpu_relax ();
        go (spins - 1) pause
      end
      else begin
        Unix.sleepf pause;
        go 0 (Float.min (pause *. 2.0) 0.0001)
      end
  in
  go 200 0.000001

let unlock t = Atomic.set t 0

(** [with_lock t f] runs [f] holding [t].  No cleanup on exception: a
    simulated crash must leave the lock held, exactly like a real power
    failure; recovery frees it via {!new_epoch}. *)
let with_lock t f =
  lock t;
  let r = f () in
  unlock t;
  r
