(* The RECIPE taxonomy (paper §4).

   Each convertible DRAM index satisfies one of three conditions, and each
   condition comes with a conversion action.  This module captures the
   taxonomy as data: the per-index rows of Table 1 (conversion effort) and
   Table 2 (synchronization properties and per-operation-class condition),
   used by the [taxonomy] experiment and cross-checked by tests against the
   actual implementations. *)

type t =
  | C1  (** Updates visible via a single hardware-atomic store.  Action:
            flush + fence after each store (loads too for non-blocking
            writers). *)
  | C2  (** Non-blocking reads and writes; writers fix inconsistencies via a
            helping mechanism.  Action: flush + fence after each store and
            after loads participating in helping. *)
  | C3  (** Blocking writers that detect but do not fix inconsistencies.
            Action: add permanent-inconsistency detection (try-lock) and a
            helper built from the write path, then flush + fence stores. *)

let to_string = function C1 -> "#1" | C2 -> "#2" | C3 -> "#3"

type sync = Blocking | Non_blocking

let sync_to_string = function
  | Blocking -> "blocking"
  | Non_blocking -> "non-blocking"

(** One row of Tables 1 and 2. *)
type entry = {
  name : string;  (** DRAM index name *)
  pm_name : string;  (** converted index name *)
  structure : string;
  reader : sync;
  writer : sync;
  non_smo : t;  (** condition satisfied by inserts/deletes *)
  smo : t;  (** condition satisfied by structural modifications *)
  paper_orig_loc : int;  (** Table 1 "Orig" (whole codebase) *)
  paper_core_loc : int;  (** Table 1 "Core" *)
  paper_modified_loc : int;  (** Table 1 "Modified" *)
}

(** Table 1 + Table 2 of the paper, verbatim. *)
let converted : entry list =
  [
    {
      name = "CLHT";
      pm_name = "P-CLHT";
      structure = "Hash Table";
      reader = Non_blocking;
      writer = Blocking;
      non_smo = C1;
      smo = C1;
      paper_orig_loc = 12_600;
      paper_core_loc = 2_800;
      paper_modified_loc = 30;
    };
    {
      name = "HOT";
      pm_name = "P-HOT";
      structure = "Trie";
      reader = Non_blocking;
      writer = Blocking;
      non_smo = C1;
      smo = C1;
      paper_orig_loc = 36_000;
      paper_core_loc = 2_000;
      paper_modified_loc = 38;
    };
    {
      name = "BwTree";
      pm_name = "P-BwTree";
      structure = "B+ Tree";
      reader = Non_blocking;
      writer = Non_blocking;
      non_smo = C1;
      smo = C2;
      paper_orig_loc = 13_000;
      paper_core_loc = 5_200;
      paper_modified_loc = 85;
    };
    {
      name = "ART";
      pm_name = "P-ART";
      structure = "Radix Tree";
      reader = Non_blocking;
      writer = Blocking;
      non_smo = C1;
      smo = C3;
      paper_orig_loc = 4_500;
      paper_core_loc = 1_500;
      paper_modified_loc = 52;
    };
    {
      name = "Masstree";
      pm_name = "P-Masstree";
      structure = "B+ Tree & Trie";
      reader = Non_blocking;
      writer = Blocking;
      non_smo = C1;
      smo = C3;
      paper_orig_loc = 25_000;
      paper_core_loc = 2_200;
      paper_modified_loc = 200;
    };
  ]

let find name =
  List.find_opt
    (fun e -> String.equal e.name name || String.equal e.pm_name name)
    converted

let pp_entry ppf e =
  Fmt.pf ppf "%-9s %-15s reader=%-12s writer=%-12s non-SMO=%s SMO=%s %d LOC"
    e.name e.structure (sync_to_string e.reader) (sync_to_string e.writer)
    (to_string e.non_smo) (to_string e.smo) e.paper_modified_loc
