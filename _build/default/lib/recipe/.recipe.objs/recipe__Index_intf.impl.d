lib/recipe/index_intf.ml:
