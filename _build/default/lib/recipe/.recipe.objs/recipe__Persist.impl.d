lib/recipe/persist.ml: Pmem
