lib/recipe/wordkey.ml: Array Atomic Mutex Pmem String Util
