lib/recipe/condition.ml: Fmt List String
