(* Conversion-action combinators (paper §4.3–§4.5, §8).

   The mechanical part of every RECIPE conversion is "insert cache line flush
   and memory fence instructions after each store".  §8 notes the authors
   then hand-optimized the converted indexes by *coalescing* flushes — a
   store whose line will be flushed again before the commit point need not
   flush immediately, only the stores surrounding the final atomic commit
   must be fenced.

   Index code in this repository writes through these combinators so both
   behaviours exist in one code path, giving the flush-coalescing ablation
   experiment:

   - [store]/[store_ref]: an ordinary store on the path to a commit point.
     Coalesced mode (default, what §6 ships): no flush here — the commit
     flush covers the whole line.  Naive mode (the literal conversion
     action): flush + fence immediately.
   - [commit]/[commit_ref]: the final atomic store of the operation — always
     followed by flush + fence, in both modes. *)

(* Default: the hand-coalesced behaviour the paper evaluates. *)
let naive = ref false

(** Select the literal flush-after-every-store conversion (for the ablation
    bench); [false] restores coalesced flushing. *)
let set_naive b = naive := b

let store w i v =
  Pmem.Words.set w i v;
  if !naive then begin
    Pmem.Words.clwb w i;
    Pmem.sfence ()
  end

let store_ref r i v =
  Pmem.Refs.set r i v;
  if !naive then begin
    Pmem.Refs.clwb r i;
    Pmem.sfence ()
  end

(** Commit store: make the operation visible and durable.  Flush + fence
    always. *)
let commit w i v =
  Pmem.Words.set w i v;
  Pmem.Words.clwb w i;
  Pmem.sfence ()

let commit_ref r i v =
  Pmem.Refs.set r i v;
  Pmem.Refs.clwb r i;
  Pmem.sfence ()

(** Commit CAS: the single-CAS visibility points of Condition #1/#2 indexes
    (BwTree mapping-table install, pointer swaps).  Flushes only when the CAS
    succeeds — P-BwTree's optimization from §6.3: the first flush of an
    indirect pointer persists the most recent successful CAS. *)
let commit_cas_ref r i ~expected ~desired =
  let ok = Pmem.Refs.cas r i ~expected ~desired in
  if ok then begin
    Pmem.Refs.clwb r i;
    Pmem.sfence ()
  end;
  ok

let commit_cas w i ~expected ~desired =
  let ok = Pmem.Words.cas w i ~expected ~desired in
  if ok then begin
    Pmem.Words.clwb w i;
    Pmem.sfence ()
  end;
  ok

(** Flush + fence a line that was written with [store] in coalesced mode —
    used before a dependent store must be ordered after it (the "previous
    state is persisted first" rule of Condition #2). *)
let flush w i =
  Pmem.Words.clwb w i;
  Pmem.sfence ()

let flush_ref r i =
  Pmem.Refs.clwb r i;
  Pmem.sfence ()

(** Persist a freshly initialized object before it is linked into the
    structure (every line flushed, one fence). *)
let persist_new_words w =
  Pmem.Words.clwb_all w;
  Pmem.sfence ()

let persist_new_refs r =
  Pmem.Refs.clwb_all r;
  Pmem.sfence ()
