(* Common interfaces for every index in the repository (paper §2.1).

   Two families, matching the paper's evaluation split (§7): ordered indexes
   support point and range queries over byte-string keys; unordered indexes
   support point queries over positive integer keys.  Values are 8-byte
   integers everywhere — on real PM a value slot holds a pointer into the
   storage system, and the unit tests exploit that values fit in one
   failure-atomic store exactly as the converted C indexes do. *)

(** Ordered index over byte-string keys compared lexicographically.
    Integer keys are used through {!Util.Keys.encode_int} so integer order
    equals byte order. *)
module type ORDERED = sig
  type t

  val name : string

  val create : unit -> t

  (** [insert t key value] binds [key].  Returns [false] if the key was
      already present (in which case the value is updated in place, like the
      paper's indexes that "use insert for both insertions and updates"). *)
  val insert : t -> string -> int -> bool

  (** [lookup t key] returns the latest value bound to [key]. *)
  val lookup : t -> string -> int option

  (** [delete t key] removes the binding; [false] if absent. *)
  val delete : t -> string -> bool

  (** [scan t key n f] visits at most [n] bindings with keys >= [key] in
      ascending key order and returns how many were visited — the YCSB
      workload-E operation. *)
  val scan : t -> string -> int -> (string -> int -> unit) -> int

  (** [range t lo hi] returns all bindings with lo <= key < hi, ascending. *)
  val range : t -> string -> string -> (string * int) list

  (** Post-crash recovery hook.  RECIPE-converted indexes have no recovery
      algorithm to run — this only re-initializes volatile locks (§6 "lock
      initialization"); hand-crafted baselines may do real work here. *)
  val recover : t -> unit
end

(** Unordered (hash) index over positive integer keys; key 0 is reserved as
    the empty-slot sentinel, matching CLHT's representation. *)
module type UNORDERED = sig
  type t

  val name : string

  (** [create ~capacity ()] — initial table size in buckets/slots; the
      evaluation starts all hash tables at 48 KB (§7). *)
  val create : ?capacity:int -> unit -> t

  val insert : t -> int -> int -> bool
  val lookup : t -> int -> int option
  val delete : t -> int -> bool
  val recover : t -> unit
end
