(* Allocator of simulated cache-line ids.  Every persistent object occupies a
   contiguous run of line ids; the ids feed the LLC simulator as addresses. *)

let counter = Atomic.make 0

(** Reserve [n] consecutive line ids and return the first. *)
let fresh n = Atomic.fetch_and_add counter n

let allocated () = Atomic.get counter
