(* Global mode switches for the simulated persistent memory.

   [shadow] — when on, every persistent object maintains a second image
   holding its last-flushed ("persisted") contents, and a simulated power
   failure reverts all unflushed lines to that image.  Used by the crash and
   durability tests; off for throughput benchmarks.

   These are plain refs: modes are flipped only between experiment phases,
   never concurrently with index operations. *)

let shadow = ref false
let shadow_enabled () = !shadow
let set_shadow b = shadow := b

(* [dram] — when on, clwb and sfence become free no-ops: the index runs as
   its volatile DRAM ancestor.  Used by the conversion-overhead ablation
   (the RECIPE thesis is that converted indexes inherit the DRAM index's
   performance; this measures exactly what the conversion added). *)
let dram = ref false
let dram_enabled () = !dram
let set_dram b = dram := b
