(* Registry of persistent objects that have unflushed (dirty) lines.

   In shadow mode, the first store that dirties an object registers it here.
   The registry supports the two checks of paper §5:

   - durability: after an operation completes (including its trailing flushes
     and fences), no line may remain dirty — [dirty_objects] must be empty;
   - crash simulation: a power failure reverts every dirty line of every
     registered object to its persisted image ([revert_all]).

   Registration is protected by a mutex; it happens at most once per object
   per epoch (guarded by the object's own [registered] flag), so the mutex is
   uncontended in steady state. *)

type entry = {
  name : string;
  is_dirty : unit -> bool;
  revert : unit -> unit; (* restore persisted image on dirty lines *)
  persist : unit -> unit; (* flush all dirty lines *)
  unregister : unit -> unit; (* clear the object's [registered] flag *)
}

let mutex = Mutex.create ()
let entries : entry list ref = ref []

let register e =
  Mutex.lock mutex;
  entries := e :: !entries;
  Mutex.unlock mutex

let take_all () =
  Mutex.lock mutex;
  let es = !entries in
  entries := [];
  Mutex.unlock mutex;
  es

let snapshot_entries () =
  Mutex.lock mutex;
  let es = !entries in
  Mutex.unlock mutex;
  es

(** Names of objects that still have at least one dirty line. *)
let dirty_objects () =
  List.filter_map
    (fun e -> if e.is_dirty () then Some e.name else None)
    (snapshot_entries ())

let dirty_count () = List.length (dirty_objects ())

(** Simulated power failure: every unflushed line loses its cached contents
    and reverts to the last-flushed image. *)
let revert_all () =
  let es = take_all () in
  List.iter
    (fun e ->
      e.revert ();
      e.unregister ())
    es

(** Flush everything that is dirty (e.g. a clean checkpoint between test
    iterations). *)
let persist_all () =
  let es = take_all () in
  List.iter
    (fun e ->
      e.persist ();
      e.unregister ())
    es
