(* Global instruction and allocation counters for the simulated persistent
   memory.  The paper (Fig 4c/4d, Table 4) reports clwb and mfence counts per
   operation; these counters are the source of those numbers.  Counters are
   plain atomics: the counter experiments run single-threaded (as the paper's
   per-operation methodology does), and in multi-threaded throughput runs the
   counts are not reported, so contention is irrelevant. *)

type t = {
  clwb : int Atomic.t;
  sfence : int Atomic.t;
  lines_allocated : int Atomic.t;
  words_allocated : int Atomic.t;
  crash_points : int Atomic.t;
  crashes : int Atomic.t;
}

let global =
  {
    clwb = Atomic.make 0;
    sfence = Atomic.make 0;
    lines_allocated = Atomic.make 0;
    words_allocated = Atomic.make 0;
    crash_points = Atomic.make 0;
    crashes = Atomic.make 0;
  }

let incr_clwb () = Atomic.incr global.clwb
let incr_sfence () = Atomic.incr global.sfence
let incr_crash_points () = Atomic.incr global.crash_points
let incr_crashes () = Atomic.incr global.crashes

let add_allocation ~lines ~words =
  ignore (Atomic.fetch_and_add global.lines_allocated lines);
  ignore (Atomic.fetch_and_add global.words_allocated words)

(** Immutable view of the counters at one instant. *)
type snapshot = {
  s_clwb : int;
  s_sfence : int;
  s_lines_allocated : int;
  s_words_allocated : int;
  s_crash_points : int;
  s_crashes : int;
}

let snapshot () =
  {
    s_clwb = Atomic.get global.clwb;
    s_sfence = Atomic.get global.sfence;
    s_lines_allocated = Atomic.get global.lines_allocated;
    s_words_allocated = Atomic.get global.words_allocated;
    s_crash_points = Atomic.get global.crash_points;
    s_crashes = Atomic.get global.crashes;
  }

(** [diff later earlier] gives counts accumulated between two snapshots. *)
let diff a b =
  {
    s_clwb = a.s_clwb - b.s_clwb;
    s_sfence = a.s_sfence - b.s_sfence;
    s_lines_allocated = a.s_lines_allocated - b.s_lines_allocated;
    s_words_allocated = a.s_words_allocated - b.s_words_allocated;
    s_crash_points = a.s_crash_points - b.s_crash_points;
    s_crashes = a.s_crashes - b.s_crashes;
  }

let reset () =
  Atomic.set global.clwb 0;
  Atomic.set global.sfence 0;
  Atomic.set global.lines_allocated 0;
  Atomic.set global.words_allocated 0;
  Atomic.set global.crash_points 0;
  Atomic.set global.crashes 0

let pp ppf s =
  Fmt.pf ppf "clwb=%d sfence=%d lines=%d words=%d crash_points=%d crashes=%d"
    s.s_clwb s.s_sfence s.s_lines_allocated s.s_words_allocated s.s_crash_points
    s.s_crashes
