lib/pmem/crash.ml: Atomic Fun Stats
