lib/pmem/tracking.ml: List Mutex
