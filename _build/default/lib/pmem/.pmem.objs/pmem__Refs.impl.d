lib/pmem/refs.ml: Array Atomic Latency Line_id Llc Mode Stats Tracking
