lib/pmem/pmem.ml: Crash Latency Line_id Llc Mode Refs Stats Tracking Words
