lib/pmem/words.ml: Array Atomic Latency Line_id Llc Mode Stats Tracking
