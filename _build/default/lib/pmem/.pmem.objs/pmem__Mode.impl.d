lib/pmem/mode.ml:
