lib/pmem/stats.ml: Atomic Fmt
