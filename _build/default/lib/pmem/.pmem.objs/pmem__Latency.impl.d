lib/pmem/latency.ml: Float Lazy Sys Unix
