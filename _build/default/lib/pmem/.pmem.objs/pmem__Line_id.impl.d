lib/pmem/line_id.ml: Atomic
