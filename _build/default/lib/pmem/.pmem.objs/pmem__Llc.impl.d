lib/pmem/llc.ml: Array
