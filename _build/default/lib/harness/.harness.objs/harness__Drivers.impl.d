lib/harness/drivers.ml: Art Bwtree Cceh Clht Fastfair Hot Levelhash Masstree Woart Ycsb
