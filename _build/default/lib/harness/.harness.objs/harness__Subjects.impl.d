lib/harness/subjects.ml: Art Bwtree Cceh Clht Crashtest Fastfair Hot Levelhash List Masstree Recipe Util Woart
