lib/harness/subjects.mli: Crashtest
