lib/harness/conformance.ml: Art Cceh Clht Hot Levelhash Masstree Recipe Woart
