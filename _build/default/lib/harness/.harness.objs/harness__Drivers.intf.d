lib/harness/drivers.mli: Art Bwtree Cceh Clht Fastfair Hot Levelhash Masstree Woart Ycsb
