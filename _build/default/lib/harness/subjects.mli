(** Crash-test subjects (paper §5/§7.5): one integer-keyed adapter per
    index, each constructing a fresh instance.  The baseline constructors
    accept the bug flags that reproduce the paper's §3 findings. *)

val clht : unit -> Crashtest.subject
val cceh : ?bug_doubling:bool -> unit -> Crashtest.subject
val levelhash : unit -> Crashtest.subject
val art : unit -> Crashtest.subject
val hot : unit -> Crashtest.subject
val masstree : unit -> Crashtest.subject
val bwtree : unit -> Crashtest.subject

val fastfair :
  ?bug_highkey:bool ->
  ?bug_split_order:bool ->
  ?bug_root_flush:bool ->
  unit ->
  Crashtest.subject

val woart : unit -> Crashtest.subject

(** The five RECIPE-converted indexes. *)
val converted : unit -> (unit -> Crashtest.subject) list

(** The correct baseline variants. *)
val baselines : unit -> (unit -> Crashtest.subject) list
