(** YCSB drivers: bind an index instance to a prepared workload's key
    universe (paper §7).  Ordered indexes consume the encoded key strings;
    hash indexes consume raw integer keys.  Values stored are the universe
    indexes themselves, so reads can validate. *)

val art : Ycsb.prepared -> Art.t -> Ycsb.driver
val hot : Ycsb.prepared -> Hot.t -> Ycsb.driver
val masstree : Ycsb.prepared -> Masstree.t -> Ycsb.driver
val bwtree : Ycsb.prepared -> Bwtree.t -> Ycsb.driver
val fastfair : Ycsb.prepared -> Fastfair.t -> Ycsb.driver
val woart : Ycsb.prepared -> Woart.t -> Ycsb.driver
val clht : Ycsb.prepared -> Clht.t -> Ycsb.driver
val cceh : Ycsb.prepared -> Cceh.t -> Ycsb.driver
val levelhash : Ycsb.prepared -> Levelhash.t -> Ycsb.driver
