(* Compile-time conformance: the indexes satisfy the shared interfaces of
   {!Recipe.Index_intf}.  (FAST & FAIR and P-BwTree take a key-space
   argument at creation — the paper's two key modes — so they implement the
   operations but not the [create] shape.) *)

module _ : Recipe.Index_intf.UNORDERED = Clht
module _ : Recipe.Index_intf.UNORDERED = Levelhash

(* CCEH additionally exposes the §3 bug flag in [create], so only its
   operations conform, not the constructor shape. *)
module Cceh_ops_conform : sig
  val insert : Cceh.t -> int -> int -> bool
  val lookup : Cceh.t -> int -> int option
  val delete : Cceh.t -> int -> bool
  val recover : Cceh.t -> unit
end [@warning "-32"] =
  Cceh
module _ : Recipe.Index_intf.ORDERED = Art
module _ : Recipe.Index_intf.ORDERED = Hot
module _ : Recipe.Index_intf.ORDERED = Masstree
module _ : Recipe.Index_intf.ORDERED = Woart
