bin/crash_check.ml: Arg Cmd Cmdliner Crashtest Format Harness Printf String Term
