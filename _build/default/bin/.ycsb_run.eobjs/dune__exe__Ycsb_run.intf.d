bin/ycsb_run.mli:
