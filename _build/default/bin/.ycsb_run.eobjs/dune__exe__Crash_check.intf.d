bin/crash_check.mli:
