bin/ycsb_run.ml: Arg Art Bwtree Cceh Clht Cmd Cmdliner Fastfair Format Harness Hot Levelhash Masstree Printf Recipe String Term Woart Ycsb
