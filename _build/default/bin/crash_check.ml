(* Crash-recovery checker: run the §5 consistency campaign and durability
   test against one index (optionally a deliberately buggy variant).

     dune exec bin/crash_check.exe -- --index P-ART --states 100
     dune exec bin/crash_check.exe -- --index fastfair --bug split-order *)

open Cmdliner

let subject name bug =
  match (String.lowercase_ascii name, bug) with
  | ("p-clht" | "clht"), _ -> Some Harness.Subjects.clht
  | ("p-hot" | "hot"), _ -> Some Harness.Subjects.hot
  | ("p-art" | "art"), _ -> Some Harness.Subjects.art
  | ("p-masstree" | "masstree"), _ -> Some Harness.Subjects.masstree
  | ("p-bwtree" | "bwtree"), _ -> Some Harness.Subjects.bwtree
  | ("woart" | "w"), _ -> Some Harness.Subjects.woart
  | ("level" | "levelhash"), _ -> Some Harness.Subjects.levelhash
  | ("fast&fair" | "fastfair" | "ff"), Some "highkey" ->
      Some (fun () -> Harness.Subjects.fastfair ~bug_highkey:true ())
  | ("fast&fair" | "fastfair" | "ff"), Some "split-order" ->
      Some (fun () -> Harness.Subjects.fastfair ~bug_split_order:true ())
  | ("fast&fair" | "fastfair" | "ff"), Some "root-flush" ->
      Some (fun () -> Harness.Subjects.fastfair ~bug_root_flush:true ())
  | ("fast&fair" | "fastfair" | "ff"), _ ->
      Some (fun () -> Harness.Subjects.fastfair ())
  | "cceh", Some "doubling" ->
      Some (fun () -> Harness.Subjects.cceh ~bug_doubling:true ())
  | "cceh", _ -> Some (fun () -> Harness.Subjects.cceh ())
  | _ -> None

let main index bug states sweep load seed =
  match subject index bug with
  | None ->
      Printf.eprintf "unknown index %S (or bad --bug for it)\n" index;
      1
  | Some make ->
      if sweep then begin
        let r =
          Crashtest.sweep ~make ~points:(states * 100) ~stride:1 ~load ()
        in
        Format.printf "sweep: %a@." Crashtest.pp_report r
      end
      else begin
        let r =
          Crashtest.consistency_campaign ~make ~states ~load ~ops:load
            ~threads:4 ~seed ()
        in
        Format.printf "campaign: %a@." Crashtest.pp_report r
      end;
      let v = Crashtest.durability_test ~make ~inserts:1_000 ~seed () in
      Printf.printf "durability violations: %d -> %s\n" v
        (if v = 0 then "PASS" else "FAIL");
      0

let cmd =
  let index =
    Arg.(value & opt string "P-ART" & info [ "index"; "i" ] ~docv:"INDEX")
  in
  let bug =
    Arg.(
      value
      & opt (some string) None
      & info [ "bug" ] ~docv:"BUG"
          ~doc:
            "Enable a reproduced paper bug: highkey | split-order | \
             root-flush (FAST&FAIR), doubling (CCEH).")
  in
  let states = Arg.(value & opt int 100 & info [ "states" ] ~docv:"N") in
  let sweep =
    Arg.(value & flag & info [ "sweep" ] ~doc:"Deterministic crash-point sweep")
  in
  let load = Arg.(value & opt int 400 & info [ "load" ] ~docv:"N") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ]) in
  Cmd.v
    (Cmd.info "crash_check" ~doc:"Crash-recovery testing for one index (§5)")
    Term.(const main $ index $ bug $ states $ sweep $ load $ seed)

let () = exit (Cmd.eval' cmd)
