(** P-Masstree: persistent Masstree (paper §6.5; Mao et al., EuroSys '12).
    RECIPE Conditions #1 (non-SMO) and #3 (SMO).

    Masstree is a trie-like concatenation of B+ trees: each layer indexes
    one fixed-size slice of the key (7 bytes here — the largest slice that
    fits an OCaml integer word; the paper uses 8), and keys sharing a full
    slice continue in a nested next-layer tree.  Short remainders are kept
    inline as suffixes, so a layer is only materialized when two keys share
    a full slice.

    Node protocol: 14 unsorted key/entry slots plus one 8-byte
    *permutation word* encoding the live count and sorted order.  Inserts
    append to a fresh slot and commit by atomically rewriting the
    permutation word (Condition #1); slots are never reused while a node is
    live, so readers take one atomic permutation snapshot and never retry.

    The SMO follows the paper's conversion: internal nodes are restructured
    like border nodes (permutation + B-link sibling + immutable minimum
    key), enabling a two-step atomic split — (1) persist and atomically
    link the new sibling, (2) atomically shrink the old node's permutation.
    Readers tolerate the intermediate state via the sibling bound; writers
    detect it under a try-locked node and fix it by replaying step (2) —
    the Condition #3 helper.

    Keys are arbitrary byte strings; values are 8-byte integers. *)

type t

val name : string

val create : unit -> t

(** [insert t key value] — [false] if [key] is already present. *)
val insert : t -> string -> int -> bool

(** Retry-free, lock-free lookup. *)
val lookup : t -> string -> int option

(** [update t key value] replaces an existing key's value by atomically
    swapping its entry slot; [false] if absent. *)
val update : t -> string -> int -> bool

val delete : t -> string -> bool

(** [scan t key n f] — up to [n] bindings with keys >= [key], ascending. *)
val scan : t -> string -> int -> (string -> int -> unit) -> int

val range : t -> string -> string -> (string * int) list

(** Post-crash recovery: re-initializes volatile locks, then eagerly replays
    step 2 of every interrupted split — on all B+ levels of all trie layers —
    by truncating out-of-bound ranks from each node's permutation word (the
    same repair the write path performs lazily). *)
val recover : t -> unit

(** [leak_sweep ?reclaim t] counts slots below each node's allocation
    watermark that the permutation no longer references: append-crash
    leftovers, split-truncation residue, and deleted entries awaiting a
    migration split (conflated by design — all are reader-invisible).
    [~reclaim:true] lowers the watermark over the trailing dead run.
    [repaired] echoes the node count the last [recover] fixed. *)
val leak_sweep : ?reclaim:bool -> t -> Recipe.Recovery.stats

(** Number of split-replay helper invocations (tests: proves the
    Condition #3 helper runs). *)
val helper_fixes : t -> int
