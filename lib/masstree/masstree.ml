(* P-Masstree (see masstree.mli).

   Slice words: a layer indexes 7-byte key slices packed big-endian into the
   top bits of an integer word with the slice length in the low 3 bits —
   word order equals (bytes-zero-padded, length) lexicographic order, which
   is exactly byte-string order for slices.

   Node layout (border and internal nodes share it, per the paper's §6.5
   conversion of internal nodes to border-node structure):
   - header line: [0] permutation word (count + 14 x 4-bit slot indices),
     [1] slot allocation counter, [2] leaf flag, [3] level, [4] has_min,
     [5] min slice word;
   - 14 key-slice words; 14 entry slots; leftmost-child slot (internal);
     sibling pointer.  min/has_min/leaf/level are immutable and mirrored as
     OCaml fields.

   Slots are append-only while a node is live: a permutation snapshot is a
   consistent immutable view, so reads never retry.  The permutation store
   is the single atomic commit of every non-SMO (Condition #1).  Splits are
   the two-step atomic SMO described in the paper; fix_node is the helper
   that replays step 2 after a crash (Condition #3 -> #2). *)

module W = Pmem.Words
module R = Pmem.Refs
module P = Recipe.Persist
module Lock = Util.Lock

let name = "P-Masstree"

(* Flush/fence attribution sites (index × structural location). *)
let site = Obs.Site.v ~index:name
let s_alloc = site "alloc-node"
let s_append = site ~crash:true "append-entry"
let s_fix = site "fix-node"
let s_split = site ~crash:true "split"
let s_root = site ~crash:true "new-root"
let s_layer = site ~crash:true "layer-install"
let s_update = site "update"
let s_delete = site "delete-commit"
let s_recover = site "recover"
let fanout = 14
let slice_bytes = 7

(* --- slice words ----------------------------------------------------------- *)

let slice_of key off =
  let klen = String.length key in
  let len = min slice_bytes (klen - off) in
  let rec go i acc =
    if i >= len then acc
    else go (i + 1) (acc lor (Char.code key.[off + i] lsl ((6 - i) * 8)))
  in
  (go 0 0 lsl 3) lor len

let slice_len w = w land 7

let slice_string w =
  let len = slice_len w in
  let packed = w lsr 3 in
  String.init len (fun i -> Char.chr ((packed lsr ((6 - i) * 8)) land 0xFF))

(* Remainder of [key] after the slice at [off]. *)
let suffix key off =
  let klen = String.length key in
  let consumed = min slice_bytes (klen - off) in
  String.sub key (off + consumed) (klen - off - consumed)

(* --- permutation words ------------------------------------------------------- *)

let pcount p = p land 0xF
let pslot p r = (p lsr (4 + (4 * r))) land 0xF

let pinsert p rank slot =
  let c = pcount p in
  let res = ref (c + 1) in
  for r = 0 to c do
    let s =
      if r < rank then pslot p r else if r = rank then slot else pslot p (r - 1)
    in
    res := !res lor (s lsl (4 + (4 * r)))
  done;
  !res

let premove p rank =
  let c = pcount p in
  let res = ref (c - 1) in
  for r = 0 to c - 2 do
    let s = if r < rank then pslot p r else pslot p (r + 1) in
    res := !res lor (s lsl (4 + (4 * r)))
  done;
  !res

(* Permutation keeping only ranks [0, keep). *)
let ptruncate p keep =
  let res = ref keep in
  for r = 0 to keep - 1 do
    res := !res lor (pslot p r lsl (4 + (4 * r)))
  done;
  !res

(* --- nodes -------------------------------------------------------------------- *)

type entry =
  | Empty
  | Val of string * int (* key suffix after this layer's slice, value *)
  | Link of tree (* next key layer *)
  | Child of lnode (* internal-node child pointer *)

and lnode = {
  leaf : bool;
  level : int;
  has_min : bool;
  min_key : int; (* lower-bound slice word; immutable *)
  header : W.t;
  keys : W.t; (* 14 slice words *)
  entries : entry R.t;
  leftmost : entry R.t; (* internal only *)
  sibling : lnode option R.t;
  lock : Lock.t;
}

and tree = { troot : lnode R.t }

type t = {
  top : tree;
  fixes : int Atomic.t;
  repairs : int Atomic.t; (* nodes the last [recover] split-replayed *)
}

let perm n = W.get n.header 0
let nalloc n = W.get n.header 1

let make_node ~leaf ~level ~has_min ~min_key =
  (* Word 0 is the permutation word: the single-store commit point through
     which lock-free readers discover appended slots, so it stays an atomic
     control word (release on commit, acquire on read) while the rest of
     the header is flat. *)
  let header = W.make ~name:"mt.header" ~atomic_words:[ 0 ] 8 0 in
  W.set header 2 (if leaf then 1 else 0);
  W.set header 3 level;
  W.set header 4 (if has_min then 1 else 0);
  W.set header 5 min_key;
  {
    leaf;
    level;
    has_min;
    min_key;
    header;
    keys = W.make ~name:"mt.keys" fanout 0;
    (* Atomic: live-node entry slots are commit points (Val updates, Link
       layer installs) read by lock-free traversals. *)
    entries = R.make ~name:"mt.entries" ~atomic:true fanout Empty;
    (* Flat: leftmost is written only while the node is still private
       (split/new-root construction) and published with the node itself. *)
    leftmost = R.make ~name:"mt.leftmost" ~atomic:false 1 Empty;
    (* Atomic: the sibling link is the split's publication commit (B-link
       readers follow it lock-free). *)
    sibling = R.make ~name:"mt.sibling" ~atomic:true 1 None;
    lock = Lock.create ();
  }

let persist_node ?(site = s_alloc) n =
  W.clwb_all ~site n.header;
  W.clwb_all ~site n.keys;
  R.clwb_all ~site n.entries;
  R.clwb_all ~site n.leftmost;
  R.clwb_all ~site n.sibling;
  Pmem.sfence ~site ()

let new_tree () =
  let root = make_node ~leaf:true ~level:0 ~has_min:false ~min_key:0 in
  persist_node root;
  (* Atomic: root pointer is CASed on root splits. *)
  let troot = R.make ~name:"mt.troot" ~atomic:true 1 root in
  R.clwb_all ~site:s_alloc troot;
  Pmem.sfence ~site:s_alloc ();
  { troot }

let create () =
  { top = new_tree (); fixes = Atomic.make 0; repairs = Atomic.make 0 }
let helper_fixes t = Atomic.get t.fixes

(* Upper bound of [n]: the linked sibling's immutable minimum (-1 = minus
   infinity, making every entry out of bounds — the migration-split case). *)
let bound n =
  match R.get n.sibling 0 with
  | None -> None
  | Some s -> Some (if s.has_min then s.min_key else -1)

let rec move_right n s =
  match R.get n.sibling 0 with
  | Some sib when (not sib.has_min) || s >= sib.min_key -> move_right sib s
  | Some _ | None -> n

(* --- read path -------------------------------------------------------------------- *)

(* Rank of slice [s] in [n] under permutation [p], bounded. *)
let find_rank n p s =
  let c = pcount p in
  let b = match bound n with None -> max_int | Some b -> b in
  let rec go r =
    if r >= c then None
    else
      let k = W.get n.keys (pslot p r) in
      if k >= b then None
      else if k = s then Some (pslot p r)
      else if k > s then None
      else go (r + 1)
  in
  go 0

(* Child of internal [n] covering [s]. *)
let search_child n s =
  let p = perm n in
  let c = pcount p in
  let rec go r best =
    if r >= c then best
    else
      let slot = pslot p r in
      if W.get n.keys slot <= s then go (r + 1) (R.get n.entries slot) else best
  in
  match go 0 (R.get n.leftmost 0) with
  | Child m -> m
  | Empty | Val _ | Link _ -> assert false

let rec descend_to tr s level =
  let rec go n =
    let n = move_right n s in
    if n.level = level then n else go (search_child n s)
  in
  go (R.get tr.troot 0)

and leaf_search tr s =
  let rec search n =
    let n = move_right n s in
    match find_rank n (perm n) s with
    | Some slot -> Some (R.get n.entries slot)
    | None -> (
        (* A concurrent split may have moved [s] right after our descent. *)
        match R.get n.sibling 0 with
        | Some sib when (not sib.has_min) || s >= sib.min_key -> search sib
        | Some _ | None -> None)
  in
  search (descend_to tr s 0)

let rec tree_lookup tr key off =
  let s = slice_of key off in
  match leaf_search tr s with
  | None -> None
  | Some (Val (sfx, v)) ->
      if String.equal sfx (suffix key off) then Some v else None
  | Some (Link sub) -> tree_lookup sub key (off + slice_bytes)
  | Some (Child _ | Empty) -> assert false

let lookup t key = tree_lookup t.top key 0

(* --- write-path helpers (caller holds n.lock) ---------------------------------------- *)

(* Condition #3 helper: replay step 2 of an interrupted split by dropping
   out-of-bound ranks from the permutation (one atomic commit). *)
let fix_node t n =
  match bound n with
  | None -> ()
  | Some b ->
      let p = perm n in
      let c = pcount p in
      let rec first_out r =
        if r >= c then c
        else if W.get n.keys (pslot p r) >= b then r
        else first_out (r + 1)
      in
      let cut = first_out 0 in
      if cut < c then begin
        P.commit ~site:s_fix n.header 0 (ptruncate p cut);
        Atomic.incr t.fixes [@pm.volatile]
      end

let rec lock_covering n s =
  Lock.lock n.lock;
  match R.get n.sibling 0 with
  | Some sib when (not sib.has_min) || s >= sib.min_key ->
      Lock.unlock n.lock;
      lock_covering sib s
  | Some _ | None -> n

(* Append (s, e) into a fresh slot and commit via the permutation word.
   Caller holds the lock; node must have a free slot and no duplicate. *)
let append_entry n s e =
  let slot = nalloc n in
  assert (slot < fanout);
  P.store ~site:s_append n.keys slot s;
  P.store_ref ~site:s_append n.entries slot e;
  W.clwb ~site:s_append n.keys slot;
  R.clwb ~site:s_append n.entries slot;
  Pmem.sfence ~site:s_append ();
  Pmem.Crash.point ~site:s_append ();
  (* Slot-allocation bump shares the header line with the permutation: one
     flush covers both; a crash between leaks the slot harmlessly. *)
  let p = perm n in
  let c = pcount p in
  let rec rank r =
    if r >= c then r
    else if W.get n.keys (pslot p r) > s then r
    else rank (r + 1)
  in
  P.store ~site:s_append n.header 1 (slot + 1);
  P.commit ~site:s_append n.header 0 (pinsert p (rank 0) slot) [@pm.deferred]

(* --- splits (the two-step atomic SMO) -------------------------------------------------- *)

(* Split [n] (lock held, all 14 slots allocated).  Returns the separator
   and sibling for the parent update, or None for a migration split. *)
let split_node t n =
  fix_node t n;
  let p = perm n in
  let live = pcount p in
  if live >= 2 then begin
    let mid = live / 2 in
    let sep = W.get n.keys (pslot p mid) in
    let sib =
      make_node ~leaf:n.leaf ~level:n.level ~has_min:true ~min_key:sep
    in
    let first_copied = if n.leaf then mid else mid + 1 in
    if not n.leaf then R.set sib.leftmost 0 (R.get n.entries (pslot p mid));
    let j = ref 0 in
    for r = first_copied to live - 1 do
      let slot = pslot p r in
      W.set sib.keys !j (W.get n.keys slot);
      R.set sib.entries !j (R.get n.entries slot);
      incr j
    done;
    let sp = ref !j in
    for r = 0 to !j - 1 do
      sp := !sp lor (r lsl (4 + (4 * r)))
    done;
    W.set sib.header 0 !sp;
    W.set sib.header 1 !j;
    R.set sib.sibling 0 (R.get n.sibling 0);
    persist_node ~site:s_split sib;
    Pmem.Crash.point ~site:s_split ();
    (* Step 1: atomically link the sibling. *)
    P.commit_ref ~site:s_split n.sibling 0 (Some sib);
    Pmem.Crash.point ~site:s_split ();
    (* Step 2: atomically shrink the permutation. *)
    P.commit ~site:s_split n.header 0 (ptruncate p mid);
    Some (sep, sib)
  end
  else begin
    (* Migration split: slots exhausted by dead entries — move everything
       live into a fresh sibling covering the same range; the old node
       becomes a pure hop (all searches move right past it). *)
    let sib =
      make_node ~leaf:n.leaf ~level:n.level ~has_min:n.has_min
        ~min_key:n.min_key
    in
    if not n.leaf then R.set sib.leftmost 0 (R.get n.leftmost 0);
    let j = ref 0 in
    for r = 0 to live - 1 do
      let slot = pslot p r in
      W.set sib.keys !j (W.get n.keys slot);
      R.set sib.entries !j (R.get n.entries slot);
      incr j
    done;
    let sp = ref !j in
    for r = 0 to !j - 1 do
      sp := !sp lor (r lsl (4 + (4 * r)))
    done;
    W.set sib.header 0 !sp;
    W.set sib.header 1 !j;
    R.set sib.sibling 0 (R.get n.sibling 0);
    persist_node ~site:s_split sib;
    Pmem.Crash.point ~site:s_split ();
    P.commit_ref ~site:s_split n.sibling 0 (Some sib);
    Pmem.Crash.point ~site:s_split ();
    P.commit ~site:s_split n.header 0 0;
    None
  end

(* --- inserts --------------------------------------------------------------------------- *)

(* Build a fresh layer holding two distinct (suffix, value) bindings. *)
let rec build_layer a va b vb =
  let tr = new_tree () in
  let root = R.get tr.troot 0 in
  let sa = slice_of a 0 and sb = slice_of b 0 in
  if sa <> sb then begin
    let lo_s, lo, hi_s, hi =
      if sa < sb then (sa, Val (suffix a 0, va), sb, Val (suffix b 0, vb))
      else (sb, Val (suffix b 0, vb), sa, Val (suffix a 0, va))
    in
    W.set root.keys 0 lo_s;
    R.set root.entries 0 lo;
    W.set root.keys 1 hi_s;
    R.set root.entries 1 hi;
    W.set root.header 1 2;
    W.set root.header 0 (2 lor (0 lsl 4) lor (1 lsl 8))
  end
  else begin
    (* Both continue with the same full slice: nest one level deeper. *)
    let sub = build_layer (suffix a 0) va (suffix b 0) vb in
    W.set root.keys 0 sa;
    R.set root.entries 0 (Link sub);
    W.set root.header 1 1;
    W.set root.header 0 1
  end;
  (* [new_tree] already persisted the whole fresh node; only the lines
     written since — the first key/entry slots and the header — need
     flushing, not another full [persist_node]. *)
  W.clwb ~site:s_alloc root.keys 0;
  R.clwb ~site:s_alloc root.entries 0;
  W.clwb ~site:s_alloc root.header 0;
  Pmem.sfence ~site:s_alloc ();
  tr

(* Insert a separator into the internal nodes of layer [tr] after a split. *)
let rec parent_insert t tr n sep sib =
  if R.get tr.troot 0 == n then begin
    (* Root split: grow the layer tree. *)
    let nr =
      make_node ~leaf:false ~level:(n.level + 1) ~has_min:false ~min_key:0
    in
    R.set nr.leftmost 0 (Child n);
    W.set nr.keys 0 sep;
    R.set nr.entries 0 (Child sib);
    W.set nr.header 1 1;
    W.set nr.header 0 1;
    persist_node ~site:s_root nr;
    Pmem.Crash.point ~site:s_root ();
    ignore (P.commit_cas_ref ~site:s_root tr.troot 0 ~expected:n ~desired:nr);
    Lock.unlock n.lock
  end
  else begin
    let r = R.get tr.troot 0 in
    if r.level <= n.level then begin
      (* Degraded top (a root split's new root was lost to a crash): grow a
         fresh root over the current root chain. *)
      let nr =
        make_node ~leaf:false ~level:(n.level + 1) ~has_min:false ~min_key:0
      in
      R.set nr.leftmost 0 (Child r);
      W.set nr.keys 0 sep;
      R.set nr.entries 0 (Child sib);
      W.set nr.header 1 1;
      W.set nr.header 0 1;
      persist_node ~site:s_root nr;
      Pmem.Crash.point ~site:s_root ();
      let swapped = P.commit_cas_ref ~site:s_root tr.troot 0 ~expected:r ~desired:nr in
      Lock.unlock n.lock;
      if not swapped then internal_insert t tr sep (Child sib) (n.level + 1)
    end
    else begin
      Lock.unlock n.lock;
      internal_insert t tr sep (Child sib) (n.level + 1)
    end
  end

(* Insert (s, e) into the internal node covering [s] at [level]. *)
and internal_insert t tr s e level =
  let n = descend_to tr s level in
  let n = lock_covering n s in
  fix_node t n;
  if nalloc n = fanout then begin
    (match split_node t n with
    | Some (sep, sib) -> parent_insert t tr n sep sib
    | None -> Lock.unlock n.lock);
    internal_insert t tr s e level
  end
  else begin
    append_entry n s e;
    Lock.unlock n.lock
  end

(* Insert into layer [tr] (the border-node Condition #1 commit, layer
   creation, or recursion into a deeper layer). *)
let rec tree_insert t tr key value off =
  let s = slice_of key off in
  let rest = suffix key off in
  let n = descend_to tr s 0 in
  let n = lock_covering n s in
  fix_node t n;
  match find_rank n (perm n) s with
  | Some slot -> (
      match R.get n.entries slot with
      | Val (sfx2, v2) ->
          if String.equal sfx2 rest then begin
            Lock.unlock n.lock;
            false
          end
          else begin
            (* Two keys share a full slice: materialize the next layer and
               commit it with one atomic entry swap. *)
            let sub = build_layer sfx2 v2 rest value in
            Pmem.Crash.point ~site:s_layer ();
            P.commit_ref ~site:s_layer n.entries slot (Link sub);
            Lock.unlock n.lock;
            true
          end
      | Link sub ->
          Lock.unlock n.lock;
          tree_insert t sub key value (off + slice_bytes)
      | Empty | Child _ -> assert false)
  | None ->
      if nalloc n < fanout then begin
        append_entry n s (Val (rest, value));
        Lock.unlock n.lock;
        true
      end
      else begin
        (match split_node t n with
        | Some (sep, sib) -> parent_insert t tr n sep sib
        | None -> Lock.unlock n.lock);
        tree_insert t tr key value off
      end

let insert t key value = tree_insert t t.top key value 0

(* In-place update: swap the slot's entry for a fresh [Val] — one atomic
   pointer store (Condition #1).  Under the node lock, because the same
   slot's Val -> Link layer-creation transition is also a plain store. *)
let rec tree_update t tr key value off =
  let s = slice_of key off in
  let n = descend_to tr s 0 in
  let n = lock_covering n s in
  fix_node t n;
  match find_rank n (perm n) s with
  | None ->
      Lock.unlock n.lock;
      false
  | Some slot -> (
      match R.get n.entries slot with
      | Val (sfx, _) ->
          let r =
            if String.equal sfx (suffix key off) then begin
              P.commit_ref ~site:s_update n.entries slot (Val (sfx, value));
              true
            end
            else false
          in
          Lock.unlock n.lock;
          r
      | Link sub ->
          Lock.unlock n.lock;
          tree_update t sub key value (off + slice_bytes)
      | Empty | Child _ -> assert false)

let update t key value = tree_update t t.top key value 0

(* --- delete ------------------------------------------------------------------------------ *)

let rec tree_delete t tr key off =
  let s = slice_of key off in
  let n = descend_to tr s 0 in
  let n = lock_covering n s in
  fix_node t n;
  let p = perm n in
  let c = pcount p in
  let rec rank_of r =
    if r >= c then None
    else if W.get n.keys (pslot p r) = s then Some r
    else if W.get n.keys (pslot p r) > s then None
    else rank_of (r + 1)
  in
  match rank_of 0 with
  | None ->
      Lock.unlock n.lock;
      false
  | Some r -> (
      match R.get n.entries (pslot p r) with
      | Val (sfx, _) ->
          if String.equal sfx (suffix key off) then begin
            (* Deletion = one atomic permutation update (§6.5). *)
            P.commit ~site:s_delete n.header 0 (premove p r);
            Lock.unlock n.lock;
            true
          end
          else begin
            Lock.unlock n.lock;
            false
          end
      | Link sub ->
          Lock.unlock n.lock;
          tree_delete t sub key (off + slice_bytes)
      | Empty | Child _ -> assert false)

let delete t key = tree_delete t t.top key 0

(* --- ordered scans ------------------------------------------------------------------------ *)

exception Scan_done

let scan_fold t start nwant f =
  let emitted = ref 0 in
  let emit key v =
    if !emitted >= nwant then raise Scan_done;
    f key v;
    incr emitted
  in
  (* [st]: the portion of the start key relevant inside this layer, or None
     when the layer's accumulated prefix already exceeds the start key. *)
  let rec layer tr acc st =
    let s0 = match st with None -> -1 | Some st -> slice_of st 0 in
    let leaf =
      match st with
      | None -> leftmost_leaf (R.get tr.troot 0)
      | Some _ -> move_right (descend_to tr s0 0) s0
    in
    walk_leaf tr acc st s0 leaf
  and leftmost_leaf n =
    if n.leaf then n
    else
      leftmost_leaf
        (match R.get n.leftmost 0 with
        | Child m -> m
        | Empty | Val _ | Link _ -> assert false)
  and walk_leaf tr acc st s0 n =
    let p = perm n in
    let c = pcount p in
    let b = match bound n with None -> max_int | Some b -> b in
    for r = 0 to c - 1 do
      let slot = pslot p r in
      let k = W.get n.keys slot in
      if k < b && k >= s0 then begin
        let ks = slice_string k in
        match R.get n.entries slot with
        | Val (sfx, v) ->
            let local = ks ^ sfx in
            let keep =
              match st with
              | None -> true
              | Some st -> k > s0 || String.compare local st >= 0
            in
            if keep then emit (acc ^ local) v
        | Link sub ->
            let st' =
              match st with
              | Some st when k = s0 && String.length st > slice_bytes ->
                  Some (suffix st 0)
              | Some st when k = s0 && String.length st <= slice_bytes ->
                  (* start ends within this slice: whole sublayer >= start
                     iff slice >= start prefix, which k >= s0 ensured *)
                  None
              | _ -> None
            in
            layer sub (acc ^ ks) st'
        | Empty | Child _ -> assert false
      end
    done;
    match R.get n.sibling 0 with
    | Some sib -> walk_leaf tr acc st s0 sib
    | None -> ()
  in
  (try layer t.top "" (Some start) with Scan_done -> ());
  !emitted

let scan t start nwant f = if nwant <= 0 then 0 else scan_fold t start nwant f

let range t lo hi =
  let acc = ref [] in
  let exception Past_hi in
  (try
     ignore
       (scan_fold t lo max_int (fun k v ->
            if String.compare k hi >= 0 then raise Past_hi;
            acc := (k, v) :: !acc))
   with Past_hi -> ());
  List.rev !acc

(* --- recovery ------------------------------------------------------------------------------- *)

(* Visit every node of every trie layer: each B+ level's full sibling chain
   (split siblings stay reachable through the B-link even before the parent
   is updated), descending through [leftmost], and recursing into [Link]
   sub-layers of live leaf slots. *)
let rec iter_layer_nodes tr f =
  let visit n =
    f n;
    if n.leaf then begin
      let p = perm n in
      for r = 0 to pcount p - 1 do
        match R.get n.entries (pslot p r) with
        | Link sub -> iter_layer_nodes sub f
        | Empty | Val _ | Child _ -> ()
      done
    end
  in
  let rec down n =
    let rec chain m =
      visit m;
      match R.get m.sibling 0 with Some s -> chain s | None -> ()
    in
    chain n;
    if not n.leaf then
      match R.get n.leftmost 0 with
      | Child m -> down m
      | Empty | Val _ | Link _ -> ()
  in
  down (R.get tr.troot 0)

(* Eagerly replay step 2 of every interrupted split on all levels of all
   layers: [fix_node] drops out-of-bound ranks from the permutation — the
   state a crash between the sibling-link commit and the permutation
   truncation leaves behind.  Readers already tolerate it (bounded
   [find_rank]) and writers fix it lazily; recovery makes it eager. *)
let recover t =
  Lock.new_epoch ();
  let before = Atomic.get t.fixes in
  iter_layer_nodes t.top (fun n -> fix_node t n);
  Atomic.set t.repairs (Atomic.get t.fixes - before) [@pm.volatile]

(* Sweep slots allocated ([< nalloc]) but absent from the permutation: a
   crash between [append_entry]'s slot write and its permutation commit
   leaks the slot; split truncation and deletions also leave dead slots
   (awaiting migration), which this conflates by design — all are invisible
   to readers.  [~reclaim:true] shrinks the allocation watermark over the
   trailing dead run (the append-crash case); interior dead slots need a
   migration split, not recovery. *)
let leak_sweep ?(reclaim = false) t =
  let orphans = ref 0 and reclaimed = ref 0 in
  iter_layer_nodes t.top (fun n ->
      let p = perm n in
      let c = pcount p in
      let in_perm slot =
        let rec go r = r < c && (pslot p r = slot || go (r + 1)) in
        go 0
      in
      let na = nalloc n in
      for slot = 0 to na - 1 do
        if not (in_perm slot) then incr orphans
      done;
      if reclaim then begin
        let rec trim k =
          if k > 0 && not (in_perm (k - 1)) then begin
            incr reclaimed;
            trim (k - 1)
          end
          else k
        in
        let na' = trim na in
        if na' <> na then P.commit ~site:s_recover n.header 1 na'
      end);
  { Recipe.Recovery.repaired = Atomic.get t.repairs; orphans = !orphans; reclaimed = !reclaimed }
