(** Level Hashing: write-optimized two-level persistent hash table baseline
    (Zuo et al., OSDI '18; paper §7.2).

    Two bucket arrays: a top level of N cache-line buckets (4 slots each) and
    a bottom level of N/2 buckets, where bottom bucket i backs top buckets 2i
    and 2i+1.  Every key has two hash locations per level, so an operation
    probes up to four non-contiguous cache lines — the access pattern behind
    Level Hashing's higher LLC miss count in Table 4.  When all four
    candidate buckets are full, one resident is moved to its alternate
    location; if that also fails, the table resizes by building a fresh top
    level twice the size, reusing the old top as the new bottom and
    rehashing only the old bottom's entries.

    Crash consistency: slot writes commit value-before-key like CLHT; a
    resize writes only into the private new level and commits by swapping a
    single table record; deletes clear every replica of a key, so the
    transient duplicates created by movement can never resurrect.

    Keys are positive integers (0 = empty sentinel); values are 8-byte
    integers. *)

type t

val name : string

(** [create ?capacity ()] — [capacity] is the initial size in cache-line
    buckets across both levels (default = the paper's 48 KB). *)
val create : ?capacity:int -> unit -> t

(** [insert t key value] — [false] if [key] is already present. *)
val insert : t -> int -> int -> bool

val lookup : t -> int -> int option
val delete : t -> int -> bool

(** Number of live bindings (approximate while writers are active). *)
val length : t -> int

(** Number of full-table resizes performed (tests). *)
val resize_count : t -> int

(** Number of in-table movements performed (tests). *)
val move_count : t -> int

(** Post-crash recovery: re-initializes volatile locks, clears the benign
    duplicate replicas a crash mid-movement leaves behind (copy committed,
    source not yet cleared; the first candidate position in probe order —
    the one [lookup] answers from — is kept), and rebuilds the volatile
    count. *)
val recover : t -> unit

(** [leak_sweep ?reclaim t] counts duplicate replicas — slots beyond a key's
    first candidate position in probe order.  They are invisible to readers
    and fully cleared by [delete], so they cost capacity, not correctness.
    [~reclaim:true] clears them.  [repaired] echoes what the last [recover]
    cleared. *)
val leak_sweep : ?reclaim:bool -> t -> Recipe.Recovery.stats
