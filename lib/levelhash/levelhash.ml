(* Level Hashing (see levelhash.mli).

   Locking: a fixed array of lock stripes.  A writer collects the stripes of
   every bucket it may touch, deduplicates, sorts, and acquires them in
   order — so ordinary writers are deadlock-free among themselves.  Movement
   and resize additionally serialize on a single structure lock acquired
   *before* any stripe, preserving the global acquisition order.  Readers
   are lock-free with CLHT-style key re-check snapshots. *)

module W = Pmem.Words
module R = Pmem.Refs
module P = Recipe.Persist
module Lock = Util.Lock

let name = "Level"

(* Flush/fence attribution sites (index × structural location). *)
let site = Obs.Site.v ~index:name
let s_alloc = site "alloc-table"
let s_insert = site ~crash:true "slot-commit"
let s_move = site ~crash:true "movement"
let s_resize = site ~crash:true "resize"
let s_delete = site "delete-commit"
let s_recover = site "recover"

let slots_per_bucket = 4
let n_stripes = 256

type table = {
  top : W.t; (* top_n buckets * 8 words *)
  top_n : int;
  bottom : W.t; (* top_n/2 buckets * 8 words *)
  bottom_n : int;
  meta : W.t;
}

type t = {
  table : table R.t;
  stripes : Lock.t array;
  structure_lock : Lock.t; (* serializes movement and resize *)
  count : int Atomic.t;
  resizes : int Atomic.t;
  moves : int Atomic.t;
  repairs : int Atomic.t; (* duplicates the last [recover] cleared *)
}

let hash1 k =
  let z = (k lxor (k lsr 33)) * 0x2545F491 land max_int in
  (z lxor (z lsr 29)) * 0x1CE4E5B9 land max_int

let hash2 k =
  let z = (k + 0x61C88647) * 0x3C6EF35F land max_int in
  (z lxor (z lsr 31)) * 0x27D4EB2F land max_int

let make_table top_n =
  assert (top_n mod 2 = 0);
  let bottom_n = top_n / 2 in
  let meta = W.make ~name:"level.meta" 8 0 in
  W.set meta 0 top_n;
  {
    top = W.make ~name:"level.top" (top_n * 8) 0;
    top_n;
    bottom = W.make ~name:"level.bottom" (bottom_n * 8) 0;
    bottom_n;
    meta;
  }

let persist_table ?(site = s_alloc) tb =
  W.clwb_all ~site tb.top;
  W.clwb_all ~site tb.bottom;
  W.clwb_all ~site tb.meta;
  Pmem.sfence ~site ()

let default_capacity = 48 * 1024 / 64

let create ?(capacity = default_capacity) () =
  (* capacity counts both levels: top_n + top_n/2 buckets. *)
  let top_n = max 4 (Util.Bits.next_power_of_two (capacity * 2 / 3)) in
  let tb = make_table top_n in
  persist_table tb;
  (* Atomic: the table pointer is the resize commit point publishing the
     freshly built two-level table. *)
  let table = R.make ~name:"level.table" ~atomic:true 1 tb in
  R.clwb_all ~site:s_alloc table;
  Pmem.sfence ~site:s_alloc ();
  {
    table;
    stripes = Array.init n_stripes (fun _ -> Lock.create ());
    structure_lock = Lock.create ();
    count = Atomic.make 0;
    resizes = Atomic.make 0;
    moves = Atomic.make 0;
    repairs = Atomic.make 0;
  }

let length t = Atomic.get t.count
let resize_count t = Atomic.get t.resizes
let move_count t = Atomic.get t.moves

(* The four candidate buckets of a key: (level array, bucket index). *)
let candidates tb k =
  let t1 = hash1 k mod tb.top_n and t2 = hash2 k mod tb.top_n in
  [|
    (tb.top, t1); (tb.top, t2); (tb.bottom, t1 / 2); (tb.bottom, t2 / 2);
  |]

(* Stripe ids covering the candidate buckets (bottom offset keeps top and
   bottom buckets from aliasing systematically). *)
let stripe_ids tb k =
  let t1 = hash1 k mod tb.top_n and t2 = hash2 k mod tb.top_n in
  let ids =
    [ t1 mod n_stripes; t2 mod n_stripes;
      ((t1 / 2) + 97) mod n_stripes; ((t2 / 2) + 97) mod n_stripes ]
  in
  List.sort_uniq compare ids

let lock_stripes t ids = List.iter (fun i -> Lock.lock t.stripes.(i)) ids
let unlock_stripes t ids = List.iter (fun i -> Lock.unlock t.stripes.(i)) ids

(* --- slot primitives -------------------------------------------------------- *)

let slot_key arr b j = W.get arr ((b * 8) + (2 * j))
let slot_val arr b j = W.get arr ((b * 8) + (2 * j) + 1)

(* Commit one slot: value first, then the atomic key store; both words share
   the bucket's cache line so a single flush covers them. *)
let write_slot ?(site = s_insert) arr b j k v =
  P.store ~site arr ((b * 8) + (2 * j) + 1) v;
  Pmem.Crash.point ~site ();
  P.commit ~site arr ((b * 8) + (2 * j)) k [@pm.deferred]

let clear_slot ?(site = s_delete) arr b j = P.commit ~site arr ((b * 8) + (2 * j)) 0

(* Slot write into a table that is not yet published (resize build): plain
   stores only — the table is private, so there is nothing to commit; one
   [persist_table] before the swap flushes every line exactly once. *)
let write_slot_private arr b j k v =
  P.store ~site:s_resize arr ((b * 8) + (2 * j) + 1) v;
  P.store ~site:s_resize arr ((b * 8) + (2 * j)) k

let find_in_bucket arr b k =
  let rec go j =
    if j >= slots_per_bucket then None
    else if slot_key arr b j = k then Some j
    else go (j + 1)
  in
  go 0

let free_in_bucket arr b =
  let rec go j =
    if j >= slots_per_bucket then None
    else if slot_key arr b j = 0 then Some j
    else go (j + 1)
  in
  go 0

(* --- lock-free read path ----------------------------------------------------- *)

let lookup t k =
  if k <= 0 then invalid_arg "Levelhash.lookup: key must be positive";
  let one_pass () =
    let tb = R.get t.table 0 in
    let cands = candidates tb k in
    let rec probe i =
      if i >= Array.length cands then None
      else
        let arr, b = cands.(i) in
        let rec slot j =
          if j >= slots_per_bucket then probe (i + 1)
          else if slot_key arr b j = k then begin
            let v = slot_val arr b j in
            if slot_key arr b j = k then Some v else slot j
          end
          else slot (j + 1)
        in
        slot 0
    in
    probe 0
  in
  match one_pass () with
  | Some _ as hit -> hit
  | None ->
      (* A concurrent movement may have displaced the key against our probe
         order (cleared at the source after we passed, copied to a bucket we
         had already checked).  One more pass closes the window: by then the
         copy is in place. *)
      one_pass ()

(* --- write path ---------------------------------------------------------------- *)

(* Acquire this key's stripes against the current table, rechecking the
   table pointer after acquisition. *)
let rec lock_for t k =
  let tb = R.get t.table 0 in
  let ids = stripe_ids tb k in
  lock_stripes t ids;
  if R.get t.table 0 == tb then (tb, ids)
  else begin
    unlock_stripes t ids;
    lock_for t k
  end

let exists tb k =
  Array.exists (fun (arr, b) -> find_in_bucket arr b k <> None) (candidates tb k)

(* Deletes must clear *every* replica: movement (and crashes inside it)
   leave transient duplicates. *)
let delete t k =
  if k <= 0 then invalid_arg "Levelhash.delete: key must be positive";
  let tb, ids = lock_for t k in
  let deleted = ref false in
  Array.iter
    (fun (arr, b) ->
      match find_in_bucket arr b k with
      | Some j ->
          clear_slot arr b j;
          deleted := true
      | None -> ())
    (candidates tb k);
  unlock_stripes t ids;
  if !deleted then Atomic.decr t.count [@pm.volatile];
  !deleted

(* Try to place (k, v) in one of the four candidate buckets via [write].
   Caller holds this key's stripes (live table) or owns the table outright
   (resize build). *)
let try_place_with write tb k v =
  let cands = candidates tb k in
  let rec go i =
    if i >= Array.length cands then false
    else
      let arr, b = cands.(i) in
      match free_in_bucket arr b with
      | Some j ->
          write arr b j k v;
          true
      | None -> go (i + 1)
  in
  go 0

let try_place tb k v =
  try_place_with (fun arr b j k v -> write_slot arr b j k v) tb k v

(* Movement: evict one occupant of a top candidate bucket to its alternate
   top location.  Caller holds every stripe (the escalation path), so any
   bucket may be touched freely. *)
let try_movement t tb k =
  let moved = ref false in
  let t1 = hash1 k mod tb.top_n and t2 = hash2 k mod tb.top_n in
  let try_bucket b =
    if not !moved then
      for j = 0 to slots_per_bucket - 1 do
        if not !moved then begin
          let vk = slot_key tb.top b j in
          if vk <> 0 then begin
            let alt =
              let a1 = hash1 vk mod tb.top_n and a2 = hash2 vk mod tb.top_n in
              if a1 = b then a2 else a1
            in
            if alt <> b then
              match free_in_bucket tb.top alt with
              | Some j' ->
                  let vv = slot_val tb.top b j in
                  (* Copy first, then clear the source: a crash in between
                     leaves a benign duplicate that delete clears fully. *)
                  write_slot ~site:s_move tb.top alt j' vk vv;
                  Pmem.Crash.point ~site:s_move ();
                  clear_slot ~site:s_move tb.top b j;
                  Atomic.incr t.moves [@pm.volatile];
                  moved := true
              | None -> ()
          end
        end
      done
  in
  try_bucket t1;
  try_bucket t2;
  !moved

(* Build a resized table containing everything in [tb] plus the pending
   binding; writes touch only the private new top level, so a crash before
   the commit leaves the live table untouched. *)
let rec build_resized tb top_n pending =
  let fresh = make_table top_n in
  (* The new bottom is logically the old top; we copy it rather than alias so
     the old table stays immutable for concurrent readers and crash states. *)
  let ok = ref true in
  let place k v =
    if !ok && not (try_place_with write_slot_private fresh k v) then ok := false
  in
  for b = 0 to tb.top_n - 1 do
    for j = 0 to slots_per_bucket - 1 do
      let k = slot_key tb.top b j in
      if k <> 0 then place k (slot_val tb.top b j)
    done
  done;
  for b = 0 to tb.bottom_n - 1 do
    for j = 0 to slots_per_bucket - 1 do
      let k = slot_key tb.bottom b j in
      if k <> 0 then place k (slot_val tb.bottom b j)
    done
  done;
  (match pending with Some (k, v) -> place k v | None -> ());
  if !ok then fresh else build_resized tb (top_n * 2) pending

let resize t tb pending =
  let fresh = build_resized tb (tb.top_n * 2) pending in
  persist_table ~site:s_resize fresh;
  Pmem.Crash.point ~site:s_resize ();
  P.commit_ref ~site:s_resize t.table 0 fresh;
  Atomic.incr t.resizes [@pm.volatile]

(* Escalation path: all four candidate buckets were full.  Take the
   structure lock, then *every* stripe in order — movement and resize may
   touch arbitrary buckets, and a resize must not race writers still
   modifying the table it is copying. *)
let insert_escalated t k v =
  Lock.lock t.structure_lock;
  for i = 0 to n_stripes - 1 do
    Lock.lock t.stripes.(i)
  done;
  let tb = R.get t.table 0 in
  let inserted =
    if exists tb k then false
    else if try_place tb k v then true
    else if try_movement t tb k && try_place tb k v then true
    else begin
      (* Resize with the pending binding folded in; the single table-record
         swap is the commit point. *)
      resize t tb (Some (k, v));
      true
    end
  in
  for i = n_stripes - 1 downto 0 do
    Lock.unlock t.stripes.(i)
  done;
  Lock.unlock t.structure_lock;
  inserted

let insert t k v =
  if k <= 0 then invalid_arg "Levelhash.insert: key must be positive";
  let tb, ids = lock_for t k in
  if exists tb k then begin
    unlock_stripes t ids;
    false
  end
  else if try_place tb k v then begin
    unlock_stripes t ids;
    Atomic.incr t.count [@pm.volatile];
    true
  end
  else begin
    unlock_stripes t ids;
    let inserted = insert_escalated t k v in
    if inserted then Atomic.incr t.count [@pm.volatile];
    inserted
  end

(* --- recovery ---------------------------------------------------------------- *)

(* Every occupied slot of both levels. *)
let iter_slots tb f =
  let level arr n =
    for b = 0 to n - 1 do
      for j = 0 to slots_per_bucket - 1 do
        let k = slot_key arr b j in
        if k <> 0 then f arr b j k
      done
    done
  in
  level tb.top tb.top_n;
  level tb.bottom tb.bottom_n

(* Positions among [k]'s candidate buckets currently holding [k], in probe
   order, physical duplicates removed (the two top candidates can alias). *)
let replica_positions tb k =
  let pos = ref [] in
  Array.iter
    (fun (arr, b) ->
      for j = 0 to slots_per_bucket - 1 do
        if
          slot_key arr b j = k
          && not
               (List.exists
                  (fun (a, b', j') -> a == arr && b' = b && j' = j)
                  !pos)
        then pos := (arr, b, j) :: !pos
      done)
    (candidates tb k);
  List.rev !pos

(* Post-crash recovery: re-initialize the volatile locks, clear the benign
   duplicate replicas a crash inside [try_movement] leaves (copy committed,
   source not yet cleared — the first position in probe order is kept, which
   is the one [lookup] answers from), and rebuild the volatile count.  A
   crash during resize needs nothing: the fresh table was private until the
   table-pointer commit. *)
let recover t =
  Lock.new_epoch ();
  let tb = R.get t.table 0 in
  let seen = Hashtbl.create 256 in
  let repaired = ref 0 in
  iter_slots tb (fun _ _ _ k ->
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        match replica_positions tb k with
        | [] | [ _ ] -> ()
        | _keep :: dups ->
            List.iter
              (fun (arr, b, j) ->
                clear_slot ~site:s_recover arr b j;
                incr repaired)
              dups
      end);
  Atomic.set t.count (Hashtbl.length seen) [@pm.volatile];
  Atomic.set t.repairs !repaired [@pm.volatile]

(* Count (and with [~reclaim:true] clear) duplicate replicas: slots beyond a
   key's first candidate position in probe order.  Readers never see them
   ([lookup] stops at the first hit) and [delete] clears all of them, so
   they cost capacity, not correctness. *)
let leak_sweep ?(reclaim = false) t =
  let tb = R.get t.table 0 in
  let seen = Hashtbl.create 256 in
  let orphans = ref 0 and reclaimed = ref 0 in
  iter_slots tb (fun _ _ _ k ->
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        match replica_positions tb k with
        | [] | [ _ ] -> ()
        | _keep :: dups ->
            orphans := !orphans + List.length dups;
            if reclaim then
              List.iter
                (fun (arr, b, j) ->
                  clear_slot ~site:s_recover arr b j;
                  incr reclaimed)
                dups
      end);
  { Recipe.Recovery.repaired = Atomic.get t.repairs; orphans = !orphans; reclaimed = !reclaimed }
