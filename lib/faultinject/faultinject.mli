(** Deterministic fault plans over the {!Pmem.Fault} seam.

    A plan intercepts the substrate's allocation/store/flush/fence stream
    (visible only while {!Pmem.Mode.f_inject} is set — the off path costs
    one extra bit in the flags test the accessors already perform) and
    injects exactly one fault:

    - {!Crash_at_flush}/{!Crash_at_fence}: raise
      {!Pmem.Crash.Simulated_crash} at the k-th flush/fence, optionally
      restricted to one {!Obs.Site} by name ("P-CLHT/slot-commit") — the
      flush is skipped, the line stays dirty;
    - {!Crash_at_store}: crash at the k-th persistent store, between a store
      and its flush — strictly more crash positions than the index's own
      declared {!Pmem.Crash.point}s;
    - {!Alloc_fail}: raise {!Pmem.Fault.Alloc_failed} at the k-th
      allocation, before the object exists;
    - {!Torn_flush}: at the k-th flush, persist only a store-order prefix
      ([keep mod (pending+1)] stores) of the flushed line's unflushed
      stores, then crash — a line torn by early eviction.

    Plans are one-shot: firing disarms everything first, so recovery runs
    injection-free unless the test arms a fresh plan (crash-during-recovery).
    All counters are process-global atomics, so a fixed seed produces the
    same fault position in single-domain runs and the same fault *count* in
    multi-domain runs. *)

type plan =
  | Crash_at_flush of { site : string option; k : int }
  | Crash_at_fence of { site : string option; k : int }
  | Crash_at_store of { k : int }
  | Alloc_fail of { k : int }
  | Torn_flush of { k : int; keep : int }

val describe : plan -> string

val arm : plan -> unit
(** Install [plan]'s hooks and enable inject mode.  Replaces any armed
    plan. *)

val disarm : unit -> unit
(** Remove all hooks and clear inject mode.  Idempotent. *)

val armed : unit -> bool
(** A plan is installed and has not fired yet. *)

val fire_count : unit -> int
(** Process-global count of faults injected by this module. *)

val random_plan : Util.Rng.t -> max_events:int -> plan
(** Draw a plan kind and position from [rng]; positions land in
    [1, max_events] (a position past the run's last event never fires,
    yielding a legal crash-free state). *)

type event_counts = {
  flushes : int;
  fences : int;
  stores : int;
  allocs : int;
}

val count_events : (unit -> unit) -> event_counts
(** Run a closure with counting hooks (nothing fires) and report its event
    totals — for sizing deterministic plans, like {!Pmem.Crash.count_points}. *)
