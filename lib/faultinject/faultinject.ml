(* Pluggable fault plans over the {!Pmem.Fault} seam (see faultinject.mli).

   A plan is armed globally (like {!Pmem.Crash} arming): [arm] installs the
   plan's hooks in {!Pmem.Fault} and sets {!Pmem.Mode.f_inject}, so every
   substrate allocation, store, flush and fence reports in.  Plans are
   one-shot: the hook that fires first disarms the whole plan before raising,
   so recovery code running after the crash executes injection-free unless a
   new plan is armed (that is how crash-during-recovery is exercised).

   Determinism: every counter is a single [Atomic.t] countdown decremented
   exactly once per matching event.  Under one domain the k-th event is
   always the same event for a fixed seed; under several domains the
   interleaving varies but the *count* of events before the crash does not,
   which is what the campaign's zero-lost-acked invariant needs. *)

type plan =
  | Crash_at_flush of { site : string option; k : int }
  | Crash_at_fence of { site : string option; k : int }
  | Crash_at_store of { k : int }
  | Alloc_fail of { k : int }
  | Torn_flush of { k : int; keep : int }

let describe = function
  | Crash_at_flush { site = None; k } -> Printf.sprintf "crash at flush #%d" k
  | Crash_at_flush { site = Some s; k } ->
      Printf.sprintf "crash at flush #%d of site %s" k s
  | Crash_at_fence { site = None; k } -> Printf.sprintf "crash at fence #%d" k
  | Crash_at_fence { site = Some s; k } ->
      Printf.sprintf "crash at fence #%d of site %s" k s
  | Crash_at_store { k } -> Printf.sprintf "crash at store #%d" k
  | Alloc_fail { k } -> Printf.sprintf "allocation failure at alloc #%d" k
  | Torn_flush { k; keep } ->
      Printf.sprintf "torn line at flush #%d (keep %d)" k keep

(* Crash attribution when the intercepted event carries no index site. *)
let site_fire = Obs.Site.v ~index:"faultinject" ~crash:true "fire"

let fires = Atomic.make 0
let fire_count () = Atomic.get fires

let armed_plan : plan option ref = ref None
let armed () = !armed_plan <> None

let disarm () =
  Pmem.Fault.uninstall ();
  Pmem.Mode.set_inject false;
  armed_plan := None

(* Fire a crash at an intercepted event: disarm first (one-shot), attribute
   to the event's own site when it has one. *)
let fire site =
  disarm ();
  Atomic.incr fires;
  let s = match site with Some _ -> site | None -> Some site_fire in
  Pmem.Crash.fire s

let site_matches filter site =
  match filter with
  | None -> true
  | Some name -> (
      match site with
      | Some s -> String.equal (Obs.Site.name s) name
      | None -> false)

(* The k-th matching event, exactly once across domains. *)
let countdown k =
  let c = Atomic.make k in
  fun () -> Atomic.fetch_and_add c (-1) = 1

let arm plan =
  disarm ();
  armed_plan := Some plan;
  let hooks =
    match plan with
    | Crash_at_flush { site; k } ->
        let hit = countdown k in
        {
          Pmem.Fault.noop with
          f_clwb = (fun s _line -> if site_matches site s && hit () then fire s);
        }
    | Crash_at_fence { site; k } ->
        let hit = countdown k in
        {
          Pmem.Fault.noop with
          f_sfence = (fun s -> if site_matches site s && hit () then fire s);
        }
    | Crash_at_store { k } ->
        let hit = countdown k in
        {
          Pmem.Fault.noop with
          f_store = (fun _line _persist -> if hit () then fire None);
        }
    | Alloc_fail { k } ->
        let hit = countdown k in
        {
          Pmem.Fault.noop with
          f_alloc =
            (fun name ->
              if hit () then begin
                disarm ();
                Atomic.incr fires;
                raise (Pmem.Fault.Alloc_failed name)
              end);
        }
    | Torn_flush { k; keep } ->
        let hit = countdown k in
        (* Pending-store log, keyed by global line.  Entries are the persist
           closures of unflushed stores, oldest first once reversed; a normal
           flush of the line drops them (the real clwb persists the whole
           line anyway). *)
        let mu = Mutex.create () in
        let log : (int, (unit -> unit) list) Hashtbl.t = Hashtbl.create 64 in
        {
          Pmem.Fault.noop with
          f_store =
            (fun line persist ->
              Mutex.lock mu;
              let prev = try Hashtbl.find log line with Not_found -> [] in
              Hashtbl.replace log line (persist :: prev);
              Mutex.unlock mu);
          f_clwb =
            (fun s line ->
              if hit () then begin
                Mutex.lock mu;
                let pending =
                  try List.rev (Hashtbl.find log line) with Not_found -> []
                in
                Mutex.unlock mu;
                (* Persist a store-order-consistent prefix of the line's
                   pending stores: the line tears, but never out of program
                   order — the §2.3 model of an early eviction, under which
                   e.g. CLHT's value-then-key single-line protocol must
                   still hold. *)
                let n = List.length pending in
                let kept = if n = 0 then 0 else keep mod (n + 1) in
                List.iteri (fun i p -> if i < kept then p ()) pending;
                fire s
              end
              else begin
                Mutex.lock mu;
                Hashtbl.remove log line;
                Mutex.unlock mu
              end);
        }
  in
  Pmem.Fault.install hooks;
  Pmem.Mode.set_inject true

(* --- deterministic plan generation -------------------------------------- *)

(* Draw a plan from an [Util.Rng.t]: kind and k are both rng-driven, with k
   in [1, max_events] so the plan lands inside the campaign's event budget
   (an overshooting k simply never fires — a legal, crash-free state). *)
let random_plan rng ~max_events =
  let k = 1 + Util.Rng.below rng (max max_events 1) in
  match Util.Rng.below rng 5 with
  | 0 -> Crash_at_flush { site = None; k }
  | 1 -> Crash_at_fence { site = None; k }
  | 2 -> Crash_at_store { k = 1 + Util.Rng.below rng (max (max_events * 2) 1) }
  | 3 -> Alloc_fail { k = 1 + Util.Rng.below rng (max (max_events / 8) 1) }
  | _ -> Torn_flush { k; keep = Util.Rng.below rng 8 }

(* --- event counting ------------------------------------------------------ *)

type event_counts = {
  flushes : int;
  fences : int;
  stores : int;
  allocs : int;
}

(* Run [f] with counting hooks installed (nothing fires) and report how many
   events of each class it generated — the injection analogue of
   [Pmem.Crash.count_points], used to size deterministic plans. *)
let count_events f =
  let fl = Atomic.make 0
  and fe = Atomic.make 0
  and st = Atomic.make 0
  and al = Atomic.make 0 in
  disarm ();
  Pmem.Fault.install
    {
      f_alloc = (fun _ -> Atomic.incr al);
      f_store = (fun _ _ -> Atomic.incr st);
      f_clwb = (fun _ _ -> Atomic.incr fl);
      f_sfence = (fun _ -> Atomic.incr fe);
    };
  Pmem.Mode.set_inject true;
  Fun.protect ~finally:disarm f;
  {
    flushes = Atomic.get fl;
    fences = Atomic.get fe;
    stores = Atomic.get st;
    allocs = Atomic.get al;
  }
