(* Last-level-cache simulator.

   The paper explains throughput ordering between indexes with LLC misses per
   operation measured by perf on a 32 MB LLC (Fig 4c/4d, Table 4).  We have no
   hardware counters, so this module simulates a set-associative LLC over
   simulated cache-line ids.  It is deliberately simple: one access stream,
   true-LRU replacement, no prefetcher.  The counter experiments run
   single-threaded, matching the paper's per-operation counter methodology,
   so the simulator carries no synchronization of its own. *)

type t = {
  ways : int;
  sets : int;
  tags : int array; (* [sets * ways], -1 = invalid *)
  stamps : int array; (* LRU stamps, parallel to [tags] *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let cache : t option ref = ref None
let enabled = ref false

(* Fibonacci hashing spreads the sequential line ids across sets. *)
let mix id = (id * 0x1E3779B97F4A7C15) lsr 17

let configure ?(capacity_bytes = 32 * 1024 * 1024) ?(ways = 16) () =
  let lines = capacity_bytes / 64 in
  let sets = max 1 (lines / ways) in
  (* Round sets down to a power of two so set selection is a mask. *)
  let rec pow2 n = if 2 * n > sets then n else pow2 (2 * n) in
  let sets = pow2 1 in
  cache :=
    Some
      {
        ways;
        sets;
        tags = Array.make (sets * ways) (-1);
        stamps = Array.make (sets * ways) 0;
        clock = 0;
        accesses = 0;
        misses = 0;
      }

let set_enabled b =
  if b && !cache = None then configure ();
  enabled := b;
  (* Refresh the packed per-epoch accessor flags ({!Words}/{!Refs} test one
     word instead of this ref per access). *)
  Mode.set_llc_probe b

let is_enabled () = !enabled

let access line_id =
  match !cache with
  | None -> ()
  | Some c ->
      let h = mix line_id in
      let set = h land (c.sets - 1) in
      let base = set * c.ways in
      c.accesses <- c.accesses + 1;
      c.clock <- c.clock + 1;
      (* One fused pass over the set: find the hit and track the LRU victim
         at the same time, instead of a hit scan followed by a separate
         victim scan on every miss (misses dominate the interesting
         workloads, so the second scan used to run almost every access). *)
      let rec scan w victim victim_stamp =
        if w >= c.ways then begin
          c.misses <- c.misses + 1;
          (if Obs.Trace.enabled () then
             let old = c.tags.(base + victim) in
             if old >= 0 then Obs.Trace.record Obs.Trace.Llc_evict ~arg:old "llc");
          c.tags.(base + victim) <- line_id;
          c.stamps.(base + victim) <- c.clock
        end
        else if Array.unsafe_get c.tags (base + w) = line_id then
          Array.unsafe_set c.stamps (base + w) c.clock
        else begin
          let s = Array.unsafe_get c.stamps (base + w) in
          if s < victim_stamp then scan (w + 1) w s
          else scan (w + 1) victim victim_stamp
        end
      in
      scan 0 0 max_int

let misses () = match !cache with None -> 0 | Some c -> c.misses
let accesses () = match !cache with None -> 0 | Some c -> c.accesses

(* Expose the simulator's totals in the metrics registry so exporters can
   enumerate them alongside the sharded counters. *)
let _gauge_accesses = Obs.Gauge.v "llc.accesses" accesses
let _gauge_misses = Obs.Gauge.v "llc.misses" misses

let reset () =
  match !cache with
  | None -> ()
  | Some c ->
      Array.fill c.tags 0 (Array.length c.tags) (-1);
      Array.fill c.stamps 0 (Array.length c.stamps) 0;
      c.clock <- 0;
      c.accesses <- 0;
      c.misses <- 0
