(* Global mode switches for the simulated persistent memory.

   [shadow] — when on, every persistent object maintains a second image
   holding its last-flushed ("persisted") contents, and a simulated power
   failure reverts all unflushed lines to that image.  Used by the crash and
   durability tests; off for throughput benchmarks.

   These are plain refs: modes are flipped only between experiment phases,
   never concurrently with index operations.

   Epoch flag word: the substrate accessors ({!Words}/{!Refs} get/set/clwb)
   used to branch on up to three separate globals per access — the LLC
   probe, DRAM mode, and shadow mode.  Modes only ever change between
   experiment phases, so the accessor decision is recomputed *once per mode
   flip* into a single packed word, [flags]; the hot path loads exactly one
   word and tests one mask, whatever combination of simulator features is
   active.  All setters below (and {!Llc.set_enabled}) refresh it. *)

let f_llc = 1 (* probe the LLC simulator on every word/slot access *)
let f_dram = 2 (* clwb/sfence are free no-ops (DRAM-ancestor ablation) *)
let f_shadow = 4 (* new objects carry a shadow (last-flushed) image *)
let f_sanitize = 8 (* route every substrate event through {!Sanhook} *)
let f_inject = 16 (* route allocs/stores/flushes/fences through {!Fault} *)

let flags = ref 0

let set_flag bit on =
  flags := if on then !flags lor bit else !flags land lnot bit

let shadow = ref false
let shadow_enabled () = !shadow

let set_shadow b =
  shadow := b;
  set_flag f_shadow b

(* [dram] — when on, clwb and sfence become free no-ops: the index runs as
   its volatile DRAM ancestor.  Used by the conversion-overhead ablation
   (the RECIPE thesis is that converted indexes inherit the DRAM index's
   performance; this measures exactly what the conversion added). *)
let dram = ref false
let dram_enabled () = !dram

let set_dram b =
  dram := b;
  set_flag f_dram b

(* [sanitize] — when on, every substrate access additionally reports to the
   hook table in {!Sanhook}; [lib/psan] installs handlers there and turns
   the event stream into persistency-ordering and domain-race diagnostics.
   Off, the accessors pay exactly one extra bit in the single [flags] test
   they already perform. *)
let sanitize = ref false
let sanitize_enabled () = !sanitize

let set_sanitize b =
  sanitize := b;
  set_flag f_sanitize b

(* [inject] — when on, every allocation, store, flush and fence additionally
   reports to the hook table in {!Fault}; [lib/faultinject] installs fault
   plans there (crash at the k-th flush of a site, allocation failure, torn
   lines).  Off, the accessors pay exactly one extra bit in the single
   [flags] test they already perform — the same bargain as [sanitize]. *)
let inject = ref false
let inject_enabled () = !inject

let set_inject b =
  inject := b;
  set_flag f_inject b

(* Shadow and sanitize mode both need indexes to flush lines they would
   skip as unobservable in plain fast mode (e.g. still-empty pointer
   arrays): shadow because the durability test checks for dirty objects,
   sanitize because unflushed allocations are exactly what diagnostic #1
   reports at the next publication. *)
let tracked () = !shadow || !sanitize

(* The LLC probe bit is owned by {!Llc.set_enabled}; it lives here so the
   accessors test one word for every mode. *)
let set_llc_probe b = set_flag f_llc b
