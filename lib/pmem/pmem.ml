(* Simulated persistent memory.

   This is the substrate every index in this repository runs on.  It models
   the x86 persistence domain the paper reasons with (§2.3):

   - 8-byte failure-atomic stores ({!Words}, {!Refs});
   - a volatile CPU cache in front of persistence — a store is visible to
     other threads immediately but survives a power failure only once its
     cache line has been written back with {!Words.clwb} / {!Refs.clwb};
   - [sfence] ordering (counted; flushes in this simulator apply
     synchronously, so a missing fence cannot reorder them — see DESIGN.md);
   - crash-point injection between the ordered atomic steps of operations
     (§5), and whole-machine power-failure simulation that discards every
     unflushed line ({!simulate_power_failure}).

   The flush/fence counters ({!Stats}) and the LLC simulator ({!Llc}) provide
   the per-operation numbers behind Fig 4c/4d and Table 4. *)

module Stats = Stats
module Llc = Llc
module Crash = Crash
module Mode = Mode
module Words = Words
module Refs = Refs
module Line_id = Line_id
module Latency = Latency
module Sanhook = Sanhook
module Fault = Fault

(** Store fence: orders preceding flushes before subsequent stores.  In this
    simulator flushes apply synchronously, so the fence only counts — the
    counts are the [mfence] column of Fig 4c/4d and Table 4.  [site]
    attributes the fence to an index × structural location. *)
let sfence ?site () =
  if not !Mode.dram then
    if !Mode.flags land Mode.f_sanitize <> 0 && Sanhook.should_drop_sfence site
    then () (* mutation test: this fence instruction is "deleted" *)
    else begin
      if !Mode.flags land Mode.f_inject <> 0 then (!Fault.h).f_sfence site;
      Stats.record_sfence ?site ();
      Latency.on_fence ();
      if !Mode.flags land Mode.f_sanitize <> 0 then (!Sanhook.h).h_sfence site
    end

(** Flush a word and fence — the conversion action of RECIPE Condition #1. *)
let flush_word ?site w i =
  Words.clwb ?site w i;
  sfence ?site ()

let flush_ref ?site r i =
  Refs.clwb ?site r i;
  sfence ?site ()

(** Simulate a power failure: every cache line not yet written back loses its
    contents and reverts to its last-flushed image.  Only meaningful in
    shadow mode; a no-op otherwise. *)
let simulate_power_failure () =
  Tracking.revert_all ();
  (* Post-failure, every surviving line equals its persisted image: the
     sanitizer resets its per-line state machine and pending sets. *)
  if !Mode.flags land Mode.f_sanitize <> 0 then (!Sanhook.h).h_quiesce ()

(** Write back every dirty line (a clean checkpoint between test phases). *)
let persist_everything () =
  Tracking.persist_all ();
  if !Mode.flags land Mode.f_sanitize <> 0 then (!Sanhook.h).h_quiesce ()

(** Cross-domain join edge for the sanitizer's race check: call right after
    [Domain.join] so the joining domain is credited with everything the
    joined domain wrote.  A no-op unless sanitize mode is on. *)
let sanitize_sync () =
  if !Mode.flags land Mode.f_sanitize <> 0 then (!Sanhook.h).h_sync ()

(** Names of objects with unflushed lines — must be empty at operation
    boundaries for the durability test of §5 to pass. *)
let dirty_objects () = Tracking.dirty_objects ()

let dirty_count () = Tracking.dirty_count ()

(* Registry gauge: unflushed objects, a durability-test health signal. *)
let _gauge_dirty = Obs.Gauge.v "pmem.dirty_objects" Tracking.dirty_count
