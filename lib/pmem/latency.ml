(* Optional latency injection for persistence primitives.

   In the basic simulator a clwb is a counter bump, which makes the cost of
   the RECIPE conversion invisible in wall-clock terms.  This module lets
   benchmarks charge a configurable busy-wait per flush and per fence,
   modeling the write-path stalls real persistent memory imposes (Optane DC
   write latencies are in the 100ns+ range; see Izraelevitz et al. 2019).

   Disabled (zero cost) by default; enable only in single-purpose
   experiments — the busy-wait burns CPU, which on this one-core container
   also slows every other domain. *)

let flush_ns = ref 0
let fence_ns = ref 0

(* Calibrated spin: iterations per nanosecond, measured once. *)
let iters_per_ns =
  lazy
    (let target = 5_000_000 in
     let t0 = Unix.gettimeofday () in
     let x = ref 0 in
     for i = 1 to target do
       x := !x lxor i
     done;
     ignore (Sys.opaque_identity !x);
     let dt = Unix.gettimeofday () -. t0 in
     Float.max 0.01 (float_of_int target /. (dt *. 1e9)))

let spin_ns ns =
  if ns > 0 then begin
    let iters = int_of_float (float_of_int ns *. Lazy.force iters_per_ns) in
    let x = ref 0 in
    for i = 1 to iters do
      x := !x lxor i
    done;
    ignore (Sys.opaque_identity !x)
  end

let on_flush () = if !flush_ns > 0 then spin_ns !flush_ns
let on_fence () = if !fence_ns > 0 then spin_ns !fence_ns

(** [set ~flush ~fence] charges the given busy-wait (ns) per clwb / sfence;
    [set ~flush:0 ~fence:0] disables.  Enabling any charge forces the spin
    calibration immediately: lazily it would fire inside the *first timed
    flush*, landing a 5M-iteration calibration loop in a measured region and
    corrupting that run's first latency sample. *)
let set ~flush ~fence =
  flush_ns := flush;
  fence_ns := fence;
  if flush > 0 || fence > 0 then ignore (Lazy.force iters_per_ns : float)
