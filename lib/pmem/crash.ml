(* Crash-point injection (paper §5).

   Insert and structure-modification operations in the converted indexes are
   sequences of a small number of ordered atomic stores.  Index code marks the
   boundary after each such store with [point ()].  A test campaign arms the
   points either probabilistically (the paper's consistency test loads 10K
   entries "allowing it to crash probabilistically") or deterministically at
   the n-th point (to enumerate every crash position of one operation, the
   paper's "simulate a crash after each atomic store").

   Firing raises [Simulated_crash]; the operation unwinds without any
   clean-up, leaving the index partially modified, exactly as §5 prescribes.
   The harness catches the exception at the operation boundary and — under
   shadow mode — calls [Pmem.simulate_power_failure] to also discard every
   store that was never flushed, which is stricter than the paper's
   DRAM-emulation of crashes. *)

exception Simulated_crash

type arming =
  | Disarmed
  | Probability of { mutable state : int; threshold : int }
  | Countdown of int Atomic.t

let arming = ref Disarmed

let disarm () = arming := Disarmed

(* xorshift64*; good enough to pick crash points uniformly. *)
let next_random st =
  let x = st lxor (st lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  x land max_int

let arm ~probability ~seed =
  if probability < 0.0 || probability > 1.0 then
    invalid_arg "Crash.arm: probability out of range";
  (* [max_int] is not exactly float-representable; cap the threshold and
     treat the cap as "always fire" so probability 1.0 is exact. *)
  let threshold =
    if probability >= 1.0 then max_int
    else int_of_float (probability *. 4503599627370496.0) lsl 10
  in
  let seed = if seed = 0 then 0x2545F4914F6CDD1D else seed in
  arming := Probability { state = seed; threshold }

(* Fire exactly at the [n]-th crash point from now (1-based). *)
let arm_at n =
  if n <= 0 then invalid_arg "Crash.arm_at: n must be positive";
  arming := Countdown (Atomic.make n)

let fire site =
  arming := Disarmed;
  Stats.incr_crashes ();
  if !Mode.flags land Mode.f_sanitize <> 0 then (!Sanhook.h).h_crash ();
  (match site with
  | Some s ->
      Obs.Site.crash_fire s;
      Obs.Trace.record Obs.Trace.Crash_fired (Obs.Site.name s)
  | None -> Obs.Trace.record Obs.Trace.Crash_fired "untagged");
  raise Simulated_crash

(* A crash-point boundary.  [site] names the structural location (an
   {!Obs.Site.t} declared with [~crash:true]); visits and injected crashes
   are counted per site, which is what the coverage report of
   [crash_check] compares against the declared set.  Disarmed points cost a
   single ref read, as before — throughput runs are unaffected. *)
let point ?site () =
  match !arming with
  | Disarmed -> ()
  | Probability p ->
      Stats.incr_crash_points ();
      (match site with
      | Some s ->
          Obs.Site.crash_visit s;
          Obs.Trace.record Obs.Trace.Crash_point (Obs.Site.name s)
      | None -> ());
      let r = next_random p.state in
      p.state <- r;
      if p.threshold = max_int || r < p.threshold then fire site
  | Countdown c ->
      Stats.incr_crash_points ();
      (match site with
      | Some s ->
          Obs.Site.crash_visit s;
          Obs.Trace.record Obs.Trace.Crash_point (Obs.Site.name s)
      | None -> ());
      if Atomic.fetch_and_add c (-1) = 1 then fire site

(* Number of crash points an operation passes through: run [f] with a
   countdown that never fires and report how many points were visited.  Used
   by tests to enumerate crash positions exhaustively. *)
let count_points f =
  let before = (Stats.snapshot ()).s_crash_points in
  arming := Countdown (Atomic.make max_int);
  Fun.protect ~finally:disarm f;
  (Stats.snapshot ()).s_crash_points - before
