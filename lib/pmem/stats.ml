(* Instruction and allocation counters for the simulated persistent memory.

   The paper (Fig 4c/4d, Table 4) reports clwb and mfence counts per
   operation; these counters are the source of those numbers.

   This module is now a thin compatibility façade over the {!Obs} metrics
   registry: each counter is a per-domain *sharded* counter, so
   multi-threaded YCSB runs keep counting without the cross-domain
   contention the old single block of atomics had (which restricted counter
   experiments to single-threaded probes).  [record_clwb]/[record_sfence]
   additionally attribute the event to an {!Obs.Site.t} — index ×
   structural location — feeding the per-site breakdown of the bench JSON
   export.  Every event lands in exactly one site ({!Obs.Site.untagged}
   when the caller passes none), so the sum over sites always equals the
   global totals here. *)

let clwb = Obs.counter "pmem.clwb"
let sfence = Obs.counter "pmem.sfence"
let lines_allocated = Obs.counter "pmem.lines_allocated"
let words_allocated = Obs.counter "pmem.words_allocated"
let crash_points = Obs.counter "pmem.crash_points"
let crashes = Obs.counter "pmem.crashes"

let incr_clwb () = Obs.Counter.incr clwb
let incr_sfence () = Obs.Counter.incr sfence
let incr_crash_points () = Obs.Counter.incr crash_points
let incr_crashes () = Obs.Counter.incr crashes

(** Count a flush / fence and attribute it to [site] (default: the
    untagged catch-all). *)
let record_clwb ?site () =
  Obs.Counter.incr clwb;
  Obs.Site.hit_clwb (match site with Some s -> s | None -> Obs.Site.untagged)

let record_sfence ?site () =
  Obs.Counter.incr sfence;
  Obs.Site.hit_sfence (match site with Some s -> s | None -> Obs.Site.untagged)

let add_allocation ~lines ~words =
  Obs.Counter.add lines_allocated lines;
  Obs.Counter.add words_allocated words

(** Immutable view of the counters at one instant. *)
type snapshot = {
  s_clwb : int;
  s_sfence : int;
  s_lines_allocated : int;
  s_words_allocated : int;
  s_crash_points : int;
  s_crashes : int;
}

let snapshot () =
  {
    s_clwb = Obs.Counter.value clwb;
    s_sfence = Obs.Counter.value sfence;
    s_lines_allocated = Obs.Counter.value lines_allocated;
    s_words_allocated = Obs.Counter.value words_allocated;
    s_crash_points = Obs.Counter.value crash_points;
    s_crashes = Obs.Counter.value crashes;
  }

(** [diff later earlier] gives counts accumulated between two snapshots. *)
let diff a b =
  {
    s_clwb = a.s_clwb - b.s_clwb;
    s_sfence = a.s_sfence - b.s_sfence;
    s_lines_allocated = a.s_lines_allocated - b.s_lines_allocated;
    s_words_allocated = a.s_words_allocated - b.s_words_allocated;
    s_crash_points = a.s_crash_points - b.s_crash_points;
    s_crashes = a.s_crashes - b.s_crashes;
  }

let reset () =
  Obs.Counter.reset clwb;
  Obs.Counter.reset sfence;
  Obs.Counter.reset lines_allocated;
  Obs.Counter.reset words_allocated;
  Obs.Counter.reset crash_points;
  Obs.Counter.reset crashes

let pp ppf s =
  Fmt.pf ppf "clwb=%d sfence=%d lines=%d words=%d crash_points=%d crashes=%d"
    s.s_clwb s.s_sfence s.s_lines_allocated s.s_words_allocated s.s_crash_points
    s.s_crashes
