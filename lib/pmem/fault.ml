(* Fault-injection seam.

   The mirror image of {!Sanhook}: a record of hook functions the substrate
   accessors call on every allocation, store, flush and fence — but only
   when {!Mode.f_inject} is set in the packed flags word, so the injection
   machinery costs exactly one extra bit in the single flags test the hot
   path already performs.  [lib/faultinject] installs fault *plans* here
   (crash at the k-th flush of a chosen site, allocation failure at the k-th
   allocation, torn-line crashes that persist only a prefix of a line's
   pending stores); the default hooks do nothing.

   Hooks are allowed to raise: [f_clwb] raising skips the flush it
   intercepted (the line stays dirty — exactly a crash before the
   writeback), [f_alloc] raising [Alloc_failed] models an out-of-space
   persistent allocator, and any hook may raise [Crash.Simulated_crash] via
   {!Crash.fire}.

   [f_store] receives the store's *global line id* and a persist closure
   that, when called, writes just that store's value into the object's
   shadow image (a no-op outside shadow mode).  This is the torn-line
   primitive: at the chosen flush, the plan applies a store-order-consistent
   prefix of the line's pending closures and then crashes — the line
   persists partially, modelling an early eviction mid-operation. *)

exception Alloc_failed of string

type hooks = {
  f_alloc : string -> unit; (* object name; may raise [Alloc_failed] *)
  f_store : int -> (unit -> unit) -> unit; (* global line, persist closure *)
  f_clwb : Obs.Site.t option -> int -> unit; (* site, global line; may raise *)
  f_sfence : Obs.Site.t option -> unit; (* may raise *)
}

let noop =
  {
    f_alloc = (fun _ -> ());
    f_store = (fun _ _ -> ());
    f_clwb = (fun _ _ -> ());
    f_sfence = (fun _ -> ());
  }

let h = ref noop
let install hooks = h := hooks
let uninstall () = h := noop
