(* Sanitizer hook table.

   [lib/psan] implements a persistency-ordering and domain-race sanitizer
   over the substrate, but the dependency arrow points the other way: pmem
   must not link against the sanitizer.  This module is the seam — a record
   of callbacks with no-op defaults that {!Words}/{!Refs}/{!Crash} and the
   [Pmem] front door invoke *only* when [Mode.f_sanitize] is set in the
   packed flags word.  [Psan.enable] installs real handlers here.

   Event vocabulary (all word/slot coordinates are global: an object's
   [base_line] from {!Line_id} times 8 plus the in-object index, so lines
   and words are identified uniformly across objects):

   - [h_alloc name base_line n_lines] — a new persistent object; all its
     lines start dirty (allocation stores are not persistent until flushed).
   - [h_store name base_line i release] — a word/slot store; [release] is
     true for atomic cells/slots (Atomic.set / successful CAS), whose
     release ordering publishes preceding plain stores.
   - [h_load name base_line i acquire] — a word/slot load; [acquire] is
     true for atomic cells/slots.  The substrate performs the actual read
     *before* invoking the hook, so a reader that observed a released value
     is guaranteed to find the matching release clock already recorded.
   - [h_rmw name base_line i op] — an atomic read-modify-write; [op]
     performs the hardware operation and returns whether it stored.  The
     sanitizer runs [op] inside its own word critical section so the new
     value cannot become visible before its release clock does (a plain
     after-the-fact [h_store] would leave a window where a concurrent
     reader sees the CAS'd pointer but joins a stale clock).
   - [h_clwb name base_line i site] — a line writeback.
   - [h_sfence site] — a store fence by the calling domain.
   - [h_publish name base_line i site] — a commit-point publication (the
     [Recipe.Persist] commit combinators): the store at [i] makes new
     structure reachable, so everything it depends on must be persisted.
   - [h_crash] — a simulated crash fired on this domain.
   - [h_quiesce] — whole-machine persist/revert (power failure or an
     explicit persist-everything checkpoint): every line is now clean.
   - [h_sync] — a cross-domain join edge for the *calling* domain (the
     harness calls this right after [Domain.join]).
   - [h_lock_acquired id] / [h_lock_released id] — {!Util.Lock} edges,
     wired separately by psan since util sits below pmem. *)

type hooks = {
  h_alloc : string -> int -> int -> unit;
  h_store : string -> int -> int -> bool -> unit;
  h_load : string -> int -> int -> bool -> unit;
  h_rmw : string -> int -> int -> (unit -> bool) -> bool;
  h_clwb : string -> int -> int -> Obs.Site.t option -> unit;
  h_sfence : Obs.Site.t option -> unit;
  h_publish : string -> int -> int -> Obs.Site.t option -> unit;
  h_crash : unit -> unit;
  h_quiesce : unit -> unit;
  h_sync : unit -> unit;
}

let noop : hooks =
  {
    h_alloc = (fun _ _ _ -> ());
    h_store = (fun _ _ _ _ -> ());
    h_load = (fun _ _ _ _ -> ());
    h_rmw = (fun _ _ _ op -> op ());
    h_clwb = (fun _ _ _ _ -> ());
    h_sfence = (fun _ -> ());
    h_publish = (fun _ _ _ _ -> ());
    h_crash = (fun () -> ());
    h_quiesce = (fun () -> ());
    h_sync = (fun () -> ());
  }

let h = ref noop
let install hooks = h := hooks
let uninstall () = h := noop

(* --- per-domain store-site context --------------------------------------

   The substrate accessors carry no [?site] (that is deliberate: attribution
   belongs to flush/fence/commit points, not raw stores), but the sanitizer
   wants to name the *store* site when it later reports the line.  The
   [Recipe.Persist] combinators publish their [?site] here around the store
   they perform; the store handler picks it up.  Slots are per-domain, so no
   synchronisation is needed. *)

let slots = 128
let site_ctx : Obs.Site.t option array = Array.make slots None
let[@inline] dom_slot () = (Domain.self () :> int) land (slots - 1)
let set_site s = Array.unsafe_set site_ctx (dom_slot ()) s
let clear_site () = Array.unsafe_set site_ctx (dom_slot ()) None
let current_site () = Array.unsafe_get site_ctx (dom_slot ())

(* --- speculative read sections ------------------------------------------

   Seqlock-style readers (FAST&FAIR [read_stable], and any future optimistic
   reader) intentionally read racy data and discard it when the version
   check fails; the race detector must not flag those reads.  Readers
   bracket the speculative body with [spec_enter]/[spec_exit] (gated on the
   sanitize flag at the call site); the race check skips reads made at
   non-zero depth. *)

let spec_ctx : int array = Array.make (slots * 8) 0
let spec_enter () = spec_ctx.(dom_slot () * 8) <- spec_ctx.(dom_slot () * 8) + 1
let spec_exit () = spec_ctx.(dom_slot () * 8) <- spec_ctx.(dom_slot () * 8) - 1
let spec_depth () = spec_ctx.(dom_slot () * 8)

(* --- fault injection (mutation tests) ------------------------------------

   Test-only: simulate the *deletion* of one flush or fence instruction from
   an index write path.  When armed with a site name, every clwb/sfence
   attributed to that site is silently skipped — no stats, no shadow
   writeback, no sanitizer event — exactly as if the line of code were
   removed.  The mutation tests arm this for one site of P-CLHT / P-ART and
   assert the sanitizer reports the resulting ordering violation.  Only
   consulted when the sanitize flag is on, so the production clwb path is
   unchanged. *)

let dropped_clwb : string option ref = ref None
let dropped_sfence : string option ref = ref None

let drop_clwb_at site = dropped_clwb := Some site
let drop_sfence_at site = dropped_sfence := Some site

let clear_faults () =
  dropped_clwb := None;
  dropped_sfence := None

let matches fault site =
  match (fault, site) with
  | None, _ | _, None -> false
  | Some name, Some s -> String.equal (Obs.Site.name s) name

let should_drop_clwb site = matches !dropped_clwb site
let should_drop_sfence site = matches !dropped_sfence site
