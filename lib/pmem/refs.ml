(* A persistent array of pointer-sized slots.

   On real persistent memory these would be 8-byte pointers living next to
   the word fields of a node; here each slot holds an arbitrary OCaml value
   but participates in exactly the same cache-line / dirty / flush / shadow
   machinery as {!Words}.  Child-pointer arrays, sibling pointers, mapping
   tables and directory entries are all built from this.

   Every object declares its representation at construction time:

   - [make ~atomic:true] — every slot is an [Atomic.t] cell.  Required for
     slots that are CASed ([cas] raises on a flat object) and for slots that
     serve as *publication points*: a pointer installed for lock-free
     readers to discover freshly built structure.  The atomic store/CAS is a
     release, the reader's atomic load an acquire, so all the plain stores
     that initialized the new node (its flat {!Words}, its flat slots)
     happen-before the reader's dereference — this is the synchronisation
     the whole flat substrate leans on.

   - [make ~atomic:false] — slots live in plain chunked ['a array]s: one
     array load per access, no box.  For slot arrays that are only ever
     read/written: write-once pools, and traversal arrays whose mutation is
     already ordered by a lock + a separate atomic commit.  See DESIGN.md
     for the per-index decisions and the one x86-TSO caveat.

   The choice is a required argument on purpose: whether a pointer slot is
   a data slot or a synchronisation point is index-design information, and
   it must be visible (and greppable) at the allocation site.

   Storage is chunked (boxed mode: so no allocation exceeds the OCaml
   minor-heap large-object threshold — filling a major-heap array with young
   boxes serializes multi-domain runs on the remembered set; flat mode: so
   stores hit minor-heap chunks and stay off the major-heap remembered
   set). *)

let slots_per_line = 8
let chunk_bits = 7
let chunk_size = 1 lsl chunk_bits

type 'a shadow_state = {
  image : 'a array;
  dirty : int Atomic.t array; (* flat bitset, one bit per line *)
  registered : bool Atomic.t;
}

type 'a repr =
  | Flat of 'a array array (* plain chunked slots: get/set only *)
  | Boxed of 'a Atomic.t array array (* one Atomic cell per slot *)

type 'a t = {
  name : string;
  base_line : int;
  len : int;
  repr : 'a repr;
  shadow : 'a shadow_state option;
}

let line_of_index i = i lsr 3
let n_lines len = (len + slots_per_line - 1) / slots_per_line
let length t = t.len

(** Process-global line number of the line containing slot [i] (same
    identifier space as {!Line_id}) — see {!Words.global_line}. *)
let global_line t i = t.base_line + line_of_index i

let read_slot t i =
  match t.repr with
  | Flat c ->
      Array.unsafe_get
        (Array.unsafe_get c (i lsr chunk_bits))
        (i land (chunk_size - 1))
  | Boxed c ->
      Atomic.get
        (Array.unsafe_get
           (Array.unsafe_get c (i lsr chunk_bits))
           (i land (chunk_size - 1)))

let write_slot t i v =
  match t.repr with
  | Flat c ->
      Array.unsafe_set
        (Array.unsafe_get c (i lsr chunk_bits))
        (i land (chunk_size - 1))
        v
  | Boxed c ->
      Atomic.set
        (Array.unsafe_get
           (Array.unsafe_get c (i lsr chunk_bits))
           (i land (chunk_size - 1)))
        v

let rec register t sh =
  if Atomic.compare_and_set sh.registered false true then
    Tracking.register
      {
        Tracking.name = t.name;
        is_dirty = (fun () -> Words.bitset_any sh.dirty);
        revert = (fun () -> revert t sh);
        persist = (fun () -> persist t sh);
        unregister = (fun () -> Atomic.set sh.registered false);
      }

and revert t sh =
  Words.bitset_iter sh.dirty (fun l ->
      let lo = l * slots_per_line in
      let hi = min t.len (lo + slots_per_line) in
      for i = lo to hi - 1 do
        write_slot t i sh.image.(i)
      done;
      Words.bitset_unset sh.dirty l)

and persist t sh =
  Words.bitset_iter sh.dirty (fun l ->
      let lo = l * slots_per_line in
      let hi = min t.len (lo + slots_per_line) in
      for i = lo to hi - 1 do
        sh.image.(i) <- read_slot t i
      done;
      Words.bitset_unset sh.dirty l)

let mark_dirty t sh line =
  Words.bitset_set sh.dirty line;
  if not (Atomic.get sh.registered) then register t sh

let make ?(name = "refs") ~atomic len init =
  if len <= 0 then invalid_arg "Refs.make: length must be positive";
  if !Mode.flags land Mode.f_inject <> 0 then (!Fault.h).f_alloc name;
  let n_chunks = (len + chunk_size - 1) / chunk_size in
  let chunk_len c = min chunk_size (len - (c * chunk_size)) in
  let repr =
    if atomic then
      Boxed
        (Array.init n_chunks (fun c ->
             Array.init (chunk_len c) (fun _ -> Atomic.make init)))
    else Flat (Array.init n_chunks (fun c -> Array.make (chunk_len c) init))
  in
  let lines = n_lines len in
  let shadow =
    if Mode.shadow_enabled () then
      Some
        {
          image = Array.make len init;
          dirty = Words.bitset_make lines true;
          registered = Atomic.make false;
        }
    else None
  in
  let t = { name; base_line = Line_id.fresh lines; len; repr; shadow } in
  Stats.add_allocation ~lines ~words:len;
  if !Mode.flags land Mode.f_sanitize <> 0 then
    (!Sanhook.h).h_alloc name t.base_line lines;
  (match t.shadow with Some sh -> register t sh | None -> ());
  t

let[@inline] probe_llc t i =
  if !Mode.flags land Mode.f_llc <> 0 then
    Llc.access (t.base_line + line_of_index i)

(* A slot is a release/acquire point iff the object is [~atomic:true]. *)
let is_atomic t = match t.repr with Boxed _ -> true | Flat _ -> false

let san_load t i = (!Sanhook.h).h_load t.name t.base_line i (is_atomic t)
let san_store t i = (!Sanhook.h).h_store t.name t.base_line i (is_atomic t)

(* Fault-injection store reporter — see {!Words.inject_store}. *)
let inject_store t i v =
  let persist =
    match t.shadow with
    | Some sh -> fun () -> sh.image.(i) <- v
    | None -> ignore
  in
  (!Fault.h).f_store (t.base_line + line_of_index i) persist

let get t i =
  probe_llc t i;
  (* Read first, report second — see {!Words.get}. *)
  let v = read_slot t i in
  if !Mode.flags land Mode.f_sanitize <> 0 then san_load t i;
  v

let set t i v =
  probe_llc t i;
  if !Mode.flags land Mode.f_sanitize <> 0 then san_store t i;
  write_slot t i v;
  (match t.shadow with
  | None -> ()
  | Some sh -> mark_dirty t sh (line_of_index i));
  if !Mode.flags land Mode.f_inject <> 0 then inject_store t i v

(* Physical-equality CAS: slots hold pointers, and pointer identity is what a
   hardware CAS on an 8-byte pointer compares.  Only legal on [~atomic:true]
   objects — a CAS on a plain slot would not be a synchronisation point. *)
let cas t i ~expected ~desired =
  probe_llc t i;
  let cell =
    match t.repr with
    | Boxed c ->
        Array.unsafe_get
          (Array.unsafe_get c (i lsr chunk_bits))
          (i land (chunk_size - 1))
    | Flat _ ->
        invalid_arg
          (Printf.sprintf "Refs.%s: cas on a flat (~atomic:false) object"
             t.name)
  in
  let op () = Atomic.compare_and_set cell expected desired in
  let ok =
    if !Mode.flags land Mode.f_sanitize <> 0 then
      (!Sanhook.h).h_rmw t.name t.base_line i op
    else op ()
  in
  (if ok then begin
     (match t.shadow with
     | None -> ()
     | Some sh -> mark_dirty t sh (line_of_index i));
     if !Mode.flags land Mode.f_inject <> 0 then inject_store t i desired
   end);
  ok

(** Sanitizer publication point — see {!Words.sanitize_publish}. *)
let sanitize_publish ?site t i =
  if !Mode.flags land Mode.f_sanitize <> 0 then
    (!Sanhook.h).h_publish t.name t.base_line i site

(** Whether the line containing slot [i] has unpersisted stores.
    Conservatively [true] when shadow tracking is off — callers deciding
    whether a flush is still needed must then flush. *)
let line_dirty t i =
  match t.shadow with
  | Some sh -> Words.bitset_mem sh.dirty (line_of_index i)
  | None -> true

(** Flush the cache line containing slot [i].  [site] attributes the flush
    to an index × structural location in the {!Obs} registry. *)
let clwb ?site t i =
  if !Mode.flags land Mode.f_dram <> 0 then ()
  else if
    !Mode.flags land Mode.f_sanitize <> 0 && Sanhook.should_drop_clwb site
  then () (* mutation test: this flush instruction is "deleted" *)
  else begin
    if !Mode.flags land Mode.f_inject <> 0 then
      (!Fault.h).f_clwb site (t.base_line + line_of_index i);
    Stats.record_clwb ?site ();
    Latency.on_flush ();
    if !Mode.flags land Mode.f_sanitize <> 0 then
      (!Sanhook.h).h_clwb t.name t.base_line i site;
    match t.shadow with
    | None -> ()
    | Some sh ->
        let l = line_of_index i in
        let lo = l * slots_per_line in
        let hi = min t.len (lo + slots_per_line) in
        for j = lo to hi - 1 do
          sh.image.(j) <- read_slot t j
        done;
        Words.bitset_unset sh.dirty l
  end

let clwb_all ?site t =
  for l = 0 to n_lines t.len - 1 do
    clwb ?site t (l * slots_per_line)
  done

(* Dirty-lines-only variant; see {!Words.clwb_all_dirty}. *)
let clwb_all_dirty ?site t =
  match t.shadow with
  | Some sh ->
      Words.bitset_iter sh.dirty (fun l -> clwb ?site t (l * slots_per_line))
  | None -> clwb_all ?site t
