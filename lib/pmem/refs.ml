(* A persistent array of pointer-sized slots.

   On real persistent memory these would be 8-byte pointers living next to
   the word fields of a node; here each slot holds an arbitrary OCaml value
   but participates in exactly the same cache-line / dirty / flush / shadow
   machinery as {!Words}.  Child-pointer arrays, sibling pointers, mapping
   tables and directory entries are all built from this.

   Storage is chunked like {!Words} (see the note there). *)

let slots_per_line = 8
let chunk_bits = 7
let chunk_size = 1 lsl chunk_bits

type 'a shadow_state = {
  image : 'a array;
  dirty : bool Atomic.t array;
  registered : bool Atomic.t;
}

type 'a t = {
  name : string;
  base_line : int;
  len : int;
  data : 'a Atomic.t array array;
  shadow : 'a shadow_state option;
}

let line_of_index i = i lsr 3
let n_lines len = (len + slots_per_line - 1) / slots_per_line
let length t = t.len

let cell t i =
  Array.unsafe_get (Array.unsafe_get t.data (i lsr chunk_bits)) (i land (chunk_size - 1))

let rec register t sh =
  if Atomic.compare_and_set sh.registered false true then
    Tracking.register
      {
        Tracking.name = t.name;
        is_dirty = (fun () -> Array.exists Atomic.get sh.dirty);
        revert = (fun () -> revert t sh);
        persist = (fun () -> persist t sh);
        unregister = (fun () -> Atomic.set sh.registered false);
      }

and revert t sh =
  Array.iteri
    (fun l d ->
      if Atomic.get d then begin
        let lo = l * slots_per_line in
        let hi = min t.len (lo + slots_per_line) in
        for i = lo to hi - 1 do
          Atomic.set (cell t i) sh.image.(i)
        done;
        Atomic.set d false
      end)
    sh.dirty

and persist t sh =
  Array.iteri
    (fun l d ->
      if Atomic.get d then begin
        let lo = l * slots_per_line in
        let hi = min t.len (lo + slots_per_line) in
        for i = lo to hi - 1 do
          sh.image.(i) <- Atomic.get (cell t i)
        done;
        Atomic.set d false
      end)
    sh.dirty

let mark_dirty t line =
  match t.shadow with
  | None -> ()
  | Some sh ->
      if not (Atomic.get sh.dirty.(line)) then Atomic.set sh.dirty.(line) true;
      if not (Atomic.get sh.registered) then register t sh

let make ?(name = "refs") len init =
  if len <= 0 then invalid_arg "Refs.make: length must be positive";
  let n_chunks = (len + chunk_size - 1) / chunk_size in
  let data =
    Array.init n_chunks (fun c ->
        let sz = min chunk_size (len - (c * chunk_size)) in
        Array.init sz (fun _ -> Atomic.make init))
  in
  let lines = n_lines len in
  let shadow =
    if Mode.shadow_enabled () then
      Some
        {
          image = Array.make len init;
          dirty = Array.init lines (fun _ -> Atomic.make true);
          registered = Atomic.make false;
        }
    else None
  in
  let t = { name; base_line = Line_id.fresh lines; len; data; shadow } in
  Stats.add_allocation ~lines ~words:len;
  (match t.shadow with Some sh -> register t sh | None -> ());
  t

let touch_llc t i = if !Llc.enabled then Llc.access (t.base_line + line_of_index i)

let get t i =
  touch_llc t i;
  Atomic.get (cell t i)

let set t i v =
  touch_llc t i;
  Atomic.set (cell t i) v;
  if t.shadow <> None then mark_dirty t (line_of_index i)

(* Physical-equality CAS: slots hold pointers, and pointer identity is what a
   hardware CAS on an 8-byte pointer compares. *)
let cas t i ~expected ~desired =
  touch_llc t i;
  let ok = Atomic.compare_and_set (cell t i) expected desired in
  if ok then (match t.shadow with Some _ -> mark_dirty t (line_of_index i) | None -> ());
  ok

(** Flush the cache line containing slot [i].  [site] attributes the flush
    to an index × structural location in the {!Obs} registry. *)
let clwb ?site t i =
  if !Mode.dram then ()
  else begin
  Stats.record_clwb ?site ();
  Latency.on_flush ();
  match t.shadow with
  | None -> ()
  | Some sh ->
      let l = line_of_index i in
      let lo = l * slots_per_line in
      let hi = min t.len (lo + slots_per_line) in
      for j = lo to hi - 1 do
        sh.image.(j) <- Atomic.get (cell t j)
      done;
      Atomic.set sh.dirty.(l) false
  end

let clwb_all ?site t =
  for l = 0 to n_lines t.len - 1 do
    clwb ?site t (l * slots_per_line)
  done
