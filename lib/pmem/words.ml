(* A persistent array of 8-byte words.

   This is the building block for everything an index stores in simulated
   persistent memory: keys, values, lock words, permutation words, headers.
   Words are grouped 8 to a simulated 64-byte cache line, so [clwb] flushes
   (and the flush counters count) at the same granularity as the machine the
   paper ran on.

   Semantics per mode:
   - fast mode: [set]/[cas] are plain atomics, [clwb] only counts;
   - shadow mode: the object additionally keeps the last-flushed image of
     every line.  A store marks its line dirty; [clwb] copies the cached
     contents into the image; a simulated power failure reverts every dirty
     line to the image.  A freshly allocated object starts with all lines
     dirty — allocation stores are not persistent until flushed, which is
     how the paper's durability test caught the unflushed root allocations
     in FAST & FAIR and CCEH (§7.5).

   The shadow image and dirty flags exist only for objects created while
   shadow mode is enabled (enable it before constructing the index under
   test); throughput runs pay nothing for them.

   Implementation note: the atomic cells are stored in chunks of 128 so no
   allocation exceeds the OCaml minor-heap large-object threshold — filling
   a major-heap array with young boxes serializes multi-domain runs on the
   remembered set, a two-orders-of-magnitude pathology on this runtime. *)

let words_per_line = 8
let chunk_bits = 7
let chunk_size = 1 lsl chunk_bits (* 128 *)

type shadow_state = {
  image : int array; (* last-flushed contents *)
  dirty : bool Atomic.t array; (* one flag per line *)
  registered : bool Atomic.t;
}

type t = {
  name : string;
  base_line : int;
  len : int;
  data : int Atomic.t array array; (* chunks of <= 128 cells *)
  shadow : shadow_state option;
}

let line_of_index i = i lsr 3
let n_lines len = (len + words_per_line - 1) / words_per_line
let length t = t.len

let cell t i = Array.unsafe_get (Array.unsafe_get t.data (i lsr chunk_bits)) (i land (chunk_size - 1))

let rec register t sh =
  if Atomic.compare_and_set sh.registered false true then
    Tracking.register
      {
        Tracking.name = t.name;
        is_dirty = (fun () -> Array.exists Atomic.get sh.dirty);
        revert = (fun () -> revert t sh);
        persist = (fun () -> persist t sh);
        unregister = (fun () -> Atomic.set sh.registered false);
      }

and revert t sh =
  Array.iteri
    (fun l d ->
      if Atomic.get d then begin
        let lo = l * words_per_line in
        let hi = min t.len (lo + words_per_line) in
        for i = lo to hi - 1 do
          Atomic.set (cell t i) sh.image.(i)
        done;
        Atomic.set d false
      end)
    sh.dirty

and persist t sh =
  Array.iteri
    (fun l d ->
      if Atomic.get d then begin
        let lo = l * words_per_line in
        let hi = min t.len (lo + words_per_line) in
        for i = lo to hi - 1 do
          sh.image.(i) <- Atomic.get (cell t i)
        done;
        Atomic.set d false
      end)
    sh.dirty

let mark_dirty t line =
  match t.shadow with
  | None -> ()
  | Some sh ->
      if not (Atomic.get sh.dirty.(line)) then Atomic.set sh.dirty.(line) true;
      if not (Atomic.get sh.registered) then register t sh

let make ?(name = "words") len init =
  if len <= 0 then invalid_arg "Words.make: length must be positive";
  let n_chunks = (len + chunk_size - 1) / chunk_size in
  let data =
    Array.init n_chunks (fun c ->
        let sz = min chunk_size (len - (c * chunk_size)) in
        Array.init sz (fun _ -> Atomic.make init))
  in
  let lines = n_lines len in
  let shadow =
    if Mode.shadow_enabled () then
      Some
        {
          image = Array.make len init;
          dirty = Array.init lines (fun _ -> Atomic.make true);
          registered = Atomic.make false;
        }
    else None
  in
  let t = { name; base_line = Line_id.fresh lines; len; data; shadow } in
  Stats.add_allocation ~lines ~words:len;
  (* Allocation stores are in-cache only until explicitly flushed. *)
  (match t.shadow with Some sh -> register t sh | None -> ());
  t

let touch_llc t i = if !Llc.enabled then Llc.access (t.base_line + line_of_index i)

let get t i =
  touch_llc t i;
  Atomic.get (cell t i)

let set t i v =
  touch_llc t i;
  Atomic.set (cell t i) v;
  if t.shadow <> None then mark_dirty t (line_of_index i)

let cas t i ~expected ~desired =
  touch_llc t i;
  let ok = Atomic.compare_and_set (cell t i) expected desired in
  if ok then (match t.shadow with Some _ -> mark_dirty t (line_of_index i) | None -> ());
  ok

let fetch_add t i delta =
  touch_llc t i;
  let v = Atomic.fetch_and_add (cell t i) delta in
  (match t.shadow with Some _ -> mark_dirty t (line_of_index i) | None -> ());
  v

(** Flush the cache line containing word [i].  [site] attributes the flush
    to an index × structural location in the {!Obs} registry. *)
let clwb ?site t i =
  if !Mode.dram then ()
  else begin
  Stats.record_clwb ?site ();
  Latency.on_flush ();
  match t.shadow with
  | None -> ()
  | Some sh ->
      let l = line_of_index i in
      let lo = l * words_per_line in
      let hi = min t.len (lo + words_per_line) in
      for j = lo to hi - 1 do
        sh.image.(j) <- Atomic.get (cell t j)
      done;
      Atomic.set sh.dirty.(l) false
  end

(** Flush every line of the object (e.g. right after allocation). *)
let clwb_all ?site t =
  for l = 0 to n_lines t.len - 1 do
    clwb ?site t (l * words_per_line)
  done
