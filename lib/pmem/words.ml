(* A persistent array of 8-byte words.

   This is the building block for everything an index stores in simulated
   persistent memory: keys, values, permutation words, node headers.  Words
   are grouped 8 to a simulated 64-byte cache line, so [clwb] flushes (and
   the flush counters count) at the same granularity as the machine the
   paper ran on.

   Flat fast path: data words live in one plain, unboxed [int array] — a
   [get] is a single array load, a [set] a single store, with no [Atomic.t]
   box to chase and no chunk indirection (an int array carries no pointers,
   so arbitrarily large arrays cost the GC nothing).  This is sound under
   the OCaml 5 memory model for the access patterns of the converted
   indexes: word-sized plain accesses never tear, writers mutate shared
   lines only while holding a lock (an [Atomic] CAS/store pair), and new
   structure is published to lock-free readers through [Atomic] pointer
   slots ({!Refs} boxed mode), whose release/acquire ordering makes the
   preceding plain stores visible.  See DESIGN.md "The flat substrate and
   the OCaml 5 memory model" for the full argument and its one x86-TSO
   caveat.

   Words that need read-modify-write atomicity — lock words, version words,
   counters updated with [cas]/[fetch_add] — must be declared at
   construction time via [make ~atomic_words:[...]]; they are backed by
   dedicated [Atomic.t] cells and every accessor routes them there.  The
   split is deliberate API surface: whether a word is a plain data word or
   an atomic control word is a per-structure design decision, not something
   decided per call site.  [cas]/[fetch_add] on an undeclared word raise
   [Invalid_argument].

   Semantics per mode:
   - fast mode: [set]/[cas] update the cache image, [clwb] only counts;
   - shadow mode: the object additionally keeps the last-flushed image of
     every line.  A store marks its line dirty in a flat bitset; [clwb]
     copies the cached contents into the image; a simulated power failure
     reverts every dirty line to the image.  A freshly allocated object
     starts with all lines dirty — allocation stores are not persistent
     until flushed, which is how the paper's durability test caught the
     unflushed root allocations in FAST & FAIR and CCEH (§7.5). *)

let words_per_line = 8

(* Dirty-line bitset: 32 lines per cell keeps the shift/mask trivially in
   range of a 63-bit OCaml int; marking races only on the first store to a
   clean line, so the CAS loops below are all but uncontended. *)
let lines_per_cell = 32

type shadow_state = {
  image : int array; (* last-flushed contents *)
  dirty : int Atomic.t array; (* bitset, one bit per line *)
  registered : bool Atomic.t;
}

type t = {
  name : string;
  base_line : int;
  len : int;
  data : int array; (* flat plain words — the fast path *)
  atomic_idx : int array; (* sorted indices of declared atomic words *)
  atomic_cells : int Atomic.t array; (* parallel to [atomic_idx] *)
  shadow : shadow_state option;
}

let line_of_index i = i lsr 3
let n_lines len = (len + words_per_line - 1) / words_per_line
let length t = t.len

(** Process-global line number of the line containing word [i] — the same
    identifier space as {!Line_id}, {!Llc} and the fault/sanitizer hooks.
    Lets callers that defer flushes (the group-persist batch executor)
    deduplicate per cache line across objects. *)
let global_line t i = t.base_line + line_of_index i

(* --- dirty-line bitset -------------------------------------------------- *)

let bitset_make n_lines all_dirty =
  let cells = (n_lines + lines_per_cell - 1) / lines_per_cell in
  Array.init cells (fun c ->
      Atomic.make
        (if not all_dirty then 0
         else begin
           (* Only bits of real lines: a stray bit would read as forever
              dirty. *)
           let lines = min lines_per_cell (n_lines - (c * lines_per_cell)) in
           (1 lsl lines) - 1
         end))

let rec bitset_or cell bit =
  let cur = Atomic.get cell in
  if cur land bit = 0 && not (Atomic.compare_and_set cell cur (cur lor bit))
  then bitset_or cell bit

let rec bitset_clear cell bit =
  let cur = Atomic.get cell in
  if cur land bit <> 0
     && not (Atomic.compare_and_set cell cur (cur land lnot bit))
  then bitset_clear cell bit

let bitset_mem dirty line =
  Atomic.get (Array.unsafe_get dirty (line lsr 5)) land (1 lsl (line land 31))
  <> 0

let bitset_set dirty line =
  let cell = Array.unsafe_get dirty (line lsr 5) in
  let bit = 1 lsl (line land 31) in
  if Atomic.get cell land bit = 0 then bitset_or cell bit

let bitset_unset dirty line =
  bitset_clear (Array.unsafe_get dirty (line lsr 5)) (1 lsl (line land 31))

let bitset_any dirty =
  Array.exists (fun c -> Atomic.get c <> 0) dirty

(* Iterate the set bits of the whole bitset: [f line]. *)
let bitset_iter dirty f =
  Array.iteri
    (fun c cell ->
      let m = ref (Atomic.get cell) in
      while !m <> 0 do
        let b = !m land (- !m) in
        (* log2 of an isolated bit < 2^32 *)
        let rec log2 b acc = if b = 1 then acc else log2 (b lsr 1) (acc + 1) in
        f ((c * lines_per_cell) + log2 b 0);
        m := !m land lnot b
      done)
    dirty

(* --- atomic control words ----------------------------------------------- *)

let no_atomics : int array = [||]

let atomic_cell t i =
  let n = Array.length t.atomic_idx in
  let rec find j =
    if j = n then None
    else if Array.unsafe_get t.atomic_idx j = i then
      Some (Array.unsafe_get t.atomic_cells j)
    else find (j + 1)
  in
  find 0

let atomic_cell_exn t i =
  match atomic_cell t i with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf
           "Words.%s: word %d was not declared in ~atomic_words at make time"
           t.name i)

(* Read/write a word wherever its authority lives (slow path: shadow image
   copies, crash revert, accesses to objects that declared atomic words). *)
let read_word t i =
  match atomic_cell t i with
  | Some c -> Atomic.get c
  | None -> Array.unsafe_get t.data i

let write_word t i v =
  match atomic_cell t i with
  | Some c -> Atomic.set c v
  | None -> Array.unsafe_set t.data i v

(* --- shadow (crash/durability) machinery -------------------------------- *)

let rec register t sh =
  if Atomic.compare_and_set sh.registered false true then
    Tracking.register
      {
        Tracking.name = t.name;
        is_dirty = (fun () -> bitset_any sh.dirty);
        revert = (fun () -> revert t sh);
        persist = (fun () -> persist t sh);
        unregister = (fun () -> Atomic.set sh.registered false);
      }

and revert t sh =
  bitset_iter sh.dirty (fun l ->
      let lo = l * words_per_line in
      let hi = min t.len (lo + words_per_line) in
      for i = lo to hi - 1 do
        write_word t i sh.image.(i)
      done;
      bitset_unset sh.dirty l)

and persist t sh =
  bitset_iter sh.dirty (fun l ->
      let lo = l * words_per_line in
      let hi = min t.len (lo + words_per_line) in
      for i = lo to hi - 1 do
        sh.image.(i) <- read_word t i
      done;
      bitset_unset sh.dirty l)

let mark_dirty t sh line =
  bitset_set sh.dirty line;
  if not (Atomic.get sh.registered) then register t sh

let make ?(name = "words") ?(atomic_words = []) len init =
  if len <= 0 then invalid_arg "Words.make: length must be positive";
  if !Mode.flags land Mode.f_inject <> 0 then (!Fault.h).f_alloc name;
  let atomic_idx =
    match atomic_words with
    | [] -> no_atomics
    | l ->
        let a = Array.of_list (List.sort_uniq compare l) in
        Array.iter
          (fun i ->
            if i < 0 || i >= len then
              invalid_arg "Words.make: atomic word index out of range")
          a;
        a
  in
  let atomic_cells = Array.map (fun _ -> Atomic.make init) atomic_idx in
  let lines = n_lines len in
  let shadow =
    if Mode.shadow_enabled () then
      Some
        {
          image = Array.make len init;
          dirty = bitset_make lines true;
          registered = Atomic.make false;
        }
    else None
  in
  let t =
    {
      name;
      base_line = Line_id.fresh lines;
      len;
      data = Array.make len init;
      atomic_idx;
      atomic_cells;
      shadow;
    }
  in
  Stats.add_allocation ~lines ~words:len;
  if !Mode.flags land Mode.f_sanitize <> 0 then
    (!Sanhook.h).h_alloc name t.base_line lines;
  (* Allocation stores are in-cache only until explicitly flushed. *)
  (match t.shadow with Some sh -> register t sh | None -> ());
  t

(* --- hot-path accessors -------------------------------------------------

   One load of the packed {!Mode.flags} word decides every per-epoch
   simulator feature; the per-object tests ([atomic_idx], [shadow]) are
   single immediate-field checks that predict perfectly on the fast-mode
   benchmark path. *)

let[@inline] probe_llc t i =
  if !Mode.flags land Mode.f_llc <> 0 then
    Llc.access (t.base_line + line_of_index i)

(* Sanitizer event reporters — out of line so the fast path below stays a
   flags test + branch.  A word is a release/acquire point iff it was
   declared in [~atomic_words]. *)

let is_atomic_word t i = atomic_cell t i <> None

let san_load t i = (!Sanhook.h).h_load t.name t.base_line i (is_atomic_word t i)

let san_store t i =
  (!Sanhook.h).h_store t.name t.base_line i (is_atomic_word t i)

(* Fault-injection store reporter — out of line like the sanitizer's, so the
   fast path below stays a flags test + branch.  The persist closure writes
   just this store's value into the shadow image: the torn-line primitive. *)
let inject_store t i v =
  let persist =
    match t.shadow with
    | Some sh -> fun () -> sh.image.(i) <- v
    | None -> ignore
  in
  (!Fault.h).f_store (t.base_line + line_of_index i) persist

let get t i =
  probe_llc t i;
  (* Read first, report second: a reader that observed a released value
     must find the matching release clock already recorded (stores report
     before writing), or a publish racing this load could slip between the
     sanitizer's join and the read. *)
  let v =
    if t.atomic_idx == no_atomics then Array.unsafe_get t.data i
    else read_word t i
  in
  if !Mode.flags land Mode.f_sanitize <> 0 then san_load t i;
  v

let set t i v =
  probe_llc t i;
  if !Mode.flags land Mode.f_sanitize <> 0 then san_store t i;
  if t.atomic_idx == no_atomics then Array.unsafe_set t.data i v
  else write_word t i v;
  (match t.shadow with
  | None -> ()
  | Some sh -> mark_dirty t sh (line_of_index i));
  if !Mode.flags land Mode.f_inject <> 0 then inject_store t i v

let cas t i ~expected ~desired =
  probe_llc t i;
  let cell = atomic_cell_exn t i in
  let op () = Atomic.compare_and_set cell expected desired in
  let ok =
    if !Mode.flags land Mode.f_sanitize <> 0 then
      (!Sanhook.h).h_rmw t.name t.base_line i op
    else op ()
  in
  (if ok then begin
     (match t.shadow with
     | None -> ()
     | Some sh -> mark_dirty t sh (line_of_index i));
     if !Mode.flags land Mode.f_inject <> 0 then inject_store t i desired
   end);
  ok

let fetch_add t i delta =
  probe_llc t i;
  let cell = atomic_cell_exn t i in
  let v = ref 0 in
  let op () =
    v := Atomic.fetch_and_add cell delta;
    true
  in
  if !Mode.flags land Mode.f_sanitize <> 0 then
    ignore ((!Sanhook.h).h_rmw t.name t.base_line i op)
  else ignore (op ());
  (match t.shadow with
  | None -> ()
  | Some sh -> mark_dirty t sh (line_of_index i));
  !v

(** Sanitizer publication point: called by the [Recipe.Persist] commit
    combinators right after their commit store, before the commit flush.
    The sanitizer checks that nothing the calling domain wrote earlier is
    still unpersisted (RECIPE Condition #1/#2).  A no-op unless sanitize
    mode is on. *)
let sanitize_publish ?site t i =
  if !Mode.flags land Mode.f_sanitize <> 0 then
    (!Sanhook.h).h_publish t.name t.base_line i site

(** Whether the line containing word [i] has unpersisted stores.
    Conservatively [true] when shadow tracking is off — callers deciding
    whether a flush is still needed must then flush. *)
let line_dirty t i =
  match t.shadow with
  | Some sh -> bitset_mem sh.dirty (line_of_index i)
  | None -> true

(** Flush the cache line containing word [i].  [site] attributes the flush
    to an index × structural location in the {!Obs} registry. *)
let clwb ?site t i =
  if !Mode.flags land Mode.f_dram <> 0 then ()
  else if
    !Mode.flags land Mode.f_sanitize <> 0 && Sanhook.should_drop_clwb site
  then () (* mutation test: this flush instruction is "deleted" *)
  else begin
    if !Mode.flags land Mode.f_inject <> 0 then
      (!Fault.h).f_clwb site (t.base_line + line_of_index i);
    Stats.record_clwb ?site ();
    Latency.on_flush ();
    if !Mode.flags land Mode.f_sanitize <> 0 then
      (!Sanhook.h).h_clwb t.name t.base_line i site;
    match t.shadow with
    | None -> ()
    | Some sh ->
        let l = line_of_index i in
        let lo = l * words_per_line in
        let hi = min t.len (lo + words_per_line) in
        for j = lo to hi - 1 do
          sh.image.(j) <- read_word t j
        done;
        bitset_unset sh.dirty l
  end

(** Flush every line of the object (e.g. right after allocation). *)
let clwb_all ?site t =
  for l = 0 to n_lines t.len - 1 do
    clwb ?site t (l * words_per_line)
  done

(** Flush only the lines the tracked modes know to be dirty; untracked modes
    keep no dirty bitset and fall back to flushing everything.  For a
    re-persist pass over a structure that is already partially persisted
    (CLHT's rehash and its recovery roll-forward), this keeps every clwb
    landing on a genuinely dirty line — the sanitizer reports a flush of an
    already-persisted line as redundant. *)
let clwb_all_dirty ?site t =
  match t.shadow with
  | Some sh ->
      bitset_iter sh.dirty (fun l -> clwb ?site t (l * words_per_line))
  | None -> clwb_all ?site t
