(** P-BwTree: persistent Bw-Tree (paper §6.3; Levandoski et al., ICDE '13).
    RECIPE Conditions #1 (non-SMO) and #2 (SMO).

    The Bw-tree is a latch-free B+ tree: logical nodes are identified by
    page ids resolved through a *mapping table*, and every update prepends
    an immutable delta record to the node's chain, installed with one CAS
    on the mapping-table slot.  Readers replay the chain; writers
    consolidate long chains into fresh base nodes (another single CAS).

    Non-SMOs are Condition #1: the delta record is persisted, then the CAS
    commits, and — the §6.3 optimization — the cache-line flush of the
    mapping slot happens only when the CAS succeeds: the first flush of a
    slot always persists the winning CAS.

    The SMO splits a node B-link style: the new sibling base is installed
    at a fresh page id, then one CAS replaces the old chain with the lower
    half (carrying high key + sibling id).  The parent's separator entry is
    added afterwards by an index-entry delta; any thread that reaches the
    sibling through the high-key jump *helps* complete the parent first
    (Condition #2's helping mechanism), so a crash between the two steps is
    repaired by the next traversal.  Node merges are not implemented
    (deletes leave delta tombstones); see DESIGN.md.

    Keys are word-encoded via {!Recipe.Wordkey} (integer or pointer-to-
    string modes, as in the paper's two key types); values are 8-byte
    integers. *)

type t

val name : string

(** [create ~space ()] — key representation as in {!Fastfair.create}. *)
val create : space:Recipe.Wordkey.t -> unit -> t

(** [insert t key value] — [false] if [key] is present.  Lock-free: aborts
    and retries from the root on CAS failure. *)
val insert : t -> string -> int -> bool

val lookup : t -> string -> int option

(** [update t key value] prepends a delta shadowing the old binding;
    [false] if the key is absent.  Lock-free. *)
val update : t -> string -> int -> bool

val delete : t -> string -> bool

(** [scan t key n f] — up to [n] bindings with keys >= [key], ascending. *)
val scan : t -> string -> int -> (string -> int -> unit) -> int

val range : t -> string -> string -> (string * int) list

(** Post-crash recovery: rebuilds the volatile page-id allocator from the
    persistent mapping table, completes an interrupted root split, then
    walks the reachable pages installing every B-link sibling's separator in
    its parent and consolidating over-long delta chains — the repairs
    lock-free helping would otherwise perform lazily. *)
val recover : t -> unit

(** [leak_sweep ?reclaim t] counts live mapping slots unreachable from the
    root: split siblings (or a root split's demoted lower half) published at
    a fresh page id whose committing CAS the crash interrupted.
    [~reclaim:true] resets them to placeholders.  [repaired] echoes the
    SMO-completion count of the last [recover]. *)
val leak_sweep : ?reclaim:bool -> t -> Recipe.Recovery.stats

(** Number of parent-completion (helping) events — proves Condition #2's
    mechanism runs (tests). *)
val help_count : t -> int

(** Number of consolidations performed (tests/benches). *)
val consolidation_count : t -> int
