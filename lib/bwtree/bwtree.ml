(* P-BwTree (see bwtree.mli).

   Representation:
   - mapping table: segmented persistent pointer array, page id -> chain;
   - chain: immutable delta records ending in a base node.  Delta kinds:
     leaf insert, leaf delete (tombstone), internal index-entry (separator ->
     child page).  Each record carries a persistent metadata line that is
     flushed before the record is CAS-installed;
   - base node: sorted key words + values (leaf) or children page ids
     (internal, count+1 with the leftmost at index 0), plus B-link high key
     and sibling page id.

   SMO = consolidation-with-split: build the sibling base (upper half),
   install it at a fresh page id, persist, then one CAS swings the old page
   to the lower-half base.  The parent index entry is added after; readers
   and writers reaching the sibling through the high-key jump help complete
   the parent first.  The root page id is fixed; a root split installs a new
   internal base at the root id with one CAS. *)

module W = Pmem.Words
module R = Pmem.Refs
module P = Recipe.Persist
module K = Recipe.Wordkey

let name = "P-BwTree"

(* Flush/fence attribution sites (index × structural location). *)
let site = Obs.Site.v ~index:name
let s_alloc = site "alloc-base"
let s_delta = site ~crash:true "delta-install"
let s_index = site ~crash:true "index-install"
let s_consol = site ~crash:true "consolidate"
let s_split = site ~crash:true "split"
let s_root = site ~crash:true "new-root"
let s_recover = site "recover"
let max_entries = 32
let max_chain = 8
let mapping_segment = 4096
let max_segments = 4096

type base = {
  leaf : bool;
  count : int;
  keys : W.t; (* count words (>=1 allocated) *)
  vals : W.t; (* leaf: count values; internal: count+1 child page ids *)
  has_high : bool;
  high : int;
  next_pid : int; (* sibling page id; meaningful iff has_high *)
  bmeta : W.t;
}

type dop =
  | DInsert of int * int (* key word, value *)
  | DDelete of int
  | DIndex of int * int (* separator word, child page id *)

type node = NBase of base | NDelta of delta
and delta = { dleaf : bool; dop : dop; dnext : node; dmeta : W.t }

type t = {
  ks : K.t;
  segments : node R.t option Atomic.t array;
  next_pid : int Atomic.t;
  helps : int Atomic.t;
  consolidations : int Atomic.t;
  repairs : int Atomic.t; (* structures the last [recover] completed *)
  grow_lock : Mutex.t;
}

let node_leaf = function NBase b -> b.leaf | NDelta d -> d.dleaf

(* --- mapping table ------------------------------------------------------------ *)

let[@pm.deferred] dummy_base () =
  let b =
    {
      leaf = true;
      count = 0;
      keys = W.make ~name:"bw.dummy" 1 0;
      vals = W.make ~name:"bw.dummy" 1 0;
      has_high = false;
      high = 0;
      next_pid = 0;
      bmeta = W.make ~name:"bw.dummy" 1 0;
    }
  in
  W.clwb_all ~site:s_alloc b.keys;
  W.clwb_all ~site:s_alloc b.vals;
  W.clwb_all ~site:s_alloc b.bmeta;
  b

let rec segment t s =
  match Atomic.get t.segments.(s) with
  | Some seg -> seg
  | None ->
      Mutex.lock t.grow_lock;
      if Atomic.get t.segments.(s) = None then begin
        (* Atomic: mapping-table slots are the CAS install points of every
           delta/consolidation — the canonical cas-bearing structure. *)
        let seg =
          R.make ~name:"bw.mapping" ~atomic:true mapping_segment
            (NBase (dummy_base ()))
        in
        R.clwb_all ~site:s_alloc seg;
        Pmem.sfence ~site:s_alloc ();
        Atomic.set t.segments.(s) (Some seg) [@pm.volatile]
      end;
      Mutex.unlock t.grow_lock;
      segment t s

let mapping_get t pid =
  R.get (segment t (pid / mapping_segment)) (pid mod mapping_segment)

(* Install with CAS; flush only on success (§6.3). *)
let mapping_cas ?site t pid ~expected ~desired =
  P.commit_cas_ref ?site
    (segment t (pid / mapping_segment))
    (pid mod mapping_segment) ~expected ~desired

(* Unconditional install of a fresh, not-yet-published page id. *)
let mapping_set ?(site = s_split) t pid node =
  let seg = segment t (pid / mapping_segment) in
  R.set seg (pid mod mapping_segment) node;
  R.clwb ~site seg (pid mod mapping_segment);
  Pmem.sfence ~site ()

let alloc_pid t = Atomic.fetch_and_add t.next_pid 1 [@pm.volatile]

(* --- constructing records -------------------------------------------------------- *)

let make_base ?(site = s_alloc) ~leaf ~count ~has_high ~high ~next_pid fill_keys fill_vals =
  let keys = W.make ~name:"bw.keys" (max 1 count) 0 in
  let vals =
    W.make ~name:"bw.vals" (max 1 (if leaf then count else count + 1)) 0
  in
  fill_keys keys;
  fill_vals vals;
  let bmeta = W.make ~name:"bw.bmeta" 8 0 in
  W.set bmeta 0 (if leaf then 1 else 0);
  W.set bmeta 1 count;
  W.set bmeta 2 (if has_high then 1 else 0);
  W.set bmeta 3 high;
  W.set bmeta 4 next_pid;
  (* Live marker: distinguishes published bases from the mapping table's
     dummy placeholders when recovery scans for allocated page ids. *)
  W.set bmeta 5 1;
  let b = { leaf; count; keys; vals; has_high; high; next_pid; bmeta } in
  W.clwb_all ~site keys;
  W.clwb_all ~site vals;
  W.clwb_all ~site bmeta;
  Pmem.sfence ~site ();
  b

(* Persist a delta record's metadata line before it is installed. *)
let make_delta ?(site = s_delta) ~leaf dop next =
  let dmeta = W.make ~name:"bw.delta" 8 0 in
  (match dop with
  | DInsert (k, v) ->
      W.set dmeta 0 1;
      W.set dmeta 1 k;
      W.set dmeta 2 v
  | DDelete k ->
      W.set dmeta 0 2;
      W.set dmeta 1 k
  | DIndex (s, c) ->
      W.set dmeta 0 3;
      W.set dmeta 1 s;
      W.set dmeta 2 c);
  W.clwb_all ~site dmeta;
  Pmem.sfence ~site ();
  { dleaf = leaf; dop; dnext = next; dmeta }

let create ~space () =
  let t =
    {
      ks = space;
      segments = Array.init max_segments (fun _ -> Atomic.make None);
      next_pid = Atomic.make 1;
      helps = Atomic.make 0;
      consolidations = Atomic.make 0;
      repairs = Atomic.make 0;
      grow_lock = Mutex.create ();
    }
  in
  (* Root (pid 0): an empty leaf base. *)
  let root =
    make_base ~leaf:true ~count:0 ~has_high:false ~high:0 ~next_pid:0
      (fun _ -> ())
      (fun _ -> ())
  in
  mapping_set t 0 (NBase root);
  t

let help_count t = Atomic.get t.helps
let consolidation_count t = Atomic.get t.consolidations

(* --- chain utilities ---------------------------------------------------------------- *)

let chain_length node =
  let rec go n acc = match n with NBase _ -> acc | NDelta d -> go d.dnext (acc + 1) in
  go node 0

(* Flatten a leaf chain into sorted live (key word, value) pairs plus the
   B-link fields.  The first delta for a key wins. *)
let flatten_leaf t node =
  (* In string mode the word order differs from the raw int order, so sort
     with the keyspace comparison. *)
  let rec collect n seen acc =
    match n with
    | NDelta { dop = DInsert (k, v); dnext; _ } ->
        if List.exists (fun (k', _) -> t.ks.compare_words k' k = 0) seen then
          collect dnext seen acc
        else collect dnext ((k, Some v) :: seen) acc
    | NDelta { dop = DDelete k; dnext; _ } ->
        if List.exists (fun (k', _) -> t.ks.compare_words k' k = 0) seen then
          collect dnext seen acc
        else collect dnext ((k, None) :: seen) acc
    | NDelta { dop = DIndex _; _ } -> assert false
    | NBase b ->
        let from_base = ref [] in
        for i = b.count - 1 downto 0 do
          let k = W.get b.keys i in
          if not (List.exists (fun (k', _) -> t.ks.compare_words k' k = 0) seen)
          then from_base := (k, W.get b.vals i) :: !from_base
        done;
        let added =
          List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) v) seen
        in
        let all =
          List.sort (fun (a, _) (b, _) -> t.ks.compare_words a b)
            (!from_base @ added)
        in
        (all, b.has_high, b.high, b.next_pid)
  in
  collect node [] []

(* Flatten an internal chain into sorted (separator, child) pairs with the
   leftmost child. *)
let flatten_internal t node =
  let rec collect n acc =
    match n with
    | NDelta { dop = DIndex (s, c); dnext; _ } -> collect dnext ((s, c) :: acc)
    | NDelta { dop = DInsert _ | DDelete _; _ } -> assert false
    | NBase b ->
        let from_base = ref [] in
        for i = b.count - 1 downto 0 do
          from_base := (W.get b.keys i, W.get b.vals (i + 1)) :: !from_base
        done;
        (* Deduplicate separators (double helping), newest wins. *)
        let merged =
          List.sort_uniq (fun (a, _) (b, _) ->
              let c = t.ks.compare_words a b in
              if c <> 0 then c else 0)
            (acc @ !from_base)
        in
        (W.get b.vals 0, merged, b.has_high, b.high, b.next_pid)
  in
  collect node []

(* --- searches --------------------------------------------------------------------------- *)

type leaf_hit = Found of int | Absent | Not_here | Sideways of int * int
(* Sideways (sep word, sibling pid): key >= high, go right. *)

let leaf_search t node probe =
  let rec go n =
    match n with
    | NDelta { dop = DInsert (_, v); dnext; dmeta; _ } ->
        (* Read the key through the delta's persistent line: the pointer
           chase that gives the Bw-tree its high LLC miss count (§7.1). *)
        if t.ks.compare_probe probe (W.get dmeta 1) = 0 then Found v
        else go dnext
    | NDelta { dop = DDelete _; dnext; dmeta; _ } ->
        if t.ks.compare_probe probe (W.get dmeta 1) = 0 then Absent
        else go dnext
    | NDelta { dop = DIndex _; _ } -> assert false
    | NBase b ->
        if b.has_high && t.ks.compare_probe probe b.high >= 0 then
          Sideways (b.high, b.next_pid)
        else begin
          let rec bin lo hi =
            if lo >= hi then Not_here
            else
              let mid = (lo + hi) / 2 in
              let c = t.ks.compare_probe probe (W.get b.keys mid) in
              if c = 0 then Found (W.get b.vals mid)
              else if c < 0 then bin lo mid
              else bin (mid + 1) hi
          in
          bin 0 b.count
        end
  in
  go node

type child_hit = Down of int | Sideways_i of int * int

let internal_child t node probe =
  let rec go n best_low best_pid =
    match n with
    | NDelta { dop = DIndex (_, c); dnext; dmeta; _ } ->
        let s = W.get dmeta 1 in
        if
          t.ks.compare_probe probe s >= 0
          && (best_low = min_int || t.ks.compare_words s best_low > 0)
        then go dnext s c
        else go dnext best_low best_pid
    | NDelta { dop = DInsert _ | DDelete _; _ } -> assert false
    | NBase b ->
        if b.has_high && t.ks.compare_probe probe b.high >= 0 then
          Sideways_i (b.high, b.next_pid)
        else begin
          (* Last base separator <= probe. *)
          let rec scan i best_low best_pid =
            if i >= b.count then (best_low, best_pid)
            else
              let s = W.get b.keys i in
              if t.ks.compare_probe probe s >= 0 then
                if best_low = min_int || t.ks.compare_words s best_low > 0 then
                  scan (i + 1) s (W.get b.vals (i + 1))
                else scan (i + 1) best_low best_pid
              else (best_low, best_pid)
          in
          let low, pid = scan 0 best_low best_pid in
          if low = min_int then Down (W.get b.vals 0) else Down pid
        end
  in
  go node min_int (-1)

(* --- helping: complete an interrupted split's parent update --------------------------- *)

let rec add_index t parent_pid sep child_pid =
  let node = mapping_get t parent_pid in
  (* Already present? *)
  let rec present n =
    match n with
    | NDelta { dop = DIndex (s, _); dnext; _ } ->
        t.ks.compare_words s sep = 0 || present dnext
    | NDelta { dnext; _ } -> present dnext
    | NBase b ->
        let rec scan i =
          i < b.count
          && (t.ks.compare_words (W.get b.keys i) sep = 0 || scan (i + 1))
        in
        scan 0
  in
  if not (present node) then begin
    (* If the separator moved right of the parent (the parent itself split),
       follow the parent's sibling. *)
    match node with
    | NBase b when b.has_high && t.ks.compare_words sep b.high >= 0 ->
        add_index t b.next_pid sep child_pid
    | _ ->
        let d = make_delta ~site:s_index ~leaf:false (DIndex (sep, child_pid)) node in
        Pmem.Crash.point ~site:s_index ();
        if mapping_cas ~site:s_index t parent_pid ~expected:node ~desired:(NDelta d) then begin
          Atomic.incr t.helps [@pm.volatile];
          maybe_consolidate t parent_pid None
        end
        else add_index t parent_pid sep child_pid
  end

(* --- consolidation and splits ------------------------------------------------------------ *)

and maybe_consolidate t pid parent =
  let node = mapping_get t pid in
  if chain_length node > max_chain then consolidate t pid parent node

and consolidate t pid parent node =
  if node_leaf node then begin
    let entries, has_high, high, next_pid = flatten_leaf t node in
    let entries = Array.of_list entries in
    let n = Array.length entries in
    if n <= max_entries then begin
      let nb =
        make_base ~site:s_consol ~leaf:true ~count:n ~has_high ~high ~next_pid
          (fun keys -> Array.iteri (fun i (k, _) -> W.set keys i k) entries)
          (fun vals -> Array.iteri (fun i (_, v) -> W.set vals i v) entries)
      in
      Pmem.Crash.point ~site:s_consol ();
      if mapping_cas ~site:s_consol t pid ~expected:node ~desired:(NBase nb) then
        Atomic.incr t.consolidations [@pm.volatile]
    end
    else split_leaf t pid parent node entries ~has_high ~high ~next_pid
  end
  else begin
    let leftmost, seps, has_high, high, next_pid = flatten_internal t node in
    let seps = Array.of_list seps in
    let n = Array.length seps in
    if n <= max_entries then begin
      let nb =
        make_base ~site:s_consol ~leaf:false ~count:n ~has_high ~high ~next_pid
          (fun keys -> Array.iteri (fun i (s, _) -> W.set keys i s) seps)
          (fun vals ->
            W.set vals 0 leftmost;
            Array.iteri (fun i (_, c) -> W.set vals (i + 1) c) seps)
      in
      Pmem.Crash.point ~site:s_consol ();
      if mapping_cas ~site:s_consol t pid ~expected:node ~desired:(NBase nb) then
        Atomic.incr t.consolidations [@pm.volatile]
    end
    else split_internal t pid parent node leftmost seps ~has_high ~high ~next_pid
  end

and split_leaf t pid parent node entries ~has_high ~high ~next_pid =
  let n = Array.length entries in
  let mid = n / 2 in
  let sep, _ = entries.(mid) in
  (* Sibling with the upper half at a fresh, unpublished page id. *)
  let sib_pid = alloc_pid t in
  let sib =
    make_base ~site:s_split ~leaf:true ~count:(n - mid) ~has_high ~high ~next_pid
      (fun keys ->
        for i = mid to n - 1 do
          W.set keys (i - mid) (fst entries.(i))
        done)
      (fun vals ->
        for i = mid to n - 1 do
          W.set vals (i - mid) (snd entries.(i))
        done)
  in
  mapping_set t sib_pid (NBase sib);
  Pmem.Crash.point ~site:s_split ();
  (* Lower half carries the new high key: the single-CAS logical split. *)
  let lower =
    make_base ~site:s_split ~leaf:true ~count:mid ~has_high:true ~high:sep ~next_pid:sib_pid
      (fun keys ->
        for i = 0 to mid - 1 do
          W.set keys i (fst entries.(i))
        done)
      (fun vals ->
        for i = 0 to mid - 1 do
          W.set vals i (snd entries.(i))
        done)
  in
  if mapping_cas ~site:s_split t pid ~expected:node ~desired:(NBase lower) then begin
    Atomic.incr t.consolidations [@pm.volatile];
    Pmem.Crash.point ~site:s_split ();
    finish_split t pid parent sep sib_pid
  end

and split_internal t pid parent node leftmost seps ~has_high ~high ~next_pid =
  let n = Array.length seps in
  let mid = n / 2 in
  let sep, sep_child = seps.(mid) in
  let sib_pid = alloc_pid t in
  let sib =
    make_base ~site:s_split ~leaf:false ~count:(n - mid - 1) ~has_high ~high ~next_pid
      (fun keys ->
        for i = mid + 1 to n - 1 do
          W.set keys (i - mid - 1) (fst seps.(i))
        done)
      (fun vals ->
        W.set vals 0 sep_child;
        for i = mid + 1 to n - 1 do
          W.set vals (i - mid) (snd seps.(i))
        done)
  in
  mapping_set t sib_pid (NBase sib);
  Pmem.Crash.point ~site:s_split ();
  let lower =
    make_base ~site:s_split ~leaf:false ~count:mid ~has_high:true ~high:sep ~next_pid:sib_pid
      (fun keys ->
        for i = 0 to mid - 1 do
          W.set keys i (fst seps.(i))
        done)
      (fun vals ->
        W.set vals 0 leftmost;
        for i = 0 to mid - 1 do
          W.set vals (i + 1) (snd seps.(i))
        done)
  in
  if mapping_cas ~site:s_split t pid ~expected:node ~desired:(NBase lower) then begin
    Atomic.incr t.consolidations [@pm.volatile];
    Pmem.Crash.point ~site:s_split ();
    finish_split t pid parent sep sib_pid
  end

(* Install the separator in the parent — or grow a new root when the split
   page was the root (the root page id is fixed). *)
and finish_split t pid parent sep sib_pid =
  match parent with
  | Some parent_pid -> add_index t parent_pid sep sib_pid
  | None ->
      if pid = 0 then begin
        (* Root split: push both halves down under a fresh internal root.
           A lost CAS (or a crash anywhere here) leaves the root chained
           sideways — still fully reachable through high-key jumps — and a
           later split of page 0 retries the growth. *)
        let lower_pid = alloc_pid t in
        let old = mapping_get t pid in
        mapping_set ~site:s_root t lower_pid old;
        let new_root =
          make_base ~site:s_root ~leaf:false ~count:1 ~has_high:false ~high:0 ~next_pid:0
            (fun keys -> W.set keys 0 sep)
            (fun vals ->
              W.set vals 0 lower_pid;
              W.set vals 1 sib_pid)
        in
        Pmem.Crash.point ~site:s_root ();
        ignore (mapping_cas ~site:s_root t pid ~expected:old ~desired:(NBase new_root))
      end
      (* else: a sibling of the (still-leaf) root split; its separator is
         installed by helping once the root has grown to an internal node. *)

(* --- descent -------------------------------------------------------------------------------- *)

(* Walk to the leaf page covering [probe]; returns (leaf pid, parent pid
   option).  Helping happens on every sideways jump. *)
let rec to_leaf t probe pid parent =
  let node = mapping_get t pid in
  if node_leaf node then (pid, parent)
  else
    match internal_child t node probe with
    | Down cpid -> to_leaf t probe cpid (Some pid)
    | Sideways_i (sep, sib) ->
        (match parent with
        | Some pp -> add_index t pp sep sib
        | None -> ());
        to_leaf t probe sib parent

let rec find_leaf_value t probe pid parent =
  match leaf_search t (mapping_get t pid) probe with
  | Found v -> Some v
  | Absent | Not_here -> None
  | Sideways (sep, sib) ->
      (match parent with
      | Some pp -> add_index t pp sep sib
      | None -> ());
      find_leaf_value t probe sib parent

let lookup t probe =
  let pid, parent = to_leaf t probe 0 None in
  find_leaf_value t probe pid parent

(* --- updates ---------------------------------------------------------------------------------- *)

let rec write_op t probe make_op present_result absent_result =
  let pid, parent = to_leaf t probe 0 None in
  let rec attempt pid parent =
    let node = mapping_get t pid in
    match leaf_search t node probe with
    | Sideways (sep, sib) ->
        (match parent with
        | Some pp -> add_index t pp sep sib
        | None -> ());
        attempt sib parent
    | (Found _ | Absent | Not_here) as hit -> (
        let decided =
          match hit with
          | Found v -> `Present v
          | Absent | Not_here -> `Absent
          | Sideways _ -> assert false
        in
        match make_op decided with
        | None -> (
            match decided with
            | `Present v -> present_result v
            | `Absent -> absent_result)
        | Some dop ->
            let d = make_delta ~leaf:true dop node in
            Pmem.Crash.point ~site:s_delta ();
            if mapping_cas ~site:s_delta t pid ~expected:node ~desired:(NDelta d) then begin
              maybe_consolidate t pid parent;
              match decided with
              | `Present v -> present_result v
              | `Absent -> absent_result
            end
            else (* CAS lost: abort and restart from the root (§6.3) *)
              write_op t probe make_op present_result absent_result)
  in
  attempt pid parent

let insert t probe value =
  let kw = lazy (t.ks.intern probe) in
  write_op t probe
    (fun decided ->
      match decided with
      | `Present _ -> None
      | `Absent -> Some (DInsert (Lazy.force kw, value)))
    (fun _ -> false)
    true

(* Update = prepend a fresh insert delta that shadows the old binding
   (chain replay is first-delta-wins); lock-free, single CAS. *)
let update t probe value =
  let kw = lazy (t.ks.intern probe) in
  write_op t probe
    (fun decided ->
      match decided with
      | `Present _ -> Some (DInsert (Lazy.force kw, value))
      | `Absent -> None)
    (fun _ -> true)
    false

let delete t probe =
  let kw = lazy (t.ks.intern probe) in
  write_op t probe
    (fun decided ->
      match decided with
      | `Present _ -> Some (DDelete (Lazy.force kw))
      | `Absent -> None)
    (fun _ -> true)
    false

(* --- scans -------------------------------------------------------------------------------------- *)

let scan t probe nwant f =
  if nwant <= 0 then 0
  else begin
    let emitted = ref 0 in
    let exception Done in
    let rec walk pid first =
      let node = mapping_get t pid in
      let entries, has_high, _, next_pid = flatten_leaf t node in
      List.iter
        (fun (k, v) ->
          if (not first) || t.ks.compare_probe probe k <= 0 then begin
            if !emitted >= nwant then raise Done;
            f (t.ks.to_key k) v;
            incr emitted
          end)
        entries;
      if has_high && next_pid > 0 then walk next_pid false
    in
    let pid, _ = to_leaf t probe 0 None in
    (try walk pid true with Done -> ());
    !emitted
  end

let range t lo hi =
  let acc = ref [] in
  let exception Past in
  (try
     ignore
       (scan t lo max_int (fun k v ->
            if String.compare k hi >= 0 then raise Past;
            acc := (k, v) :: !acc))
   with Past -> ());
  List.rev !acc

(* --- recovery -------------------------------------------------------------------------------------- *)

(* A mapping slot is live when it holds a delta chain or a base published by
   [make_base] (live marker in the spare metadata word); the segment-fill
   dummies carry no marker, and an unflushed marker reverts with the base —
   a never-published page correctly reads as dead after a crash. *)
let live_node = function
  | NDelta _ -> true
  | NBase b -> W.length b.bmeta > 5 && W.get b.bmeta 5 = 1

(* B-link fields of a chain, leaf or internal. *)
let chain_links t node =
  if node_leaf node then
    let _, has_high, high, next_pid = flatten_leaf t node in
    (has_high, high, next_pid)
  else
    let _, _, has_high, high, next_pid = flatten_internal t node in
    (has_high, high, next_pid)

(* BFS over pages reachable from the root — through child pointers and
   B-link siblings (a split sibling is reachable through the lower half's
   link before the parent learns its separator).  Calls [f pid parent node]
   once per page; returns the visited set. *)
let iter_reachable t f =
  let visited = Hashtbl.create 64 in
  let rec visit pid parent =
    if not (Hashtbl.mem visited pid) then begin
      Hashtbl.add visited pid ();
      let node = mapping_get t pid in
      f pid parent node;
      if node_leaf node then begin
        let _, has_high, _, next_pid = flatten_leaf t node in
        if has_high && next_pid > 0 then visit next_pid parent
      end
      else begin
        let leftmost, seps, has_high, _, next_pid = flatten_internal t node in
        visit leftmost (Some pid);
        List.iter (fun (_, c) -> visit c (Some pid)) seps;
        if has_high && next_pid > 0 then visit next_pid parent
      end
    end
  in
  visit 0 None;
  visited

(* Post-crash recovery:
   - rebuild the volatile page-id allocator from the highest live mapping
     slot;
   - complete an interrupted root split (root still a leaf with a B-link:
     the growth CAS was lost) by replaying [finish_split];
   - walk the reachable pages doing eager helping — every sibling hanging
     off a B-link gets its separator installed in the parent ([add_index]
     no-ops when it is already there) — and consolidating chains past the
     length threshold, converting the lazy repairs into eager ones. *)
let recover t =
  Util.Lock.new_epoch ();
  let hi = ref 0 in
  Array.iteri
    (fun s cell ->
      match Atomic.get cell with
      | None -> ()
      | Some seg ->
          for j = 0 to mapping_segment - 1 do
            if live_node (R.get seg j) then hi := max !hi ((s * mapping_segment) + j)
          done)
    t.segments;
  Atomic.set t.next_pid (!hi + 1) [@pm.volatile];
  let helps0 = Atomic.get t.helps and cons0 = Atomic.get t.consolidations in
  let root_completed = ref 0 in
  (let root = mapping_get t 0 in
   if node_leaf root then begin
     let _, has_high, high, next_pid = flatten_leaf t root in
     if has_high && next_pid > 0 then begin
       finish_split t 0 None high next_pid;
       incr root_completed
     end
   end);
  ignore
    (iter_reachable t (fun pid parent node ->
         let has_high, high, next_pid = chain_links t node in
         (match parent with
         | Some pp when has_high && next_pid > 0 -> add_index t pp high next_pid
         | Some _ | None -> ());
         maybe_consolidate t pid parent));
  Atomic.set t.repairs
    (!root_completed
    + (Atomic.get t.helps - helps0)
    + (Atomic.get t.consolidations - cons0))
  [@pm.volatile]

(* Sweep live mapping slots unreachable from the root: a split sibling (or a
   root split's demoted lower half) published at a fresh page id whose
   committing CAS was lost to the crash.  [~reclaim:true] resets the slot to
   a dummy placeholder. *)
let leak_sweep ?(reclaim = false) t =
  let reachable = iter_reachable t (fun _ _ _ -> ()) in
  let orphans = ref 0 and reclaimed = ref 0 in
  Array.iteri
    (fun s cell ->
      match Atomic.get cell with
      | None -> ()
      | Some seg ->
          for j = 0 to mapping_segment - 1 do
            let pid = (s * mapping_segment) + j in
            if live_node (R.get seg j) && not (Hashtbl.mem reachable pid) then begin
              incr orphans;
              if reclaim then begin
                mapping_set ~site:s_recover t pid (NBase (dummy_base ()));
                incr reclaimed
              end
            end
          done)
    t.segments;
  { Recipe.Recovery.repaired = Atomic.get t.repairs; orphans = !orphans; reclaimed = !reclaimed }
