(* P-HOT — persistent height-optimized trie (see hot.mli).

   Logical structure: a binary Patricia (crit-bit) trie over key bits,
   MSB-first, so in-order traversal is lexicographic.  Patricia invariant:
   every key in a subtree agrees on every bit position below the subtree's
   root crit bit — scans rely on it for pruning.

   Physical structure: each node packs a crit-bit subtree with up to 32
   leaf slots (hence <= 31 discriminative bits) — fanout up to 32 like
   HOT's, whatever the in-node bit depth.  A node that would exceed 32
   slots splits at its root bit into two fresh child nodes.  The bit
   positions live in persistent words, children in persistent pointer
   slots; the in-node tree shape is an immutable OCaml mirror of that
   data.

   Persistence protocol (Condition #1): nodes are immutable after publish.
   Every update unpacks the affected node, edits the abstract tree, repacks,
   persists the new node(s), fences, and commits with ONE atomic store to
   the parent child-slot (or the root pointer).  A crash before the swap
   leaves the old tree; after, the new — no intermediate states exist.

   Overflow (> 32 slots) pulls upward, HOT-style: the overflowing node is
   split at its root crit bit into two packed children grafted as one extra
   slot into the ancestor being rebuilt, escalating until a level fits (the
   root, a B-tree-like special case, may split binary). *)

module W = Pmem.Words
module R = Pmem.Refs
module P = Recipe.Persist
module Lock = Util.Lock

let name = "P-HOT"

(* Flush/fence attribution sites (index × structural location). *)
let site = Obs.Site.v ~index:name
let s_alloc_leaf = site "alloc-leaf"
let s_pack = site "pack-node"
let s_update = site "update"
let s_publish = site ~crash:true "publish"
let max_slots = 32

type leaf = { lkey : string; cells : W.t (* [0] = value *) }

type child = HNull | HLeaf of leaf | HNode of node

and shape = SChild of int | SBit of int * shape * shape (* widx, 0-side, 1-side *)

and node = {
  bits : W.t; (* crit-bit positions, one word per SBit *)
  children : child R.t;
  shape : shape;
  lock : Lock.t;
}

type t = { root : child R.t; root_lock : Lock.t }

(* Abstract (rebuild-time) tree: leaves are opaque children. *)
type atree = ALeaf of child | ABit of int * atree * atree (* bit POSITION *)

(* --- key bits ------------------------------------------------------------- *)

(* Bit [p] of [key], MSB-first; 0 beyond the key's end. *)
let key_bit key p =
  let i = p lsr 3 in
  if i >= String.length key then 0
  else (Char.code (String.unsafe_get key i) lsr (7 - (p land 7))) land 1

(* First bit position where two distinct keys differ. *)
let first_diff_bit a b =
  let la = String.length a and lb = String.length b in
  let byte s i l = if i < l then Char.code (String.unsafe_get s i) else 0 in
  let rec go i =
    let ba = byte a i la and bb = byte b i lb in
    if ba = bb then go (i + 1)
    else
      let x = ba lxor bb in
      let rec top j = if x land (1 lsl j) <> 0 then 7 - j else top (j - 1) in
      (i * 8) + top 7
  in
  go 0

(* --- leaves ------------------------------------------------------------------ *)

let[@pm.deferred] make_leaf key value =
  let cells = W.make ~name:"hot.leaf" (1 + ((String.length key + 7) / 8)) 0 in
  W.set cells 0 value;
  String.iteri
    (fun i c -> if i mod 8 = 0 then W.set cells (1 + (i / 8)) (Char.code c))
    key;
  W.clwb_all ~site:s_alloc_leaf cells;
  { lkey = key; cells }

(* --- pack / unpack ------------------------------------------------------------- *)

let unpack n =
  let rec go = function
    | SChild i -> ALeaf (R.get n.children i)
    | SBit (w, l, r) -> ABit (W.get n.bits w, go l, go r)
  in
  go n.shape

(* Number of leaf slots an abstract tree needs. *)
let rec acount = function ALeaf _ -> 1 | ABit (_, l, r) -> acount l + acount r

(* Pack an abstract tree into physical nodes of <= [max_slots] leaf slots;
   the result is fully persisted (caller fences before publishing).  An
   oversized tree splits at its root crit bit into two fresh children. *)
let rec pack at =
  match at with
  | ALeaf c -> c
  | ABit _ -> HNode (make_node at)

and make_node at =
  let at =
    if acount at <= max_slots then at
    else
      match at with
      | ALeaf _ -> at
      | ABit (b, l, r) -> ABit (b, ALeaf (pack l), ALeaf (pack r))
  in
  (* Size the node exactly (HOT nodes are compact): count first, then
     allocate. *)
  let rec count = function
    | ALeaf _ -> (0, 1)
    | ABit (_, l, r) ->
        let bl, sl = count l and br, sr = count r in
        (1 + bl + br, sl + sr)
  in
  let nbits, nslots = count at in
  let bits = W.make ~name:"hot.bits" (max 1 nbits) 0 in
  (* Atomic: child slots of a live node are the publish commit points of
     copy-on-write rebuilds, read by lock-free traversals. *)
  let children = R.make ~name:"hot.children" ~atomic:true (max 1 nslots) HNull in
  let nbit = ref 0 and nslot = ref 0 in
  let rec build = function
    | ALeaf c ->
        let i = !nslot in
        incr nslot;
        R.set children i c;
        SChild i
    | ABit (b, l, r) ->
        let w = !nbit in
        incr nbit;
        W.set bits w b;
        let sl = build l in
        let sr = build r in
        SBit (w, sl, sr)
  in
  let shape = build at in
  W.clwb_all ~site:s_pack bits;
  R.clwb_all ~site:s_pack children;
  { bits; children; shape; lock = Lock.create () }
[@@pm.deferred]

let create () =
  (* Atomic: the root slot is a publish commit point. *)
  let root = R.make ~name:"hot.root" ~atomic:true 1 HNull in
  R.clwb_all ~site:s_publish root;
  Pmem.sfence ~site:s_publish ();
  { root; root_lock = Lock.create () }

(* --- lookup (non-blocking over immutable nodes) --------------------------------- *)

let rec find c key =
  match c with
  | HNull -> None
  | HLeaf l -> if String.equal l.lkey key then Some (W.get l.cells 0) else None
  | HNode n ->
      let rec walk = function
        | SChild i -> find (R.get n.children i) key
        | SBit (w, l, r) ->
            walk (if key_bit key (W.get n.bits w) = 0 then l else r)
      in
      walk n.shape

let lookup t key = find (R.get t.root 0) key

(* In-place value update: one atomic store to the leaf's value word
   (Condition #1), lock-free. *)
let update t key value =
  let rec go c =
    match c with
    | HNull -> false
    | HLeaf l ->
        if String.equal l.lkey key then begin
          P.commit ~site:s_update l.cells 0 value;
          true
        end
        else false
    | HNode n ->
        let rec walk = function
          | SChild i -> go (R.get n.children i)
          | SBit (w, l, r) ->
              walk (if key_bit key (W.get n.bits w) = 0 then l else r)
        in
        walk n.shape
  in
  go (R.get t.root 0)

(* The bit-guided leaf for [key] (shares all discriminated bits with it). *)
let rec guided_leaf c key =
  match c with
  | HNull -> None
  | HLeaf l -> Some l
  | HNode n ->
      let rec walk = function
        | SChild i -> guided_leaf (R.get n.children i) key
        | SBit (w, l, r) ->
            walk (if key_bit key (W.get n.bits w) = 0 then l else r)
      in
      walk n.shape

(* --- rebuild targets -------------------------------------------------------------- *)

type slotref = Root | Slot of node * int

let slot_owner_lock t = function Root -> t.root_lock | Slot (p, _) -> p.lock

let read_slot t = function
  | Root -> R.get t.root 0
  | Slot (p, i) -> R.get p.children i

(* Path from the root to the deepest node whose rebuild will host the new
   crit bit [d]: a list of (slot, child) steps, every child an HNode except
   possibly the last.  The natural rebuild target is the last HNode; when
   its copy-on-write would overflow 32 slots, the insert escalates to an
   ancestor on this path, pulling the split pieces up — HOT's height
   optimization. *)
let locate_path t key d =
  let rec go acc slotref c =
    match c with
    | HNull | HLeaf _ -> List.rev ((slotref, c) :: acc)
    | HNode n -> (
        let rec walk = function
          | SBit (w, l, r) ->
              let b = W.get n.bits w in
              if b > d then `Here
              else walk (if key_bit key b = 0 then l else r)
          | SChild i -> `Down i
        in
        match walk n.shape with
        | `Here -> List.rev ((slotref, c) :: acc)
        | `Down i -> (
            match R.get n.children i with
            | HNode _ as cm -> go ((slotref, c) :: acc) (Slot (n, i)) cm
            | HLeaf _ | HNull -> List.rev ((slotref, c) :: acc)))
  in
  go [] Root (R.get t.root 0)

let same_slotref a b =
  match (a, b) with
  | Root, Root -> true
  | Slot (p, i), Slot (p', i') -> p == p' && i = i'
  | Root, Slot _ | Slot _, Root -> false

let same_path pa pb =
  List.length pa = List.length pb
  && List.for_all2
       (fun (sa, ca) (sb, cb) -> same_slotref sa sb && ca == cb)
       pa pb

(* Replace the (physical) leaf [from_] of [at] with [sub]; None if absent. *)
let areplace at from_ sub =
  let hit = ref false in
  let rec go at =
    match at with
    | ALeaf c when c == from_ ->
        hit := true;
        sub
    | ALeaf _ -> at
    | ABit (b, l, r) -> ABit (b, go l, go r)
  in
  let at' = go at in
  if !hit then Some at' else None

(* Insert leaf with crit bit [d] into the abstract tree. *)
let rec ainsert at d key lf =
  match at with
  | ABit (b, l, r) when b < d ->
      if key_bit key b = 0 then ABit (b, ainsert l d key lf, r)
      else ABit (b, l, ainsert r d key lf)
  | ABit _ | ALeaf _ ->
      if key_bit key d = 0 then ABit (d, ALeaf (HLeaf lf), at)
      else ABit (d, at, ALeaf (HLeaf lf))

(* Commit a rebuilt child into its slot (flush + fence done by commit).
   The leading fence orders the writebacks of freshly packed nodes/leaves
   before they become reachable; pass [~fence:false] when the committed
   child is HNull or an existing already-persisted subtree (delete
   clearing or collapsing a slot) — the commit's own fence suffices. *)
let publish ?(fence = true) t slotref c =
  if fence then Pmem.sfence ~site:s_publish ();
  Pmem.Crash.point ~site:s_publish ();
  match slotref with
  | Root -> P.commit_ref ~site:s_publish t.root 0 c
  | Slot (p, i) -> P.commit_ref ~site:s_publish p.children i c

(* --- insert -------------------------------------------------------------------------- *)

let rec insert t key value = insert_from t key value 0

and insert_from t key value escalate =
  match insert_attempt t key value escalate with
  | `Done r -> r
  | `Retry ->
      Domain.cpu_relax ();
      insert_from t key value 0
  | `Escalate -> insert_from t key value (escalate + 1)

and insert_attempt t key value escalate =
  match R.get t.root 0 with
  | HNull ->
      Lock.lock t.root_lock;
      let r =
        match R.get t.root 0 with
        | HNull ->
            let lf = make_leaf key value in
            publish t Root (HLeaf lf);
            `Done true
        | HLeaf _ | HNode _ -> `Retry
      in
      Lock.unlock t.root_lock;
      r
  | c0 -> (
      match guided_leaf c0 key with
      | None ->
          (* Dead-end at an empty slot: retry under the owner lock via the
             hole path.  Rare — only after deletes. *)
          insert_into_hole t key value
      | Some l when String.equal l.lkey key -> `Done false
      | Some l ->
          let d = first_diff_bit key l.lkey in
          let path = locate_path t key d in
          let idx = max 0 (List.length path - 1 - escalate) in
          let slotref, target = List.nth path idx in
          (* Nodes below the chosen target along the key path get inlined
             into its rebuild (that is the upward pull). *)
          let chain = List.filteri (fun i _ -> i > idx) path |> List.map snd in
          (* Lock order: slot owner, target, then chain nodes top-down. *)
          Lock.lock (slot_owner_lock t slotref);
          let held = ref [] in
          (match target with
          | HNode n ->
              Lock.lock n.lock;
              held := [ n.lock ]
          | HLeaf _ | HNull -> ());
          let unlock_all () =
            List.iter Lock.unlock !held;
            Lock.unlock (slot_owner_lock t slotref)
          in
          let result =
            if R.get t.root 0 == HNull then `Retry
            else
              match guided_leaf (R.get t.root 0) key with
              | None -> `Retry
              | Some l' when String.equal l'.lkey key -> `Done false
              | Some l' ->
                  let d' = first_diff_bit key l'.lkey in
                  if d' <> d || not (same_path path (locate_path t key d'))
                  then `Retry
                  else begin
                    (* Lock the window's inner nodes below the target,
                       top-down. *)
                    List.iter
                      (fun c ->
                        match c with
                        | HNode m ->
                            Lock.lock m.lock;
                            held := m.lock :: !held
                        | HLeaf _ | HNull -> ())
                      chain;
                    let window =
                      List.filteri (fun i _ -> i >= idx) path
                    in
                    let atree_of = function
                      | HNode m -> unpack m
                      | (HLeaf _ | HNull) as c -> ALeaf c
                    in
                    let lf = make_leaf key value in
                    (* Climb from the bottom: rebuild the deepest node; on
                       overflow, split it at its root bit into two packed
                       halves grafted as one extra slot in the node above —
                       HOT's upward pull keeping fanout high.  Publish at
                       the lowest level that fits. *)
                    let exception Publish of atree * slotref in
                    let exception Chain_broken in
                    let graft_of at =
                      match at with
                      | ABit (b, l, r) -> ABit (b, ALeaf (pack l), ALeaf (pack r))
                      | ALeaf _ -> at
                    in
                    let rec climb = function
                      | [] -> assert false
                      | [ (sref, bottom) ] ->
                          let at = ainsert (atree_of bottom) d key lf in
                          if acount at <= max_slots then raise (Publish (at, sref));
                          (at, bottom)
                      | (sref, pc) :: rest -> (
                          let at_below, child_phys = climb rest in
                          match
                            areplace (atree_of pc) child_phys (graft_of at_below)
                          with
                          | None -> raise Chain_broken
                          | Some at ->
                              if acount at <= max_slots then
                                raise (Publish (at, sref));
                              (at, pc))
                    in
                    match climb window with
                    | at_top, _ ->
                        if idx > 0 then `Escalate
                        else begin
                          (* Root overflow: pack splits it in two — the
                             B-tree-style root split. *)
                          let sref = fst (List.hd window) in
                          publish t sref (pack at_top);
                          `Done true
                        end
                    | exception Publish (at, sref) ->
                        let fresh = pack at in
                        publish t sref fresh;
                        `Done true
                    | exception Chain_broken -> `Retry
                  end
          in
          unlock_all ();
          result)

(* Insert when the guided path dead-ends in an HNull slot left by deletes:
   walk to the hole under locks and drop the leaf in. *)
and insert_into_hole t key value =
  let rec find_hole slotref c =
    match c with
    | HNull -> Some slotref
    | HLeaf _ -> None (* structure changed; retry *)
    | HNode n ->
        let rec walk = function
          | SChild i -> find_hole (Slot (n, i)) (R.get n.children i)
          | SBit (w, l, r) ->
              walk (if key_bit key (W.get n.bits w) = 0 then l else r)
        in
        walk n.shape
  in
  match find_hole Root (R.get t.root 0) with
  | None -> `Retry
  | Some slotref ->
      Lock.lock (slot_owner_lock t slotref);
      let r =
        match read_slot t slotref with
        | HNull ->
            let lf = make_leaf key value in
            publish t slotref (HLeaf lf);
            `Done true
        | HLeaf _ | HNode _ -> `Retry
      in
      Lock.unlock (slot_owner_lock t slotref);
      r

(* --- delete ---------------------------------------------------------------------------- *)

(* Remove [key]'s leaf from the abstract tree, collapsing its crit bit. *)
let rec aremove at key =
  match at with
  | ALeaf (HLeaf l) when String.equal l.lkey key -> None
  | ALeaf _ -> Some at
  | ABit (b, l, r) -> (
      if key_bit key b = 0 then
        match aremove l key with
        | None -> Some r
        | Some l' -> if l' == l then Some at else Some (ABit (b, l', r))
      else
        match aremove r key with
        | None -> Some l
        | Some r' -> if r' == r then Some at else Some (ABit (b, l, r')))

let rec delete t key =
  match delete_attempt t key with
  | Some r -> r
  | None ->
      Domain.cpu_relax ();
      delete t key

and delete_attempt t key =
  (* Find the physical node whose slot holds the matching leaf. *)
  let rec locate_leaf slotref c =
    match c with
    | HNull -> `Absent
    | HLeaf l -> if String.equal l.lkey key then `Found slotref else `Absent
    | HNode n ->
        let rec walk = function
          | SChild i -> locate_leaf (Slot (n, i)) (R.get n.children i)
          | SBit (w, l, r) ->
              walk (if key_bit key (W.get n.bits w) = 0 then l else r)
        in
        walk n.shape
  in
  match locate_leaf Root (R.get t.root 0) with
  | `Absent -> Some false
  | `Found Root ->
      (* Leaf directly under the root pointer. *)
      Lock.lock t.root_lock;
      let r =
        match R.get t.root 0 with
        | HLeaf l when String.equal l.lkey key ->
            publish ~fence:false t Root HNull;
            Some true
        | HNull | HLeaf _ | HNode _ -> None
      in
      Lock.unlock t.root_lock;
      r
  | `Found (Slot (p, _)) ->
      (* Rebuild the owning node [p] without the leaf and swap it into p's
         own slot. *)
      let rec owner_slot slotref c =
        match c with
        | HNode n when n == p -> Some slotref
        | HNode n ->
            let rec walk = function
              | SChild i -> owner_slot (Slot (n, i)) (R.get n.children i)
              | SBit (w, l, r) ->
                  walk (if key_bit key (W.get n.bits w) = 0 then l else r)
            in
            walk n.shape
        | HNull | HLeaf _ -> None
      in
      (match owner_slot Root (R.get t.root 0) with
      | None -> None
      | Some pslot ->
          Lock.lock (slot_owner_lock t pslot);
          Lock.lock p.lock;
          let still_there =
            match read_slot t pslot with HNode m -> m == p | HNull | HLeaf _ -> false
          in
          let r =
            if not still_there then None
            else begin
              let at0 = unpack p in
              match aremove at0 key with
              | None ->
                  publish ~fence:false t pslot HNull;
                  Some true
              | Some at' when at' == at0 -> Some false (* already gone *)
              | Some (ALeaf c) ->
                  (* Collapsed to its one remaining child: republish the
                     existing, already-persisted subtree as-is. *)
                  publish ~fence:false t pslot c;
                  Some true
              | Some (ABit _ as at') ->
                  let fresh = pack at' in
                  publish t pslot fresh;
                  Some true
            end
          in
          Lock.unlock p.lock;
          Lock.unlock (slot_owner_lock t pslot);
          r)

(* --- ordered scans ------------------------------------------------------------------------ *)

(* Leftmost (minimum-key) leaf of a subtree. *)
let rec min_leaf c =
  match c with
  | HNull -> None
  | HLeaf l -> Some l
  | HNode n ->
      let rec walk = function
        | SChild i -> min_leaf (R.get n.children i)
        | SBit (_, l, r) -> (
            match walk l with Some x -> Some x | None -> walk r)
      in
      walk n.shape

exception Scan_done

let scan_fold t start nwant f =
  let emitted = ref 0 in
  let emit l =
    if !emitted >= nwant then raise Scan_done;
    f l.lkey (W.get l.cells 0);
    incr emitted
  in
  let rec all c =
    match c with
    | HNull -> ()
    | HLeaf l -> emit l
    | HNode n ->
        let rec walk = function
          | SChild i -> all (R.get n.children i)
          | SBit (_, l, r) ->
              walk l;
              walk r
        in
        walk n.shape
  and shape_all n = function
    | SChild i -> all (R.get n.children i)
    | SBit (_, l, r) ->
        shape_all n l;
        shape_all n r
  and min_leaf_shape n = function
    | SChild i -> min_leaf (R.get n.children i)
    | SBit (_, l, r) -> (
        match min_leaf_shape n l with
        | Some x -> Some x
        | None -> min_leaf_shape n r)
  and filter c =
    match c with
    | HNull -> ()
    | HLeaf l -> if String.compare l.lkey start >= 0 then emit l
    | HNode n -> shape_filter n n.shape
  and shape_filter n shape =
    (* Patricia invariant: all keys of a subtree rooted at crit bit [b]
       share every bit position below [b].  Compare that shared prefix with
       [start] through the subtree's minimum leaf: if they diverge below
       [b], the whole subtree sorts on one side of [start]. *)
    match min_leaf_shape n shape with
    | None -> ()
    | Some m ->
        if String.compare m.lkey start >= 0 then shape_all n shape
        else (
          match shape with
          | SChild i -> filter (R.get n.children i)
          | SBit (w, l, r) ->
              let b = W.get n.bits w in
              let q = first_diff_bit m.lkey start in
              if q < b then () (* every key diverges below b like m: < start *)
              else if key_bit start b = 0 then begin
                shape_filter n l;
                shape_all n r
              end
              else shape_filter n r)
  in
  (try filter (R.get t.root 0) with Scan_done -> ());
  !emitted

let scan t start nwant f = if nwant <= 0 then 0 else scan_fold t start nwant f

let range t lo hi =
  let acc = ref [] in
  let exception Past_hi in
  (try
     ignore
       (scan_fold t lo max_int (fun k v ->
            if String.compare k hi >= 0 then raise Past_hi;
            acc := (k, v) :: !acc))
   with Past_hi -> ());
  List.rev !acc

(* --- misc ------------------------------------------------------------------------------------ *)

let height t =
  let rec go c =
    match c with
    | HNull | HLeaf _ -> 0
    | HNode n ->
        let rec walk = function
          | SChild i -> go (R.get n.children i)
          | SBit (_, l, r) -> max (walk l) (walk r)
        in
        1 + walk n.shape
  in
  go (R.get t.root 0)

let recover _t = Lock.new_epoch ()

(* Pure COW leaves nothing to sweep: every update builds its replacement
   subtree privately, persists it, and publishes with a single committed
   pointer store.  A crash before the publish abandons only volatile
   heap objects (never reachable from persistent state), and a crash after
   it left the tree fully consistent.  The sweep verifies the invariant by
   walking the tree (any torn node would raise) and reports zeros. *)
let leak_sweep ?reclaim t =
  ignore reclaim;
  let rec go c =
    match c with
    | HNull | HLeaf _ -> ()
    | HNode n ->
        let rec walk = function
          | SChild i -> go (R.get n.children i)
          | SBit (_, l, r) -> walk l; walk r
        in
        walk n.shape
  in
  go (R.get t.root 0);
  Recipe.Recovery.zero
