(** P-HOT: persistent Height Optimized Trie (paper §6.1; Binna et al.,
    SIGMOD '18).  RECIPE Condition #1.

    HOT raises trie fanout by letting each physical node discriminate on a
    *set* of key bits rather than a fixed-width chunk: a node packs a
    subtree of the underlying binary Patricia trie with up to 32 entries,
    keeping the tree height near log32 and lookups cache-efficient.  All
    updates are copy-on-write: the affected node is rebuilt — overflow
    splits it and pulls the halves up into the parent's rebuild — and
    committed by atomically swapping the single parent pointer, which is
    why the RECIPE conversion needs nothing beyond flushing the new node
    and fencing before the swap.

    Readers are non-blocking (they traverse immutable nodes); writers take
    per-node locks for write exclusion, exactly the synchronization the
    paper lists for HOT in Table 2.

    Keys are byte strings (equal length or prefix-free); values are 8-byte
    integers. *)

type t

val name : string

val create : unit -> t

(** [insert t key value] — [false] if [key] is already present. *)
val insert : t -> string -> int -> bool

val lookup : t -> string -> int option

(** [update t key value] replaces an existing key's value with one atomic
    store; [false] if absent. *)
val update : t -> string -> int -> bool
val delete : t -> string -> bool

(** [scan t key n f] — up to [n] bindings with keys >= [key], ascending;
    returns the count visited. *)
val scan : t -> string -> int -> (string -> int -> unit) -> int

val range : t -> string -> string -> (string * int) list

(** Post-crash recovery: re-initialize volatile locks (Condition #1 — no
    recovery logic needed: every update publishes a privately built,
    fully persisted COW subtree with one committed pointer store). *)
val recover : t -> unit

(** [leak_sweep ?reclaim t] — always zeros for P-HOT: a crash before a COW
    publish abandons only volatile heap objects, never persistent slots.
    The call still walks the whole tree as a structural self-check. *)
val leak_sweep : ?reclaim:bool -> t -> Recipe.Recovery.stats

(** Maximum physical-node chain length from root to a leaf (tests: height
    optimization keeps this near log32). *)
val height : t -> int
