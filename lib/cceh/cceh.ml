(* CCEH — cacheline-conscious extendible hashing (see cceh.mli).

   Layout: hash bits split MSB-first for the directory index (global depth
   bits) and LSB-first for the bucket within a segment.  A segment is 64
   cache lines of 4 key/value pairs; an operation probes a 4-line window
   starting at its bucket line (wrapping within the segment).  Because the
   in-segment bucket bits are disjoint from the directory bits, a split maps
   every entry to the *same* window of the child segment, so a split can
   never overflow its children.

   Split protocol (segment lock held): build children s1/s0 copy-on-write,
   persist them, then rewrite the directory pointers — the 1-half slots
   ascending, then the 0-half slots ascending.  The recovery pass normalizes
   each directory region to the segment its first slot points to, which
   rolls an interrupted split backward (nothing written yet survives in the
   children alone) or forward (the 0-half head was written, so both children
   are live) without ever losing a key.

   Directory doubling commits by swapping a single directory record, which
   carries its own depth — atomic by construction.  [bug_doubling] instead
   persists the pointer and the global-depth word separately with a crash
   window between them (§3); after such a crash every operation raises
   {!Stalled}, the observable stand-in for the paper's infinite loops. *)

module W = Pmem.Words
module R = Pmem.Refs
module P = Recipe.Persist
module Lock = Util.Lock

let name = "CCEH"

(* Flush/fence attribution sites (index × structural location). *)
let site = Obs.Site.v ~index:name
let s_alloc = site "alloc-segment"
let s_insert = site ~crash:true "insert-commit"
let s_split = site ~crash:true "segment-split"
let s_double = site ~crash:true "dir-double"
let s_delete = site "delete-commit"
let s_recover = site "recover-normalize"

exception Stalled

let lines_per_segment = 64
let pairs_per_line = 4
let probe_lines = 4
let hash_bits = 62

type segment = {
  slots : W.t; (* lines * 8 words: key at l*8+2j, value at l*8+2j+1 *)
  local_depth : int; (* immutable *)
  meta : W.t;
  lock : Lock.t;
}

type dir = {
  segs : segment R.t; (* 2^depth pointers *)
  depth : int; (* immutable; the atomic-swap fix for the §3 bug *)
  meta : W.t;
}

type t = {
  dir : dir R.t;
  depth_word : W.t; (* separately-persisted global depth (buggy mode only) *)
  dir_lock : Lock.t;
  bug_doubling : bool;
  splits : int Atomic.t; (* statistic: segment splits performed *)
  repairs : int Atomic.t; (* pointers the last [recover] normalized *)
}

let hash k =
  let z = (k lxor (k lsr 33)) * 0x2545F491 land max_int in
  let z = (z lxor (z lsr 29)) * 0x1CE4E5B9 land max_int in
  z lxor (z lsr 31)

let segment_index depth h = if depth = 0 then 0 else h lsr (hash_bits - depth)

(* The bit distinguishing the two children when splitting from depth l. *)
let split_bit l h = (h lsr (hash_bits - l - 1)) land 1

let bucket_line h = h land (lines_per_segment - 1)

let make_segment ~local_depth =
  let meta = W.make ~name:"cceh.segmeta" 8 0 in
  W.set meta 0 local_depth;
  {
    slots = W.make ~name:"cceh.segment" (lines_per_segment * 8) 0;
    local_depth;
    meta;
    lock = Lock.create ();
  }

let[@pm.deferred] persist_segment ?(site = s_alloc) s =
  W.clwb_all ~site s.slots;
  W.clwb_all ~site s.meta

let make_dir ~depth ~init =
  let meta = W.make ~name:"cceh.dirmeta" 8 0 in
  W.set meta 0 depth;
  (* Atomic: directory slots are split-install commit points read by
     lock-free probes. *)
  { segs = R.make ~name:"cceh.dir" ~atomic:true (1 lsl depth) init; depth; meta }

let[@pm.deferred] persist_dir ?(site = s_alloc) d =
  R.clwb_all ~site d.segs;
  W.clwb_all ~site d.meta

let default_capacity = 48 * 1024 / 64

let create ?(bug_doubling = false) ?(capacity = default_capacity) () =
  let n_segments =
    Util.Bits.next_power_of_two (max 2 (capacity / lines_per_segment))
  in
  let depth =
    let rec log2 n acc = if n <= 1 then acc else log2 (n / 2) (acc + 1) in
    log2 n_segments 0
  in
  let first = make_segment ~local_depth:depth in
  persist_segment first;
  let d = make_dir ~depth ~init:first in
  for i = 1 to (1 lsl depth) - 1 do
    R.set d.segs i (make_segment ~local_depth:depth)
  done;
  for i = 0 to (1 lsl depth) - 1 do
    persist_segment (R.get d.segs i)
  done;
  persist_dir d;
  Pmem.sfence ~site:s_alloc ();
  (* Atomic: the directory pointer is the doubling commit point. *)
  let dir = R.make ~name:"cceh.dirptr" ~atomic:true 1 d in
  R.clwb_all ~site:s_alloc dir;
  let depth_word = W.make ~name:"cceh.depth" 1 depth in
  W.clwb_all ~site:s_alloc depth_word;
  Pmem.sfence ~site:s_alloc ();
  {
    dir;
    depth_word;
    dir_lock = Lock.create ();
    bug_doubling;
    splits = Atomic.make 0;
    repairs = Atomic.make 0;
  }

let get_dir t =
  let d = R.get t.dir 0 in
  if t.bug_doubling then begin
    (* The buggy layout trusts the separately-persisted depth word; a
       mismatch with the directory width is the §3 crash state. *)
    let gw = W.get t.depth_word 0 in
    if 1 lsl gw <> R.length d.segs then raise Stalled
  end;
  d

let global_depth t = (get_dir t).depth

let segment_count t =
  let d = get_dir t in
  let seen = ref [] in
  for i = 0 to R.length d.segs - 1 do
    let s = R.get d.segs i in
    if not (List.memq s !seen) then seen := s :: !seen
  done;
  List.length !seen

let split_count t = Atomic.get t.splits

(* --- probing -------------------------------------------------------------- *)

(* Visit the slot word indexes of [h]'s probe window in order. *)
let probe_slots h f =
  let start = bucket_line h in
  let rec line d =
    if d >= probe_lines then ()
    else begin
      let l = (start + d) land (lines_per_segment - 1) in
      let rec pair j =
        if j >= pairs_per_line then line (d + 1)
        else if f ((l * 8) + (2 * j)) then () (* stop *)
        else pair (j + 1)
      in
      pair 0
    end
  in
  line 0

let lookup t k =
  if k <= 0 then invalid_arg "Cceh.lookup: key must be positive";
  let h = hash k in
  let d = get_dir t in
  let seg = R.get d.segs (segment_index d.depth h) in
  let found = ref None in
  probe_slots h (fun i ->
      if W.get seg.slots i = k then begin
        let v = W.get seg.slots (i + 1) in
        (* atomic snapshot: key re-check validates the pair *)
        if W.get seg.slots i = k then begin
          found := Some v;
          true
        end
        else false
      end
      else false);
  !found

(* --- write path ------------------------------------------------------------ *)

(* Lock the segment currently covering [h], rechecking the directory after
   acquisition (a split or doubling may have moved it). *)
let rec lock_segment t h =
  let d = get_dir t in
  let idx = segment_index d.depth h in
  let seg = R.get d.segs idx in
  Lock.lock seg.lock;
  let d' = get_dir t in
  if d' == d && R.get d.segs idx == seg then (d, idx, seg)
  else begin
    Lock.unlock seg.lock;
    lock_segment t h
  end

(* Private placement during a split copy: first free slot of the window
   (cannot fail — the child window receives a subset of the parent's). *)
let copy_place seg k v =
  let h = hash k in
  let placed = ref false in
  probe_slots h (fun i ->
      if W.get seg.slots i = 0 then begin
        W.set seg.slots i k;
        W.set seg.slots (i + 1) v;
        placed := true;
        true
      end
      else false);
  assert !placed

(* Split [seg] (lock held), rewriting the directory slots of its region. *)
let split t d idx seg =
  let l = seg.local_depth in
  let s0 = make_segment ~local_depth:(l + 1) in
  let s1 = make_segment ~local_depth:(l + 1) in
  for i = 0 to (lines_per_segment * pairs_per_line) - 1 do
    let k = W.get seg.slots (2 * i) in
    if k <> 0 then begin
      let v = W.get seg.slots ((2 * i) + 1) in
      let child = if split_bit l (hash k) = 1 then s1 else s0 in
      copy_place child k v
    end
  done;
  persist_segment ~site:s_split s0;
  persist_segment ~site:s_split s1;
  Pmem.sfence ~site:s_split ();
  Pmem.Crash.point ~site:s_split ();
  (* Directory region covered by [seg]. *)
  let rs = 1 lsl (d.depth - l) in
  let start = idx - (idx mod rs) in
  let half = rs / 2 in
  (* 1-half ascending first, then 0-half ascending: the order recovery's
     region normalization relies on. *)
  for j = start + half to start + rs - 1 do
    P.commit_ref ~site:s_split d.segs j s1
  done;
  Pmem.Crash.point ~site:s_split ();
  for j = start to start + half - 1 do
    P.commit_ref ~site:s_split d.segs j s0
  done;
  Atomic.incr t.splits [@pm.volatile]

(* Double the directory (caller saw [seen_depth]); atomic-record swap in the
   fixed version, split stores with a crash window in buggy mode. *)
let double t seen_depth =
  Lock.lock t.dir_lock;
  let d = R.get t.dir 0 in
  if d.depth = seen_depth then begin
    let nd = make_dir ~depth:(d.depth + 1) ~init:(R.get d.segs 0) in
    for i = 0 to (1 lsl d.depth) - 1 do
      let s = R.get d.segs i in
      R.set nd.segs (2 * i) s;
      R.set nd.segs ((2 * i) + 1) s
    done;
    persist_dir ~site:s_double nd;
    Pmem.sfence ~site:s_double ();
    Pmem.Crash.point ~site:s_double ();
    if t.bug_doubling then begin
      (* §3: the new global depth is a separate plain store with no flush
         ordered before the directory pointer that depends on it.  The new
         depth sits in cache while the doubled directory commits; a crash
         from here until something happens to write the line back recovers
         old depth + new directory.  The crash campaigns catch this as a
         [Stalled] recovery; PSan reports it deterministically at the
         directory commit below (the depth line is still dirty). *)
      P.store ~site:s_double t.depth_word 0 nd.depth;
      Pmem.Crash.point ~site:s_double ();
      P.commit_ref ~site:s_double t.dir 0 nd
    end
    else begin
      (* Fixed: the record swap carries the depth; the shadow word is kept
         in sync but nothing depends on it. *)
      P.commit_ref ~site:s_double t.dir 0 nd;
      W.set t.depth_word 0 nd.depth;
      W.clwb ~site:s_double t.depth_word 0;
      Pmem.sfence ~site:s_double ()
    end
  end;
  Lock.unlock t.dir_lock

let rec insert t k v =
  if k <= 0 then invalid_arg "Cceh.insert: key must be positive";
  let h = hash k in
  let d, idx, seg = lock_segment t h in
  (* Existing key? *)
  let exists = ref false in
  probe_slots h (fun i ->
      if W.get seg.slots i = k then begin
        exists := true;
        true
      end
      else false);
  if !exists then begin
    Lock.unlock seg.lock;
    false
  end
  else begin
    let slot = ref (-1) in
    probe_slots h (fun i ->
        if W.get seg.slots i = 0 then begin
          slot := i;
          true
        end
        else false);
    if !slot >= 0 then begin
      let i = !slot in
      (* Value first, then the atomic key store commits; both words share a
         cache line, so one flush suffices. *)
      P.store ~site:s_insert seg.slots (i + 1) v;
      Pmem.Crash.point ~site:s_insert ();
      P.commit ~site:s_insert seg.slots i k [@pm.deferred];
      Lock.unlock seg.lock;
      true
    end
    else if seg.local_depth = d.depth then begin
      Lock.unlock seg.lock;
      double t d.depth;
      insert t k v
    end
    else begin
      split t d idx seg;
      Lock.unlock seg.lock;
      insert t k v
    end
  end

let delete t k =
  if k <= 0 then invalid_arg "Cceh.delete: key must be positive";
  let h = hash k in
  let _, _, seg = lock_segment t h in
  let deleted = ref false in
  probe_slots h (fun i ->
      if W.get seg.slots i = k then begin
        P.commit ~site:s_delete seg.slots i 0;
        deleted := true;
        true
      end
      else false);
  Lock.unlock seg.lock;
  !deleted

(* --- recovery ---------------------------------------------------------------- *)

(* Directory slots deviating from their region's first slot — what an
   interrupted split's partially updated pointer range looks like. *)
let iter_denormalized t f =
  let d = get_dir t in
  let n = R.length d.segs in
  let i = ref 0 in
  while !i < n do
    let s = R.get d.segs !i in
    let rs = 1 lsl (d.depth - s.local_depth) in
    for j = !i to !i + rs - 1 do
      if R.get d.segs j != s then f d j s
    done;
    i := !i + rs
  done

let recover t =
  Lock.new_epoch ();
  (* Normalize every directory region to the segment its first slot points
     to, completing or rolling back a split interrupted by the crash. *)
  let repaired = ref 0 in
  iter_denormalized t (fun d j s ->
      P.commit_ref ~site:s_recover d.segs j s;
      incr repaired);
  Atomic.set t.repairs !repaired [@pm.volatile]

(* Sweep = the same denormalized-pointer scan, reported instead of (or, with
   [~reclaim:true], in addition to) being repaired.  The segment halves a
   crashed split built but never linked are reachable only through these
   pointers, so the count is the leak count. *)
let leak_sweep ?(reclaim = false) t =
  let orphans = ref 0 and reclaimed = ref 0 in
  iter_denormalized t (fun d j s ->
      incr orphans;
      if reclaim then begin
        P.commit_ref ~site:s_recover d.segs j s;
        incr reclaimed
      end);
  { Recipe.Recovery.repaired = Atomic.get t.repairs; orphans = !orphans; reclaimed = !reclaimed }
