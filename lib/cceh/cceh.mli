(** CCEH: Cacheline-Conscious Extendible Hashing, the hand-crafted persistent
    hash-table baseline (Nam et al., FAST '19; paper §3 and §7.2).

    A directory of 8-byte pointers indexes fixed-size segments; each segment
    is an array of cache-line buckets probed linearly over a small window.
    Overflow splits one segment copy-on-write and rewrites the directory
    pointers covering it; when a segment's local depth reaches the global
    depth the directory doubles.

    The default implementation is crash-correct: directory doubling commits
    by swapping a single directory record (pointer + depth as one atomic
    unit), and segment splits update pointers in an order the recovery pass
    can always normalize.  The §3 bug is reproducible with
    [bug_doubling:true]: the directory pointer, width and global depth
    update as separate persistent stores with a crash window between them,
    after which operations stall — surfaced here as the {!Stalled}
    exception standing in for the paper's infinite loops.

    Keys are positive integers (0 = empty sentinel); values are 8-byte
    integers. *)

type t

val name : string

(** Raised (in [bug_doubling] mode) when the directory metadata is
    inconsistent after a crash — the observable form of CCEH's
    infinite-loop bugs. *)
exception Stalled

(** [create ?capacity ()] — [capacity] is the initial table size in 64-byte
    cache-line buckets (default = the paper's 48 KB). *)
val create : ?bug_doubling:bool -> ?capacity:int -> unit -> t

(** [insert t key value] — [false] if [key] is already present. *)
val insert : t -> int -> int -> bool

val lookup : t -> int -> int option
val delete : t -> int -> bool

(** Global depth of the directory (tests). *)
val global_depth : t -> int

(** Number of segments currently reachable (tests). *)
val segment_count : t -> int

(** Number of segment splits performed so far — the statistic behind the
    paper's "117K segment splits on inserting 10M keys" observation. *)
val split_count : t -> int

(** Post-crash recovery: re-initializes locks and normalizes directory
    pointers interrupted mid-split (the recovery CCEH's design requires). *)
val recover : t -> unit

(** [leak_sweep ?reclaim t] counts directory slots deviating from their
    region's first pointer — the reachable trace of a split the crash
    interrupted mid-update.  [~reclaim:true] normalizes them (what [recover]
    does).  [repaired] echoes the last [recover]'s normalization count. *)
val leak_sweep : ?reclaim:bool -> t -> Recipe.Recovery.stats
