(* Batched-durability benchmark: drive the closed-loop load generator
   against a server over a grid of (shard count × persist mode)
   configurations, reporting throughput, ack-latency percentiles, realized
   batch size, and flushes/fences per acknowledged operation.

   The three-mode comparison is the experiment's point: group mode should
   show clwb/op and sfence/op well below the per-op ablation (commit
   coalescing), and epoch mode must keep that fence amortization *without*
   group mode's ack p99 inflation — the adaptive controller closes epochs
   as soon as the queue runs dry, so batching is never a loss (checked by
   bench/check_json on committed reports).

   Each cell runs a short deterministic warmup (same traffic shape,
   distinct seed) that is excluded from the histograms and the
   flush/fence accounting, so cold-start epochs don't pollute p99 —
   measured runs are >= tens of thousands of acked ops at the committed
   campaign sizes, enough to make a p99 a population, not 2-3 samples.

   Shared by [bin/kv_bench.exe] (human table) and the bench JSON export's
   [serve] section, so both always report the same measurement. *)

module J = Obs.Json
module H = Util.Histogram

(* One per-shard per-phase latency line of the breakdown table. *)
type phase_row = {
  p_sid : int;
  p_phase : string;  (** "queue" | "apply" | "epoch_wait" | "fence" | "ack" *)
  p_count : int;
  p_mean_ns : float;
  p_p50_ns : int;
  p_p99_ns : int;
}

type row = {
  r_index : string;
  r_shards : int;
  r_batch : int;
  r_mode : Server.persist_mode;
  r_workers : int;
  r_ops : int;  (** operations acknowledged *)
  r_elapsed_ns : int;
  r_kops : float;  (** acked operations per second, thousands *)
  r_ack_p50_ns : int;
  r_ack_p99_ns : int;
  r_mean_batch : float;  (** realized operations per executed batch *)
  r_flushes_per_op : float;
  r_fences_per_op : float;
  r_overloaded : int;
  r_seed : int;
  r_breakdown : phase_row list;
      (** per-shard queue/apply/epoch_wait/fence/ack decomposition *)
}

let phase_names = List.map fst Obs.Span.phases

let phase_hist phase sid = Obs.Hist.v (Printf.sprintf "serve.phase.%s.%d" phase sid)

let collect_breakdown shards =
  List.concat_map
    (fun sid ->
      List.map
        (fun phase ->
          let m = Obs.Hist.merged (phase_hist phase sid) in
          {
            p_sid = sid;
            p_phase = phase;
            p_count = H.count m;
            p_mean_ns = H.mean m;
            p_p50_ns = H.percentile m 0.50;
            p_p99_ns = H.percentile m 0.99;
          })
        phase_names)
    (List.init shards (fun sid -> sid))

(* The serve metrics are process-global named histograms; zero the ones this
   run will observe so each grid cell reports only its own traffic. *)
let reset_serve_metrics shards =
  Obs.Hist.reset (Obs.Hist.v "serve.ack_ns");
  for sid = 0 to shards - 1 do
    Obs.Hist.reset (Obs.Hist.v (Printf.sprintf "serve.batch_ops.%d" sid));
    Obs.Hist.reset (Obs.Hist.v (Printf.sprintf "serve.epoch_ops.%d" sid));
    List.iter (fun phase -> Obs.Hist.reset (phase_hist phase sid)) phase_names
  done

let run_one ~(make : unit -> Server.partition) ~shards ~batch
    ~(mode : Server.persist_mode) ?(workers = 2) ?(requests = 800)
    ?(ops_per_request = 16) ?(warmup_requests = 50) ?(write_pct = 100)
    ?(key_space = 64) ?(seed = 42) () =
  let parts = Array.init shards (fun _ -> make ()) in
  let cfg =
    {
      Server.shards;
      batch;
      queue_cap = max (4 * batch) (workers * ops_per_request);
      mode;
    }
  in
  (* Spans on for the duration of the run: the breakdown table is the whole
     point of the measurement, and the stamping cost lands identically on
     every cell of the mode comparison. *)
  let spans_were = Obs.Span.enabled () in
  Obs.Span.set_enabled true;
  let srv = Server.start cfg parts in
  let lcfg ~seed ~requests =
    {
      Loadgen.default_cfg with
      workers;
      requests;
      ops_per_request;
      write_pct;
      read_space = key_space;
      mode = Loadgen.Overwrite key_space;
      seed;
    }
  in
  (* Deterministic warmup (distinct seed, same traffic shape): exercises the
     whole pipeline — allocators, first-touch index paths, cold epochs —
     then every histogram and the flush/fence baseline is reset, so the
     measured run reports steady-state behaviour only. *)
  if warmup_requests > 0 then
    ignore (Loadgen.run srv (lcfg ~seed:(seed + 7919) ~requests:warmup_requests));
  reset_serve_metrics shards;
  let s0 = Pmem.Stats.snapshot () in
  let out = Loadgen.run srv (lcfg ~seed ~requests) in
  Server.stop srv;
  Obs.Span.set_enabled spans_were;
  let d = Pmem.Stats.diff (Pmem.Stats.snapshot ()) s0 in
  let ack = Obs.Hist.merged (Server.ack_hist srv) in
  let batches = H.create () in
  for sid = 0 to shards - 1 do
    H.merge batches
      (Obs.Hist.merged (Obs.Hist.v (Printf.sprintf "serve.batch_ops.%d" sid)))
  done;
  let ops = out.Loadgen.ops_acked in
  let fops = float_of_int (max 1 ops) in
  {
    r_index = parts.(0).Server.p_name;
    r_shards = shards;
    r_batch = batch;
    r_mode = mode;
    r_workers = workers;
    r_ops = ops;
    r_elapsed_ns = out.Loadgen.elapsed_ns;
    r_kops =
      fops /. (float_of_int (max 1 out.Loadgen.elapsed_ns) /. 1e9) /. 1e3;
    r_ack_p50_ns = H.percentile ack 0.50;
    r_ack_p99_ns = H.percentile ack 0.99;
    r_mean_batch = H.mean batches;
    r_flushes_per_op = float_of_int d.Pmem.Stats.s_clwb /. fops;
    r_fences_per_op = float_of_int d.Pmem.Stats.s_sfence /. fops;
    r_overloaded = out.Loadgen.overloaded;
    r_seed = out.Loadgen.seed;
    r_breakdown = collect_breakdown shards;
  }

(* The standard grid: every shard count × persist mode, identical traffic
   (same seed) in each cell. *)
let default_modes =
  [ Server.Per_op; Server.Group; Server.Epoch Epoch_ctl.default_cfg ]

let run_grid ~make ~shard_counts ~batch ?(modes = default_modes) ?workers
    ?requests ?ops_per_request ?warmup_requests ?write_pct ?key_space ?seed
    () =
  List.concat_map
    (fun shards ->
      List.map
        (fun mode ->
          run_one ~make ~shards ~batch ~mode ?workers ?requests
            ?ops_per_request ?warmup_requests ?write_pct ?key_space ?seed ())
        modes)
    shard_counts

let row_json r =
  J.Obj
    [
      ("index", J.Str r.r_index);
      ("shards", J.int r.r_shards);
      ("batch", J.int r.r_batch);
      ("persist_mode", J.Str (Server.mode_name r.r_mode));
      ("workers", J.int r.r_workers);
      ("ops_acked", J.int r.r_ops);
      ("elapsed_ns", J.int r.r_elapsed_ns);
      ("kops", J.Num r.r_kops);
      ("ack_p50_ns", J.int r.r_ack_p50_ns);
      ("ack_p99_ns", J.int r.r_ack_p99_ns);
      ("mean_batch_ops", J.Num r.r_mean_batch);
      ("clwb_per_op", J.Num r.r_flushes_per_op);
      ("sfence_per_op", J.Num r.r_fences_per_op);
      ("overloaded", J.int r.r_overloaded);
      ("seed", J.int r.r_seed);
      ( "latency_breakdown",
        J.List
          (List.map
             (fun p ->
               J.Obj
                 [
                   ("shard", J.int p.p_sid);
                   ("phase", J.Str p.p_phase);
                   ("count", J.int p.p_count);
                   ("mean_ns", J.Num p.p_mean_ns);
                   ("p50_ns", J.int p.p_p50_ns);
                   ("p99_ns", J.int p.p_p99_ns);
                 ])
             r.r_breakdown) );
    ]

let rows_json rows = J.List (List.map row_json rows)

let print_header () =
  Printf.printf "%-10s %6s %6s %7s %10s %9s %11s %11s %10s %10s %10s\n"
    "index" "shards" "batch" "mode" "ops" "kops/s" "p50_ack_us" "p99_ack_us"
    "mean_batch" "clwb/op" "sfence/op"

let print_row r =
  Printf.printf
    "%-10s %6d %6d %7s %10d %9.1f %11.1f %11.1f %10.2f %10.2f %10.2f\n"
    r.r_index r.r_shards r.r_batch
    (Server.mode_name r.r_mode)
    r.r_ops r.r_kops
    (float_of_int r.r_ack_p50_ns /. 1e3)
    (float_of_int r.r_ack_p99_ns /. 1e3)
    r.r_mean_batch r.r_flushes_per_op r.r_fences_per_op

(* Phase decomposition of one row: a sub-table of per-shard p50/p99 (µs)
   for the queue/apply/epoch_wait/fence/ack phases — the answer to "where
   does a mode's ack p99 go?". *)
let print_breakdown r =
  Printf.printf "  %-10s mode=%-6s %-6s" r.r_index
    (Server.mode_name r.r_mode)
    "shard";
  List.iter (fun phase -> Printf.printf " %16s" (phase ^ " p50/p99")) phase_names;
  print_newline ();
  List.iter
    (fun sid ->
      Printf.printf "  %-10s %10s %6d" "" "" sid;
      List.iter
        (fun phase ->
          match
            List.find_opt
              (fun p -> p.p_sid = sid && p.p_phase = phase)
              r.r_breakdown
          with
          | Some p ->
              Printf.printf " %7.1f/%8.1f"
                (float_of_int p.p_p50_ns /. 1e3)
                (float_of_int p.p_p99_ns /. 1e3)
          | None -> Printf.printf " %16s" "-")
        phase_names;
      print_newline ())
    (List.init r.r_shards (fun sid -> sid))
