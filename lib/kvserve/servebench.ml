(* Group-persist batching benchmark: drive the closed-loop load generator
   against a server over a grid of (shard count × batching on/off)
   configurations, reporting throughput, ack-latency percentiles, realized
   batch size, and flushes/fences per acknowledged operation.

   The flushes/op column is the experiment's point: with group persist on,
   a batch's commits coalesce — every distinct cache line flushed once, one
   fence for the whole batch — so write-heavy overwrite traffic should show
   clwb/op and sfence/op well below the per-op-persist ablation (group off,
   same traffic).  Throughput and p50/p99 ack latency quantify what the
   coalescing costs or buys end-to-end.

   Shared by [bin/kv_bench.exe] (human table) and the bench JSON export's
   [serve] section, so both always report the same measurement. *)

module J = Obs.Json
module H = Util.Histogram

type row = {
  r_index : string;
  r_shards : int;
  r_batch : int;
  r_group : bool;  (** group persist on ([false] = per-op flush ablation) *)
  r_workers : int;
  r_ops : int;  (** operations acknowledged *)
  r_elapsed_ns : int;
  r_kops : float;  (** acked operations per second, thousands *)
  r_ack_p50_ns : int;
  r_ack_p99_ns : int;
  r_mean_batch : float;  (** realized operations per executed batch *)
  r_flushes_per_op : float;
  r_fences_per_op : float;
  r_overloaded : int;
  r_seed : int;
}

(* The serve metrics are process-global named histograms; zero the ones this
   run will observe so each grid cell reports only its own traffic. *)
let reset_serve_metrics shards =
  Obs.Hist.reset (Obs.Hist.v "serve.ack_ns");
  for sid = 0 to shards - 1 do
    Obs.Hist.reset (Obs.Hist.v (Printf.sprintf "serve.batch_ops.%d" sid))
  done

let run_one ~(make : unit -> Server.partition) ~shards ~batch ~group
    ?(workers = 2) ?(requests = 100) ?(ops_per_request = 16)
    ?(write_pct = 100) ?(key_space = 64) ?(seed = 42) () =
  let parts = Array.init shards (fun _ -> make ()) in
  let cfg =
    {
      Server.shards;
      batch;
      queue_cap = max (4 * batch) (workers * ops_per_request);
      group_persist = group;
    }
  in
  reset_serve_metrics shards;
  let s0 = Pmem.Stats.snapshot () in
  let srv = Server.start cfg parts in
  let lcfg =
    {
      Loadgen.default_cfg with
      workers;
      requests;
      ops_per_request;
      write_pct;
      read_space = key_space;
      mode = Loadgen.Overwrite key_space;
      seed;
    }
  in
  let out = Loadgen.run srv lcfg in
  Server.stop srv;
  let d = Pmem.Stats.diff (Pmem.Stats.snapshot ()) s0 in
  let ack = Obs.Hist.merged (Server.ack_hist srv) in
  let batches = H.create () in
  for sid = 0 to shards - 1 do
    H.merge batches
      (Obs.Hist.merged (Obs.Hist.v (Printf.sprintf "serve.batch_ops.%d" sid)))
  done;
  let ops = out.Loadgen.ops_acked in
  let fops = float_of_int (max 1 ops) in
  {
    r_index = parts.(0).Server.p_name;
    r_shards = shards;
    r_batch = batch;
    r_group = group;
    r_workers = workers;
    r_ops = ops;
    r_elapsed_ns = out.Loadgen.elapsed_ns;
    r_kops =
      fops /. (float_of_int (max 1 out.Loadgen.elapsed_ns) /. 1e9) /. 1e3;
    r_ack_p50_ns = H.percentile ack 0.50;
    r_ack_p99_ns = H.percentile ack 0.99;
    r_mean_batch = H.mean batches;
    r_flushes_per_op = float_of_int d.Pmem.Stats.s_clwb /. fops;
    r_fences_per_op = float_of_int d.Pmem.Stats.s_sfence /. fops;
    r_overloaded = out.Loadgen.overloaded;
    r_seed = out.Loadgen.seed;
  }

(* The standard grid: every shard count × {group on, group off}, identical
   traffic (same seed) in each cell. *)
let run_grid ~make ~shard_counts ~batch ?workers ?requests ?ops_per_request
    ?write_pct ?key_space ?seed () =
  List.concat_map
    (fun shards ->
      List.map
        (fun group ->
          run_one ~make ~shards ~batch ~group ?workers ?requests
            ?ops_per_request ?write_pct ?key_space ?seed ())
        [ true; false ])
    shard_counts

let row_json r =
  J.Obj
    [
      ("index", J.Str r.r_index);
      ("shards", J.int r.r_shards);
      ("batch", J.int r.r_batch);
      ("group_persist", J.Bool r.r_group);
      ("workers", J.int r.r_workers);
      ("ops_acked", J.int r.r_ops);
      ("elapsed_ns", J.int r.r_elapsed_ns);
      ("kops", J.Num r.r_kops);
      ("ack_p50_ns", J.int r.r_ack_p50_ns);
      ("ack_p99_ns", J.int r.r_ack_p99_ns);
      ("mean_batch_ops", J.Num r.r_mean_batch);
      ("clwb_per_op", J.Num r.r_flushes_per_op);
      ("sfence_per_op", J.Num r.r_fences_per_op);
      ("overloaded", J.int r.r_overloaded);
      ("seed", J.int r.r_seed);
    ]

let rows_json rows = J.List (List.map row_json rows)

let print_header () =
  Printf.printf "%-10s %6s %6s %6s %10s %9s %11s %11s %10s %10s %10s\n"
    "index" "shards" "batch" "group" "ops" "kops/s" "p50_ack_us" "p99_ack_us"
    "mean_batch" "clwb/op" "sfence/op"

let print_row r =
  Printf.printf "%-10s %6d %6d %6s %10d %9.1f %11.1f %11.1f %10.2f %10.2f %10.2f\n"
    r.r_index r.r_shards r.r_batch
    (if r.r_group then "on" else "off")
    r.r_ops r.r_kops
    (float_of_int r.r_ack_p50_ns /. 1e3)
    (float_of_int r.r_ack_p99_ns /. 1e3)
    r.r_mean_batch r.r_flushes_per_op r.r_fences_per_op
