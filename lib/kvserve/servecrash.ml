(* Crash-mid-serving campaign: the server-path extension of
   {!Crashtest.recovery_under_load_campaign}.

   Per state:

   1. preload [load] keys *through the server* (submit blocks until the
      batch fence, so every reply is an acknowledgement);
   2. arm a seed-deterministic fault plan and run closed-loop client
      traffic; some shard worker crashes mid-batch, the server declares
      itself dead, in-flight and queued requests fail with [Shutdown]
      (never acknowledged).  The [plan] selector aims the crash:
      [`Random] draws any plan kind ({!Faultinject.random_plan});
      [`Mid_epoch] crashes at a random persistent *store* — in epoch mode
      that is inside the fence-free apply window, with applied-but-unacked
      ops parked in the open epoch; [`Boundary] crashes at a random flush
      or fence — in epoch/group mode commit flushes only run inside
      {!Recipe.Persist.epoch_advance}/[group_flush], so the crash lands at
      the durability boundary itself (eager ordering flushes can also
      catch it mid-apply, which only widens coverage);
   3. power-fail (every unflushed line discarded — including the crashed
      batch's deferred commit lines), run each partition's timed recovery
      and reclaiming leak sweep;
   4. restart the server on the recovered partitions, resume client
      traffic, then verify every acknowledged binding from all phases via
      served gets, plus a served scan's global order (ordered partitions).

   Zero lost acknowledged operations ([base.lost_keys = 0]) is the
   acceptance invariant: an acked put was fenced (group or epoch) before
   its reply was sent, so it must survive the crash — a mid-epoch fault
   may lose unacked ops of the open epoch, never an acked one. *)

let fresh_env () =
  Pmem.Crash.disarm ();
  Pmem.Mode.set_shadow true;
  ignore (Pmem.persist_everything ());
  Util.Lock.new_epoch ()

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* Preload through the server; returns the acked flags and the number of
   acknowledged ops (every op of an [Ok] response counts: it was fenced). *)
let preload srv load =
  let completed = Array.make (load + 1) false in
  let acked = ref 0 in
  let chunk = 16 in
  let k = ref 1 in
  while !k <= load do
    let hi = min load (!k + chunk - 1) in
    let ops = ref [] in
    for i = hi downto !k do
      ops :=
        Wire.Put (Util.Keys.encode_int i, Loadgen.value_of_key i) :: !ops
    done;
    let resp = Server.submit srv { Wire.rid = !k; ops = !ops } in
    (if resp.Wire.status = Wire.Ok then begin
       acked := !acked + List.length resp.Wire.replies;
       List.iteri
         (fun j r ->
           match r with
           | Wire.Done true -> completed.(!k + j) <- true
           | _ -> ())
         resp.Wire.replies
     end);
    k := hi + 1
  done;
  (completed, !acked)

let traffic_cfg ~workers ~ops ~load ~key_base ~seed =
  {
    Loadgen.workers;
    requests = max 1 (ops / workers / 4);
    ops_per_request = 4;
    write_pct = 50;
    scan_pct = 0;
    scan_len = 16;
    read_space = load;
    mode = Loadgen.Fresh_keys;
    key_base;
    seed;
  }

let campaign ~make ~(cfg : Server.config) ?(plan = `Random) ~states ~load ~ops
    ~workers ~seed () : Crashtest.load_report =
  let rng = Util.Rng.create seed in
  let mk_parts () = Array.init cfg.shards make in
  (* Preview: measure the traffic phase's substrate event counts so plans
     land inside it. *)
  let ev =
    fresh_env ();
    let parts = mk_parts () in
    let srv = Server.start cfg parts in
    ignore (preload srv load);
    let ev =
      Faultinject.count_events (fun () ->
          ignore
            (Loadgen.run srv
               (traffic_cfg ~workers ~ops ~load ~key_base:(load + 1)
                  ~seed)))
    in
    Server.stop srv;
    ev
  in
  let draw_plan () =
    match plan with
    | `Random ->
        Faultinject.random_plan rng ~max_events:(max 1 ev.Faultinject.flushes)
    | `Mid_epoch ->
        Faultinject.Crash_at_store
          { k = 1 + Util.Rng.below rng (max 1 ev.Faultinject.stores) }
    | `Boundary ->
        if Util.Rng.below rng 2 = 0 then
          Faultinject.Crash_at_flush
            { site = None; k = 1 + Util.Rng.below rng (max 1 ev.Faultinject.flushes) }
        else
          Faultinject.Crash_at_fence
            { site = None; k = 1 + Util.Rng.below rng (max 1 ev.Faultinject.fences) }
  in
  let crashes = ref 0 and lost = ref 0 and wrong = ref 0 and stalled = ref 0 in
  (* Ops this campaign's clients have had acknowledged, across every state
     and server generation — the floor the stats endpoint must report.  The
     serving counters are process-global named metrics, so a restarted
     server re-attaches to them rather than starting a fresh count. *)
  let acked_total = ref 0 in
  let faults0 = Faultinject.fire_count () in
  let recoveries = ref 0 and recover_ns = ref 0 in
  let sweep_stats = ref Recipe.Recovery.zero in
  for state = 1 to states do
    fresh_env ();
    let parts = mk_parts () in
    let srv = Server.start cfg parts in
    let completed, preload_acked = preload srv load in
    acked_total := !acked_total + preload_acked;
    (* Phase 1: traffic under an armed fault plan. *)
    Faultinject.arm (draw_plan ());
    let out1 =
      Loadgen.run srv
        (traffic_cfg ~workers ~ops ~load ~key_base:(load + 1)
           ~seed:(seed + (1000 * state)))
    in
    if Server.crashed srv then incr crashes;
    Server.stop srv;
    Faultinject.disarm ();
    Pmem.Crash.disarm ();
    Pmem.sanitize_sync ();
    (* Phase 2: power failure, per-partition timed recovery, leak sweep. *)
    Pmem.simulate_power_failure ();
    Array.iter
      (fun (p : Server.partition) ->
        incr recoveries;
        let t0 = now_ns () in
        (try p.Server.p_recover () with _ -> incr stalled);
        recover_ns := !recover_ns + (now_ns () - t0);
        match p.Server.p_sweep with
        | Some sw -> (
            try sweep_stats := Recipe.Recovery.add !sweep_stats (sw ())
            with _ -> incr stalled)
        | None -> ())
      parts;
    (* Phase 3: resumed serving on the recovered partitions. *)
    let srv2 = Server.start cfg parts in
    let out2 =
      Loadgen.run srv2
        (traffic_cfg ~workers ~ops ~load ~key_base:(load + 100_001)
           ~seed:(seed + (1000 * state) + 1))
    in
    acked_total := !acked_total + out1.Loadgen.ops_acked + out2.Loadgen.ops_acked;
    (* Verification, through the serving path. *)
    let get k =
      let resp =
        Server.submit srv2
          { Wire.rid = 0; ops = [ Wire.Get (Util.Keys.encode_int k) ] }
      in
      match (resp.Wire.status, resp.Wire.replies) with
      | Wire.Ok, [ Wire.Found v ] ->
          incr acked_total;
          Some v
      | Wire.Ok, [ Wire.Absent ] ->
          incr acked_total;
          None
      | _ ->
          incr stalled;
          None
    in
    let check k v =
      match get k with
      | Some v' -> if v' <> v then incr wrong
      | None -> incr lost
    in
    let expected = ref [] in
    for i = load downto 1 do
      if completed.(i) then expected := (i, Loadgen.value_of_key i) :: !expected
    done;
    let acked =
      List.rev_append out1.Loadgen.puts_acked out2.Loadgen.puts_acked
    in
    List.iter (fun (k, v) -> check k v) !expected;
    List.iter (fun (k, v) -> check k v) acked;
    (* Served-scan consistency (ordered partitions only): ascending global
       key order and every acknowledged binding present.  The wire scan
       count is u16, so membership can only be checked when the whole index
       fits in one scan reply — beyond the cap the scan truncates and the
       missing tail would count as false losses.  [load + 2*ops] bounds the
       index size: preload plus every put of both traffic phases (acked or
       not). *)
    let scan_cap = 0xFFFF in
    let bindings = !expected @ acked in
    (match (Array.length parts > 0, parts.(0).Server.p_scan) with
    | true, Some _ ->
        let resp =
          Server.submit srv2
            {
              Wire.rid = 0;
              ops = [ Wire.Scan (Util.Keys.encode_int 0, scan_cap) ];
            }
        in
        (match (resp.Wire.status, resp.Wire.replies) with
        | Wire.Ok, [ Wire.Scanned items ] ->
            incr acked_total;
            let rec sorted = function
              | (a, _) :: ((b, _) :: _ as rest) ->
                  if String.compare a b >= 0 then incr wrong;
                  sorted rest
              | [ _ ] | [] -> ()
            in
            sorted items;
            if load + (2 * ops) <= scan_cap then begin
              let tbl = Hashtbl.create (List.length items) in
              List.iter (fun (k, v) -> Hashtbl.replace tbl k v) items;
              List.iter
                (fun (k, v) ->
                  match Hashtbl.find_opt tbl (Util.Keys.encode_int k) with
                  | Some v' -> if v' <> v then incr wrong
                  | None -> incr lost)
                bindings
            end
        | _ -> incr stalled)
    | _ -> ());
    (* Stats-endpoint consistency across recovery: queried after every ack
       above, the snapshot must never undercount acked ops (the counter add
       happens-before the ack, see [Server.worker]), must see the restarted
       server healthy, and — with all submits returned — empty queues.  A
       violation is a serving-path malfunction, reported as [stalled]. *)
    (match Server.submit srv2 { Wire.rid = 0; ops = [ Wire.Stats ] } with
    | {
        Wire.status = Wire.Ok;
        replies = [ Wire.Stats_reply fields ];
        _;
      } ->
        let fv k =
          match List.assoc_opt k fields with
          | Some v -> v
          | None ->
              incr stalled;
              -1
        in
        if fv "ops_acked" < !acked_total then incr stalled;
        if fv "crashed" <> 0 then incr stalled;
        for sid = 0 to cfg.shards - 1 do
          if fv (Printf.sprintf "shard.%d.queue_depth" sid) <> 0 then
            incr stalled
        done;
        (* Epoch mode: every submit above has returned, so no ack may
           still be parked, and traffic must have advanced at least one
           epoch (the counters are process-global, so >= 1 holds across
           restarts too). *)
        (match cfg.mode with
        | Server.Epoch _ ->
            if fv "epochs" < 1 then incr stalled;
            for sid = 0 to cfg.shards - 1 do
              if fv (Printf.sprintf "shard.%d.pending_acks" sid) <> 0 then
                incr stalled
            done
        | _ -> ())
    | _ -> incr stalled);
    Server.stop srv2
  done;
  Pmem.Mode.set_shadow false;
  Pmem.Crash.disarm ();
  Faultinject.disarm ();
  {
    Crashtest.base =
      {
        Crashtest.states_tested = states;
        crashes_fired = !crashes;
        lost_keys = !lost;
        wrong_values = !wrong;
        stalled = !stalled;
      };
    faults_injected = Faultinject.fire_count () - faults0;
    recoveries = !recoveries;
    recover_ns = !recover_ns;
    sweep_stats = !sweep_stats;
  }
