(* Closed-loop load generator for the KV service layer.

   Each worker domain owns one {!Util.Rng} stream for its whole run (no
   re-seeding between phases — the reproducibility discipline the YCSB
   harness also follows) and submits batched requests through the
   in-process transport, blocking for each acknowledgement before sending
   the next request: closed-loop, so measured ack latency includes queueing
   behind other clients and the group-persist fence.

   Two key regimes:

   - [Fresh_keys]: every put uses a globally fresh key (disjoint per-worker
     ranges, the {!Crashtest} convention [value = 3*key]).  Acked bindings
     are returned for post-crash verification.
   - [Overwrite n]: puts upsert over a small space of [n] keys — the
     batching benchmark's write-heavy regime, where a batch's commits land
     on few distinct cache lines and group flushing coalesces them.

   On [Overloaded] the worker backs off and retries the same request —
   safe, since a rejected request was not applied at all.  On [Shutdown]
   (server crashed) the worker stops. *)

type mode = Fresh_keys | Overwrite of int

type cfg = {
  workers : int;
  requests : int;  (** per worker *)
  ops_per_request : int;
  write_pct : int;  (** percent of ops that are puts (0–100) *)
  scan_pct : int;  (** percent of ops that are scans (of the remainder) *)
  scan_len : int;
  read_space : int;  (** gets/scans draw keys from [1..read_space] *)
  mode : mode;
  key_base : int;  (** fresh-key offset (skip a preloaded range) *)
  seed : int;
}

let default_cfg =
  {
    workers = 2;
    requests = 200;
    ops_per_request = 8;
    write_pct = 50;
    scan_pct = 0;
    scan_len = 16;
    read_space = 1000;
    mode = Fresh_keys;
    key_base = 1_000_000;
    seed = 42;
  }

type outcome = {
  requests_sent : int;
  ops_acked : int;
  puts_acked : (int * int) list;
      (** acked [Put] bindings (integer key, value) with [Done true] *)
  overloaded : int;  (** backpressure rejections observed (then retried) *)
  shutdowns : int;  (** requests that died with the server *)
  elapsed_ns : int;
  seed : int;
}

let fresh_key cfg wid seq = cfg.key_base + (wid * 1_000_000) + seq

let value_of_key k = k * 3

let build_request (cfg : cfg) rng wid rid seq0 =
  let ops = ref [] in
  for j = cfg.ops_per_request - 1 downto 0 do
    let roll = Util.Rng.below rng 100 in
    if roll < cfg.write_pct then begin
      let k =
        match cfg.mode with
        | Fresh_keys -> fresh_key cfg wid (seq0 + j)
        | Overwrite n -> 1 + Util.Rng.below rng n
      in
      ops := Wire.Put (Util.Keys.encode_int k, value_of_key k) :: !ops
    end
    else if roll < cfg.write_pct + cfg.scan_pct then begin
      let k = 1 + Util.Rng.below rng (max 1 cfg.read_space) in
      ops := Wire.Scan (Util.Keys.encode_int k, cfg.scan_len) :: !ops
    end
    else begin
      let k = 1 + Util.Rng.below rng (max 1 cfg.read_space) in
      ops := Wire.Get (Util.Keys.encode_int k) :: !ops
    end
  done;
  { Wire.rid; ops = !ops }

let worker srv (cfg : cfg) wid () =
  (* The worker's single Rng stream: one [create] for the whole run. *)
  let rng = Util.Rng.create (cfg.seed + (31 * wid) + 7) in
  let sent = ref 0 and acked = ref 0 and over = ref 0 and down = ref 0 in
  let puts = ref [] in
  let stop = ref false in
  let r = ref 0 in
  while (not !stop) && !r < cfg.requests do
    let req = build_request cfg rng wid !r (!r * cfg.ops_per_request) in
    let rec try_submit retries =
      incr sent;
      let resp = Server.submit srv req in
      match resp.Wire.status with
      | Wire.Overloaded ->
          incr over;
          if retries > 0 then begin
            Domain.cpu_relax ();
            try_submit (retries - 1)
          end
          (* Pathological config (queue_cap < request size): drop — the
             request was never applied, so dropping is safe. *)
      | Wire.Ok ->
          acked := !acked + List.length req.Wire.ops;
          (* Record the puts the server actually applied and fenced. *)
          List.iter2
            (fun op reply ->
              match (op, reply) with
              | Wire.Put (ks, v), Wire.Done true ->
                  puts := (Util.Keys.decode_int ks, v) :: !puts
              | _ -> ())
            req.Wire.ops resp.Wire.replies
      | Wire.Shutdown ->
          incr down;
          stop := true
      | Wire.Bad_request -> stop := true
    in
    try_submit 10_000;
    incr r
  done;
  {
    requests_sent = !sent;
    ops_acked = !acked;
    puts_acked = !puts;
    overloaded = !over;
    shutdowns = !down;
    elapsed_ns = 0;
    seed = cfg.seed;
  }

let merge a b =
  {
    requests_sent = a.requests_sent + b.requests_sent;
    ops_acked = a.ops_acked + b.ops_acked;
    puts_acked = List.rev_append b.puts_acked a.puts_acked;
    overloaded = a.overloaded + b.overloaded;
    shutdowns = a.shutdowns + b.shutdowns;
    elapsed_ns = max a.elapsed_ns b.elapsed_ns;
    seed = a.seed;
  }

(* Run the closed-loop phase: [cfg.workers] client domains against [srv],
   wall-clocked around spawn-to-join. *)
let run srv (cfg : cfg) =
  let t0 = Monotonic_clock.now () in
  let domains =
    List.init cfg.workers (fun wid -> Domain.spawn (worker srv cfg wid))
  in
  let outcomes = List.map Domain.join domains in
  let elapsed = Int64.to_int (Int64.sub (Monotonic_clock.now ()) t0) in
  match outcomes with
  | [] ->
      {
        requests_sent = 0;
        ops_acked = 0;
        puts_acked = [];
        overloaded = 0;
        shutdowns = 0;
        elapsed_ns = elapsed;
        seed = cfg.seed;
      }
  | o :: rest ->
      let m = List.fold_left merge o rest in
      { m with elapsed_ns = elapsed }
