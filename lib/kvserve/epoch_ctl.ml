(* Adaptive epoch controller: decide when a shard worker should close its
   open durability epoch (flush deferred lines + one fence, then release
   the epoch's parked acks).

   The controller is pure state over an injected clock — no syscalls, no
   globals — so the QCheck suite can drive it under a fake clock and prove
   the three properties the serving path relies on:

   - an *empty queue* advances immediately: with nothing left to coalesce,
     holding acks buys no amortization, so low load degenerates to per-op
     persistence and pays no p99 penalty;
   - epoch size is *capped*: [max_ops] applied-but-unacked operations (or
     [max_lines] deferred commit lines) force an advance, bounding both the
     ack debt a crash can shed and the fence's flush burst;
   - the *deadline* never overshoots: once [max_delay_ns] has elapsed since
     the epoch opened, the very next decision closes it, whatever the load.

   E22 (EXPERIMENTS.md) located the group-mode p99 inflation in
   batch-formation delay, not the fence — so every signal here targets how
   long an applied op can sit parked, not how big the flush gets. *)

type cfg = {
  max_ops : int;  (** close after this many applied ops are parked *)
  max_lines : int;  (** ... or this many deferred commit lines *)
  max_delay_ns : int;  (** ... or this long since the epoch opened *)
}

(* Defaults: the fence amortization saturates quickly (a 16-32 op epoch
   already coalesces most line reuse), while every extra microsecond of
   parking is a direct ack-latency cost for closed-loop clients — so the
   caps sit low: epochs still span several batches under load, and the
   delay ceiling stays well under a typical request round trip. *)
let default_cfg = { max_ops = 32; max_lines = 256; max_delay_ns = 50_000 }

let validate c =
  if c.max_ops <= 0 then invalid_arg "Epoch_ctl: max_ops must be positive";
  if c.max_lines <= 0 then invalid_arg "Epoch_ctl: max_lines must be positive";
  if c.max_delay_ns <= 0 then
    invalid_arg "Epoch_ctl: max_delay_ns must be positive"

type t = {
  cfg : cfg;
  mutable open_ops : int;  (* ops applied into the open epoch *)
  mutable opened_at : int;  (* clock at the first op of the open epoch *)
}

let create cfg =
  validate cfg;
  { cfg; open_ops = 0; opened_at = 0 }

let open_ops st = st.open_ops

(** Record [n] freshly-applied ops; the first op of an epoch starts its
    delay clock. *)
let note st ~now n =
  if st.open_ops = 0 then st.opened_at <- now;
  st.open_ops <- st.open_ops + n

(** Should the open epoch close now?  Never fires on an empty epoch (an
    advance with nothing parked would fence for nobody). *)
let decide st ~now ~pending_lines ~queue_depth =
  st.open_ops > 0
  && (queue_depth = 0
     || st.open_ops >= st.cfg.max_ops
     || pending_lines >= st.cfg.max_lines
     || now - st.opened_at >= st.cfg.max_delay_ns)

(** The epoch was advanced; start the next one empty. *)
let advanced st = st.open_ops <- 0
