(* Binary wire codec for the KV service layer.

   Framing: every message is [u32 BE payload-length | payload].  The length
   covers the payload only, so a reader needs 4 bytes to learn the frame
   size and [4 + length] bytes to decode it — the incremental-decode
   contract of {!decode_request}/{!decode_response} ([`Need_more] until a
   whole frame has arrived, [`Malformed] only for bytes that can never
   become a valid frame).

   Request payload:
     u8 kind=0 | u32 rid | u16 nops | nops × op
     op: u8 opcode | u16 klen | klen key bytes | opcode-specific tail
         opcode 0 = get     (no tail)
         opcode 1 = put     (u64 value)
         opcode 2 = delete  (no tail)
         opcode 3 = scan    (u16 max results; key is the inclusive start)
         opcode 4 = stats   (no key, no tail: live server snapshot)

   Response payload:
     u8 kind=1 | u32 rid | u8 status | u16 nreplies | nreplies × reply
     status: 0 ok | 1 overloaded | 2 bad_request | 3 shutdown
     reply:  u8 tag 0 = absent
             u8 tag 1 = found    (u64 value)
             u8 tag 2 = done     (u8 applied?)
             u8 tag 3 = scanned  (u16 n | n × (u16 klen | key | u64 value))
             u8 tag 4 = unsupported  (scan sent to an unordered index)
             u8 tag 5 = stats    (u16 n | n × (u16 klen | field name | u64 value))
   Non-[Ok] statuses carry zero replies: the request was not applied.

   Values are 63-bit OCaml ints carried in a u64 slot (the sign bit is
   unused by the value generators; decode rejects a set top bit rather than
   silently wrapping).  Keys and scan counts are u16-sized, so the maximum
   key is 65535 bytes — exercised by the round-trip property tests. *)

type op =
  | Get of string
  | Put of string * int
  | Delete of string
  | Scan of string * int
  | Stats

type request = { rid : int; ops : op list }

type status = Ok | Overloaded | Bad_request | Shutdown

type reply =
  | Absent
  | Found of int
  | Done of bool
  | Scanned of (string * int) list
  | Unsupported
  | Stats_reply of (string * int) list (* named non-negative fields *)

type response = { rrid : int; status : status; replies : reply list }

(* Hard cap on accepted frames: largest legal frame is a response of 65535
   scan replies... in principle; in practice nothing near this is ever sent.
   The cap's job is to make a corrupt length prefix [`Malformed] instead of
   an unbounded buffer wait. *)
let max_frame = 1 lsl 26

let u16_max = 0xFFFF

exception Encode_error of string

let check_key k =
  if String.length k > u16_max then
    raise (Encode_error "key exceeds 65535 bytes")

(* --- encoding ------------------------------------------------------------ *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let add_u16 b v =
  add_u8 b (v lsr 8);
  add_u8 b v

let add_u32 b v =
  add_u16 b (v lsr 16);
  add_u16 b v

(* A negative int (sign bit set) would encode with the u32-halves' top bits
   masked away and round-trip to a *different* positive value — reject it
   rather than corrupt silently. *)
let add_u64 b v =
  if v < 0 then raise (Encode_error "value out of 63-bit unsigned range");
  add_u32 b (v lsr 32);
  add_u32 b v

let add_key b k =
  check_key k;
  add_u16 b (String.length k);
  Buffer.add_string b k

let add_op b = function
  | Get k ->
      add_u8 b 0;
      add_key b k
  | Put (k, v) ->
      add_u8 b 1;
      add_key b k;
      add_u64 b v
  | Delete k ->
      add_u8 b 2;
      add_key b k
  | Scan (k, n) ->
      add_u8 b 3;
      add_key b k;
      if n < 0 || n > u16_max then
        raise (Encode_error "scan count out of u16 range");
      add_u16 b n
  | Stats -> add_u8 b 4

let status_code = function
  | Ok -> 0
  | Overloaded -> 1
  | Bad_request -> 2
  | Shutdown -> 3

let add_reply b = function
  | Absent -> add_u8 b 0
  | Found v ->
      add_u8 b 1;
      add_u64 b v
  | Done applied ->
      add_u8 b 2;
      add_u8 b (if applied then 1 else 0)
  | Scanned items ->
      add_u8 b 3;
      let n = List.length items in
      if n > u16_max then raise (Encode_error "scan result exceeds u16 count");
      add_u16 b n;
      List.iter
        (fun (k, v) ->
          add_key b k;
          add_u64 b v)
        items
  | Unsupported -> add_u8 b 4
  | Stats_reply fields ->
      add_u8 b 5;
      let n = List.length fields in
      if n > u16_max then raise (Encode_error "stats reply exceeds u16 count");
      add_u16 b n;
      List.iter
        (fun (k, v) ->
          add_key b k;
          add_u64 b v)
        fields

(* Append one framed message to [b]: payload built in a scratch buffer so
   the length prefix can go first. *)
let frame b payload =
  let len = Buffer.length payload in
  if len > max_frame then raise (Encode_error "frame exceeds max size");
  add_u32 b len;
  Buffer.add_buffer b payload

let encode_request b (r : request) =
  let p = Buffer.create 64 in
  add_u8 p 0;
  add_u32 p (r.rid land 0xFFFFFFFF);
  let n = List.length r.ops in
  if n > u16_max then raise (Encode_error "request exceeds u16 op count");
  add_u16 p n;
  List.iter (add_op p) r.ops;
  frame b p

let encode_response b (r : response) =
  let p = Buffer.create 64 in
  add_u8 p 1;
  add_u32 p (r.rrid land 0xFFFFFFFF);
  add_u8 p (status_code r.status);
  let n = List.length r.replies in
  if n > u16_max then raise (Encode_error "response exceeds u16 reply count");
  add_u16 p n;
  List.iter (add_reply p) r.replies;
  frame b p

let request_string r =
  let b = Buffer.create 64 in
  encode_request b r;
  Buffer.contents b

let response_string r =
  let b = Buffer.create 64 in
  encode_response b r;
  Buffer.contents b

(* --- decoding ------------------------------------------------------------ *)

type 'a decoded = [ `Ok of 'a * int | `Need_more | `Malformed of string ]

(* Cursor over [s.[pos .. limit)].  [Short] aborts to [`Need_more] — it can
   only fire inside a frame whose declared length lied, which [decode_frame]
   converts to [`Malformed] (the framing layer already proved the bytes are
   present). *)
exception Short
exception Bad of string

type cursor = { s : string; limit : int; mutable pos : int }

let need c n = if c.pos + n > c.limit then raise Short

let u8 c =
  need c 1;
  let v = Char.code (String.unsafe_get c.s c.pos) in
  c.pos <- c.pos + 1;
  v

let u16 c =
  let hi = u8 c in
  let lo = u8 c in
  (hi lsl 8) lor lo

let u32 c =
  let hi = u16 c in
  let lo = u16 c in
  (hi lsl 16) lor lo

let u64 c =
  let hi = u32 c in
  let lo = u32 c in
  if hi land 0x80000000 <> 0 then raise (Bad "value exceeds 63 bits");
  (hi lsl 32) lor lo

let key c =
  let n = u16 c in
  need c n;
  let k = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  k

let dec_op c =
  match u8 c with
  | 0 -> Get (key c)
  | 1 ->
      let k = key c in
      Put (k, u64 c)
  | 2 -> Delete (key c)
  | 3 ->
      let k = key c in
      Scan (k, u16 c)
  | 4 -> Stats
  | n -> raise (Bad (Printf.sprintf "unknown opcode %d" n))

let dec_status = function
  | 0 -> Ok
  | 1 -> Overloaded
  | 2 -> Bad_request
  | 3 -> Shutdown
  | n -> raise (Bad (Printf.sprintf "unknown status %d" n))

let dec_reply c =
  match u8 c with
  | 0 -> Absent
  | 1 -> Found (u64 c)
  | 2 -> (
      match u8 c with
      | 0 -> Done false
      | 1 -> Done true
      | n -> raise (Bad (Printf.sprintf "bad bool %d" n)))
  | 3 ->
      let n = u16 c in
      let items = ref [] in
      for _ = 1 to n do
        let k = key c in
        let v = u64 c in
        items := (k, v) :: !items
      done;
      Scanned (List.rev !items)
  | 4 -> Unsupported
  | 5 ->
      let n = u16 c in
      let fields = ref [] in
      for _ = 1 to n do
        let k = key c in
        let v = u64 c in
        fields := (k, v) :: !fields
      done;
      Stats_reply (List.rev !fields)
  | n -> raise (Bad (Printf.sprintf "unknown reply tag %d" n))

(* Generic frame decode: check the length prefix, then run [payload] on a
   cursor confined to the frame.  Inside the frame, running short or leaving
   trailing bytes are both [`Malformed] — the framing said exactly how many
   bytes the message has. *)
let decode_frame payload s pos : _ decoded =
  let avail = String.length s - pos in
  if avail < 4 then `Need_more
  else begin
    let c = { s; limit = String.length s; pos } in
    let len = u32 c in
    if len > max_frame then `Malformed "frame length exceeds max"
    else if avail < 4 + len then `Need_more
    else begin
      let fc = { s; limit = c.pos + len; pos = c.pos } in
      match payload fc with
      | v ->
          if fc.pos <> fc.limit then `Malformed "trailing bytes in frame"
          else `Ok (v, fc.limit)
      | exception Short -> `Malformed "frame truncates message"
      | exception Bad m -> `Malformed m
    end
  end

let decode_request s pos : request decoded =
  decode_frame
    (fun c ->
      (match u8 c with
      | 0 -> ()
      | k -> raise (Bad (Printf.sprintf "expected request, got kind %d" k)));
      let rid = u32 c in
      let n = u16 c in
      let ops = ref [] in
      for _ = 1 to n do
        ops := dec_op c :: !ops
      done;
      { rid; ops = List.rev !ops })
    s pos

let decode_response s pos : response decoded =
  decode_frame
    (fun c ->
      (match u8 c with
      | 1 -> ()
      | k -> raise (Bad (Printf.sprintf "expected response, got kind %d" k)));
      let rrid = u32 c in
      let status = dec_status (u8 c) in
      let n = u16 c in
      let replies = ref [] in
      for _ = 1 to n do
        replies := dec_reply c :: !replies
      done;
      { rrid; status; replies = List.rev !replies })
    s pos

let status_name = function
  | Ok -> "ok"
  | Overloaded -> "overloaded"
  | Bad_request -> "bad_request"
  | Shutdown -> "shutdown"
