(* Sharded request router with batched durability (group or epoch mode).

   Keys are hash-partitioned across [shards] partitions, each owned by one
   worker domain draining a bounded MPSC queue.  A worker dequeues up to
   [batch] operations and applies them against its partition; durability
   then depends on the configured {!persist_mode}:

   - [Per_op]: every commit flushes and fences inline (the ablation);
   - [Group]: one {!Recipe.Persist.group_flush} per dequeued batch (every
     deferred commit line flushed once, one fence) before any of the
     batch's clients is acknowledged — DESIGN.md §10;
   - [Epoch _]: buffered durable linearizability (DESIGN.md §12).  Applies
     are fence-free; applied-but-unacked operations are *parked* tagged
     with the worker's open epoch, and an adaptive {!Epoch_ctl} decides
     when to {!Recipe.Persist.epoch_advance} (each dirty line flushed
     once + one fence), after which every parked ack releases.  The
     controller closes an epoch the moment the queue is empty, so at low
     load the mode degenerates to per-op persistence; under load epochs
     grow to a cap, preserving fence amortization.

   In every mode an acknowledged write is durable; an unacknowledged write
   may be lost wholesale by a crash, which is the group-commit contract.

   Partition exclusivity is the concurrency keystone: a partition is only
   ever touched by its shard worker, so index operations never contend
   across workers, and a worker that crashes mid-operation (fault
   injection) cannot leave a lock that another worker spins on.

   Backpressure is explicit: a request whose operations do not all fit in
   their target shards' queues is rejected with [Overloaded] having
   enqueued nothing — shard mutexes are taken in ascending id order, every
   capacity check passes before the first push, so an op is never lost or
   double-applied on the rejection path (asserted by the backpressure
   test). *)

(* One key-partition of the service: an index instance restricted to the
   keys that hash to its shard.  [p_scan] is [None] for unordered (hash)
   partitions.  [p_insert] has upsert semantics where the index supports
   update, put-if-absent otherwise. *)
type partition = {
  p_name : string;
  p_insert : string -> int -> bool;
  p_lookup : string -> int option;
  p_delete : string -> bool;
  p_scan : (string -> int -> (string * int) list) option;
  p_recover : unit -> unit;
  p_sweep : (unit -> Recipe.Recovery.stats) option;
}

(** How applied operations become durable (and thus ackable). *)
type persist_mode =
  | Per_op  (** every commit flushes + fences inline (the ablation) *)
  | Group  (** one flush+fence per dequeued batch, ack after *)
  | Epoch of Epoch_ctl.cfg
      (** fence-free applies; acks parked until the adaptive controller
          advances the epoch (flush deferred lines + one fence) *)

let mode_name = function
  | Per_op -> "per_op"
  | Group -> "group"
  | Epoch _ -> "epoch"

type config = {
  shards : int;
  batch : int;  (** max operations dequeued (and applied) together *)
  queue_cap : int;  (** per-shard queue bound, in operations *)
  mode : persist_mode;
}

let default_config =
  { shards = 2; batch = 32; queue_cap = 256; mode = Epoch Epoch_ctl.default_cfg }

(* FNV-1a, folded to 62 bits so shard selection stays positive. *)
let hash_key k =
  let h = ref 0x4BF29CE484222325 (* FNV offset basis, top bit dropped *) in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x100000001B3)
    k;
  !h land max_int

let shard_of_key cfg k = hash_key k mod cfg.shards

(* --- request completion -------------------------------------------------- *)

(* Scan results arrive per shard; the submitter merges once all have
   contributed.  [unsupported] latches if any partition lacks scan. *)
type scan_acc = {
  want : int;
  parts : (string * int) list array;
  mutable unsupported : bool;
}

type slot = Unfilled | Direct of Wire.reply | Scan_parts of scan_acc

(* Completion cell shared by the submitter and every worker holding one of
   the request's items.  [pmu] is a leaf lock: it is only ever taken while
   holding no shard mutex (submit) or after releasing it (workers). *)
type pending = {
  pmu : Mutex.t;
  pcond : Condition.t;
  slots : slot array;
  mutable remaining : int;
  mutable aborted : bool;  (* a contributing worker crashed / shut down *)
}

(* [sp] is the request-lifecycle span for this routed op: a constant [None]
   when spans are disabled, so the hot path allocates no span state and only
   ever pays option-pattern branches. *)
type item = { op : Wire.op; opi : int; pend : pending; sp : Obs.Span.t option }

(* --- shards -------------------------------------------------------------- *)

type shard = {
  sid : int;
  part : partition;
  smu : Mutex.t;
  nonempty : Condition.t;
  ring : item option array;
  mutable head : int;
  mutable len : int;
  mutable stopping : bool;  (* drain remaining work, then exit *)
  mutable dead : bool;  (* crashed: fail remaining work, reject new *)
  m_depth : Obs.Hist.t;  (* queue depth sampled at enqueue *)
  m_batch : Obs.Hist.t;  (* operations per executed batch *)
  m_eops : Obs.Hist.t;  (* operations released per epoch advance *)
  (* Worker-only writes, unlocked metric-grade reads (stats endpoint). *)
  mutable pending_acks : int;  (* applied-but-unacked ops parked right now *)
  mutable last_epoch : int;  (* highest persisted epoch on this shard *)
  (* Per-phase latency (ns), observed at ack time from each op's span; all
     five stay empty while spans are disabled. *)
  m_queue : Obs.Hist.t;
  m_apply : Obs.Hist.t;
  m_epoch : Obs.Hist.t;  (* epoch_wait: parked / batch-tail wait *)
  m_fence : Obs.Hist.t;
  m_sack : Obs.Hist.t;
}

type t = {
  cfg : config;
  shards_ : shard array;
  crashed : bool Atomic.t;
  mutable workers : unit Domain.t list;
  c_ops : Obs.Counter.t;
  c_batches : Obs.Counter.t;
  c_overloaded : Obs.Counter.t;
  c_group_lines : Obs.Counter.t;
  c_epochs : Obs.Counter.t;  (* epoch advances that released >= 1 ack *)
  m_ack : Obs.Hist.t;  (* submit-to-ack latency, successful requests *)
}

let crashed t = Atomic.get t.crashed

let shard_metrics t sid = (t.shards_.(sid).m_depth, t.shards_.(sid).m_batch)
let ack_hist t = t.m_ack
let partitions t = Array.map (fun sh -> sh.part) t.shards_

(* --- completion plumbing ------------------------------------------------- *)

let contribute it sid reply =
  let p = it.pend in
  Mutex.lock p.pmu;
  (match p.slots.(it.opi) with
  | Scan_parts acc -> (
      match reply with
      | Wire.Scanned items -> acc.parts.(sid) <- items
      | Wire.Unsupported -> acc.unsupported <- true
      | _ -> acc.unsupported <- true)
  | _ -> p.slots.(it.opi) <- Direct reply);
  p.remaining <- p.remaining - 1;
  if p.remaining = 0 then Condition.broadcast p.pcond;
  Mutex.unlock p.pmu

let abort_item it =
  let p = it.pend in
  Mutex.lock p.pmu;
  p.aborted <- true;
  p.remaining <- p.remaining - 1;
  if p.remaining = 0 then Condition.broadcast p.pcond;
  Mutex.unlock p.pmu

(* Merge per-shard sorted scan fragments: shards hold disjoint keys, so a
   global sort of the concatenation is the global key order. *)
let assemble_scan acc =
  if acc.unsupported then Wire.Unsupported
  else begin
    let all =
      Array.fold_left (fun l p -> List.rev_append p l) [] acc.parts
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    let rec take n = function
      | x :: rest when n > 0 -> x :: take (n - 1) rest
      | _ -> []
    in
    Wire.Scanned (take acc.want all)
  end

(* --- worker -------------------------------------------------------------- *)

let apply part op =
  match op with
  | Wire.Get k -> (
      match part.p_lookup k with Some v -> Wire.Found v | None -> Wire.Absent)
  | Wire.Put (k, v) -> Wire.Done (part.p_insert k v)
  | Wire.Delete k -> Wire.Done (part.p_delete k)
  | Wire.Scan (k, n) -> (
      match part.p_scan with
      | Some scan -> Wire.Scanned (scan k n)
      | None -> Wire.Unsupported)
  | Wire.Stats ->
      (* Stats is answered at routing time and never enqueued; a worker can
         only see it through a future routing bug. *)
      Wire.Unsupported

let pop sh =
  match sh.ring.(sh.head) with
  | None -> assert false
  | Some it ->
      sh.ring.(sh.head) <- None;
      sh.head <- (sh.head + 1) mod Array.length sh.ring;
      sh.len <- sh.len - 1;
      it

(* Crash path: declare the whole server dead (a process crash takes every
   shard down), wake all workers so they fail-drain their queues. *)
let kill t =
  Atomic.set t.crashed true;
  Array.iter
    (fun sh ->
      Mutex.lock sh.smu;
      sh.dead <- true;
      Condition.broadcast sh.nonempty;
      Mutex.unlock sh.smu)
    t.shards_

let worker t sh =
  (* Group/epoch deferral is domain-local: each worker opts in for itself,
     so other servers' workers (any mode) are unaffected, and the flag dies
     with the domain. *)
  (match t.cfg.mode with
  | Per_op -> ()
  | Group | Epoch _ -> Recipe.Persist.set_group true);
  let ctl =
    match t.cfg.mode with Epoch c -> Some (Epoch_ctl.create c) | _ -> None
  in
  let batch_buf = Array.make t.cfg.batch None in
  let replies = Array.make t.cfg.batch Wire.Absent in
  (* Epoch mode: applied-but-unacked (item, reply) pairs parked until their
     epoch's fence, newest first; [sh.pending_acks] mirrors the length for
     the stats endpoint. *)
  let parked = ref [] in
  let parked_n = ref 0 in
  (* Crash path: parked ops were applied but never fenced — they are
     unacked, so aborting them is exactly the open-epoch loss the crash
     contract allows. *)
  let abort_parked () =
    if !parked_n > 0 then begin
      let ps = List.rev !parked in
      parked := [];
      parked_n := 0;
      sh.pending_acks <- 0;
      List.iter (fun (it, _) -> abort_item it) ps
    end
  in
  (* Close the open epoch: flush each deferred line once, one fence, then
     release every parked ack.  The count add happens *before* the
     contributes so a stats snapshot taken after an ack never undercounts
     acked ops (same ordering promise as the batch path).  Self-contained
     against injected crashes — it is called outside the batch exception
     guard (advance-before-wait, stop drain), and a crash escaping the
     worker would strand submitters. *)
  let release_parked () =
    if !parked_n > 0 then begin
      let ps = List.rev !parked in
      let n = !parked_n in
      (* Epoch close: parked wait ends here, flush work begins. *)
      (if Obs.Span.enabled () then
         let ts = Obs.Span.now () in
         List.iter
           (fun (it, _) ->
             match it.sp with
             | Some sp -> sp.Obs.Span.t_epoch <- ts
             | None -> ())
           ps);
      match Recipe.Persist.epoch_advance () with
      | epoch, lines ->
          parked := [];
          parked_n := 0;
          sh.pending_acks <- 0;
          sh.last_epoch <- epoch;
          Obs.Counter.add t.c_group_lines lines;
          Obs.Counter.incr t.c_epochs;
          (if Obs.Span.enabled () then
             let ts = Obs.Span.now () in
             List.iter
               (fun (it, _) ->
                 match it.sp with
                 | Some sp -> sp.Obs.Span.t_fenced <- ts
                 | None -> ())
               ps);
          Obs.Hist.observe sh.m_eops n;
          Obs.Counter.add t.c_ops n;
          (match ctl with Some c -> Epoch_ctl.advanced c | None -> ());
          List.iter (fun (it, r) -> contribute it sh.sid r) ps
      | exception e ->
          (* Injected crash at the epoch fence: the whole open epoch is
             abandoned — no parked op was acked, so the crash contract
             holds.  Same cleanup as the mid-batch crash path; the loop
             re-enters, sees [dead], and fail-drains the ring. *)
          (match e with
          | Pmem.Crash.Simulated_crash | Pmem.Fault.Alloc_failed _ -> ()
          | e ->
              Printf.eprintf "kvserve worker %d (epoch fence): %s\n%!" sh.sid
                (Printexc.to_string e));
          Recipe.Persist.group_reset ();
          kill t;
          abort_parked ()
    end
  in
  let running = ref true in
  while !running do
    Mutex.lock sh.smu;
    while sh.len = 0 && not sh.stopping && not sh.dead do
      if !parked_n > 0 then begin
        (* Advance-before-wait: an empty queue with parked acks closes the
           epoch immediately (the controller's empty-queue rule) — never
           sleep on someone's unacknowledged write. *)
        Mutex.unlock sh.smu;
        release_parked ();
        Mutex.lock sh.smu
      end
      else Condition.wait sh.nonempty sh.smu
    done;
    if sh.dead then begin
      (* Fail-drain: every queued op gets an aborted completion so no
         submitter blocks forever; none is applied. *)
      while sh.len > 0 do
        let it = pop sh in
        Mutex.unlock sh.smu;
        abort_item it;
        Mutex.lock sh.smu
      done;
      Mutex.unlock sh.smu;
      abort_parked ();
      running := false
    end
    else if sh.len = 0 (* && stopping *) then begin
      Mutex.unlock sh.smu;
      (* Drain the open epoch before exiting so stop => all applied ops
         acked and durable (campaigns power-fail only after [stop]). *)
      release_parked ();
      running := false
    end
    else begin
      let n = min t.cfg.batch sh.len in
      for i = 0 to n - 1 do
        batch_buf.(i) <- Some (pop sh)
      done;
      Mutex.unlock sh.smu;
      Obs.Hist.observe sh.m_batch n;
      (if Obs.Span.enabled () then
         let ts = Obs.Span.now () in
         for i = 0 to n - 1 do
           match batch_buf.(i) with
           | Some { sp = Some sp; _ } -> sp.Obs.Span.t_dequeue <- ts
           | _ -> ()
         done);
      match
        for i = 0 to n - 1 do
          match batch_buf.(i) with
          | Some it ->
              replies.(i) <- apply sh.part it.op;
              (match it.sp with
              | Some sp -> sp.Obs.Span.t_applied <- Obs.Span.now ()
              | None -> ())
          | None -> assert false
        done;
        (match t.cfg.mode with
        | Per_op | Group ->
            (* The batch fence: in group mode the group flush + sfence
               makes every operation above durable; in per-op mode each
               apply already fenced itself.  [t_epoch] closes the
               batch-tail wait (epoch_wait phase) so the fence phase is
               the pure flush+fence cost.  The flush stays inside this
               guarded expression: an injected crash during it must take
               the exception path below, not escape the worker. *)
            (if Obs.Span.enabled () then
               let ts = Obs.Span.now () in
               for i = 0 to n - 1 do
                 match batch_buf.(i) with
                 | Some { sp = Some sp; _ } -> sp.Obs.Span.t_epoch <- ts
                 | _ -> ()
               done);
            if t.cfg.mode = Group then
              Obs.Counter.add t.c_group_lines (Recipe.Persist.group_flush ())
        | Epoch _ -> ())
      with
      | () -> (
          match t.cfg.mode with
          | Per_op | Group ->
              (if Obs.Span.enabled () then
                 let ts = Obs.Span.now () in
                 for i = 0 to n - 1 do
                   match batch_buf.(i) with
                   | Some { sp = Some sp; _ } -> sp.Obs.Span.t_fenced <- ts
                   | _ -> ()
                 done);
              (* Count the batch *before* contributing: the contribute below
                 releases the submitter, and the stats endpoint promises that
                 a snapshot taken after an ack never undercounts acked ops.
                 The counter add happens-before the submitter's wake via
                 [pmu]. *)
              Obs.Counter.add t.c_ops n;
              Obs.Counter.incr t.c_batches;
              for i = 0 to n - 1 do
                match batch_buf.(i) with
                | Some it ->
                    contribute it sh.sid replies.(i);
                    batch_buf.(i) <- None
                | None -> ()
              done
          | Epoch _ ->
              (* Fence-free: park the batch in the open epoch and ask the
                 controller whether to close it now.  Acks release only at
                 the epoch fence (possibly several batches later). *)
              Obs.Counter.incr t.c_batches;
              for i = 0 to n - 1 do
                match batch_buf.(i) with
                | Some it ->
                    parked := (it, replies.(i)) :: !parked;
                    batch_buf.(i) <- None
                | None -> ()
              done;
              parked_n := !parked_n + n;
              sh.pending_acks <- !parked_n;
              let now = Obs.Span.now () in
              let c = match ctl with Some c -> c | None -> assert false in
              Epoch_ctl.note c ~now n;
              (* Re-sample the queue depth *after* the apply, not at pop
                 time: ops that arrived while this batch applied should
                 join the open epoch rather than trigger a premature
                 advance — the empty-queue rule means "the shard is going
                 idle", and a pop-time snapshot can't see that. *)
              let depth_now =
                Mutex.lock sh.smu;
                let d = sh.len in
                Mutex.unlock sh.smu;
                d
              in
              if
                Epoch_ctl.decide c ~now
                  ~pending_lines:(Recipe.Persist.group_pending ())
                  ~queue_depth:depth_now
              then release_parked ())
      | exception e ->
          (* Injected crash (or any fault) mid-batch: the batch is abandoned
             wholesale.  Deferred commit lines are dropped un-flushed — the
             power failure that follows a crash discards them anyway, and
             none of these ops (nor any parked op) was acknowledged. *)
          (match e with
          | Pmem.Crash.Simulated_crash | Pmem.Fault.Alloc_failed _ -> ()
          | e ->
              (* Unexpected exception: still take the server down rather
                 than hang clients, but surface the error for tests. *)
              Printf.eprintf "kvserve worker %d: %s\n%!" sh.sid
                (Printexc.to_string e));
          Recipe.Persist.group_reset ();
          kill t;
          for i = 0 to n - 1 do
            match batch_buf.(i) with
            | Some it ->
                abort_item it;
                batch_buf.(i) <- None
            | None -> ()
          done;
          abort_parked ()
          (* Keep running: ops may have been enqueued to this shard between
             the batch pop (smu released) and [kill] marking it dead, and no
             other worker drains a foreign ring.  The loop re-enters, takes
             the [sh.dead] branch, fail-drains them, and only then exits —
             otherwise their submitters would block forever. *)
    end
  done

(* --- lifecycle ----------------------------------------------------------- *)

let start cfg parts =
  if cfg.shards <= 0 then invalid_arg "Server.start: shards must be positive";
  if cfg.batch <= 0 then invalid_arg "Server.start: batch must be positive";
  (match cfg.mode with Epoch c -> Epoch_ctl.validate c | _ -> ());
  if cfg.queue_cap < cfg.batch then
    invalid_arg "Server.start: queue_cap must be >= batch";
  if Array.length parts <> cfg.shards then
    invalid_arg "Server.start: one partition per shard required";
  let shards_ =
    Array.init cfg.shards (fun sid ->
        {
          sid;
          part = parts.(sid);
          smu = Mutex.create ();
          nonempty = Condition.create ();
          ring = Array.make cfg.queue_cap None;
          head = 0;
          len = 0;
          stopping = false;
          dead = false;
          m_depth = Obs.Hist.v (Printf.sprintf "serve.queue_depth.%d" sid);
          m_batch = Obs.Hist.v (Printf.sprintf "serve.batch_ops.%d" sid);
          m_eops = Obs.Hist.v (Printf.sprintf "serve.epoch_ops.%d" sid);
          pending_acks = 0;
          last_epoch = 0;
          m_queue = Obs.Hist.v (Printf.sprintf "serve.phase.queue.%d" sid);
          m_apply = Obs.Hist.v (Printf.sprintf "serve.phase.apply.%d" sid);
          m_epoch = Obs.Hist.v (Printf.sprintf "serve.phase.epoch_wait.%d" sid);
          m_fence = Obs.Hist.v (Printf.sprintf "serve.phase.fence.%d" sid);
          m_sack = Obs.Hist.v (Printf.sprintf "serve.phase.ack.%d" sid);
        })
  in
  let t =
    {
      cfg;
      shards_;
      crashed = Atomic.make false;
      workers = [];
      c_ops = Obs.Counter.v "serve.ops";
      c_batches = Obs.Counter.v "serve.batches";
      c_overloaded = Obs.Counter.v "serve.overloaded";
      c_group_lines = Obs.Counter.v "serve.group_lines";
      c_epochs = Obs.Counter.v "serve.epochs";
      m_ack = Obs.Hist.v "serve.ack_ns";
    }
  in
  t.workers <-
    List.init cfg.shards (fun sid ->
        Domain.spawn (fun () -> worker t shards_.(sid)));
  t

(* Stop serving: drain queued work (unless crashed, in which case workers
   fail-drain), join every worker.  Group mode needs no teardown — it is
   domain-local to the workers and dies with them.  After [stop] no batch
   is mid-flight, so a campaign may power-fail / recover the partitions. *)
let stop t =
  Array.iter
    (fun sh ->
      Mutex.lock sh.smu;
      sh.stopping <- true;
      Condition.broadcast sh.nonempty;
      Mutex.unlock sh.smu)
    t.shards_;
  List.iter Domain.join t.workers;
  t.workers <- []

(* --- submit (the in-process transport) ----------------------------------- *)

let ok_response rid replies = { Wire.rrid = rid; status = Wire.Ok; replies }
let status_response rid status = { Wire.rrid = rid; status; replies = [] }

(* --- live stats snapshot -------------------------------------------------- *)

(* The serving state as flat named non-negative fields — the [Stats_reply]
   wire shape, rendered by [bin/kv_stats].  Histogram means are fixed-point
   (suffix [_x1000] = value × 1000) so they survive the integer-only wire.
   Queue depths are unlocked reads: metrics-grade, not linearizable.  The
   one ordering promise (checked by the crash campaign): a snapshot taken
   by a client after it received an ack for N ops reports [ops_acked >= N]
   — see the counter placement in [worker]. *)
let stats_snapshot t =
  let module H = Util.Histogram in
  let fields = ref [] in
  let add k v = fields := (k, max 0 v) :: !fields in
  let add_hist prefix h =
    let m = Obs.Hist.merged h in
    add (prefix ^ ".count") (H.count m);
    add (prefix ^ ".mean_x1000") (int_of_float (H.mean m *. 1000.));
    add (prefix ^ ".p50") (H.percentile m 0.50);
    add (prefix ^ ".p99") (H.percentile m 0.99)
  in
  add "shards" t.cfg.shards;
  add "batch" t.cfg.batch;
  add "queue_cap" t.cfg.queue_cap;
  (* [group_persist] keeps its pre-epoch meaning (per-batch group mode) for
     old readers; [persist_mode] is the full story. *)
  add "group_persist" (match t.cfg.mode with Group -> 1 | _ -> 0);
  add "persist_mode"
    (match t.cfg.mode with Per_op -> 0 | Group -> 1 | Epoch _ -> 2);
  (match t.cfg.mode with
  | Epoch c ->
      add "epoch.max_ops" c.Epoch_ctl.max_ops;
      add "epoch.max_lines" c.Epoch_ctl.max_lines;
      add "epoch.max_delay_ns" c.Epoch_ctl.max_delay_ns
  | _ -> ());
  add "crashed" (if Atomic.get t.crashed then 1 else 0);
  add "spans_enabled" (if Obs.Span.enabled () then 1 else 0);
  add "ops_acked" (Obs.Counter.value t.c_ops);
  add "batches" (Obs.Counter.value t.c_batches);
  add "overloaded" (Obs.Counter.value t.c_overloaded);
  add "group_lines" (Obs.Counter.value t.c_group_lines);
  add "epochs" (Obs.Counter.value t.c_epochs);
  let s = Pmem.Stats.snapshot () in
  add "pmem.clwb" s.Pmem.Stats.s_clwb;
  add "pmem.sfence" s.Pmem.Stats.s_sfence;
  add_hist "ack_ns" t.m_ack;
  Array.iter
    (fun sh ->
      let p = Printf.sprintf "shard.%d" sh.sid in
      add (p ^ ".queue_depth") sh.len;
      add (p ^ ".pending_acks") sh.pending_acks;
      add (p ^ ".last_epoch") sh.last_epoch;
      add_hist (p ^ ".batch_ops") sh.m_batch;
      add_hist (p ^ ".epoch_ops") sh.m_eops;
      add_hist (p ^ ".queue_ns") sh.m_queue;
      add_hist (p ^ ".apply_ns") sh.m_apply;
      add_hist (p ^ ".epoch_wait_ns") sh.m_epoch;
      add_hist (p ^ ".fence_ns") sh.m_fence;
      add_hist (p ^ ".ack_ns") sh.m_sack)
    t.shards_;
  List.rev !fields

(* Route one request's ops: returns the per-shard item lists and the
   completion cell, or [None] for an empty request. *)
let route t (req : Wire.request) =
  let nshards = t.cfg.shards in
  let ops = Array.of_list req.ops in
  let nops = Array.length ops in
  if nops = 0 then None
  else begin
    let slots = Array.make nops Unfilled in
    let per_shard = Array.make nshards [] in
    let total = ref 0 in
    let pend =
      {
        pmu = Mutex.create ();
        pcond = Condition.create ();
        slots;
        remaining = 0;
        aborted = false;
      }
    in
    let spans_on = Obs.Span.enabled () in
    let mk_item op opi sid =
      {
        op;
        opi;
        pend;
        sp = (if spans_on then Some (Obs.Span.start ~sid) else None);
      }
    in
    for opi = nops - 1 downto 0 do
      match ops.(opi) with
      | Wire.Scan (_, want) ->
          slots.(opi) <-
            Scan_parts
              { want; parts = Array.make nshards []; unsupported = false };
          for sid = 0 to nshards - 1 do
            per_shard.(sid) <- mk_item ops.(opi) opi sid :: per_shard.(sid)
          done;
          total := !total + nshards
      | Wire.Stats ->
          (* Answered at routing time from the router's own view — a stats
             poll must not consume serving capacity or skew ack latency. *)
          slots.(opi) <- Direct (Wire.Stats_reply (stats_snapshot t))
      | (Wire.Get k | Wire.Put (k, _) | Wire.Delete k) as op ->
          let sid = shard_of_key t.cfg k in
          per_shard.(sid) <- mk_item op opi sid :: per_shard.(sid);
          incr total
    done;
    pend.remaining <- !total;
    Some (pend, per_shard)
  end

exception Reject of Wire.status

(* All-or-nothing enqueue: take the target shards' mutexes in ascending id
   order, verify every shard is alive and has room, and only then push.  On
   any failure nothing has been enqueued. *)
let enqueue t per_shard =
  let nshards = Array.length per_shard in
  let needed = Array.map List.length per_shard in
  let locked = Array.make nshards false in
  let unlock_all () =
    for sid = 0 to nshards - 1 do
      if locked.(sid) then begin
        locked.(sid) <- false;
        Mutex.unlock t.shards_.(sid).smu
      end
    done
  in
  match
    for sid = 0 to nshards - 1 do
      if needed.(sid) > 0 then begin
        let sh = t.shards_.(sid) in
        Mutex.lock sh.smu;
        locked.(sid) <- true;
        if sh.dead || sh.stopping then raise (Reject Wire.Shutdown);
        if sh.len + needed.(sid) > t.cfg.queue_cap then
          raise (Reject Wire.Overloaded)
      end
    done
  with
  | () ->
      for sid = 0 to nshards - 1 do
        if needed.(sid) > 0 then begin
          let sh = t.shards_.(sid) in
          (* Enqueue stamp taken under [smu], so it is ordered before the
             worker's dequeue stamp (the pop also holds [smu]). *)
          let ts = if Obs.Span.enabled () then Obs.Span.now () else 0 in
          List.iter
            (fun it ->
              (match it.sp with
              | Some sp when ts > 0 -> sp.Obs.Span.t_enqueue <- ts
              | _ -> ());
              let tail = (sh.head + sh.len) mod Array.length sh.ring in
              sh.ring.(tail) <- Some it;
              sh.len <- sh.len + 1)
            per_shard.(sid);
          Obs.Hist.observe sh.m_depth sh.len;
          Condition.broadcast sh.nonempty
        end
      done;
      unlock_all ();
      None
  | exception Reject status ->
      unlock_all ();
      Some status

(* Submit a request and block until every op completes (the in-process
   transport; connection handlers call this per decoded frame).  Returns
   [Overloaded]/[Shutdown] without applying anything when rejected. *)
let submit t (req : Wire.request) =
  match route t req with
  | None -> ok_response req.rid []
  | Some (pend, per_shard) -> (
      if Atomic.get t.crashed then status_response req.rid Wire.Shutdown
      else
        let t0 = Monotonic_clock.now () in
        match enqueue t per_shard with
        | Some Wire.Overloaded ->
            Obs.Counter.incr t.c_overloaded;
            status_response req.rid Wire.Overloaded
        | Some status -> status_response req.rid status
        | None ->
            Mutex.lock pend.pmu;
            while pend.remaining > 0 do
              Condition.wait pend.pcond pend.pmu
            done;
            let aborted = pend.aborted in
            Mutex.unlock pend.pmu;
            if aborted then status_response req.rid Wire.Shutdown
            else begin
              (* A request of only routing-time ops (e.g. pure Stats) waited
                 on nothing; don't let it dilute the ack histogram. *)
              let any_routed =
                Array.exists (function [] -> false | _ -> true) per_shard
              in
              if any_routed then
                Obs.Hist.observe t.m_ack
                  (Int64.to_int (Int64.sub (Monotonic_clock.now ()) t0));
              if Obs.Span.enabled () then
                Array.iter
                  (List.iter (fun it ->
                       match it.sp with
                       | Some sp ->
                           Obs.Span.finish sp;
                           let sh = t.shards_.(sp.Obs.Span.sid) in
                           Obs.Hist.observe sh.m_queue (Obs.Span.queue_ns sp);
                           Obs.Hist.observe sh.m_apply (Obs.Span.apply_ns sp);
                           Obs.Hist.observe sh.m_epoch (Obs.Span.epoch_ns sp);
                           Obs.Hist.observe sh.m_fence (Obs.Span.fence_ns sp);
                           Obs.Hist.observe sh.m_sack (Obs.Span.ack_ns sp)
                       | None -> ()))
                  per_shard;
              ok_response req.rid
                (Array.to_list
                   (Array.map
                      (function
                        | Direct r -> r
                        | Scan_parts acc -> assemble_scan acc
                        | Unfilled -> assert false)
                      pend.slots))
            end)

(* --- framed connection (codec-exercising transport) ----------------------- *)

(* Incremental frame processor shared by the in-process tests and the TCP
   front-end: feed raw bytes in, get raw response bytes out.  A malformed
   frame produces one [Bad_request] response and poisons the connection
   (subsequent bytes are discarded — resynchronizing inside a corrupt
   binary stream is not possible). *)
module Conn = struct
  type conn = {
    srv : t;
    inbuf : Buffer.t;
    mutable consumed : int;
    mutable broken : bool;
  }

  let create srv = { srv; inbuf = Buffer.create 256; consumed = 0; broken = false }

  let broken c = c.broken

  (* Compact once this much consumed prefix has accumulated; keeps the
     dead-prefix copy cost amortized O(1) per byte. *)
  let compact_at = 4096

  (* Whether at least one whole frame is buffered (or the length prefix is
     already illegal, which the decoder must turn into [Bad_request]).
     O(1) [Buffer.nth] peeks — no materialization, so a connection
     trickling a large frame costs O(chunk) per feed, not O(buffered). *)
  let frame_ready c =
    let avail = Buffer.length c.inbuf - c.consumed in
    if avail < 4 then false
    else begin
      let byte i = Char.code (Buffer.nth c.inbuf (c.consumed + i)) in
      let len =
        (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3
      in
      len > Wire.max_frame || avail >= 4 + len
    end

  let feed c bytes =
    if c.broken then ""
    else begin
      Buffer.add_string c.inbuf bytes;
      if not (frame_ready c) then ""
      else begin
        let data = Buffer.contents c.inbuf in
        let out = Buffer.create 64 in
        let rec step pos =
          match Wire.decode_request data pos with
          | `Ok (req, pos') ->
              Wire.encode_response out (submit c.srv req);
              step pos'
          | `Need_more -> pos
          | `Malformed _ ->
              Wire.encode_response out (status_response 0 Wire.Bad_request);
              c.broken <- true;
              String.length data
        in
        let pos = step c.consumed in
        c.consumed <- pos;
        let remaining = String.length data - c.consumed in
        if remaining = 0 then begin
          Buffer.clear c.inbuf;
          c.consumed <- 0
        end
        else if c.consumed >= compact_at then begin
          Buffer.clear c.inbuf;
          Buffer.add_substring c.inbuf data c.consumed remaining;
          c.consumed <- 0
        end;
        Buffer.contents out
      end
    end
end
