(* WOART — the ART structure under one global lock (see woart.mli).

   Flush/fence site attribution: WOART performs no flushes of its own — every
   persist happens inside the delegated [Art] calls, so its flushes show up
   under the P-ART site labels in the observability registry.  Per-index sums
   still come out right because the bench exporter isolates each index run
   and attributes all site deltas of that run to the index under test. *)

module Lock = Util.Lock

let name = "WOART"

type t = { tree : Art.t; global : Lock.t }

let create () = { tree = Art.create (); global = Lock.create () }

let with_global t f =
  Lock.lock t.global;
  let r = f () in
  Lock.unlock t.global;
  r

let insert t key value = with_global t (fun () -> Art.insert t.tree key value)
let lookup t key = with_global t (fun () -> Art.lookup t.tree key)
let update t key value = with_global t (fun () -> Art.update t.tree key value)
let delete t key = with_global t (fun () -> Art.delete t.tree key)
let scan t key n f = with_global t (fun () -> Art.scan t.tree key n f)
let range t lo hi = with_global t (fun () -> Art.range t.tree lo hi)
(* No lock here: after a crash the global lock may still be held by the
   crashed operation; recovery's epoch bump is what frees it. *)
let recover t = Art.recover t.tree
let leak_sweep ?reclaim t = Art.leak_sweep ?reclaim t.tree
