(** WOART: Write-Optimal Adaptive Radix Tree baseline (Lee et al., FAST '17;
    paper §7.3).

    WOART is a hand-crafted single-threaded persistent ART variant whose
    inserts commit with a single failure-atomic 8-byte store.  The RECIPE
    paper compares against the multi-threaded form its authors suggest: the
    same structure serialized by one global lock — which is exactly what
    costs it 2–20x against P-ART on multi-threaded YCSB.

    This implementation reuses the adaptive-radix-tree machinery of
    {!Art} (same node formats, same single-store commit points, equivalent
    flush counts in the simulator) and serializes *every* operation,
    including lookups, through one global lock, since the underlying design
    is not safe for concurrent readers.  See DESIGN.md for the substitution
    note. *)

type t

val name : string

val create : unit -> t

(** [insert t key value] — [false] if already present. *)
val insert : t -> string -> int -> bool

val lookup : t -> string -> int option

(** [update t key value] — [false] if absent. *)
val update : t -> string -> int -> bool
val delete : t -> string -> bool

(** [scan t key n f] — up to [n] bindings with keys >= [key], in order. *)
val scan : t -> string -> int -> (string -> int -> unit) -> int

val range : t -> string -> string -> (string * int) list
val recover : t -> unit

(** Delegates to {!Art.leak_sweep} on the underlying tree. *)
val leak_sweep : ?reclaim:bool -> t -> Recipe.Recovery.stats
