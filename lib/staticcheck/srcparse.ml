(* Source → Parsetree, via compiler-libs.

   No ppx, no type-checking: [Parse.implementation] over the raw text is
   all pmlint needs, which keeps the linter runnable on any tree state
   that merely *parses* — including the mutation self-check's deliberately
   broken variants, and files whose build is currently red. *)

type result = Ok of Parsetree.structure | Error of Finding.t

let structure_of_string ~filename src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf filename;
  Location.input_name := filename;
  match Parse.implementation lexbuf with
  | s -> Ok s
  | exception exn ->
      let loc, msg =
        match Location.error_of_exn exn with
        | Some (`Ok (e : Location.error)) ->
            (e.main.loc, Format.asprintf "%t" e.main.txt)
        | _ -> (Location.in_file filename, Printexc.to_string exn)
      in
      Error (Finding.v ~file:filename ~loc Finding.Parse msg)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let structure_of_file path = structure_of_string ~filename:path (read_file path)
