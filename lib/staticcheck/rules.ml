(* The pmlint rule engine: a Parsetree walk per file.

   Everything here is *syntactic*.  The analysis unit is the top-level
   binding; within one, R2/R3 run a straight-line abstract interpretation
   over two booleans:

     pending     — "this sequence performed a persistent store that no
                    clwb has covered yet"
     fence_open  — "the last fence has seen no clwb since"

   Control-flow joins are deliberately asymmetric: [pending] joins with OR
   (a *possibly* unflushed store before a publication is worth a report —
   R2 is a safety rule), [fence_open] joins with AND (R3a is a redundancy
   smell, so we only report fences that are provably back-to-back on every
   path).  Calls to functions defined in the same file are summarized by a
   fixpoint over their syntactic effects, so the idiom of a local
   [persist_node]-style helper — flush everything, one fence — reads as
   the flush it is.

   Suppression is by attribute, checked on the expression and every
   enclosing expression / value binding:
     [@pm.volatile]  — R1: this mutation is deliberately volatile state;
     [@pm.deferred]  — R2/R3: the flush/fence for this site is carried by
                       the epoch/group machinery or by the caller.
   A floating [@@@pm.volatile] exempts a whole file from R1 (used by
   pure-DRAM shims). *)

open Parsetree

let volatile_attr = "pm.volatile"
let deferred_attr = "pm.deferred"

let has_attr name attrs =
  List.exists (fun (a : attribute) -> a.attr_name.txt = name) attrs

let split_longident lid =
  match Longident.flatten lid with
  | parts -> (
      match List.rev parts with
      | name :: revmods -> Some (List.rev revmods, name)
      | [] -> None)
  | exception _ -> None

let head_ident (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> split_longident txt
  | _ -> None

(* Immediate sub-expressions of [e], in source order — the generic
   fallback for AST nodes the scanner has no special case for. *)
let immediate_children (e : expression) =
  let acc = ref [] in
  let collector =
    { Ast_iterator.default_iterator with expr = (fun _ x -> acc := x :: !acc) }
  in
  Ast_iterator.default_iterator.expr collector e;
  List.rev !acc

(* Every identifier occurrence under [e] (not just application heads:
   partially applied flushes and functions passed as values count too),
   paired with its location. *)
let idents_under iter_root =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> (
              match split_longident txt with
              | Some p -> acc := (p, loc) :: !acc
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter_root it;
  List.rev !acc

let idents_under_expr e = idents_under (fun it -> it.Ast_iterator.expr it e)

(* --- per-file statistics (EXPERIMENTS.md E24) ---------------------------- *)

type stats = {
  mutable s_functions : int;  (* top-level bindings analyzed *)
  mutable s_stores : int;  (* recognized persistent-store call sites *)
  mutable s_flushes : int;  (* recognized clwb-bearing call sites *)
  mutable s_fences : int;  (* recognized sfence-bearing call sites *)
  mutable s_publishes : int;  (* recognized publication call sites *)
  mutable s_mutations : int;  (* R1 catalog hits, flagged or exempt *)
  mutable s_sites : int;  (* Obs.Site registrations *)
}

let stats_zero () =
  {
    s_functions = 0;
    s_stores = 0;
    s_flushes = 0;
    s_fences = 0;
    s_publishes = 0;
    s_mutations = 0;
    s_sites = 0;
  }

(* --- context -------------------------------------------------------------- *)

type ctx = {
  file : string;
  scope : Scope.t;
  emit : Finding.t -> unit;
  carriers : (string, Names.effect_) Hashtbl.t;
  stats : stats;
}

let report ctx rule loc msg =
  ctx.emit (Finding.v ~file:ctx.file ~loc rule msg)

(* --- R2/R3: the straight-line scan ---------------------------------------- *)

type st = { pending : bool; fence_open : bool }

let st0 = { pending = false; fence_open = false }

let join a b =
  { pending = a.pending || b.pending; fence_open = a.fence_open && b.fence_open }

(* Resolve the effect of a call through an identifier: the primitive
   tables first, then same-file helper summaries for unqualified names. *)
let effect_of ctx ~mods ~name =
  let direct = Names.classify ~mods ~name in
  if Names.is_effect direct then direct
  else
    match (mods, Hashtbl.find_opt ctx.carriers name) with
    | [], Some s -> s
    | _ -> Names.no_effect

let apply_effect ctx ~exempt ~silent ~bare_sfence st eff loc =
  if not (Names.is_effect eff) then st
  else begin
    if not silent then begin
      if eff.Names.e_store then ctx.stats.s_stores <- ctx.stats.s_stores + 1;
      if eff.e_flush then ctx.stats.s_flushes <- ctx.stats.s_flushes + 1;
      if eff.e_fence then ctx.stats.s_fences <- ctx.stats.s_fences + 1;
      if eff.e_publish then ctx.stats.s_publishes <- ctx.stats.s_publishes + 1
    end;
    if eff.e_publish && st.pending && ctx.scope.r23 && not exempt then
      report ctx Finding.R2 loc
        "publication with unflushed stores in the same straight-line \
         sequence (missing dominating clwb); annotate [@pm.deferred] if the \
         flush is deferred to the epoch/group fence";
    if bare_sfence && st.fence_open && ctx.scope.r23 && not exempt then
      report ctx Finding.R3 loc
        "back-to-back sfence with no intervening clwb (redundant fence)";
    let st = if eff.e_flush then { pending = false; fence_open = false } else st in
    let st = if eff.e_store && not eff.e_flush then { st with pending = true } else st in
    let st = if eff.e_fence then { st with fence_open = true } else st in
    st
  end

let rec scan ctx ~exempt ~silent st (e : expression) =
  let exempt = exempt || has_attr deferred_attr e.pexp_attributes in
  let scan1 = scan ctx ~exempt ~silent in
  match e.pexp_desc with
  | Pexp_sequence (a, b) ->
      let st = scan1 st a in
      scan1 st b
  | Pexp_let (_, vbs, body) ->
      let st =
        List.fold_left
          (fun st vb ->
            let exempt =
              exempt || has_attr deferred_attr vb.pvb_attributes
            in
            match vb.pvb_expr.pexp_desc with
            | Pexp_fun _ | Pexp_function _ ->
                (* A local function *definition*: no effect at the binding;
                   its body is still checked, from a clean entry state. *)
                ignore (scan ctx ~exempt ~silent st0 vb.pvb_expr);
                st
            | _ -> scan ctx ~exempt ~silent st vb.pvb_expr)
          st vbs
      in
      scan1 st body
  | Pexp_ifthenelse (c, t, f) ->
      let st = scan1 st c in
      let a = scan1 st t in
      let b = match f with None -> st | Some f -> scan1 st f in
      join a b
  | Pexp_match (scr, cases) | Pexp_try (scr, cases) -> (
      let st = scan1 st scr in
      match cases with
      | [] -> st
      | cases ->
          let branch c =
            let st =
              match c.pc_guard with None -> st | Some g -> scan1 st g
            in
            scan1 st c.pc_rhs
          in
          let states = List.map branch cases in
          List.fold_left join (List.hd states) (List.tl states))
  | Pexp_while (c, b) ->
      let st = scan1 st c in
      let after = scan1 st b in
      join st after
  | Pexp_for (_, lo, hi, _, body) ->
      let st = scan1 st lo in
      let st = scan1 st hi in
      let after = scan1 st body in
      join st after
  | Pexp_fun (_, default, _, body) ->
      (* A lambda in expression position is almost always an argument to an
         iterator ([Array.iteri], [List.iter]) executed right here: inline
         its effects.  Lambdas *bound* to names are handled in Pexp_let. *)
      let st =
        match default with None -> st | Some d -> scan1 st d
      in
      scan1 st body
  | Pexp_function cases -> (
      match cases with
      | [] -> st
      | cases ->
          let states = List.map (fun c -> scan1 st c.pc_rhs) cases in
          List.fold_left join (List.hd states) (List.tl states))
  | Pexp_apply (fn, args) -> (
      let st =
        match fn.pexp_desc with
        | Pexp_ident _ -> st
        | _ -> scan1 st fn
      in
      let st = List.fold_left (fun st (_, a) -> scan1 st a) st args in
      match head_ident fn with
      | Some (mods, name) ->
          let eff = effect_of ctx ~mods ~name in
          let bare_sfence =
            Names.is_bare_sfence ~mods ~name
            && Names.is_effect (Names.classify ~mods ~name)
          in
          apply_effect ctx ~exempt ~silent ~bare_sfence st eff e.pexp_loc
      | None -> st)
  | _ -> List.fold_left scan1 st (immediate_children e)

(* --- helper summaries (same-file "carriers") ------------------------------ *)

(* Top-level bindings of the file that look like functions, with the
   syntactic effect union of everything they mention, closed transitively
   over same-file references. *)
let toplevel_bindings structure =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.filter_map
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } -> Some (txt, vb)
              | _ -> None)
            vbs
      | _ -> [])
    structure

let build_carriers ctx structure =
  let fns = toplevel_bindings structure in
  let names = List.map fst fns in
  let direct = Hashtbl.create 32 in
  let deps = Hashtbl.create 32 in
  List.iter
    (fun (name, vb) ->
      let eff = ref Names.no_effect in
      let dep = ref [] in
      List.iter
        (fun ((mods, n), _loc) ->
          eff := Names.union !eff (Names.classify ~mods ~name:n);
          if mods = [] && List.mem n names && n <> name then dep := n :: !dep)
        (idents_under_expr vb.pvb_expr);
      Hashtbl.replace direct name !eff;
      Hashtbl.replace deps name !dep)
    fns;
  (* Fixpoint: effects flow through same-file calls. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun name ->
        let cur = Hashtbl.find direct name in
        let nxt =
          List.fold_left
            (fun acc d ->
              match Hashtbl.find_opt direct d with
              | Some e -> Names.union acc e
              | None -> acc)
            cur
            (Hashtbl.find deps name)
        in
        if nxt <> cur then begin
          Hashtbl.replace direct name nxt;
          changed := true
        end)
      names
  done;
  Hashtbl.iter (fun k v -> Hashtbl.replace ctx.carriers k v) direct;
  (* Second pass: a helper whose publication is internally dominated by its
     own flush must not re-trigger R2 at every call site.  Probe each
     publishing helper by scanning its body silently from pending=true and
     from pending=false: if the entry state makes no difference, the
     publish is internally guarded — drop e_publish from its summary. *)
  List.iter
    (fun (name, vb) ->
      match Hashtbl.find_opt ctx.carriers name with
      | Some eff when eff.Names.e_publish ->
          let count_r2 entry =
            let n = ref 0 in
            let probe_ctx =
              {
                ctx with
                emit =
                  (fun f -> if f.Finding.rule = Finding.R2 then incr n);
                scope = Scope.all;
              }
            in
            ignore (scan probe_ctx ~exempt:false ~silent:true entry vb.pvb_expr);
            !n
          in
          let exposed =
            count_r2 { pending = true; fence_open = false }
            > count_r2 { pending = false; fence_open = false }
          in
          if not exposed then
            Hashtbl.replace ctx.carriers name
              { eff with Names.e_publish = false }
      | _ -> ())
    fns

(* --- R3b: clwb with no reachable sfence in the function ------------------- *)

let check_unfenced_flush ctx (name, vb) =
  ignore name;
  if ctx.scope.r23 && not (has_attr deferred_attr vb.pvb_attributes) then
    let idents = idents_under_expr vb.pvb_expr in
    let eff =
      List.fold_left
        (fun acc ((mods, n), _) ->
          let e = effect_of ctx ~mods ~name:n in
          Names.union acc e)
        Names.no_effect idents
    in
    if eff.Names.e_flush && not eff.e_fence then
      let first_flush =
        List.find_opt
          (fun ((mods, n), _) ->
            (Names.classify ~mods ~name:n).Names.e_flush)
          idents
      in
      match first_flush with
      | Some (_, loc) ->
          report ctx Finding.R3 loc
            "clwb with no reachable sfence in this function; annotate \
             [@pm.deferred] if the fence is the caller's or the epoch's"
      | None -> ()

(* --- R1: raw-mutation escape ---------------------------------------------- *)

(* Names let-bound (anywhere inside [root]) to a locally allocated ref,
   array or atomic: mutating those cannot touch simulated PM, which only
   hands out Words/Refs. *)
let local_volatiles iter_root =
  let acc = Hashtbl.create 16 in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          (match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
          | Ppat_var { txt; _ }, Pexp_apply (fn, _) -> (
              match head_ident fn with
              | Some (mods, name) when Names.local_maker ~mods ~name ->
                  Hashtbl.replace acc txt ()
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  iter_root it;
  acc

let rec r1_walk ctx locals ~exempt (e : expression) =
  let exempt = exempt || has_attr volatile_attr e.pexp_attributes in
  let walk = r1_walk ctx locals ~exempt in
  match e.pexp_desc with
  | Pexp_setfield (lhs, _, rhs) ->
      ctx.stats.s_mutations <- ctx.stats.s_mutations + 1;
      if not exempt then
        report ctx Finding.R1 e.pexp_loc
          "record field mutation (<-) bypasses the Pmem.Words/Refs API; \
           annotate [@pm.volatile] if this state is deliberately volatile";
      walk lhs;
      walk rhs
  | Pexp_apply (fn, args) ->
      (match head_ident fn with
      | Some (mods, name) -> (
          match Names.mutation_of ~mods ~name with
          | Some kind ->
              ctx.stats.s_mutations <- ctx.stats.s_mutations + 1;
              let target_is_local =
                match args with
                | ( _,
                    {
                      pexp_desc = Pexp_ident { txt = Longident.Lident x; _ };
                      _;
                    } )
                  :: _ ->
                    Hashtbl.mem locals x
                | _ -> false
              in
              if (not exempt) && not target_is_local then
                report ctx Finding.R1 e.pexp_loc
                  (Printf.sprintf
                     "raw %s bypasses the Pmem.Words/Refs API; annotate \
                      [@pm.volatile] if this state is deliberately volatile"
                     (Names.mutation_doc kind))
          | None -> ())
      | None -> ());
      walk fn;
      List.iter (fun (_, a) -> walk a) args
  | Pexp_let (_, vbs, body) ->
      List.iter
        (fun vb ->
          r1_walk ctx locals
            ~exempt:(exempt || has_attr volatile_attr vb.pvb_attributes)
            vb.pvb_expr)
        vbs;
      walk body
  | _ -> List.iter walk (immediate_children e)

(* --- R4: site hygiene ------------------------------------------------------ *)

type site_def = {
  sd_name : string;  (* the bound variable *)
  sd_tag : string option;  (* "index/label" when statically resolvable *)
  sd_loc : Location.t;
  sd_file : string;
}

let is_site_v path =
  match List.rev path with "v" :: "Site" :: _ -> true | _ -> false

let string_lit (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* R4 state gathered in one pass over the file. *)
type r4_env = {
  mutable str_env : (string * string) list;  (* top-level string constants *)
  mutable creators : (string * string option) list;  (* partial Site.v apps *)
  mutable defs : site_def list;
  uses : (string, int) Hashtbl.t;
}

let resolve_index env (e : expression) =
  match string_lit e with
  | Some s -> Some s
  | None -> (
      match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident x; _ } ->
          List.assoc_opt x env.str_env
      | _ -> None)

(* Classify a top-level RHS as a site registration / creator, if it is one. *)
let classify_site_rhs env (e : expression) =
  match e.pexp_desc with
  | Pexp_apply (fn, args) -> (
      match head_ident fn with
      | Some (path, name) when is_site_v (path @ [ name ]) ->
          let index =
            List.fold_left
              (fun acc (lbl, a) ->
                match lbl with
                | Asttypes.Labelled "index" -> resolve_index env a
                | _ -> acc)
              None args
          in
          let label =
            List.fold_left
              (fun acc (lbl, a) ->
                match (lbl, string_lit a) with
                | Asttypes.Nolabel, Some s -> Some s
                | _ -> acc)
              None args
          in
          Some (index, label)
      | Some ([], c) -> (
          match List.assoc_opt c env.creators with
          | Some index ->
              let label =
                List.fold_left
                  (fun acc (lbl, a) ->
                    match (lbl, string_lit a) with
                    | Asttypes.Nolabel, Some s -> Some s
                    | _ -> acc)
                  None args
              in
              Some (index, label)
          | None -> None)
      | _ -> None)
  | _ -> None

let r4_analyze ctx structure =
  if not ctx.scope.r4 then []
  else begin
    let env =
      { str_env = []; creators = []; defs = []; uses = Hashtbl.create 64 }
    in
    (* Pass 1: top-level environment, in order. *)
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt = x; loc = _ } -> (
                    match string_lit vb.pvb_expr with
                    | Some s -> env.str_env <- (x, s) :: env.str_env
                    | None -> (
                        match classify_site_rhs env vb.pvb_expr with
                        | Some (index, Some label) ->
                            ctx.stats.s_sites <- ctx.stats.s_sites + 1;
                            env.defs <-
                              {
                                sd_name = x;
                                sd_tag =
                                  Option.map
                                    (fun i -> i ^ "/" ^ label)
                                    index;
                                sd_loc = vb.pvb_loc;
                                sd_file = ctx.file;
                              }
                              :: env.defs
                        | Some (index, None) ->
                            (* Partial application: a per-index creator. *)
                            env.creators <- (x, index) :: env.creators
                        | None -> ()))
                | _ -> ())
              vbs
        | _ -> ())
      structure;
    let site_names =
      List.map (fun d -> d.sd_name) env.defs
      @ List.map fst env.creators
    in
    let toplevel_names =
      List.concat_map
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.filter_map
                (fun vb ->
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var { txt; _ } -> Some txt
                  | _ -> None)
                vbs
          | _ -> [])
        structure
    in
    (* Pass 2: uses, ~site: arguments, and Site.v calls in function bodies. *)
    let count_use x =
      Hashtbl.replace env.uses x
        (1 + Option.value ~default:0 (Hashtbl.find_opt env.uses x))
    in
    let check_site_arg (a : expression) =
      let check_name x loc =
        if
          x <> "site"
          && (not (List.mem x site_names))
          && List.mem x toplevel_names
        then
          report ctx Finding.R4 loc
            (Printf.sprintf
               "?site argument %s does not resolve to a registered Obs.Site \
                in this file"
               x)
      in
      match a.pexp_desc with
      | Pexp_ident { txt = Longident.Lident x; loc } -> check_name x loc
      | Pexp_construct
          ( { txt = Longident.Lident "Some"; _ },
            Some { pexp_desc = Pexp_ident { txt = Longident.Lident x; loc }; _ }
          ) ->
          check_name x loc
      | _ -> ()
    in
    let rec walk ~in_fun (e : expression) =
      (match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident x; _ } -> count_use x
      | _ -> ());
      match e.pexp_desc with
      | Pexp_apply (fn, args) ->
          (match head_ident fn with
          | Some (path, name) when is_site_v (path @ [ name ]) && in_fun ->
              report ctx Finding.R4 e.pexp_loc
                "Obs.Site.v inside a function body re-registers its tag on \
                 every call (and raises); register at module init or use \
                 Obs.Site.find_or_create"
          | _ -> ());
          List.iter
            (fun (lbl, a) ->
              (match lbl with
              | Asttypes.Labelled "site" | Asttypes.Optional "site" ->
                  check_site_arg a
              | _ -> ());
              walk ~in_fun a)
            args;
          walk ~in_fun fn
      | Pexp_fun (_, default, _, body) ->
          Option.iter (walk ~in_fun) default;
          walk ~in_fun:true body
      | Pexp_function cases ->
          List.iter
            (fun c ->
              Option.iter (walk ~in_fun) c.pc_guard;
              walk ~in_fun:true c.pc_rhs)
            cases
      | _ -> List.iter (walk ~in_fun) (immediate_children e)
    in
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter (fun vb -> walk ~in_fun:false vb.pvb_expr) vbs
        | _ ->
            (* expressions elsewhere (Pstr_eval etc.) *)
            let it =
              {
                Ast_iterator.default_iterator with
                expr = (fun _ e -> walk ~in_fun:false e);
              }
            in
            Ast_iterator.default_iterator.structure_item it item)
      structure;
    (* The definition site of a creator counts itself (its RHS mentions
       [Obs.Site.v], not the bound name), so a use count of 0 really means
       "registered and never passed anywhere". *)
    List.iter
      (fun d ->
        match Hashtbl.find_opt env.uses d.sd_name with
        | Some n when n > 0 -> ()
        | _ ->
            report ctx Finding.R4 d.sd_loc
              (Printf.sprintf
                 "site %s%s is registered but never used in this file"
                 d.sd_name
                 (match d.sd_tag with
                 | Some t -> Printf.sprintf " (tag %S)" t
                 | None -> "")))
      env.defs;
    env.defs
  end

(* --- file entry point ------------------------------------------------------ *)

let lint_structure ~file ~scope ~emit structure =
  let ctx =
    { file; scope; emit; carriers = Hashtbl.create 32; stats = stats_zero () }
  in
  let file_volatile =
    List.exists
      (fun item ->
        match item.pstr_desc with
        | Pstr_attribute a -> a.attr_name.txt = volatile_attr
        | _ -> false)
      structure
  in
  build_carriers ctx structure;
  let bindings = toplevel_bindings structure in
  List.iter
    (fun (name, vb) ->
      ctx.stats.s_functions <- ctx.stats.s_functions + 1;
      let exempt = has_attr deferred_attr vb.pvb_attributes in
      if ctx.scope.r23 then
        ignore (scan ctx ~exempt ~silent:false st0 vb.pvb_expr);
      check_unfenced_flush ctx (name, vb);
      if ctx.scope.r1 && not file_volatile then begin
        let locals =
          local_volatiles (fun it -> it.Ast_iterator.value_binding it vb)
        in
        r1_walk ctx locals
          ~exempt:(has_attr volatile_attr vb.pvb_attributes)
          vb.pvb_expr
      end)
    bindings;
  let defs = r4_analyze ctx structure in
  (defs, ctx.stats)

(* Cross-file R4: each resolved tag is registered exactly once. *)
let check_duplicate_tags ~emit (defs : site_def list) =
  let by_tag = Hashtbl.create 64 in
  List.iter
    (fun d ->
      match d.sd_tag with
      | Some t ->
          Hashtbl.replace by_tag t (d :: Option.value ~default:[] (Hashtbl.find_opt by_tag t))
      | None -> ())
    defs;
  Hashtbl.iter
    (fun tag ds ->
      match
        List.sort
          (fun a b ->
            let c = String.compare a.sd_file b.sd_file in
            if c <> 0 then c
            else
              Int.compare a.sd_loc.loc_start.pos_lnum
                b.sd_loc.loc_start.pos_lnum)
          ds
      with
      | first :: (_ :: _ as rest) ->
          List.iter
            (fun d ->
              emit
                (Finding.v ~file:d.sd_file ~loc:d.sd_loc Finding.R4
                   (Printf.sprintf
                      "duplicate registration of site tag %S (first \
                       registered at %s:%d)"
                      tag first.sd_file first.sd_loc.loc_start.pos_lnum)))
            rest
      | _ -> ())
    by_tag
