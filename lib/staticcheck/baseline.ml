(* Baseline burn-down.

   The committed [lint_baseline] is the set of findings the tree is
   *allowed* to have: one {!Finding.render} line per entry, '#' comments
   and blank lines ignored.  pmlint fails on a finding not in the baseline
   (the tree got worse) AND on a baseline entry with no matching finding
   (the entry went stale — fixing a finding must also delete its line, so
   the baseline only ever burns down, never silently pads). *)

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line ->
              let line = String.trim line in
              let acc =
                if line = "" || String.length line > 0 && line.[0] = '#' then
                  acc
                else line :: acc
              in
              go acc
          | exception End_of_file -> List.rev acc
        in
        go [])
  end

type diff = { fresh : string list; stale : string list }

let diff ~baseline ~found =
  let mem xs x = List.mem x xs in
  {
    fresh = List.filter (fun f -> not (mem baseline f)) found;
    stale = List.filter (fun b -> not (mem found b)) baseline;
  }

let save path ~found =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        "# pmlint baseline — one finding per line, burn-down only.\n\
         # Fixing a finding must also delete its line here; pmlint fails on\n\
         # stale entries as well as on new findings.  Regenerate with\n\
         #   dune exec bin/pmlint.exe -- --update-baseline\n";
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (List.sort_uniq String.compare found))
