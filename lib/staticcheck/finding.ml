(* A pmlint diagnostic: file:line-anchored, carrying the rule that fired.

   Findings are rendered to one canonical line each; that rendered line is
   also the baseline key (see {!Baseline}), so two findings are "the same"
   exactly when their file, line, rule and message coincide.  Columns are
   kept for display but excluded from the key — editors shift columns far
   more often than they shift the shape of a statement. *)

type rule =
  | R1  (* raw-mutation escape: state changed outside the Pmem API *)
  | R2  (* publish hygiene: commit/publish without a dominating clwb *)
  | R3  (* fence hygiene: redundant or unreachable fences *)
  | R4  (* site hygiene: Obs.Site registration and usage *)
  | Parse  (* the file could not be parsed at all *)

let rule_id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | Parse -> "parse"

(* One-line rule summaries for --rules and the report header. *)
let rule_doc = function
  | R1 ->
      "raw mutation (<-, :=, Array.set, Atomic.*) bypassing the \
       Pmem.Words/Refs API; annotate [@pm.volatile] for deliberately \
       volatile state"
  | R2 ->
      "publication (Persist.commit*, sanitize_publish) with unflushed \
       stores in the same straight-line sequence; annotate [@pm.deferred] \
       for epoch/group-deferred paths"
  | R3 ->
      "fence hygiene: back-to-back sfence with no intervening clwb, or a \
       function that flushes but never fences"
  | R4 ->
      "site hygiene: Obs.Site tags must be registered exactly once, used, \
       and ?site arguments must resolve to registered sites"
  | Parse -> "the file could not be parsed"

type t = { file : string; line : int; col : int; rule : rule; msg : string }

let v ~file ~loc rule msg =
  let p = loc.Location.loc_start in
  { file; line = p.Lexing.pos_lnum; col = p.pos_cnum - p.pos_bol; rule; msg }

(* The canonical (and baseline-key) rendering. *)
let render t = Printf.sprintf "%s:%d: [%s] %s" t.file t.line (rule_id t.rule) t.msg

(* Display rendering with the column, for humans/editors. *)
let render_loc t =
  Printf.sprintf "%s:%d:%d: [%s] %s" t.file t.line t.col (rule_id t.rule) t.msg

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (render a) (render b)
