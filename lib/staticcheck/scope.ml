(* Which rules apply to which file.

   The rule catalog is not uniform over the tree: R1 (raw-mutation escape)
   only makes sense where state is supposed to live in simulated PM — the
   nine index libraries and [lib/recipe]; [lib/kvserve] is deliberately
   full of volatile queues and rings, and [lib/pmem] *implements* the
   primitives the rules reason about.  R2/R3 (publish/fence hygiene) add
   kvserve, whose batch executor issues flushes and fences of its own.
   R4 (site hygiene) is global: every lib registers attribution sites. *)

type t = { r1 : bool; r23 : bool; r4 : bool }

let none = { r1 = false; r23 = false; r4 = false }
let all = { r1 = true; r23 = true; r4 = true }

(* The nine paper indexes. *)
let index_libs =
  [
    "art"; "bwtree"; "cceh"; "clht"; "fastfair"; "hot"; "levelhash";
    "masstree"; "woart";
  ]

let r1_libs = index_libs @ [ "recipe" ]
let r23_libs = r1_libs @ [ "kvserve" ]

(* The library owning [file]: the path component following the last "lib". *)
let lib_of_path file =
  let parts = String.split_on_char '/' file in
  let rec after_lib = function
    | "lib" :: l :: _ -> Some l
    | _ :: rest -> after_lib rest
    | [] -> None
  in
  after_lib parts

let of_path file =
  match lib_of_path file with
  | None -> none
  | Some l ->
      {
        r1 = List.mem l r1_libs;
        r23 = List.mem l r23_libs;
        r4 = true;
      }
