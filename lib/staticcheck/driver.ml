(* The pmlint driver: tree walk, per-file rules, cross-file R4, baseline
   comparison, the mutation self-check, and the CLI entry used by
   [bin/pmlint.exe].  Kept in the library so the test suite can lint
   in-memory strings and fixture files without shelling out. *)

(* --- linting one unit ------------------------------------------------------ *)

type file_result = {
  fr_findings : Finding.t list;
  fr_defs : Rules.site_def list;
  fr_stats : Rules.stats option;  (* None when the file failed to parse *)
}

let lint_structure ~file ~scope structure =
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  let defs, stats = Rules.lint_structure ~file ~scope ~emit structure in
  { fr_findings = List.rev !findings; fr_defs = defs; fr_stats = Some stats }

let lint_string ~file ~scope src =
  match Srcparse.structure_of_string ~filename:file src with
  | Srcparse.Ok s -> lint_structure ~file ~scope s
  | Srcparse.Error f -> { fr_findings = [ f ]; fr_defs = []; fr_stats = None }

let lint_file ~scope path =
  lint_string ~file:path ~scope (Srcparse.read_file path)

(* --- tree walk ------------------------------------------------------------- *)

let is_ml name =
  Filename.check_suffix name ".ml" && not (Filename.check_suffix name ".pp.ml")

let skip_dir name =
  String.length name > 0 && (name.[0] = '.' || name.[0] = '_')

let rec collect_ml acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if skip_dir entry then acc
        else collect_ml acc (Filename.concat path entry))
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if is_ml path then path :: acc
  else acc

let ml_files roots =
  List.rev (List.fold_left collect_ml [] roots)

(* --- whole-tree lint ------------------------------------------------------- *)

type tree_result = {
  findings : Finding.t list;  (* sorted *)
  per_lib : (string * Rules.stats) list;  (* aggregated, for --stats *)
  files_linted : int;
}

let merge_stats (a : Rules.stats) (b : Rules.stats) =
  a.Rules.s_functions <- a.Rules.s_functions + b.Rules.s_functions;
  a.s_stores <- a.s_stores + b.s_stores;
  a.s_flushes <- a.s_flushes + b.s_flushes;
  a.s_fences <- a.s_fences + b.s_fences;
  a.s_publishes <- a.s_publishes + b.s_publishes;
  a.s_mutations <- a.s_mutations + b.s_mutations;
  a.s_sites <- a.s_sites + b.s_sites

let lint_tree ?(scope_of = Scope.of_path) roots =
  let files = ml_files roots in
  let findings = ref [] in
  let defs = ref [] in
  let per_lib : (string, Rules.stats) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun file ->
      let scope = scope_of file in
      let r = lint_file ~scope file in
      findings := List.rev_append r.fr_findings !findings;
      defs := List.rev_append r.fr_defs !defs;
      match (r.fr_stats, Scope.lib_of_path file) with
      | Some s, Some lib ->
          let acc =
            match Hashtbl.find_opt per_lib lib with
            | Some acc -> acc
            | None ->
                let z = Rules.stats_zero () in
                Hashtbl.add per_lib lib z;
                z
          in
          merge_stats acc s
      | _ -> ())
    files;
  Rules.check_duplicate_tags
    ~emit:(fun f -> findings := f :: !findings)
    !defs;
  {
    findings = List.sort Finding.compare !findings;
    per_lib =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_lib []);
    files_linted = List.length files;
  }

(* --- mutation self-check --------------------------------------------------- *)

(* The static analogue of the fault-injection harness's sanity check: if we
   delete the clwb on the FAST&FAIR split path, does pmlint notice without
   running anything?  Two mutations, each line-preserving (the matched line
   is replaced by "();" at the same indentation, so every other finding
   keeps its line number and set-difference isolates the mutation):

     A. drop the [persist_node ~site:s_split sib] call — the freshly built
        sibling is published by [P.commit_ref] with its cache lines dirty;
     B. drop the [clwb_all ~site n.*] lines inside [persist_node] itself —
        the helper keeps its fence but loses its flushes, so it no longer
        clears [pending] and every publish after it goes unflushed. *)

type mutation = { mut_name : string; mut_match : string }

let ff_mutations =
  [
    { mut_name = "drop persist_node on split path"; mut_match = "persist_node ~site:s_split" };
    { mut_name = "drop clwb_all inside persist_node"; mut_match = "clwb_all ~site n." };
  ]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let mutate_lines src ~mut =
  let lines = String.split_on_char '\n' src in
  let hits = ref 0 in
  let lines =
    List.map
      (fun line ->
        if contains ~sub:mut.mut_match line then begin
          incr hits;
          let indent =
            let rec go i =
              if i < String.length line && line.[i] = ' ' then go (i + 1)
              else i
            in
            go 0
          in
          String.make indent ' ' ^ "();"
        end
        else line)
      lines
  in
  (String.concat "\n" lines, !hits)

type mutation_outcome = {
  mo_name : string;
  mo_hits : int;  (* source lines the mutation touched *)
  mo_new : string list;  (* findings present only in the mutated lint *)
  mo_caught : bool;
}

let mutation_check ~file =
  let src = Srcparse.read_file file in
  let scope = Scope.of_path file in
  let rendered r = List.map Finding.render r.fr_findings in
  let pristine = rendered (lint_string ~file ~scope src) in
  List.map
    (fun mut ->
      let mutated_src, hits = mutate_lines src ~mut in
      let mutated = rendered (lint_string ~file ~scope mutated_src) in
      let fresh =
        List.filter (fun f -> not (List.mem f pristine)) mutated
      in
      let caught =
        hits > 0
        && List.exists (fun f -> contains ~sub:"[R2]" f || contains ~sub:"[R3]" f) fresh
      in
      { mo_name = mut.mut_name; mo_hits = hits; mo_new = fresh; mo_caught = caught })
    ff_mutations

(* --- CLI entry ------------------------------------------------------------- *)

type opts = {
  roots : string list;
  baseline : string option;
  update_baseline : bool;
  run_mutation_check : bool;
  mutation_file : string;
  show_stats : bool;
  all_rules : bool;  (* force Scope.all, for fixture trees outside lib/ *)
}

let default_opts =
  {
    roots = [ "lib" ];
    baseline = None;
    update_baseline = false;
    run_mutation_check = false;
    mutation_file = "lib/fastfair/fastfair.ml";
    show_stats = false;
    all_rules = false;
  }

let print_stats out tree =
  Printf.fprintf out
    "pmlint stats: %d files linted\n\
     %-10s %5s %6s %7s %6s %9s %9s %5s\n"
    tree.files_linted "lib" "fns" "stores" "flushes" "fences" "publishes"
    "mutations" "sites";
  List.iter
    (fun (lib, (s : Rules.stats)) ->
      Printf.fprintf out "%-10s %5d %6d %7d %6d %9d %9d %5d\n" lib
        s.Rules.s_functions s.s_stores s.s_flushes s.s_fences s.s_publishes
        s.s_mutations s.s_sites)
    tree.per_lib

(* Returns the process exit code. *)
let run ?(out = stdout) opts =
  let scope_of =
    if opts.all_rules then fun _ -> Scope.all else Scope.of_path
  in
  let tree = lint_tree ~scope_of opts.roots in
  let rendered = List.map Finding.render tree.findings in
  if opts.show_stats then print_stats out tree;
  let lint_failed =
    match opts.baseline with
    | Some path when opts.update_baseline ->
        Baseline.save path ~found:rendered;
        Printf.fprintf out "pmlint: baseline updated (%d findings) -> %s\n"
          (List.length rendered) path;
        false
    | Some path ->
        let d = Baseline.diff ~baseline:(Baseline.load path) ~found:rendered in
        List.iter
          (fun f -> Printf.fprintf out "pmlint: new finding: %s\n" f)
          d.Baseline.fresh;
        List.iter
          (fun b ->
            Printf.fprintf out
              "pmlint: stale baseline entry (fixed? delete its line): %s\n" b)
          d.Baseline.stale;
        let bad = d.Baseline.fresh <> [] || d.Baseline.stale <> [] in
        if not bad then
          Printf.fprintf out
            "pmlint: clean (%d findings, all baselined; %d files)\n"
            (List.length rendered) tree.files_linted;
        bad
    | None ->
        List.iter
          (fun f -> Printf.fprintf out "%s\n" (Finding.render_loc f))
          tree.findings;
        Printf.fprintf out "pmlint: %d findings in %d files\n"
          (List.length rendered) tree.files_linted;
        rendered <> []
  in
  let mutation_failed =
    if not opts.run_mutation_check then false
    else begin
      let outcomes = mutation_check ~file:opts.mutation_file in
      List.iter
        (fun o ->
          Printf.fprintf out "pmlint: mutation %S: %s (%d lines mutated)\n"
            o.mo_name
            (if o.mo_caught then "CAUGHT" else "MISSED")
            o.mo_hits;
          List.iter
            (fun f -> Printf.fprintf out "  new: %s\n" f)
            o.mo_new)
        outcomes;
      List.exists (fun o -> not o.mo_caught) outcomes
    end
  in
  if lint_failed || mutation_failed then 1 else 0
