(* Syntactic classification of the persistence vocabulary.

   pmlint is a Parsetree linter: it never type-checks, so "is this call a
   flush?" is answered by the identifier's shape — the last module of its
   path and its value name.  The tables below encode the repository's
   idiom (module aliases [W]/[R]/[P] for [Pmem.Words]/[Pmem.Refs]/
   [Recipe.Persist] are ubiquitous and load-bearing: index code that
   spells the alias differently is index code a reviewer will also
   misread).  A call the tables don't recognize simply has no modelled
   effect — false negatives are possible by design, false classification
   is what we guard against by requiring the qualifier. *)

(* The persistence effect of one call, as far as the rules care. *)
type effect_ = {
  e_store : bool;  (* writes persistent words/slots *)
  e_flush : bool;  (* issues (or subsumes) a clwb *)
  e_fence : bool;  (* issues (or subsumes) an sfence *)
  e_publish : bool;  (* a visibility commit / sanitize_publish point *)
}

let no_effect = { e_store = false; e_flush = false; e_fence = false; e_publish = false }
let is_effect e = e.e_store || e.e_flush || e.e_fence || e.e_publish

let union a b =
  {
    e_store = a.e_store || b.e_store;
    e_flush = a.e_flush || b.e_flush;
    e_fence = a.e_fence || b.e_fence;
    e_publish = a.e_publish || b.e_publish;
  }

(* Module aliases under which the substrate's word/slot arrays travel. *)
let word_mods = [ "W"; "Words"; "R"; "Refs" ]

(* Aliases of [Recipe.Persist], the conversion-action combinators. *)
let persist_mods = [ "P"; "Persist" ]

let last_mod mods = match List.rev mods with [] -> "" | m :: _ -> m

(* [classify ~mods ~name] for a fully split identifier path: [mods] are the
   module components, [name] the value.  E.g. [Pmem.Words.set] comes in as
   [~mods:["Pmem"; "Words"] ~name:"set"]. *)
let classify ~mods ~name =
  let m = last_mod mods in
  let in_words = List.mem m word_mods in
  let in_persist = List.mem m persist_mods in
  match name with
  | "sfence" -> { no_effect with e_fence = true }
  | "clwb" | "clwb_all" | "clwb_all_dirty" -> { no_effect with e_flush = true }
  | "flush_word" | "persist_new_words" | "persist_new_refs" ->
      { no_effect with e_flush = true; e_fence = true }
  | "flush_ref" when in_persist || m = "Pmem" ->
      { no_effect with e_flush = true; e_fence = true }
  | "flush" when in_persist -> { no_effect with e_flush = true; e_fence = true }
  | ("commit" | "commit_ref" | "commit_cas" | "commit_cas_ref") when in_persist
    ->
      { e_store = true; e_flush = true; e_fence = true; e_publish = true }
  | "sanitize_publish" -> { no_effect with e_publish = true }
  | "set" when in_words -> { no_effect with e_store = true }
  | ("store" | "store_ref") when in_persist -> { no_effect with e_store = true }
  | ("cas" | "fetch_add") when in_words -> { no_effect with e_store = true }
  | _ -> no_effect

(* Whether this exact identifier is a *bare* fence instruction — the only
   shape rule R3a reports on (composite calls contain their own clwb). *)
let is_bare_sfence ~mods:_ ~name = name = "sfence"

(* --- R1: the raw-mutation catalog ---------------------------------------- *)

type mutation =
  | Ref_assign  (* :=, incr, decr *)
  | Array_mut  (* Array.set / a.(i) <- v / Bytes.set *)
  | Atomic_mut  (* Atomic.set / compare_and_set / exchange / fetch_and_add *)

let mutation_doc = function
  | Ref_assign -> "ref assignment"
  | Array_mut -> "array mutation"
  | Atomic_mut -> "atomic mutation"

(* [mutation_of ~mods ~name] classifies an applied identifier as a raw
   mutation, or returns [None].  The parser desugars [a.(i) <- v] into an
   application of [Array.set], so the sugar is covered by the same row. *)
let mutation_of ~mods ~name =
  let m = last_mod mods in
  match name with
  | ":=" -> Some Ref_assign
  | ("incr" | "decr") when m = "" || m = "Stdlib" -> Some Ref_assign
  | ("set" | "unsafe_set") when m = "Array" || m = "Bytes" -> Some Array_mut
  | ("set" | "compare_and_set" | "exchange" | "fetch_and_add" | "incr"
    | "decr")
    when m = "Atomic" ->
      Some Atomic_mut
  | _ -> None

(* Local bindings whose target is known-volatile by construction: a ref or
   array allocated inside the function can never live in simulated PM (the
   substrate only hands out {!Pmem.Words}/{!Refs}), so mutating it is not
   an escape.  [local_maker ~mods ~name] recognizes the allocating call. *)
let local_maker ~mods ~name =
  let m = last_mod mods in
  match name with
  | "ref" when m = "" || m = "Stdlib" -> true
  | ("make" | "init" | "copy" | "of_list" | "create" | "sub")
    when m = "Array" || m = "Bytes" || m = "Atomic" || m = "Buffer" ->
      true
  | _ -> false
