(* Keys represented as single 8-byte words inside B+-tree nodes.

   FAST & FAIR (and BwTree) store keys as one word per slot.  The paper runs
   them in two modes (§7):

   - randint: the word *is* the 8-byte integer key;
   - string: "we implement string type support for FAST & FAIR by replacing
     integer key entries with pointers to the address of the actual string
     key" — the word is a handle into a persistent string pool, and every
     comparison dereferences it (the pointer chase that costs B+ trees 8x
     more LLC misses in Fig 4d).

   Probes arrive as byte strings (the common ordered-index key type); integer
   mode expects the 8-byte big-endian encoding of {!Util.Keys.encode_int}. *)

type t = {
  kind : string;
  intern : string -> int;
      (** Turn a key into its in-node word; string mode appends to the
          persistent pool (with flush). *)
  compare_probe : string -> int -> int;
      (** Compare a probe key against an in-node word. *)
  compare_words : int -> int -> int;
      (** Compare two in-node words (dereferencing in string mode). *)
  to_key : int -> string;  (** Recover the key bytes from an in-node word. *)
}

(** Integer keys: word = key, comparisons are plain integer compares. *)
let int_space () =
  {
    kind = "int";
    intern = Util.Keys.decode_int;
    compare_probe = (fun probe w -> compare (Util.Keys.decode_int probe) w);
    compare_words = compare;
    to_key = Util.Keys.encode_int;
  }

(* Persistent string pool: fixed segment directory, lock-free append via a
   fetch-and-add cursor.  Each dereference goes through the segment's cache
   lines, charging the LLC simulator for the pointer chase. *)
let pool_segment_size = 4096
let pool_max_segments = 16384

type pool = {
  segments : string Pmem.Refs.t option Atomic.t array;
  cursor : int Atomic.t;
  grow : Mutex.t;
}

let make_pool () =
  {
    segments = Array.init pool_max_segments (fun _ -> Atomic.make None);
    cursor = Atomic.make 0;
    grow = Mutex.create ();
  }

let rec pool_segment p s =
  match Atomic.get p.segments.(s) with
  | Some seg -> seg
  | None ->
      Mutex.lock p.grow;
      if Atomic.get p.segments.(s) = None then begin
        (* Flat slots: each is written exactly once (at a fresh cursor
           index) before the interned word is published through the
           owning index's atomic commit, so readers are ordered by that
           commit, never by the pool slot itself. *)
        let seg =
          Pmem.Refs.make ~name:"wordkey.pool" ~atomic:false pool_segment_size
            ""
        in
        (* Persist the segment's initial fill before any handle into it can
           be published (Condition #1 — same as every node allocation). *)
        Pmem.Refs.clwb_all seg;
        Pmem.sfence ();
        Atomic.set p.segments.(s) (Some seg) [@pm.volatile]
      end;
      Mutex.unlock p.grow;
      pool_segment p s

let pool_add p key =
  let idx = Atomic.fetch_and_add p.cursor 1 [@pm.volatile] in
  let seg = pool_segment p (idx / pool_segment_size) in
  let off = idx mod pool_segment_size in
  Pmem.Refs.set seg off key;
  Pmem.Refs.clwb seg off;
  Pmem.sfence ();
  idx

let pool_get p idx =
  let seg = pool_segment p (idx / pool_segment_size) in
  Pmem.Refs.get seg (idx mod pool_segment_size)

(** String keys behind pointers: word = pool handle; every comparison
    dereferences the pool (an extra simulated-cache-line access) and then
    compares byte strings. *)
let string_space () =
  let p = make_pool () in
  {
    kind = "string";
    intern = (fun key -> pool_add p key);
    compare_probe = (fun probe w -> String.compare probe (pool_get p w));
    compare_words = (fun a b -> String.compare (pool_get p a) (pool_get p b));
    to_key = (fun w -> pool_get p w);
  }
