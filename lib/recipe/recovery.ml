(* Shared recovery/leak-sweep accounting.

   Every index exposes [recover : t -> unit] (structural repair: §2.4's
   lazy-repair actions run eagerly at restart) and
   [leak_sweep : ?reclaim:bool -> t -> Recipe.Recovery.stats] (a
   reachability walk over the persistent structure that reports — and with
   [~reclaim:true] reclaims — slots a crash orphaned).  The stats record is
   what those return and what the bench JSON export tabulates:

   - [repaired]: structural leftovers the last [recover] completed or
     rolled forward (half-finished resizes adopted, torn splits replayed,
     delta chains consolidated, duplicate replicas cleared);
   - [orphans]: slots reachable from the object's own arrays but not from
     the published structure (allocated-but-unlinked children, permutation
     holes, unreachable page ids);
   - [reclaimed]: orphans actually freed by this sweep. *)

type stats = { repaired : int; orphans : int; reclaimed : int }

let zero = { repaired = 0; orphans = 0; reclaimed = 0 }

let add a b =
  {
    repaired = a.repaired + b.repaired;
    orphans = a.orphans + b.orphans;
    reclaimed = a.reclaimed + b.reclaimed;
  }

let pp fmt s =
  Format.fprintf fmt "repaired=%d orphans=%d reclaimed=%d" s.repaired s.orphans
    s.reclaimed
