(* Conversion-action combinators (paper §4.3–§4.5, §8).

   The mechanical part of every RECIPE conversion is "insert cache line flush
   and memory fence instructions after each store".  §8 notes the authors
   then hand-optimized the converted indexes by *coalescing* flushes — a
   store whose line will be flushed again before the commit point need not
   flush immediately, only the stores surrounding the final atomic commit
   must be fenced.

   Index code in this repository writes through these combinators so both
   behaviours exist in one code path, giving the flush-coalescing ablation
   experiment:

   - [store]/[store_ref]: an ordinary store on the path to a commit point.
     Coalesced mode (default, what §6 ships): no flush here — the commit
     flush covers the whole line.  Naive mode (the literal conversion
     action): flush + fence immediately.
   - [commit]/[commit_ref]: the final atomic store of the operation — always
     followed by flush + fence, in both modes. *)

(* Default: the hand-coalesced behaviour the paper evaluates. *)
let naive = ref false

(** Select the literal flush-after-every-store conversion (for the ablation
    bench); [false] restores coalesced flushing. *)
let set_naive b = naive := b

(* Every combinator takes an optional [?site] (an {!Obs.Site.t}: index ×
   structural location) forwarded to the flush/fence primitives, feeding the
   per-site attribution of the bench JSON export. *)

let store ?site w i v =
  Pmem.Words.set w i v;
  if !naive then begin
    Pmem.Words.clwb ?site w i;
    Pmem.sfence ?site ()
  end

let store_ref ?site r i v =
  Pmem.Refs.set r i v;
  if !naive then begin
    Pmem.Refs.clwb ?site r i;
    Pmem.sfence ?site ()
  end

(** Commit store: make the operation visible and durable.  Flush + fence
    always. *)
let commit ?site w i v =
  Pmem.Words.set w i v;
  Pmem.Words.clwb ?site w i;
  Pmem.sfence ?site ()

let commit_ref ?site r i v =
  Pmem.Refs.set r i v;
  Pmem.Refs.clwb ?site r i;
  Pmem.sfence ?site ()

(** Commit CAS: the single-CAS visibility points of Condition #1/#2 indexes
    (BwTree mapping-table install, pointer swaps).  Flushes only when the CAS
    succeeds — P-BwTree's optimization from §6.3: the first flush of an
    indirect pointer persists the most recent successful CAS. *)
let commit_cas_ref ?site r i ~expected ~desired =
  let ok = Pmem.Refs.cas r i ~expected ~desired in
  if ok then begin
    Pmem.Refs.clwb ?site r i;
    Pmem.sfence ?site ()
  end;
  ok

let commit_cas ?site w i ~expected ~desired =
  let ok = Pmem.Words.cas w i ~expected ~desired in
  if ok then begin
    Pmem.Words.clwb ?site w i;
    Pmem.sfence ?site ()
  end;
  ok

(** Flush + fence a line that was written with [store] in coalesced mode —
    used before a dependent store must be ordered after it (the "previous
    state is persisted first" rule of Condition #2). *)
let flush ?site w i =
  Pmem.Words.clwb ?site w i;
  Pmem.sfence ?site ()

let flush_ref ?site r i =
  Pmem.Refs.clwb ?site r i;
  Pmem.sfence ?site ()

(** Persist a freshly initialized object before it is linked into the
    structure (every line flushed, one fence). *)
let persist_new_words ?site w =
  Pmem.Words.clwb_all ?site w;
  Pmem.sfence ?site ()

let persist_new_refs ?site r =
  Pmem.Refs.clwb_all ?site r;
  Pmem.sfence ?site ()
