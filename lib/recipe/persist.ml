(* Conversion-action combinators (paper §4.3–§4.5, §8).

   The mechanical part of every RECIPE conversion is "insert cache line flush
   and memory fence instructions after each store".  §8 notes the authors
   then hand-optimized the converted indexes by *coalescing* flushes — a
   store whose line will be flushed again before the commit point need not
   flush immediately, only the stores surrounding the final atomic commit
   must be fenced.

   Index code in this repository writes through these combinators so both
   behaviours exist in one code path, giving the flush-coalescing ablation
   experiment:

   - [store]/[store_ref]: an ordinary store on the path to a commit point.
     Coalesced mode (default, what §6 ships): no flush here — the commit
     flush covers the whole line.  Naive mode (the literal conversion
     action): flush + fence immediately.
   - [commit]/[commit_ref]: the final atomic store of the operation — always
     followed by flush + fence, in both modes. *)

(* Default: the hand-coalesced behaviour the paper evaluates. *)
let naive = ref false

(** Select the literal flush-after-every-store conversion (for the ablation
    bench); [false] restores coalesced flushing. *)
let[@pm.volatile] set_naive b = naive := b

(* --- group-commit deferral (the kvserve batch executor's mode) -----------

   Per-operation persistence pays one commit flush + one fence per write.
   The service layer's group-persist executor amortizes that cost: while
   the calling domain has group mode on, the commit combinators perform
   their store (the operation becomes *visible* immediately, exactly as
   before) but defer the trailing clwb + sfence, recording the commit's
   cache line in the domain's table; {!group_flush} then flushes every
   recorded line once — deduplicated per line, which is where the
   flushes/op saving comes from — and issues a single fence for the whole
   batch.  The executor acknowledges its clients only after that fence, so
   an acknowledged operation is durable, same as per-op mode; an
   unacknowledged one may be lost wholesale by a crash, which is the
   standard group-commit contract.

   Ordering safety: only the *commit* flush+fence is deferred.  Explicit
   ordering flushes ([flush], [persist_new_*]) — the "previous state is
   persisted first" actions of Condition #2 — still execute eagerly, so
   every deferred commit's prerequisites are durable by the time the commit
   word itself is flushed.  A crash therefore loses some suffix-subset of
   the deferred single-word commits, each of which is individually a legal
   pre/post state — the same states per-operation crash testing already
   explores — plus unreachable (leak-swept) garbage.  DESIGN.md §10 gives
   the full argument.

   Both the mode flag and the deferral table are domain-local (DLS): a
   shard worker defers only its own commits and flushes only its own lines,
   so concurrently running servers — group or per-op — cannot observe or
   disturb each other's pending lines.  In particular, starting or stopping
   one server never drops another server's deferred commits (which would
   let its workers ack writes whose commit lines were never flushed).  No
   locking is needed: a domain's table is touched by that domain alone.

   --- epochs (buffered durable linearizability) ---------------------------

   The epoch generalization (DESIGN.md §12) keeps the same deferral table
   but decouples the fence from the batch: the domain counts *epochs* — a
   monotonically increasing number naming "everything deferred since the
   last fence" — and {!epoch_advance} is the only place the fence happens:
   it flushes each dirty line once, issues one fence, marks the open epoch
   persisted and opens the next.  An executor that acks only operations
   whose epoch is persisted provides buffered durable linearizability in
   the sense of Ben-David et al. (Delay-Free Concurrency on Faulty
   Persistent Memory): the critical path runs fence-free, durability
   advances at epoch boundaries, and a crash loses at most the *unacked*
   suffix — the open epoch — never an acked operation.

   Under sanitize mode the commit combinators no longer skip their
   publication check while deferral is on — they *defer* it: the check runs
   at the epoch fence ({!group_flush}/{!epoch_advance}), after the sfence,
   which is exactly when the buffered contract first allows the commit to
   be acknowledged.  A store the operation relied on that never got flushed
   (neither eagerly nor by the epoch flush) is reported there as an
   unpersisted publish, so moving the fence cannot silently weaken RECIPE
   Condition #1/#2 — the sanitizer follows the fence. *)

type group_state = {
  mutable on : bool;
  mutable epoch : int;  (* the open (accumulating) epoch, starts at 1 *)
  mutable persisted : int;  (* highest epoch whose fence has run *)
  tbl : (int, unit -> bool) Hashtbl.t;
      (* line id -> the flush thunk that persists it (first recording wins;
         any thunk for the line flushes the same bytes).  A thunk returns
         [false] when it found the line already persisted — an eager flush
         (combinator or raw index clwb) superseded the deferred one — and
         skips the clwb, which the sanitizer would report as redundant. *)
  mutable pubs : (unit -> unit) list;
      (* deferred sanitizer publication checks of the open epoch, run after
         the epoch fence; only populated under sanitize mode. *)
}

let group_key =
  Domain.DLS.new_key (fun () ->
      { on = false; epoch = 1; persisted = 0; tbl = Hashtbl.create 64;
        pubs = [] })

let[@inline] group_st () = Domain.DLS.get group_key

(** Enable/disable group-commit deferral for the *calling domain* (each
    shard worker opts in for itself).  Enabling (re)starts the epoch
    numbering at 1 with nothing persisted; disabling clears the domain's
    own pending table — a worker stopping mid-batch must not leak deferred
    lines into the next phase — and cannot affect any other domain. *)
let[@pm.volatile] set_group b =
  let st = group_st () in
  st.on <- b;
  if b then begin
    st.epoch <- 1;
    st.persisted <- 0
  end;
  if not b then begin
    Hashtbl.reset st.tbl;
    st.pubs <- []
  end

let group_enabled () = (group_st ()).on

let defer line thunk =
  let t = (group_st ()).tbl in
  if not (Hashtbl.mem t line) then Hashtbl.add t line thunk

(* An explicit flush of a deferred line supersedes the deferred one (and
   avoids a redundant clwb at batch end, which the sanitizer would report). *)
let group_drop line = Hashtbl.remove (group_st ()).tbl line

(** Deferred commit lines recorded by the calling domain. *)
let group_pending () = Hashtbl.length (group_st ()).tbl

(** Forget the calling domain's deferred lines (and deferred publication
    checks) without flushing — the crashed-worker path: a simulated power
    failure discards those lines anyway. *)
let[@pm.volatile] group_reset () =
  let st = group_st () in
  Hashtbl.reset st.tbl;
  st.pubs <- []

(** Flush every line the calling domain deferred (each at most once —
    lines an eager flush already persisted are skipped), then issue one
    fence for the whole batch.  No-op when nothing is pending, so a
    read-only batch costs no fence.  Returns the number of lines actually
    flushed — the executor's mean-batch-coalescing metric.

    Under sanitize mode, the deferred publication checks of everything
    committed since the last flush run here, after the fence — the point
    where the buffered-durability contract first permits an ack. *)
let[@pm.volatile] group_flush ?site () =
  let st = group_st () in
  let n =
    if Hashtbl.length st.tbl = 0 then 0
    else begin
      (* Reset before running thunks: a thunk may crash (injected fault),
         and the batch is then abandoned wholesale — [group_reset] by the
         catcher must not replay half of it. *)
      let thunks = Hashtbl.fold (fun _ th acc -> th :: acc) st.tbl [] in
      Hashtbl.reset st.tbl;
      let n =
        List.fold_left (fun acc th -> if th () then acc + 1 else acc) 0 thunks
      in
      Pmem.sfence ?site ();
      n
    end
  in
  (match st.pubs with
  | [] -> ()
  | ps ->
      st.pubs <- [];
      (* Commit order: the list was consed, so reverse before checking. *)
      List.iter (fun check -> check ()) (List.rev ps));
  n

(* --- epochs --------------------------------------------------------------- *)

(** Test-only mutation: "delete" the epoch fence.  When set, an
    {!epoch_advance} drops the open epoch's deferred lines without flushing
    or fencing but still reports the epoch as persisted — the bug class the
    epoch crash campaign must catch as lost acknowledged operations. *)
let mutate_drop_epoch_flush = ref false

(** The calling domain's open (accumulating) epoch number. *)
let epoch_current () = (group_st ()).epoch

(** The highest epoch the calling domain has persisted. *)
let epoch_persisted () = (group_st ()).persisted

(** Close the calling domain's open epoch: flush each deferred commit line
    once, issue one fence for all of them (none when nothing was deferred —
    an empty epoch advances for free), mark the epoch persisted, and open
    the next.  Returns [(e, lines)]: the newly persisted epoch number and
    the count of lines actually flushed.  After this returns, every commit
    tagged with an epoch [<= e] is durable and may be acknowledged. *)
let[@pm.volatile] epoch_advance ?site () =
  let st = group_st () in
  let lines =
    if !mutate_drop_epoch_flush then begin
      Hashtbl.reset st.tbl;
      st.pubs <- [];
      0
    end
    else group_flush ?site ()
  in
  st.persisted <- st.epoch;
  st.epoch <- st.epoch + 1;
  (st.persisted, lines)

(* Every combinator takes an optional [?site] (an {!Obs.Site.t}: index ×
   structural location) forwarded to the flush/fence primitives, feeding the
   per-site attribution of the bench JSON export.

   Under sanitize mode ({!Pmem.Mode.f_sanitize}) the combinators do two more
   things, both free when the mode is off:

   - the [?site] is published to the per-domain store-site context around
     the store itself, so the sanitizer can attribute a line's *store* (not
     just its flushes) when it later reports the line;
   - the commit combinators mark their store as a *publication point* via
     [sanitize_publish]: these are the visibility commits of the conversion
     discipline, exactly where RECIPE Condition #1/#2 requires everything
     reachable to already be persisted.  Raw substrate stores (private
     initialization of unpublished structure) are deliberately not checked. *)

let[@inline] sanitizing () = !Pmem.Mode.flags land Pmem.Mode.f_sanitize <> 0

let store ?site w i v =
  if sanitizing () then begin
    Pmem.Sanhook.set_site site;
    Pmem.Words.set w i v;
    Pmem.Sanhook.clear_site ()
  end
  else Pmem.Words.set w i v;
  if !naive then begin
    Pmem.Words.clwb ?site w i;
    Pmem.sfence ?site ()
  end

let store_ref ?site r i v =
  if sanitizing () then begin
    Pmem.Sanhook.set_site site;
    Pmem.Refs.set r i v;
    Pmem.Sanhook.clear_site ()
  end
  else Pmem.Refs.set r i v;
  if !naive then begin
    Pmem.Refs.clwb ?site r i;
    Pmem.sfence ?site ()
  end

(* Run the publication check now (per-op persistence) or park it on the
   calling domain's deferred list to run after the epoch/batch fence —
   the line is intentionally unpersisted until that fence, and the executor
   acks only after it, so the fence is where the check belongs. *)
let[@inline] [@pm.volatile] publish_now_or_deferred check =
  let st = group_st () in
  if st.on then st.pubs <- check :: st.pubs else check ()

(** Commit store: make the operation visible and durable.  Flush + fence
    always — or, in group mode, deferred to the batch's {!group_flush} /
    the epoch's {!epoch_advance} (the publication check moves to the same
    fence: see [publish_now_or_deferred]). *)
let[@pm.deferred] commit ?site w i v =
  if sanitizing () then begin
    Pmem.Sanhook.set_site site;
    Pmem.Words.set w i v;
    Pmem.Sanhook.clear_site ();
    publish_now_or_deferred (fun () -> Pmem.Words.sanitize_publish ?site w i)
  end
  else Pmem.Words.set w i v;
  if (group_st ()).on then
    defer
      (Pmem.Words.global_line w i)
      (fun () ->
        Pmem.Words.line_dirty w i
        && begin
             Pmem.Words.clwb ?site w i;
             true
           end)
  else begin
    Pmem.Words.clwb ?site w i;
    Pmem.sfence ?site ()
  end

let[@pm.deferred] commit_ref ?site r i v =
  if sanitizing () then begin
    Pmem.Sanhook.set_site site;
    Pmem.Refs.set r i v;
    Pmem.Sanhook.clear_site ();
    publish_now_or_deferred (fun () -> Pmem.Refs.sanitize_publish ?site r i)
  end
  else Pmem.Refs.set r i v;
  if (group_st ()).on then
    defer
      (Pmem.Refs.global_line r i)
      (fun () ->
        Pmem.Refs.line_dirty r i
        && begin
             Pmem.Refs.clwb ?site r i;
             true
           end)
  else begin
    Pmem.Refs.clwb ?site r i;
    Pmem.sfence ?site ()
  end

(** Commit CAS: the single-CAS visibility points of Condition #1/#2 indexes
    (BwTree mapping-table install, pointer swaps).  Flushes only when the CAS
    succeeds — P-BwTree's optimization from §6.3: the first flush of an
    indirect pointer persists the most recent successful CAS. *)
let[@pm.deferred] commit_cas_ref ?site r i ~expected ~desired =
  if sanitizing () then Pmem.Sanhook.set_site site;
  let ok = Pmem.Refs.cas r i ~expected ~desired in
  if sanitizing () then begin
    Pmem.Sanhook.clear_site ();
    if ok then
      publish_now_or_deferred (fun () -> Pmem.Refs.sanitize_publish ?site r i)
  end;
  if ok then
    if (group_st ()).on then
      defer
      (Pmem.Refs.global_line r i)
      (fun () ->
        Pmem.Refs.line_dirty r i
        && begin
             Pmem.Refs.clwb ?site r i;
             true
           end)
    else begin
      Pmem.Refs.clwb ?site r i;
      Pmem.sfence ?site ()
    end;
  ok

let[@pm.deferred] commit_cas ?site w i ~expected ~desired =
  if sanitizing () then Pmem.Sanhook.set_site site;
  let ok = Pmem.Words.cas w i ~expected ~desired in
  if sanitizing () then begin
    Pmem.Sanhook.clear_site ();
    if ok then
      publish_now_or_deferred (fun () -> Pmem.Words.sanitize_publish ?site w i)
  end;
  if ok then
    if (group_st ()).on then
      defer
      (Pmem.Words.global_line w i)
      (fun () ->
        Pmem.Words.line_dirty w i
        && begin
             Pmem.Words.clwb ?site w i;
             true
           end)
    else begin
      Pmem.Words.clwb ?site w i;
      Pmem.sfence ?site ()
    end;
  ok

(** Flush + fence a line that was written with [store] in coalesced mode —
    used before a dependent store must be ordered after it (the "previous
    state is persisted first" rule of Condition #2). *)
let flush ?site w i =
  if (group_st ()).on then group_drop (Pmem.Words.global_line w i);
  Pmem.Words.clwb ?site w i;
  Pmem.sfence ?site ()

let flush_ref ?site r i =
  if (group_st ()).on then group_drop (Pmem.Refs.global_line r i);
  Pmem.Refs.clwb ?site r i;
  Pmem.sfence ?site ()

(** Persist a freshly initialized object before it is linked into the
    structure (every line flushed, one fence). *)
let persist_new_words ?site w =
  Pmem.Words.clwb_all ?site w;
  Pmem.sfence ?site ()

let persist_new_refs ?site r =
  Pmem.Refs.clwb_all ?site r;
  Pmem.sfence ?site ()
