(* Conversion-action combinators (paper §4.3–§4.5, §8).

   The mechanical part of every RECIPE conversion is "insert cache line flush
   and memory fence instructions after each store".  §8 notes the authors
   then hand-optimized the converted indexes by *coalescing* flushes — a
   store whose line will be flushed again before the commit point need not
   flush immediately, only the stores surrounding the final atomic commit
   must be fenced.

   Index code in this repository writes through these combinators so both
   behaviours exist in one code path, giving the flush-coalescing ablation
   experiment:

   - [store]/[store_ref]: an ordinary store on the path to a commit point.
     Coalesced mode (default, what §6 ships): no flush here — the commit
     flush covers the whole line.  Naive mode (the literal conversion
     action): flush + fence immediately.
   - [commit]/[commit_ref]: the final atomic store of the operation — always
     followed by flush + fence, in both modes. *)

(* Default: the hand-coalesced behaviour the paper evaluates. *)
let naive = ref false

(** Select the literal flush-after-every-store conversion (for the ablation
    bench); [false] restores coalesced flushing. *)
let set_naive b = naive := b

(* Every combinator takes an optional [?site] (an {!Obs.Site.t}: index ×
   structural location) forwarded to the flush/fence primitives, feeding the
   per-site attribution of the bench JSON export.

   Under sanitize mode ({!Pmem.Mode.f_sanitize}) the combinators do two more
   things, both free when the mode is off:

   - the [?site] is published to the per-domain store-site context around
     the store itself, so the sanitizer can attribute a line's *store* (not
     just its flushes) when it later reports the line;
   - the commit combinators mark their store as a *publication point* via
     [sanitize_publish]: these are the visibility commits of the conversion
     discipline, exactly where RECIPE Condition #1/#2 requires everything
     reachable to already be persisted.  Raw substrate stores (private
     initialization of unpublished structure) are deliberately not checked. *)

let[@inline] sanitizing () = !Pmem.Mode.flags land Pmem.Mode.f_sanitize <> 0

let store ?site w i v =
  if sanitizing () then begin
    Pmem.Sanhook.set_site site;
    Pmem.Words.set w i v;
    Pmem.Sanhook.clear_site ()
  end
  else Pmem.Words.set w i v;
  if !naive then begin
    Pmem.Words.clwb ?site w i;
    Pmem.sfence ?site ()
  end

let store_ref ?site r i v =
  if sanitizing () then begin
    Pmem.Sanhook.set_site site;
    Pmem.Refs.set r i v;
    Pmem.Sanhook.clear_site ()
  end
  else Pmem.Refs.set r i v;
  if !naive then begin
    Pmem.Refs.clwb ?site r i;
    Pmem.sfence ?site ()
  end

(** Commit store: make the operation visible and durable.  Flush + fence
    always. *)
let commit ?site w i v =
  if sanitizing () then begin
    Pmem.Sanhook.set_site site;
    Pmem.Words.set w i v;
    Pmem.Sanhook.clear_site ();
    Pmem.Words.sanitize_publish ?site w i
  end
  else Pmem.Words.set w i v;
  Pmem.Words.clwb ?site w i;
  Pmem.sfence ?site ()

let commit_ref ?site r i v =
  if sanitizing () then begin
    Pmem.Sanhook.set_site site;
    Pmem.Refs.set r i v;
    Pmem.Sanhook.clear_site ();
    Pmem.Refs.sanitize_publish ?site r i
  end
  else Pmem.Refs.set r i v;
  Pmem.Refs.clwb ?site r i;
  Pmem.sfence ?site ()

(** Commit CAS: the single-CAS visibility points of Condition #1/#2 indexes
    (BwTree mapping-table install, pointer swaps).  Flushes only when the CAS
    succeeds — P-BwTree's optimization from §6.3: the first flush of an
    indirect pointer persists the most recent successful CAS. *)
let commit_cas_ref ?site r i ~expected ~desired =
  if sanitizing () then Pmem.Sanhook.set_site site;
  let ok = Pmem.Refs.cas r i ~expected ~desired in
  if sanitizing () then begin
    Pmem.Sanhook.clear_site ();
    if ok then Pmem.Refs.sanitize_publish ?site r i
  end;
  if ok then begin
    Pmem.Refs.clwb ?site r i;
    Pmem.sfence ?site ()
  end;
  ok

let commit_cas ?site w i ~expected ~desired =
  if sanitizing () then Pmem.Sanhook.set_site site;
  let ok = Pmem.Words.cas w i ~expected ~desired in
  if sanitizing () then begin
    Pmem.Sanhook.clear_site ();
    if ok then Pmem.Words.sanitize_publish ?site w i
  end;
  if ok then begin
    Pmem.Words.clwb ?site w i;
    Pmem.sfence ?site ()
  end;
  ok

(** Flush + fence a line that was written with [store] in coalesced mode —
    used before a dependent store must be ordered after it (the "previous
    state is persisted first" rule of Condition #2). *)
let flush ?site w i =
  Pmem.Words.clwb ?site w i;
  Pmem.sfence ?site ()

let flush_ref ?site r i =
  Pmem.Refs.clwb ?site r i;
  Pmem.sfence ?site ()

(** Persist a freshly initialized object before it is linked into the
    structure (every line flushed, one fence). *)
let persist_new_words ?site w =
  Pmem.Words.clwb_all ?site w;
  Pmem.sfence ?site ()

let persist_new_refs ?site r =
  Pmem.Refs.clwb_all ?site r;
  Pmem.sfence ?site ()
