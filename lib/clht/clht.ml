(* P-CLHT — persistent cache-line hash table (paper §6.2).

   Layout: the whole bucket array is ONE flat {!Pmem.Words} arena, one
   bucket per simulated 64-byte cache line — exactly the C layout the paper
   converts: keys in words 0..2, values in words 3..5 of each line (words
   6..7 model the lock and next-pointer slots; the lock itself is volatile
   and overflow chains hang off a separate atomic pointer table).  A lookup
   is therefore a hash, one arena line read, and nothing else: no bucket
   record, no per-bucket Words object, no chunk indirection — the
   dependent-load chain of the hot path is the table pointer plus the arena
   line, as on the real hardware.

   Overflow buckets (rare: resize keeps the load factor under 2/3) are
   linked records published through an [~atomic] {!Pmem.Refs} slot per head
   bucket, so lock-free readers acquire the freshly filled bucket's plain
   stores through the link's release/acquire edge.

   Persistence (Condition #1): an insert writes the value word, then commits
   by writing the key word — the single atomic visibility point — and flushes
   the line once.  A delete commits by zeroing the key word.  Rehashing
   copies into a fresh table and commits with one atomic table-pointer swap.

   Concurrent resize protocol: the resizer takes the resize lock, then every
   head-bucket lock of the old table (and never releases them), copies, and
   swaps the table pointer.  Writers acquire a head lock with try-lock and
   re-check the table pointer after acquiring: if it moved, they retry on the
   new table; if they are spinning on a lock the resizer holds, the pointer
   re-read sends them to the new table.  Readers are wait-free on whichever
   table pointer they loaded — the old table stays complete until the swap. *)

module W = Pmem.Words
module R = Pmem.Refs
module P = Recipe.Persist
module Lock = Util.Lock

let name = "P-CLHT"

(* Flush/fence attribution sites (index × structural location). *)
let site = Obs.Site.v ~index:name
let s_alloc = site "alloc-bucket"
let s_insert = site ~crash:true "insert-commit"
let s_chain = site ~crash:true "chain-link"
let s_delete = site "delete-commit"
let s_rehash = site ~crash:true "rehash"
let s_recover = site ~crash:true "recover"

let entries_per_bucket = 3
let words_per_bucket = 8 (* one simulated cache line *)

(* Overflow bucket: its own line of words plus the next link of the chain. *)
type obucket = { words : W.t; next : obucket option R.t }

type table = {
  arena : W.t; (* (mask+1) * 8 words: the flat bucket array *)
  nexts : obucket option R.t; (* per-head overflow chain, atomic links *)
  locks : Lock.t array; (* volatile head locks *)
  mask : int;
}

type t = {
  table : table R.t; (* slot 0: current table pointer *)
  pending : table option R.t; (* resize in flight: the table being built *)
  resize_lock : Lock.t;
  count : int Atomic.t; (* volatile statistic driving the resize trigger *)
  repairs : int Atomic.t; (* leftovers the last [recover] rolled forward *)
}

(* Overflow-bucket words are flat plain cells; the chain link stays atomic —
   it is the publication point through which lock-free readers discover a
   freshly filled overflow bucket, so the link store must be a release. *)
let new_obucket () =
  {
    words = W.make ~name:"clht.bucket" words_per_bucket 0;
    next = R.make ~name:"clht.next" ~atomic:true 1 None;
  }

(* On real hardware the next pointer occupies word 7 of the bucket's single
   cache line, so a bucket flush is ONE clwb.  The simulator forces pointer
   slots into their own lines; to keep the flush counters faithful we flush
   them only when they carry a real pointer — except under the tracked
   modes (shadow, sanitize), where the crash/durability machinery and the
   sanitizer's allocation tracking need every allocated line written back
   explicitly. *)
let[@pm.deferred] persist_obucket ?(site = s_alloc) b =
  W.clwb_all ~site b.words;
  if Pmem.Mode.tracked () || R.get b.next 0 <> None then
    R.clwb_all ~site b.next

let shadow_or_nonempty r =
  Pmem.Mode.tracked ()
  ||
  let n = R.length r in
  let rec any i = i < n && (R.get r i <> None || any (i + 1)) in
  any 0

let new_table n_buckets =
  {
    arena = W.make ~name:"clht.arena" (n_buckets * words_per_bucket) 0;
    nexts = R.make ~name:"clht.nexts" ~atomic:true n_buckets None;
    locks = Array.init n_buckets (fun _ -> Lock.create ());
    mask = n_buckets - 1;
  }

let persist_table tbl =
  W.clwb_all ~site:s_alloc tbl.arena;
  if shadow_or_nonempty tbl.nexts then R.clwb_all ~site:s_alloc tbl.nexts;
  Pmem.sfence ~site:s_alloc ()

(* 48 KB of 64-byte buckets. *)
let default_buckets = 48 * 1024 / 64

let create ?(capacity = default_buckets) () =
  let n = Util.Bits.next_power_of_two (max 4 capacity) in
  let tbl = new_table n in
  persist_table tbl;
  (* Atomic: the table pointer is the resize commit point — the swap
     publishes the whole freshly built table to wait-free readers. *)
  let table = R.make ~name:"clht.table" ~atomic:true 1 tbl in
  R.clwb_all ~site:s_alloc table;
  (* Persistent resize-intent slot: recovery rolls an interrupted rehash
     forward from here. *)
  let pending = R.make ~name:"clht.pending" ~atomic:true 1 None in
  R.clwb_all ~site:s_alloc pending;
  Pmem.sfence ~site:s_alloc ();
  {
    table;
    pending;
    resize_lock = Lock.create ();
    count = Atomic.make 0;
    repairs = Atomic.make 0;
  }

let hash_key k = (k * 0x1CE4E5B9) lxor (k lsr 29)
let bucket_for tbl k = hash_key k land tbl.mask
let length t = Atomic.get t.count

let bucket_count t =
  let tbl = R.get t.table 0 in
  let n = ref (tbl.mask + 1) in
  for h = 0 to tbl.mask do
    let rec walk = function
      | None -> ()
      | Some ob ->
          incr n;
          walk (R.get ob.next 0)
    in
    walk (R.get tbl.nexts h)
  done;
  !n

(* --- Lock-free read path ----------------------------------------------- *)

(* Overflow chains: same slot protocol, record-linked (rare path). *)
let rec chain_lookup k = function
  | None -> None
  | Some ob ->
      let rec slot i =
        if i = entries_per_bucket then chain_lookup k (R.get ob.next 0)
        else if W.get ob.words i = k then begin
          let v = W.get ob.words (i + entries_per_bucket) in
          if W.get ob.words i = k then Some v else slot i
        end
        else slot (i + 1)
      in
      slot 0

let lookup t k =
  let tbl = R.get t.table 0 in
  let h = bucket_for tbl k in
  let base = h * words_per_bucket in
  let rec slot i =
    if i = entries_per_bucket then chain_lookup k (R.get tbl.nexts h)
    else if W.get tbl.arena (base + i) = k then begin
      (* CLHT atomic snapshot: value is valid if the key is unchanged
         after reading it (inserts write value before key). *)
      let v = W.get tbl.arena (base + i + entries_per_bucket) in
      if W.get tbl.arena (base + i) = k then Some v else slot i
    end
    else slot (i + 1)
  in
  slot 0

let iter_table tbl f =
  for h = 0 to tbl.mask do
    let base = h * words_per_bucket in
    for i = 0 to entries_per_bucket - 1 do
      let k = W.get tbl.arena (base + i) in
      if k <> 0 then f k (W.get tbl.arena (base + i + entries_per_bucket))
    done;
    let rec walk = function
      | None -> ()
      | Some ob ->
          for i = 0 to entries_per_bucket - 1 do
            let k = W.get ob.words i in
            if k <> 0 then f k (W.get ob.words (i + entries_per_bucket))
          done;
          walk (R.get ob.next 0)
    in
    walk (R.get tbl.nexts h)
  done

let iter t f = iter_table (R.get t.table 0) f

(* --- Write path --------------------------------------------------------- *)

(* Acquire the head-bucket lock for [k] in the *current* table, retrying
   across concurrent resizes.  Returns the table and head index it locked. *)
let rec lock_head t k =
  let tbl = R.get t.table 0 in
  let h = bucket_for tbl k in
  if Lock.try_lock tbl.locks.(h) then
    if R.get t.table 0 == tbl then (tbl, h)
    else begin
      Lock.unlock tbl.locks.(h);
      lock_head t k
    end
  else begin
    Lock.abort_point ();
    Domain.cpu_relax ();
    lock_head t k
  end

(* Copy-based insert used privately by the resizer and the recovery
   roll-forward: no locks, and each write is flushed as it lands.  The empty
   table is persisted in full before the resize intent publishes, so a
   blanket re-persist after the copy would re-flush every untouched (clean)
   line — the sanitizer rightly reports those as redundant clwbs.  Flushing
   per copied binding keeps every flush on a just-dirtied line, and makes
   the roll-forward flush exactly the bindings it actually re-copies.  The
   caller fences once after the whole copy. *)
let[@pm.deferred] copy_insert ~site tbl k v =
  let h = bucket_for tbl k in
  let base = h * words_per_bucket in
  let fill_ob nb =
    W.set nb.words entries_per_bucket v;
    W.set nb.words 0 k
  in
  let rec ochain ob =
    let rec oslot i =
      if i = entries_per_bucket then
        match R.get ob.next 0 with
        | Some nb -> ochain nb
        | None ->
            let nb = new_obucket () in
            fill_ob nb;
            persist_obucket ~site nb;
            R.set ob.next 0 (Some nb);
            R.clwb ~site ob.next 0
      else if W.get ob.words i = 0 then begin
        W.set ob.words (i + entries_per_bucket) v;
        W.set ob.words i k;
        W.clwb ~site ob.words i
      end
      else oslot (i + 1)
    in
    oslot 0
  in
  let rec slot i =
    if i = entries_per_bucket then
      match R.get tbl.nexts h with
      | Some ob -> ochain ob
      | None ->
          let nb = new_obucket () in
          fill_ob nb;
          persist_obucket ~site nb;
          R.set tbl.nexts h (Some nb);
          R.clwb ~site tbl.nexts h
    else if W.get tbl.arena (base + i) = 0 then begin
      W.set tbl.arena (base + i + entries_per_bucket) v;
      W.set tbl.arena (base + i) k;
      W.clwb ~site tbl.arena base
    end
    else slot (i + 1)
  in
  slot 0

let resize t =
  if Lock.try_lock t.resize_lock then begin
    let old = R.get t.table 0 in
    (* Take every head lock; they are never released — the old table is dead
       after the swap and stalled writers re-read the table pointer. *)
    Array.iter Lock.lock old.locks;
    Pmem.Crash.point ~site:s_rehash ();
    (* Grow 4x: ample headroom so steady-state mixed workloads run without
       further rehashing (§7.2: "when the hash table is sufficiently large,
       P-CLHT performs no rehashing in workload A and B"). *)
    let fresh = new_table (4 * (old.mask + 1)) in
    (* Persist the fresh (still empty) table first — the intent slot must
       never expose unflushed lines — then declare the resize intent before
       copying: a crash anywhere between here and the pending-clear leaves a
       persistent record of the half-finished rehash that [recover] rolls
       forward. *)
    persist_table fresh;
    P.commit_ref ~site:s_rehash t.pending 0 (Some fresh);
    Pmem.Crash.point ~site:s_rehash ();
    let copied = ref 0 in
    iter_table old (fun k v ->
        incr copied;
        copy_insert ~site:s_rehash fresh k v);
    (* One fence orders every per-binding flush, then commit with one atomic
       swap.  Skipped when nothing was copied: the fence after the intent
       publish already ordered everything and this one would be redundant. *)
    if !copied > 0 then Pmem.sfence ~site:s_rehash ();
    Pmem.Crash.point ~site:s_rehash ();
    P.commit_ref ~site:s_rehash t.table 0 fresh;
    Pmem.Crash.point ~site:s_rehash ();
    P.commit_ref ~site:s_rehash t.pending 0 None;
    Lock.unlock t.resize_lock
  end

(* Resize when buckets average two-thirds full — keeps overflow chains (and
   their extra allocation flushes) rare, matching CLHT's ~1 flush per
   common-case insert. *)
let maybe_resize t =
  let tbl = R.get t.table 0 in
  let cap = (tbl.mask + 1) * entries_per_bucket in
  if Atomic.get t.count > cap * 2 / 3 then resize t

let insert t k v =
  if k <= 0 then invalid_arg "Clht.insert: key must be positive";
  let tbl, h = lock_head t k in
  let base = h * words_per_bucket in
  (* Walk bucket + chain: fail if present, remember the first free slot.
     [free]: arena slot index, or overflow bucket and slot. *)
  let exception Present in
  let arena_free = ref (-1) in
  let chain_free : (obucket * int) option ref = ref None in
  let last : obucket option ref = ref None in
  let inserted =
    try
      for i = 0 to entries_per_bucket - 1 do
        let kk = W.get tbl.arena (base + i) in
        if kk = k then raise Present;
        if kk = 0 && !arena_free < 0 then arena_free := base + i
      done;
      let rec walk = function
        | None -> ()
        | Some ob ->
            last := Some ob;
            for i = 0 to entries_per_bucket - 1 do
              let kk = W.get ob.words i in
              if kk = k then raise Present;
              if kk = 0 && !chain_free = None then chain_free := Some (ob, i)
            done;
            walk (R.get ob.next 0)
      in
      walk (R.get tbl.nexts h);
      (if !arena_free >= 0 then begin
         (* Value first, then the atomic key store commits: one line, one
            flush (§6.2 "only one cache line flush per update"). *)
         let s = !arena_free in
         P.store ~site:s_insert tbl.arena (s + entries_per_bucket) v;
         Pmem.Crash.point ~site:s_insert ();
         P.commit ~site:s_insert tbl.arena s k [@pm.deferred]
       end
       else
         match !chain_free with
         | Some (ob, i) ->
             P.store ~site:s_insert ob.words (i + entries_per_bucket) v;
             Pmem.Crash.point ~site:s_insert ();
             P.commit ~site:s_insert ob.words i k [@pm.deferred]
         | None ->
             (* Chain overflow: build the new bucket, persist it, then commit
                by atomically linking it. *)
             let nb = new_obucket () in
             W.set nb.words entries_per_bucket v;
             W.set nb.words 0 k;
             persist_obucket ~site:s_chain nb;
             Pmem.sfence ~site:s_chain ();
             Pmem.Crash.point ~site:s_chain ();
             (match !last with
             | Some ob -> P.commit_ref ~site:s_chain ob.next 0 (Some nb)
             | None -> P.commit_ref ~site:s_chain tbl.nexts h (Some nb)));
      true
    with Present -> false
  in
  Lock.unlock tbl.locks.(h);
  if inserted then begin
    Atomic.incr t.count [@pm.volatile];
    maybe_resize t
  end;
  inserted

let delete t k =
  if k <= 0 then invalid_arg "Clht.delete: key must be positive";
  let tbl, h = lock_head t k in
  let base = h * words_per_bucket in
  let deleted =
    let rec slot i =
      if i = entries_per_bucket then chain (R.get tbl.nexts h)
      else if W.get tbl.arena (base + i) = k then begin
        (* Deletion commits by zeroing the key word (§6.2). *)
        P.commit ~site:s_delete tbl.arena (base + i) 0;
        true
      end
      else slot (i + 1)
    and chain = function
      | None -> false
      | Some ob ->
          let rec oslot i =
            if i = entries_per_bucket then chain (R.get ob.next 0)
            else if W.get ob.words i = k then begin
              P.commit ~site:s_delete ob.words i 0;
              true
            end
            else oslot (i + 1)
          in
          oslot 0
    in
    slot 0
  in
  Lock.unlock tbl.locks.(h);
  if deleted then Atomic.decr t.count [@pm.volatile];
  deleted

(* --- recovery ----------------------------------------------------------- *)

(* Quiesced membership probe against one specific table (no snapshot
   re-check: recovery runs single-threaded). *)
let find_in_table tbl k =
  let h = bucket_for tbl k in
  let base = h * words_per_bucket in
  let rec slot i =
    if i = entries_per_bucket then chain_lookup k (R.get tbl.nexts h)
    else if W.get tbl.arena (base + i) = k then
      Some (W.get tbl.arena (base + i + entries_per_bucket))
    else slot (i + 1)
  in
  slot 0

(* Structural recovery (§2.4, run eagerly at restart): free every lock via
   the epoch bump, then adopt a half-finished resize.  The [pending] slot is
   the persistent record of the interrupted rehash; rolling it forward is
   idempotent (the copy loop dup-checks against what already persisted), so
   a crash *during* recovery just leaves the same leftover for the next
   attempt.  Finally the volatile count — lost with the DRAM state — is
   rebuilt by iteration. *)
let recover t =
  Lock.new_epoch ();
  Atomic.set t.repairs 0 [@pm.volatile];
  (match R.get t.pending 0 with
  | None -> ()
  | Some fresh ->
      let cur = R.get t.table 0 in
      if fresh == cur then begin
        (* Crashed between the table swap and the pending-clear: the resize
           completed; just retire the intent. *)
        Atomic.incr t.repairs [@pm.volatile];
        P.commit_ref ~site:s_recover t.pending 0 None
      end
      else begin
        (* Crashed mid-copy: finish copying [cur] into [fresh] (each copied
           binding flushes itself; surviving bindings are already persisted
           and are not re-flushed), fence, swap, clear — the tail of
           [resize]. *)
        let before = Atomic.get t.repairs in
        iter_table cur (fun k v ->
            if find_in_table fresh k = None then begin
              copy_insert ~site:s_recover fresh k v;
              Atomic.incr t.repairs [@pm.volatile]
            end);
        if Atomic.get t.repairs > before then
          Pmem.sfence ~site:s_recover ();
        Pmem.Crash.point ~site:s_recover ();
        P.commit_ref ~site:s_recover t.table 0 fresh;
        Pmem.Crash.point ~site:s_recover ();
        P.commit_ref ~site:s_recover t.pending 0 None
      end);
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  Atomic.set t.count !n [@pm.volatile]

(* Reachability-based leak sweep: with an interrupted resize pending, every
   binding already copied into the unpublished table is unreachable from the
   live table pointer.  [~reclaim:true] drops the half-built table (the
   alternative repair to [recover]'s roll-forward — useful after deciding
   the resize should be abandoned). *)
let leak_sweep ?(reclaim = false) t =
  let repaired = Atomic.get t.repairs in
  match R.get t.pending 0 with
  | None -> { Recipe.Recovery.repaired; orphans = 0; reclaimed = 0 }
  | Some fresh ->
      let cur = R.get t.table 0 in
      if fresh == cur then begin
        (* Stale intent on a completed resize: nothing is orphaned. *)
        if reclaim then P.commit_ref ~site:s_recover t.pending 0 None;
        { Recipe.Recovery.repaired; orphans = 0; reclaimed = 0 }
      end
      else begin
        let orphans = ref 0 in
        iter_table fresh (fun _ _ -> incr orphans);
        let reclaimed =
          if reclaim then begin
            P.commit_ref ~site:s_recover t.pending 0 None;
            !orphans
          end
          else 0
        in
        { Recipe.Recovery.repaired; orphans = !orphans; reclaimed }
      end
