(* P-CLHT — persistent cache-line hash table (paper §6.2).

   Layout: one bucket = one simulated cache line of 8 words —
   keys in words 0..2, values in words 3..5 (words 6..7 model the lock and
   next-pointer of the C layout; the lock itself is volatile and the next
   pointer is a pointer slot).  The bucket-chain lock lives at the head
   bucket and covers the whole chain, as in CLHT-LB.

   Persistence (Condition #1): an insert writes the value word, then commits
   by writing the key word — the single atomic visibility point — and flushes
   the line once.  A delete commits by zeroing the key word.  Rehashing
   copies into a fresh table and commits with one atomic table-pointer swap.

   Concurrent resize protocol: the resizer takes the resize lock, then every
   head-bucket lock of the old table (and never releases them), copies, and
   swaps the table pointer.  Writers acquire a head lock with try-lock and
   re-check the table pointer after acquiring: if it moved, they retry on the
   new table; if they are spinning on a lock the resizer holds, the pointer
   re-read sends them to the new table.  Readers are wait-free on whichever
   table pointer they loaded — the old table stays complete until the swap. *)

module W = Pmem.Words
module R = Pmem.Refs
module P = Recipe.Persist
module Lock = Util.Lock

let name = "P-CLHT"

(* Flush/fence attribution sites (index × structural location). *)
let site = Obs.Site.v ~index:name
let s_alloc = site "alloc-bucket"
let s_insert = site ~crash:true "insert-commit"
let s_chain = site ~crash:true "chain-link"
let s_delete = site "delete-commit"
let s_rehash = site ~crash:true "rehash"

let entries_per_bucket = 3

type bucket = {
  words : W.t; (* 8 words: keys 0..2, values 3..5 *)
  next : bucket option R.t;
  lock : Lock.t; (* meaningful only on chain heads *)
}

type table = { buckets : bucket array; mask : int }

type t = {
  table : table R.t; (* slot 0: current table pointer *)
  resize_lock : Lock.t;
  count : int Atomic.t; (* volatile statistic driving the resize trigger *)
}

let new_bucket () =
  {
    words = W.make ~name:"clht.bucket" 8 0;
    next = R.make ~name:"clht.next" 1 None;
    lock = Lock.create ();
  }

(* On real hardware the next pointer occupies word 7 of the bucket's single
   cache line, so a bucket flush is ONE clwb.  The simulator forces pointer
   slots into their own line; to keep the flush counters faithful we flush
   that line only when it carries a real pointer — except under shadow mode,
   where the crash/durability machinery needs every allocated line written
   back explicitly. *)
let persist_bucket ?(site = s_alloc) b =
  W.clwb_all ~site b.words;
  if Pmem.Mode.shadow_enabled () || R.get b.next 0 <> None then
    R.clwb_all ~site b.next

let new_table n_buckets =
  { buckets = Array.init n_buckets (fun _ -> new_bucket ()); mask = n_buckets - 1 }

let persist_table tbl =
  Array.iter (persist_bucket ~site:s_alloc) tbl.buckets;
  Pmem.sfence ~site:s_alloc ()

(* 48 KB of 64-byte buckets. *)
let default_buckets = 48 * 1024 / 64

let create ?(capacity = default_buckets) () =
  let n = Util.Bits.next_power_of_two (max 4 capacity) in
  let tbl = new_table n in
  persist_table tbl;
  let table = R.make ~name:"clht.table" 1 tbl in
  R.clwb_all ~site:s_alloc table;
  Pmem.sfence ~site:s_alloc ();
  { table; resize_lock = Lock.create (); count = Atomic.make 0 }

let hash_key k = (k * 0x1CE4E5B9) lxor (k lsr 29)

let bucket_for tbl k = tbl.buckets.(hash_key k land tbl.mask)

let length t = Atomic.get t.count

let bucket_count t =
  let tbl = R.get t.table 0 in
  let n = ref 0 in
  Array.iter
    (fun head ->
      let rec walk b =
        incr n;
        match R.get b.next 0 with None -> () | Some nb -> walk nb
      in
      walk head)
    tbl.buckets;
  !n

(* --- Lock-free read path ----------------------------------------------- *)

let lookup t k =
  let tbl = R.get t.table 0 in
  let rec chain b =
    let rec slot i =
      if i = entries_per_bucket then
        match R.get b.next 0 with None -> None | Some nb -> chain nb
      else if W.get b.words i = k then begin
        (* CLHT atomic snapshot: value is valid if the key is unchanged
           after reading it (inserts write value before key). *)
        let v = W.get b.words (i + entries_per_bucket) in
        if W.get b.words i = k then Some v else slot i
      end
      else slot (i + 1)
    in
    slot 0
  in
  chain (bucket_for tbl k)

let iter t f =
  let tbl = R.get t.table 0 in
  Array.iter
    (fun head ->
      let rec walk b =
        for i = 0 to entries_per_bucket - 1 do
          let k = W.get b.words i in
          if k <> 0 then f k (W.get b.words (i + entries_per_bucket))
        done;
        match R.get b.next 0 with None -> () | Some nb -> walk nb
      in
      walk head)
    tbl.buckets

(* --- Write path --------------------------------------------------------- *)

(* Acquire the head-bucket lock for [k] in the *current* table, retrying
   across concurrent resizes.  Returns the table and head it locked. *)
let rec lock_head t k =
  let tbl = R.get t.table 0 in
  let head = bucket_for tbl k in
  if Lock.try_lock head.lock then
    if R.get t.table 0 == tbl then (tbl, head)
    else begin
      Lock.unlock head.lock;
      lock_head t k
    end
  else begin
    Domain.cpu_relax ();
    lock_head t k
  end

(* Copy-based insert used privately by the resizer: no locks, no per-store
   flush (the whole new table is persisted once before the swap). *)
let rec copy_insert tbl k v =
  let rec walk b =
    let rec slot i =
      if i = entries_per_bucket then
        match R.get b.next 0 with
        | Some nb -> walk nb
        | None ->
            let nb = new_bucket () in
            W.set nb.words 0 k;
            W.set nb.words entries_per_bucket v;
            R.set b.next 0 (Some nb)
      else if W.get b.words i = 0 then begin
        W.set b.words (i + entries_per_bucket) v;
        W.set b.words i k
      end
      else slot (i + 1)
    in
    slot 0
  in
  walk (bucket_for tbl k)

and resize t =
  if Lock.try_lock t.resize_lock then begin
    let old = R.get t.table 0 in
    (* Take every head lock; they are never released — the old table is dead
       after the swap and stalled writers re-read the table pointer. *)
    Array.iter (fun b -> Lock.lock b.lock) old.buckets;
    Pmem.Crash.point ~site:s_rehash ();
    (* Grow 4x: ample headroom so steady-state mixed workloads run without
       further rehashing (§7.2: "when the hash table is sufficiently large,
       P-CLHT performs no rehashing in workload A and B"). *)
    let fresh = new_table (4 * (old.mask + 1)) in
    Array.iter
      (fun head ->
        let rec walk b =
          for i = 0 to entries_per_bucket - 1 do
            let k = W.get b.words i in
            if k <> 0 then copy_insert fresh k (W.get b.words (i + entries_per_bucket))
          done;
          match R.get b.next 0 with None -> () | Some nb -> walk nb
        in
        walk head)
      old.buckets;
    (* Persist the whole new table, then commit with one atomic swap. *)
    let rec persist_chain b =
      persist_bucket ~site:s_rehash b;
      match R.get b.next 0 with None -> () | Some nb -> persist_chain nb
    in
    Array.iter persist_chain fresh.buckets;
    Pmem.sfence ~site:s_rehash ();
    Pmem.Crash.point ~site:s_rehash ();
    P.commit_ref ~site:s_rehash t.table 0 fresh;
    Lock.unlock t.resize_lock
  end

(* Resize when buckets average two-thirds full — keeps overflow chains (and
   their extra allocation flushes) rare, matching CLHT's ~1 flush per
   common-case insert. *)
let maybe_resize t =
  let tbl = R.get t.table 0 in
  let cap = (tbl.mask + 1) * entries_per_bucket in
  if Atomic.get t.count > cap * 2 / 3 then resize t

let insert t k v =
  if k <= 0 then invalid_arg "Clht.insert: key must be positive";
  let _tbl, head = lock_head t k in
  (* Walk the chain: fail if present, remember the first free slot. *)
  let exception Present in
  let free : (bucket * int) option ref = ref None in
  let last = ref head in
  let inserted =
    try
      let rec walk b =
        last := b;
        for i = 0 to entries_per_bucket - 1 do
          let kk = W.get b.words i in
          if kk = k then raise Present;
          if kk = 0 && !free = None then free := Some (b, i)
        done;
        match R.get b.next 0 with None -> () | Some nb -> walk nb
      in
      walk head;
      (match !free with
      | Some (b, i) ->
          (* Value first, then the atomic key store commits: one line, one
             flush (§6.2 "only one cache line flush per update"). *)
          P.store ~site:s_insert b.words (i + entries_per_bucket) v;
          Pmem.Crash.point ~site:s_insert ();
          P.commit ~site:s_insert b.words i k
      | None ->
          (* Chain overflow: build the new bucket, persist it, then commit
             by atomically linking it. *)
          let nb = new_bucket () in
          W.set nb.words entries_per_bucket v;
          W.set nb.words 0 k;
          persist_bucket ~site:s_chain nb;
          Pmem.sfence ~site:s_chain ();
          Pmem.Crash.point ~site:s_chain ();
          P.commit_ref ~site:s_chain !last.next 0 (Some nb));
      true
    with Present -> false
  in
  Lock.unlock head.lock;
  if inserted then begin
    Atomic.incr t.count;
    maybe_resize t
  end;
  inserted

let delete t k =
  if k <= 0 then invalid_arg "Clht.delete: key must be positive";
  let _tbl, head = lock_head t k in
  let deleted =
    let rec walk b =
      let rec slot i =
        if i = entries_per_bucket then
          match R.get b.next 0 with None -> false | Some nb -> walk nb
        else if W.get b.words i = k then begin
          (* Deletion commits by zeroing the key word (§6.2). *)
          P.commit ~site:s_delete b.words i 0;
          true
        end
        else slot (i + 1)
      in
      slot 0
    in
    walk head
  in
  Lock.unlock head.lock;
  if deleted then Atomic.decr t.count;
  deleted

let recover _t = Lock.new_epoch ()
