(** P-CLHT: persistent Cache-Line Hash Table (paper §6.2, RECIPE Condition #1).

    CLHT (David et al., ASPLOS '15) restricts each bucket to one 64-byte cache
    line holding three key/value pairs; overflow chains extra buckets.  Reads
    are lock-free via atomic key/value snapshots; writers lock the bucket
    chain; rehashing is copy-on-write committed by a single atomic table-
    pointer swap.  Every update is made visible by one 8-byte atomic store,
    so the RECIPE conversion only adds cache-line flushes and fences — the
    common-case insert needs exactly one flush.

    Keys are positive integers (0 is the empty-slot sentinel); values are
    8-byte integers. *)

type t

val name : string

(** [create ?capacity ()] makes an empty table with at least [capacity]
    buckets (rounded up to a power of two).  The default matches the paper's
    48 KB starting size. *)
val create : ?capacity:int -> unit -> t

(** [insert t key value] inserts a fresh binding.  Returns [false] (without
    modifying the table) if [key] is already present — CLHT has put-if-absent
    semantics; the paper excludes update workloads for this reason. *)
val insert : t -> int -> int -> bool

(** Lock-free lookup using CLHT's atomic key/value snapshot. *)
val lookup : t -> int -> int option

(** [delete t key] removes the binding by atomically zeroing the key slot. *)
val delete : t -> int -> bool

(** Number of live bindings (approximate only while writers are active). *)
val length : t -> int

(** Number of buckets in the current table, including overflow buckets. *)
val bucket_count : t -> int

(** Post-crash recovery: re-initializes the volatile locks, rolls a
    half-finished resize forward from the persistent [pending] intent slot
    (finish the copy under a dup check, persist, swap, clear — idempotent,
    so crashing during recovery is safe), and rebuilds the volatile count. *)
val recover : t -> unit

(** [leak_sweep ?reclaim t] reports bindings copied into a not-yet-published
    resize table — reachable only through the pending-resize intent, not the
    live table pointer.  [~reclaim:true] abandons the half-built table
    (the alternative to [recover]'s roll-forward).  [repaired] echoes what
    the last [recover] rolled forward. *)
val leak_sweep : ?reclaim:bool -> t -> Recipe.Recovery.stats

(** Iterate over all bindings (no atomicity across buckets; test helper). *)
val iter : t -> (int -> int -> unit) -> unit
