(* Volatile spinlocks with crash re-initialization semantics.

   RECIPE assumes "the locks used in the index are non-persistent, and that
   the locks are re-initialized after a crash (to prevent deadlock)" (§4.2);
   §6 realizes this with a lock table rebuilt at restart.  We get the same
   effect without walking the structure: a global lock epoch.  A lock is held
   iff its word equals the *current* epoch; recovery bumps the epoch, which
   atomically frees every lock in the index — including locks held by the
   thread that "died" at the simulated crash point.

   Each lock also carries a process-unique [id] and optional acquire/release
   hooks: the psan sanitizer registers handlers so lock hand-off counts as a
   release/acquire publication edge in its race check (a writer's plain
   stores under the lock are visible to the next holder).  The hooks are
   behind one ref test and default to off. *)

type t = { cell : int Atomic.t; id : int }

let epoch = Atomic.make 1

(** Recovery: instantly re-initialize (free) every lock ever created. *)
let new_epoch () = Atomic.incr epoch

let next_id = Atomic.make 0
let create () = { cell = Atomic.make 0; id = Atomic.fetch_and_add next_id 1 }
let id t = t.id

(* Sanitizer hooks: [acquired id] after winning the lock, [released id]
   just before giving it up.  Installed by [Psan.enable]. *)
let hooks_on = ref false
let on_acquired : (int -> unit) ref = ref ignore
let on_released : (int -> unit) ref = ref ignore

let set_hooks ~acquired ~released =
  on_acquired := acquired;
  on_released := released;
  hooks_on := true

let clear_hooks () =
  hooks_on := false;
  on_acquired := ignore;
  on_released := ignore

(* Abort hook: called on every failed spin iteration, here and in the
   indexes' own retry loops (CLHT bucket-head locking, FAST & FAIR seqlock
   reads).  A crash campaign installs a closure that raises
   [Pmem.Crash.Simulated_crash] once its stop flag is up, so domains left
   spinning on a lock held by the "crashed" domain unwind instead of
   hanging — a real power failure kills them too; the epoch bump at
   recovery then frees the lock.  Defaults to a no-op. *)
let abort_hook : (unit -> unit) ref = ref ignore
let abort_point () = !abort_hook ()
let set_abort_hook f = abort_hook := f
let clear_abort_hook () = abort_hook := ignore

let is_locked t = Atomic.get t.cell = Atomic.get epoch

let try_lock t =
  let cur = Atomic.get epoch in
  let v = Atomic.get t.cell in
  if v = cur then false
  else begin
    let ok = Atomic.compare_and_set t.cell v cur in
    if ok && !hooks_on then !on_acquired t.id;
    ok
  end

(* Bounded spinning, then yield the OS thread: on machines with fewer cores
   than domains (this container has one), a preempted lock holder would
   otherwise stall every spinner for a whole scheduling quantum. *)
let lock t =
  let rec go spins pause =
    if not (try_lock t) then begin
      abort_point ();
      if spins > 0 then begin
        Domain.cpu_relax ();
        go (spins - 1) pause
      end
      else begin
        Unix.sleepf pause;
        go 0 (Float.min (pause *. 2.0) 0.0001)
      end
    end
  in
  go 200 0.000001

let unlock t =
  if !hooks_on then !on_released t.id;
  Atomic.set t.cell 0

(** [with_lock t f] runs [f] holding [t].  No cleanup on exception: a
    simulated crash must leave the lock held, exactly like a real power
    failure; recovery frees it via {!new_epoch}. *)
let with_lock t f =
  lock t;
  let r = f () in
  unlock t;
  r
