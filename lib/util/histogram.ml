(* Log-scale latency histogram (nanosecond samples, ~4% resolution).  Used by
   the benchmark harness for per-operation latency percentiles alongside the
   throughput numbers the paper reports. *)

type t = { buckets : int array; mutable count : int; mutable sum : float }

(* 16 sub-buckets per power of two up to 2^48 ns. *)
let sub = 16
let n_buckets = 48 * sub

let create () = { buckets = Array.make n_buckets 0; count = 0; sum = 0.0 }

let bucket_of_ns ns =
  if ns < 1 then 0
  else
    let e = 62 - Bits.count_leading_zeros ns in
    let frac = (ns lsr (max 0 (e - 4))) land (sub - 1) in
    min (n_buckets - 1) ((e * sub) + frac)

let ns_of_bucket b =
  let e = b / sub and frac = b mod sub in
  (1 lsl e) + (frac lsl (max 0 (e - 4)))

let add t ns =
  let b = bucket_of_ns ns in
  t.buckets.(b) <- t.buckets.(b) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. float_of_int ns

let count t = t.count
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

(** Latency below which fraction [q] of samples fall, in nanoseconds. *)
let percentile t q =
  if t.count = 0 then 0
  else begin
    (* Rank of the sample we want, clamped to >= 1: with small counts
       [q *. count] truncates to 0 and the scan would stop on the first
       (possibly empty) bucket. *)
    let target = max 1 (int_of_float (ceil (q *. float_of_int t.count))) in
    let rec scan b acc =
      if b >= n_buckets then ns_of_bucket (n_buckets - 1)
      else
        let acc = acc + t.buckets.(b) in
        if acc >= target then ns_of_bucket b else scan (b + 1) acc
    in
    scan 0 0
  end

let merge into src =
  Array.iteri (fun i v -> into.buckets.(i) <- into.buckets.(i) + v) src.buckets;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum
