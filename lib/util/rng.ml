(* Deterministic, allocation-free pseudo-random numbers (splitmix64 core).
   Every workload generator and test takes an explicit [t] so runs are
   reproducible from a seed; benchmark threads each get an independently
   seeded state and never share one. *)

type t = { mutable state : int }

let create seed = { state = (if seed = 0 then 0x9E3779B9 else seed) }

let next t =
  t.state <- (t.state + 0x61C8864680B583EB) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x7F4A7C15 land max_int in
  let z = (z lxor (z lsr 27)) * 0x1CE4E5B9 land max_int in
  z lxor (z lsr 31)

(** Uniform integer in [0, bound).  Lemire multiply-shift reduction: for the
    bounds every workload generator actually uses (key universes, percents)
    the reduction is one multiply and one shift — no integer division, which
    costs 20-40 cycles on the sampling hot path.  Bounds at or above 2^30
    (never hit by the generators) fall back to [mod]. *)
let lemire_bits = 30
let lemire_max = 1 lsl lemire_bits

let below t bound =
  if bound <= 0 then invalid_arg "Rng.below: bound must be positive";
  if bound < lemire_max then
    ((next t land (lemire_max - 1)) * bound) lsr lemire_bits
  else next t mod bound

(** Uniform float in [0, 1). *)
let float t = float_of_int (next t land 0xFFFFFFFFFFFF) /. 140737488355328.0

(** Uniform positive key in [1, 2^61]; never 0, which indexes reserve as the
    empty-slot sentinel. *)
let key t = (next t land 0x1FFFFFFFFFFFFFFF) + 1

(** Fisher–Yates shuffle of an array prefix. *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
