(* KV-service partition adapters: one {!Kvserve.Server.partition} builder
   per index.  The sharded router constructs one instance per shard, so a
   builder returns a *fresh* index each call.

   Ordered indexes serve arbitrary string keys natively; [p_insert] has
   upsert semantics where the index exposes [update] (ART, HOT, Masstree,
   BwTree, WOART), put-if-absent otherwise (FAST & FAIR).  Hash indexes are
   integer-keyed: an 8-byte key decodes as the big-endian integer
   ({!Util.Keys.encode_int} round-trip — what the load generator and crash
   campaign send); any other length falls back to a 62-bit FNV-1a of the
   bytes (best-effort: two distinct long keys colliding would alias, which
   the service's own traffic never produces). *)

let int_of_key s =
  if String.length s = Util.Keys.int_key_length then Util.Keys.decode_int s
  else begin
    let h = ref 0x4BF29CE484222325 in
    String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001B3) s;
    !h land max_int
  end

let scan_list scan start n =
  let acc = ref [] in
  ignore (scan start n (fun key v -> acc := (key, v) :: !acc));
  List.rev !acc

let art () =
  let t = Art.create () in
  {
    Kvserve.Server.p_name = Art.name;
    p_insert =
      (fun key v -> if Art.insert t key v then true else Art.update t key v);
    p_lookup = (fun key -> Art.lookup t key);
    p_delete = (fun key -> Art.delete t key);
    p_scan = Some (fun start n -> scan_list (Art.scan t) start n);
    p_recover = (fun () -> Art.recover t);
    p_sweep = Some (fun () -> Art.leak_sweep ~reclaim:true t);
  }

let hot () =
  let t = Hot.create () in
  {
    Kvserve.Server.p_name = Hot.name;
    p_insert =
      (fun key v -> if Hot.insert t key v then true else Hot.update t key v);
    p_lookup = (fun key -> Hot.lookup t key);
    p_delete = (fun key -> Hot.delete t key);
    p_scan = Some (fun start n -> scan_list (Hot.scan t) start n);
    p_recover = (fun () -> Hot.recover t);
    p_sweep = Some (fun () -> Hot.leak_sweep t);
  }

let masstree () =
  let t = Masstree.create () in
  {
    Kvserve.Server.p_name = Masstree.name;
    p_insert =
      (fun key v ->
        if Masstree.insert t key v then true else Masstree.update t key v);
    p_lookup = (fun key -> Masstree.lookup t key);
    p_delete = (fun key -> Masstree.delete t key);
    p_scan = Some (fun start n -> scan_list (Masstree.scan t) start n);
    p_recover = (fun () -> Masstree.recover t);
    p_sweep = Some (fun () -> Masstree.leak_sweep ~reclaim:true t);
  }

let bwtree () =
  let t = Bwtree.create ~space:(Recipe.Wordkey.int_space ()) () in
  {
    Kvserve.Server.p_name = Bwtree.name;
    p_insert =
      (fun key v ->
        if Bwtree.insert t key v then true else Bwtree.update t key v);
    p_lookup = (fun key -> Bwtree.lookup t key);
    p_delete = (fun key -> Bwtree.delete t key);
    p_scan = Some (fun start n -> scan_list (Bwtree.scan t) start n);
    p_recover = (fun () -> Bwtree.recover t);
    p_sweep = Some (fun () -> Bwtree.leak_sweep ~reclaim:true t);
  }

let fastfair () =
  let t = Fastfair.create ~space:(Recipe.Wordkey.int_space ()) () in
  {
    Kvserve.Server.p_name = Fastfair.name;
    p_insert = (fun key v -> Fastfair.insert t key v);
    p_lookup = (fun key -> Fastfair.lookup t key);
    p_delete = (fun key -> Fastfair.delete t key);
    p_scan = Some (fun start n -> scan_list (Fastfair.scan t) start n);
    p_recover = (fun () -> Fastfair.recover t);
    p_sweep = Some (fun () -> Fastfair.leak_sweep ~reclaim:true t);
  }

let woart () =
  let t = Woart.create () in
  {
    Kvserve.Server.p_name = Woart.name;
    p_insert =
      (fun key v ->
        if Woart.insert t key v then true else Woart.update t key v);
    p_lookup = (fun key -> Woart.lookup t key);
    p_delete = (fun key -> Woart.delete t key);
    p_scan = Some (fun start n -> scan_list (Woart.scan t) start n);
    p_recover = (fun () -> Woart.recover t);
    p_sweep = Some (fun () -> Woart.leak_sweep ~reclaim:true t);
  }

let clht () =
  let t = Clht.create ~capacity:16 () in
  {
    Kvserve.Server.p_name = Clht.name;
    p_insert = (fun key v -> Clht.insert t (int_of_key key) v);
    p_lookup = (fun key -> Clht.lookup t (int_of_key key));
    p_delete = (fun key -> Clht.delete t (int_of_key key));
    p_scan = None;
    p_recover = (fun () -> Clht.recover t);
    p_sweep = Some (fun () -> Clht.leak_sweep ~reclaim:true t);
  }

let cceh () =
  let t = Cceh.create ~capacity:128 () in
  {
    Kvserve.Server.p_name = Cceh.name;
    p_insert = (fun key v -> Cceh.insert t (int_of_key key) v);
    p_lookup = (fun key -> Cceh.lookup t (int_of_key key));
    p_delete = (fun key -> Cceh.delete t (int_of_key key));
    p_scan = None;
    p_recover = (fun () -> Cceh.recover t);
    p_sweep = Some (fun () -> Cceh.leak_sweep ~reclaim:true t);
  }

let levelhash () =
  let t = Levelhash.create ~capacity:12 () in
  {
    Kvserve.Server.p_name = Levelhash.name;
    p_insert = (fun key v -> Levelhash.insert t (int_of_key key) v);
    p_lookup = (fun key -> Levelhash.lookup t (int_of_key key));
    p_delete = (fun key -> Levelhash.delete t (int_of_key key));
    p_scan = None;
    p_recover = (fun () -> Levelhash.recover t);
    p_sweep = Some (fun () -> Levelhash.leak_sweep ~reclaim:true t);
  }

(** Every adapter, by index name (the [--index] argument of the server and
    bench binaries). *)
let all : (string * (unit -> Kvserve.Server.partition)) list =
  [
    ("art", art);
    ("hot", hot);
    ("masstree", masstree);
    ("bwtree", bwtree);
    ("fastfair", fastfair);
    ("woart", woart);
    ("clht", clht);
    ("cceh", cceh);
    ("levelhash", levelhash);
  ]

let find name = List.assoc_opt (String.lowercase_ascii name) all
