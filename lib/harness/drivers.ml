(* YCSB drivers binding every index in the repository to a prepared
   workload.  Ordered indexes consume encoded key strings; unordered (hash)
   indexes consume the raw integer keys, as in the paper (§7: "for
   unordered indexes, we only use integer key types").  Hash indexes have
   [scan = None]: workload E raises [Ycsb.Scan_unsupported] for them rather
   than silently measuring no-op scans. *)

let sink_scan (_ : string) (_ : int) = ()

let art p t =
  {
    Ycsb.dname = Art.name;
    insert = (fun i -> ignore (Art.insert t (Ycsb.key_string p i) i));
    read = (fun i -> Art.lookup t (Ycsb.key_string p i) <> None);
    scan = Some (fun i len -> Art.scan t (Ycsb.key_string p i) len sink_scan);
  }

let hot p t =
  {
    Ycsb.dname = Hot.name;
    insert = (fun i -> ignore (Hot.insert t (Ycsb.key_string p i) i));
    read = (fun i -> Hot.lookup t (Ycsb.key_string p i) <> None);
    scan = Some (fun i len -> Hot.scan t (Ycsb.key_string p i) len sink_scan);
  }

let masstree p t =
  {
    Ycsb.dname = Masstree.name;
    insert = (fun i -> ignore (Masstree.insert t (Ycsb.key_string p i) i));
    read = (fun i -> Masstree.lookup t (Ycsb.key_string p i) <> None);
    scan = Some (fun i len -> Masstree.scan t (Ycsb.key_string p i) len sink_scan);
  }

let bwtree p t =
  {
    Ycsb.dname = Bwtree.name;
    insert = (fun i -> ignore (Bwtree.insert t (Ycsb.key_string p i) i));
    read = (fun i -> Bwtree.lookup t (Ycsb.key_string p i) <> None);
    scan = Some (fun i len -> Bwtree.scan t (Ycsb.key_string p i) len sink_scan);
  }

let fastfair p t =
  {
    Ycsb.dname = Fastfair.name;
    insert = (fun i -> ignore (Fastfair.insert t (Ycsb.key_string p i) i));
    read = (fun i -> Fastfair.lookup t (Ycsb.key_string p i) <> None);
    scan = Some (fun i len -> Fastfair.scan t (Ycsb.key_string p i) len sink_scan);
  }

let woart p t =
  {
    Ycsb.dname = Woart.name;
    insert = (fun i -> ignore (Woart.insert t (Ycsb.key_string p i) i));
    read = (fun i -> Woart.lookup t (Ycsb.key_string p i) <> None);
    scan = Some (fun i len -> Woart.scan t (Ycsb.key_string p i) len sink_scan);
  }

let clht p t =
  {
    Ycsb.dname = Clht.name;
    insert = (fun i -> ignore (Clht.insert t (Ycsb.key_int p i) i));
    read = (fun i -> Clht.lookup t (Ycsb.key_int p i) <> None);
    scan = None;
  }

let cceh p t =
  {
    Ycsb.dname = Cceh.name;
    insert = (fun i -> ignore (Cceh.insert t (Ycsb.key_int p i) i));
    read = (fun i -> Cceh.lookup t (Ycsb.key_int p i) <> None);
    scan = None;
  }

let levelhash p t =
  {
    Ycsb.dname = Levelhash.name;
    insert = (fun i -> ignore (Levelhash.insert t (Ycsb.key_int p i) i));
    read = (fun i -> Levelhash.lookup t (Ycsb.key_int p i) <> None);
    scan = None;
  }
