(* Opt-in sanitizer harness for existing test executables.

   [init ()] is called at the top of every index test main.  Normally a
   no-op; with RECIPE_SANITIZE=1 in the environment (the [@sanitize] dune
   alias sets it) it enables {!Psan} for the whole process and registers an
   at_exit check that fails the run if any diagnostic was reported.  This is
   how "the full index test suite under [~sanitize:true] produces zero
   diagnostics" is enforced without duplicating the suites.

   RECIPE_SANITIZE=ordering enables only the persistency-ordering checks
   (race check off) — useful when bisecting a race report. *)

let armed = ref false

let arm ~races =
  armed := true;
  Psan.enable ~races ();
  at_exit (fun () ->
      if Obs.Diag.count () > 0 then begin
        Format.eprintf "RECIPE_SANITIZE: sanitizer found problems:@.";
        Obs.Diag.pp_all Format.err_formatter ();
        exit 1
      end
      else Format.eprintf "RECIPE_SANITIZE: no diagnostics@.")

let init () =
  if not !armed then
    match Sys.getenv_opt "RECIPE_SANITIZE" with
    | Some ("1" | "true" | "yes" | "full") -> arm ~races:true
    | Some "ordering" -> arm ~races:false
    | _ -> ()
