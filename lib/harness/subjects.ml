(* Crash-test subjects: one adapter per index, including the buggy baseline
   variants that §7.5's testing catches.  Ordered indexes take integer keys
   through the big-endian encoding. *)

let k = Util.Keys.encode_int

let clht () =
  let t = Clht.create ~capacity:16 () in
  {
    Crashtest.sname = Clht.name;
    insert = (fun key v -> Clht.insert t key v);
    lookup = (fun key -> Clht.lookup t key);
    recover = (fun () -> Clht.recover t);
    scan_all = None;
    sweep = Some (fun () -> Clht.leak_sweep ~reclaim:true t);
  }

let cceh ?bug_doubling () =
  let t = Cceh.create ?bug_doubling ~capacity:128 () in
  {
    Crashtest.sname = (if bug_doubling = Some true then "CCEH(buggy)" else Cceh.name);
    insert = (fun key v -> Cceh.insert t key v);
    lookup = (fun key -> Cceh.lookup t key);
    recover = (fun () -> Cceh.recover t);
    scan_all = None;
    sweep = Some (fun () -> Cceh.leak_sweep ~reclaim:true t);
  }

let levelhash () =
  let t = Levelhash.create ~capacity:12 () in
  {
    Crashtest.sname = Levelhash.name;
    insert = (fun key v -> Levelhash.insert t key v);
    lookup = (fun key -> Levelhash.lookup t key);
    recover = (fun () -> Levelhash.recover t);
    scan_all = None;
    sweep = Some (fun () -> Levelhash.leak_sweep ~reclaim:true t);
  }

let art () =
  let t = Art.create () in
  {
    Crashtest.sname = Art.name;
    insert = (fun key v -> Art.insert t (k key) v);
    lookup = (fun key -> Art.lookup t (k key));
    recover = (fun () -> Art.recover t);
    scan_all =
      Some
        (fun () ->
          let acc = ref [] in
          ignore
            (Art.scan t (k 0) max_int (fun key v ->
                 acc := (Util.Keys.decode_int key, v) :: !acc));
          List.rev !acc);
    sweep = Some (fun () -> Art.leak_sweep ~reclaim:true t);
  }

let hot () =
  let t = Hot.create () in
  {
    Crashtest.sname = Hot.name;
    insert = (fun key v -> Hot.insert t (k key) v);
    lookup = (fun key -> Hot.lookup t (k key));
    recover = (fun () -> Hot.recover t);
    scan_all =
      Some
        (fun () ->
          let acc = ref [] in
          ignore
            (Hot.scan t (k 0) max_int (fun key v ->
                 acc := (Util.Keys.decode_int key, v) :: !acc));
          List.rev !acc);
    sweep = Some (fun () -> Hot.leak_sweep t);
  }

let masstree () =
  let t = Masstree.create () in
  {
    Crashtest.sname = Masstree.name;
    insert = (fun key v -> Masstree.insert t (k key) v);
    lookup = (fun key -> Masstree.lookup t (k key));
    recover = (fun () -> Masstree.recover t);
    scan_all =
      Some
        (fun () ->
          let acc = ref [] in
          ignore
            (Masstree.scan t (k 0) max_int (fun key v ->
                 acc := (Util.Keys.decode_int key, v) :: !acc));
          List.rev !acc);
    sweep = Some (fun () -> Masstree.leak_sweep ~reclaim:true t);
  }

let bwtree () =
  let t = Bwtree.create ~space:(Recipe.Wordkey.int_space ()) () in
  {
    Crashtest.sname = Bwtree.name;
    insert = (fun key v -> Bwtree.insert t (k key) v);
    lookup = (fun key -> Bwtree.lookup t (k key));
    recover = (fun () -> Bwtree.recover t);
    scan_all =
      Some
        (fun () ->
          let acc = ref [] in
          ignore
            (Bwtree.scan t (k 0) max_int (fun key v ->
                 acc := (Util.Keys.decode_int key, v) :: !acc));
          List.rev !acc);
    sweep = Some (fun () -> Bwtree.leak_sweep ~reclaim:true t);
  }

let fastfair ?bug_highkey ?bug_split_order ?bug_root_flush () =
  let t =
    Fastfair.create ?bug_highkey ?bug_split_order ?bug_root_flush
      ~space:(Recipe.Wordkey.int_space ()) ()
  in
  let buggy =
    bug_highkey = Some true || bug_split_order = Some true
    || bug_root_flush = Some true
  in
  {
    Crashtest.sname = (if buggy then "FAST&FAIR(buggy)" else Fastfair.name);
    insert = (fun key v -> Fastfair.insert t (k key) v);
    lookup = (fun key -> Fastfair.lookup t (k key));
    recover = (fun () -> Fastfair.recover t);
    scan_all =
      Some
        (fun () ->
          let acc = ref [] in
          ignore
            (Fastfair.scan t (k 0) max_int (fun key v ->
                 acc := (Util.Keys.decode_int key, v) :: !acc));
          List.rev !acc);
    sweep = Some (fun () -> Fastfair.leak_sweep ~reclaim:true t);
  }

let woart () =
  let t = Woart.create () in
  {
    Crashtest.sname = Woart.name;
    insert = (fun key v -> Woart.insert t (k key) v);
    lookup = (fun key -> Woart.lookup t (k key));
    recover = (fun () -> Woart.recover t);
    scan_all =
      Some
        (fun () ->
          let acc = ref [] in
          ignore
            (Woart.scan t (k 0) max_int (fun key v ->
                 acc := (Util.Keys.decode_int key, v) :: !acc));
          List.rev !acc);
    sweep = Some (fun () -> Woart.leak_sweep ~reclaim:true t);
  }

(** The five RECIPE-converted indexes (all must pass every campaign). *)
let converted () =
  [ clht; hot; bwtree; art; masstree ]
  |> List.map (fun mk -> (fun () -> mk ()))

(** Correct baselines. *)
let baselines () = [ (fun () -> fastfair ()); (fun () -> cceh ()); levelhash; woart ]
