(** YCSB workload generator and multi-threaded runner (paper §7, Table 3).

    Workload patterns follow the paper's Table 3 exactly; updates are
    modeled as inserts of fresh keys (the paper excludes true updates —
    workloads D and F — because several indexes do not support them, and
    runs "insert or read a total of N keys").  Keys are uniformly
    distributed, 8-byte random integers or 24-byte YCSB string keys, with
    the workload file statically split across threads as in the paper's
    index-microbench setup. *)

(** Table 3 workload patterns. *)
type workload =
  | Load_a  (** 100% inserts — bulk database load *)
  | A  (** 50% reads / 50% inserts — session store *)
  | B  (** 95% reads / 5% inserts — photo tagging *)
  | C  (** 100% reads — user-profile cache *)
  | E  (** 95% scans / 5% inserts — threaded conversations *)

val workload_of_string : string -> workload option
val workload_name : workload -> string
val all_workloads : workload list

(** Key type of the run (Fig 4a/4b). *)
type key_kind = Randint | Strkey

(** Access distribution for reads and scan starts.  The paper uses uniform
    keys (§7); scrambled-Zipfian (the YCSB default elsewhere) is provided
    as an extension for skew experiments. *)
type distribution = Uniform | Zipfian of float  (** theta, e.g. 0.99 *)

(** A prepared workload: the key universe plus per-thread operation
    streams.  Generation is deterministic from the seed. *)
type prepared

(** [prepare ~workload ~kind ~nloaded ~nops ~threads ~seed ()] builds the
    key universe ([nloaded] loaded keys + enough fresh insert keys) and the
    static per-thread split of [nops] operations.  [dist] (default
    [Uniform]) skews which loaded keys the reads and scans touch. *)
val prepare :
  workload:workload ->
  kind:key_kind ->
  ?dist:distribution ->
  nloaded:int ->
  nops:int ->
  threads:int ->
  seed:int ->
  unit ->
  prepared

val nloaded : prepared -> int

(** Encoded key for universe index [i] (8-byte big-endian or 24-byte YCSB
    string depending on the key kind). *)
val key_string : prepared -> int -> string

(** Raw integer key for universe index [i] (randint runs only). *)
val key_int : prepared -> int -> int

(** Index driver: closures binding one index instance to the universe.
    [scan] is [None] for unordered (hash) indexes, which cannot execute
    range scans — running workload E on such a driver raises
    {!Scan_unsupported} instead of silently measuring no-ops. *)
type driver = {
  dname : string;
  insert : int -> unit;  (** insert universe key [i] *)
  read : int -> bool;  (** point-lookup universe key [i]; found? *)
  scan : (int -> int -> int) option;
      (** scan from key [i], up to [len]; visited *)
}

(** Raised (with the driver name) when a workload containing scans is run
    against a driver without scan support. *)
exception Scan_unsupported of string

(** Result of one measured phase. *)
type result = {
  workload : workload;
  threads : int;
  ops : int;
  seconds : float;
  mops : float;  (** million operations per second *)
  reads_found : int;
  reads_missed : int;
  scanned_total : int;
  latency : Util.Histogram.t option;  (** per-op latency when requested *)
  lat_insert : Util.Histogram.t option;  (** latency of insert ops only *)
  lat_read : Util.Histogram.t option;  (** latency of read ops only *)
  lat_scan : Util.Histogram.t option;  (** latency of scan ops only *)
  seed : int;  (** the seed the workload was prepared with *)
}

(** [load p driver] runs the load phase (all [nloaded] keys inserted,
    statically split across the prepared thread count) and returns its
    measurement as a Load_a result.  [latency:true] samples per-insert
    latency with the monotonic clock; [sample] (default 1: every op) keeps
    only every Kth operation's timestamp pair, so latency annotation stops
    perturbing the throughput it annotates. *)
val load : ?latency:bool -> ?sample:int -> prepared -> driver -> result

(** [run ?latency ?sample p driver] executes the prepared operation streams
    on their domains and measures wall-clock throughput.  The load phase
    must have been run first.  [latency:true] additionally samples
    per-operation latency (monotonic clock, every [sample]th op — default
    every op), overall ([latency]) and split by operation type
    ([lat_insert]/[lat_read]/[lat_scan]).  When the {!Obs.Trace} ring is
    enabled, every operation is bracketed with [Op_begin]/[Op_end] events.

    @raise Scan_unsupported when the workload is [E] and [driver.scan] is
    [None]. *)
val run : ?latency:bool -> ?sample:int -> prepared -> driver -> result

val pp_result : Format.formatter -> result -> unit
