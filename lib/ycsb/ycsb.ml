(* YCSB workload generation and execution (see ycsb.mli). *)

type workload = Load_a | A | B | C | E

let workload_name = function
  | Load_a -> "LoadA"
  | A -> "A"
  | B -> "B"
  | C -> "C"
  | E -> "E"

let workload_of_string s =
  match String.lowercase_ascii s with
  | "loada" | "load_a" | "load" -> Some Load_a
  | "a" -> Some A
  | "b" -> Some B
  | "c" -> Some C
  | "e" -> Some E
  | _ -> None

let all_workloads = [ Load_a; A; B; C; E ]

(* Fraction of operations that are inserts (reads otherwise; E replaces
   reads with scans), per Table 3. *)
let insert_percent = function Load_a -> 100 | A -> 50 | B -> 5 | C -> 0 | E -> 5

let max_scan_length = 100

type key_kind = Randint | Strkey
type distribution = Uniform | Zipfian of float

(* Scrambled-Zipfian sampler over [0, n) (Gray et al., as in YCSB): ranks
   drawn Zipfian are scrambled by a multiplicative hash so the hot keys are
   spread across the key space. *)
type zipf = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  scramble : int array; (* rank -> key-universe index, precomputed *)
}

let make_zipf n theta =
  let zetan = ref 0.0 in
  for i = 1 to n do
    zetan := !zetan +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  let zeta2 = (1.0 /. 1.0) +. (1.0 /. Float.pow 2.0 theta) in
  (* The scramble (multiplicative hash spreading hot ranks over the key
     space) used to cost a 64-bit multiply plus an integer *division* per
     sample; ranks are dense in [0, n), so precompute the whole map once and
     sampling becomes a single array load.  The reduction of the hash into
     [0, n) is Lemire multiply-shift — same family as {!Util.Rng.below} —
     so even the precomputation is division-free. *)
  let scramble =
    Array.init n (fun rank ->
        let h = rank * 0x5DEECE66D land ((1 lsl 30) - 1) in
        h * n lsr 30)
  in
  {
    n;
    theta;
    alpha = 1.0 /. (1.0 -. theta);
    zetan = !zetan;
    eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. !zetan));
    scramble;
  }

let zipf_sample z rng =
  let u = Util.Rng.float rng in
  let uz = u *. z.zetan in
  let rank =
    if uz < 1.0 then 0
    else if uz < 1.0 +. Float.pow 0.5 z.theta then 1
    else
      int_of_float
        (float_of_int z.n *. Float.pow ((z.eta *. u) -. z.eta +. 1.0) z.alpha)
  in
  let rank = if rank >= z.n then z.n - 1 else rank in
  Array.unsafe_get z.scramble rank

(* Operation encoding in the per-thread streams: opcode 0 = insert, 1 =
   read, 2 = scan; [arg] = key-universe index; [len] = scan length. *)
type stream = { opcodes : Bytes.t; args : int array; lens : Bytes.t }

type prepared = {
  kind : key_kind;
  n_loaded : int;
  workload : workload;
  threads : int;
  int_keys : int array; (* whole universe: loaded + fresh insert keys *)
  str_keys : string array; (* encoded keys, same indexing *)
  streams : stream array; (* one per thread *)
  seed : int; (* the run's seed, carried into every result *)
}

type driver = {
  dname : string;
  insert : int -> unit;
  read : int -> bool;
  scan : (int -> int -> int) option;
}

exception Scan_unsupported of string

type result = {
  workload : workload;
  threads : int;
  ops : int;
  seconds : float;
  mops : float;
  reads_found : int;
  reads_missed : int;
  scanned_total : int;
  latency : Util.Histogram.t option;
  lat_insert : Util.Histogram.t option;
  lat_read : Util.Histogram.t option;
  lat_scan : Util.Histogram.t option;
  seed : int;  (* the seed the workload was prepared with *)
}

let nloaded p = p.n_loaded
let key_string p i = p.str_keys.(i)
let key_int p i = p.int_keys.(i)

let prepare ~workload ~kind ?(dist = Uniform) ~nloaded ~nops ~threads ~seed () =
  if nloaded <= 0 || nops < 0 || threads <= 0 then
    invalid_arg "Ycsb.prepare: bad sizes";
  let rng = Util.Rng.create seed in
  let pick_loaded =
    match dist with
    | Uniform -> fun rng -> Util.Rng.below rng nloaded
    | Zipfian theta ->
        let z = make_zipf nloaded theta in
        fun rng -> zipf_sample z rng
  in
  let n_inserts = nops * insert_percent workload / 100 in
  let universe = nloaded + n_inserts in
  (* Unique random integer keys for the whole universe. *)
  let seen = Hashtbl.create (2 * universe) in
  let int_keys =
    Array.init universe (fun _ ->
        let rec fresh () =
          let k = Util.Rng.key rng in
          if Hashtbl.mem seen k then fresh ()
          else begin
            Hashtbl.add seen k ();
            k
          end
        in
        fresh ())
  in
  let str_keys =
    match kind with
    | Randint -> Array.map Util.Keys.encode_int int_keys
    | Strkey ->
        (* 24-byte YCSB keys derived from the random ids: uniform and
           unique. *)
        Array.map (fun k -> Util.Keys.string_key k) int_keys
  in
  (* Static split: thread i executes ops [i*per, i*per+per). Fresh insert
     keys are handed out in order so every insert targets a unique key. *)
  let per = nops / threads in
  let next_fresh = ref nloaded in
  let streams =
    Array.init threads (fun tid ->
        (* One private Rng stream per worker, derived once from the run
           seed: a worker's operation mix no longer depends on how many
           draws the other workers' streams consumed (the universe rng
           above is left untouched here), and generating the same worker
           again — another phase, another index — replays the same
           stream. *)
        let rng = Util.Rng.create (seed + (31 * tid) + 7) in
        let opcodes = Bytes.create (max 1 per) in
        let args = Array.make (max 1 per) 0 in
        let lens = Bytes.create (max 1 per) in
        for j = 0 to per - 1 do
          let is_insert = Util.Rng.below rng 100 < insert_percent workload in
          if is_insert && !next_fresh < universe then begin
            Bytes.set opcodes j '\000';
            args.(j) <- !next_fresh;
            incr next_fresh
          end
          else if workload = E then begin
            Bytes.set opcodes j '\002';
            args.(j) <- pick_loaded rng;
            Bytes.set lens j (Char.chr (1 + Util.Rng.below rng max_scan_length))
          end
          else begin
            Bytes.set opcodes j '\001';
            args.(j) <- pick_loaded rng
          end
        done;
        { opcodes; args; lens })
  in
  {
    kind;
    n_loaded = nloaded;
    workload;
    threads;
    int_keys;
    str_keys;
    streams;
    seed;
  }

(* Monotonic timestamp in integer nanoseconds (a noalloc, unboxed
   clock_gettime(CLOCK_MONOTONIC) stub).  The latency path used to call
   [Unix.gettimeofday] twice per operation: wall-clock time (steppable by
   NTP, so samples can even go negative), a float box each call, and a
   measurable perturbation of the throughput the run annotates.  Combined
   with every-Kth-op sampling ([?sample]) the instrumented run converges on
   the uninstrumented one. *)
let now_ns () = Int64.to_int (Monotonic_clock.now ())
let now () = float_of_int (now_ns ()) /. 1e9

(* Spawn [threads] domains running [body tid], measuring wall time from a
   common start barrier to the last join. *)
let timed_domains threads body =
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  let worker tid () =
    Atomic.incr ready;
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    body tid
  in
  let domains = List.init threads (fun tid -> Domain.spawn (worker tid)) in
  while Atomic.get ready < threads do
    Domain.cpu_relax ()
  done;
  let t0 = now () in
  Atomic.set go true;
  let results = List.map Domain.join domains in
  (* Join edge for the sanitizer's race check (no-op unless sanitizing). *)
  Pmem.sanitize_sync ();
  let dt = now () -. t0 in
  (dt, results)

(* Merge the thread-local histograms at position [c]; [None] if no thread
   recorded anything there. *)
let merge_class per_thread c =
  let h = Util.Histogram.create () in
  List.iter
    (fun hists ->
      match hists with Some hs -> Util.Histogram.merge h hs.(c) | None -> ())
    per_thread;
  if Util.Histogram.count h = 0 then None else Some h

let load ?(latency = false) ?(sample = 1) (p : prepared) driver =
  if sample <= 0 then invalid_arg "Ycsb.load: sample must be positive";
  let threads = p.threads in
  let per = p.n_loaded / threads in
  let body tid =
    let lo = tid * per in
    let hi = if tid = threads - 1 then p.n_loaded else lo + per in
    let hists =
      if latency then Some (Array.init 1 (fun _ -> Util.Histogram.create ()))
      else None
    in
    (match hists with
    | None ->
        for i = lo to hi - 1 do
          driver.insert i
        done
    | Some hs ->
        (* Countdown instead of [i mod sample]: no division per op. *)
        let until_sample = ref 1 in
        for i = lo to hi - 1 do
          decr until_sample;
          if !until_sample = 0 then begin
            until_sample := sample;
            let t0 = now_ns () in
            driver.insert i;
            Util.Histogram.add hs.(0) (now_ns () - t0)
          end
          else driver.insert i
        done);
    hists
  in
  let dt, per_thread = timed_domains threads body in
  let merged = merge_class per_thread 0 in
  {
    workload = Load_a;
    threads;
    ops = p.n_loaded;
    seconds = dt;
    mops = float_of_int p.n_loaded /. dt /. 1e6;
    reads_found = 0;
    reads_missed = 0;
    scanned_total = 0;
    latency = merged;
    lat_insert = merged;
    lat_read = None;
    lat_scan = None;
    seed = p.seed;
  }

(* Operation class of an opcode: 0 = insert, 1 = read, 2 = scan. *)
let op_class = function '\000' -> 0 | '\001' -> 1 | _ -> 2
let op_label = [| "insert"; "read"; "scan" |]

let run ?(latency = false) ?(sample = 1) (p : prepared) driver =
  if sample <= 0 then invalid_arg "Ycsb.run: sample must be positive";
  (* Fail fast: an unordered index cannot execute workload E at all. *)
  (match (p.workload, driver.scan) with
  | E, None -> raise (Scan_unsupported driver.dname)
  | _ -> ());
  let scan_fn =
    match driver.scan with
    | Some f -> f
    | None -> fun _ _ -> raise (Scan_unsupported driver.dname)
  in
  let threads = p.threads in
  let body tid =
    let s = p.streams.(tid) in
    let n = Array.length s.args in
    let found = ref 0 and missed = ref 0 and scanned = ref 0 in
    let hists =
      if latency then Some (Array.init 3 (fun _ -> Util.Histogram.create ()))
      else None
    in
    let exec j =
      match Bytes.unsafe_get s.opcodes j with
      | '\000' -> driver.insert s.args.(j)
      | '\001' -> if driver.read s.args.(j) then incr found else incr missed
      | _ ->
          scanned :=
            !scanned + scan_fn s.args.(j) (Char.code (Bytes.get s.lens j))
    in
    let exec j =
      if Obs.Trace.enabled () then begin
        let lbl = op_label.(op_class (Bytes.unsafe_get s.opcodes j)) in
        Obs.Trace.record Obs.Trace.Op_begin ~arg:s.args.(j) lbl;
        exec j;
        Obs.Trace.record Obs.Trace.Op_end ~arg:s.args.(j) lbl
      end
      else exec j
    in
    (match hists with
    | None ->
        for j = 0 to n - 1 do
          exec j
        done
    | Some hs ->
        let until_sample = ref 1 in
        for j = 0 to n - 1 do
          decr until_sample;
          if !until_sample = 0 then begin
            until_sample := sample;
            let c = op_class (Bytes.unsafe_get s.opcodes j) in
            let t0 = now_ns () in
            exec j;
            Util.Histogram.add hs.(c) (now_ns () - t0)
          end
          else exec j
        done);
    (!found, !missed, !scanned, hists)
  in
  let dt, per_thread = timed_domains threads body in
  let ops = Array.length p.streams.(0).args * threads in
  let reads_found = List.fold_left (fun a (f, _, _, _) -> a + f) 0 per_thread in
  let reads_missed = List.fold_left (fun a (_, m, _, _) -> a + m) 0 per_thread in
  let scanned_total = List.fold_left (fun a (_, _, s, _) -> a + s) 0 per_thread in
  let hist_lists = List.map (fun (_, _, _, ho) -> ho) per_thread in
  let lat_insert = merge_class hist_lists 0 in
  let lat_read = merge_class hist_lists 1 in
  let lat_scan = merge_class hist_lists 2 in
  let merged =
    if not latency then None
    else begin
      let h = Util.Histogram.create () in
      List.iter
        (fun ho ->
          match ho with
          | Some x -> Array.iter (Util.Histogram.merge h) x
          | None -> ())
        hist_lists;
      Some h
    end
  in
  {
    workload = p.workload;
    threads;
    ops;
    seconds = dt;
    mops = float_of_int ops /. dt /. 1e6;
    reads_found;
    reads_missed;
    scanned_total;
    latency = merged;
    lat_insert;
    lat_read;
    lat_scan;
    seed = p.seed;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "%-5s threads=%-2d ops=%-9d %.3fs  %8.3f Mops/s  (found=%d missed=%d \
     scanned=%d seed=%d)"
    (workload_name r.workload) r.threads r.ops r.seconds r.mops r.reads_found
    r.reads_missed r.scanned_total r.seed
