(* Per-domain ring buffers keyed by the *real* domain id.

   The original trace ring picked its slot as [did land (Shard.shards - 1)],
   so two live domains whose ids collide modulo 128 shared one ring and
   raced on its [next]/[total] fields unsynchronized — events were silently
   lost.  Domain ids are assigned sequentially and never reused, so a
   campaign that spawns domains in waves (every {!Loadgen.run} spawns a
   fresh set) walks past 128 quickly.  Here each recording domain gets its
   own ring, created on first use in a registry that grows on demand.

   Concurrency argument: a ring is created by its owner domain under
   [mu] and thereafter written only by that owner, so the hot-path
   record is a plain write to domain-private memory.  The registry array
   is replaced on growth; a stale unsynchronized read of the old array
   still finds the caller's own ring (growth copies every slot, and the
   caller's own creation is ordered before its later reads), so the fast
   path needs no lock.  Readers ([dump]/[total]) take [mu] to see the
   latest registry but read ring contents unsynchronized — the same
   snapshot-after-join discipline as {!Shard} counter merging. *)

type 'a ring = {
  owner : int; (* domain id; rings are keyed and written by owner only *)
  events : 'a option array;
  mutable next : int;
  mutable total : int; (* recorded ever, retained or overwritten *)
}

type 'a t = {
  mu : Mutex.t;
  mutable cap : int; (* capacity of rings created from now on *)
  mutable rings : 'a ring option array; (* index = domain id *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Domring.create: capacity must be positive";
  { mu = Mutex.create (); cap = capacity; rings = [||] }

let capacity t = t.cap

(** Change the per-ring capacity.  Existing rings are discarded (their
    retained events included): capacity is a creation-time property, so a
    live resize would mix ring sizes within one dump. *)
let set_capacity t n =
  if n <= 0 then invalid_arg "Domring.set_capacity: capacity must be positive";
  Mutex.lock t.mu;
  t.cap <- n;
  t.rings <- [||];
  Mutex.unlock t.mu

let clear t =
  Mutex.lock t.mu;
  t.rings <- [||];
  Mutex.unlock t.mu

(* The calling domain's ring, created on first use. *)
let ring_for t =
  let did = (Domain.self () :> int) in
  let fast = if did < Array.length t.rings then t.rings.(did) else None in
  match fast with
  | Some r -> r
  | None ->
      Mutex.lock t.mu;
      if did >= Array.length t.rings then begin
        let n = max (did + 1) (max 8 (2 * Array.length t.rings)) in
        let a = Array.make n None in
        Array.blit t.rings 0 a 0 (Array.length t.rings);
        t.rings <- a
      end;
      let r =
        match t.rings.(did) with
        | Some r -> r (* a clear/grow raced us; our ring survived the copy *)
        | None ->
            let r =
              { owner = did; events = Array.make t.cap None; next = 0; total = 0 }
            in
            t.rings.(did) <- Some r;
            r
      in
      Mutex.unlock t.mu;
      r

let record t v =
  let r = ring_for t in
  let cap = Array.length r.events in
  r.events.(r.next) <- Some v;
  r.next <- (r.next + 1) mod cap;
  r.total <- r.total + 1

let fold_rings t f acc =
  Mutex.lock t.mu;
  let rings = t.rings in
  Mutex.unlock t.mu;
  Array.fold_left
    (fun acc -> function None -> acc | Some r -> f acc r)
    acc rings

(** Every retained event, unordered (callers sort by their own stamp). *)
let dump t =
  fold_rings t
    (fun acc r ->
      Array.fold_left
        (fun acc -> function Some e -> e :: acc | None -> acc)
        acc r.events)
    []

(** Events recorded ever, including those since overwritten. *)
let total t = fold_rings t (fun acc r -> acc + r.total) 0

(** Events lost to ring overwrites across all domains. *)
let dropped t =
  fold_rings t (fun acc r -> acc + max 0 (r.total - Array.length r.events)) 0

(** Domains that have recorded at least once since the last clear. *)
let rings_allocated t = fold_rings t (fun acc _ -> acc + 1) 0
