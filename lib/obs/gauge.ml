(* Named gauges: a sampled value rather than an accumulated one.  A gauge is
   a callback so modules can expose internal state (LLC miss totals, dirty
   line counts) without the registry holding stale copies. *)

type t = { name : string; read : unit -> int }

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let registry_mu = Mutex.create ()

let v name read =
  Mutex.lock registry_mu;
  let t =
    match Hashtbl.find_opt registry name with
    | Some t -> t
    | None ->
        let t = { name; read } in
        Hashtbl.add registry name t;
        t
  in
  Mutex.unlock registry_mu;
  t

let name t = t.name
let value t = t.read ()

let all () =
  Mutex.lock registry_mu;
  let l = Hashtbl.fold (fun _ t acc -> t :: acc) registry [] in
  Mutex.unlock registry_mu;
  List.sort (fun a b -> compare a.name b.name) l
