(* Chrome trace-event export: spans + trace events + site attribution.

   Serializes everything the observability layer retained into the Trace
   Event Format that chrome://tracing and https://ui.perfetto.dev load
   directly ({"traceEvents": [...]}; timestamps in microseconds):

   - each finished {!Span} becomes four complete ("X") slices — queue /
     apply / epoch_wait / fence — on the row of the shard that served it, plus a
     whole-request slice on the submitting domain's row, so queue waits,
     batch formation and fence stalls are visible as gaps and bars;
   - each {!Trace} event becomes an instant ("i") on its domain's row;
   - each {!Site} with any activity becomes one counter ("C") sample with
     its cumulative clwb/sfence totals, giving the flush/fence attribution
     a track without needing per-hit events.

   Rows: shards are tid 0..n on pid 1 ("serve"); domains are tid = domain
   id on pid 2 ("domains").  Timestamps are normalized so the view starts
   at 0.  Ring-drop accounting goes into "otherData" — an export from
   overwritten rings is a window, not a complete history. *)

module J = Json

let us_of_ns ns = float_of_int ns /. 1e3
let pid_serve = 1
let pid_domains = 2

(* One trace-event object. *)
let ev ~name ~cat ~ph ~ts ?dur ~pid ~tid ?(args = []) () =
  J.Obj
    ([
       ("name", J.Str name);
       ("cat", J.Str cat);
       ("ph", J.Str ph);
       ("ts", J.Num ts);
     ]
    @ (match dur with Some d -> [ ("dur", J.Num d) ] | None -> [])
    @ [ ("pid", J.int pid); ("tid", J.int tid) ]
    @ (match args with [] -> [] | a -> [ ("args", J.Obj a) ]))

let thread_name ~pid ~tid name =
  J.Obj
    [
      ("name", J.Str "thread_name");
      ("ph", J.Str "M");
      ("pid", J.int pid);
      ("tid", J.int tid);
      ("args", J.Obj [ ("name", J.Str name) ]);
    ]

let span_events ~t0 sp =
  let open Span in
  let rel ns = us_of_ns (ns - t0) in
  let dur a b = us_of_ns (max 0 (b - a)) in
  let args = [ ("shard", J.int sp.sid); ("client_domain", J.int sp.domain) ] in
  [
    ev ~name:"queue" ~cat:"span" ~ph:"X" ~ts:(rel sp.t_enqueue)
      ~dur:(dur sp.t_enqueue sp.t_dequeue) ~pid:pid_serve ~tid:sp.sid ~args ();
    ev ~name:"apply" ~cat:"span" ~ph:"X" ~ts:(rel sp.t_dequeue)
      ~dur:(dur sp.t_dequeue sp.t_applied) ~pid:pid_serve ~tid:sp.sid ~args ();
    ev ~name:"epoch_wait" ~cat:"span" ~ph:"X" ~ts:(rel sp.t_applied)
      ~dur:(dur sp.t_applied sp.t_epoch) ~pid:pid_serve ~tid:sp.sid ~args ();
    ev ~name:"fence" ~cat:"span" ~ph:"X" ~ts:(rel sp.t_epoch)
      ~dur:(dur sp.t_epoch sp.t_fenced) ~pid:pid_serve ~tid:sp.sid ~args ();
    ev ~name:"request" ~cat:"span" ~ph:"X" ~ts:(rel sp.t_submit)
      ~dur:(dur sp.t_submit sp.t_ack) ~pid:pid_domains ~tid:sp.domain ~args ();
  ]

let trace_event ~t0 e =
  let open Trace in
  ev
    ~name:(kind_name e.kind ^ ": " ^ e.label)
    ~cat:"trace" ~ph:"i"
    ~ts:(us_of_ns (e.ts - t0))
    ~pid:pid_domains ~tid:e.domain
    ~args:[ ("seq", J.int e.seq); ("arg", J.int e.arg) ]
    ()

let site_counter ~end_ts s =
  ev
    ~name:("site/" ^ Site.name s)
    ~cat:"site" ~ph:"C" ~ts:end_ts ~pid:pid_serve ~tid:0
    ~args:
      [
        ("clwb", J.int (Site.clwb_count s));
        ("sfence", J.int (Site.sfence_count s));
      ]
    ()

let to_json () =
  let spans = Span.dump () in
  let traces = Trace.dump () in
  (* Normalize to the earliest stamp so the viewer opens at t=0. *)
  let t0 =
    let m = ref max_int in
    List.iter (fun sp -> m := min !m sp.Span.t_submit) spans;
    List.iter (fun e -> m := min !m e.Trace.ts) traces;
    if !m = max_int then 0 else !m
  in
  let t_end =
    let m = ref 0 in
    List.iter (fun sp -> m := max !m sp.Span.t_ack) spans;
    List.iter (fun e -> m := max !m e.Trace.ts) traces;
    !m
  in
  let sites =
    List.filter
      (fun s -> Site.clwb_count s > 0 || Site.sfence_count s > 0)
      (Site.all ())
  in
  let shard_ids =
    List.sort_uniq compare (List.map (fun sp -> sp.Span.sid) spans)
  in
  let domain_ids =
    List.sort_uniq compare
      (List.map (fun sp -> sp.Span.domain) spans
      @ List.map (fun e -> e.Trace.domain) traces)
  in
  let meta =
    List.map
      (fun sid -> thread_name ~pid:pid_serve ~tid:sid (Printf.sprintf "shard %d" sid))
      shard_ids
    @ List.map
        (fun d ->
          thread_name ~pid:pid_domains ~tid:d (Printf.sprintf "domain %d" d))
        domain_ids
  in
  let events =
    meta
    @ List.concat_map (span_events ~t0) spans
    @ List.map (trace_event ~t0) traces
    @ List.map (site_counter ~end_ts:(us_of_ns (max 0 (t_end - t0)))) sites
  in
  J.Obj
    [
      ("traceEvents", J.List events);
      ("displayTimeUnit", J.Str "ms");
      ( "otherData",
        J.Obj
          [
            ("spans", J.int (List.length spans));
            ("span_dropped", J.int (Span.dropped ()));
            ("trace_events", J.int (List.length traces));
            ("trace_dropped", J.int (Trace.dropped ()));
          ] );
    ]

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> J.to_channel oc (to_json ()))
