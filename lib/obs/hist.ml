(* Named, per-domain sharded log-scale histograms.

   One {!Util.Histogram} per domain slot; [observe] mutates only the calling
   domain's histogram (slot ownership as in {!Shard}), [merged] folds the
   slots into a fresh histogram for percentile queries. *)

type t = { name : string; slots : Util.Histogram.t array }

let registry : (string, t) Hashtbl.t = Hashtbl.create 32
let registry_mu = Mutex.create ()

let v name =
  Mutex.lock registry_mu;
  let t =
    match Hashtbl.find_opt registry name with
    | Some t -> t
    | None ->
        let t =
          { name; slots = Array.init Shard.shards (fun _ -> Util.Histogram.create ()) }
        in
        Hashtbl.add registry name t;
        t
  in
  Mutex.unlock registry_mu;
  t

let name t = t.name

let observe t ns =
  Util.Histogram.add t.slots.((Domain.self () :> int) land (Shard.shards - 1)) ns

let merged t =
  let h = Util.Histogram.create () in
  Array.iter (fun s -> Util.Histogram.merge h s) t.slots;
  h

let count t = Array.fold_left (fun a s -> a + Util.Histogram.count s) 0 t.slots

let reset t =
  Array.iteri (fun i _ -> t.slots.(i) <- Util.Histogram.create ()) t.slots

let all () =
  Mutex.lock registry_mu;
  let l = Hashtbl.fold (fun _ t acc -> t :: acc) registry [] in
  Mutex.unlock registry_mu;
  List.sort (fun a b -> compare a.name b.name) l

let reset_all () = List.iter reset (all ())
