(* Per-domain shard slots.

   Every sharded metric keeps one slot per OCaml domain so the hot path is a
   write to domain-private memory: no CAS, no shared cache line.  Slots are
   picked by domain id modulo [shards]; ids are assigned sequentially by the
   runtime, so two live domains only collide when more than [shards] domains
   run at once — far above the recommended domain count.  Counter slots are
   plain [int array] cells spaced [stride] words (64 bytes) apart, which is
   what actually pads them: OCaml atomics are boxed, so an "atomic array"
   would put neighbouring counters on one line anyway.

   Merging a metric reads every slot without synchronization.  Benchmarks
   snapshot after [Domain.join], which orders all worker writes before the
   read; a snapshot taken while workers still run may lag by a few
   increments, which is fine for metrics. *)

let shards = 128
let stride = 8 (* 8 words = 64 bytes: one slot per cache line *)

(* Slot word-index of the current domain within a [shards * stride] array. *)
let slot () = ((Domain.self () :> int) land (shards - 1)) * stride
