(* Structured sanitizer diagnostics.

   The psan sanitizer reports findings here rather than printing: each
   diagnostic carries the offending {!Site} (where the unpersisted store /
   redundant flush / racy write happened), the site that *exposed* it (the
   publication or fence), the substrate object and global line it concerns,
   and the reporting domain.  Tests assert on counts and kinds; the bench
   and CLI front ends pretty-print the collected list.

   Identical findings are deduplicated: repeated occurrences of the same
   (kind, sites, object) only bump a count, so a bug hit once per operation
   in a million-op run still reads as one line.  The sink is shared by every
   domain and guarded by a mutex — diagnostics are rare events on the
   sanitizer's slow path, so contention is irrelevant. *)

type t = {
  kind : string; (* "unpersisted-publish" | "redundant-flush" | ... *)
  store_site : Site.t option; (* where the offending store/flush happened *)
  expose_site : Site.t option; (* the publication/fence that exposed it *)
  obj : string; (* substrate object name, e.g. "ff.keys" *)
  line : int; (* global line id (word id for race reports) *)
  domain : int; (* domain that triggered the report *)
  detail : string;
}

let mu = Mutex.create ()
let items : (t * int ref) list ref = ref []
let total = ref 0

let site_name = function Some s -> Site.name s | None -> "?"

let key d =
  Printf.sprintf "%s|%s|%s|%s" d.kind (site_name d.store_site)
    (site_name d.expose_site) d.obj

let seen : (string, int ref) Hashtbl.t = Hashtbl.create 64

let report d =
  Mutex.lock mu;
  incr total;
  (match Hashtbl.find_opt seen (key d) with
  | Some n -> incr n
  | None ->
      let n = ref 1 in
      Hashtbl.add seen (key d) n;
      items := (d, n) :: !items);
  Mutex.unlock mu

(** Distinct findings, oldest first, each with its occurrence count. *)
let all () =
  Mutex.lock mu;
  let l = List.rev_map (fun (d, n) -> (d, !n)) !items in
  Mutex.unlock mu;
  l

(** Number of distinct findings (not occurrences). *)
let count () =
  Mutex.lock mu;
  let n = List.length !items in
  Mutex.unlock mu;
  n

let count_kind k =
  Mutex.lock mu;
  let n =
    List.fold_left
      (fun acc (d, _) -> if String.equal d.kind k then acc + 1 else acc)
      0 !items
  in
  Mutex.unlock mu;
  n

(** Total occurrences across all findings. *)
let occurrences () =
  Mutex.lock mu;
  let n = !total in
  Mutex.unlock mu;
  n

let clear () =
  Mutex.lock mu;
  items := [];
  total := 0;
  Hashtbl.reset seen;
  Mutex.unlock mu

let pp ppf (d, n) =
  Format.fprintf ppf "[%s] %s line %d: %s (store %s, exposed at %s, domain %d)"
    d.kind d.obj d.line d.detail (site_name d.store_site)
    (site_name d.expose_site) d.domain;
  if n > 1 then Format.fprintf ppf " x%d" n

let pp_all ppf () =
  match all () with
  | [] -> Format.fprintf ppf "psan: no diagnostics@."
  | l ->
      Format.fprintf ppf "psan: %d finding(s), %d occurrence(s)@."
        (List.length l) (occurrences ());
      List.iter (fun d -> Format.fprintf ppf "  %a@." pp d) l
