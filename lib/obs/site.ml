(* Attribution sites: index name × structural location.

   A site is created once at module initialization of an index library
   (e.g. [Site.v ~index:"P-ART" "n4/add"]) and passed to the flush, fence
   and crash-point primitives, which bump the site's sharded counters.  The
   substrate also routes every *untagged* flush and fence to {!untagged},
   so the sum over all sites always equals the global [Stats] totals — the
   invariant the JSON exporter checks.

   Sites created with [~crash:true] declare a crash-point location; the
   campaign coverage report compares the declared set against the sites
   where an injected crash actually fired. *)

type t = {
  index : string;
  label : string;
  name : string; (* "index/label" *)
  clwb : Counter.t;
  sfence : Counter.t;
  crash_site : bool;
  crash_visits : Counter.t; (* armed passes through the point *)
  crash_fires : Counter.t; (* crashes injected at the point *)
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let registry_mu = Mutex.create ()

let create ~index ~crash label name =
  let t =
    {
      index;
      label;
      name;
      clwb = Counter.v ("site." ^ name ^ ".clwb");
      sfence = Counter.v ("site." ^ name ^ ".sfence");
      crash_site = crash;
      crash_visits = Counter.v ("site." ^ name ^ ".crash_visits");
      crash_fires = Counter.v ("site." ^ name ^ ".crash_fires");
    }
  in
  Hashtbl.add registry name t;
  t

(* Registration is strict: a tag names one structural location, and two
   [v] calls for the same tag would silently share (or, typo'd, split)
   attribution between unrelated call sites.  Callers that legitimately
   re-derive a site from a tag they did not register (dynamic labels,
   test probes) use [find_or_create]/[find]. *)
let v ~index ?(crash = false) label =
  let name = index ^ "/" ^ label in
  Mutex.lock registry_mu;
  match Hashtbl.find_opt registry name with
  | Some _ ->
      Mutex.unlock registry_mu;
      invalid_arg
        (Printf.sprintf
           "Obs.Site.v: duplicate registration of site %S — each tag is \
            registered exactly once (use Obs.Site.find_or_create to look up \
            a site registered elsewhere)"
           name)
  | None ->
      let t = create ~index ~crash label name in
      Mutex.unlock registry_mu;
      t

(** Memoizing lookup: returns the already-registered site for this tag, or
    registers it.  For dynamic tags (the sanitizer's per-allocation
    "alloc/<name>" sites) and probes that want an index's site without
    owning its registration. *)
let find_or_create ~index ?(crash = false) label =
  let name = index ^ "/" ^ label in
  Mutex.lock registry_mu;
  let t =
    match Hashtbl.find_opt registry name with
    | Some t -> t
    | None -> create ~index ~crash label name
  in
  Mutex.unlock registry_mu;
  t

let find name =
  Mutex.lock registry_mu;
  let t = Hashtbl.find_opt registry name in
  Mutex.unlock registry_mu;
  t

(* Catch-all for flushes and fences issued without a site label (harness
   code, conversion prologues not yet tagged). *)
let untagged = v ~index:"_untagged" "flush"

let name t = t.name
let index t = t.index
let label t = t.label
let is_crash_site t = t.crash_site

let hit_clwb t = Counter.incr t.clwb
let hit_sfence t = Counter.incr t.sfence
let crash_visit t = Counter.incr t.crash_visits
let crash_fire t = Counter.incr t.crash_fires

let clwb_count t = Counter.value t.clwb
let sfence_count t = Counter.value t.sfence
let crash_visit_count t = Counter.value t.crash_visits
let crash_fire_count t = Counter.value t.crash_fires

let all () =
  Mutex.lock registry_mu;
  let l = Hashtbl.fold (fun _ t acc -> t :: acc) registry [] in
  Mutex.unlock registry_mu;
  List.sort (fun a b -> compare a.name b.name) l

let by_index idx = List.filter (fun t -> t.index = idx) (all ())

(* Distinct index names owning at least one registered site. *)
let indexes () =
  List.sort_uniq compare (List.map (fun t -> t.index) (all ()))

(* Crash-point coverage of one index: sites declared as crash points, how
   many were visited while armed, how many actually had a crash injected. *)
type coverage = {
  cov_index : string;
  registered : int;
  visited : int;
  exercised : int;
  unexercised : string list; (* labels of declared-but-never-fired points *)
}

let coverage idx =
  let sites = List.filter is_crash_site (by_index idx) in
  let visited = List.filter (fun s -> crash_visit_count s > 0) sites in
  let fired = List.filter (fun s -> crash_fire_count s > 0) sites in
  {
    cov_index = idx;
    registered = List.length sites;
    visited = List.length visited;
    exercised = List.length fired;
    unexercised =
      List.filter_map
        (fun s -> if crash_fire_count s = 0 then Some s.label else None)
        sites;
  }
