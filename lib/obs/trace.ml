(* Lightweight span/event trace: a fixed-capacity ring buffer per domain.

   Recording is off by default and costs one ref read when disabled.  When
   enabled, an event is a small record stamped with a global sequence number
   (atomic fetch-add — tracing trades some contention for a total order)
   written into the recording domain's ring; the oldest events of a full
   ring are silently dropped, which bounds both memory and overhead.  [dump]
   merges all rings in sequence order, typically printed when a crash
   campaign fails. *)

type kind =
  | Op_begin (* label = op name, arg = key/universe index *)
  | Op_end
  | Crash_point (* armed pass through a crash point; label = site *)
  | Crash_fired (* crash injected; label = site *)
  | Recovery (* label = index *)
  | Llc_evict (* arg = evicted line id *)
  | Note

let kind_name = function
  | Op_begin -> "op_begin"
  | Op_end -> "op_end"
  | Crash_point -> "crash_point"
  | Crash_fired -> "crash_fired"
  | Recovery -> "recovery"
  | Llc_evict -> "llc_evict"
  | Note -> "note"

type event = { seq : int; domain : int; kind : kind; label : string; arg : int }

let capacity = 1024 (* events per domain ring *)

type ring = { events : event option array; mutable next : int; mutable total : int }

let rings =
  Array.init Shard.shards (fun _ ->
      { events = Array.make capacity None; next = 0; total = 0 })

let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let seq = Atomic.make 0

let record kind ?(arg = 0) label =
  if !enabled_flag then begin
    let did = (Domain.self () :> int) in
    let r = rings.(did land (Shard.shards - 1)) in
    let s = Atomic.fetch_and_add seq 1 in
    r.events.(r.next) <- Some { seq = s; domain = did; kind; label; arg };
    r.next <- (r.next + 1) mod capacity;
    r.total <- r.total + 1
  end

(* Events dropped so far (ring overwrites): total recorded - retained. *)
let dropped () =
  Array.fold_left
    (fun acc r -> acc + max 0 (r.total - capacity))
    0 rings

let clear () =
  Array.iter
    (fun r ->
      Array.fill r.events 0 capacity None;
      r.next <- 0;
      r.total <- 0)
    rings;
  Atomic.set seq 0

(** All retained events, oldest first. *)
let dump () =
  let acc = ref [] in
  Array.iter
    (Array.iter (function Some e -> acc := e :: !acc | None -> ()))
    (Array.map (fun r -> r.events) rings);
  List.sort (fun a b -> compare a.seq b.seq) !acc

(** The [n] most recent events, oldest first. *)
let recent n =
  let all = dump () in
  let len = List.length all in
  if len <= n then all else List.filteri (fun i _ -> i >= len - n) all

let pp_event ppf e =
  Fmt.pf ppf "#%-6d d%-2d %-12s %s%s" e.seq e.domain (kind_name e.kind) e.label
    (if e.arg = 0 then "" else Printf.sprintf " (%d)" e.arg)
