(* Lightweight event trace: a fixed-capacity ring buffer per domain.

   Recording is off by default and costs one ref read when disabled.  When
   enabled, an event is a small record stamped with a global sequence number
   (atomic fetch-add — tracing trades some contention for a total order) and
   a monotonic-ns timestamp, written into the recording domain's ring (see
   {!Domring}: rings are keyed by *real* domain id, so concurrent domains
   never share one); the oldest events of a full ring are silently dropped,
   which bounds both memory and overhead.  [dump] merges all rings in
   sequence order, typically printed when a crash campaign fails; always
   print {!pp_header} (or check {!dropped}) alongside a dump so a truncated
   window is never read as the complete history. *)

type kind =
  | Op_begin (* label = op name, arg = key/universe index *)
  | Op_end
  | Crash_point (* armed pass through a crash point; label = site *)
  | Crash_fired (* crash injected; label = site *)
  | Recovery (* label = index *)
  | Llc_evict (* arg = evicted line id *)
  | Note

let kind_name = function
  | Op_begin -> "op_begin"
  | Op_end -> "op_end"
  | Crash_point -> "crash_point"
  | Crash_fired -> "crash_fired"
  | Recovery -> "recovery"
  | Llc_evict -> "llc_evict"
  | Note -> "note"

type event = {
  seq : int;
  ts : int; (* monotonic ns, comparable with Span stamps *)
  domain : int;
  kind : kind;
  label : string;
  arg : int;
}

let default_capacity = 1024 (* events per domain ring *)

let rings : event Domring.t =
  let cap =
    match Sys.getenv_opt "RECIPE_TRACE_CAP" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n > 0 -> n
        | _ -> default_capacity)
    | None -> default_capacity
  in
  Domring.create ~capacity:cap

let capacity () = Domring.capacity rings
let set_capacity n = Domring.set_capacity rings n
let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b
let seq = Atomic.make 0
let now_ns () = Int64.to_int (Monotonic_clock.now ())

let record kind ?(arg = 0) label =
  if !enabled_flag then begin
    let did = (Domain.self () :> int) in
    let s = Atomic.fetch_and_add seq 1 in
    Domring.record rings { seq = s; ts = now_ns (); domain = did; kind; label; arg }
  end

(* Events dropped so far (ring overwrites): total recorded - retained. *)
let dropped () = Domring.dropped rings
let total () = Domring.total rings

let clear () =
  Domring.clear rings;
  Atomic.set seq 0

(** All retained events, oldest first. *)
let dump () =
  List.sort (fun a b -> compare a.seq b.seq) (Domring.dump rings)

(** The [n] most recent events, oldest first. *)
let recent n =
  let all = dump () in
  let len = List.length all in
  if len <= n then all else List.filteri (fun i _ -> i >= len - n) all

let pp_event ppf e =
  Fmt.pf ppf "#%-6d d%-2d %-12s %s%s" e.seq e.domain (kind_name e.kind) e.label
    (if e.arg = 0 then "" else Printf.sprintf " (%d)" e.arg)

(** One-line dump header: retained/dropped accounting for the window that a
    subsequent [dump]/[recent] print actually covers. *)
let pp_header ppf () =
  let tot = total () in
  let drop = dropped () in
  Fmt.pf ppf "trace: %d recorded, %d retained, %d dropped (capacity %d/domain)%s"
    tot (tot - drop) drop (capacity ())
    (if drop > 0 then " — window is INCOMPLETE" else "")
