(* Named, per-domain sharded counters.

   [incr]/[add] touch only the calling domain's cache-padded slot (see
   {!Shard}), so multi-threaded YCSB runs can keep counting without the
   contention that forced the old single-block [Stats] counters to be
   single-threaded-only.  [value] merges the slots. *)

type t = { name : string; slots : int array }

(* Registry of every counter ever created, for exporters.  Creation is rare
   (module init, first use); guarded by a mutex.  Reads copy under the same
   mutex so enumeration never sees a half-added entry. *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let registry_mu = Mutex.create ()

let v name =
  Mutex.lock registry_mu;
  let t =
    match Hashtbl.find_opt registry name with
    | Some t -> t
    | None ->
        let t = { name; slots = Array.make (Shard.shards * Shard.stride) 0 } in
        Hashtbl.add registry name t;
        t
  in
  Mutex.unlock registry_mu;
  t

let name t = t.name

let incr t =
  let i = Shard.slot () in
  Array.unsafe_set t.slots i (Array.unsafe_get t.slots i + 1)

let add t n =
  let i = Shard.slot () in
  Array.unsafe_set t.slots i (Array.unsafe_get t.slots i + n)

let value t =
  let s = ref 0 in
  let i = ref 0 in
  while !i < Array.length t.slots do
    s := !s + t.slots.(!i);
    i := !i + Shard.stride
  done;
  !s

let reset t = Array.fill t.slots 0 (Array.length t.slots) 0

let all () =
  Mutex.lock registry_mu;
  let l = Hashtbl.fold (fun _ t acc -> t :: acc) registry [] in
  Mutex.unlock registry_mu;
  List.sort (fun a b -> compare a.name b.name) l

let reset_all () = List.iter reset (all ())
