(* Minimal JSON: enough to emit the bench report and parse it back for
   validation.  No external dependency is available in this environment, so
   the exporter carries its own emitter and a small recursive-descent
   parser (objects, arrays, strings with the common escapes, numbers,
   booleans, null). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int i = Num (float_of_int i)

(* --- emit ------------------------------------------------------------- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number f =
  (* JSON has no NaN/infinity; emit null so consumers fail loudly rather
     than on a syntax error. *)
  if Float.is_nan f || f = infinity || f = neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec emit b indent v =
  let pad n = Buffer.add_string b (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Num f -> Buffer.add_string b (number f)
  | Str s -> escape b s
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          emit b (indent + 2) x)
        xs;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          escape b k;
          Buffer.add_string b ": ";
          emit b (indent + 2) x)
        kvs;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 4096 in
  emit b 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let to_channel oc v = output_string oc (to_string v)

(* --- parse ------------------------------------------------------------ *)

exception Parse_error of string

type state = { s : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some x when x = c -> st.pos <- st.pos + 1
  | _ -> error st (Printf.sprintf "expected %C" c)

let literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s && String.sub st.s st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else error st ("expected " ^ word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then error st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents b
    | '\\' ->
        (if st.pos >= String.length st.s then error st "bad escape";
         let e = st.s.[st.pos] in
         st.pos <- st.pos + 1;
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
             if st.pos + 4 > String.length st.s then error st "bad \\u";
             let hex = String.sub st.s st.pos 4 in
             st.pos <- st.pos + 4;
             let code =
               try int_of_string ("0x" ^ hex) with _ -> error st "bad \\u"
             in
             (* Only BMP code points below 0x80 are round-tripped exactly;
                others are emitted as '?' — our own output never needs
                more. *)
             if code < 0x80 then Buffer.add_char b (Char.chr code)
             else Buffer.add_char b '?'
         | _ -> error st "bad escape");
        go ()
    | c -> Buffer.add_char b c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.s && is_num st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  match float_of_string_opt (String.sub st.s start (st.pos - start)) with
  | Some f -> Num f
  | None -> error st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then begin
        expect st '}';
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              expect st ',';
              members ((k, v) :: acc)
          | Some '}' ->
              expect st '}';
              List.rev ((k, v) :: acc)
          | _ -> error st "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then begin
        expect st ']';
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              expect st ',';
              items (v :: acc)
          | Some ']' ->
              expect st ']';
              List.rev (v :: acc)
          | _ -> error st "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { s; pos = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then Error "trailing characters"
    else Ok v
  with Parse_error m -> Error m

(* --- accessors --------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_list = function List xs -> Some xs | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_num = function Num f -> Some f | _ -> None
