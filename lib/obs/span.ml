(* Request-lifecycle phase timing for the served path.

   A span follows one routed operation through the serving pipeline and is
   stamped with monotonic-ns phase boundaries:

     submit --route--> enqueue --queue wait--> dequeue --apply--> applied
            --parked until epoch close--> epoch --flush+fence--> fenced
            --wake + contribute--> ack

   so the derived phases decompose ack latency:

     queue      = dequeue - enqueue  (waiting in the shard ring)
     apply      = applied - dequeue  (index mutation, within the batch)
     epoch_wait = epoch   - applied  (parked: batch-tail / epoch-close wait)
     fence      = fenced  - epoch    (deferred line flushes + one sfence)
     ack        = ack     - submit   (client-observed; >= sum of the above)

   Per-op and per-batch group modes stamp [t_epoch] immediately before the
   flush work, so for them epoch_wait is the old batch-tail wait and fence
   is the pure flush+fence cost; epoch mode additionally accrues the
   controller's deliberate deferral into epoch_wait.

   Off-path discipline mirrors the PSan guard: when disabled, the serving
   hot path pays one ref read per request and allocates nothing (items
   carry a constant [None]).  When enabled, finished spans land in
   per-domain rings ({!Domring}, keyed by real domain id) for Traceview
   export, and a global counter tracks how many spans completed ever. *)

type t = {
  sid : int; (* shard the operation was routed to *)
  domain : int; (* submitting domain id *)
  mutable t_submit : int;
  mutable t_enqueue : int;
  mutable t_dequeue : int;
  mutable t_applied : int;
  mutable t_epoch : int; (* epoch close: parked wait ends, flush work begins *)
  mutable t_fenced : int;
  mutable t_ack : int;
}

let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b
let now () = Int64.to_int (Monotonic_clock.now ())
let default_capacity = 4096 (* finished spans retained per domain *)
let rings : t Domring.t = Domring.create ~capacity:default_capacity
let capacity () = Domring.capacity rings
let set_capacity n = Domring.set_capacity rings n

(* Spans finished ever (including ones since overwritten in the rings). *)
let finished = Atomic.make 0

let start ~sid =
  let ts = now () in
  {
    sid;
    domain = (Domain.self () :> int);
    t_submit = ts;
    t_enqueue = ts;
    t_dequeue = ts;
    t_applied = ts;
    t_epoch = ts;
    t_fenced = ts;
    t_ack = ts;
  }

(* Stamp the ack boundary and retain the span; called by the submitter
   after its wait completes, so every stamp is already published. *)
let finish sp =
  sp.t_ack <- now ();
  Atomic.incr finished;
  Domring.record rings sp

let queue_ns sp = max 0 (sp.t_dequeue - sp.t_enqueue)
let apply_ns sp = max 0 (sp.t_applied - sp.t_dequeue)
let epoch_ns sp = max 0 (sp.t_epoch - sp.t_applied)
let fence_ns sp = max 0 (sp.t_fenced - sp.t_epoch)
let ack_ns sp = max 0 (sp.t_ack - sp.t_submit)

(** Phase name/extractor pairs, in pipeline order — the shared vocabulary
    for histograms, bench JSON and the trace export. *)
let phases =
  [
    ("queue", queue_ns);
    ("apply", apply_ns);
    ("epoch_wait", epoch_ns);
    ("fence", fence_ns);
    ("ack", ack_ns);
  ]

let count () = Atomic.get finished

(** Retained finished spans, oldest submit first. *)
let dump () =
  List.sort (fun a b -> compare a.t_submit b.t_submit) (Domring.dump rings)

let dropped () = Domring.dropped rings

let clear () =
  Domring.clear rings;
  Atomic.set finished 0
