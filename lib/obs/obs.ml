(* Observability: metrics registry, attribution sites, trace ring, JSON.

   This library is the measurement layer under the whole reproduction.  The
   paper's key quantitative claims (Fig 4c/4d, Table 4) are *per-operation*
   flush/fence/LLC counts per index; the registry here is what lets the
   substrate attribute those events to the index and structural site that
   caused them, keep counting under multi-domain load (per-domain sharded
   slots, see {!Shard}), and export machine-readable reports.

   - {!Counter}, {!Gauge}, {!Hist}: named metrics, enumerable by exporters.
   - {!Site}: index × structural-location attribution for flushes, fences
     and crash points ("P-ART/n4/add"), plus crash-point coverage.
   - {!Domring}: per-domain ring registry keyed by real domain id, the
     storage under both the event trace and the span rings.
   - {!Trace}: per-domain fixed-capacity event ring, dumpable on failure.
   - {!Span}: request-lifecycle phase timing for the served path
     (submit/enqueue/dequeue/apply/fence/ack boundaries).
   - {!Traceview}: Chrome/Perfetto trace-event JSON export of spans, trace
     events and site attribution.
   - {!Json}: dependency-free JSON emit/parse for the bench exporter.

   [pmem] layers on top: the legacy [Pmem.Stats] block is now a façade over
   counters registered here. *)

module Counter = Counter
module Gauge = Gauge
module Hist = Hist
module Site = Site
module Domring = Domring
module Trace = Trace
module Span = Span
module Traceview = Traceview
module Json = Json
module Diag = Diag

(** Find-or-create shorthands. *)
let counter = Counter.v

let hist = Hist.v

(** Reset every registered counter and histogram and clear the trace ring —
    the between-experiments clean slate.  Site and metric *registration* is
    permanent; only the recorded values are cleared. *)
let reset_all () =
  Counter.reset_all ();
  Hist.reset_all ();
  Trace.clear ();
  Span.clear ();
  Diag.clear ()
