(** Crash-recovery testing framework (paper §5, evaluated in §7.5).

    The method: operations in PM indexes consist of a small number of
    ordered atomic steps, so it suffices to simulate a crash after each
    step.  Index code marks those steps with {!Pmem.Crash.point}; a
    campaign iterates crash positions, and for each one

    + loads the index, crashing at the chosen point (the interrupted
      operation returns mid-way with no clean-up — and, stronger than the
      paper's DRAM emulation, every unflushed cache line is discarded);
    + invokes the index's recovery hook;
    + performs a multi-threaded mixed insert/read phase;
    + reads back every key whose insert completed, checking values.

    The durability test separately asserts the §5 property that every
    dirtied cache line has been written back by the time an operation
    returns.

    Both tests found the FAST & FAIR and CCEH bugs reproduced behind the
    bug flags of those modules; all RECIPE-converted indexes must pass. *)

(** Index under test, over positive integer keys (ordered indexes adapt via
    {!Util.Keys.encode_int}). *)
type subject = {
  sname : string;
  insert : int -> int -> bool;
  lookup : int -> int option;
  recover : unit -> unit;
  scan_all : (unit -> (int * int) list) option;
      (** Ordered indexes: every binding in ascending key order; campaigns
          additionally verify scan consistency after recovery. *)
  sweep : (unit -> Recipe.Recovery.stats) option;
      (** The index's reachability leak sweep (reclaiming), run after each
          recovery; its stats are accumulated in the campaign report. *)
}

type report = {
  states_tested : int;  (** crash states exercised *)
  crashes_fired : int;  (** states in which the crash point was reached *)
  lost_keys : int;  (** completed inserts unreadable after recovery *)
  wrong_values : int;  (** reads returning a stale or wrong value *)
  stalled : int;  (** post-recovery operations that raised *)
}

val pp_report : Format.formatter -> report -> unit

(** [consistency_campaign ~make ~states ~load ~ops ~threads ~seed ()] runs
    the §5/§7.5 consistency test: [states] crash states, [load] keys loaded
    before the crash, [ops] mixed post-recovery operations on [threads]
    domains.  [make] must construct a fresh index (it runs under shadow
    mode).  Exceptions from post-recovery operations are counted as stalls,
    not propagated. *)
val consistency_campaign :
  make:(unit -> subject) ->
  states:int ->
  load:int ->
  ops:int ->
  threads:int ->
  seed:int ->
  unit ->
  report

(** [sweep ~make ~points ~stride ~load ()] enumerates crash positions
    deterministically — §5's "simulate a crash after each atomic store" —
    crashing the load phase at points 1, 1+stride, ... <= [points] and
    verifying after each recovery that completed inserts are readable and a
    further write proceeds.  Stops at the first failure by default (useful
    for hunting single-point bug windows like CCEH's directory doubling),
    and stops early once the load completes without crashing (all points
    exhausted). *)
val sweep :
  make:(unit -> subject) ->
  points:int ->
  stride:int ->
  load:int ->
  ?stop_on_failure:bool ->
  unit ->
  report

(** [durability_test ~make ~inserts ~seed ()] inserts keys one at a time
    and counts operations after which some dirtied cache line was left
    unflushed (including the initial allocation, which is how the paper
    caught the unflushed root nodes of FAST & FAIR and CCEH). *)
val durability_test : make:(unit -> subject) -> inserts:int -> seed:int -> unit -> int

(** [double_crash_campaign ~make ~states ~load ~seed ()] crashes the load,
    recovers, then crashes the post-recovery write phase as well (while
    writers may be fixing leftovers of the first crash — the consecutive-
    crash scenario in which §7.5's testing caught FAST & FAIR's merge bug),
    recovers again, and verifies every completed insert plus ordered-scan
    consistency. *)
val double_crash_campaign :
  make:(unit -> subject) -> states:int -> load:int -> seed:int -> unit -> report

(** Report of {!recovery_under_load_campaign}: the base consistency report
    plus fault-injection and recovery accounting.  [base.lost_keys = 0] is
    the zero-lost-acknowledged-operations invariant. *)
type load_report = {
  base : report;
  faults_injected : int;  (** faults fired by {!Faultinject} plans *)
  recoveries : int;  (** recovery invocations (> states when recovery itself crashed) *)
  recover_ns : int;  (** total wall-clock nanoseconds spent in recovery *)
  sweep_stats : Recipe.Recovery.stats;  (** summed leak-sweep results *)
}

val pp_load_report : Format.formatter -> load_report -> unit

(** [recovery_under_load_campaign ~make ~states ~load ~ops ~threads ~seed ()]
    — the capstone campaign: preload [load] acknowledged keys, crash a
    [threads]-domain mixed run mid-flight (at a declared crash point, or at
    an arbitrary substrate event when [~faults:true] arms a
    {!Faultinject.random_plan}), power-fail, run timed recovery
    (crashed again and retried when [~crash_during_recovery:true]), run the
    subject's reclaiming leak sweep, then resume mixed traffic on fresh
    domains concurrently with lazy repair and verify every acknowledged
    binding from all phases plus ordered-scan consistency. *)
val recovery_under_load_campaign :
  make:(unit -> subject) ->
  states:int ->
  load:int ->
  ops:int ->
  threads:int ->
  seed:int ->
  ?faults:bool ->
  ?crash_during_recovery:bool ->
  unit ->
  load_report

(** [crash_state_digest ~make ~states ~load ~seed ()] runs [states]
    single-threaded crash-recover cycles and folds every post-recovery
    observation (lookup results, scans, sweep stats, which step raised)
    into one word.  Fully seed-deterministic: two runs with equal arguments
    must return equal digests — the campaign-determinism regression.
    [~faults:false] draws crash positions from declared crash points
    instead of substrate events. *)
val crash_state_digest :
  make:(unit -> subject) ->
  states:int ->
  load:int ->
  seed:int ->
  ?faults:bool ->
  unit ->
  int
