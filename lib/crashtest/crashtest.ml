(* Crash-recovery testing (see crashtest.mli). *)

type subject = {
  sname : string;
  insert : int -> int -> bool;
  lookup : int -> int option;
  recover : unit -> unit;
  scan_all : (unit -> (int * int) list) option;
  sweep : (unit -> Recipe.Recovery.stats) option;
}

type report = {
  states_tested : int;
  crashes_fired : int;
  lost_keys : int;
  wrong_values : int;
  stalled : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "states=%d crashes=%d lost=%d wrong=%d stalled=%d -> %s" r.states_tested
    r.crashes_fired r.lost_keys r.wrong_values r.stalled
    (if r.lost_keys = 0 && r.wrong_values = 0 && r.stalled = 0 then "PASS"
     else "FAIL")

let fresh_env () =
  Pmem.Crash.disarm ();
  Pmem.Mode.set_shadow true;
  ignore (Pmem.persist_everything ());
  Util.Lock.new_epoch ()

(* Recovery, bracketed in the trace ring when tracing is on — a failing
   campaign's dump then shows which recovery preceded the bad lookup. *)
let recover_traced s =
  if Obs.Trace.enabled () then Obs.Trace.record Obs.Trace.Recovery s.sname;
  s.recover ()

(* Keys used by one campaign state: load keys, then per-thread disjoint
   fresh keys for the post-recovery phase. *)
let load_key i = i + 1
let phase2_key ~load tid j = load + 1 + (tid * 1_000_000) + j

(* Verify an ordered subject's full scan: ascending unique keys, and every
   expected binding present with its value.  Returns (wrong, lost). *)
let verify_scan s expected =
  match s.scan_all with
  | None -> (0, 0)
  | Some scan ->
      let wrong = ref 0 and lost = ref 0 in
      (try
         let items = scan () in
         let rec sorted = function
           | (a, _) :: ((b, _) :: _ as rest) ->
               if a >= b then incr wrong;
               sorted rest
           | [ _ ] | [] -> ()
         in
         sorted items;
         let tbl = Hashtbl.create (List.length items) in
         List.iter (fun (k, v) -> Hashtbl.replace tbl k v) items;
         List.iter
           (fun (k, v) ->
             match Hashtbl.find_opt tbl k with
             | Some v' -> if v' <> v then incr wrong
             | None -> incr lost)
           expected
       with _ -> incr wrong);
      (!wrong, !lost)

let consistency_campaign ~make ~states ~load ~ops ~threads ~seed () =
  let rng = Util.Rng.create seed in
  (* Estimate the crash-point count of a full load once, to draw crash
     positions uniformly over the whole load phase. *)
  let max_points =
    fresh_env ();
    let s = make () in
    let n =
      Pmem.Crash.count_points (fun () ->
          for i = 0 to load - 1 do
            ignore (s.insert (load_key i) (load_key i * 2))
          done)
    in
    max 1 n
  in
  let crashes = ref 0 and lost = ref 0 and wrong = ref 0 and stalled = ref 0 in
  for _state = 1 to states do
    fresh_env ();
    let s = make () in
    (* Load phase with a crash at a uniformly random atomic step. *)
    let completed = Array.make load false in
    Pmem.Crash.arm_at (1 + Util.Rng.below rng max_points);
    (try
       for i = 0 to load - 1 do
         if s.insert (load_key i) (load_key i * 2) then completed.(i) <- true
       done;
       Pmem.Crash.disarm ()
     with Pmem.Crash.Simulated_crash -> incr crashes);
    (* Power failure: all unflushed lines are lost; then recovery. *)
    Pmem.simulate_power_failure ();
    (try recover_traced s with _ -> incr stalled);
    (* Multi-threaded mixed phase: half inserts of fresh keys, half reads of
       loaded keys, statically split. *)
    let per = ops / threads in
    let body tid () =
      let r = Util.Rng.create (seed + tid + 7) in
      let errors = ref 0 and inserted = ref [] in
      for j = 0 to per - 1 do
        try
          if j land 1 = 0 then begin
            let k = phase2_key ~load tid j in
            if s.insert k (k * 3) then inserted := k :: !inserted
          end
          else begin
            let i = Util.Rng.below r load in
            match s.lookup (load_key i) with
            | Some v -> if v <> load_key i * 2 then incr errors
            | None -> if completed.(i) then incr errors
          end
        with _ -> incr errors
      done;
      (!errors, !inserted)
    in
    let domains = List.init threads (fun tid -> Domain.spawn (body tid)) in
    let results = List.map Domain.join domains in
    (* Join edge for the sanitizer's race check: the verification reads
       below are ordered after every worker's writes. *)
    Pmem.sanitize_sync ();
    List.iter (fun (e, _) -> stalled := !stalled + e) results;
    (* Read back every successfully inserted key. *)
    (try
       for i = 0 to load - 1 do
         if completed.(i) then
           match s.lookup (load_key i) with
           | Some v -> if v <> load_key i * 2 then incr wrong
           | None -> incr lost
       done;
       List.iter
         (fun (_, inserted) ->
           List.iter
             (fun k ->
               match s.lookup k with
               | Some v -> if v <> k * 3 then incr wrong
               | None -> incr lost)
             inserted)
         results;
       (* Ordered subjects: a full scan must be sorted and contain every
          completed binding. *)
       let expected = ref [] in
       for i = load - 1 downto 0 do
         if completed.(i) then expected := (load_key i, load_key i * 2) :: !expected
       done;
       let w, l = verify_scan s !expected in
       wrong := !wrong + w;
       lost := !lost + l
     with _ -> incr stalled)
  done;
  Pmem.Mode.set_shadow false;
  Pmem.Crash.disarm ();
  {
    states_tested = states;
    crashes_fired = !crashes;
    lost_keys = !lost;
    wrong_values = !wrong;
    stalled = !stalled;
  }

let sweep ~make ~points ~stride ~load ?(stop_on_failure = true) () =
  let crashes = ref 0 and lost = ref 0 and wrong = ref 0 and stalled = ref 0 in
  let states = ref 0 in
  let point = ref 1 in
  let continue = ref true in
  while !continue && !point <= points do
    incr states;
    fresh_env ();
    let s = make () in
    let completed = Array.make load false in
    Pmem.Crash.arm_at !point;
    let crashed =
      try
        for i = 0 to load - 1 do
          if s.insert (load_key i) (load_key i * 2) then completed.(i) <- true
        done;
        Pmem.Crash.disarm ();
        false
      with Pmem.Crash.Simulated_crash -> true
    in
    if crashed then incr crashes
    else (* past the last crash point of the load: nothing left to sweep *)
      continue := false;
    Pmem.simulate_power_failure ();
    (try
       recover_traced s;
       for i = 0 to load - 1 do
         if completed.(i) then
           match s.lookup (load_key i) with
           | Some v -> if v <> load_key i * 2 then incr wrong
           | None -> incr lost
       done;
       (* Post-recovery writes must proceed. *)
       let k = load + 999_999 in
       ignore (s.insert k k);
       if s.lookup k <> Some k then incr stalled
     with _ -> incr stalled);
    if stop_on_failure && !lost + !wrong + !stalled > 0 then continue := false;
    point := !point + stride
  done;
  Pmem.Mode.set_shadow false;
  Pmem.Crash.disarm ();
  {
    states_tested = !states;
    crashes_fired = !crashes;
    lost_keys = !lost;
    wrong_values = !wrong;
    stalled = !stalled;
  }

let double_crash_campaign ~make ~states ~load ~seed () =
  let rng = Util.Rng.create seed in
  let max_points =
    fresh_env ();
    let s = make () in
    let n =
      Pmem.Crash.count_points (fun () ->
          for i = 0 to load - 1 do
            ignore (s.insert (load_key i) (load_key i * 2))
          done)
    in
    max 1 n
  in
  let crashes = ref 0 and lost = ref 0 and wrong = ref 0 and stalled = ref 0 in
  for _state = 1 to states do
    fresh_env ();
    let s = make () in
    let completed = Array.make load false in
    (* First crash: during the load. *)
    Pmem.Crash.arm_at (1 + Util.Rng.below rng max_points);
    (try
       for i = 0 to load - 1 do
         if s.insert (load_key i) (load_key i * 2) then completed.(i) <- true
       done;
       Pmem.Crash.disarm ()
     with Pmem.Crash.Simulated_crash -> incr crashes);
    Pmem.simulate_power_failure ();
    (try recover_traced s with _ -> incr stalled);
    (* Second crash: during the writes that may be fixing first-crash
       leftovers. *)
    let completed2 = Array.make load false in
    Pmem.Crash.arm_at (1 + Util.Rng.below rng (max 1 (max_points / 2)));
    (try
       for i = 0 to load - 1 do
         let k = (2 * 1_000_000) + load_key i in
         if s.insert k (k * 2) then completed2.(i) <- true
       done;
       Pmem.Crash.disarm ()
     with Pmem.Crash.Simulated_crash -> incr crashes);
    Pmem.simulate_power_failure ();
    (try recover_traced s with _ -> incr stalled);
    (* Verify everything that completed in either phase. *)
    (try
       let expected = ref [] in
       for i = load - 1 downto 0 do
         if completed2.(i) then begin
           let k = (2 * 1_000_000) + load_key i in
           expected := (k, k * 2) :: !expected
         end
       done;
       for i = load - 1 downto 0 do
         if completed.(i) then
           expected := (load_key i, load_key i * 2) :: !expected
       done;
       List.iter
         (fun (k, v) ->
           match s.lookup k with
           | Some v' -> if v' <> v then incr wrong
           | None -> incr lost)
         !expected;
       let w, l = verify_scan s (List.sort compare !expected) in
       wrong := !wrong + w;
       lost := !lost + l;
       (* And writes still proceed. *)
       let k = 9_999_999 in
       ignore (s.insert k k);
       if s.lookup k <> Some k then incr stalled
     with _ -> incr stalled)
  done;
  Pmem.Mode.set_shadow false;
  Pmem.Crash.disarm ();
  {
    states_tested = states;
    crashes_fired = !crashes;
    lost_keys = !lost;
    wrong_values = !wrong;
    stalled = !stalled;
  }

(* --- recovery under load ------------------------------------------------------ *)

type load_report = {
  base : report;
  faults_injected : int;
  recoveries : int;
  recover_ns : int;
  sweep_stats : Recipe.Recovery.stats;
}

let pp_load_report ppf r =
  Format.fprintf ppf "%a | faults=%d recoveries=%d recover=%.1fus sweep(%a)"
    pp_report r.base r.faults_injected r.recoveries
    (float_of_int r.recover_ns /. 1e3)
    Recipe.Recovery.pp r.sweep_stats

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* One state of the recovery-under-load campaign:

   1. preload [load] keys (every returning insert is acknowledged: the
      commit combinators flush and fence before the index returns, so every
      acked binding must survive any later crash);
   2. run a multi-domain mixed phase and crash it mid-flight — either at a
      declared crash point or, with [~faults:true], at an arbitrary
      substrate event drawn by {!Faultinject.random_plan} (flush/fence/
      store/alloc/torn-line).  The crashing domain raises; the others drain
      on a stop flag, and a {!Util.Lock.abort_hook} kicks any domain
      spinning on a lock the crashed domain still holds;
   3. power-fail, then run timed recovery — optionally crashed again by a
      fresh plan ([~crash_during_recovery:true]), power-failed and retried,
      exercising recovery idempotence;
   4. leak-sweep (reclaiming), attributing repairs and orphans;
   5. resume mixed traffic on fresh domains (lazy repair runs concurrently
      with this traffic), then verify every acknowledged binding from all
      three phases, plus ordered-scan consistency. *)
let recovery_under_load_campaign ~make ~states ~load ~ops ~threads ~seed
    ?(faults = false) ?(crash_during_recovery = false) () =
  let rng = Util.Rng.create seed in
  let preview s =
    for i = 0 to load - 1 do
      ignore (s.insert (load_key i) (load_key i * 2))
    done;
    for j = 0 to (ops / threads) - 1 do
      let kk = phase2_key ~load 0 j in
      ignore (s.insert kk (kk * 3));
      ignore (s.lookup (load_key (j mod load)))
    done
  in
  let max_points =
    fresh_env ();
    let s = make () in
    max 1 (Pmem.Crash.count_points (fun () -> preview s))
  in
  let max_events =
    fresh_env ();
    let s = make () in
    let ev = Faultinject.count_events (fun () -> preview s) in
    max 1 ev.Faultinject.flushes
  in
  let crashes = ref 0 and lost = ref 0 and wrong = ref 0 and stalled = ref 0 in
  let faults0 = Faultinject.fire_count () in
  let recoveries = ref 0 and recover_ns = ref 0 in
  let sweep_stats = ref Recipe.Recovery.zero in
  let per = ops / threads in
  for _state = 1 to states do
    fresh_env ();
    let s = make () in
    (* Phase 0: acknowledged preload. *)
    let completed = Array.make load false in
    for i = 0 to load - 1 do
      if s.insert (load_key i) (load_key i * 2) then completed.(i) <- true
    done;
    (* Phase 1: multi-domain mixed traffic, crashed mid-flight. *)
    let stop = Atomic.make false in
    Util.Lock.set_abort_hook (fun () ->
        if Atomic.get stop then raise Pmem.Crash.Simulated_crash);
    if faults then Faultinject.arm (Faultinject.random_plan rng ~max_events)
    else Pmem.Crash.arm_at (1 + Util.Rng.below rng max_points);
    let body tid () =
      let acked = ref [] in
      (try
         for j = 0 to per - 1 do
           if Atomic.get stop then raise Stdlib.Exit;
           let kk = phase2_key ~load tid j in
           if j land 1 = 0 then begin
             if s.insert kk (kk * 3) then acked := kk :: !acked
           end
           else ignore (s.lookup (load_key (j mod load)))
         done
       with
      | Pmem.Crash.Simulated_crash | Pmem.Fault.Alloc_failed _ ->
          Atomic.set stop true
      | Stdlib.Exit -> ());
      !acked
    in
    let domains = List.init threads (fun tid -> Domain.spawn (body tid)) in
    let acked1 = List.concat_map Domain.join domains in
    Pmem.sanitize_sync ();
    Util.Lock.clear_abort_hook ();
    Faultinject.disarm ();
    Pmem.Crash.disarm ();
    if Atomic.get stop then incr crashes;
    (* Phase 2: power failure, then recovery — possibly crashed itself. *)
    Pmem.simulate_power_failure ();
    let rec run_recovery arm_fault =
      incr recoveries;
      if arm_fault then
        Faultinject.arm
          (Faultinject.random_plan rng ~max_events:(max 8 (max_events / 4)));
      let t0 = now_ns () in
      let outcome =
        try
          recover_traced s;
          `Ok
        with
        | Pmem.Crash.Simulated_crash -> `Crashed
        | _ -> `Stalled
      in
      recover_ns := !recover_ns + (now_ns () - t0);
      Faultinject.disarm ();
      match outcome with
      | `Ok -> ()
      | `Stalled -> incr stalled
      | `Crashed ->
          incr crashes;
          Pmem.simulate_power_failure ();
          run_recovery false
    in
    run_recovery (faults && crash_during_recovery);
    (match s.sweep with
    | Some sw -> (
        try sweep_stats := Recipe.Recovery.add !sweep_stats (sw ())
        with _ -> incr stalled)
    | None -> ());
    (* Phase 3: resume mixed traffic on fresh domains; lazy repair (helpers,
       consolidation) runs concurrently with this traffic. *)
    let body2 tid () =
      let acked = ref [] and errors = ref 0 in
      let r = Util.Rng.create (seed + (100 * tid) + 13) in
      for j = per to (2 * per) - 1 do
        try
          let kk = phase2_key ~load tid j in
          if j land 1 = 0 then begin
            if s.insert kk (kk * 3) then acked := kk :: !acked
          end
          else begin
            let i = Util.Rng.below r load in
            match s.lookup (load_key i) with
            | Some v -> if v <> load_key i * 2 then incr errors
            | None -> if completed.(i) then incr errors
          end
        with _ -> incr errors
      done;
      (!acked, !errors)
    in
    let domains2 = List.init threads (fun tid -> Domain.spawn (body2 tid)) in
    let results2 = List.map Domain.join domains2 in
    Pmem.sanitize_sync ();
    List.iter (fun (_, e) -> wrong := !wrong + e) results2;
    let acked2 = List.concat_map fst results2 in
    (* Verification: every acknowledged binding, from all phases. *)
    (try
       let check k v =
         match s.lookup k with
         | Some v' -> if v' <> v then incr wrong
         | None -> incr lost
       in
       for i = 0 to load - 1 do
         if completed.(i) then check (load_key i) (load_key i * 2)
       done;
       List.iter (fun k -> check k (k * 3)) acked1;
       List.iter (fun k -> check k (k * 3)) acked2;
       let expected = ref [] in
       List.iter
         (fun k -> expected := (k, k * 3) :: !expected)
         (acked1 @ acked2);
       for i = load - 1 downto 0 do
         if completed.(i) then
           expected := (load_key i, load_key i * 2) :: !expected
       done;
       let w, l = verify_scan s (List.sort compare !expected) in
       wrong := !wrong + w;
       lost := !lost + l
     with _ -> incr stalled)
  done;
  Pmem.Mode.set_shadow false;
  Pmem.Crash.disarm ();
  Faultinject.disarm ();
  {
    base =
      {
        states_tested = states;
        crashes_fired = !crashes;
        lost_keys = !lost;
        wrong_values = !wrong;
        stalled = !stalled;
      };
    faults_injected = Faultinject.fire_count () - faults0;
    recoveries = !recoveries;
    recover_ns = !recover_ns;
    sweep_stats = !sweep_stats;
  }

(* --- deterministic crash-state digest ---------------------------------------- *)

(* Single-threaded, fully seed-deterministic campaign digest: run [states]
   crash-recover cycles and fold every post-recovery observation (lookups,
   scans, sweep stats, which step raised) into one FNV-mixed word.  Two runs
   with equal arguments must produce equal digests — the campaign
   determinism regression. *)
let crash_state_digest ~make ~states ~load ~seed ?(faults = true) () =
  let rng = Util.Rng.create seed in
  let load_run s =
    for i = 0 to load - 1 do
      ignore (s.insert (load_key i) (load_key i * 2))
    done
  in
  let max_points =
    fresh_env ();
    let s = make () in
    max 1 (Pmem.Crash.count_points (fun () -> load_run s))
  in
  let max_events =
    fresh_env ();
    let s = make () in
    let ev = Faultinject.count_events (fun () -> load_run s) in
    max 1 ev.Faultinject.flushes
  in
  let digest = ref 0x811C9DC5 in
  let mix x = digest := (!digest lxor (x land max_int)) * 0x01000193 land max_int in
  for _state = 1 to states do
    fresh_env ();
    let s = make () in
    if faults then Faultinject.arm (Faultinject.random_plan rng ~max_events)
    else Pmem.Crash.arm_at (1 + Util.Rng.below rng max_points);
    (try
       load_run s;
       Pmem.Crash.disarm ()
     with
    | Pmem.Crash.Simulated_crash -> mix 1
    | Pmem.Fault.Alloc_failed _ -> mix 2);
    Faultinject.disarm ();
    Pmem.simulate_power_failure ();
    (try recover_traced s with _ -> mix 3);
    (match s.sweep with
    | Some sw -> (
        try
          let st = sw () in
          mix st.Recipe.Recovery.repaired;
          mix st.orphans;
          mix st.reclaimed
        with _ -> mix 4)
    | None -> ());
    for i = 0 to load - 1 do
      match s.lookup (load_key i) with
      | Some v -> mix v
      | None -> mix (-1)
      | exception _ -> mix 5
    done;
    (match s.scan_all with
    | Some scan -> (
        try
          List.iter
            (fun (k, v) ->
              mix k;
              mix v)
            (scan ())
        with _ -> mix 6)
    | None -> ())
  done;
  Pmem.Mode.set_shadow false;
  Pmem.Crash.disarm ();
  !digest

let durability_test ~make ~inserts ~seed () =
  fresh_env ();
  let violations = ref 0 in
  let s = make () in
  (* The §7.5 root-allocation check: construction itself must leave nothing
     dirty. *)
  if Pmem.dirty_count () > 0 then begin
    incr violations;
    ignore (Pmem.persist_everything ())
  end;
  let rng = Util.Rng.create seed in
  for _ = 1 to inserts do
    ignore (s.insert (Util.Rng.key rng) 1);
    if Pmem.dirty_count () > 0 then begin
      incr violations;
      ignore (Pmem.persist_everything ())
    end
  done;
  Pmem.Mode.set_shadow false;
  !violations
