(* Crash-recovery testing (see crashtest.mli). *)

type subject = {
  sname : string;
  insert : int -> int -> bool;
  lookup : int -> int option;
  recover : unit -> unit;
  scan_all : (unit -> (int * int) list) option;
}

type report = {
  states_tested : int;
  crashes_fired : int;
  lost_keys : int;
  wrong_values : int;
  stalled : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "states=%d crashes=%d lost=%d wrong=%d stalled=%d -> %s" r.states_tested
    r.crashes_fired r.lost_keys r.wrong_values r.stalled
    (if r.lost_keys = 0 && r.wrong_values = 0 && r.stalled = 0 then "PASS"
     else "FAIL")

let fresh_env () =
  Pmem.Crash.disarm ();
  Pmem.Mode.set_shadow true;
  ignore (Pmem.persist_everything ());
  Util.Lock.new_epoch ()

(* Recovery, bracketed in the trace ring when tracing is on — a failing
   campaign's dump then shows which recovery preceded the bad lookup. *)
let recover_traced s =
  if Obs.Trace.enabled () then Obs.Trace.record Obs.Trace.Recovery s.sname;
  s.recover ()

(* Keys used by one campaign state: load keys, then per-thread disjoint
   fresh keys for the post-recovery phase. *)
let load_key i = i + 1
let phase2_key ~load tid j = load + 1 + (tid * 1_000_000) + j

(* Verify an ordered subject's full scan: ascending unique keys, and every
   expected binding present with its value.  Returns (wrong, lost). *)
let verify_scan s expected =
  match s.scan_all with
  | None -> (0, 0)
  | Some scan ->
      let wrong = ref 0 and lost = ref 0 in
      (try
         let items = scan () in
         let rec sorted = function
           | (a, _) :: ((b, _) :: _ as rest) ->
               if a >= b then incr wrong;
               sorted rest
           | [ _ ] | [] -> ()
         in
         sorted items;
         let tbl = Hashtbl.create (List.length items) in
         List.iter (fun (k, v) -> Hashtbl.replace tbl k v) items;
         List.iter
           (fun (k, v) ->
             match Hashtbl.find_opt tbl k with
             | Some v' -> if v' <> v then incr wrong
             | None -> incr lost)
           expected
       with _ -> incr wrong);
      (!wrong, !lost)

let consistency_campaign ~make ~states ~load ~ops ~threads ~seed () =
  let rng = Util.Rng.create seed in
  (* Estimate the crash-point count of a full load once, to draw crash
     positions uniformly over the whole load phase. *)
  let max_points =
    fresh_env ();
    let s = make () in
    let n =
      Pmem.Crash.count_points (fun () ->
          for i = 0 to load - 1 do
            ignore (s.insert (load_key i) (load_key i * 2))
          done)
    in
    max 1 n
  in
  let crashes = ref 0 and lost = ref 0 and wrong = ref 0 and stalled = ref 0 in
  for _state = 1 to states do
    fresh_env ();
    let s = make () in
    (* Load phase with a crash at a uniformly random atomic step. *)
    let completed = Array.make load false in
    Pmem.Crash.arm_at (1 + Util.Rng.below rng max_points);
    (try
       for i = 0 to load - 1 do
         if s.insert (load_key i) (load_key i * 2) then completed.(i) <- true
       done;
       Pmem.Crash.disarm ()
     with Pmem.Crash.Simulated_crash -> incr crashes);
    (* Power failure: all unflushed lines are lost; then recovery. *)
    Pmem.simulate_power_failure ();
    (try recover_traced s with _ -> incr stalled);
    (* Multi-threaded mixed phase: half inserts of fresh keys, half reads of
       loaded keys, statically split. *)
    let per = ops / threads in
    let body tid () =
      let r = Util.Rng.create (seed + tid + 7) in
      let errors = ref 0 and inserted = ref [] in
      for j = 0 to per - 1 do
        try
          if j land 1 = 0 then begin
            let k = phase2_key ~load tid j in
            if s.insert k (k * 3) then inserted := k :: !inserted
          end
          else begin
            let i = Util.Rng.below r load in
            match s.lookup (load_key i) with
            | Some v -> if v <> load_key i * 2 then incr errors
            | None -> if completed.(i) then incr errors
          end
        with _ -> incr errors
      done;
      (!errors, !inserted)
    in
    let domains = List.init threads (fun tid -> Domain.spawn (body tid)) in
    let results = List.map Domain.join domains in
    (* Join edge for the sanitizer's race check: the verification reads
       below are ordered after every worker's writes. *)
    Pmem.sanitize_sync ();
    List.iter (fun (e, _) -> stalled := !stalled + e) results;
    (* Read back every successfully inserted key. *)
    (try
       for i = 0 to load - 1 do
         if completed.(i) then
           match s.lookup (load_key i) with
           | Some v -> if v <> load_key i * 2 then incr wrong
           | None -> incr lost
       done;
       List.iter
         (fun (_, inserted) ->
           List.iter
             (fun k ->
               match s.lookup k with
               | Some v -> if v <> k * 3 then incr wrong
               | None -> incr lost)
             inserted)
         results;
       (* Ordered subjects: a full scan must be sorted and contain every
          completed binding. *)
       let expected = ref [] in
       for i = load - 1 downto 0 do
         if completed.(i) then expected := (load_key i, load_key i * 2) :: !expected
       done;
       let w, l = verify_scan s !expected in
       wrong := !wrong + w;
       lost := !lost + l
     with _ -> incr stalled)
  done;
  Pmem.Mode.set_shadow false;
  Pmem.Crash.disarm ();
  {
    states_tested = states;
    crashes_fired = !crashes;
    lost_keys = !lost;
    wrong_values = !wrong;
    stalled = !stalled;
  }

let sweep ~make ~points ~stride ~load ?(stop_on_failure = true) () =
  let crashes = ref 0 and lost = ref 0 and wrong = ref 0 and stalled = ref 0 in
  let states = ref 0 in
  let point = ref 1 in
  let continue = ref true in
  while !continue && !point <= points do
    incr states;
    fresh_env ();
    let s = make () in
    let completed = Array.make load false in
    Pmem.Crash.arm_at !point;
    let crashed =
      try
        for i = 0 to load - 1 do
          if s.insert (load_key i) (load_key i * 2) then completed.(i) <- true
        done;
        Pmem.Crash.disarm ();
        false
      with Pmem.Crash.Simulated_crash -> true
    in
    if crashed then incr crashes
    else (* past the last crash point of the load: nothing left to sweep *)
      continue := false;
    Pmem.simulate_power_failure ();
    (try
       recover_traced s;
       for i = 0 to load - 1 do
         if completed.(i) then
           match s.lookup (load_key i) with
           | Some v -> if v <> load_key i * 2 then incr wrong
           | None -> incr lost
       done;
       (* Post-recovery writes must proceed. *)
       let k = load + 999_999 in
       ignore (s.insert k k);
       if s.lookup k <> Some k then incr stalled
     with _ -> incr stalled);
    if stop_on_failure && !lost + !wrong + !stalled > 0 then continue := false;
    point := !point + stride
  done;
  Pmem.Mode.set_shadow false;
  Pmem.Crash.disarm ();
  {
    states_tested = !states;
    crashes_fired = !crashes;
    lost_keys = !lost;
    wrong_values = !wrong;
    stalled = !stalled;
  }

let double_crash_campaign ~make ~states ~load ~seed () =
  let rng = Util.Rng.create seed in
  let max_points =
    fresh_env ();
    let s = make () in
    let n =
      Pmem.Crash.count_points (fun () ->
          for i = 0 to load - 1 do
            ignore (s.insert (load_key i) (load_key i * 2))
          done)
    in
    max 1 n
  in
  let crashes = ref 0 and lost = ref 0 and wrong = ref 0 and stalled = ref 0 in
  for _state = 1 to states do
    fresh_env ();
    let s = make () in
    let completed = Array.make load false in
    (* First crash: during the load. *)
    Pmem.Crash.arm_at (1 + Util.Rng.below rng max_points);
    (try
       for i = 0 to load - 1 do
         if s.insert (load_key i) (load_key i * 2) then completed.(i) <- true
       done;
       Pmem.Crash.disarm ()
     with Pmem.Crash.Simulated_crash -> incr crashes);
    Pmem.simulate_power_failure ();
    (try recover_traced s with _ -> incr stalled);
    (* Second crash: during the writes that may be fixing first-crash
       leftovers. *)
    let completed2 = Array.make load false in
    Pmem.Crash.arm_at (1 + Util.Rng.below rng (max 1 (max_points / 2)));
    (try
       for i = 0 to load - 1 do
         let k = (2 * 1_000_000) + load_key i in
         if s.insert k (k * 2) then completed2.(i) <- true
       done;
       Pmem.Crash.disarm ()
     with Pmem.Crash.Simulated_crash -> incr crashes);
    Pmem.simulate_power_failure ();
    (try recover_traced s with _ -> incr stalled);
    (* Verify everything that completed in either phase. *)
    (try
       let expected = ref [] in
       for i = load - 1 downto 0 do
         if completed2.(i) then begin
           let k = (2 * 1_000_000) + load_key i in
           expected := (k, k * 2) :: !expected
         end
       done;
       for i = load - 1 downto 0 do
         if completed.(i) then
           expected := (load_key i, load_key i * 2) :: !expected
       done;
       List.iter
         (fun (k, v) ->
           match s.lookup k with
           | Some v' -> if v' <> v then incr wrong
           | None -> incr lost)
         !expected;
       let w, l = verify_scan s (List.sort compare !expected) in
       wrong := !wrong + w;
       lost := !lost + l;
       (* And writes still proceed. *)
       let k = 9_999_999 in
       ignore (s.insert k k);
       if s.lookup k <> Some k then incr stalled
     with _ -> incr stalled)
  done;
  Pmem.Mode.set_shadow false;
  Pmem.Crash.disarm ();
  {
    states_tested = states;
    crashes_fired = !crashes;
    lost_keys = !lost;
    wrong_values = !wrong;
    stalled = !stalled;
  }

let durability_test ~make ~inserts ~seed () =
  fresh_env ();
  let violations = ref 0 in
  let s = make () in
  (* The §7.5 root-allocation check: construction itself must leave nothing
     dirty. *)
  if Pmem.dirty_count () > 0 then begin
    incr violations;
    ignore (Pmem.persist_everything ())
  end;
  let rng = Util.Rng.create seed in
  for _ = 1 to inserts do
    ignore (s.insert (Util.Rng.key rng) 1);
    if Pmem.dirty_count () > 0 then begin
      incr violations;
      ignore (Pmem.persist_everything ())
    end
  done;
  Pmem.Mode.set_shadow false;
  !violations
