(** P-ART: persistent Adaptive Radix Tree (paper §6.4; Leis et al.,
    ICDE '13).  RECIPE Conditions #1 (non-SMO) and #3 (SMO).

    ART is a byte-wise radix tree with adaptive node sizes (Node4, Node16,
    Node48, Node256) and path compression.  Each node header stores the
    compressed prefix length and up to 8 prefix bytes, plus an immutable
    [level] field — the total number of key bytes consumed up to this node's
    children — written once at creation.

    Non-SMOs commit with a single atomic store (append + counter increment
    in Node4/16, index-byte store in Node48, slot store in Node256, pointer
    swap for node growth) — Condition #1.  The SMO is the path-compression
    split: install a new parent node, then rewrite the old node's prefix —
    two ordered steps whose intermediate state readers *tolerate* (the
    [level] field exposes the true prefix length; mismatching prefix bytes
    are ignored and the final leaf key is verified) and which the write path
    *fixes*: on detecting a permanent mismatch under a successfully acquired
    try-lock, the writer recomputes the prefix from a leaf and persists it —
    the helper mechanism RECIPE adds to make ART a Condition #2 index.

    Keys are byte strings; all keys in one tree must have equal length (or
    more generally be prefix-free), which both paper key types satisfy.
    Values are 8-byte integers. *)

type t

val name : string

val create : unit -> t

(** [insert t key value] — [false] if [key] is already present (no change). *)
val insert : t -> string -> int -> bool

(** Lock-free lookup; tolerates in-flight and crash-interrupted SMOs. *)
val lookup : t -> string -> int option

(** [update t key value] replaces the value of an existing key with one
    atomic store to the leaf's value word; [false] if absent. *)
val update : t -> string -> int -> bool

(** [delete t key] invalidates the leaf with a single atomic store, then
    opportunistically shrinks the node (empty nodes unlink, a lone leaf
    replaces its node, underfull nodes rebuild one size down — each a
    single atomic pointer-swap commit). *)
val delete : t -> string -> bool

(** [scan t key n f] visits up to [n] bindings with keys >= [key] in key
    order; returns the number visited. *)
val scan : t -> string -> int -> (string -> int -> unit) -> int

val range : t -> string -> string -> (string * int) list

(** Post-crash recovery: re-initializes volatile locks, then eagerly runs
    the Condition #3 prefix-fix helper on every node whose stored prefix is
    stale ([prefix_len <> level - depth], the window between the two ordered
    steps of a path-compression split).  Readers tolerate such nodes and the
    write path fixes them lazily, so running this is optional — it converts
    lazy repair into eager repair. *)
val recover : t -> unit

(** [leak_sweep ?reclaim t] counts crash-orphaned child slots no reader can
    reach: Node4/16/48 slots populated beyond the committed [count], and
    Node48 slots below [count] left unreferenced by every index byte (the
    window between the count commit and the index-byte commit).
    [~reclaim:true] nulls them out.  [repaired] echoes the prefix count the
    last [recover] fixed. *)
val leak_sweep : ?reclaim:bool -> t -> Recipe.Recovery.stats

(** Number of prefix-fix helper invocations (tests: proves the Condition #3
    helper actually runs after crashes). *)
val helper_fixes : t -> int

(** Number of post-delete node shrinks performed (tests). *)
val shrink_count : t -> int
