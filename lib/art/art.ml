(* P-ART — persistent adaptive radix tree (see art.mli).

   Node memory layout (simulated persistent words):
   - header, one cache line of 8 words:
       [0] count — slot-allocation counter (Node4/16/48)
       [1] prefix_len — full compressed-prefix length (may exceed the 7
           stored bytes; the remainder is "optimistic" and reconstructed
           from a leaf when needed)
       [2] level — key depth of this node's child bytes; IMMUTABLE
       [3] stored prefix bytes (<= 7, packed 7 per word)
       [4..6] child key bytes (Node4: 4, Node16: 16, packed 7 per word)
   - Node48 additionally has a 256-byte child index (packed, own lines);
   - a child-pointer array sized by node kind.

   Commit points (all single 8-byte atomic stores):
   - Node4/16 add: write child slot + key byte, persist, then the count
     increment commits (count and key bytes share the header line);
   - Node48 add: child slot, count bookkeeping, then the index-byte store
     commits;
   - Node256 add, node growth, leaf replacement, path-compression step 1:
     one pointer store;
   - path-compression step 2 (SMO): the old node's prefix rewrite — the
     second ordered step whose loss readers tolerate via [level] and the
     write path fixes with the helper. *)

module W = Pmem.Words
module R = Pmem.Refs
module P = Recipe.Persist
module Lock = Util.Lock

let name = "P-ART"

(* Attribution sites: every flush/fence and crash point below carries its
   structural location, feeding the per-site breakdown of the bench JSON
   export and the §5 crash-point coverage report. *)
let site = Obs.Site.v ~index:name
let s_alloc_node = site "alloc-node"
let s_alloc_leaf = site "alloc-leaf"
let s_add_child = site ~crash:true "add-child"
let s_child_commit = site "child-commit"
let s_update = site "update"
let s_fix_prefix = site "fix-prefix"
let s_chain = site ~crash:true "chain-install"
let s_grow = site ~crash:true "grow"
let s_split = site ~crash:true "split-prefix"
let s_shrink = site ~crash:true "shrink"
let s_recover = site "recover"

type kind = N4 | N16 | N48 | N256

type leaf = { lkey : string; cells : W.t (* [0] = value; rest = key bytes *) }

type child = CNull | CInner of node | CLeaf of leaf

and node = {
  kind : kind;
  header : W.t;
  index : W.t option; (* Node48 only *)
  children : child R.t;
  lock : Lock.t;
}

type t = {
  root : node;
  fixes : int Atomic.t;
  shrinks : int Atomic.t;
  repairs : int Atomic.t; (* prefixes fixed by the last [recover] *)
}

let byte s i = Char.code (String.unsafe_get s i)

(* --- packed byte fields (7 bytes per 63-bit word) -------------------------- *)

let packed_get w slot i =
  (W.get w (slot + (i / 7)) lsr (i mod 7 * 8)) land 0xFF

let packed_set w slot i b =
  let word = slot + (i / 7) and sh = i mod 7 * 8 in
  let v = W.get w word in
  W.set w word (v land lnot (0xFF lsl sh) lor (b lsl sh))

let pack_string s off len =
  let n = min len 7 in
  let rec go i acc =
    if i >= n then acc else go (i + 1) (acc lor (byte s (off + i) lsl (i * 8)))
  in
  go 0 0

(* --- header accessors -------------------------------------------------------- *)

(* Node-metadata reads (count, key/index bytes, prefix) are optimistic:
   lock-free readers tolerate a concurrent writer's partial update — a miss
   is retried one level down, a stale prefix is re-derived from a leaf, and
   crash leftovers are helper-fixed.  Declare the window to the sanitizer
   (at the accessor, so every metadata read is covered) so its race check
   doesn't flag these by-design benign reads. *)
let[@inline] spec f =
  if !Pmem.Mode.flags land Pmem.Mode.f_sanitize <> 0 then begin
    Pmem.Sanhook.spec_enter ();
    Fun.protect ~finally:Pmem.Sanhook.spec_exit f
  end
  else f ()

let count n = spec @@ fun () -> W.get n.header 0
let prefix_len n = spec @@ fun () -> W.get n.header 1
let level n = spec @@ fun () -> W.get n.header 2
let prefix_byte n i = spec @@ fun () -> packed_get n.header 3 i
let key_byte n j = spec @@ fun () -> packed_get n.header 4 j
let set_key_byte n j b = packed_set n.header 4 j b

let capacity = function N4 -> 4 | N16 -> 16 | N48 -> 48 | N256 -> 256

let index_byte n b =
  spec @@ fun () ->
  match n.index with Some iw -> packed_get iw 0 b | None -> assert false

let set_index_byte n b v =
  match n.index with Some iw -> packed_set iw 0 b v | None -> assert false

let make_node kind ~level ~prefix_len ~prefix_word =
  let header = W.make ~name:"art.header" 8 0 in
  W.set header 1 prefix_len;
  W.set header 2 level;
  W.set header 3 prefix_word;
  {
    kind;
    header;
    index = (match kind with N48 -> Some (W.make ~name:"art.index" 40 0) | _ -> None);
    (* Atomic: child slots are CASed (commit point of Condition #2) and
       live-node slots publish freshly built subtrees to lock-free
       readers. *)
    children = R.make ~name:"art.children" ~atomic:true (capacity kind) CNull;
    lock = Lock.create ();
  }

let persist_node ?(site = s_alloc_node) n =
  W.clwb_all ~site n.header;
  (match n.index with Some iw -> W.clwb_all ~site iw | None -> ());
  R.clwb_all ~site n.children;
  Pmem.sfence ~site ()

let make_leaf key value =
  let cells = W.make ~name:"art.leaf" (1 + ((String.length key + 7) / 8)) 0 in
  W.set cells 0 value;
  (* key bytes stored for line accounting; [lkey] is the source of truth *)
  String.iteri (fun i c -> if i mod 8 = 0 then W.set cells (1 + (i / 8)) (Char.code c)) key;
  { lkey = key; cells }

let persist_leaf ?(site = s_alloc_leaf) l =
  W.clwb_all ~site l.cells;
  Pmem.sfence ~site ()

let create () =
  let root = make_node N256 ~level:0 ~prefix_len:0 ~prefix_word:0 in
  persist_node root;
  { root; fixes = Atomic.make 0; shrinks = Atomic.make 0; repairs = Atomic.make 0 }

let helper_fixes t = Atomic.get t.fixes
let shrink_count t = Atomic.get t.shrinks

(* --- child access -------------------------------------------------------------- *)

let find_child n b =
  spec @@ fun () ->
  match n.kind with
  | N4 | N16 ->
      let c = count n in
      let rec go j =
        if j >= c then CNull
        else if key_byte n j = b then
          match R.get n.children j with CNull -> go (j + 1) | ch -> ch
        else go (j + 1)
      in
      go 0
  | N48 ->
      let idx = index_byte n b in
      if idx = 0 then CNull else R.get n.children (idx - 1)
  | N256 -> R.get n.children b

(* Live (byte, child) pairs in ascending byte order. *)
let children_in_order n =
  spec @@ fun () ->
  match n.kind with
  | N4 | N16 ->
      let c = count n in
      let rec go j acc =
        if j >= c then acc
        else
          match R.get n.children j with
          | CNull -> go (j + 1) acc
          | ch -> go (j + 1) ((key_byte n j, ch) :: acc)
      in
      List.sort (fun (a, _) (b, _) -> compare a b) (go 0 [])
  | N48 ->
      let rec go b acc =
        if b > 255 then List.rev acc
        else
          let idx = index_byte n b in
          if idx = 0 then go (b + 1) acc
          else
            match R.get n.children (idx - 1) with
            | CNull -> go (b + 1) acc
            | ch -> go (b + 1) ((b, ch) :: acc)
      in
      go 0 []
  | N256 ->
      let rec go b acc =
        if b > 255 then List.rev acc
        else
          match R.get n.children b with
          | CNull -> go (b + 1) acc
          | ch -> go (b + 1) ((b, ch) :: acc)
      in
      go 0 []


(* Any leaf under [n] — used to reconstruct prefixes (optimistic path
   compression) and by the crash-fix helper. *)
let rec minimum_leaf n =
  match children_in_order n with
  | [] -> None
  | (_, CLeaf l) :: _ -> Some l
  | (_, CInner m) :: _ -> minimum_leaf m
  | (_, CNull) :: _ -> assert false

(* Authoritative prefix bytes of [n] sitting at [depth]: stored bytes when
   consistent, leaf reconstruction beyond byte 7 (or entirely, when the
   stored header is stale after a crash). *)
let authoritative_prefix n depth =
  spec @@ fun () ->
  let epl = level n - depth in
  if epl = 0 then Some ""
  else
    let pl = prefix_len n in
    let consistent = pl = epl in
    if consistent && epl <= 7 then begin
      let b = Bytes.create epl in
      for i = 0 to epl - 1 do
        Bytes.set b i (Char.chr (prefix_byte n i))
      done;
      Some (Bytes.unsafe_to_string b)
    end
    else
      match minimum_leaf n with
      | Some l when String.length l.lkey >= depth + epl ->
          Some (String.sub l.lkey depth epl)
      | Some _ | None -> None

(* --- add / replace children (caller holds n.lock) ---------------------------- *)

let is_full n = count n >= capacity n.kind

(* Add (b, child); [child] must already be persistent. *)
let add_child n b child =
  match n.kind with
  | N4 | N16 ->
      let j = count n in
      P.store_ref ~site:s_add_child n.children j child;
      R.clwb ~site:s_add_child n.children j;
      Pmem.sfence ~site:s_add_child ();
      Pmem.Crash.point ~site:s_add_child ();
      (* Key byte and count share the header line: the count increment is
         the single atomic commit (§6.4 "atomically made visible by
         increasing counter value"). *)
      set_key_byte n j b;
      P.commit ~site:s_add_child n.header 0 (j + 1) [@pm.deferred]
  | N48 ->
      let j = count n in
      P.store_ref ~site:s_add_child n.children j child;
      R.clwb ~site:s_add_child n.children j;
      Pmem.sfence ~site:s_add_child ();
      Pmem.Crash.point ~site:s_add_child ();
      P.commit ~site:s_add_child n.header 0 (j + 1);
      Pmem.Crash.point ~site:s_add_child ();
      (* The index-byte store commits visibility. *)
      set_index_byte n b (j + 1);
      (match n.index with
      | Some iw ->
          W.clwb ~site:s_add_child iw (b / 7);
          Pmem.sfence ~site:s_add_child ()
      | None -> ())
  | N256 ->
      ignore
        (P.commit_cas_ref ~site:s_add_child n.children b ~expected:CNull
           ~desired:child)

let replace_child n b child =
  match n.kind with
  | N4 | N16 ->
      let c = count n in
      let rec go j =
        if j >= c then assert false
        else if key_byte n j = b && R.get n.children j <> CNull then
          P.commit_ref ~site:s_child_commit n.children j child
        else go (j + 1)
      in
      go 0
  | N48 ->
      let idx = index_byte n b in
      assert (idx > 0);
      P.commit_ref ~site:s_child_commit n.children (idx - 1) child
  | N256 -> P.commit_ref ~site:s_child_commit n.children b child

(* Remove = invalidate with one atomic store (§6.4 deletion). *)
let remove_child n b =
  match n.kind with
  | N4 | N16 ->
      let c = count n in
      let rec go j =
        if j >= c then false
        else if key_byte n j = b && R.get n.children j <> CNull then begin
          P.commit_ref ~site:s_child_commit n.children j CNull;
          true
        end
        else go (j + 1)
      in
      go 0
  | N48 ->
      let idx = index_byte n b in
      if idx = 0 then false
      else begin
        P.commit_ref ~site:s_child_commit n.children (idx - 1) CNull;
        true
      end
  | N256 ->
      (match R.get n.children b with
      | CNull -> false
      | _ ->
          P.commit_ref ~site:s_child_commit n.children b CNull;
          true)

(* Copy of [n] one size up with (b, child) added; fresh and unpublished. *)
let grow_with n b child =
  let bigger = match n.kind with N4 -> N16 | N16 -> N48 | N48 -> N256 | N256 -> assert false in
  let g =
    make_node bigger ~level:(level n) ~prefix_len:(prefix_len n)
      ~prefix_word:(W.get n.header 3)
  in
  let add (b, ch) =
    match g.kind with
    | N4 | N16 ->
        let j = W.get g.header 0 in
        R.set g.children j ch;
        packed_set g.header 4 j b;
        W.set g.header 0 (j + 1)
    | N48 ->
        let j = W.get g.header 0 in
        R.set g.children j ch;
        packed_set (Option.get g.index) 0 b (j + 1);
        W.set g.header 0 (j + 1)
    | N256 -> R.set g.children b ch
  in
  List.iter add (children_in_order n);
  add (b, child);
  g

(* Copy of [n] at the smallest kind that fits [entries]; fresh and
   unpublished. *)
let shrink_to entries n =
  let kind =
    let live = List.length entries in
    if live <= 4 then N4 else if live <= 16 then N16 else N48
  in
  let g =
    make_node kind ~level:(level n) ~prefix_len:(prefix_len n)
      ~prefix_word:(W.get n.header 3)
  in
  List.iter
    (fun (b, ch) ->
      match g.kind with
      | N4 | N16 ->
          let j = W.get g.header 0 in
          R.set g.children j ch;
          packed_set g.header 4 j b;
          W.set g.header 0 (j + 1)
      | N48 ->
          let j = W.get g.header 0 in
          R.set g.children j ch;
          packed_set (Option.get g.index) 0 b (j + 1);
          W.set g.header 0 (j + 1)
      | N256 -> R.set g.children b ch)
    entries;
  g

(* Shrink threshold per kind: rebuild smaller only when clearly below the
   next size down (hysteresis against flapping). *)
let shrinkable kind live =
  match kind with
  | N4 -> false
  | N16 -> live <= 3
  | N48 -> live <= 12
  | N256 -> live <= 40

(* --- lookup (lock-free, tolerant) --------------------------------------------- *)

let lookup t key =
  let klen = String.length key in
  let rec go n depth =
    let epl = level n - depth in
    if depth + epl >= klen then None
    else begin
      let consistent = prefix_len n = epl in
      let stored_ok =
        (* Compare the stored prefix bytes only when the header is
           consistent; after a crash mid-SMO the reader simply skips the
           prefix (the leaf check below rejects wrong descents). *)
        (not consistent)
        ||
        let stored = min epl 7 in
        let rec cmp i =
          i >= stored || (prefix_byte n i = byte key (depth + i) && cmp (i + 1))
        in
        cmp 0
      in
      if not stored_ok then None
      else
        let d' = depth + epl in
        match find_child n (byte key d') with
        | CNull -> None
        | CLeaf l ->
            if String.equal l.lkey key then Some (W.get l.cells 0) else None
        | CInner m -> go m (d' + 1)
    end
  in
  go t.root 0

(* In-place value update: one atomic store to the leaf's value word
   (Condition #1), lock-free like lookup. *)
let update t key value =
  let klen = String.length key in
  let rec go n depth =
    let epl = level n - depth in
    if depth + epl >= klen then false
    else
      let d' = depth + epl in
      match find_child n (byte key d') with
      | CNull -> false
      | CLeaf l ->
          if String.equal l.lkey key then begin
            P.commit ~site:s_update l.cells 0 value;
            true
          end
          else false
      | CInner m -> go m (d' + 1)
  in
  go t.root 0

(* --- path revalidation (after taking locks) ------------------------------------ *)

(* Re-descend by [level] fields and check we reach [node] (physically), with
   [parent] as its immediate parent when given. *)
let validate t key ?parent node =
  let klen = String.length key in
  let rec go prev n =
    if n == node then
      match parent with None -> true | Some p -> (match prev with Some q -> q == p | None -> false)
    else
      let d' = level n in
      if d' >= klen then false
      else
        match find_child n (byte key d') with
        | CInner m -> go (Some n) m
        | CLeaf _ | CNull -> false
  in
  go None t.root

(* --- the Condition #3 helper: fix a crash-stale prefix -------------------------- *)

let fix_prefix t n depth =
  let epl = level n - depth in
  let word =
    match minimum_leaf n with
    | Some l when String.length l.lkey >= depth + min epl 7 ->
        pack_string l.lkey depth epl
    | Some _ | None -> 0
  in
  W.set n.header 3 word;
  P.commit ~site:s_fix_prefix n.header 1 epl [@pm.deferred];
  Atomic.incr t.fixes [@pm.volatile]

(* --- insert ------------------------------------------------------------------------ *)

(* Longest common prefix of key[off..] and other[off..]. *)
let common_from key other off =
  let n = min (String.length key) (String.length other) - off in
  let rec go i = if i < n && byte key (off + i) = byte other (off + i) then go (i + 1) else i in
  go 0

exception Retry

let rec insert t key value =
  match insert_attempt t key value with
  | r -> r
  | exception Retry ->
      Domain.cpu_relax ();
      insert t key value

and insert_attempt t key value =
  let klen = String.length key in
  let rec step parent n depth =
    let epl = level n - depth in
    if depth + epl >= klen then
      invalid_arg "Art.insert: key is a prefix of an existing key";
    let pl = prefix_len n in
    if pl <> epl then begin
      (* Inconsistent header.  Try-lock distinguishes a transient state
         (another writer mid-SMO: fail, retry) from a permanent crash
         leftover, which this writer must fix (§6.4). *)
      if Lock.try_lock n.lock then begin
        if validate t key ?parent:(Option.map fst parent) n then fix_prefix t n depth;
        Lock.unlock n.lock
      end;
      raise Retry
    end
    else begin
      let prefix =
        if epl = 0 then ""
        else
          match authoritative_prefix n depth with
          | Some p -> p
          | None -> raise Retry
      in
      let matched =
        let rec go i =
          if i < epl && byte key (depth + i) = Char.code prefix.[i] then go (i + 1)
          else i
        in
        go 0
      in
      if matched < epl then split_prefix t parent n depth prefix matched key value
      else begin
        let d' = depth + epl in
        let b = byte key d' in
        match find_child n b with
        | CNull -> add_leaf t parent n b key value
        | CLeaf l2 ->
            if String.equal l2.lkey key then false
            else begin
              (* Diverge below: build the chain node, then swap the slot —
                 a single-pointer Condition #1 commit. *)
              Lock.lock n.lock;
              if not (validate t key ?parent:(Option.map fst parent) n) then begin
                Lock.unlock n.lock;
                raise Retry
              end;
              (match find_child n b with
              | CLeaf l2' when l2' == l2 ->
                  let off = d' + 1 in
                  let cl = common_from key l2.lkey off in
                  if off + cl >= klen || off + cl >= String.length l2.lkey then begin
                    Lock.unlock n.lock;
                    invalid_arg "Art.insert: keys must be prefix-free"
                  end;
                  let nn =
                    make_node N4 ~level:(off + cl) ~prefix_len:cl
                      ~prefix_word:(pack_string key off cl)
                  in
                  let lf = make_leaf key value in
                  R.set nn.children 0 (CLeaf lf);
                  packed_set nn.header 4 0 (byte key (off + cl));
                  R.set nn.children 1 (CLeaf l2);
                  packed_set nn.header 4 1 (byte l2.lkey (off + cl));
                  W.set nn.header 0 2;
                  persist_leaf ~site:s_chain lf;
                  persist_node ~site:s_chain nn;
                  Pmem.Crash.point ~site:s_chain ();
                  replace_child n b (CInner nn);
                  Lock.unlock n.lock;
                  true
              | _ ->
                  Lock.unlock n.lock;
                  raise Retry)
            end
        | CInner m -> step (Some (n, b)) m (d' + 1)
      end
    end
  in
  step None t.root 0

(* Add a fresh leaf under [n] at byte [b]; grows [n] (parent-pointer swap)
   when out of slots. *)
and add_leaf t parent n b key value =
  Lock.lock n.lock;
  if not (validate t key ?parent:(Option.map fst parent) n) then begin
    Lock.unlock n.lock;
    raise Retry
  end;
  match find_child n b with
  | CLeaf _ | CInner _ ->
      Lock.unlock n.lock;
      raise Retry
  | CNull ->
      if not (is_full n) then begin
        let lf = make_leaf key value in
        persist_leaf lf;
        Pmem.Crash.point ~site:s_add_child ();
        add_child n b (CLeaf lf);
        Lock.unlock n.lock;
        true
      end
      else begin
        Lock.unlock n.lock;
        grow_and_add t parent n b key value
      end

(* Replace [n] with a one-size-up copy containing the new leaf (the copy
   also drops delete tombstones); the parent slot swap is the single atomic
   commit. *)
and grow_and_add t parent n b key value =
  match parent with
  | None ->
      (* The root is a Node256 and can never fill. *)
      assert false
  | Some (p, pb) ->
      Lock.lock p.lock;
      Lock.lock n.lock;
      let parent_ok =
        match find_child p pb with CInner m -> m == n | CLeaf _ | CNull -> false
      in
      if (not parent_ok) || not (validate t key ~parent:p n) then begin
        Lock.unlock n.lock;
        Lock.unlock p.lock;
        raise Retry
      end;
      (match find_child n b with
      | CLeaf _ | CInner _ ->
          Lock.unlock n.lock;
          Lock.unlock p.lock;
          raise Retry
      | CNull -> ());
      let lf = make_leaf key value in
      persist_leaf ~site:s_grow lf;
      let g = grow_with n b (CLeaf lf) in
      persist_node ~site:s_grow g;
      Pmem.Crash.point ~site:s_grow ();
      replace_child p pb (CInner g);
      Lock.unlock n.lock;
      Lock.unlock p.lock;
      true

(* Path-compression split, the Condition #3 SMO.  Step 1: persist and
   install a new parent holding the new leaf and the old node (one pointer
   swap).  Step 2: rewrite the old node's now-shorter prefix.  A crash
   between the steps leaves the stale prefix that readers tolerate and the
   next writer's helper fixes. *)
and split_prefix t parent n depth prefix matched key value =
  match parent with
  | None -> assert false (* the root has no prefix *)
  | Some (p, pb) ->
      Lock.lock p.lock;
      Lock.lock n.lock;
      let parent_ok =
        match find_child p pb with CInner m -> m == n | CLeaf _ | CNull -> false
      in
      let epl = level n - depth in
      if
        (not parent_ok)
        || not (validate t key ~parent:p n)
        || prefix_len n <> epl
        || matched >= epl
      then begin
        Lock.unlock n.lock;
        Lock.unlock p.lock;
        raise Retry
      end;
      let d' = depth + matched in
      let nn =
        make_node N4 ~level:d' ~prefix_len:matched
          ~prefix_word:(pack_string key depth matched)
      in
      let lf = make_leaf key value in
      R.set nn.children 0 (CLeaf lf);
      packed_set nn.header 4 0 (byte key d');
      R.set nn.children 1 (CInner n);
      packed_set nn.header 4 1 (Char.code prefix.[matched]);
      W.set nn.header 0 2;
      persist_leaf ~site:s_split lf;
      persist_node ~site:s_split nn;
      Pmem.Crash.point ~site:s_split ();
      (* Step 1: atomic install. *)
      replace_child p pb (CInner nn);
      Pmem.Crash.point ~site:s_split ();
      (* Step 2: shrink the old node's prefix (level is immutable). *)
      let new_pl = epl - matched - 1 in
      W.set n.header 3
        (pack_string prefix (matched + 1) new_pl);
      P.commit ~site:s_split n.header 1 new_pl [@pm.deferred];
      Lock.unlock n.lock;
      Lock.unlock p.lock;
      true

(* --- delete -------------------------------------------------------------------- *)

let rec delete t key =
  match delete_attempt t key with
  | r -> r
  | exception Retry ->
      Domain.cpu_relax ();
      delete t key

and delete_attempt t key =
  let klen = String.length key in
  let rec step parent n depth =
    let epl = level n - depth in
    if depth + epl >= klen then false
    else
      let d' = depth + epl in
      let b = byte key d' in
      match find_child n b with
      | CNull -> false
      | CLeaf l ->
          if not (String.equal l.lkey key) then false
          else begin
            Lock.lock n.lock;
            if not (validate t key ?parent:(Option.map fst parent) n) then begin
              Lock.unlock n.lock;
              raise Retry
            end;
            let r =
              match find_child n b with
              | CLeaf l' when l' == l -> remove_child n b
              | CLeaf _ | CInner _ | CNull -> false
            in
            Lock.unlock n.lock;
            if r then try_shrink t key parent n;
            r
          end
      | CInner m -> step (Some (n, b)) m (d' + 1)
  in
  step None t.root 0

(* Best-effort post-delete shrink (single pointer-swap commits, Condition
   #1): empty nodes unlink, a lone leaf replaces its node, underfull nodes
   rebuild one size down.  The root (a Node256) never shrinks. *)
and try_shrink t key parent n =
  match parent with
  | None -> ()
  | Some (p, pb) ->
      let live = children_in_order n in
      let nlive = List.length live in
      let interesting =
        nlive = 0
        || (nlive = 1 && match live with [ (_, CLeaf _) ] -> true | _ -> false)
        || shrinkable n.kind nlive
      in
      if interesting then begin
        Lock.lock p.lock;
        Lock.lock n.lock;
        let still =
          (match find_child p pb with CInner m -> m == n | CLeaf _ | CNull -> false)
          && validate t key ~parent:p n
        in
        if still then begin
          let live = children_in_order n in
          (match (List.length live, live) with
          | 0, _ ->
              Pmem.Crash.point ~site:s_shrink ();
              ignore (remove_child p pb);
              Atomic.incr t.shrinks [@pm.volatile]
          | 1, [ (_, (CLeaf _ as lf)) ] ->
              (* A lone leaf needs no inner node: its full key re-verifies. *)
              Pmem.Crash.point ~site:s_shrink ();
              replace_child p pb lf;
              Atomic.incr t.shrinks [@pm.volatile]
          | nlive, _ when shrinkable n.kind nlive ->
              let g = shrink_to live n in
              persist_node ~site:s_shrink g;
              Pmem.Crash.point ~site:s_shrink ();
              replace_child p pb (CInner g);
              Atomic.incr t.shrinks [@pm.volatile]
          | _ -> ())
        end;
        Lock.unlock n.lock;
        Lock.unlock p.lock
      end

(* --- ordered scans ---------------------------------------------------------------- *)

exception Scan_done

(* Relation of [n]'s subtree to the scan start key:
   [`All] — every key in the subtree is >= start;
   [`Lt] — every key is < start (prune);
   [`Eq] — the subtree path matches start so far (descend with pruning);
   [`Unknown] — stale prefix after a crash: descend without pruning, filter
   at the leaves. *)
let subtree_relation n depth start =
  let epl = level n - depth in
  let pl = prefix_len n in
  if pl <> epl then `Unknown
  else if epl = 0 then `Eq
  else
    match authoritative_prefix n depth with
    | None -> `Unknown
    | Some p ->
        let slen = String.length start in
        let rec cmp i =
          if i >= epl then `Eq
          else if depth + i >= slen then `All
          else
            let pb = Char.code p.[i] and sb = byte start (depth + i) in
            if pb < sb then `Lt else if pb > sb then `All else cmp (i + 1)
        in
        cmp 0

let scan_fold t start nwant f =
  let emitted = ref 0 in
  let leaf_emit l =
    if !emitted >= nwant then raise Scan_done;
    f l.lkey (W.get l.cells 0);
    incr emitted
  in
  let rec go node depth mode =
    if !emitted >= nwant then raise Scan_done;
    match node with
    | CNull -> ()
    | CLeaf l -> (
        match mode with
        | `All -> leaf_emit l
        | `Filter -> if String.compare l.lkey start >= 0 then leaf_emit l)
    | CInner n -> (
        match (mode, subtree_relation n depth start) with
        | `All, _ ->
            List.iter (fun (_, c) -> go c (level n + 1) `All) (children_in_order n)
        | `Filter, `Lt -> ()
        | `Filter, `All ->
            List.iter (fun (_, c) -> go c (level n + 1) `All) (children_in_order n)
        | `Filter, `Eq ->
            let d' = level n in
            let sb = if d' < String.length start then byte start d' else -1 in
            List.iter
              (fun (b, c) ->
                if b > sb then go c (d' + 1) `All
                else if b = sb then go c (d' + 1) `Filter)
              (children_in_order n)
        | `Filter, `Unknown ->
            (* Crash-stale prefix: no pruning, filter at the leaves. *)
            List.iter (fun (_, c) -> go c (level n + 1) `Filter) (children_in_order n))
  in
  (try go (CInner t.root) 0 `Filter with Scan_done -> ());
  !emitted

let scan t start nwant f = if nwant <= 0 then 0 else scan_fold t start nwant f

let range t lo hi =
  let acc = ref [] in
  let exception Past_hi in
  (try
     ignore
       (scan_fold t lo max_int (fun k v ->
            if String.compare k hi >= 0 then raise Past_hi;
            acc := (k, v) :: !acc))
   with Past_hi -> ());
  List.rev !acc

(* --- recovery ----------------------------------------------------------------------- *)

(* Depth-tracked DFS over every inner node: [depth] is the key depth at
   which [n] sits, so its expected prefix length is [level n - depth] and
   its children sit at depth [level n + 1]. *)
let iter_nodes t f =
  let rec go n depth =
    f n depth;
    List.iter
      (fun (_, c) -> match c with CInner m -> go m (level n + 1) | CLeaf _ | CNull -> ())
      (children_in_order n)
  in
  go t.root 0

(* Eagerly run the Condition #3 helper everywhere: a crash between the two
   ordered steps of a path-compression split leaves the old node's stored
   prefix stale ([prefix_len <> level - depth]); readers tolerate it, the
   write path fixes it lazily, and recovery fixes it here once and for
   all. *)
let recover t =
  Lock.new_epoch ();
  let repaired = ref 0 in
  iter_nodes t (fun n depth ->
      if prefix_len n <> level n - depth then begin
        fix_prefix t n depth;
        incr repaired
      end);
  Atomic.set t.repairs !repaired [@pm.volatile]

(* Reachability sweep for crash-orphaned child slots:
   - Node4/16: [add_child] stores the child pointer at slot [count] and the
     count increment commits — a crash in between leaves a populated slot
     beyond [count] that no reader ever visits;
   - Node48: the child store and count increment precede the index-byte
     commit, so an orphan is either a populated slot beyond [count] or a
     slot below [count] that no index byte references;
   - Node256 commits with the pointer store itself — no window. *)
let leak_sweep ?(reclaim = false) t =
  let orphans = ref 0 and reclaimed = ref 0 in
  let clear n j =
    incr orphans;
    if reclaim then begin
      P.commit_ref ~site:s_recover n.children j CNull;
      incr reclaimed
    end
  in
  iter_nodes t (fun n _depth ->
      match n.kind with
      | N4 | N16 ->
          let c = count n in
          for j = c to capacity n.kind - 1 do
            if R.get n.children j <> CNull then clear n j
          done
      | N48 ->
          let c = count n in
          let referenced = Array.make (max c 1) false in
          for b = 0 to 255 do
            let idx = index_byte n b in
            if idx > 0 && idx <= c then referenced.(idx - 1) <- true
          done;
          for j = 0 to c - 1 do
            if (not referenced.(j)) && R.get n.children j <> CNull then clear n j
          done;
          for j = c to capacity n.kind - 1 do
            if R.get n.children j <> CNull then clear n j
          done
      | N256 -> ());
  { Recipe.Recovery.repaired = Atomic.get t.repairs; orphans = !orphans; reclaimed = !reclaimed }
