(** PSan — the persistency sanitizer over the simulated-PM substrate.

    Installs hooks on every substrate event (store, load, RMW, clwb,
    sfence, publish, crash, quiesce) and checks the RECIPE persistency
    conditions dynamically: publications must not expose unpersisted
    lines, flushes and fences must not be redundant, and cross-domain
    accesses must be ordered.  Findings land in {!Obs.Diag}; the
    passthroughs below expose them without making callers depend on the
    sink module.

    Everything else in the implementation — the line/word shadow tables,
    vector clocks, per-domain state, and the individual [on_*] hooks — is
    internal: the only supported way to drive the sanitizer is
    {!enable} / {!disable} / {!with_sanitizer}. *)

(** {1 Diagnostic kinds}

    The [kind] strings carried by {!Obs.Diag.t} records, for use with
    {!count_kind}. *)

val k_publish : string
(** An atomic publication exposed a line that was never persisted. *)

val k_flush : string
(** A clwb on a line that was already clean (flushed or persisted). *)

val k_fence : string
(** An sfence with no flushed-but-unpersisted line to order. *)

val k_race : string
(** An unordered cross-domain access to the same word. *)

(** {1 Lifecycle} *)

val enabled : unit -> bool
(** Whether the sanitizer is currently installed and checking. *)

val enable : ?races:bool -> unit -> unit
(** Turn the sanitizer on.  [races:false] keeps the persistency-ordering
    checks but disables the cross-domain race check.  Call at a quiescent
    point (no concurrent index operations); objects allocated before
    enabling are tracked lazily from their first sanitized event.

    @raise Invalid_argument under DRAM mode, where persistency checking
    is meaningless. *)

val disable : unit -> unit
(** Uninstall all hooks and stop checking.  Recorded diagnostics are
    kept; clear them separately with {!clear_diagnostics}. *)

val with_sanitizer : ?races:bool -> (unit -> 'a) -> 'a
(** [with_sanitizer f] runs [f] under the sanitizer, restoring the
    previous (off) state whatever happens.  Diagnostics are left in
    {!Obs.Diag} for the caller to inspect. *)

val events_seen : unit -> int
(** Total substrate events processed since the last {!enable} — a cheap
    liveness check that the hooks really were installed. *)

(** {1 Diagnostics} *)

val diagnostics : unit -> (Obs.Diag.t * int) list
(** Every distinct finding with its occurrence count, oldest first. *)

val diagnostic_count : unit -> int
(** Number of distinct findings (not occurrences). *)

val count_kind : string -> int
(** Distinct findings of one {{!section-diagnostic_kinds} kind}. *)

val clear_diagnostics : unit -> unit

val print_report : Format.formatter -> unit
(** Render every finding, grouped and counted, for test logs and the
    [psan_check] binary. *)
