(* PSan: persistency-ordering & domain-race sanitizer.

   RECIPE's correctness argument (§4) reduces to checkable ordering rules:
   anything a commit store makes reachable must be persisted first
   (Condition #1/#2), every flush/fence must do work (the perf smells of
   Table 4), and non-atomic data shared between threads must be published
   through a release/acquire edge.  The crash-test campaigns check the first
   rule *indirectly*, by sampling crash states and diffing recovered
   contents; this module checks all three *online*, PMTest-style, at every
   substrate event, so a missing flush becomes a deterministic, site-
   attributed report on the very operation that committed it.

   Mechanics: [enable] sets [Pmem.Mode.f_sanitize] and installs handlers in
   {!Pmem.Sanhook} (and {!Util.Lock}); the substrate then reports every
   allocation, store, load, clwb, sfence, commit-publication, crash, and
   quiesce point.  The engine maintains:

   - a per-cache-line persistency state machine
       dirty --clwb--> flushed-unfenced --sfence (by the writing domain)-->
       persisted --store--> dirty
     keyed by global line id, with the last writer's site for attribution;
   - a per-domain *pending set*: lines this domain has written that are not
     yet persisted.  At every [Recipe.Persist] commit (the only publication
     points of the conversion discipline) any pending line other than the
     commit's own — the commit flushes that one immediately — is a
     Condition #1/#2 violation: [unpersisted-publish];
   - per-domain flush-since-fence counts: a fence with zero intervening
     flushes is [redundant-fence]; a clwb of a line already persisted is
     [redundant-flush];
   - a lightweight scalar-clock race check: every plain store stamps its
     word with a fresh global tick; release points (atomic stores/CAS,
     commit publications, lock hand-offs, domain joins) propagate the
     writer's clock, acquire points join it.  A plain read of a word whose
     stamp exceeds the reader's clock, from a different domain, outside a
     declared speculative (seqlock) section, is a [domain-race].

   All diagnostics land in {!Obs.Diag}, deduplicated, with the offending
   store site and the exposing publication/fence site.  Everything here is
   the sanitize-on slow path; when off, the substrate pays one extra bit in
   the flags test it already performs (asserted by test/test_psan.ml). *)

(* Diagnostic kinds. *)
let k_publish = "unpersisted-publish"
let k_flush = "redundant-flush"
let k_fence = "redundant-fence"
let k_race = "domain-race"

(* --- global clock -------------------------------------------------------- *)

let gclock = Atomic.make 1
let tick () = 1 + Atomic.fetch_and_add gclock 1
let now () = Atomic.get gclock

(* Total substrate events seen while enabled: the zero-overhead guard
   asserts this stays put across sanitize-off workloads. *)
let events = Atomic.make 0
let events_seen () = Atomic.get events

(* --- sharded int-keyed tables -------------------------------------------

   Line and word state is shared by every domain; a handful of mutex shards
   keeps the sanitize-on path from serializing multi-domain runs on one
   lock.  Global line ids are never reused ({!Pmem.Line_id} is a fetch-add
   counter), so records only accumulate. *)

module Tbl = struct
  let shards = 16

  type 'a shard = { mu : Mutex.t; tbl : (int, 'a) Hashtbl.t }
  type 'a t = 'a shard array

  let create () =
    Array.init shards (fun _ ->
        { mu = Mutex.create (); tbl = Hashtbl.create 512 })

  (* Find-or-create [k], then run [f] on the record under the shard lock. *)
  let with_key t k make f =
    let s = Array.unsafe_get t (k land (shards - 1)) in
    Mutex.lock s.mu;
    let r =
      match Hashtbl.find_opt s.tbl k with
      | Some r -> r
      | None ->
          let r = make () in
          Hashtbl.add s.tbl k r;
          r
    in
    let out = f r in
    Mutex.unlock s.mu;
    out

  (* Run [f] on [k]'s record if present. *)
  let find t k f =
    let s = Array.unsafe_get t (k land (shards - 1)) in
    Mutex.lock s.mu;
    let out =
      match Hashtbl.find_opt s.tbl k with
      | Some r -> Some (f r)
      | None -> None
    in
    Mutex.unlock s.mu;
    out

  let iter t f =
    Array.iter
      (fun s ->
        Mutex.lock s.mu;
        Hashtbl.iter (fun _ r -> f r) s.tbl;
        Mutex.unlock s.mu)
      t

  let clear t =
    Array.iter
      (fun s ->
        Mutex.lock s.mu;
        Hashtbl.reset s.tbl;
        Mutex.unlock s.mu)
      t
end

(* --- line / word / domain state ------------------------------------------ *)

let st_dirty = 0
let st_flushed = 1
let st_persisted = 2

type line_rec = {
  mutable st : int;
  mutable owner : int; (* domain of the last store *)
  mutable store_site : Obs.Site.t option; (* last attributed store *)
  mutable obj : string;
  mutable reported : bool; (* dedupe until the next store *)
  mutable persister : int;
      (* Domain whose fence moved it to persisted; -1 = a checkpoint.
         A redundant-flush is only reported against the domain that
         persisted the line itself: when lock-free writers share a line
         (CAS slots, 8 per line), one domain's commit fence can persist a
         neighbour's store first, and the neighbour's then-superfluous
         flush is concurrency coalescing, not a statically removable
         instruction. *)
}

type word_rec = {
  mutable wdom : int; (* last plain/atomic writer *)
  mutable wstamp : int; (* global tick of that write *)
  mutable wsite : Obs.Site.t option;
  mutable pub : int; (* release clock; 0 = never released *)
  mutable wreported : bool;
}

let lines : line_rec Tbl.t = Tbl.create ()
let words : word_rec Tbl.t = Tbl.create ()
let locks : int ref Tbl.t = Tbl.create ()

type dom = {
  mutable did : int; (* Domain id occupying this slot; -1 = free *)
  mutable clock : int;
  pending : (int, unit) Hashtbl.t; (* this domain's unpersisted lines *)
  mutable flushes : int; (* clwbs since this domain's last fence *)
}

let n_doms = 128

let doms =
  Array.init n_doms (fun _ ->
      { did = -1; clock = 0; pending = Hashtbl.create 64; flushes = 0 })

(* Domain ids are never reused by the runtime but our slot array is finite;
   (re)initialize the slot whenever a new domain lands on it.  A fresh
   domain starts with the current global clock — the spawn edge: everything
   written before it existed is visible to it. *)
let dom () =
  let did = (Domain.self () :> int) in
  let d = Array.unsafe_get doms (did land (n_doms - 1)) in
  if d.did <> did then begin
    d.did <- did;
    d.clock <- now ();
    Hashtbl.reset d.pending;
    d.flushes <- 0
  end;
  d

let races_on = ref true

(* --- reporting ----------------------------------------------------------- *)

let diag kind ~store_site ~expose_site ~obj ~line ~domain detail =
  Obs.Diag.report
    {
      Obs.Diag.kind;
      store_site;
      expose_site;
      obj;
      line;
      domain;
      detail;
    }

(* --- event handlers ------------------------------------------------------ *)

let on_alloc name base n_lines =
  ignore (Atomic.fetch_and_add events 1);
  let d = dom () in
  (* Allocation stores are not persistent until flushed; attribute the
     pending lines to a synthetic "alloc/<object>" site so an unflushed
     allocation (the §7.5 FAST&FAIR / CCEH root bugs) is reported with a
     name, not as an anonymous store. *)
  let site = Some (Obs.Site.find_or_create ~index:"alloc" name) in
  for l = base to base + n_lines - 1 do
    Tbl.with_key lines l
      (fun () ->
        { st = st_dirty; owner = d.did; store_site = site; obj = name;
          reported = false; persister = -1 })
      (fun r ->
        r.st <- st_dirty;
        r.owner <- d.did;
        r.store_site <- site;
        r.obj <- name;
        r.reported <- false);
    Hashtbl.replace d.pending l ()
  done

let on_store name base i release =
  ignore (Atomic.fetch_and_add events 1);
  let d = dom () in
  let line = base + (i lsr 3) in
  let wid = (base lsl 3) + i in
  let site = Pmem.Sanhook.current_site () in
  Tbl.with_key lines line
    (fun () ->
      { st = st_dirty; owner = d.did; store_site = site; obj = name;
        reported = false; persister = -1 })
    (fun r ->
      r.st <- st_dirty;
      r.owner <- d.did;
      (match site with Some _ -> r.store_site <- site | None -> ());
      r.obj <- name;
      r.reported <- false);
  Hashtbl.replace d.pending line ();
  let stamp = tick () in
  Tbl.with_key words wid
    (fun () ->
      (* A release store publishes even on the word's first write — a fresh
         atomic slot (new node's child pointer) must give its readers the
         edge covering the node's construction. *)
      { wdom = d.did; wstamp = stamp; wsite = site;
        pub = (if release then stamp else 0); wreported = false })
    (fun w ->
      (* RMW/atomic stores are acquire too: join the previous release. *)
      if release && w.pub > d.clock then d.clock <- w.pub;
      w.wdom <- d.did;
      w.wstamp <- stamp;
      w.wsite <- site;
      w.wreported <- false;
      if release then w.pub <- stamp);
  d.clock <- stamp

(* Atomic read-modify-write: run the hardware op inside the word's critical
   section so the new value cannot become visible before its release clock —
   a reader of [Words.get]/[Refs.get] joins the clock *after* its read, so
   the two orderings together close the publish race on the engine itself.
   A successful RMW is a release store; a failed CAS is an acquire load. *)
let on_rmw name base i op =
  ignore (Atomic.fetch_and_add events 1);
  let d = dom () in
  let line = base + (i lsr 3) in
  let wid = (base lsl 3) + i in
  let site = Pmem.Sanhook.current_site () in
  let ok =
    Tbl.with_key words wid
      (fun () ->
        { wdom = -1; wstamp = 0; wsite = None; pub = 0; wreported = false })
      (fun w ->
        let ok = op () in
        if w.pub > d.clock then d.clock <- w.pub;
        if ok then begin
          let stamp = tick () in
          w.wdom <- d.did;
          w.wstamp <- stamp;
          w.wsite <- site;
          w.wreported <- false;
          w.pub <- stamp;
          d.clock <- stamp
        end;
        ok)
  in
  if ok then begin
    Tbl.with_key lines line
      (fun () ->
        { st = st_dirty; owner = d.did; store_site = site; obj = name;
          reported = false; persister = -1 })
      (fun r ->
        r.st <- st_dirty;
        r.owner <- d.did;
        (match site with Some _ -> r.store_site <- site | None -> ());
        r.obj <- name;
        r.reported <- false);
    Hashtbl.replace d.pending line ()
  end;
  ok

let on_load name base i acquire =
  ignore (Atomic.fetch_and_add events 1);
  let d = dom () in
  let wid = (base lsl 3) + i in
  ignore
    (Tbl.find words wid (fun w ->
         (* Join the word's release clock: an atomic load is an acquire;
            a plain load of a committed word rides the commit's release
            (the TSO read-from edge the flat substrate leans on). *)
         if w.pub > d.clock then d.clock <- w.pub;
         if
           (not acquire)
           && !races_on
           && w.wdom <> d.did
           && w.wstamp > d.clock
           && (not w.wreported)
           && Pmem.Sanhook.spec_depth () = 0
         then begin
           w.wreported <- true;
           diag k_race ~store_site:w.wsite ~expose_site:None ~obj:name
             ~line:wid ~domain:d.did
             (Printf.sprintf
                "plain word %d written by domain %d, read by domain %d with \
                 no release/acquire edge"
                wid w.wdom d.did)
         end))

let on_clwb name base i site =
  ignore (Atomic.fetch_and_add events 1);
  let d = dom () in
  let line = base + (i lsr 3) in
  d.flushes <- d.flushes + 1;
  Tbl.with_key lines line
    (fun () ->
      (* First sighting: a flush of a line allocated before [enable];
         unknown history, so never flag it. *)
      { st = st_flushed; owner = d.did; store_site = None; obj = name;
        reported = false; persister = -1 })
    (fun r ->
      if r.st = st_dirty then r.st <- st_flushed
      else if r.st = st_persisted && r.persister = d.did && not r.reported
      then begin
        r.reported <- true;
        diag k_flush ~store_site:site ~expose_site:None ~obj:r.obj ~line
          ~domain:d.did "clwb of an already-persisted line"
      end)

let on_sfence site =
  ignore (Atomic.fetch_and_add events 1);
  let d = dom () in
  if d.flushes = 0 then
    diag k_fence ~store_site:site ~expose_site:None ~obj:"" ~line:0
      ~domain:d.did "sfence with no clwb since this domain's last fence"
  else begin
    d.flushes <- 0;
    (* The fence persists every line this domain has flushed. *)
    let done_ = ref [] in
    Hashtbl.iter
      (fun l () ->
        match Tbl.find lines l (fun r ->
                  if r.st = st_flushed then begin
                    r.st <- st_persisted;
                    r.persister <- d.did;
                    r.reported <- false;
                    true
                  end
                  else r.st = st_persisted)
        with
        | Some true -> done_ := l :: !done_
        | _ -> ())
      d.pending;
    List.iter (fun l -> Hashtbl.remove d.pending l) !done_
  end

let on_publish name base i site =
  ignore (Atomic.fetch_and_add events 1);
  let d = dom () in
  let line = base + (i lsr 3) in
  let wid = (base lsl 3) + i in
  (* The commit store is a release: readers that see the committed word see
     everything that preceded it. *)
  let stamp = tick () in
  Tbl.with_key words wid
    (fun () ->
      { wdom = d.did; wstamp = stamp; wsite = site; pub = stamp;
        wreported = false })
    (fun w -> w.pub <- stamp);
  d.clock <- stamp;
  (* Condition #1/#2: nothing this publication makes reachable may still be
     dirty or flushed-unfenced.  The commit's own line is exempt — the
     combinator flushes and fences it immediately after this store. *)
  let offenders = ref [] in
  Hashtbl.iter
    (fun l () -> if l <> line then offenders := l :: !offenders)
    d.pending;
  List.iter
    (fun l ->
      let drop =
        match
          Tbl.find lines l (fun r ->
              if r.st = st_persisted then true
              else begin
                if not r.reported then begin
                  r.reported <- true;
                  diag k_publish ~store_site:r.store_site ~expose_site:site
                    ~obj:r.obj ~line:l ~domain:d.did
                    (if r.st = st_dirty then
                       "published while line still dirty (missing clwb)"
                     else
                       "published while line flushed but unfenced (missing \
                        sfence)")
                end;
                true
              end)
        with
        | Some b -> b
        | None -> true
      in
      if drop then Hashtbl.remove d.pending l)
    !offenders;
  ignore name

let on_crash () =
  ignore (Atomic.fetch_and_add events 1);
  let d = dom () in
  (* The interrupted operation unwinds; its unflushed stores will be thrown
     away by the power-failure revert.  Forget them so they cannot poison
     post-recovery publications. *)
  Hashtbl.reset d.pending;
  d.flushes <- 0

let on_quiesce () =
  ignore (Atomic.fetch_and_add events 1);
  (* Whole-machine persist or power-failure revert, called at quiescent
     points by the harness: every line now equals its durable image, and
     the caller has observed every domain's writes. *)
  Tbl.iter lines (fun r ->
      r.st <- st_persisted;
      r.persister <- -1;
      r.reported <- false);
  let g = now () in
  Array.iter
    (fun d ->
      Hashtbl.reset d.pending;
      d.flushes <- 0;
      if d.did >= 0 then d.clock <- g)
    doms

let on_sync () =
  ignore (Atomic.fetch_and_add events 1);
  let d = dom () in
  d.clock <- now ()

let on_lock_acquired id =
  ignore (Atomic.fetch_and_add events 1);
  let d = dom () in
  ignore
    (Tbl.find locks id (fun c -> if !c > d.clock then d.clock <- !c))

let on_lock_released id =
  ignore (Atomic.fetch_and_add events 1);
  let d = dom () in
  let g = tick () in
  d.clock <- g;
  Tbl.with_key locks id (fun () -> ref g) (fun c -> c := g)

(* --- lifecycle ----------------------------------------------------------- *)

let reset_state () =
  Tbl.clear lines;
  Tbl.clear words;
  Tbl.clear locks;
  Array.iter
    (fun d ->
      d.did <- -1;
      d.clock <- 0;
      Hashtbl.reset d.pending;
      d.flushes <- 0)
    doms

let enabled () = Pmem.Mode.sanitize_enabled ()

(** Turn the sanitizer on.  [races:false] keeps the persistency-ordering
    checks but disables the cross-domain race check.  Call at a quiescent
    point (no concurrent index operations); objects allocated before
    enabling are tracked lazily from their first sanitized event. *)
let enable ?(races = true) () =
  if Pmem.Mode.dram_enabled () then
    invalid_arg "Psan.enable: sanitize mode is meaningless under DRAM mode";
  races_on := races;
  reset_state ();
  Pmem.Sanhook.install
    {
      Pmem.Sanhook.h_alloc = on_alloc;
      h_store = on_store;
      h_load = on_load;
      h_rmw = on_rmw;
      h_clwb = on_clwb;
      h_sfence = on_sfence;
      h_publish = on_publish;
      h_crash = on_crash;
      h_quiesce = on_quiesce;
      h_sync = on_sync;
    };
  Util.Lock.set_hooks ~acquired:on_lock_acquired ~released:on_lock_released;
  Pmem.Mode.set_sanitize true

let disable () =
  Pmem.Mode.set_sanitize false;
  Util.Lock.clear_hooks ();
  Pmem.Sanhook.uninstall ();
  Pmem.Sanhook.clear_faults ()

(** [with_sanitizer f] runs [f] under the sanitizer, restoring the previous
    (off) state whatever happens.  Diagnostics are left in {!Obs.Diag} for
    the caller to inspect. *)
let with_sanitizer ?races f =
  enable ?races ();
  Fun.protect ~finally:disable f

(* Diagnostic passthroughs, so callers need not know the sink module. *)
let diagnostics = Obs.Diag.all
let diagnostic_count = Obs.Diag.count
let count_kind = Obs.Diag.count_kind
let clear_diagnostics = Obs.Diag.clear
let print_report ppf = Obs.Diag.pp_all ppf ()
