(** FAST & FAIR: the hand-crafted persistent B+ tree baseline (Hwang et al.,
    FAST '18; paper §3 and §7).

    FAST (failure-atomic shift) keeps node entries sorted by shifting them
    with 8-byte atomic stores, flushing each cache line as the shift crosses
    it; readers tolerate the transient adjacent duplicates this creates.
    FAIR splits nodes B-link style: the new sibling is built and persisted,
    then committed with a single atomic sibling-pointer store; parents are
    updated afterwards and readers reach not-yet-indexed nodes through
    sibling pointers.

    Reads are lock-free with version-based retry per node (the reason RECIPE
    cannot convert this design, §4.2); writers lock individual nodes.

    By default this implementation includes the high-key fix the RECIPE
    authors proposed (each node's upper bound is its sibling's immutable
    minimum key).  The bugs the paper found in the original can be re-enabled
    to demonstrate the crash-testing framework:

    - [bug_highkey]: writers skip the post-lock bound check, so an insert
      racing with a split of the same node lands in the wrong node and the
      key becomes unreachable (the §3 design bug);
    - [bug_split_order]: the split truncates the left node before linking
      the sibling, so a crash between the two stores loses every key moved
      to the right node (the §3/§7.5 implementation-bug class);
    - [bug_root_flush]: the initial root allocation is not flushed (the
      durability bug §7.5 reports for FAST & FAIR and CCEH). *)

type t

val name : string

(** [create ~space ()] builds an empty tree over the given key
    representation: [Recipe.Wordkey.int_space ()] for 8-byte integer keys or
    [Recipe.Wordkey.string_space ()] for pointer-indirected string keys. *)
val create :
  ?bug_highkey:bool ->
  ?bug_split_order:bool ->
  ?bug_root_flush:bool ->
  space:Recipe.Wordkey.t ->
  unit ->
  t

(** [insert t key value] — [false] if [key] is already present (no change).
    Integer keys must be passed through {!Util.Keys.encode_int}. *)
val insert : t -> string -> int -> bool

val lookup : t -> string -> int option
val delete : t -> string -> bool

(** [scan t key n f] visits up to [n] bindings with keys >= [key] in key
    order; returns the number visited. *)
val scan : t -> string -> int -> (string -> int -> unit) -> int

val range : t -> string -> string -> (string * int) list

(** Re-initialize volatile locks and per-node version counters after a
    simulated crash, then eagerly run the writer-side leftover repair on
    every node: drop duplicates left by an interrupted FAST shift and
    complete interrupted splits by retracting the Null terminator over the
    invalid-by-bound suffix. *)
val recover : t -> unit

(** [leak_sweep ?reclaim t] counts entry slots a reader already skips —
    adjacent duplicates and invalid-by-bound split suffixes — i.e. the
    leftovers pending lazy repair.  [~reclaim:true] repairs them in place.
    [repaired] echoes what the last [recover] fixed. *)
val leak_sweep : ?reclaim:bool -> t -> Recipe.Recovery.stats

(** Height of the tree (levels above the leaves), for structure tests. *)
val height : t -> int
