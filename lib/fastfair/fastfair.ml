(* FAST & FAIR persistent B+ tree (see fastfair.mli for the design notes).

   Node invariants at rest (no writer, no crash in flight):
   - entries form a sorted prefix terminated by a Null pointer slot;
   - an entry is *valid* iff its pointer differs physically from the next
     slot's pointer (FAST's duplicate rule) and its key is below the node's
     upper bound, which is the immutable minimum key of the linked sibling
     (the high-key fix);
   - invalid-by-bound entries can only be a suffix (keys are sorted); they
     exist after a crash between a split's sibling-link and truncation
     stores, and the next writer re-truncates them away;
   - adjacent duplicates exist after a crash in the middle of a shift; the
     next writer holding the node lock removes them ("writes detect
     inconsistencies such as duplicated elements, and try to fix them", §3).

   Crash-atomicity of shifts depends on flush order: a right-shift flushes
   cache lines right-to-left as it crosses them (so a lost left line leaves
   an adjacent duplicate, never a hole); a left-shift flushes left-to-right.
   Within one entry, a right-shift copies key before pointer and the final
   insert writes key then commits with the pointer store; a left shift
   copies pointer before key.

   Concurrency: per-node seqlock for readers (version-based retry — the
   property that makes FAST & FAIR inconvertible by RECIPE, §4.2), per-node
   spinlock for writers, Lehman–Yao move-right on both paths. *)

module W = Pmem.Words
module R = Pmem.Refs
module P = Recipe.Persist
module Lock = Util.Lock
module K = Recipe.Wordkey

let name = "FAST&FAIR"

(* Flush/fence attribution sites (index × structural location). *)
let site = Obs.Site.v ~index:name
let s_alloc = site "alloc-node"
let s_insert = site ~crash:true "insert-shift"
let s_remove = site ~crash:true "remove-shift"
let s_fix = site "fix-node"
let s_split = site ~crash:true "split"
let s_root = site ~crash:true "new-root"

let cardinality = 32
let slots_per_line = 8

type ptr = Null | Value of int | Child of node

and node = {
  level : int; (* 0 = leaf; immutable *)
  min_key : int; (* lower bound word; immutable; meaningful iff has_min *)
  has_min : bool;
  keys : W.t; (* cardinality words *)
  ptrs : ptr R.t; (* cardinality slots, Null-terminated *)
  leftmost : ptr R.t; (* 1 slot; internal nodes only *)
  sibling : node option R.t; (* 1 slot *)
  meta : W.t; (* persisted copy of the immutable header fields *)
  lock : Lock.t;
  seq : int Atomic.t; (* volatile version for reader retry *)
}

type t = {
  ks : K.t;
  root : node R.t;
  bug_highkey : bool;
  bug_split_order : bool;
  bug_root_flush : bool;
  repairs : int Atomic.t; (* leftovers the last [recover] fixed eagerly *)
}

let make_node ~level ~min_key ~has_min =
  let meta = W.make ~name:"ff.meta" 8 0 in
  W.set meta 0 level;
  W.set meta 1 min_key;
  W.set meta 2 (if has_min then 1 else 0);
  {
    level;
    min_key;
    has_min;
    keys = W.make ~name:"ff.keys" cardinality 0;
    (* Atomic: ptr slots publish freshly built children during split parent
       updates, read by lock-free traversals mid-shift. *)
    ptrs = R.make ~name:"ff.ptrs" ~atomic:true cardinality Null;
    (* Flat: leftmost is written only during node construction, before the
       node is published via root/ptrs/sibling commits. *)
    leftmost = R.make ~name:"ff.leftmost" ~atomic:false 1 Null;
    (* Atomic: sibling is the split's publication commit (B-link). *)
    sibling = R.make ~name:"ff.sibling" ~atomic:true 1 None;
    meta;
    lock = Lock.create ();
    seq = Atomic.make 0;
  }

let persist_node ?(site = s_alloc) n =
  W.clwb_all ~site n.keys;
  R.clwb_all ~site n.ptrs;
  R.clwb_all ~site n.leftmost;
  R.clwb_all ~site n.sibling;
  W.clwb_all ~site n.meta;
  Pmem.sfence ~site ()

let create ?(bug_highkey = false) ?(bug_split_order = false)
    ?(bug_root_flush = false) ~space () =
  let root = make_node ~level:0 ~min_key:0 ~has_min:false in
  if not bug_root_flush then persist_node root;
  (* Atomic: root pointer is CASed on root splits. *)
  let root_ref = R.make ~name:"ff.root" ~atomic:true 1 root in
  if not bug_root_flush then begin
    R.clwb_all ~site:s_alloc root_ref;
    Pmem.sfence ~site:s_alloc ()
  end;
  {
    ks = space;
    root = root_ref;
    bug_highkey;
    bug_split_order;
    bug_root_flush;
    repairs = Atomic.make 0;
  }

let height t = (R.get t.root 0).level

(* --- seqlock ------------------------------------------------------------- *)

let seq_begin n = Atomic.incr n.seq [@pm.volatile]
let seq_end n = Atomic.incr n.seq [@pm.volatile]

(* The body of [f] intentionally reads words a concurrent writer may be
   mutating; the version recheck discards any torn result.  Under sanitize
   mode the reads are bracketed as speculative so the race check does not
   flag them. *)
let rec read_stable n f =
  let s = Atomic.get n.seq in
  if s land 1 = 1 then begin
    (* A domain that crashed mid-write leaves the version odd forever; the
       abort hook lets campaign peers unwind instead of spinning. *)
    Lock.abort_point ();
    Domain.cpu_relax ();
    read_stable n f
  end
  else begin
    let san = !Pmem.Mode.flags land Pmem.Mode.f_sanitize <> 0 in
    if san then Pmem.Sanhook.spec_enter ();
    let r = f () in
    if san then Pmem.Sanhook.spec_exit ();
    if Atomic.get n.seq = s then r
    else read_stable n f
  end

(* --- node scanning primitives (callers hold the seqlock or the lock) ------ *)

(* Upper-bound word of [n]: the linked sibling's immutable minimum key. *)
let bound n =
  match R.get n.sibling 0 with
  | Some s when s.has_min -> Some s.min_key
  | Some _ | None -> None

(* Physical entry count: slots up to the Null terminator. *)
let physical_count n =
  let rec go i =
    if i >= cardinality then cardinality
    else match R.get n.ptrs i with Null -> i | Value _ | Child _ -> go (i + 1)
  in
  go 0

let is_dup n i =
  i + 1 < cardinality && R.get n.ptrs i == R.get n.ptrs (i + 1)

(* Valid (key-word, pointer) entries in slot order, skipping duplicates and
   the invalid-by-bound suffix. *)
let valid_entries t n =
  let b = bound n in
  let rec go i acc =
    if i >= cardinality then List.rev acc
    else
      match R.get n.ptrs i with
      | Null -> List.rev acc
      | p ->
          if is_dup n i then go (i + 1) acc
          else
            let kw = W.get n.keys i in
            let in_range =
              match b with Some m -> t.ks.compare_words kw m < 0 | None -> true
            in
            if in_range then go (i + 1) ((kw, p) :: acc) else List.rev acc
  in
  go 0 []

(* --- lock-free read path -------------------------------------------------- *)

(* Lehman–Yao move-right: keys >= the sibling's minimum live to the right. *)
let rec move_right t n probe =
  match R.get n.sibling 0 with
  | Some s when s.has_min && t.ks.compare_probe probe s.min_key >= 0 ->
      move_right t s probe
  | Some _ | None -> n

(* Child of internal node [n] covering [probe]: last valid entry with
   key <= probe, else the leftmost child. *)
let search_child t n probe =
  read_stable n (fun () ->
      let rec go i best =
        if i >= cardinality then best
        else
          match R.get n.ptrs i with
          | Null -> best
          | p ->
              if is_dup n i then go (i + 1) best
              else if t.ks.compare_probe probe (W.get n.keys i) >= 0 then
                go (i + 1) p
              else best
      in
      match go 0 (R.get n.leftmost 0) with
      | Child c -> c
      | Null | Value _ -> (* internal nodes always route somewhere *) assert false)

let rec find_node t n probe level =
  let n = move_right t n probe in
  if n.level = level then n
  else find_node t (search_child t n probe) probe level

let lookup t probe =
  let rec search leaf =
    let leaf = move_right t leaf probe in
    let r =
      read_stable leaf (fun () ->
          let rec go i =
            if i >= cardinality then None
            else
              match R.get leaf.ptrs i with
              | Null -> None
              | p ->
                  if is_dup leaf i then go (i + 1)
                  else
                    let c = t.ks.compare_probe probe (W.get leaf.keys i) in
                    if c = 0 then
                      match p with
                      | Value v -> Some v
                      | Child _ | Null -> assert false
                    else if c < 0 then None
                    else go (i + 1)
          in
          go 0)
    in
    match r with
    | Some _ as hit -> hit
    | None -> (
        (* A split may have moved [probe]'s range right between our descent
           and the stable read: re-check the bound and follow the link. *)
        match R.get leaf.sibling 0 with
        | Some s when s.has_min && t.ks.compare_probe probe s.min_key >= 0 ->
            search s
        | Some _ | None -> None)
  in
  search (find_node t (R.get t.root 0) probe 0)

(* --- write-path helpers (caller holds [n.lock]) ---------------------------- *)

(* Flush the lines of both parallel arrays covering slot [i], then fence. *)
let flush_slot_lines ?site n i =
  W.clwb ?site n.keys i;
  R.clwb ?site n.ptrs i;
  Pmem.sfence ?site ()

(* Remove slot [pos]: shift left, pointer before key, flushing left-to-right
   at line crossings, then retract the Null terminator. *)
let remove_slot n pos count =
  seq_begin n;
  for i = pos to count - 2 do
    P.store_ref ~site:s_remove n.ptrs i (R.get n.ptrs (i + 1));
    P.store ~site:s_remove n.keys i (W.get n.keys (i + 1));
    if (i + 1) mod slots_per_line = 0 then begin
      flush_slot_lines ~site:s_remove n i;
      Pmem.Crash.point ~site:s_remove ()
    end
  done;
  (* If the loop's last iteration ended exactly on a line crossing, the tail
     line is already persisted — flushing it again would be redundant. *)
  if count - 2 >= pos && (count - 1) mod slots_per_line <> 0 then
    flush_slot_lines ~site:s_remove n (count - 2);
  Pmem.Crash.point ~site:s_remove ();
  P.commit_ref ~site:s_remove n.ptrs (count - 1) Null [@pm.deferred];
  seq_end n

(* Writer-side fix of crash leftovers (§3: "writes detect inconsistencies
   such as duplicated elements, and try to fix them"): remove adjacent
   duplicates, and complete an interrupted split's truncation by retracting
   the Null terminator over the invalid-by-bound suffix. *)
let fix_node t n =
  let repairs = ref 0 in
  let rec drop_dups () =
    let count = physical_count n in
    let rec find i = if i >= count - 1 then None else if is_dup n i then Some i else find (i + 1) in
    match find 0 with
    | Some i ->
        remove_slot n i count;
        incr repairs;
        drop_dups ()
    | None -> ()
  in
  drop_dups ();
  (match bound n with
  | None -> ()
  | Some m ->
      let count = physical_count n in
      let rec first_out i =
        if i >= count then count
        else if t.ks.compare_words (W.get n.keys i) m >= 0 then i
        else first_out (i + 1)
      in
      let cut = first_out 0 in
      if cut < count then begin
        seq_begin n;
        P.commit_ref ~site:s_fix n.ptrs cut Null;
        seq_end n;
        incr repairs
      end);
  !repairs

(* Insert (kw, p) at slot [pos] of a node with [count] < cardinality
   entries: FAST right-shift (key before pointer, lines flushed
   right-to-left), then key store, then the pointer commit. *)
let insert_slot n pos count kw p =
  seq_begin n;
  for i = count - 1 downto pos do
    P.store ~site:s_insert n.keys (i + 1) (W.get n.keys i);
    P.store_ref ~site:s_insert n.ptrs (i + 1) (R.get n.ptrs i);
    if (i + 1) mod slots_per_line = 0 then begin
      flush_slot_lines ~site:s_insert n (i + 1);
      Pmem.Crash.point ~site:s_insert ()
    end
  done;
  (* If the shift's last iteration ended exactly on a line crossing, the tail
     line was already flushed and fenced by the boundary flush above —
     flushing it again would be redundant (same guard as [remove_slot]). *)
  if count > pos && (pos + 1) mod slots_per_line <> 0 then
    flush_slot_lines ~site:s_insert n (pos + 1);
  Pmem.Crash.point ~site:s_insert ();
  P.store ~site:s_insert n.keys pos kw;
  W.clwb ~site:s_insert n.keys pos;
  Pmem.sfence ~site:s_insert ();
  Pmem.Crash.point ~site:s_insert ();
  P.commit_ref ~site:s_insert n.ptrs pos p;
  seq_end n

(* Lock [n], moving right as needed so [probe] is in range (unless the §3
   high-key design bug is being reproduced). *)
let rec lock_covering t n probe =
  Lock.lock n.lock;
  if t.bug_highkey then n
  else
    match R.get n.sibling 0 with
    | Some s when s.has_min && t.ks.compare_probe probe s.min_key >= 0 ->
        Lock.unlock n.lock;
        lock_covering t s probe
    | Some _ | None -> n

(* --- insert (with FAIR splits) -------------------------------------------- *)

let rec insert_entry t probe kw p level =
  let n = find_node t (R.get t.root 0) probe level in
  let n = lock_covering t n probe in
  ignore (fix_node t n);
  let count = physical_count n in
  if count = cardinality then begin
    split t n;
    (* The split moved half the range; retraverse and retry. *)
    insert_entry t probe kw p level
  end
  else begin
    (* Position among the sorted entries; duplicate check on leaves. *)
    let rec position i =
      if i >= count then Ok count
      else
        let c = t.ks.compare_probe probe (W.get n.keys i) in
        if c = 0 && level = 0 then Error i
        else if c <= 0 then Ok i
        else position (i + 1)
    in
    match position 0 with
    | Error _ ->
        Lock.unlock n.lock;
        false
    | Ok pos ->
        insert_slot n pos count kw p;
        Lock.unlock n.lock;
        true
  end

(* FAIR split of full node [n] (lock held).  Builds and persists the
   sibling, commits with the sibling-pointer store, truncates, then inserts
   the separator into the parent while still holding [n.lock]. *)
and split t n =
  let entries = Array.of_list (valid_entries t n) in
  let len = Array.length entries in
  assert (len >= 2);
  let mid = len / 2 in
  let split_kw, split_ptr = entries.(mid) in
  let sib = make_node ~level:n.level ~min_key:split_kw ~has_min:true in
  (* Internal split pushes entry [mid] up: its pointer becomes the sibling's
     leftmost child.  Leaf split copies entry [mid] itself. *)
  let first_copied = if n.level > 0 then mid + 1 else mid in
  Array.iteri
    (fun j (kw, p) ->
      W.set sib.keys j kw;
      R.set sib.ptrs j p)
    (Array.sub entries first_copied (len - first_copied));
  if n.level > 0 then R.set sib.leftmost 0 split_ptr;
  R.set sib.sibling 0 (R.get n.sibling 0);
  persist_node ~site:s_split sib;
  Pmem.Crash.point ~site:s_split ();
  seq_begin n;
  if t.bug_split_order then begin
    (* §3 implementation-bug class: truncate before linking — a crash
       between the two stores loses every key moved to the right node. *)
    P.commit_ref ~site:s_split n.ptrs mid Null;
    Pmem.Crash.point ~site:s_split ();
    P.commit_ref ~site:s_split n.sibling 0 (Some sib)
  end
  else begin
    (* Correct order: the sibling link is the atomic split point; until the
       truncation lands, the moved suffix is invalid-by-bound. *)
    P.commit_ref ~site:s_split n.sibling 0 (Some sib);
    Pmem.Crash.point ~site:s_split ();
    P.commit_ref ~site:s_split n.ptrs mid Null
  end;
  seq_end n;
  Pmem.Crash.point ~site:s_split ();
  (* Parent update: new root, or separator insert one level up. *)
  if R.get t.root 0 == n then begin
    let new_root = make_node ~level:(n.level + 1) ~min_key:0 ~has_min:false in
    R.set new_root.leftmost 0 (Child n);
    W.set new_root.keys 0 split_kw;
    R.set new_root.ptrs 0 (Child sib);
    persist_node ~site:s_root new_root;
    Pmem.Crash.point ~site:s_root ();
    let swapped =
      P.commit_cas_ref ~site:s_root t.root 0 ~expected:n ~desired:new_root
    in
    assert swapped;
    Lock.unlock n.lock
  end
  else begin
    Lock.unlock n.lock;
    ignore (insert_entry t (t.ks.to_key split_kw) split_kw (Child sib) (n.level + 1))
  end

let insert t probe value =
  let kw = t.ks.intern probe in
  insert_entry t probe kw (Value value) 0

(* --- delete ---------------------------------------------------------------- *)

let delete t probe =
  let leaf = find_node t (R.get t.root 0) probe 0 in
  let n = lock_covering t leaf probe in
  ignore (fix_node t n);
  let count = physical_count n in
  let rec find i =
    if i >= count then None
    else
      let c = t.ks.compare_probe probe (W.get n.keys i) in
      if c = 0 then Some i else if c < 0 then None else find (i + 1)
  in
  match find 0 with
  | None ->
      Lock.unlock n.lock;
      false
  | Some pos ->
      remove_slot n pos count;
      Lock.unlock n.lock;
      true

(* --- range scans ------------------------------------------------------------ *)

let scan t probe nwant f =
  if nwant <= 0 then 0
  else begin
    let leaf = find_node t (R.get t.root 0) probe 0 in
    let leaf = move_right t leaf probe in
    let emitted = ref 0 in
    let rec walk n first =
      let entries =
        read_stable n (fun () ->
            let es = valid_entries t n in
            if first then
              List.filter (fun (kw, _) -> t.ks.compare_probe probe kw <= 0) es
            else es)
      in
      let continue =
        List.for_all
          (fun (kw, p) ->
            if !emitted >= nwant then false
            else begin
              (match p with
              | Value v -> f (t.ks.to_key kw) v
              | Child _ | Null -> assert false);
              incr emitted;
              true
            end)
          entries
      in
      if continue && !emitted < nwant then
        match R.get n.sibling 0 with Some s -> walk s false | None -> ()
    in
    walk leaf true;
    !emitted
  end

let range t lo hi =
  let acc = ref [] in
  let rec walk n first =
    let entries =
      read_stable n (fun () ->
          let es = valid_entries t n in
          if first then
            List.filter (fun (kw, _) -> t.ks.compare_probe lo kw <= 0) es
          else es)
    in
    let keep_going = ref true in
    List.iter
      (fun (kw, p) ->
        if !keep_going then
          if t.ks.compare_probe hi kw <= 0 then keep_going := false
          else
            match p with
            | Value v -> acc := (t.ks.to_key kw, v) :: !acc
            | Child _ | Null -> assert false)
      entries;
    if !keep_going then
      match R.get n.sibling 0 with Some s -> walk s false | None -> ()
  in
  let leaf = find_node t (R.get t.root 0) lo 0 in
  walk (move_right t leaf lo) true;
  List.rev !acc

(* --- recovery ---------------------------------------------------------------- *)

(* Walk every node of every level (sibling chains, descending via leftmost
   children) and apply [f]. *)
let iter_nodes t f =
  let rec level_start n =
    let rec chain m =
      f m;
      match R.get m.sibling 0 with Some s -> chain s | None -> ()
    in
    chain n;
    if n.level > 0 then
      match R.get n.leftmost 0 with
      | Child c -> level_start c
      | Null | Value _ -> assert false
  in
  level_start (R.get t.root 0)

let recover t =
  Lock.new_epoch ();
  Atomic.set t.repairs 0 [@pm.volatile];
  (* Reset the volatile per-node versions and eagerly run the writer-side
     leftover repair on every node: remove the duplicates a crashed FAST
     shift left behind and complete interrupted splits by retracting the
     Null terminator over the invalid-by-bound suffix (§3's lazy fixes,
     run once at restart so the post-crash tree starts clean). *)
  iter_nodes t (fun m ->
      Atomic.set m.seq 0 [@pm.volatile];
      let r = fix_node t m in
      if r > 0 then ignore (Atomic.fetch_and_add t.repairs r [@pm.volatile]))

(* Leak sweep: entries of a node that a reader would already skip — adjacent
   duplicates from an interrupted shift and the invalid-by-bound suffix of a
   torn split — are orphaned slots pending lazy repair.  [~reclaim:true]
   runs the repair ([fix_node]) on every node carrying leftovers. *)
let leak_sweep ?(reclaim = false) t =
  let orphans = ref 0 and reclaimed = ref 0 in
  iter_nodes t (fun m ->
      let count = physical_count m in
      let valid = List.length (valid_entries t m) in
      let left = count - valid in
      if left > 0 then begin
        orphans := !orphans + left;
        if reclaim then begin
          ignore (fix_node t m);
          reclaimed := !reclaimed + left
        end
      end);
  {
    Recipe.Recovery.repaired = Atomic.get t.repairs;
    orphans = !orphans;
    reclaimed = !reclaimed;
  }
