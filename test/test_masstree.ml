(* Tests for P-Masstree: layer semantics, permutation-word protocol, splits,
   scans across layers, concurrency, crash consistency with the split-replay
   helper, durability. *)

(* Under RECIPE_SANITIZE (the @sanitize alias) the whole suite runs with
   the psan sanitizer enabled and must produce zero diagnostics. *)
let () = Harness.Sanitize_env.init ()


let reset () =
  Pmem.Mode.set_shadow false;
  Pmem.Llc.set_enabled false;
  Pmem.Crash.disarm ();
  ignore (Pmem.persist_everything ());
  Pmem.Stats.reset ();
  Util.Lock.new_epoch ()

let k = Util.Keys.encode_int

let test_insert_lookup () =
  reset ();
  let t = Masstree.create () in
  Alcotest.(check bool) "insert" true (Masstree.insert t (k 1) 10);
  Alcotest.(check bool) "dup" false (Masstree.insert t (k 1) 20);
  Alcotest.(check (option int)) "lookup" (Some 10) (Masstree.lookup t (k 1));
  Alcotest.(check (option int)) "missing" None (Masstree.lookup t (k 2))

(* 8-byte integer keys use two layers (7-byte slices). *)
let test_multilayer_int_keys () =
  reset ();
  let t = Masstree.create () in
  let r = Util.Rng.create 5 in
  let keys = Array.init 10_000 (fun _ -> Util.Rng.key r) in
  Array.iter (fun key -> ignore (Masstree.insert t (k key) (key land 0xFFFF))) keys;
  Array.iter
    (fun key ->
      if Masstree.lookup t (k key) <> Some (key land 0xFFFF) then
        Alcotest.failf "lost %d" key)
    keys

(* 24-byte string keys exercise deep layer chains and suffix storage. *)
let test_string_keys () =
  reset ();
  let t = Masstree.create () in
  for i = 1 to 5_000 do
    ignore (Masstree.insert t (Util.Keys.string_key i) i)
  done;
  for i = 1 to 5_000 do
    if Masstree.lookup t (Util.Keys.string_key i) <> Some i then
      Alcotest.failf "lost string key %d" i
  done

(* Variable-length keys including prefixes of each other. *)
let test_variable_length_keys () =
  reset ();
  let t = Masstree.create () in
  let keys = [ "a"; "ab"; "abc"; "abcdefg"; "abcdefgh"; "abcdefghijklmnop"; "b"; "" ] in
  List.iteri (fun i key -> ignore (Masstree.insert t key (i + 1))) keys;
  List.iteri
    (fun i key ->
      Alcotest.(check (option int)) key (Some (i + 1)) (Masstree.lookup t key))
    keys;
  Alcotest.(check (option int)) "absent" None (Masstree.lookup t "abcd")

let test_update () =
  reset ();
  let t = Masstree.create () in
  (* Updates through nested layers (24-byte keys reach layer 4). *)
  for i = 1 to 500 do
    ignore (Masstree.insert t (Util.Keys.string_key i) i)
  done;
  Alcotest.(check bool) "update existing" true
    (Masstree.update t (Util.Keys.string_key 123) 999);
  Alcotest.(check (option int)) "new value" (Some 999)
    (Masstree.lookup t (Util.Keys.string_key 123));
  Alcotest.(check bool) "update absent" false
    (Masstree.update t (Util.Keys.string_key 9_999) 1);
  for i = 1 to 500 do
    if i <> 123 && Masstree.lookup t (Util.Keys.string_key i) <> Some i then
      Alcotest.failf "update disturbed %d" i
  done

let test_delete () =
  reset ();
  let t = Masstree.create () in
  for i = 1 to 500 do
    ignore (Masstree.insert t (k i) i)
  done;
  for i = 1 to 500 do
    if i mod 2 = 0 then
      Alcotest.(check bool) "delete" true (Masstree.delete t (k i))
  done;
  for i = 1 to 500 do
    let expect = if i mod 2 = 0 then None else Some i in
    Alcotest.(check (option int)) "after delete" expect (Masstree.lookup t (k i))
  done;
  Alcotest.(check bool) "delete absent" false (Masstree.delete t (k 2));
  (* Reinsertion cycles force migration splits eventually. *)
  for round = 1 to 5 do
    for i = 1 to 500 do
      if i mod 2 = 0 then begin
        ignore (Masstree.insert t (k i) (i * round));
        ignore (Masstree.delete t (k i))
      end
    done
  done;
  for i = 1 to 500 do
    let expect = if i mod 2 = 0 then None else Some i in
    Alcotest.(check (option int)) "after churn" expect (Masstree.lookup t (k i))
  done

let test_scan_sorted () =
  reset ();
  let t = Masstree.create () in
  let r = Util.Rng.create 3 in
  let keys = Array.init 2_000 (fun i -> (i * 7) + 3) in
  Util.Rng.shuffle r keys;
  Array.iter (fun key -> ignore (Masstree.insert t (k key) key)) keys;
  let seen = ref [] in
  let n = Masstree.scan t (k 1_000) 25 (fun key v -> seen := (key, v) :: !seen) in
  Alcotest.(check int) "scan count" 25 n;
  let seen = List.rev !seen in
  (* First key >= 1000 in the 7i+3 sequence is 1004 (= 7*143 + 3). *)
  List.iteri
    (fun i (key, v) ->
      let expect = 1004 + (7 * i) in
      Alcotest.(check int) "scan value" expect v;
      Alcotest.(check string) "scan key" (k expect) key)
    seen

let test_scan_string_keys () =
  reset ();
  let t = Masstree.create () in
  for i = 1 to 1_000 do
    ignore (Masstree.insert t (Util.Keys.string_key i) i)
  done;
  let seen = ref [] in
  let n =
    Masstree.scan t (Util.Keys.string_key 500) 10 (fun _ v -> seen := v :: !seen)
  in
  Alcotest.(check int) "count" 10 n;
  Alcotest.(check (list int)) "in order"
    [ 500; 501; 502; 503; 504; 505; 506; 507; 508; 509 ]
    (List.rev !seen)

let test_range () =
  reset ();
  let t = Masstree.create () in
  for i = 1 to 300 do
    ignore (Masstree.insert t (k i) i)
  done;
  let rs = Masstree.range t (k 50) (k 70) in
  Alcotest.(check int) "range size" 20 (List.length rs);
  Alcotest.(check int) "first" 50 (snd (List.hd rs))

let prop_matches_model =
  QCheck.Test.make ~name:"masstree matches Hashtbl model" ~count:60
    QCheck.(
      make
        ~print:(fun l ->
          String.concat ";"
            (List.map (fun (op, key) -> Printf.sprintf "%d:%d" op key) l))
        (QCheck.Gen.list_size (QCheck.Gen.int_range 0 400)
           (QCheck.Gen.pair (QCheck.Gen.int_range 0 2) (QCheck.Gen.int_range 1 200))))
    (fun ops ->
      reset ();
      let t = Masstree.create () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (op, key) ->
          match op with
          | 0 ->
              let fresh = not (Hashtbl.mem model key) in
              if fresh then Hashtbl.replace model key (key * 3);
              Masstree.insert t (k key) (key * 3) = fresh
          | 1 ->
              let present = Hashtbl.mem model key in
              Hashtbl.remove model key;
              Masstree.delete t (k key) = present
          | _ -> Masstree.lookup t (k key) = Hashtbl.find_opt model key)
        ops)

let prop_scan_matches_model =
  QCheck.Test.make ~name:"masstree scan = sorted model tail" ~count:40
    QCheck.(
      make
        ~print:(fun (keys, s) ->
          Printf.sprintf "start=%d keys=%s" s
            (String.concat "," (List.map string_of_int keys)))
        (QCheck.Gen.pair
           (QCheck.Gen.list_size (QCheck.Gen.int_range 0 200)
              (QCheck.Gen.int_range 1 500))
           (QCheck.Gen.int_range 1 500)))
    (fun (keys, s) ->
      reset ();
      let t = Masstree.create () in
      List.iter (fun key -> ignore (Masstree.insert t (k key) key)) keys;
      let expected = List.sort_uniq compare (List.filter (fun x -> x >= s) keys) in
      let got = ref [] in
      ignore (Masstree.scan t (k s) max_int (fun _ v -> got := v :: !got));
      List.rev !got = expected)

(* --- Concurrency ---------------------------------------------------------------- *)

let test_concurrent_inserts () =
  reset ();
  let t = Masstree.create () in
  let n_domains = 4 and per = 5_000 in
  let body d () =
    for i = 0 to per - 1 do
      let key = (i * n_domains) + d + 1 in
      ignore (Masstree.insert t (k key) key)
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (body d)) in
  List.iter Domain.join ds;
  for key = 1 to n_domains * per do
    if Masstree.lookup t (k key) <> Some key then Alcotest.failf "lost %d" key
  done

let test_concurrent_readers_writers () =
  reset ();
  let t = Masstree.create () in
  for i = 1 to 2_000 do
    ignore (Masstree.insert t (k i) i)
  done;
  let stop = Atomic.make false in
  let reader () =
    let r = Util.Rng.create 14 in
    let bad = ref 0 in
    while not (Atomic.get stop) do
      let key = 1 + Util.Rng.below r 2_000 in
      if Masstree.lookup t (k key) <> Some key then incr bad
    done;
    !bad
  in
  let writer () =
    let r = Util.Rng.create 15 in
    for _ = 1 to 20_000 do
      ignore (Masstree.insert t (k (Util.Rng.key r)) 1)
    done;
    0
  in
  let rd = Domain.spawn reader and wd = Domain.spawn writer in
  ignore (Domain.join wd);
  Atomic.set stop true;
  Alcotest.(check int) "stable keys always readable" 0 (Domain.join rd)

(* --- Crash consistency ------------------------------------------------------------ *)

let test_crash_campaign () =
  for point = 1 to 80 do
    reset ();
    Pmem.Mode.set_shadow true;
    let t = Masstree.create () in
    let r = Util.Rng.create 42 in
    let loaded = Array.init 300 (fun _ -> Util.Rng.key r) in
    Array.iter (fun key -> ignore (Masstree.insert t (k key) key)) loaded;
    Pmem.persist_everything ();
    Pmem.Crash.arm_at point;
    (try
       for _ = 1 to 300 do
         ignore (Masstree.insert t (k (Util.Rng.key r)) 7)
       done;
       Pmem.Crash.disarm ()
     with Pmem.Crash.Simulated_crash -> ());
    Pmem.simulate_power_failure ();
    Masstree.recover t;
    Array.iter
      (fun key ->
        if Masstree.lookup t (k key) <> Some key then
          Alcotest.failf "crash point %d lost key %d" point key)
      loaded;
    let r2 = Util.Rng.create (point * 17) in
    for _ = 1 to 200 do
      let key = Util.Rng.key r2 in
      ignore (Masstree.insert t (k key) 9);
      if Masstree.lookup t (k key) <> Some 9 then
        Alcotest.failf "post-crash insert broken at point %d" point
    done
  done;
  Pmem.Mode.set_shadow false

(* Deterministic split-crash: enumerate every crash point of an insert that
   triggers a leaf split, then verify the helper replays step 2. *)
let test_helper_replays_split () =
  let fired = ref false in
  (* Fill one leaf to exactly 14 live entries, then insert one more. *)
  let setup () =
    reset ();
    Pmem.Mode.set_shadow true;
    let t = Masstree.create () in
    for i = 1 to 14 do
      ignore (Masstree.insert t (k (i * 10)) i)
    done;
    Pmem.persist_everything ();
    t
  in
  let points =
    let t = setup () in
    Pmem.Crash.count_points (fun () -> ignore (Masstree.insert t (k 75) 99))
  in
  Alcotest.(check bool) "split has several ordered steps" true (points >= 2);
  for point = 1 to points do
    let t = setup () in
    Pmem.Crash.arm_at point;
    (try ignore (Masstree.insert t (k 75) 99) with Pmem.Crash.Simulated_crash -> ());
    Pmem.Crash.disarm ();
    Pmem.simulate_power_failure ();
    Masstree.recover t;
    for i = 1 to 14 do
      if Masstree.lookup t (k (i * 10)) <> Some i then
        Alcotest.failf "crash point %d lost key %d" point (i * 10)
    done;
    (* Writes into the crashed node's range trigger the fix. *)
    for i = 1 to 14 do
      ignore (Masstree.insert t (k ((i * 10) + 1)) i)
    done;
    for i = 1 to 14 do
      if Masstree.lookup t (k ((i * 10) + 1)) <> Some i then
        Alcotest.failf "post-crash insert lost at point %d" point;
      if Masstree.lookup t (k (i * 10)) <> Some i then
        Alcotest.failf "old key lost after fixes at point %d" point
    done;
    if Masstree.helper_fixes t > 0 then fired := true
  done;
  Pmem.Mode.set_shadow false;
  Alcotest.(check bool) "split-replay helper fired" true !fired

let test_durability () =
  reset ();
  Pmem.Mode.set_shadow true;
  let t = Masstree.create () in
  Alcotest.(check int) "clean after create" 0 (Pmem.dirty_count ());
  let r = Util.Rng.create 11 in
  for i = 1 to 2_000 do
    ignore (Masstree.insert t (k (Util.Rng.key r)) i);
    if Pmem.dirty_count () <> 0 then
      Alcotest.failf "dirty lines after insert %d: %s" i
        (String.concat "," (Pmem.dirty_objects ()))
  done;
  for i = 1 to 300 do
    ignore (Masstree.insert t (k i) i);
    ignore (Masstree.delete t (k i));
    if Pmem.dirty_count () <> 0 then Alcotest.failf "dirty after delete %d" i
  done;
  Pmem.Mode.set_shadow false

let () =
  Alcotest.run "masstree"
    [
      ( "sequential",
        [
          Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
          Alcotest.test_case "multilayer int keys" `Quick test_multilayer_int_keys;
          Alcotest.test_case "string keys" `Quick test_string_keys;
          Alcotest.test_case "variable-length keys" `Quick test_variable_length_keys;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "delete+churn" `Quick test_delete;
          Alcotest.test_case "scan sorted" `Quick test_scan_sorted;
          Alcotest.test_case "scan string keys" `Quick test_scan_string_keys;
          Alcotest.test_case "range" `Quick test_range;
        ] );
      ( "model",
        [
          QCheck_alcotest.to_alcotest prop_matches_model;
          QCheck_alcotest.to_alcotest prop_scan_matches_model;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "inserts" `Quick test_concurrent_inserts;
          Alcotest.test_case "readers+writers" `Quick test_concurrent_readers_writers;
        ] );
      ( "crash",
        [
          Alcotest.test_case "campaign" `Quick test_crash_campaign;
          Alcotest.test_case "helper replays split" `Quick test_helper_replays_split;
        ] );
      ("durability", [ Alcotest.test_case "no dirty lines" `Quick test_durability ]);
    ]
