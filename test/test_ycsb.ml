(* Tests for the YCSB generator and runner. *)

(* Under RECIPE_SANITIZE (the @sanitize alias) the whole suite runs with
   the psan sanitizer enabled and must produce zero diagnostics. *)
let () = Harness.Sanitize_env.init ()


let reset () =
  Pmem.Mode.set_shadow false;
  Pmem.Crash.disarm ();
  ignore (Pmem.persist_everything ());
  Pmem.Stats.reset ();
  Util.Lock.new_epoch ()

let test_mix_ratios () =
  reset ();
  (* Count opcodes through a counting driver. *)
  let p =
    Ycsb.prepare ~workload:Ycsb.A ~kind:Ycsb.Randint ~nloaded:1_000 ~nops:10_000
      ~threads:2 ~seed:1 ()
  in
  let ins = Atomic.make 0 and rd = Atomic.make 0 and sc = Atomic.make 0 in
  let d =
    {
      Ycsb.dname = "count";
      insert = (fun _ -> Atomic.incr ins);
      read =
        (fun _ ->
          Atomic.incr rd;
          true);
      scan =
        Some
          (fun _ _ ->
            Atomic.incr sc;
            0);
    }
  in
  let r = Ycsb.run p d in
  Alcotest.(check int) "total ops" 10_000 r.Ycsb.ops;
  let i = Atomic.get ins and rr = Atomic.get rd in
  Alcotest.(check bool)
    (Printf.sprintf "A is ~50/50 (got %d/%d)" i rr)
    true
    (abs (i - rr) < 1_000);
  Alcotest.(check int) "no scans in A" 0 (Atomic.get sc)

let test_workload_e_scans () =
  reset ();
  let p =
    Ycsb.prepare ~workload:Ycsb.E ~kind:Ycsb.Randint ~nloaded:500 ~nops:4_000
      ~threads:2 ~seed:2 ()
  in
  let ins = Atomic.make 0 and sc = Atomic.make 0 in
  let d =
    {
      Ycsb.dname = "count";
      insert = (fun _ -> Atomic.incr ins);
      read = (fun _ -> true);
      scan =
        Some
          (fun _ len ->
            Atomic.incr sc;
            len);
    }
  in
  let r = Ycsb.run p d in
  let scans = Atomic.get sc in
  Alcotest.(check bool) "mostly scans" true (scans > 3_000);
  Alcotest.(check bool) "some inserts" true (Atomic.get ins > 0);
  Alcotest.(check bool) "scan lengths accumulate" true (r.Ycsb.scanned_total >= scans)

let test_unique_keys () =
  reset ();
  let p =
    Ycsb.prepare ~workload:Ycsb.Load_a ~kind:Ycsb.Randint ~nloaded:5_000
      ~nops:5_000 ~threads:4 ~seed:3 ()
  in
  let seen = Hashtbl.create 100 in
  for i = 0 to 9_999 do
    let k = Ycsb.key_int p i in
    if Hashtbl.mem seen k then Alcotest.failf "duplicate key %d" k;
    Hashtbl.add seen k ()
  done

let test_string_keys_shape () =
  reset ();
  let p =
    Ycsb.prepare ~workload:Ycsb.C ~kind:Ycsb.Strkey ~nloaded:100 ~nops:100
      ~threads:1 ~seed:4 ()
  in
  for i = 0 to 99 do
    Alcotest.(check int) "24 bytes" 24 (String.length (Ycsb.key_string p i))
  done

let test_determinism () =
  reset ();
  let mk () =
    Ycsb.prepare ~workload:Ycsb.B ~kind:Ycsb.Randint ~nloaded:200 ~nops:1_000
      ~threads:2 ~seed:42 ()
  in
  let p1 = mk () and p2 = mk () in
  (* universe = 200 loaded + 5% of 1000 = 250 keys *)
  for i = 0 to 249 do
    Alcotest.(check int) "same universe" (Ycsb.key_int p1 i) (Ycsb.key_int p2 i)
  done

(* End-to-end on real indexes: load + every workload must complete and find
   every read. *)
let test_end_to_end_clht () =
  reset ();
  List.iter
    (fun w ->
      reset ();
      let p =
        Ycsb.prepare ~workload:w ~kind:Ycsb.Randint ~nloaded:2_000 ~nops:2_000
          ~threads:2 ~seed:5 ()
      in
      let t = Clht.create () in
      let d = Harness.Drivers.clht p t in
      ignore (Ycsb.load p d);
      let r = Ycsb.run p d in
      Alcotest.(check int)
        (Ycsb.workload_name w ^ ": all reads found")
        0 r.Ycsb.reads_missed)
    [ Ycsb.A; Ycsb.B; Ycsb.C ]

let test_end_to_end_art_scans () =
  reset ();
  let p =
    Ycsb.prepare ~workload:Ycsb.E ~kind:Ycsb.Randint ~nloaded:2_000 ~nops:1_000
      ~threads:2 ~seed:6 ()
  in
  let t = Art.create () in
  let d = Harness.Drivers.art p t in
  ignore (Ycsb.load p d);
  let r = Ycsb.run p d in
  Alcotest.(check bool) "scans visited entries" true (r.Ycsb.scanned_total > 0)

(* Workload E against a scanless (hash) driver must fail fast, not measure
   no-ops. *)
let test_scan_unsupported () =
  reset ();
  let p =
    Ycsb.prepare ~workload:Ycsb.E ~kind:Ycsb.Randint ~nloaded:100 ~nops:100
      ~threads:1 ~seed:7 ()
  in
  let t = Clht.create () in
  let d = Harness.Drivers.clht p t in
  ignore (Ycsb.load p d);
  Alcotest.check_raises "E on hash raises"
    (Ycsb.Scan_unsupported Clht.name) (fun () -> ignore (Ycsb.run p d))

(* Per-op-type latency histograms: classes partition the merged histogram. *)
let test_latency_by_op () =
  reset ();
  let p =
    Ycsb.prepare ~workload:Ycsb.A ~kind:Ycsb.Randint ~nloaded:500 ~nops:2_000
      ~threads:2 ~seed:8 ()
  in
  let t = Clht.create () in
  let d = Harness.Drivers.clht p t in
  ignore (Ycsb.load p d);
  let r = Ycsb.run ~latency:true p d in
  let count = function
    | Some h -> Util.Histogram.count h
    | None -> 0
  in
  Alcotest.(check int) "all ops sampled" r.Ycsb.ops (count r.Ycsb.latency);
  Alcotest.(check int) "classes partition the total"
    (count r.Ycsb.latency)
    (count r.Ycsb.lat_insert + count r.Ycsb.lat_read + count r.Ycsb.lat_scan);
  Alcotest.(check int) "no scans in A" 0 (count r.Ycsb.lat_scan);
  Alcotest.(check bool) "p99 >= p50" true
    (match r.Ycsb.latency with
    | Some h ->
        Util.Histogram.percentile h 0.99 >= Util.Histogram.percentile h 0.5
    | None -> false)

let () =
  Alcotest.run "ycsb"
    [
      ( "generator",
        [
          Alcotest.test_case "mix ratios" `Quick test_mix_ratios;
          Alcotest.test_case "workload E scans" `Quick test_workload_e_scans;
          Alcotest.test_case "unique keys" `Quick test_unique_keys;
          Alcotest.test_case "string key shape" `Quick test_string_keys_shape;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "clht all workloads" `Quick test_end_to_end_clht;
          Alcotest.test_case "art scans" `Quick test_end_to_end_art_scans;
          Alcotest.test_case "scan unsupported" `Quick test_scan_unsupported;
          Alcotest.test_case "latency by op type" `Quick test_latency_by_op;
        ] );
    ]
