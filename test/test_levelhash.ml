(* Tests for the Level Hashing baseline: semantics, movement, resize,
   concurrency, crash consistency, durability. *)

(* Under RECIPE_SANITIZE (the @sanitize alias) the whole suite runs with
   the psan sanitizer enabled and must produce zero diagnostics. *)
let () = Harness.Sanitize_env.init ()


let reset () =
  Pmem.Mode.set_shadow false;
  Pmem.Llc.set_enabled false;
  Pmem.Crash.disarm ();
  ignore (Pmem.persist_everything ());
  Pmem.Stats.reset ();
  Util.Lock.new_epoch ()

let test_insert_lookup_delete () =
  reset ();
  let t = Levelhash.create ~capacity:12 () in
  Alcotest.(check bool) "insert" true (Levelhash.insert t 11 110);
  Alcotest.(check bool) "dup" false (Levelhash.insert t 11 0);
  Alcotest.(check (option int)) "lookup" (Some 110) (Levelhash.lookup t 11);
  Alcotest.(check bool) "delete" true (Levelhash.delete t 11);
  Alcotest.(check (option int)) "gone" None (Levelhash.lookup t 11);
  Alcotest.(check bool) "delete absent" false (Levelhash.delete t 11)

let test_fill_forces_movement_and_resize () =
  reset ();
  let t = Levelhash.create ~capacity:12 () in
  let n = 20_000 in
  let r = Util.Rng.create 5 in
  let keys = Array.init n (fun _ -> Util.Rng.key r) in
  Array.iter (fun k -> ignore (Levelhash.insert t k (k lxor 1))) keys;
  Alcotest.(check bool) "resizes happened" true (Levelhash.resize_count t > 0);
  Array.iter
    (fun k ->
      if Levelhash.lookup t k <> Some (k lxor 1) then Alcotest.failf "lost %d" k)
    keys

let prop_matches_model =
  QCheck.Test.make ~name:"levelhash matches Hashtbl model" ~count:100
    QCheck.(
      make
        ~print:(fun l ->
          String.concat ";"
            (List.map (fun (op, key) -> Printf.sprintf "%d:%d" op key) l))
        (QCheck.Gen.list_size (QCheck.Gen.int_range 0 300)
           (QCheck.Gen.pair (QCheck.Gen.int_range 0 2) (QCheck.Gen.int_range 1 150))))
    (fun ops ->
      reset ();
      let t = Levelhash.create ~capacity:6 () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (op, key) ->
          match op with
          | 0 ->
              let fresh = not (Hashtbl.mem model key) in
              if fresh then Hashtbl.replace model key (key * 3);
              Levelhash.insert t key (key * 3) = fresh
          | 1 ->
              let present = Hashtbl.mem model key in
              Hashtbl.remove model key;
              Levelhash.delete t key = present
          | _ -> Levelhash.lookup t key = Hashtbl.find_opt model key)
        ops)

let test_concurrent_inserts () =
  reset ();
  let t = Levelhash.create ~capacity:12 () in
  let n_domains = 4 and per = 5_000 in
  let body d () =
    for i = 0 to per - 1 do
      let k = (i * n_domains) + d + 1 in
      ignore (Levelhash.insert t k k)
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (body d)) in
  List.iter Domain.join ds;
  Alcotest.(check int) "count" (n_domains * per) (Levelhash.length t);
  for k = 1 to n_domains * per do
    if Levelhash.lookup t k <> Some k then Alcotest.failf "lost %d" k
  done

let test_crash_consistency () =
  for point = 1 to 60 do
    reset ();
    Pmem.Mode.set_shadow true;
    let t = Levelhash.create ~capacity:12 () in
    for k = 1 to 200 do
      ignore (Levelhash.insert t k k)
    done;
    Pmem.persist_everything ();
    Pmem.Crash.arm_at point;
    (try
       for k = 201 to 2_000 do
         ignore (Levelhash.insert t k k)
       done;
       Pmem.Crash.disarm ()
     with Pmem.Crash.Simulated_crash -> ());
    Pmem.simulate_power_failure ();
    Levelhash.recover t;
    for k = 1 to 200 do
      if Levelhash.lookup t k <> Some k then
        Alcotest.failf "crash point %d lost key %d" point k
    done;
    ignore (Levelhash.insert t 777_777 7);
    if Levelhash.lookup t 777_777 <> Some 7 then
      Alcotest.failf "post-recovery insert failed at point %d" point
  done;
  Pmem.Mode.set_shadow false

let test_durability () =
  reset ();
  Pmem.Mode.set_shadow true;
  let t = Levelhash.create ~capacity:12 () in
  Alcotest.(check int) "clean after create" 0 (Pmem.dirty_count ());
  for k = 1 to 2_000 do
    ignore (Levelhash.insert t k k);
    if Pmem.dirty_count () <> 0 then
      Alcotest.failf "dirty lines after insert %d: %s" k
        (String.concat "," (Pmem.dirty_objects ()))
  done;
  for k = 1 to 2_000 do
    ignore (Levelhash.delete t k);
    if Pmem.dirty_count () <> 0 then Alcotest.failf "dirty after delete %d" k
  done;
  Pmem.Mode.set_shadow false

let () =
  Alcotest.run "levelhash"
    [
      ( "sequential",
        [
          Alcotest.test_case "insert/lookup/delete" `Quick test_insert_lookup_delete;
          Alcotest.test_case "movement+resize" `Quick
            test_fill_forces_movement_and_resize;
        ] );
      ("model", [ QCheck_alcotest.to_alcotest prop_matches_model ]);
      ("concurrent", [ Alcotest.test_case "inserts" `Quick test_concurrent_inserts ]);
      ("crash", [ Alcotest.test_case "consistency" `Quick test_crash_consistency ]);
      ("durability", [ Alcotest.test_case "no dirty lines" `Quick test_durability ]);
    ]
