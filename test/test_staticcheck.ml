(* pmlint engine tests: golden fixtures under lintfix/ (known-bad files
   must produce exactly their .expected diagnostics, the known-clean file
   none), plus unit tests for the scan state machine, carrier summaries,
   suppression attributes, scope mapping, baseline diffing, and the
   mutation self-check machinery. *)

open Staticcheck

let render_all (r : Driver.file_result) =
  (* Per-file lint plus the cross-file duplicate-tag pass over this file's
     own site definitions — the same composition [Driver.lint_tree] uses. *)
  let extra = ref [] in
  Rules.check_duplicate_tags ~emit:(fun f -> extra := f :: !extra) r.fr_defs;
  List.map Finding.render
    (List.sort Finding.compare (r.fr_findings @ !extra))

let lint_str ?(file = "unit.ml") src =
  render_all (Driver.lint_string ~file ~scope:Scope.all src)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (if String.trim l = "" then acc else l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* --- golden fixtures ------------------------------------------------------- *)

let fixtures =
  [
    "bad_r1_mutation"; "bad_r2_publish"; "bad_r3_fence"; "bad_r4_sites";
    "good_clean";
  ]

let test_fixture name () =
  let ml = Filename.concat "lintfix" (name ^ ".ml") in
  let expected = read_lines (Filename.concat "lintfix" (name ^ ".expected")) in
  let got = render_all (Driver.lint_file ~scope:Scope.all ml) in
  Alcotest.(check (list string)) name expected got

let test_clean_fixture_is_empty () =
  let got = render_all (Driver.lint_file ~scope:Scope.all "lintfix/good_clean.ml") in
  Alcotest.(check (list string)) "good_clean produces no findings" [] got

(* --- scan state machine ---------------------------------------------------- *)

let has_rule id lines =
  List.exists
    (fun l ->
      let tag = "[" ^ id ^ "]" in
      let rec go i =
        i + String.length tag <= String.length l
        && (String.sub l i (String.length tag) = tag || go (i + 1))
      in
      go 0)
    lines

let test_r2_unflushed_store () =
  let got = lint_str "let f w = W.set w 0 1; W.sanitize_publish w 0" in
  Alcotest.(check bool) "R2 fires" true (has_rule "R2" got)

let test_r2_flushed_is_clean () =
  let got =
    lint_str
      "let f w = W.set w 0 1; W.clwb w 0; Pmem.sfence (); W.sanitize_publish \
       w 0"
  in
  Alcotest.(check (list string)) "clean" [] got

let test_r2_join_is_may_analysis () =
  (* Flush on only one branch: the publish may see an unflushed store. *)
  let one =
    lint_str
      "let f w c = W.set w 0 1; (if c then W.clwb w 0); W.sanitize_publish w 0"
  in
  Alcotest.(check bool) "one-branch flush still R2" true (has_rule "R2" one);
  let both =
    lint_str
      "let f w c =\n\
      \  W.set w 0 1;\n\
      \  (if c then W.clwb w 0 else W.clwb_all w);\n\
      \  Pmem.sfence ();\n\
      \  W.sanitize_publish w 0"
  in
  Alcotest.(check (list string)) "both-branch flush clean" [] both

let test_r3_back_to_back_fence () =
  let got =
    lint_str "let f w = W.clwb w 0; Pmem.sfence (); Pmem.sfence ()"
  in
  Alcotest.(check bool) "R3 fires" true (has_rule "R3" got)

let test_r3_fence_after_flush_clean () =
  let got =
    lint_str
      "let f w = W.clwb w 0; Pmem.sfence (); W.clwb w 1; Pmem.sfence ()"
  in
  Alcotest.(check (list string)) "interleaved clwb/sfence clean" [] got

let test_r3_unfenced_flush () =
  let got = lint_str "let f w = W.clwb w 0" in
  Alcotest.(check bool) "R3b fires" true (has_rule "R3" got)

(* --- carriers -------------------------------------------------------------- *)

let test_carrier_flush_clears_pending () =
  let got =
    lint_str
      "let persist_all w = W.clwb_all w; Pmem.sfence ()\n\
       let f w = W.set w 0 1; persist_all w; W.sanitize_publish w 0"
  in
  Alcotest.(check (list string)) "helper flush counts" [] got

let test_carrier_publish_exposed () =
  (* A helper that merely publishes re-exposes the caller's pending store. *)
  let got =
    lint_str
      "let pub w = W.sanitize_publish w 0\n\
       let f w = W.set w 0 1; pub w"
  in
  Alcotest.(check bool) "exposed publish fires at call" true
    (has_rule "R2" got)

let test_carrier_guarded_publish_not_exposed () =
  (* A helper whose publish is dominated by its own flush is safe to call
     with stores pending (syntactically; the flush is the helper's own). *)
  let got =
    lint_str
      "let commit w = W.set w 0 1; W.clwb w 0; Pmem.sfence (); \
       W.sanitize_publish w 0\n\
       let f w = W.set w 5 9; commit w"
  in
  Alcotest.(check (list string)) "guarded publish clean at call" [] got

(* --- suppression and exemption --------------------------------------------- *)

let test_volatile_attr_suppresses_r1 () =
  let bare = lint_str "let f t = Atomic.incr t.stat" in
  Alcotest.(check bool) "unannotated fires" true (has_rule "R1" bare);
  let ann = lint_str "let f t = Atomic.incr t.stat [@pm.volatile]" in
  Alcotest.(check (list string)) "annotated clean" [] ann;
  let bind = lint_str "let[@pm.volatile] f t = t.stat <- 1" in
  Alcotest.(check (list string)) "binding-annotated clean" [] bind

let test_local_alloc_exempt_from_r1 () =
  let got =
    lint_str "let f n = let buf = Array.make n 0 in Array.set buf 0 1; buf"
  in
  Alcotest.(check (list string)) "local array mutation clean" [] got

let test_deferred_attr_suppresses_r2 () =
  let got =
    lint_str "let f w = W.set w 0 1; W.sanitize_publish w 0 [@pm.deferred]"
  in
  Alcotest.(check (list string)) "deferred publish clean" [] got

(* --- R4 -------------------------------------------------------------------- *)

let test_r4_duplicate_tag () =
  let got =
    lint_str
      "let site = Obs.Site.v ~index:\"T\"\n\
       let a = site \"x\"\n\
       let b = site \"x\"\n\
       let f w = W.clwb ~site:a w 0; W.clwb ~site:b w 0; Pmem.sfence ()"
  in
  Alcotest.(check bool) "duplicate fires" true (has_rule "R4" got)

let test_r4_clean_sites () =
  let got =
    lint_str
      "let site = Obs.Site.v ~index:\"T\"\n\
       let a = site \"x\"\n\
       let f w = W.clwb ~site:a w 0; Pmem.sfence ()"
  in
  Alcotest.(check (list string)) "clean sites" [] got

(* --- scope ----------------------------------------------------------------- *)

let test_scope_mapping () =
  let open Scope in
  let ff = of_path "lib/fastfair/fastfair.ml" in
  Alcotest.(check bool) "fastfair r1" true ff.r1;
  Alcotest.(check bool) "fastfair r23" true ff.r23;
  let pm = of_path "lib/pmem/words.ml" in
  Alcotest.(check bool) "pmem r1 off" false pm.r1;
  Alcotest.(check bool) "pmem r23 off" false pm.r23;
  Alcotest.(check bool) "pmem r4 on" true pm.r4;
  let kv = of_path "lib/kvserve/batch.ml" in
  Alcotest.(check bool) "kvserve r1 off" false kv.r1;
  Alcotest.(check bool) "kvserve r23 on" true kv.r23;
  let outside = of_path "test/test_obs.ml" in
  Alcotest.(check bool) "outside lib: nothing" false
    (outside.r1 || outside.r23 || outside.r4)

(* --- parse errors ---------------------------------------------------------- *)

let test_parse_error_is_a_finding () =
  let got = lint_str "let f = (" in
  Alcotest.(check int) "one finding" 1 (List.length got);
  Alcotest.(check bool) "parse rule" true (has_rule "parse" got)

(* --- baseline -------------------------------------------------------------- *)

let test_baseline_diff () =
  let d =
    Baseline.diff ~baseline:[ "a.ml:1: [R1] x"; "b.ml:2: [R2] y" ]
      ~found:[ "a.ml:1: [R1] x"; "c.ml:3: [R3] z" ]
  in
  Alcotest.(check (list string)) "fresh" [ "c.ml:3: [R3] z" ] d.Baseline.fresh;
  Alcotest.(check (list string)) "stale" [ "b.ml:2: [R2] y" ] d.Baseline.stale

let test_baseline_roundtrip () =
  let path = Filename.temp_file "pmlint_baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let found = [ "b.ml:2: [R2] y"; "a.ml:1: [R1] x" ] in
      Baseline.save path ~found;
      let loaded = Baseline.load path in
      (* Comments dropped, entries sorted. *)
      Alcotest.(check (list string))
        "roundtrip"
        [ "a.ml:1: [R1] x"; "b.ml:2: [R2] y" ]
        loaded)

(* --- mutation machinery ---------------------------------------------------- *)

let test_mutate_lines_preserves_line_count () =
  let src = "a\n  keep me\n  drop this line\nb\n" in
  let mutated, hits =
    Driver.mutate_lines src
      ~mut:{ Driver.mut_name = "t"; mut_match = "drop this" }
  in
  Alcotest.(check int) "one hit" 1 hits;
  Alcotest.(check int) "line count preserved"
    (List.length (String.split_on_char '\n' src))
    (List.length (String.split_on_char '\n' mutated));
  Alcotest.(check string) "replaced in place" "  ();"
    (List.nth (String.split_on_char '\n' mutated) 2)

let test_mutation_check_on_fixture () =
  (* Dropping good_clean's flush helper call must surface a new R2 — the
     same machinery the @lint alias runs against FAST&FAIR's split path. *)
  let src = Srcparse.read_file "lintfix/good_clean.ml" in
  let mutated, hits =
    Driver.mutate_lines src
      ~mut:{ Driver.mut_name = "t"; mut_match = "persist_node ~site:s_alloc" }
  in
  Alcotest.(check int) "one hit" 1 hits;
  let before = lint_str ~file:"good_clean.ml" src in
  let after = lint_str ~file:"good_clean.ml" mutated in
  let fresh = List.filter (fun f -> not (List.mem f before)) after in
  Alcotest.(check bool) "dropped flush caught" true (has_rule "R2" fresh)

let () =
  Alcotest.run "staticcheck"
    [
      ( "fixtures",
        List.map
          (fun name -> Alcotest.test_case name `Quick (test_fixture name))
          fixtures
        @ [
            Alcotest.test_case "good_clean empty" `Quick
              test_clean_fixture_is_empty;
          ] );
      ( "scan",
        [
          Alcotest.test_case "R2 unflushed store" `Quick test_r2_unflushed_store;
          Alcotest.test_case "R2 flushed clean" `Quick test_r2_flushed_is_clean;
          Alcotest.test_case "R2 may-join" `Quick test_r2_join_is_may_analysis;
          Alcotest.test_case "R3 back-to-back" `Quick test_r3_back_to_back_fence;
          Alcotest.test_case "R3 interleaved clean" `Quick
            test_r3_fence_after_flush_clean;
          Alcotest.test_case "R3 unfenced flush" `Quick test_r3_unfenced_flush;
        ] );
      ( "carriers",
        [
          Alcotest.test_case "flush clears pending" `Quick
            test_carrier_flush_clears_pending;
          Alcotest.test_case "exposed publish" `Quick
            test_carrier_publish_exposed;
          Alcotest.test_case "guarded publish" `Quick
            test_carrier_guarded_publish_not_exposed;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "pm.volatile" `Quick test_volatile_attr_suppresses_r1;
          Alcotest.test_case "local alloc" `Quick test_local_alloc_exempt_from_r1;
          Alcotest.test_case "pm.deferred" `Quick test_deferred_attr_suppresses_r2;
        ] );
      ( "sites",
        [
          Alcotest.test_case "duplicate tag" `Quick test_r4_duplicate_tag;
          Alcotest.test_case "clean sites" `Quick test_r4_clean_sites;
        ] );
      ( "infra",
        [
          Alcotest.test_case "scope mapping" `Quick test_scope_mapping;
          Alcotest.test_case "parse error" `Quick test_parse_error_is_a_finding;
          Alcotest.test_case "baseline diff" `Quick test_baseline_diff;
          Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "mutate lines" `Quick
            test_mutate_lines_preserves_line_count;
          Alcotest.test_case "mutation caught" `Quick
            test_mutation_check_on_fixture;
        ] );
    ]
