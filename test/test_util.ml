(* Tests for the util substrate: locks, RNG, key codecs, bit helpers,
   histogram. *)

let test_lock_basic () =
  let l = Util.Lock.create () in
  Alcotest.(check bool) "initially free" false (Util.Lock.is_locked l);
  Alcotest.(check bool) "try_lock" true (Util.Lock.try_lock l);
  Alcotest.(check bool) "now held" true (Util.Lock.is_locked l);
  Alcotest.(check bool) "second try fails" false (Util.Lock.try_lock l);
  Util.Lock.unlock l;
  Alcotest.(check bool) "free again" false (Util.Lock.is_locked l)

let test_lock_epoch_recovery () =
  let l = Util.Lock.create () in
  Util.Lock.lock l;
  (* Simulated crash while the lock is held: recovery bumps the epoch and the
     lock must be reacquirable without an unlock. *)
  Util.Lock.new_epoch ();
  Alcotest.(check bool) "stale lock is free" false (Util.Lock.is_locked l);
  Alcotest.(check bool) "reacquire after recovery" true (Util.Lock.try_lock l);
  Util.Lock.unlock l

let test_lock_mutual_exclusion () =
  let l = Util.Lock.create () in
  let counter = ref 0 in
  let per = 10_000 in
  let body () =
    for _ = 1 to per do
      Util.Lock.with_lock l (fun () -> incr counter)
    done
  in
  let ds = List.init 4 (fun _ -> Domain.spawn body) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost updates" (4 * per) !counter

let test_rng_determinism () =
  let a = Util.Rng.create 7 and b = Util.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Util.Rng.next a) (Util.Rng.next b)
  done

let test_rng_below () =
  let r = Util.Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Util.Rng.below r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_rng_keys_positive () =
  let r = Util.Rng.create 5 in
  for _ = 1 to 10_000 do
    if Util.Rng.key r <= 0 then Alcotest.fail "key must be positive"
  done

let test_keys_roundtrip () =
  List.iter
    (fun k ->
      Alcotest.(check int) "roundtrip" k Util.Keys.(decode_int (encode_int k)))
    [ 0; 1; 255; 256; 65_535; 1_000_000_007; max_int / 2 ]

let test_keys_order_preserving () =
  let sign x = compare x 0 in
  let r = Util.Rng.create 11 in
  for _ = 1 to 1_000 do
    let a = Util.Rng.key r and b = Util.Rng.key r in
    let sa = Util.Keys.encode_int a and sb = Util.Keys.encode_int b in
    Alcotest.(check int) "byte order = int order" (sign (compare a b))
      (sign (String.compare sa sb))
  done

let test_string_key_shape () =
  let k = Util.Keys.string_key 42 in
  Alcotest.(check int) "24 bytes" Util.Keys.string_key_length (String.length k);
  Alcotest.(check bool) "user prefix" true (String.length k > 4 && String.sub k 0 4 = "user");
  (* Order-preserving for ids of equal digit count (zero-padded). *)
  Alcotest.(check bool) "ordered" true
    (String.compare (Util.Keys.string_key 41) (Util.Keys.string_key 42) < 0)

let test_successor () =
  (match Util.Keys.successor "ab" with
  | Some s -> Alcotest.(check string) "bump last byte" "ac" s
  | None -> Alcotest.fail "successor exists");
  (match Util.Keys.successor "a\xff" with
  | Some s -> Alcotest.(check string) "carry" "b" s
  | None -> Alcotest.fail "successor exists");
  Alcotest.(check bool) "all-0xff has none" true
    (Util.Keys.successor "\xff\xff" = None)

let test_bits () =
  Alcotest.(check int) "clz 1" 62 (Util.Bits.count_leading_zeros 1);
  Alcotest.(check int) "clz 2" 61 (Util.Bits.count_leading_zeros 2);
  Alcotest.(check int) "clz max" 1 (Util.Bits.count_leading_zeros max_int);
  Alcotest.(check int) "hdb" 62 (Util.Bits.highest_differing_bit 0 1);
  Alcotest.(check int) "pow2" 8 (Util.Bits.next_power_of_two 5);
  Alcotest.(check int) "pow2 exact" 8 (Util.Bits.next_power_of_two 8);
  Alcotest.(check bool) "is_pow2" true (Util.Bits.is_power_of_two 64);
  Alcotest.(check bool) "not pow2" false (Util.Bits.is_power_of_two 48);
  Alcotest.(check int) "popcount" 3 (Util.Bits.popcount 0b10101)

let test_histogram () =
  let h = Util.Histogram.create () in
  for i = 1 to 1000 do
    Util.Histogram.add h i
  done;
  Alcotest.(check int) "count" 1000 (Util.Histogram.count h);
  let p50 = Util.Histogram.percentile h 0.5 in
  Alcotest.(check bool) "p50 near 500" true (p50 > 300 && p50 < 800);
  let p99 = Util.Histogram.percentile h 0.99 in
  Alcotest.(check bool) "p99 above p50" true (p99 >= p50);
  let m = Util.Histogram.mean h in
  Alcotest.(check bool) "mean near 500" true (m > 450.0 && m < 550.0)

(* Regression: with few samples, [q * count] truncates to 0 and percentile
   used to return bucket 0 (= 1 ns) regardless of the data. *)
let test_histogram_small_counts () =
  let h = Util.Histogram.create () in
  Util.Histogram.add h 1_000;
  Alcotest.(check bool)
    "p50 of a single 1000ns sample is ~1000ns (4%% bucket floor)" true
    (Util.Histogram.percentile h 0.5 >= 960);
  Alcotest.(check bool)
    "p99 of a single sample equals p50" true
    (Util.Histogram.percentile h 0.99 = Util.Histogram.percentile h 0.5);
  let h2 = Util.Histogram.create () in
  Util.Histogram.add h2 100;
  Util.Histogram.add h2 10_000;
  (* target rank of q=0.4 over 2 samples is ceil(0.8)=1: the first sample *)
  Alcotest.(check bool)
    "low quantile picks the smaller sample" true
    (Util.Histogram.percentile h2 0.4 < 1_000);
  Alcotest.(check bool)
    "high quantile picks the larger sample" true
    (Util.Histogram.percentile h2 0.99 >= 9_000);
  (* Empty histogram stays at 0 (no clamping to rank 1). *)
  let h3 = Util.Histogram.create () in
  Alcotest.(check int) "empty percentile" 0 (Util.Histogram.percentile h3 0.99)

let test_histogram_merge () =
  let a = Util.Histogram.create () and b = Util.Histogram.create () in
  for i = 1 to 100 do
    Util.Histogram.add a i
  done;
  for i = 10_001 to 10_100 do
    Util.Histogram.add b i
  done;
  Util.Histogram.merge a b;
  Alcotest.(check int) "merged count" 200 (Util.Histogram.count a);
  Alcotest.(check bool)
    "p99 comes from the slow half" true
    (Util.Histogram.percentile a 0.99 >= 9_000);
  Alcotest.(check bool)
    "p25 comes from the fast half" true
    (Util.Histogram.percentile a 0.25 <= 128)

(* qcheck: key encoding is a monotone bijection. *)
let prop_encode_monotone =
  QCheck.Test.make ~name:"encode_int monotone" ~count:1000
    QCheck.(pair (int_bound ((1 lsl 30) - 1)) (int_bound ((1 lsl 30) - 1)))
    (fun (a, b) ->
      let sa = Util.Keys.encode_int a and sb = Util.Keys.encode_int b in
      compare a b = compare sa sb)

let prop_successor_is_upper_bound =
  QCheck.Test.make ~name:"successor bounds prefix" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 1 10))
    (fun s ->
      match Util.Keys.successor s with
      | None -> String.for_all (fun c -> c = '\xff') s
      | Some succ -> String.compare s succ < 0)

let () =
  Alcotest.run "util"
    [
      ( "lock",
        [
          Alcotest.test_case "basic" `Quick test_lock_basic;
          Alcotest.test_case "epoch recovery" `Quick test_lock_epoch_recovery;
          Alcotest.test_case "mutual exclusion" `Quick test_lock_mutual_exclusion;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "below range" `Quick test_rng_below;
          Alcotest.test_case "keys positive" `Quick test_rng_keys_positive;
        ] );
      ( "keys",
        [
          Alcotest.test_case "roundtrip" `Quick test_keys_roundtrip;
          Alcotest.test_case "order preserving" `Quick test_keys_order_preserving;
          Alcotest.test_case "string key shape" `Quick test_string_key_shape;
          Alcotest.test_case "successor" `Quick test_successor;
        ] );
      ("bits", [ Alcotest.test_case "helpers" `Quick test_bits ]);
      ( "histogram",
        [
          Alcotest.test_case "percentiles" `Quick test_histogram;
          Alcotest.test_case "small counts" `Quick test_histogram_small_counts;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_encode_monotone;
          QCheck_alcotest.to_alcotest prop_successor_is_upper_bound;
        ] );
    ]
