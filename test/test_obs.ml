(* Tests for the observability subsystem: sharded counters and histograms
   under multi-domain load, the site-attribution invariant against the
   legacy Stats façade, trace ring wraparound, and the JSON round trip. *)

let reset () =
  Pmem.Mode.set_shadow false;
  Pmem.Crash.disarm ();
  ignore (Pmem.persist_everything ());
  Pmem.Stats.reset ();
  Obs.reset_all ();
  Obs.Trace.set_enabled false;
  Util.Lock.new_epoch ()

(* --- sharded counters --------------------------------------------------- *)

let test_counter_cross_domain () =
  reset ();
  let c = Obs.counter "test.cross_domain" in
  let per = 10_000 and domains = 4 in
  let spawned =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              Obs.Counter.incr c
            done))
  in
  (* The spawning domain counts too: its slot must merge with the others. *)
  for _ = 1 to per do
    Obs.Counter.incr c
  done;
  List.iter Domain.join spawned;
  Alcotest.(check int)
    "all domains' slots merge" ((domains + 1) * per) (Obs.Counter.value c);
  Obs.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Obs.Counter.value c)

let test_counter_find_or_create () =
  reset ();
  let a = Obs.counter "test.same_name" and b = Obs.counter "test.same_name" in
  Obs.Counter.incr a;
  Alcotest.(check int) "same name, same counter" 1 (Obs.Counter.value b)

let test_hist_cross_domain () =
  reset ();
  let h = Obs.hist "test.hist" in
  let spawned =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 1_000 do
              Obs.Hist.observe h (((d + 1) * 10_000) + i)
            done))
  in
  List.iter Domain.join spawned;
  Alcotest.(check int) "all samples counted" 3_000 (Obs.Hist.count h);
  let m = Obs.Hist.merged h in
  Alcotest.(check int) "merged count" 3_000 (Util.Histogram.count m);
  Alcotest.(check bool)
    "p99 in the slowest domain's band" true
    (Util.Histogram.percentile m 0.99 >= 30_000)

(* --- site attribution vs the legacy Stats façade ------------------------ *)

(* Every flush/fence increments the global total and exactly one site
   (untagged when no label was given), so summing over all sites must
   reproduce the Stats totals — single-threaded and multi-threaded. *)
let check_invariant ctx =
  let s = Pmem.Stats.snapshot () in
  let sites = Obs.Site.all () in
  let clwb = List.fold_left (fun a x -> a + Obs.Site.clwb_count x) 0 sites
  and sfence = List.fold_left (fun a x -> a + Obs.Site.sfence_count x) 0 sites in
  Alcotest.(check int) (ctx ^ ": clwb sum = Stats") s.Pmem.Stats.s_clwb clwb;
  Alcotest.(check int) (ctx ^ ": sfence sum = Stats") s.Pmem.Stats.s_sfence
    sfence

let test_site_totals_single () =
  reset ();
  let t = Clht.create () in
  for k = 1 to 2_000 do
    ignore (Clht.insert t k (k * 2))
  done;
  Alcotest.(check bool)
    "workload flushed something" true
    ((Pmem.Stats.snapshot ()).Pmem.Stats.s_clwb > 0);
  check_invariant "clht load"

let test_site_totals_multi () =
  reset ();
  let t = Art.create () in
  let spawned =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 1_000 do
              let k = (d * 100_000) + i in
              ignore (Art.insert t (Util.Keys.encode_int k) k)
            done))
  in
  List.iter Domain.join spawned;
  check_invariant "art 4 domains";
  (* And the tagged sites actually fired: the work is attributed, not all
     falling through to the untagged catch-all. *)
  let art_clwb =
    List.fold_left
      (fun a x -> a + Obs.Site.clwb_count x)
      0
      (Obs.Site.by_index "P-ART")
  in
  Alcotest.(check bool) "P-ART sites attributed" true (art_clwb > 0)

(* --- trace ring --------------------------------------------------------- *)

let test_trace_wraparound () =
  reset ();
  Obs.Trace.set_enabled true;
  let cap = Obs.Trace.capacity () in
  let n = (cap * 2) + 37 in
  for i = 1 to n do
    Obs.Trace.record Obs.Trace.Note ~arg:i "wrap"
  done;
  Obs.Trace.set_enabled false;
  let events = Obs.Trace.dump () in
  Alcotest.(check int)
    "ring retains exactly its capacity" cap (List.length events);
  Alcotest.(check int)
    "older events dropped, not lost count" (n - cap) (Obs.Trace.dropped ());
  (* The retained window is the most recent events, in sequence order. *)
  let seqs = List.map (fun e -> e.Obs.Trace.seq) events in
  Alcotest.(check bool)
    "sorted by sequence" true
    (List.sort compare seqs = seqs);
  Alcotest.(check int)
    "newest event retained" (n - 1)
    (List.fold_left max 0 seqs);
  let last3 = Obs.Trace.recent 3 in
  Alcotest.(check int) "recent n" 3 (List.length last3);
  Obs.Trace.clear ();
  Alcotest.(check int) "clear empties the ring" 0
    (List.length (Obs.Trace.dump ()))

let test_trace_disabled_records_nothing () =
  reset ();
  Obs.Trace.record Obs.Trace.Note "dropped";
  Alcotest.(check int) "disabled ring stays empty" 0
    (List.length (Obs.Trace.dump ()))

(* Regression for the ring-collision race: the old trace ring picked its
   slot as [did land (Shard.shards - 1)], so two live domains whose ids
   collide modulo 128 shared one ring and clobbered each other's events
   unsynchronized.  Hunt for a spawned domain whose id collides with the
   main domain's modulo 128 (ids are sequential and never reused, so at
   most ~128 spawns), record from both concurrently, and require every
   event from both domains to be retained. *)
let test_trace_domain_collision () =
  reset ();
  Obs.Trace.set_capacity 16_384;
  Obs.Trace.set_enabled true;
  let per = 1_000 in
  let d0 = (Domain.self () :> int) in
  let rec hunt budget =
    if budget = 0 then Alcotest.fail "no colliding domain id within budget"
    else begin
      let id = Atomic.make (-1) in
      let go = Atomic.make false in
      let d =
        Domain.spawn (fun () ->
            let self = (Domain.self () :> int) in
            Atomic.set id self;
            while not (Atomic.get go) do
              Domain.cpu_relax ()
            done;
            if (self - d0) mod 128 = 0 then
              for i = 1 to per do
                Obs.Trace.record Obs.Trace.Note ~arg:i "spawned"
              done)
      in
      while Atomic.get id < 0 do
        Domain.cpu_relax ()
      done;
      let collide = (Atomic.get id - d0) mod 128 = 0 in
      Atomic.set go true;
      if collide then
        for i = 1 to per do
          Obs.Trace.record Obs.Trace.Note ~arg:i "main"
        done;
      Domain.join d;
      if not collide then hunt (budget - 1)
    end
  in
  hunt 300;
  Obs.Trace.set_enabled false;
  let events = Obs.Trace.dump () in
  let by label =
    List.length (List.filter (fun e -> e.Obs.Trace.label = label) events)
  in
  Alcotest.(check int) "no event lost to a shared ring" (2 * per)
    (List.length events);
  Alcotest.(check int) "main domain's events all retained" per (by "main");
  Alcotest.(check int) "colliding domain's events all retained" per
    (by "spawned");
  Alcotest.(check int) "nothing overwritten" 0 (Obs.Trace.dropped ());
  Obs.Trace.set_capacity Obs.Trace.default_capacity

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_trace_set_capacity () =
  reset ();
  Obs.Trace.set_capacity 8;
  Obs.Trace.set_enabled true;
  for i = 1 to 20 do
    Obs.Trace.record Obs.Trace.Note ~arg:i "cap"
  done;
  Obs.Trace.set_enabled false;
  Alcotest.(check int) "configured capacity applies" 8
    (List.length (Obs.Trace.dump ()));
  Alcotest.(check int) "overwrites counted as dropped" 12
    (Obs.Trace.dropped ());
  let header = Format.asprintf "%a" Obs.Trace.pp_header () in
  Alcotest.(check bool) "header reports the drop count" true
    (contains header "12 dropped");
  Alcotest.(check bool) "header flags the truncated window" true
    (contains header "INCOMPLETE");
  Obs.Trace.set_capacity Obs.Trace.default_capacity;
  Alcotest.(check int) "set_capacity discards retained events" 0
    (List.length (Obs.Trace.dump ()))

(* --- trace-event export -------------------------------------------------- *)

let test_traceview_export () =
  reset ();
  Obs.Trace.set_enabled true;
  Obs.Span.set_enabled true;
  Obs.Trace.record Obs.Trace.Note ~arg:7 "export";
  let sp = Obs.Span.start ~sid:3 in
  Obs.Span.finish sp;
  Obs.Trace.set_enabled false;
  Obs.Span.set_enabled false;
  let doc = Obs.Traceview.to_json () in
  let get k = Option.get (Obs.Json.member k doc) in
  let events =
    match get "traceEvents" with
    | Obs.Json.List l -> l
    | _ -> Alcotest.fail "traceEvents not a list"
  in
  let named name e =
    match Option.bind (Obs.Json.member "name" e) Obs.Json.to_str with
    | Some n -> n = name
    | None -> false
  in
  (* One span -> queue/apply/fence slices + the whole-request slice; the
     instant event and the thread-name metadata ride along. *)
  List.iter
    (fun n ->
      Alcotest.(check bool) ("slice " ^ n) true (List.exists (named n) events))
    [ "queue"; "apply"; "fence"; "request"; "note: export"; "thread_name" ];
  (match Obs.Json.member "spans" (get "otherData") with
  | Some (Obs.Json.Num n) -> Alcotest.(check int) "span count" 1 (int_of_float n)
  | _ -> Alcotest.fail "otherData.spans missing");
  (* The export must survive its own parser (it is written to disk for
     Perfetto, which is strict about JSON). *)
  match Obs.Json.parse (Obs.Json.to_string doc) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "export does not reparse: %s" e

(* --- JSON --------------------------------------------------------------- *)

let test_json_roundtrip () =
  let open Obs.Json in
  let v =
    Obj
      [
        ("name", Str "P-ART");
        ("escaped", Str "a\"b\\c\nd\te");
        ("ok", Bool true);
        ("missing", Null);
        ("mops", Num 1.25);
        ("count", int 42);
        ("empty_list", List []);
        ("empty_obj", Obj []);
        ("sites", List [ Obj [ ("clwb", int 7) ]; Num 3.0 ]);
      ]
  in
  match parse (to_string v) with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok v' ->
      Alcotest.(check bool) "roundtrip preserves the value" true (v = v');
      Alcotest.(check (option string))
        "member access" (Some "P-ART")
        (Option.bind (member "name" v') to_str);
      Alcotest.(check (option (float 0.0)))
        "number access" (Some 1.25)
        (Option.bind (member "mops" v') to_num)

let test_json_rejects_garbage () =
  let bad = [ "{"; "[1,"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.failf "parsed garbage %S" s
      | Error _ -> ())
    bad

(* Runtime mirror of pmlint rule R4: a tag is registered exactly once.  A
   typo'd re-registration must fail loudly instead of silently minting a
   second site (split attribution) or aliasing an unrelated one. *)
let test_site_duplicate_registration_rejected () =
  let s = Obs.Site.v ~index:"obs-test" "dup/probe" in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  (match Obs.Site.v ~index:"obs-test" "dup/probe" with
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        "error names the tag" true
        (contains ~sub:"obs-test/dup/probe" msg)
  | _ -> Alcotest.fail "duplicate Site.v registration did not raise");
  (* find_or_create is the sanctioned lookup-or-register path: same tag
     yields the same site, counters included. *)
  let s' = Obs.Site.find_or_create ~index:"obs-test" "dup/probe" in
  Alcotest.(check bool) "find_or_create aliases the registration" true (s == s');
  Alcotest.(check (option string))
    "find resolves the tag" (Some "obs-test/dup/probe")
    (Option.map Obs.Site.name (Obs.Site.find "obs-test/dup/probe"));
  let fresh = Obs.Site.find_or_create ~index:"obs-test" "dup/fresh" in
  Alcotest.(check string)
    "find_or_create registers unseen tags" "obs-test/dup/fresh"
    (Obs.Site.name fresh)

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "cross-domain merge" `Quick
            test_counter_cross_domain;
          Alcotest.test_case "find or create" `Quick test_counter_find_or_create;
          Alcotest.test_case "histogram cross-domain" `Quick
            test_hist_cross_domain;
        ] );
      ( "sites",
        [
          Alcotest.test_case "totals = Stats (single)" `Quick
            test_site_totals_single;
          Alcotest.test_case "totals = Stats (multi-domain)" `Quick
            test_site_totals_multi;
          Alcotest.test_case "duplicate registration rejected" `Quick
            test_site_duplicate_registration_rejected;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraparound" `Quick test_trace_wraparound;
          Alcotest.test_case "disabled is free" `Quick
            test_trace_disabled_records_nothing;
          Alcotest.test_case "no ring sharing across colliding domain ids"
            `Quick test_trace_domain_collision;
          Alcotest.test_case "configurable capacity + drop accounting" `Quick
            test_trace_set_capacity;
          Alcotest.test_case "trace-event export" `Quick test_traceview_export;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
    ]
