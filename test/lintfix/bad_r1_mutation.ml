(* pmlint fixture: R1 raw-mutation escapes.  Parsed by the linter, never
   compiled — the record fields and modules here don't need to exist. *)

let bump_stat t = t.count <- t.count + 1

let set_version t v = Atomic.set t.version v

let push t x = t.backlog := x :: !(t.backlog)

let scratch n =
  let buf = Array.make n 0 in
  Array.set buf 0 1;
  buf

let tick t = Atomic.incr t.clock [@pm.volatile]
