(* pmlint fixture: R2 publish hygiene.  Parsed by the linter, never
   compiled. *)

module W = Pmem.Words
module P = Recipe.Persist

let bad_publish w =
  W.set w 0 42;
  W.sanitize_publish w 0

let bad_commit w =
  W.set w 1 7;
  P.commit w 0 1

let good_publish ?site w =
  W.set w 0 42;
  W.clwb ?site w 0;
  Pmem.sfence ?site ();
  W.sanitize_publish w 0

let deferred_publish w =
  W.set w 0 42;
  W.sanitize_publish w 0 [@pm.deferred]

let persist_all ?site w =
  W.clwb_all ?site w;
  Pmem.sfence ?site ()

let good_via_helper ?site w =
  W.set w 2 9;
  persist_all ?site w;
  W.sanitize_publish w 2

let bad_one_branch ?site w cond =
  W.set w 3 1;
  if cond then W.clwb ?site w 3;
  W.sanitize_publish w 3
