(* pmlint fixture: R3 fence hygiene.  Parsed by the linter, never
   compiled. *)

module W = Pmem.Words

let double_fence ?site w =
  W.set w 0 1;
  W.clwb ?site w 0;
  Pmem.sfence ?site ();
  Pmem.sfence ?site ()

let flush_no_fence ?site w =
  W.set w 0 1;
  W.clwb ?site w 0

let flush_caller_fences ?site w =
  W.clwb_all ?site w
[@@pm.deferred]
