(* pmlint fixture: R4 site hygiene.  Parsed by the linter, never
   compiled. *)

module W = Pmem.Words

let name = "FIX"
let site = Obs.Site.v ~index:name
let s_used = site "used"
let s_orphan = site "orphan"
let s_dup_a = site ~crash:true "dup"
let s_dup_b = site "dup"
let limit = 64

let op w =
  W.clwb ~site:s_used w 0;
  W.clwb ~site:limit w 0;
  W.clwb ~site:s_dup_a w 0;
  W.clwb ~site:s_dup_b w 0

let late_reg () = Obs.Site.v ~index:name "late"
