(* pmlint fixture: idiomatic clean conversion code — the linter must
   report nothing here.  Parsed by the linter, never compiled. *)

module W = Pmem.Words
module R = Pmem.Refs
module P = Recipe.Persist

let name = "CLEAN"
let site = Obs.Site.v ~index:name
let s_alloc = site "alloc"
let s_insert = site ~crash:true "insert"

(* Flush-then-fence before publication, the long way. *)
let insert_manual w v =
  W.set w 0 v;
  W.clwb ~site:s_insert w 0;
  Pmem.sfence ~site:s_insert ();
  W.sanitize_publish ~site:s_insert w 0

(* The combinator way: P.commit is store+flush+fence+publish in one. *)
let insert_commit w k =
  P.store ~site:s_insert w 1 0;
  W.clwb ~site:s_insert w 1;
  Pmem.sfence ~site:s_insert ();
  P.commit ~site:s_insert w 0 k

(* A local flush helper with its own fence: calls are self-contained. *)
let persist_node ~site n =
  W.clwb_all ~site n;
  Pmem.sfence ~site ()

let publish_node w n =
  W.set n 0 1;
  persist_node ~site:s_alloc n;
  P.commit_ref ~site:s_alloc w 0 n

(* Volatile scratch state is fine without annotations. *)
let histogram keys =
  let counts = Array.make 8 0 in
  Array.iter (fun k -> Array.set counts (k land 7) (counts.(k land 7) + 1)) keys;
  counts
