(* The KV service layer end to end: wire-codec round trips (including
   limit cases and truncated/corrupt frames), the group-commit deferral
   substrate, the sharded server over real index partitions through the
   codec-exercising in-process transport, all-or-nothing backpressure, the
   group-persist flush saving, and the crash-mid-serving campaign (zero
   lost acknowledged writes). *)

let () = Harness.Sanitize_env.init ()

open Kvserve

let fresh_env () =
  Faultinject.disarm ();
  Pmem.Crash.disarm ();
  Pmem.Mode.set_shadow true;
  ignore (Pmem.persist_everything ());
  Util.Lock.new_epoch ()

let teardown () =
  Faultinject.disarm ();
  Pmem.Crash.disarm ();
  Recipe.Persist.set_group false;
  Pmem.Mode.set_shadow false

let with_env f = Fun.protect ~finally:teardown (fun () -> fresh_env (); f ())

(* --- wire codec ---------------------------------------------------------- *)

let arb_key =
  QCheck.Gen.(
    frequency
      [
        (8, string_size ~gen:printable (int_range 0 24));
        (1, string_size ~gen:char (int_range 0 300));
        (1, return (String.make 65535 'k'));
      ])

let arb_op =
  QCheck.Gen.(
    arb_key >>= fun k ->
    frequency
      [
        (3, return (Wire.Get k));
        (3, map (fun v -> Wire.Put (k, v land max_int)) int);
        (2, return (Wire.Delete k));
        (2, map (fun n -> Wire.Scan (k, n land 0xFFFF)) int);
        (1, return Wire.Stats);
      ])

let arb_request =
  QCheck.Gen.(
    map2
      (fun rid ops -> { Wire.rid = rid land 0xFFFFFFFF; ops })
      int
      (list_size (int_range 0 12) arb_op))

let arb_reply =
  QCheck.Gen.(
    frequency
      [
        (3, return Wire.Absent);
        (3, map (fun v -> Wire.Found (v land max_int)) int);
        (2, map (fun b -> Wire.Done b) bool);
        ( 2,
          map
            (fun items -> Wire.Scanned items)
            (list_size (int_range 0 8)
               (map2 (fun k v -> (k, v land max_int)) arb_key int))
        );
        ( 2,
          map
            (fun fields -> Wire.Stats_reply fields)
            (list_size (int_range 0 10)
               (map2 (fun k v -> (k, v land max_int)) arb_key int)) );
        (1, return Wire.Unsupported);
      ])

let arb_response =
  QCheck.Gen.(
    map2 (fun rid (status, replies) -> { Wire.rrid = rid land 0xFFFFFFFF;
                                         status; replies })
      int
      (frequency
         [
           ( 6,
             map
               (fun rs -> (Wire.Ok, rs))
               (list_size (int_range 0 12) arb_reply) );
           (1, return (Wire.Overloaded, []));
           (1, return (Wire.Bad_request, []));
           (1, return (Wire.Shutdown, []));
         ]))

let request_roundtrip =
  QCheck.Test.make ~count:300 ~name:"request round-trip"
    (QCheck.make arb_request) (fun req ->
      let s = Wire.request_string req in
      match Wire.decode_request s 0 with
      | `Ok (req', consumed) -> req' = req && consumed = String.length s
      | _ -> false)

let response_roundtrip =
  QCheck.Test.make ~count:300 ~name:"response round-trip"
    (QCheck.make arb_response) (fun resp ->
      let s = Wire.response_string resp in
      match Wire.decode_response s 0 with
      | `Ok (resp', consumed) -> resp' = resp && consumed = String.length s
      | _ -> false)

(* Every strict prefix of a valid frame must decode as [`Need_more] — the
   incremental TCP read contract. *)
let request_prefix_needs_more =
  QCheck.Test.make ~count:100 ~name:"truncated frame decodes Need_more"
    (QCheck.make arb_request) (fun req ->
      let s = Wire.request_string req in
      let ok = ref true in
      for cut = 0 to String.length s - 1 do
        match Wire.decode_request (String.sub s 0 cut) 0 with
        | `Need_more -> ()
        | _ -> ok := false
      done;
      !ok)

(* Response frames have the same incremental-read contract; this is the
   path the extended (epoch-field) stats snapshot travels. *)
let response_prefix_needs_more =
  QCheck.Test.make ~count:100 ~name:"truncated response decodes Need_more"
    (QCheck.make arb_response) (fun resp ->
      let s = Wire.response_string resp in
      let ok = ref true in
      for cut = 0 to String.length s - 1 do
        match Wire.decode_response (String.sub s 0 cut) 0 with
        | `Need_more -> ()
        | _ -> ok := false
      done;
      !ok)

(* The epoch extension adds fields to [Stats_reply], not opcodes: a snapshot
   with every new key must survive the codec bit-exactly. *)
let test_wire_epoch_stats_reply () =
  let fields =
    [
      ("persist_mode", 2);
      ("epochs", 12345);
      ("epoch.max_ops", 64);
      ("epoch.max_lines", 256);
      ("epoch.max_delay_ns", 200_000);
      ("shard.0.pending_acks", 0);
      ("shard.0.last_epoch", 41);
      ("shard.0.epoch_ops.count", 17);
      ("shard.0.epoch_wait_ns.p99", 123_456);
    ]
  in
  let resp =
    {
      Wire.rrid = 9;
      status = Wire.Ok;
      replies = [ Wire.Stats_reply fields ];
    }
  in
  match Wire.decode_response (Wire.response_string resp) 0 with
  | `Ok (resp', _) ->
      Alcotest.(check bool) "epoch stats reply round-trips" true (resp' = resp)
  | _ -> Alcotest.fail "epoch stats reply did not decode"

let test_wire_empty_batch () =
  let req = { Wire.rid = 7; ops = [] } in
  match Wire.decode_request (Wire.request_string req) 0 with
  | `Ok (req', _) -> Alcotest.(check bool) "empty batch" true (req' = req)
  | _ -> Alcotest.fail "empty batch did not round-trip"

let test_wire_max_key () =
  let k = String.init 65535 (fun i -> Char.chr (i land 0xFF)) in
  let req = { Wire.rid = 1; ops = [ Wire.Put (k, max_int) ] } in
  (match Wire.decode_request (Wire.request_string req) 0 with
  | `Ok (req', _) -> Alcotest.(check bool) "max key" true (req' = req)
  | _ -> Alcotest.fail "max-size key did not round-trip");
  (* One byte over the u16 limit must be an encoder error, not a silent
     truncation. *)
  Alcotest.check_raises "oversized key rejected"
    (Wire.Encode_error "key exceeds 65535 bytes") (fun () ->
      ignore (Wire.request_string
                { Wire.rid = 1; ops = [ Wire.Get (String.make 65536 'x') ] }))

(* A negative value would round-trip to a different positive int if the
   encoder masked silently — it must be an encode error instead. *)
let test_wire_negative_value () =
  Alcotest.check_raises "negative put value rejected"
    (Wire.Encode_error "value out of 63-bit unsigned range") (fun () ->
      ignore
        (Wire.request_string { Wire.rid = 1; ops = [ Wire.Put ("k", -1) ] }));
  Alcotest.check_raises "negative found value rejected"
    (Wire.Encode_error "value out of 63-bit unsigned range") (fun () ->
      ignore
        (Wire.response_string
           { Wire.rrid = 1; status = Wire.Ok; replies = [ Wire.Found min_int ] }));
  Alcotest.check_raises "negative stats field rejected"
    (Wire.Encode_error "value out of 63-bit unsigned range") (fun () ->
      ignore
        (Wire.response_string
           {
             Wire.rrid = 1;
             status = Wire.Ok;
             replies = [ Wire.Stats_reply [ ("ops_acked", -1) ] ];
           }))

let test_wire_malformed () =
  let s = Wire.request_string { Wire.rid = 3; ops = [ Wire.Get "abc" ] } in
  (* Corrupt the opcode byte (offset 4 length + 1 kind + 4 rid + 2 nops). *)
  let b = Bytes.of_string s in
  Bytes.set b 11 '\x09';
  (match Wire.decode_request (Bytes.to_string b) 0 with
  | `Malformed _ -> ()
  | _ -> Alcotest.fail "bad opcode not rejected");
  (* A frame whose declared length exceeds its content is truncation; a
     frame with bytes left over is malformed. *)
  (match Wire.decode_request (s ^ "\x00") 0 with
  | `Ok (_, consumed) -> Alcotest.(check int) "consumed" (String.length s) consumed
  | _ -> Alcotest.fail "valid frame with trailing bytes must decode");
  let b = Bytes.of_string s in
  (* Inflate the declared length: decoder must wait for the missing bytes. *)
  Bytes.set b 3 (Char.chr (Char.code (Bytes.get b 3) + 1));
  (match Wire.decode_request (Bytes.to_string b) 0 with
  | `Need_more -> ()
  | _ -> Alcotest.fail "inflated length must be Need_more");
  (* Deflate it: the ops can no longer fit, so the frame is malformed. *)
  let b = Bytes.of_string s in
  Bytes.set b 3 (Char.chr (Char.code (Bytes.get b 3) - 1));
  match Wire.decode_request (Bytes.to_string b) 0 with
  | `Malformed _ -> ()
  | _ -> Alcotest.fail "deflated length must be Malformed"

(* --- group-commit deferral ----------------------------------------------- *)

let test_group_deferral () =
  with_env (fun () ->
      let w = Pmem.Words.make ~name:"kv.group" 64 0 in
      ignore (Pmem.persist_everything ());
      let before = Pmem.Stats.snapshot () in
      Recipe.Persist.set_group true;
      (* Eight commits on the same cache line defer to ONE flush. *)
      for i = 0 to 7 do
        Recipe.Persist.commit w i (i + 1)
      done;
      Alcotest.(check int) "one line pending" 1 (Recipe.Persist.group_pending ());
      let mid = Pmem.Stats.snapshot () in
      Alcotest.(check int) "no flush before group_flush" 0
        (mid.Pmem.Stats.s_clwb - before.Pmem.Stats.s_clwb);
      Alcotest.(check int) "no fence before group_flush" 0
        (mid.Pmem.Stats.s_sfence - before.Pmem.Stats.s_sfence);
      let lines = Recipe.Persist.group_flush () in
      Alcotest.(check int) "one line flushed" 1 lines;
      let after = Pmem.Stats.snapshot () in
      Alcotest.(check int) "one clwb" 1
        (after.Pmem.Stats.s_clwb - mid.Pmem.Stats.s_clwb);
      Alcotest.(check int) "one sfence" 1
        (after.Pmem.Stats.s_sfence - mid.Pmem.Stats.s_sfence);
      Alcotest.(check int) "nothing dirty after group flush" 0
        (Pmem.dirty_count ());
      (* An explicit ordering flush supersedes the deferred one. *)
      Recipe.Persist.commit w 8 99;
      Alcotest.(check int) "line deferred" 1 (Recipe.Persist.group_pending ());
      Recipe.Persist.flush w 8;
      Alcotest.(check int) "explicit flush drops deferred line" 0
        (Recipe.Persist.group_pending ());
      Alcotest.(check int) "empty group_flush is free" 0
        (Recipe.Persist.group_flush ());
      Recipe.Persist.set_group false)

(* Group mode is domain-local: toggling it on one domain (another server
   starting or stopping) must not drop a worker domain's deferred commit
   lines — those lines back acknowledgements, so losing them silently
   breaks acked-implies-durable. *)
let test_group_domain_scoped () =
  with_env (fun () ->
      let w = Pmem.Words.make ~name:"kv.group.dls" 16 0 in
      ignore (Pmem.persist_everything ());
      let deferred = Atomic.make false and release = Atomic.make false in
      let worker =
        Domain.spawn (fun () ->
            Recipe.Persist.set_group true;
            Recipe.Persist.commit w 0 42;
            Atomic.set deferred true;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done;
            let pending = Recipe.Persist.group_pending () in
            let flushed = Recipe.Persist.group_flush () in
            (pending, flushed))
      in
      while not (Atomic.get deferred) do
        Domain.cpu_relax ()
      done;
      (* With a process-global flag this cleared every domain's table and the
         worker's group_flush below would have seen nothing to flush. *)
      Recipe.Persist.set_group true;
      Recipe.Persist.set_group false;
      Atomic.set release true;
      let pending, flushed = Domain.join worker in
      Alcotest.(check int) "worker's deferred line survives" 1 pending;
      Alcotest.(check int) "worker flushes its own line" 1 flushed;
      Alcotest.(check int) "nothing left dirty" 0 (Pmem.dirty_count ()))

(* --- the epoch substrate --------------------------------------------------- *)

(* Epoch numbering and cost: commits defer, one advance = one fence for the
   whole epoch, the persisted watermark trails the open epoch by exactly
   one, and an empty advance is free (no flush, no fence) but still
   renumbers — the degenerate idle case the controller relies on. *)
let test_epoch_substrate () =
  with_env (fun () ->
      let w = Pmem.Words.make ~name:"kv.epoch" 64 0 in
      ignore (Pmem.persist_everything ());
      Recipe.Persist.set_group true;
      Fun.protect
        ~finally:(fun () -> Recipe.Persist.set_group false)
        (fun () ->
          Alcotest.(check int) "epoch opens at 1" 1
            (Recipe.Persist.epoch_current ());
          Alcotest.(check int) "nothing persisted yet" 0
            (Recipe.Persist.epoch_persisted ());
          for i = 0 to 7 do
            Recipe.Persist.commit w i (i + 1)
          done;
          let before = Pmem.Stats.snapshot () in
          let e, lines = Recipe.Persist.epoch_advance () in
          let after = Pmem.Stats.snapshot () in
          Alcotest.(check int) "epoch 1 persisted" 1 e;
          Alcotest.(check int) "one line flushed" 1 lines;
          Alcotest.(check int) "one clwb for the epoch" 1
            (after.Pmem.Stats.s_clwb - before.Pmem.Stats.s_clwb);
          Alcotest.(check int) "one sfence for the epoch" 1
            (after.Pmem.Stats.s_sfence - before.Pmem.Stats.s_sfence);
          Alcotest.(check int) "next epoch open" 2
            (Recipe.Persist.epoch_current ());
          Alcotest.(check int) "persisted watermark" 1
            (Recipe.Persist.epoch_persisted ());
          Alcotest.(check int) "deferral table drained" 0
            (Recipe.Persist.group_pending ());
          let b2 = Pmem.Stats.snapshot () in
          let e2, l2 = Recipe.Persist.epoch_advance () in
          let a2 = Pmem.Stats.snapshot () in
          Alcotest.(check int) "empty epoch still renumbers" 2 e2;
          Alcotest.(check int) "empty epoch flushes nothing" 0 l2;
          Alcotest.(check int) "empty epoch costs no fence" 0
            (a2.Pmem.Stats.s_sfence - b2.Pmem.Stats.s_sfence)))

(* --- the epoch controller (pure, fake clock) ------------------------------- *)

module EC = Kvserve.Epoch_ctl

let arb_ctl_trace =
  QCheck.Gen.(
    let cfg =
      map3
        (fun ops lines delay ->
          { EC.max_ops = ops; max_lines = lines; max_delay_ns = delay })
        (int_range 1 48) (int_range 1 48) (int_range 1 2_000)
    in
    let step =
      map3
        (fun dt n (q, l) -> (dt, n, q, l))
        (int_range 0 500) (int_range 1 8)
        (pair (int_range 0 4) (int_range 0 64))
    in
    pair cfg (list_size (int_range 1 60) step))

(* Drive a random trace through the controller under a fake clock and check
   the closure contract at every decision point.  The three advertised
   properties are the contrapositive of the "keep the epoch open" case:
   whenever [decide] says *stay open*, the epoch must be under the size cap,
   under the line cap, inside the deadline, and the queue non-empty — so a
   full epoch always closes, a deadline never overshoots by a full decision
   round, and an empty queue drains immediately. *)
let epoch_ctl_props =
  QCheck.Test.make ~count:500 ~name:"epoch controller closure contract"
    (QCheck.make arb_ctl_trace) (fun (cfg, trace) ->
      let st = EC.create cfg in
      let now = ref 0 in
      let ok = ref true in
      let opened_at = ref 0 in
      (* An empty epoch never fires: an advance would fence for nobody. *)
      if EC.decide st ~now:!now ~pending_lines:64 ~queue_depth:0 then
        ok := false;
      List.iter
        (fun (dt, n, queue_depth, pending_lines) ->
          now := !now + dt;
          if EC.open_ops st = 0 then opened_at := !now;
          EC.note st ~now:!now n;
          let fired = EC.decide st ~now:!now ~pending_lines ~queue_depth in
          if fired then EC.advanced st
          else begin
            (* Stay-open is only legal strictly inside every bound. *)
            if EC.open_ops st >= cfg.EC.max_ops then ok := false;
            if pending_lines >= cfg.EC.max_lines then ok := false;
            if !now - !opened_at >= cfg.EC.max_delay_ns then ok := false;
            if queue_depth = 0 then ok := false
          end;
          if fired && EC.open_ops st <> 0 then ok := false)
        trace;
      !ok)

(* The configuration gate: a controller with a zero or negative bound would
   either never close (unbounded ack debt) or spin — reject at start. *)
let test_epoch_ctl_validate () =
  let bad cfg =
    match EC.create cfg with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "invalid epoch cfg accepted"
  in
  bad { EC.default_cfg with EC.max_ops = 0 };
  bad { EC.default_cfg with EC.max_lines = -1 };
  bad { EC.default_cfg with EC.max_delay_ns = 0 };
  match Server.start
          { Server.shards = 1; batch = 4; queue_cap = 16;
            mode = Server.Epoch { EC.default_cfg with EC.max_ops = 0 } }
          [||]
  with
  | exception Invalid_argument _ -> ()
  | srv ->
      Server.stop srv;
      Alcotest.fail "server accepted an invalid epoch config"

(* --- in-process server through the framed transport ----------------------- *)

let ik = Util.Keys.encode_int

(* Submit one request through a framed connection so every smoke operation
   also exercises encode -> decode -> serve -> encode -> decode. *)
let via_conn conn req =
  let out = Server.Conn.feed conn (Wire.request_string req) in
  match Wire.decode_response out 0 with
  | `Ok (resp, consumed) when consumed = String.length out -> resp
  | _ -> Alcotest.fail "connection did not return exactly one response"

let test_server_smoke () =
  with_env (fun () ->
      let cfg =
        { Server.shards = 2; batch = 8; queue_cap = 64; mode = Server.Group }
      in
      let srv = Server.start cfg (Array.init 2 (fun _ -> Harness.Kvparts.art ())) in
      let conn = Server.Conn.create srv in
      (* Batched puts, one request. *)
      let put_ops = List.init 100 (fun i -> Wire.Put (ik (i + 1), (i + 1) * 3)) in
      let resp = via_conn conn { Wire.rid = 1; ops = put_ops } in
      Alcotest.(check bool) "puts acked" true (resp.Wire.status = Wire.Ok);
      List.iter
        (function
          | Wire.Done true -> ()
          | _ -> Alcotest.fail "put not applied")
        resp.Wire.replies;
      (* After the ack, everything is flushed: the group fence ran. *)
      Alcotest.(check int) "no dirty lines after acked batch" 0
        (Pmem.dirty_count ());
      (* Point lookups route to the right shard. *)
      let resp =
        via_conn conn
          { Wire.rid = 2; ops = List.init 100 (fun i -> Wire.Get (ik (i + 1))) }
      in
      List.iteri
        (fun i r ->
          match r with
          | Wire.Found v when v = (i + 1) * 3 -> ()
          | _ -> Alcotest.fail (Printf.sprintf "get %d wrong" (i + 1)))
        resp.Wire.replies;
      (* Upsert: same key, new value. *)
      let resp =
        via_conn conn { Wire.rid = 3; ops = [ Wire.Put (ik 1, 777) ] }
      in
      Alcotest.(check bool) "upsert acked" true
        (resp.Wire.replies = [ Wire.Done true ]);
      let resp = via_conn conn { Wire.rid = 4; ops = [ Wire.Get (ik 1) ] } in
      Alcotest.(check bool) "upsert visible" true
        (resp.Wire.replies = [ Wire.Found 777 ]);
      (* Scan fans out to both shards and merges in global key order. *)
      let resp =
        via_conn conn { Wire.rid = 5; ops = [ Wire.Scan (ik 0, 50) ] }
      in
      (match resp.Wire.replies with
      | [ Wire.Scanned items ] ->
          Alcotest.(check int) "scan length" 50 (List.length items);
          List.iteri
            (fun i (kk, v) ->
              if kk <> ik (i + 1) then Alcotest.fail "scan key order";
              let expect = if i = 0 then 777 else (i + 1) * 3 in
              if v <> expect then Alcotest.fail "scan value")
            items
      | _ -> Alcotest.fail "scan reply shape");
      (* Delete, then absent. *)
      let resp =
        via_conn conn
          { Wire.rid = 6; ops = [ Wire.Delete (ik 2); Wire.Get (ik 2) ] }
      in
      Alcotest.(check bool) "delete then absent" true
        (match resp.Wire.replies with
        | [ Wire.Done true; _ ] -> true
        | _ -> false);
      let resp = via_conn conn { Wire.rid = 7; ops = [ Wire.Get (ik 2) ] } in
      Alcotest.(check bool) "deleted key absent" true
        (resp.Wire.replies = [ Wire.Absent ]);
      (* Malformed bytes poison the connection with one Bad_request. *)
      let out = Server.Conn.feed conn "\x00\x00\x00\x01\xFF" in
      (match Wire.decode_response out 0 with
      | `Ok (r, _) ->
          Alcotest.(check bool) "bad request" true
            (r.Wire.status = Wire.Bad_request)
      | _ -> Alcotest.fail "no Bad_request response");
      Alcotest.(check bool) "connection poisoned" true (Server.Conn.broken conn);
      Server.stop srv)

(* Byte-at-a-time delivery: the connection must buffer silently until the
   frame completes (the O(1) length-prefix peek path), then answer, and
   interleaved frames in one feed must each get a response. *)
let test_conn_trickle () =
  with_env (fun () ->
      let cfg =
        { Server.shards = 1; batch = 4; queue_cap = 16; mode = Server.Group }
      in
      let srv = Server.start cfg [| Harness.Kvparts.art () |] in
      let conn = Server.Conn.create srv in
      let req = Wire.request_string { Wire.rid = 9; ops = [ Wire.Put (ik 1, 5) ] } in
      String.iteri
        (fun i ch ->
          let out = Server.Conn.feed conn (String.make 1 ch) in
          if i < String.length req - 1 then
            Alcotest.(check string)
              (Printf.sprintf "silent at byte %d" i)
              "" out
          else
            match Wire.decode_response out 0 with
            | `Ok (resp, _) ->
                Alcotest.(check bool) "trickled put acked" true
                  (resp.Wire.status = Wire.Ok)
            | _ -> Alcotest.fail "no response after final byte")
        req;
      (* Two frames in one feed: two responses in order. *)
      let two =
        Wire.request_string { Wire.rid = 10; ops = [ Wire.Get (ik 1) ] }
        ^ Wire.request_string { Wire.rid = 11; ops = [ Wire.Get (ik 2) ] }
      in
      let out = Server.Conn.feed conn two in
      (match Wire.decode_response out 0 with
      | `Ok (r1, pos) -> (
          Alcotest.(check bool) "first response" true
            (r1.Wire.rrid = 10 && r1.Wire.replies = [ Wire.Found 5 ]);
          match Wire.decode_response out pos with
          | `Ok (r2, pos') ->
              Alcotest.(check bool) "second response" true
                (r2.Wire.rrid = 11 && r2.Wire.replies = [ Wire.Absent ]);
              Alcotest.(check int) "nothing extra" (String.length out) pos'
          | _ -> Alcotest.fail "second response missing")
      | _ -> Alcotest.fail "first response missing");
      Server.stop srv)

(* Unordered partitions: scans answer [Unsupported], point ops work. *)
let test_server_hash_partition () =
  with_env (fun () ->
      let cfg =
        { Server.shards = 2; batch = 4; queue_cap = 64; mode = Server.Group }
      in
      let srv =
        Server.start cfg (Array.init 2 (fun _ -> Harness.Kvparts.clht ()))
      in
      let resp =
        Server.submit srv
          {
            Wire.rid = 1;
            ops = [ Wire.Put (ik 5, 15); Wire.Scan (ik 0, 10); Wire.Get (ik 5) ];
          }
      in
      Alcotest.(check bool) "hash partition serves" true
        (resp.Wire.replies = [ Wire.Done true; Wire.Unsupported; Wire.Found 15 ]);
      Server.stop srv)

(* --- the stats endpoint ---------------------------------------------------- *)

let stats_fields conn rid =
  match via_conn conn { Wire.rid; ops = [ Wire.Stats ] } with
  | { Wire.status = Wire.Ok; replies = [ Wire.Stats_reply fields ]; _ } ->
      fields
  | _ -> Alcotest.fail "stats request did not return a snapshot"

let field fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> Alcotest.failf "stats field %S missing" k

(* Live snapshot through the framed transport, with spans enabled: config
   echoed, acked ops counted, queues drained after the blocking submits,
   and the per-shard phase histograms populated and internally ordered. *)
let test_stats_endpoint () =
  with_env (fun () ->
      Obs.reset_all ();
      Obs.Span.set_enabled true;
      Fun.protect
        ~finally:(fun () -> Obs.Span.set_enabled false)
        (fun () ->
          let cfg =
            { Server.shards = 2; batch = 8; queue_cap = 64; mode = Server.Group }
          in
          let srv =
            Server.start cfg (Array.init 2 (fun _ -> Harness.Kvparts.art ()))
          in
          let conn = Server.Conn.create srv in
          let nput = 60 in
          let resp =
            via_conn conn
              {
                Wire.rid = 1;
                ops = List.init nput (fun i -> Wire.Put (ik (i + 1), i));
              }
          in
          Alcotest.(check bool) "puts acked" true (resp.Wire.status = Wire.Ok);
          (* Stats mixed into a data request answers in slot order without
             consuming serving capacity. *)
          let resp =
            via_conn conn
              { Wire.rid = 2; ops = [ Wire.Get (ik 1); Wire.Stats ] }
          in
          let fields =
            match resp.Wire.replies with
            | [ Wire.Found _; Wire.Stats_reply fields ] -> fields
            | _ -> Alcotest.fail "mixed request reply shape"
          in
          let f = field fields in
          Alcotest.(check int) "shards echoed" cfg.Server.shards (f "shards");
          Alcotest.(check int) "batch echoed" cfg.Server.batch (f "batch");
          Alcotest.(check int) "group persist echoed" 1 (f "group_persist");
          Alcotest.(check int) "healthy" 0 (f "crashed");
          Alcotest.(check int) "spans flagged on" 1 (f "spans_enabled");
          Alcotest.(check bool) "acked ops counted" true (f "ops_acked" >= nput);
          Alcotest.(check bool) "batches counted" true (f "batches" >= 1);
          for sid = 0 to cfg.Server.shards - 1 do
            let sf k = f (Printf.sprintf "shard.%d.%s" sid k) in
            Alcotest.(check int)
              (Printf.sprintf "shard %d drained" sid)
              0 (sf "queue_depth");
            (* Every routed op passes all four phases, so the per-shard phase
               histograms agree on the sample count. *)
            let acks = sf "ack_ns.count" in
            List.iter
              (fun phase ->
                Alcotest.(check int)
                  (Printf.sprintf "shard %d %s samples" sid phase)
                  acks
                  (sf (phase ^ "_ns.count"));
                if acks > 0 then
                  Alcotest.(check bool)
                    (Printf.sprintf "shard %d %s p50<=p99" sid phase)
                    true
                    (sf (phase ^ "_ns.p50") <= sf (phase ^ "_ns.p99")))
              [ "queue"; "apply"; "fence"; "ack" ]
          done;
          Alcotest.(check bool) "every put spanned" true
            (f "shard.0.ack_ns.count" + f "shard.1.ack_ns.count" >= nput);
          (* A stats-only poll must not skew the serving ack histogram: two
             consecutive polls see the same sample count. *)
          let acks_before = field (stats_fields conn 3) "ack_ns.count" in
          let acks_after = field (stats_fields conn 4) "ack_ns.count" in
          Alcotest.(check int) "stats poll not measured as serving" acks_before
            acks_after;
          Server.stop srv))

(* The serving counters are process-global named metrics: a server restarted
   on recovered partitions re-attaches to them, so the snapshot's ops_acked
   stays a floor of everything any generation acknowledged — the campaign's
   no-undercount check, exercised here deterministically across a stop,
   power failure, recovery and restart. *)
let test_stats_across_recovery () =
  with_env (fun () ->
      Obs.reset_all ();
      let cfg =
        { Server.shards = 2; batch = 8; queue_cap = 64; mode = Server.Group }
      in
      let parts = Array.init 2 (fun _ -> Harness.Kvparts.art ()) in
      let srv = Server.start cfg parts in
      let conn = Server.Conn.create srv in
      let n1 = 40 in
      let resp =
        via_conn conn
          { Wire.rid = 1; ops = List.init n1 (fun i -> Wire.Put (ik (i + 1), i)) }
      in
      Alcotest.(check bool) "gen-1 puts acked" true (resp.Wire.status = Wire.Ok);
      let a1 = field (stats_fields conn 2) "ops_acked" in
      Alcotest.(check bool) "gen-1 count" true (a1 >= n1);
      Server.stop srv;
      Pmem.simulate_power_failure ();
      Array.iter (fun (p : Server.partition) -> p.Server.p_recover ()) parts;
      let srv2 = Server.start cfg parts in
      let conn2 = Server.Conn.create srv2 in
      let n2 = 25 in
      let resp =
        via_conn conn2
          {
            Wire.rid = 3;
            ops = List.init n2 (fun i -> Wire.Put (ik (1000 + i), i));
          }
      in
      Alcotest.(check bool) "gen-2 puts acked" true (resp.Wire.status = Wire.Ok);
      let fields = stats_fields conn2 4 in
      Alcotest.(check bool) "counter re-attached, no undercount" true
        (field fields "ops_acked" >= a1 + n2);
      Alcotest.(check int) "recovered server healthy" 0 (field fields "crashed");
      (* And the recovered data still serves: an acked gen-1 binding. *)
      let resp = via_conn conn2 { Wire.rid = 5; ops = [ Wire.Get (ik 1) ] } in
      Alcotest.(check bool) "acked binding survived recovery" true
        (resp.Wire.replies = [ Wire.Found 0 ]);
      Server.stop srv2)

(* Off-path discipline, mirroring the PSan guard: with spans disabled
   (the default), served traffic must leave zero span state behind — no
   finished spans, nothing in the rings, empty phase histograms.  This is
   what keeps the always-on serving path at one ref read per request. *)
let test_spans_off_zero_overhead () =
  with_env (fun () ->
      Obs.reset_all ();
      Alcotest.(check bool) "spans off by default" false (Obs.Span.enabled ());
      let cfg =
        { Server.shards = 2; batch = 8; queue_cap = 64; mode = Server.Group }
      in
      let srv = Server.start cfg (Array.init 2 (fun _ -> Harness.Kvparts.art ())) in
      let conn = Server.Conn.create srv in
      let resp =
        via_conn conn
          { Wire.rid = 1; ops = List.init 50 (fun i -> Wire.Put (ik i, i)) }
      in
      Alcotest.(check bool) "traffic served" true (resp.Wire.status = Wire.Ok);
      let fields = stats_fields conn 2 in
      Server.stop srv;
      Alcotest.(check int) "no span ever finished" 0 (Obs.Span.count ());
      Alcotest.(check int) "span rings untouched" 0
        (List.length (Obs.Span.dump ()));
      Alcotest.(check int) "snapshot reports spans off" 0
        (field fields "spans_enabled");
      List.iter
        (fun phase ->
          Alcotest.(check int)
            (phase ^ " histogram empty")
            0
            (field fields (Printf.sprintf "shard.0.%s_ns.count" phase)))
        [ "queue"; "apply"; "fence" ])

(* --- backpressure: all-or-nothing, exactly-once --------------------------- *)

let test_backpressure () =
  with_env (fun () ->
      (* A deliberately slow pure-OCaml partition that counts every apply:
         no op may be lost or double-applied, acked or not. *)
      let applied : (string, int) Hashtbl.t = Hashtbl.create 64 in
      let amu = Mutex.create () in
      let slow_part =
        {
          Server.p_name = "slow";
          p_insert =
            (fun k _ ->
              Unix.sleepf 0.002;
              Mutex.lock amu;
              Hashtbl.replace applied k
                (1 + Option.value ~default:0 (Hashtbl.find_opt applied k));
              Mutex.unlock amu;
              true);
          p_lookup = (fun _ -> None);
          p_delete = (fun _ -> false);
          p_scan = None;
          p_recover = ignore;
          p_sweep = None;
        }
      in
      let cfg =
        { Server.shards = 1; batch = 2; queue_cap = 4; mode = Server.Per_op }
      in
      let srv = Server.start cfg [| slow_part |] in
      let nclients = 4 and per_client = 12 in
      let client cid () =
        let acked = ref [] and overloaded = ref 0 in
        for r = 0 to per_client - 1 do
          let keys = List.init 3 (fun j -> ik ((cid * 1000) + (r * 10) + j)) in
          let req =
            { Wire.rid = r; ops = List.map (fun kk -> Wire.Put (kk, 1)) keys }
          in
          let resp = Server.submit srv req in
          match resp.Wire.status with
          | Wire.Ok -> acked := keys @ !acked
          | Wire.Overloaded -> incr overloaded
          | _ -> ()
        done;
        (!acked, !overloaded)
      in
      let outs =
        List.init nclients (fun cid -> Domain.spawn (client cid))
        |> List.map Domain.join
      in
      Server.stop srv;
      let acked = List.concat_map fst outs in
      let overloaded = List.fold_left (fun a (_, o) -> a + o) 0 outs in
      Alcotest.(check bool)
        (Printf.sprintf "backpressure observed (%d rejections)" overloaded)
        true (overloaded > 0);
      (* Exactly-once: every acked key applied exactly once... *)
      List.iter
        (fun kk ->
          match Hashtbl.find_opt applied kk with
          | Some 1 -> ()
          | Some n ->
              Alcotest.fail (Printf.sprintf "acked key applied %d times" n)
          | None -> Alcotest.fail "acked key never applied")
        acked;
      (* ...and nothing was applied more than once, acked or not (a rejected
         request must have enqueued nothing, but a drained in-flight op may
         have been applied without an ack — never twice). *)
      Hashtbl.iter
        (fun _ n ->
          if n <> 1 then
            Alcotest.fail (Printf.sprintf "key applied %d times" n))
        applied)

(* --- epoch-mode serving ---------------------------------------------------- *)

(* The buffered-durability serving path end to end: epoch mode acks only at
   epoch boundaries, leaves nothing parked once every submit has returned,
   nothing dirty once acked, and the snapshot tells the whole epoch story
   (mode tag, cfg echo, advances, per-shard watermarks). *)
let test_server_epoch_mode () =
  with_env (fun () ->
      Obs.reset_all ();
      let ecfg = { EC.max_ops = 8; max_lines = 64; max_delay_ns = 50_000 } in
      let cfg =
        { Server.shards = 2; batch = 8; queue_cap = 64;
          mode = Server.Epoch ecfg }
      in
      let srv =
        Server.start cfg (Array.init 2 (fun _ -> Harness.Kvparts.art ()))
      in
      let conn = Server.Conn.create srv in
      let nput = 120 in
      let resp =
        via_conn conn
          {
            Wire.rid = 1;
            ops = List.init nput (fun i -> Wire.Put (ik (i + 1), i * 7));
          }
      in
      Alcotest.(check bool) "puts acked" true (resp.Wire.status = Wire.Ok);
      (* Acked implies the epoch fence ran: no line backing an ack is dirty. *)
      Alcotest.(check int) "nothing dirty after acked epoch" 0
        (Pmem.dirty_count ());
      let resp =
        via_conn conn
          { Wire.rid = 2; ops = List.init nput (fun i -> Wire.Get (ik (i + 1))) }
      in
      List.iteri
        (fun i r ->
          match r with
          | Wire.Found v when v = i * 7 -> ()
          | _ -> Alcotest.fail (Printf.sprintf "get %d wrong" (i + 1)))
        resp.Wire.replies;
      let f = field (stats_fields conn 3) in
      Alcotest.(check int) "epoch mode tagged" 2 (f "persist_mode");
      Alcotest.(check int) "group persist not claimed" 0 (f "group_persist");
      Alcotest.(check int) "max_ops echoed" ecfg.EC.max_ops (f "epoch.max_ops");
      Alcotest.(check int) "max_lines echoed" ecfg.EC.max_lines
        (f "epoch.max_lines");
      Alcotest.(check int) "max_delay echoed" ecfg.EC.max_delay_ns
        (f "epoch.max_delay_ns");
      Alcotest.(check bool) "epochs advanced" true (f "epochs" >= 1);
      for sid = 0 to cfg.Server.shards - 1 do
        let sf k = f (Printf.sprintf "shard.%d.%s" sid k) in
        Alcotest.(check int)
          (Printf.sprintf "shard %d nothing parked" sid)
          0 (sf "pending_acks");
        Alcotest.(check bool)
          (Printf.sprintf "shard %d epoch watermark moved" sid)
          true
          (sf "last_epoch" >= 1)
      done;
      Server.stop srv)

(* Acked epoch-mode bindings survive stop -> power failure -> recovery:
   the buffered-durability contract at the coarsest grain. *)
let test_epoch_acked_survive_power_failure () =
  with_env (fun () ->
      let cfg =
        {
          Server.shards = 2;
          batch = 8;
          queue_cap = 64;
          mode = Server.Epoch { EC.max_ops = 8; max_lines = 64;
                                max_delay_ns = 50_000 };
        }
      in
      let parts = Array.init 2 (fun _ -> Harness.Kvparts.art ()) in
      let srv = Server.start cfg parts in
      let conn = Server.Conn.create srv in
      let nput = 80 in
      let resp =
        via_conn conn
          {
            Wire.rid = 1;
            ops = List.init nput (fun i -> Wire.Put (ik (i + 1), i + 100));
          }
      in
      Alcotest.(check bool) "puts acked" true (resp.Wire.status = Wire.Ok);
      Server.stop srv;
      Pmem.simulate_power_failure ();
      Array.iter (fun (p : Server.partition) -> p.Server.p_recover ()) parts;
      let srv2 = Server.start cfg parts in
      let conn2 = Server.Conn.create srv2 in
      let resp =
        via_conn conn2
          { Wire.rid = 2; ops = List.init nput (fun i -> Wire.Get (ik (i + 1))) }
      in
      List.iteri
        (fun i r ->
          match r with
          | Wire.Found v when v = i + 100 -> ()
          | _ ->
              Alcotest.fail
                (Printf.sprintf "acked key %d lost across power failure" (i + 1)))
        resp.Wire.replies;
      Server.stop srv2)

(* --- the batching win ----------------------------------------------------- *)

(* Write-heavy overwrite traffic over a small key space: group persist must
   spend strictly fewer flushes and fences than per-op persist for the
   same operation stream — and epoch mode must never be worse than group. *)
let flushes_for ~mode () =
  fresh_env ();
  let cfg = { Server.shards = 2; batch = 32; queue_cap = 256; mode } in
  let srv = Server.start cfg (Array.init 2 (fun _ -> Harness.Kvparts.art ())) in
  let lg =
    {
      Loadgen.default_cfg with
      workers = 2;
      requests = 50;
      ops_per_request = 16;
      write_pct = 100;
      mode = Loadgen.Overwrite 64;
      seed = 7;
    }
  in
  let before = Pmem.Stats.snapshot () in
  let out = Loadgen.run srv lg in
  let after = Pmem.Stats.snapshot () in
  Server.stop srv;
  Alcotest.(check int) "all ops acked" (2 * 50 * 16) out.Loadgen.ops_acked;
  ( after.Pmem.Stats.s_clwb - before.Pmem.Stats.s_clwb,
    after.Pmem.Stats.s_sfence - before.Pmem.Stats.s_sfence )

let test_group_persist_saves_flushes () =
  with_env (fun () ->
      let clwb_on, sfence_on = flushes_for ~mode:Server.Group () in
      let clwb_off, sfence_off = flushes_for ~mode:Server.Per_op () in
      if not (clwb_on < clwb_off) then
        Alcotest.fail
          (Printf.sprintf "flushes not reduced: %d (group) vs %d (per-op)"
             clwb_on clwb_off);
      if not (sfence_on < sfence_off / 4) then
        Alcotest.fail
          (Printf.sprintf "fences not amortized: %d (group) vs %d (per-op)"
             sfence_on sfence_off))

(* The tentpole's "never a loss" cost side: epoch persistence must spend no
   more flushes than per-op and no more fences than group — the epoch fence
   covers at least one whole batch, usually several. *)
let test_epoch_persist_saves_fences () =
  with_env (fun () ->
      let clwb_e, sfence_e =
        flushes_for ~mode:(Server.Epoch EC.default_cfg) ()
      in
      let clwb_g, sfence_g = flushes_for ~mode:Server.Group () in
      let clwb_p, sfence_p = flushes_for ~mode:Server.Per_op () in
      if not (clwb_e <= clwb_p) then
        Alcotest.fail
          (Printf.sprintf "epoch flushed more than per-op: %d vs %d" clwb_e
             clwb_p);
      if not (sfence_e <= sfence_g) then
        Alcotest.fail
          (Printf.sprintf "epoch fenced more than group: %d vs %d" sfence_e
             sfence_g);
      if not (sfence_e < sfence_p / 4) then
        Alcotest.fail
          (Printf.sprintf "epoch fences not amortized: %d vs %d (per-op)"
             sfence_e sfence_p);
      ignore clwb_g)

(* --- crash mid-serving ----------------------------------------------------- *)

let servecrash_cfg =
  { Server.shards = 2; batch = 8; queue_cap = 64; mode = Server.Group }

let run_campaign make =
  Servecrash.campaign ~make ~cfg:servecrash_cfg ~states:3 ~load:60 ~ops:160
    ~workers:2 ~seed:11 ()

let check_campaign name r =
  let b = r.Crashtest.base in
  Alcotest.(check int) (name ^ ": lost acked") 0 b.Crashtest.lost_keys;
  Alcotest.(check int) (name ^ ": wrong values") 0 b.Crashtest.wrong_values;
  Alcotest.(check int) (name ^ ": stalled") 0 b.Crashtest.stalled;
  Alcotest.(check bool) (name ^ ": recovered every state") true
    (r.Crashtest.recoveries >= servecrash_cfg.Server.shards)

(* A worker that crashes mid-batch must fail-drain ops that were enqueued to
   its shard between the batch pop and the kill — before the fix, [late]'s
   submit below blocked forever (no other worker drains a foreign ring). *)
let test_crash_drains_queue () =
  with_env (fun () ->
      let boom = "boom" in
      let part =
        {
          Server.p_name = "crashy";
          p_insert =
            (fun k _ ->
              if k = boom then begin
                Unix.sleepf 0.05;
                raise Pmem.Crash.Simulated_crash
              end
              else true);
          p_lookup = (fun _ -> None);
          p_delete = (fun _ -> false);
          p_scan = None;
          p_recover = ignore;
          p_sweep = None;
        }
      in
      let cfg =
        { Server.shards = 1; batch = 1; queue_cap = 8; mode = Server.Per_op }
      in
      let srv = Server.start cfg [| part |] in
      let crasher =
        Domain.spawn (fun () ->
            Server.submit srv { Wire.rid = 1; ops = [ Wire.Put (boom, 1) ] })
      in
      Unix.sleepf 0.01;
      (* Lands in the ring while the worker is mid-crash (or is rejected with
         [Shutdown] if the kill already landed) — either way it must resolve. *)
      let late =
        Server.submit srv { Wire.rid = 2; ops = [ Wire.Put ("late", 1) ] }
      in
      let boom_resp = Domain.join crasher in
      Alcotest.(check bool) "crashing op not acked" true
        (boom_resp.Wire.status = Wire.Shutdown);
      Alcotest.(check bool) "queued op failed, not hung" true
        (late.Wire.status = Wire.Shutdown);
      Alcotest.(check bool) "server declared crashed" true (Server.crashed srv);
      Server.stop srv)

let test_crash_mid_serving_ordered () =
  with_env (fun () ->
      let r = run_campaign (fun _ -> Harness.Kvparts.art ()) in
      check_campaign "art" r)

let test_crash_mid_serving_hash () =
  with_env (fun () ->
      let r = run_campaign (fun _ -> Harness.Kvparts.clht ()) in
      check_campaign "clht" r)

(* --- crash mid-serving, epoch mode ----------------------------------------- *)

(* The tentpole's durability gate.  [`Mid_epoch] aims the crash at a random
   persistent store — inside the fence-free apply window, with
   applied-but-unacked ops parked in the open epoch; [`Boundary] aims it at
   a random flush or fence — the epoch advance itself.  Either way the
   campaign must report zero lost acknowledged operations: a mid-epoch
   fault may shed the open epoch's unacked suffix, never an acked op. *)
let epoch_crash_cfg =
  {
    Server.shards = 2;
    batch = 8;
    queue_cap = 64;
    mode =
      Server.Epoch { EC.max_ops = 16; max_lines = 128; max_delay_ns = 100_000 };
  }

let run_epoch_campaign ~plan make =
  Servecrash.campaign ~make ~cfg:epoch_crash_cfg ~plan ~states:3 ~load:60
    ~ops:160 ~workers:2 ~seed:13 ()

let check_epoch_campaign name r =
  let b = r.Crashtest.base in
  Alcotest.(check int) (name ^ ": lost acked") 0 b.Crashtest.lost_keys;
  Alcotest.(check int) (name ^ ": wrong values") 0 b.Crashtest.wrong_values;
  Alcotest.(check int) (name ^ ": stalled") 0 b.Crashtest.stalled;
  Alcotest.(check bool) (name ^ ": recovered every state") true
    (r.Crashtest.recoveries >= epoch_crash_cfg.Server.shards)

let test_epoch_crash_mid_epoch_art () =
  with_env (fun () ->
      check_epoch_campaign "art mid-epoch"
        (run_epoch_campaign ~plan:`Mid_epoch (fun _ -> Harness.Kvparts.art ())))

let test_epoch_crash_boundary_art () =
  with_env (fun () ->
      check_epoch_campaign "art boundary"
        (run_epoch_campaign ~plan:`Boundary (fun _ -> Harness.Kvparts.art ())))

let test_epoch_crash_mid_epoch_clht () =
  with_env (fun () ->
      check_epoch_campaign "clht mid-epoch"
        (run_epoch_campaign ~plan:`Mid_epoch (fun _ -> Harness.Kvparts.clht ())))

let test_epoch_crash_boundary_clht () =
  with_env (fun () ->
      check_epoch_campaign "clht boundary"
        (run_epoch_campaign ~plan:`Boundary (fun _ -> Harness.Kvparts.clht ())))

(* Mutation adequacy: delete the epoch fence (advance drops the open
   epoch's deferred lines without flushing, still reports it persisted) and
   the campaign MUST see lost acknowledged operations — otherwise the
   zero-loss verdict above is vacuous. *)
let test_epoch_mutation_caught () =
  with_env (fun () ->
      Recipe.Persist.mutate_drop_epoch_flush := true;
      let r =
        Fun.protect
          ~finally:(fun () -> Recipe.Persist.mutate_drop_epoch_flush := false)
          (fun () ->
            Servecrash.campaign
              ~make:(fun _ -> Harness.Kvparts.art ())
              ~cfg:epoch_crash_cfg ~plan:`Mid_epoch ~states:2 ~load:60 ~ops:120
              ~workers:2 ~seed:17 ())
      in
      Alcotest.(check bool) "dropped epoch fence detected as loss" true
        (r.Crashtest.base.Crashtest.lost_keys > 0))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "kvserve"
    [
      ( "wire",
        q
          [
            request_roundtrip;
            response_roundtrip;
            request_prefix_needs_more;
            response_prefix_needs_more;
          ]
        @ [
            Alcotest.test_case "empty batch" `Quick test_wire_empty_batch;
            Alcotest.test_case "max-size key" `Quick test_wire_max_key;
            Alcotest.test_case "negative value" `Quick test_wire_negative_value;
            Alcotest.test_case "malformed frames" `Quick test_wire_malformed;
            Alcotest.test_case "epoch stats reply" `Quick
              test_wire_epoch_stats_reply;
          ] );
      ( "group-persist",
        [
          Alcotest.test_case "commit deferral" `Quick test_group_deferral;
          Alcotest.test_case "domain-scoped deferral" `Quick
            test_group_domain_scoped;
          Alcotest.test_case "flush saving vs per-op" `Quick
            test_group_persist_saves_flushes;
        ] );
      ( "epoch",
        q [ epoch_ctl_props ]
        @ [
            Alcotest.test_case "substrate numbering and cost" `Quick
              test_epoch_substrate;
            Alcotest.test_case "controller config gate" `Quick
              test_epoch_ctl_validate;
            Alcotest.test_case "epoch-mode serving over ART" `Quick
              test_server_epoch_mode;
            Alcotest.test_case "acked ops survive power failure" `Quick
              test_epoch_acked_survive_power_failure;
            Alcotest.test_case "fence saving vs group and per-op" `Quick
              test_epoch_persist_saves_fences;
          ] );
      ( "server",
        [
          Alcotest.test_case "2-shard smoke over ART" `Quick test_server_smoke;
          Alcotest.test_case "trickled frames" `Quick test_conn_trickle;
          Alcotest.test_case "hash partitions" `Quick test_server_hash_partition;
          Alcotest.test_case "backpressure exactly-once" `Quick
            test_backpressure;
        ] );
      ( "stats",
        [
          Alcotest.test_case "live endpoint with spans" `Quick
            test_stats_endpoint;
          Alcotest.test_case "consistent across recovery" `Quick
            test_stats_across_recovery;
          Alcotest.test_case "zero overhead when off" `Quick
            test_spans_off_zero_overhead;
        ] );
      ( "crash",
        [
          Alcotest.test_case "crashed shard drains its queue" `Quick
            test_crash_drains_queue;
          Alcotest.test_case "mid-serving, ordered" `Quick
            test_crash_mid_serving_ordered;
          Alcotest.test_case "mid-serving, hash" `Quick
            test_crash_mid_serving_hash;
          Alcotest.test_case "epoch mid-epoch, ordered" `Quick
            test_epoch_crash_mid_epoch_art;
          Alcotest.test_case "epoch boundary, ordered" `Quick
            test_epoch_crash_boundary_art;
          Alcotest.test_case "epoch mid-epoch, hash" `Quick
            test_epoch_crash_mid_epoch_clht;
          Alcotest.test_case "epoch boundary, hash" `Quick
            test_epoch_crash_boundary_clht;
          Alcotest.test_case "dropped epoch fence is caught" `Quick
            test_epoch_mutation_caught;
        ] );
    ]
