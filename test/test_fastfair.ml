(* Tests for the FAST & FAIR baseline: sequential semantics vs a model,
   splits, string-key mode, concurrency, crash consistency, and reproduction
   of the paper's §3 bugs under the bug flags. *)

(* Under RECIPE_SANITIZE (the @sanitize alias) the whole suite runs with
   the psan sanitizer enabled and must produce zero diagnostics. *)
let () = Harness.Sanitize_env.init ()


let reset () =
  Pmem.Mode.set_shadow false;
  Pmem.Llc.set_enabled false;
  Pmem.Crash.disarm ();
  ignore (Pmem.persist_everything ());
  Pmem.Stats.reset ();
  Util.Lock.new_epoch ()

let ff ?bug_highkey ?bug_split_order ?bug_root_flush () =
  Fastfair.create ?bug_highkey ?bug_split_order ?bug_root_flush
    ~space:(Recipe.Wordkey.int_space ()) ()

let k = Util.Keys.encode_int

(* --- Sequential ---------------------------------------------------------- *)

let test_insert_lookup () =
  reset ();
  let t = ff () in
  Alcotest.(check bool) "insert" true (Fastfair.insert t (k 10) 100);
  Alcotest.(check bool) "dup insert" false (Fastfair.insert t (k 10) 200);
  Alcotest.(check (option int)) "lookup" (Some 100) (Fastfair.lookup t (k 10));
  Alcotest.(check (option int)) "missing" None (Fastfair.lookup t (k 11))

let test_many_inserts_with_splits () =
  reset ();
  let t = ff () in
  let n = 10_000 in
  let r = Util.Rng.create 17 in
  let keys = Array.init n (fun i -> i + 1) in
  Util.Rng.shuffle r keys;
  Array.iter (fun key -> ignore (Fastfair.insert t (k key) (key * 3))) keys;
  Alcotest.(check bool) "tree grew" true (Fastfair.height t > 0);
  Array.iter
    (fun key ->
      if Fastfair.lookup t (k key) <> Some (key * 3) then
        Alcotest.failf "lost key %d" key)
    keys

let test_delete () =
  reset ();
  let t = ff () in
  for i = 1 to 200 do
    ignore (Fastfair.insert t (k i) i)
  done;
  for i = 1 to 200 do
    if i mod 2 = 0 then
      Alcotest.(check bool) "delete" true (Fastfair.delete t (k i))
  done;
  for i = 1 to 200 do
    let expect = if i mod 2 = 0 then None else Some i in
    Alcotest.(check (option int)) "after delete" expect (Fastfair.lookup t (k i))
  done;
  Alcotest.(check bool) "delete absent" false (Fastfair.delete t (k 2))

let test_scan_sorted () =
  reset ();
  let t = ff () in
  let r = Util.Rng.create 3 in
  let keys = Array.init 2_000 (fun i -> (i * 2) + 1) in
  Util.Rng.shuffle r keys;
  Array.iter (fun key -> ignore (Fastfair.insert t (k key) key)) keys;
  (* scan from key 100: expect 101,103,105,... *)
  let seen = ref [] in
  let n = Fastfair.scan t (k 100) 50 (fun key v -> seen := (key, v) :: !seen) in
  Alcotest.(check int) "scan count" 50 n;
  let seen = List.rev !seen in
  List.iteri
    (fun i (key, v) ->
      let expect = 101 + (2 * i) in
      Alcotest.(check int) "scan value" expect v;
      Alcotest.(check string) "scan key" (k expect) key)
    seen

let test_range () =
  reset ();
  let t = ff () in
  for i = 1 to 100 do
    ignore (Fastfair.insert t (k i) i)
  done;
  let rs = Fastfair.range t (k 10) (k 20) in
  Alcotest.(check int) "range size" 10 (List.length rs);
  Alcotest.(check int) "first" 10 (snd (List.hd rs))

let test_string_keys () =
  reset ();
  let t =
    Fastfair.create ~space:(Recipe.Wordkey.string_space ()) ()
  in
  let n = 3_000 in
  for i = 1 to n do
    ignore (Fastfair.insert t (Util.Keys.string_key i) i)
  done;
  for i = 1 to n do
    if Fastfair.lookup t (Util.Keys.string_key i) <> Some i then
      Alcotest.failf "lost string key %d" i
  done;
  let cnt = Fastfair.scan t (Util.Keys.string_key 0) 100 (fun _ _ -> ()) in
  Alcotest.(check int) "string scan" 100 cnt

(* --- Model-based --------------------------------------------------------- *)

let prop_matches_model =
  QCheck.Test.make ~name:"fastfair matches Map model" ~count:60
    QCheck.(
      make
        ~print:(fun l ->
          String.concat ";"
            (List.map (fun (op, key) -> Printf.sprintf "%d:%d" op key) l))
        (QCheck.Gen.list_size (QCheck.Gen.int_range 0 300)
           (QCheck.Gen.pair (QCheck.Gen.int_range 0 2) (QCheck.Gen.int_range 1 100))))
    (fun ops ->
      reset ();
      let t = ff () in
      let model = ref [] in
      List.for_all
        (fun (op, key) ->
          match op with
          | 0 ->
              let fresh = not (List.mem_assoc key !model) in
              if fresh then model := (key, key * 7) :: !model;
              Fastfair.insert t (k key) (key * 7) = fresh
          | 1 ->
              let present = List.mem_assoc key !model in
              model := List.remove_assoc key !model;
              Fastfair.delete t (k key) = present
          | _ -> Fastfair.lookup t (k key) = List.assoc_opt key !model)
        ops)

(* --- Concurrency ---------------------------------------------------------- *)

let test_concurrent_inserts () =
  reset ();
  let t = ff () in
  let n_domains = 4 and per = 5_000 in
  let body d () =
    for i = 0 to per - 1 do
      let key = (i * n_domains) + d + 1 in
      ignore (Fastfair.insert t (k key) key)
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (body d)) in
  List.iter Domain.join ds;
  for key = 1 to n_domains * per do
    if Fastfair.lookup t (k key) <> Some key then Alcotest.failf "lost %d" key
  done

let test_concurrent_readers_writers () =
  reset ();
  let t = ff () in
  for i = 1 to 2_000 do
    ignore (Fastfair.insert t (k i) i)
  done;
  let stop = Atomic.make false in
  let reader () =
    let r = Util.Rng.create 5 in
    let bad = ref 0 in
    while not (Atomic.get stop) do
      let key = 1 + Util.Rng.below r 2_000 in
      if Fastfair.lookup t (k key) <> Some key then incr bad
    done;
    !bad
  in
  let writer () =
    for i = 2_001 to 12_000 do
      ignore (Fastfair.insert t (k i) i)
    done;
    0
  in
  let rd = Domain.spawn reader and wd = Domain.spawn writer in
  ignore (Domain.join wd);
  Atomic.set stop true;
  Alcotest.(check int) "stable keys always found" 0 (Domain.join rd)

(* The §3 design bug: without the high-key check, an insert racing with a
   split can land in the wrong node and become unreachable.  With the fix
   (default) this must never happen. *)
let test_no_lost_keys_under_contention () =
  reset ();
  let t = ff () in
  (* Hammer a narrow hot range from several domains to force insert/split
     races on the same nodes. *)
  let n_domains = 4 and per = 4_000 in
  let body d () =
    for i = 0 to per - 1 do
      let key = (i * n_domains) + d + 1 in
      ignore (Fastfair.insert t (k key) key)
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (body d)) in
  List.iter Domain.join ds;
  let lost = ref 0 in
  for key = 1 to n_domains * per do
    if Fastfair.lookup t (k key) = None then incr lost
  done;
  Alcotest.(check int) "no unreachable keys with high-key fix" 0 !lost

(* --- Crash consistency ----------------------------------------------------- *)

let crash_campaign ?bug_split_order ~points () =
  (* For each crash position: load, crash during an insert burst, recover,
     verify all previously-persisted keys, count losses. *)
  let lost = ref 0 in
  for point = 1 to points do
    reset ();
    Pmem.Mode.set_shadow true;
    let t = ff ?bug_split_order () in
    for i = 1 to 300 do
      ignore (Fastfair.insert t (k i) i)
    done;
    Pmem.persist_everything ();
    Pmem.Crash.arm_at point;
    (try
       for i = 301 to 400 do
         ignore (Fastfair.insert t (k i) i)
       done;
       Pmem.Crash.disarm ()
     with Pmem.Crash.Simulated_crash -> ());
    Pmem.simulate_power_failure ();
    Fastfair.recover t;
    for i = 1 to 300 do
      if Fastfair.lookup t (k i) <> Some i then incr lost
    done;
    (* Post-recovery writes and reads must work. *)
    ignore (Fastfair.insert t (k 10_000) 1);
    if Fastfair.lookup t (k 10_000) <> Some 1 then incr lost
  done;
  Pmem.Mode.set_shadow false;
  !lost

let test_crash_consistent_fixed () =
  Alcotest.(check int) "no data loss across crash points" 0
    (crash_campaign ~points:60 ())

let test_crash_bug_split_order_loses_data () =
  (* With the wrong store order in the split, some crash position must lose
     persisted keys — the class of bug §7.5's testing found in FAST & FAIR. *)
  let lost = crash_campaign ~bug_split_order:true ~points:60 () in
  Alcotest.(check bool) "buggy split order loses keys" true (lost > 0);
  (* Intentionally-buggy variant: drop any sanitizer diagnostics it made. *)
  Obs.Diag.clear ()

let test_durability_flags_unflushed_root () =
  reset ();
  Pmem.Mode.set_shadow true;
  let _t = ff ~bug_root_flush:true () in
  (* The durability check of §5: the freshly allocated root was never
     flushed, exactly the FAST & FAIR / CCEH bug the paper reports. *)
  Alcotest.(check bool) "unflushed root detected" true (Pmem.dirty_count () > 0);
  reset ();
  Pmem.Mode.set_shadow true;
  let _t = ff () in
  Alcotest.(check int) "correct version flushes allocation" 0 (Pmem.dirty_count ());
  Pmem.Mode.set_shadow false

let test_durability_inserts () =
  reset ();
  Pmem.Mode.set_shadow true;
  let t = ff () in
  for i = 1 to 500 do
    ignore (Fastfair.insert t (k i) i);
    if Pmem.dirty_count () <> 0 then
      Alcotest.failf "dirty lines after insert %d: %s" i
        (String.concat "," (Pmem.dirty_objects ()))
  done;
  for i = 1 to 500 do
    ignore (Fastfair.delete t (k i));
    if Pmem.dirty_count () <> 0 then Alcotest.failf "dirty after delete %d" i
  done;
  Pmem.Mode.set_shadow false

let () =
  Alcotest.run "fastfair"
    [
      ( "sequential",
        [
          Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
          Alcotest.test_case "splits" `Quick test_many_inserts_with_splits;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "scan sorted" `Quick test_scan_sorted;
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "string keys" `Quick test_string_keys;
        ] );
      ("model", [ QCheck_alcotest.to_alcotest prop_matches_model ]);
      ( "concurrent",
        [
          Alcotest.test_case "inserts" `Quick test_concurrent_inserts;
          Alcotest.test_case "readers+writers" `Quick test_concurrent_readers_writers;
          Alcotest.test_case "no lost keys (high-key fix)" `Quick
            test_no_lost_keys_under_contention;
        ] );
      ( "crash",
        [
          Alcotest.test_case "fixed version consistent" `Quick
            test_crash_consistent_fixed;
          Alcotest.test_case "split-order bug loses data" `Quick
            test_crash_bug_split_order_loses_data;
        ] );
      ( "durability",
        [
          Alcotest.test_case "unflushed root bug" `Quick
            test_durability_flags_unflushed_root;
          Alcotest.test_case "inserts fully flushed" `Quick test_durability_inserts;
        ] );
    ]
