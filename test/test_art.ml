(* Tests for P-ART: radix semantics (node growth, path compression),
   model-based checks, concurrency, crash consistency with the Condition #3
   helper, durability. *)

(* Under RECIPE_SANITIZE (the @sanitize alias) the whole suite runs with
   the psan sanitizer enabled and must produce zero diagnostics. *)
let () = Harness.Sanitize_env.init ()


let reset () =
  Pmem.Mode.set_shadow false;
  Pmem.Llc.set_enabled false;
  Pmem.Crash.disarm ();
  ignore (Pmem.persist_everything ());
  Pmem.Stats.reset ();
  Util.Lock.new_epoch ()

let k = Util.Keys.encode_int

let test_insert_lookup () =
  reset ();
  let t = Art.create () in
  Alcotest.(check bool) "insert" true (Art.insert t (k 1) 10);
  Alcotest.(check bool) "dup" false (Art.insert t (k 1) 20);
  Alcotest.(check (option int)) "lookup" (Some 10) (Art.lookup t (k 1));
  Alcotest.(check (option int)) "missing" None (Art.lookup t (k 2))

(* Dense keys exercise Node4 -> Node16 -> Node48 -> Node256 growth. *)
let test_node_growth () =
  reset ();
  let t = Art.create () in
  for i = 0 to 9_999 do
    Alcotest.(check bool) (Printf.sprintf "insert %d" i) true (Art.insert t (k i) i)
  done;
  for i = 0 to 9_999 do
    if Art.lookup t (k i) <> Some i then Alcotest.failf "lost %d" i
  done

(* Sparse random keys exercise path compression (long shared prefixes from
   the big-endian encoding of small-range keys). *)
let test_path_compression () =
  reset ();
  let t = Art.create () in
  let r = Util.Rng.create 9 in
  let keys = Array.init 5_000 (fun _ -> Util.Rng.key r) in
  Array.iter (fun key -> ignore (Art.insert t (k key) (key land 0xFFFF))) keys;
  Array.iter
    (fun key ->
      if Art.lookup t (k key) <> Some (key land 0xFFFF) then
        Alcotest.failf "lost %d" key)
    keys

let test_string_keys () =
  reset ();
  let t = Art.create () in
  for i = 1 to 3_000 do
    ignore (Art.insert t (Util.Keys.string_key i) i)
  done;
  for i = 1 to 3_000 do
    if Art.lookup t (Util.Keys.string_key i) <> Some i then
      Alcotest.failf "lost string key %d" i
  done

let test_update () =
  reset ();
  let t = Art.create () in
  for i = 1 to 500 do
    ignore (Art.insert t (k i) i)
  done;
  Alcotest.(check bool) "update existing" true (Art.update t (k 7) 700);
  Alcotest.(check (option int)) "new value" (Some 700) (Art.lookup t (k 7));
  Alcotest.(check bool) "update absent" false (Art.update t (k 9_999) 1);
  (* Crash-atomicity: the update is one atomic store — old or new value. *)
  Pmem.Mode.set_shadow true;
  let t2 = Art.create () in
  ignore (Art.insert t2 (k 1) 10);
  Pmem.persist_everything ();
  Pmem.Crash.arm_at 1;
  (try ignore (Art.update t2 (k 1) 20) with Pmem.Crash.Simulated_crash -> ());
  Pmem.Crash.disarm ();
  Pmem.simulate_power_failure ();
  Art.recover t2;
  (match Art.lookup t2 (k 1) with
  | Some v -> Alcotest.(check bool) "old or new" true (v = 10 || v = 20)
  | None -> Alcotest.fail "key lost by update crash");
  Pmem.Mode.set_shadow false

let test_delete () =
  reset ();
  let t = Art.create () in
  for i = 1 to 500 do
    ignore (Art.insert t (k i) i)
  done;
  for i = 1 to 500 do
    if i mod 3 = 0 then Alcotest.(check bool) "delete" true (Art.delete t (k i))
  done;
  for i = 1 to 500 do
    let expect = if i mod 3 = 0 then None else Some i in
    Alcotest.(check (option int)) "after delete" expect (Art.lookup t (k i))
  done;
  Alcotest.(check bool) "delete absent" false (Art.delete t (k 3));
  (* Reinsert into tombstoned slots. *)
  for i = 1 to 500 do
    if i mod 3 = 0 then
      Alcotest.(check bool) "reinsert" true (Art.insert t (k i) (i * 2))
  done;
  for i = 1 to 500 do
    let expect = if i mod 3 = 0 then Some (i * 2) else Some i in
    Alcotest.(check (option int)) "after reinsert" expect (Art.lookup t (k i))
  done

(* Deletes shrink nodes back down: grow to Node256 territory, delete most
   keys, and check the shrink machinery fired while semantics hold. *)
let test_shrink_on_delete () =
  reset ();
  let t = Art.create () in
  for i = 0 to 9_999 do
    ignore (Art.insert t (k i) i)
  done;
  for i = 0 to 9_999 do
    if i mod 32 <> 0 then ignore (Art.delete t (k i))
  done;
  Alcotest.(check bool) "shrinks happened" true (Art.shrink_count t > 0);
  for i = 0 to 9_999 do
    let expect = if i mod 32 = 0 then Some i else None in
    Alcotest.(check (option int)) "post-shrink lookup" expect (Art.lookup t (k i))
  done;
  (* Scans stay sorted and complete. *)
  let got = ref [] in
  ignore (Art.scan t (k 0) max_int (fun _ v -> got := v :: !got));
  let expect = List.init 313 (fun i -> i * 32) in
  Alcotest.(check (list int)) "scan after shrink" expect (List.rev !got);
  (* Reinsert into shrunken nodes. *)
  for i = 0 to 999 do
    ignore (Art.insert t (k i) (i * 7))
  done;
  for i = 1 to 999 do
    if i mod 32 <> 0 && Art.lookup t (k i) <> Some (i * 7) then
      Alcotest.failf "reinsert lost %d" i
  done

let test_concurrent_delete_shrink () =
  reset ();
  let t = Art.create () in
  for i = 0 to 19_999 do
    ignore (Art.insert t (k i) i)
  done;
  let deleter d () =
    for i = 0 to 19_999 do
      if i mod 4 = d && i mod 8 <> 0 then ignore (Art.delete t (k i))
    done
  in
  let ds = List.init 4 (fun d -> Domain.spawn (deleter d)) in
  List.iter Domain.join ds;
  for i = 0 to 19_999 do
    let expect = if i mod 8 = 0 then Some i else None in
    if Art.lookup t (k i) <> expect then Alcotest.failf "bad state at %d" i
  done

let test_scan_sorted () =
  reset ();
  let t = Art.create () in
  let r = Util.Rng.create 4 in
  let keys = Array.init 2_000 (fun i -> (i * 3) + 1) in
  Util.Rng.shuffle r keys;
  Array.iter (fun key -> ignore (Art.insert t (k key) key)) keys;
  let seen = ref [] in
  let n = Art.scan t (k 50) 40 (fun key v -> seen := (key, v) :: !seen) in
  Alcotest.(check int) "scan count" 40 n;
  let seen = List.rev !seen in
  (* Expect keys 52, 55, 58, ... (first key >= 50 in the 3i+1 sequence). *)
  List.iteri
    (fun i (key, v) ->
      let expect = 52 + (3 * i) in
      Alcotest.(check int) "scan value" expect v;
      Alcotest.(check string) "scan key" (k expect) key)
    seen

let test_range () =
  reset ();
  let t = Art.create () in
  for i = 1 to 300 do
    ignore (Art.insert t (k i) i)
  done;
  let rs = Art.range t (k 100) (k 110) in
  Alcotest.(check int) "range size" 10 (List.length rs);
  Alcotest.(check int) "first" 100 (snd (List.hd rs));
  Alcotest.(check int) "last" 109 (snd (List.nth rs 9))

let prop_matches_model =
  QCheck.Test.make ~name:"art matches Map model" ~count:60
    QCheck.(
      make
        ~print:(fun l ->
          String.concat ";"
            (List.map (fun (op, key) -> Printf.sprintf "%d:%d" op key) l))
        (QCheck.Gen.list_size (QCheck.Gen.int_range 0 400)
           (QCheck.Gen.pair (QCheck.Gen.int_range 0 2) (QCheck.Gen.int_range 1 256))))
    (fun ops ->
      reset ();
      let t = Art.create () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (op, key) ->
          match op with
          | 0 ->
              let fresh = not (Hashtbl.mem model key) in
              if fresh then Hashtbl.replace model key (key * 5);
              Art.insert t (k key) (key * 5) = fresh
          | 1 ->
              let present = Hashtbl.mem model key in
              Hashtbl.remove model key;
              Art.delete t (k key) = present
          | _ -> Art.lookup t (k key) = Hashtbl.find_opt model key)
        ops)

(* --- Concurrency -------------------------------------------------------------- *)

let test_concurrent_inserts () =
  reset ();
  let t = Art.create () in
  let n_domains = 4 and per = 5_000 in
  let body d () =
    let r = Util.Rng.create (d + 100) in
    for i = 0 to per - 1 do
      let key = (i * n_domains) + d + 1 in
      ignore (Art.insert t (k key) key);
      (* Interleave some random sparse keys to force splits. *)
      if i mod 16 = 0 then ignore (Art.insert t (k (Util.Rng.key r)) 1)
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (body d)) in
  List.iter Domain.join ds;
  for key = 1 to n_domains * per do
    if Art.lookup t (k key) <> Some key then Alcotest.failf "lost %d" key
  done

let test_concurrent_readers_writers () =
  reset ();
  let t = Art.create () in
  for i = 1 to 2_000 do
    ignore (Art.insert t (k i) i)
  done;
  let stop = Atomic.make false in
  let reader () =
    let r = Util.Rng.create 8 in
    let bad = ref 0 in
    while not (Atomic.get stop) do
      let key = 1 + Util.Rng.below r 2_000 in
      if Art.lookup t (k key) <> Some key then incr bad
    done;
    !bad
  in
  let writer () =
    let r = Util.Rng.create 77 in
    for _ = 1 to 20_000 do
      ignore (Art.insert t (k (Util.Rng.key r)) 1)
    done;
    0
  in
  let rd = Domain.spawn reader and wd = Domain.spawn writer in
  ignore (Domain.join wd);
  Atomic.set stop true;
  Alcotest.(check int) "stable keys always readable" 0 (Domain.join rd)

(* --- Crash consistency (Condition #3) ------------------------------------------ *)

(* Enumerate crash points across an insert burst heavy in path-compression
   splits (sparse random keys).  After recovery every persisted key must be
   readable, and further writes — which trigger the helper on stale
   prefixes — must succeed. *)
let test_crash_campaign () =
  let total_fixes = ref 0 in
  for point = 1 to 80 do
    reset ();
    Pmem.Mode.set_shadow true;
    let t = Art.create () in
    let r = Util.Rng.create 42 in
    let loaded = Array.init 300 (fun _ -> Util.Rng.key r) in
    Array.iter (fun key -> ignore (Art.insert t (k key) key)) loaded;
    Pmem.persist_everything ();
    Pmem.Crash.arm_at point;
    (try
       for _ = 1 to 200 do
         ignore (Art.insert t (k (Util.Rng.key r)) 7)
       done;
       Pmem.Crash.disarm ()
     with Pmem.Crash.Simulated_crash -> ());
    Pmem.simulate_power_failure ();
    Art.recover t;
    (* Reads tolerate any crash-interrupted SMO state. *)
    Array.iter
      (fun key ->
        if Art.lookup t (k key) <> Some key then
          Alcotest.failf "crash point %d lost key %d" point key)
      loaded;
    (* Writes detect and fix stale prefixes via the helper. *)
    let r2 = Util.Rng.create (point * 13) in
    for _ = 1 to 300 do
      let key = Util.Rng.key r2 in
      ignore (Art.insert t (k key) 9);
      if Art.lookup t (k key) <> Some 9 then
        Alcotest.failf "post-crash insert broken at point %d" point
    done;
    Array.iter
      (fun key ->
        if Art.lookup t (k key) <> Some key then
          Alcotest.failf "crash point %d: key %d lost after helper fixes" point key)
      loaded;
    total_fixes := !total_fixes + Art.helper_fixes t
  done;
  Pmem.Mode.set_shadow false;
  ignore !total_fixes

(* Deterministic Condition #3 scenario with crafted keys:
   A and B share prefix "abcde" below the root byte, so their chain node has
   a 5-byte compressed prefix at level 6.  C diverges inside that prefix
   (matched = 3), forcing the two-step path-compression split.  Crashing at
   every point of C's insert and then inserting D (which traverses the old
   node) must exercise the stale-prefix detection + helper on the crash
   point that falls between the split's two ordered steps. *)
let test_helper_fires_on_smo_crash () =
  let key_a = "\x05abcdeX1" and key_b = "\x05abcdeY1" in
  let key_c = "\x05abcZZZ1" and key_d = "\x05abcdeZ1" in
  let setup () =
    reset ();
    Pmem.Mode.set_shadow true;
    let t = Art.create () in
    ignore (Art.insert t key_a 1);
    ignore (Art.insert t key_b 2);
    Pmem.persist_everything ();
    t
  in
  (* Count the crash points of C's insert on a throwaway tree. *)
  let points =
    let t = setup () in
    Pmem.Crash.count_points (fun () -> ignore (Art.insert t key_c 3))
  in
  Alcotest.(check bool) "split has multiple ordered steps" true (points >= 2);
  let helper_fired = ref false in
  for point = 1 to points do
    let t = setup () in
    Pmem.Crash.arm_at point;
    (try ignore (Art.insert t key_c 3) with Pmem.Crash.Simulated_crash -> ());
    Pmem.Crash.disarm ();
    Pmem.simulate_power_failure ();
    Art.recover t;
    (* Previously persisted keys always readable (reads tolerate). *)
    Alcotest.(check (option int)) "A survives" (Some 1) (Art.lookup t key_a);
    Alcotest.(check (option int)) "B survives" (Some 2) (Art.lookup t key_b);
    (* D's insert traverses the possibly-stale old node: the writer must
       detect and fix, and all keys must be readable afterwards. *)
    ignore (Art.insert t key_d 4);
    Alcotest.(check (option int)) "D inserted" (Some 4) (Art.lookup t key_d);
    Alcotest.(check (option int)) "A still there" (Some 1) (Art.lookup t key_a);
    Alcotest.(check (option int)) "B still there" (Some 2) (Art.lookup t key_b);
    (match Art.lookup t key_c with
    | Some v -> Alcotest.(check int) "C committed fully" 3 v
    | None -> ignore (Art.insert t key_c 3));
    Alcotest.(check (option int)) "C readable" (Some 3) (Art.lookup t key_c);
    if Art.helper_fixes t > 0 then helper_fired := true
  done;
  Pmem.Mode.set_shadow false;
  Alcotest.(check bool) "helper fired at the step-1/step-2 crash point" true
    !helper_fired

let test_durability () =
  reset ();
  Pmem.Mode.set_shadow true;
  let t = Art.create () in
  Alcotest.(check int) "clean after create" 0 (Pmem.dirty_count ());
  let r = Util.Rng.create 11 in
  for i = 1 to 2_000 do
    ignore (Art.insert t (k (Util.Rng.key r)) i);
    if Pmem.dirty_count () <> 0 then
      Alcotest.failf "dirty lines after insert %d: %s" i
        (String.concat "," (Pmem.dirty_objects ()))
  done;
  for i = 1 to 500 do
    ignore (Art.insert t (k i) i);
    ignore (Art.delete t (k i));
    if Pmem.dirty_count () <> 0 then Alcotest.failf "dirty after delete %d" i
  done;
  Pmem.Mode.set_shadow false

let () =
  Alcotest.run "art"
    [
      ( "sequential",
        [
          Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
          Alcotest.test_case "node growth" `Quick test_node_growth;
          Alcotest.test_case "path compression" `Quick test_path_compression;
          Alcotest.test_case "string keys" `Quick test_string_keys;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "shrink on delete" `Quick test_shrink_on_delete;
          Alcotest.test_case "concurrent delete+shrink" `Quick
            test_concurrent_delete_shrink;
          Alcotest.test_case "scan sorted" `Quick test_scan_sorted;
          Alcotest.test_case "range" `Quick test_range;
        ] );
      ("model", [ QCheck_alcotest.to_alcotest prop_matches_model ]);
      ( "concurrent",
        [
          Alcotest.test_case "inserts" `Quick test_concurrent_inserts;
          Alcotest.test_case "readers+writers" `Quick test_concurrent_readers_writers;
        ] );
      ( "crash",
        [
          Alcotest.test_case "campaign" `Quick test_crash_campaign;
          Alcotest.test_case "helper on SMO crash" `Quick
            test_helper_fires_on_smo_crash;
        ] );
      ("durability", [ Alcotest.test_case "no dirty lines" `Quick test_durability ]);
    ]
