(* PSan sanitizer tests: the per-line persistency state machine and its
   three diagnostic families, the deterministic rereporting of the paper's
   §3 missing-flush bugs (no crash-state sampling involved), the mutation
   tests (a deleted clwb/sfence must be reported, clean indexes must not),
   the race check, and the sanitize-off zero-overhead guard. *)

module W = Pmem.Words
module R = Pmem.Refs
module P = Recipe.Persist
module D = Obs.Diag

let site_a = Obs.Site.v ~index:"psan-test" "store-a"
let site_b = Obs.Site.v ~index:"psan-test" "commit-b"

let reset () =
  Psan.disable ();
  Pmem.Mode.set_shadow false;
  Pmem.Llc.set_enabled false;
  Pmem.Crash.disarm ();
  Pmem.persist_everything ();
  Pmem.Stats.reset ();
  D.clear ();
  Util.Lock.new_epoch ()

(* Run [f] under the sanitizer against a clean diagnostic sink. *)
let sanitized ?races f =
  reset ();
  Psan.with_sanitizer ?races f

let kinds () =
  List.sort_uniq compare (List.map (fun (d, _) -> d.D.kind) (D.all ()))

let store_sites () =
  List.filter_map
    (fun (d, _) -> Option.map Obs.Site.name d.D.store_site)
    (D.all ())

let expose_sites () =
  List.filter_map
    (fun (d, _) -> Option.map Obs.Site.name d.D.expose_site)
    (D.all ())

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- state machine / diagnostic families --------------------------------- *)

let test_clean_commit_no_diag () =
  sanitized (fun () ->
      let w = W.make ~name:"psan.w" 16 0 in
      P.persist_new_words ~site:site_a w;
      P.store ~site:site_a w 0 41;
      P.flush ~site:site_a w 0;
      P.commit ~site:site_b w 8 42);
  Alcotest.(check int) "no diagnostics" 0 (D.count ())

let test_missing_flush_reported () =
  sanitized (fun () ->
      let w = W.make ~name:"psan.w" 16 0 in
      P.persist_new_words ~site:site_a w;
      (* store to line 0, never flushed; commit on line 1 publishes. *)
      P.store ~site:site_a w 0 41;
      P.commit ~site:site_b w 8 42);
  Alcotest.(check int) "one finding" 1 (D.count ());
  Alcotest.(check (list string)) "kind" [ Psan.k_publish ] (kinds ());
  Alcotest.(check (list string))
    "offending store site named" [ "psan-test/store-a" ] (store_sites ());
  Alcotest.(check (list string))
    "exposing commit site named" [ "psan-test/commit-b" ] (expose_sites ())

let test_missing_fence_reported () =
  sanitized (fun () ->
      let w = W.make ~name:"psan.w" 16 0 in
      P.persist_new_words ~site:site_a w;
      P.store ~site:site_a w 0 41;
      W.clwb ~site:site_a w 0;
      (* flushed but no fence before the publication *)
      P.commit ~site:site_b w 8 42);
  Alcotest.(check int) "one finding" 1 (D.count ());
  let detail = match D.all () with [ (d, _) ] -> d.D.detail | _ -> "" in
  Alcotest.(check bool)
    "reported as flushed-unfenced" true
    (contains detail "unfenced")

let test_redundant_flush_reported () =
  sanitized (fun () ->
      let w = W.make ~name:"psan.w" 8 0 in
      P.persist_new_words ~site:site_a w;
      (* line already persisted; flushing it again is pure overhead *)
      P.flush ~site:site_b w 0);
  Alcotest.(check (list string)) "kind" [ Psan.k_flush ] (kinds ());
  Alcotest.(check (list string))
    "flush site named" [ "psan-test/commit-b" ] (store_sites ())

let test_redundant_fence_reported () =
  sanitized (fun () ->
      let w = W.make ~name:"psan.w" 8 0 in
      P.persist_new_words ~site:site_a w;
      (* no clwb since this domain's last fence *)
      Pmem.sfence ~site:site_b ());
  Alcotest.(check (list string)) "kind" [ Psan.k_fence ] (kinds ())

(* --- race check ----------------------------------------------------------- *)

let test_race_reported () =
  sanitized (fun () ->
      let w = W.make ~name:"psan.race" 8 0 in
      P.persist_new_words ~site:site_a w;
      let d = Domain.spawn (fun () -> W.set w 0 1) in
      Domain.join d;
      (* no release/acquire edge, no sanitize_sync: racy read *)
      ignore (W.get w 0));
  Alcotest.(check (list string)) "kind" [ Psan.k_race ] (kinds ())

let test_race_suppressed_by_commit_edge () =
  sanitized (fun () ->
      let w = W.make ~name:"psan.race" 8 0 in
      P.persist_new_words ~site:site_a w;
      let d = Domain.spawn (fun () -> P.commit ~site:site_b w 0 1) in
      Domain.join d;
      (* the commit is a release; the read of the committed word rides it *)
      ignore (W.get w 0));
  Alcotest.(check int) "no diagnostics" 0 (D.count ())

let test_race_suppressed_by_sync () =
  sanitized (fun () ->
      let w = W.make ~name:"psan.race" 8 0 in
      P.persist_new_words ~site:site_a w;
      let d = Domain.spawn (fun () -> W.set w 0 1) in
      Domain.join d;
      Pmem.sanitize_sync ();
      ignore (W.get w 0));
  Alcotest.(check int) "no diagnostics" 0 (D.count ())

let test_race_suppressed_by_lock () =
  sanitized (fun () ->
      let w = W.make ~name:"psan.race" 8 0 in
      P.persist_new_words ~site:site_a w;
      let l = Util.Lock.create () in
      let d =
        Domain.spawn (fun () -> Util.Lock.with_lock l (fun () -> W.set w 0 1))
      in
      Domain.join d;
      Util.Lock.with_lock l (fun () -> ignore (W.get w 0)));
  Alcotest.(check int) "no diagnostics" 0 (D.count ())

let test_race_check_can_be_disabled () =
  sanitized ~races:false (fun () ->
      let w = W.make ~name:"psan.race" 8 0 in
      P.persist_new_words ~site:site_a w;
      let d = Domain.spawn (fun () -> W.set w 0 1) in
      Domain.join d;
      ignore (W.get w 0));
  Alcotest.(check int) "no diagnostics" 0 (D.count ())

(* --- §3 bugs as deterministic sanitizer findings -------------------------- *)

(* FAST&FAIR with the unflushed root allocation (§7.5): the very first
   insert publishes through a commit while the root's lines are still
   dirty.  One single-threaded insert, no crash sampling, deterministic. *)
let test_fastfair_root_flush_bug_found () =
  sanitized (fun () ->
      let t =
        Fastfair.create ~bug_root_flush:true
          ~space:(Recipe.Wordkey.int_space ()) ()
      in
      ignore (Fastfair.insert t (Util.Keys.encode_int 1) 10));
  Alcotest.(check bool)
    "unpersisted-publish findings" true
    (Psan.count_kind Psan.k_publish > 0);
  Alcotest.(check bool)
    "attributed to the unflushed allocation" true
    (List.exists (fun s -> contains s "alloc/") (store_sites ()))

let test_fastfair_clean_no_findings () =
  sanitized (fun () ->
      let t = Fastfair.create ~space:(Recipe.Wordkey.int_space ()) () in
      (* Shuffled order (multiplicative permutation), not ascending: ascending
         inserts always append, so insert_slot's shift path — including the
         line-boundary positions where the tail flush is already covered —
         never runs.  This order exercises mid-node inserts at every slot. *)
      for i = 1 to 200 do
        let k = 1 + (i * 73 mod 211) in
        ignore (Fastfair.insert t (Util.Keys.encode_int k) k)
      done;
      for i = 1 to 200 do
        let k = 1 + (i * 73 mod 211) in
        assert (Fastfair.lookup t (Util.Keys.encode_int k) = Some k)
      done;
      for i = 1 to 50 do
        let k = 1 + (i * 73 mod 211) in
        ignore (Fastfair.delete t (Util.Keys.encode_int k))
      done);
  Alcotest.(check int) "no diagnostics" 0 (D.count ())

(* CCEH with the §3 doubling bug: the new global depth is stored without a
   flush ordered before the directory commit that depends on it.  The
   sanitizer flags the directory commit of the first doubling — again
   deterministic, one thread, no crashes armed. *)
let test_cceh_doubling_bug_found () =
  sanitized (fun () ->
      let t = Cceh.create ~bug_doubling:true ~capacity:128 () in
      let i = ref 1 in
      while Psan.count_kind Psan.k_publish = 0 && !i <= 50_000 do
        ignore (Cceh.insert t !i !i);
        incr i
      done);
  Alcotest.(check bool)
    "unpersisted-publish findings" true
    (Psan.count_kind Psan.k_publish > 0);
  Alcotest.(check bool)
    "offending store site is CCEH/dir-double" true
    (List.mem "CCEH/dir-double" (store_sites ()));
  Alcotest.(check bool)
    "exposed at the CCEH/dir-double commit" true
    (List.mem "CCEH/dir-double" (expose_sites ()))

let test_cceh_clean_no_findings () =
  sanitized (fun () ->
      let t = Cceh.create ~capacity:128 () in
      for i = 1 to 5_000 do
        ignore (Cceh.insert t i i)
      done;
      for i = 1 to 5_000 do
        assert (Cceh.lookup t i = Some i)
      done);
  Alcotest.(check int) "no diagnostics" 0 (D.count ())

(* --- mutation tests: delete one clwb / sfence ----------------------------- *)

let test_mutation_clht_missing_clwb () =
  sanitized (fun () ->
      Pmem.Sanhook.drop_clwb_at "P-CLHT/insert-commit";
      let t = Clht.create ~capacity:16 () in
      for i = 1 to 20 do
        ignore (Clht.insert t i i)
      done);
  Alcotest.(check bool)
    "deleted clwb reported" true
    (Psan.count_kind Psan.k_publish > 0);
  Alcotest.(check bool)
    "attributed to P-CLHT/insert-commit" true
    (List.mem "P-CLHT/insert-commit" (store_sites ()))

let test_mutation_clht_missing_sfence () =
  sanitized (fun () ->
      Pmem.Sanhook.drop_sfence_at "P-CLHT/insert-commit";
      let t = Clht.create ~capacity:16 () in
      for i = 1 to 20 do
        ignore (Clht.insert t i i)
      done);
  Alcotest.(check bool)
    "deleted sfence reported" true
    (Psan.count_kind Psan.k_publish > 0)

let test_mutation_art_missing_clwb () =
  sanitized (fun () ->
      Pmem.Sanhook.drop_clwb_at "P-ART/child-commit";
      let t = Art.create () in
      for i = 1 to 50 do
        ignore (Art.insert t (Util.Keys.encode_int i) i)
      done);
  Alcotest.(check bool)
    "deleted clwb reported" true
    (Psan.count_kind Psan.k_publish > 0);
  Alcotest.(check bool)
    "attributed to P-ART/child-commit" true
    (List.mem "P-ART/child-commit" (store_sites ()))

let test_mutation_clean_controls () =
  (* identical workloads with no fault armed must stay silent *)
  sanitized (fun () ->
      let t = Clht.create ~capacity:16 () in
      for i = 1 to 20 do
        ignore (Clht.insert t i i)
      done;
      let a = Art.create () in
      for i = 1 to 50 do
        ignore (Art.insert a (Util.Keys.encode_int i) i)
      done);
  Alcotest.(check int) "no diagnostics" 0 (D.count ())

(* --- clean runs of all 9 indexes ------------------------------------------ *)

let subject_thunks () =
  [
    (fun () -> Harness.Subjects.clht ());
    (fun () -> Harness.Subjects.cceh ());
    (fun () -> Harness.Subjects.levelhash ());
    (fun () -> Harness.Subjects.art ());
    (fun () -> Harness.Subjects.hot ());
    (fun () -> Harness.Subjects.masstree ());
    (fun () -> Harness.Subjects.bwtree ());
    (fun () -> Harness.Subjects.fastfair ());
    (fun () -> Harness.Subjects.woart ());
  ]

let test_all_indexes_clean () =
  List.iter
    (fun mk ->
      sanitized (fun () ->
          let s = mk () in
          for i = 1 to 400 do
            ignore (s.Crashtest.insert i i)
          done;
          for i = 1 to 400 do
            assert (s.Crashtest.lookup i = Some i)
          done;
          s.Crashtest.recover ();
          for i = 1 to 400 do
            assert (s.Crashtest.lookup i = Some i)
          done;
          (match s.Crashtest.scan_all with
          | Some scan -> assert (List.length (scan ()) = 400)
          | None -> ());
          if D.count () > 0 then begin
            Format.eprintf "%s:@." s.Crashtest.sname;
            D.pp_all Format.err_formatter ()
          end;
          Alcotest.(check int)
            (s.Crashtest.sname ^ " clean under sanitizer")
            0 (D.count ())))
    (subject_thunks ())

(* --- zero-overhead guard --------------------------------------------------

   With sanitize mode off the substrate must not call into the sanitizer at
   all: the accessor dispatch is the same single flags test as before.  The
   engine's event counter is the witness — any off-path hook call would
   bump it. *)

let test_off_path_untouched () =
  reset ();
  (* install + tear down once so hooks exist but the mode bit is off *)
  Psan.enable ();
  Psan.disable ();
  let before = Psan.events_seen () in
  let w = W.make ~name:"psan.off" ~atomic_words:[ 3 ] 64 0 in
  let r = R.make ~name:"psan.off.r" ~atomic:true 8 None in
  for i = 0 to 63 do
    W.set w i i
  done;
  for _ = 1 to 1_000 do
    for i = 0 to 63 do
      assert (W.get w i >= 0)
    done;
    ignore (W.cas w 3 ~expected:3 ~desired:3);
    R.set r 0 (Some 1);
    ignore (R.get r 0);
    P.commit ~site:site_a w 8 7;
    Pmem.sfence ~site:site_a ()
  done;
  Alcotest.(check int)
    "sanitizer saw zero events with the mode off" 0
    (Psan.events_seen () - before);
  Alcotest.(check bool)
    "sanitize flag clear" false
    (!Pmem.Mode.flags land Pmem.Mode.f_sanitize <> 0);
  Alcotest.(check int) "values intact" 7 (W.get w 8)

(* Crash + power failure under the sanitizer must reset its state, not
   leak pending lines into post-recovery publications. *)
let test_crash_resets_pending () =
  sanitized (fun () ->
      Pmem.Mode.set_shadow true;
      let t = Clht.create ~capacity:16 () in
      Pmem.Crash.arm_at 1;
      (try ignore (Clht.insert t 1 1) with Pmem.Crash.Simulated_crash -> ());
      Pmem.Crash.disarm ();
      Pmem.simulate_power_failure ();
      Clht.recover t;
      for i = 2 to 10 do
        ignore (Clht.insert t i i)
      done;
      Pmem.Mode.set_shadow false);
  Alcotest.(check int) "no diagnostics" 0 (D.count ())

let () =
  Alcotest.run "psan"
    [
      ( "state-machine",
        [
          Alcotest.test_case "clean commit" `Quick test_clean_commit_no_diag;
          Alcotest.test_case "missing flush" `Quick test_missing_flush_reported;
          Alcotest.test_case "missing fence" `Quick test_missing_fence_reported;
          Alcotest.test_case "redundant flush" `Quick
            test_redundant_flush_reported;
          Alcotest.test_case "redundant fence" `Quick
            test_redundant_fence_reported;
        ] );
      ( "races",
        [
          Alcotest.test_case "race reported" `Quick test_race_reported;
          Alcotest.test_case "commit edge" `Quick
            test_race_suppressed_by_commit_edge;
          Alcotest.test_case "sync edge" `Quick test_race_suppressed_by_sync;
          Alcotest.test_case "lock edge" `Quick test_race_suppressed_by_lock;
          Alcotest.test_case "races off" `Quick test_race_check_can_be_disabled;
        ] );
      ( "section-3-bugs",
        [
          Alcotest.test_case "fastfair unflushed root" `Quick
            test_fastfair_root_flush_bug_found;
          Alcotest.test_case "fastfair clean" `Quick
            test_fastfair_clean_no_findings;
          Alcotest.test_case "cceh doubling" `Quick test_cceh_doubling_bug_found;
          Alcotest.test_case "cceh clean" `Quick test_cceh_clean_no_findings;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "clht missing clwb" `Quick
            test_mutation_clht_missing_clwb;
          Alcotest.test_case "clht missing sfence" `Quick
            test_mutation_clht_missing_sfence;
          Alcotest.test_case "art missing clwb" `Quick
            test_mutation_art_missing_clwb;
          Alcotest.test_case "clean controls" `Quick
            test_mutation_clean_controls;
        ] );
      ( "indexes",
        [ Alcotest.test_case "all 9 clean" `Quick test_all_indexes_clean ] );
      ( "overhead",
        [
          Alcotest.test_case "off path untouched" `Quick
            test_off_path_untouched;
          Alcotest.test_case "crash resets state" `Quick
            test_crash_resets_pending;
        ] );
    ]
