(* Tests for the simulated persistent-memory substrate. *)

let reset () =
  Pmem.Mode.set_shadow false;
  Pmem.Llc.set_enabled false;
  Pmem.Crash.disarm ();
  ignore (Pmem.persist_everything ());
  Pmem.Stats.reset ()

(* --- Words --------------------------------------------------------------- *)

let test_words_basic () =
  reset ();
  let w = Pmem.Words.make ~atomic_words:[ 3 ] 20 0 in
  Alcotest.(check int) "length" 20 (Pmem.Words.length w);
  Pmem.Words.set w 3 42;
  Alcotest.(check int) "set/get" 42 (Pmem.Words.get w 3);
  Alcotest.(check int) "untouched" 0 (Pmem.Words.get w 19);
  Alcotest.(check bool) "cas ok" true
    (Pmem.Words.cas w 3 ~expected:42 ~desired:43);
  Alcotest.(check bool) "cas fail" false
    (Pmem.Words.cas w 3 ~expected:42 ~desired:44);
  Alcotest.(check int) "after cas" 43 (Pmem.Words.get w 3);
  Alcotest.(check int) "fetch_add old" 43 (Pmem.Words.fetch_add w 3 7);
  Alcotest.(check int) "fetch_add new" 50 (Pmem.Words.get w 3)

let test_words_counters () =
  reset ();
  let before = Pmem.Stats.snapshot () in
  let w = Pmem.Words.make 16 0 in
  Pmem.Words.set w 0 1;
  Pmem.Words.clwb w 0;
  Pmem.sfence ();
  Pmem.Words.clwb_all w;
  let d = Pmem.Stats.(diff (snapshot ()) before) in
  (* 16 words = 2 lines; clwb_all = 2 + explicit 1 = 3. *)
  Alcotest.(check int) "clwb count" 3 d.Pmem.Stats.s_clwb;
  Alcotest.(check int) "sfence count" 1 d.Pmem.Stats.s_sfence;
  Alcotest.(check int) "lines allocated" 2 d.Pmem.Stats.s_lines_allocated;
  Alcotest.(check int) "words allocated" 16 d.Pmem.Stats.s_words_allocated

(* --- Shadow mode: crash discards unflushed lines ------------------------- *)

let test_shadow_revert () =
  reset ();
  Pmem.Mode.set_shadow true;
  let w = Pmem.Words.make 8 0 in
  Pmem.Words.clwb_all w;
  (* persist initial zeros *)
  Pmem.Words.set w 0 7;
  Pmem.Words.clwb w 0;
  Pmem.Words.set w 1 9;
  (* w.(1) never flushed *)
  Alcotest.(check bool) "dirty before crash" true (Pmem.dirty_count () > 0);
  Pmem.simulate_power_failure ();
  Alcotest.(check int) "flushed store survives" 7 (Pmem.Words.get w 0);
  Alcotest.(check int) "unflushed store lost" 0 (Pmem.Words.get w 1);
  Alcotest.(check int) "nothing dirty after crash" 0 (Pmem.dirty_count ());
  Pmem.Mode.set_shadow false

let test_shadow_same_line () =
  reset ();
  Pmem.Mode.set_shadow true;
  let w = Pmem.Words.make 8 0 in
  Pmem.Words.clwb_all w;
  (* Two stores to the same line, one flush: both survive (line granularity). *)
  Pmem.Words.set w 2 5;
  Pmem.Words.set w 3 6;
  Pmem.Words.clwb w 2;
  Pmem.simulate_power_failure ();
  Alcotest.(check int) "word 2" 5 (Pmem.Words.get w 2);
  Alcotest.(check int) "word 3" 6 (Pmem.Words.get w 3);
  Pmem.Mode.set_shadow false

let test_allocation_starts_dirty () =
  reset ();
  Pmem.Mode.set_shadow true;
  let w = Pmem.Words.make 8 123 in
  Alcotest.(check bool) "fresh object is dirty" true (Pmem.dirty_count () > 0);
  Pmem.Words.clwb_all w;
  Alcotest.(check int) "flushed" 0 (Pmem.dirty_count ());
  Pmem.Mode.set_shadow false

(* [clwb_all_dirty] flushes exactly the dirty lines under the tracked
   modes (and degrades to [clwb_all] without tracking): the primitive
   behind re-persist passes that must not re-flush already-persisted
   lines, which the sanitizer reports as redundant. *)
let test_clwb_all_dirty () =
  reset ();
  Pmem.Mode.set_shadow true;
  let w = Pmem.Words.make 64 0 in
  Pmem.Words.clwb_all w;
  (* Dirty two of the eight lines. *)
  Pmem.Words.set w 0 1;
  Pmem.Words.set w 17 2;
  let before = Pmem.Stats.snapshot () in
  Pmem.Words.clwb_all_dirty w;
  let d = Pmem.Stats.(diff (snapshot ()) before) in
  Alcotest.(check int) "flushes only the two dirty lines" 2
    d.Pmem.Stats.s_clwb;
  Alcotest.(check int) "nothing left dirty" 0 (Pmem.dirty_count ());
  let before = Pmem.Stats.snapshot () in
  Pmem.Words.clwb_all_dirty w;
  let d = Pmem.Stats.(diff (snapshot ()) before) in
  Alcotest.(check int) "clean object flushes nothing" 0 d.Pmem.Stats.s_clwb;
  Pmem.Mode.set_shadow false;
  (* Untracked fallback: every line is flushed. *)
  let w = Pmem.Words.make 64 0 in
  let before = Pmem.Stats.snapshot () in
  Pmem.Words.clwb_all_dirty w;
  let d = Pmem.Stats.(diff (snapshot ()) before) in
  Alcotest.(check int) "untracked mode flushes all lines" 8
    d.Pmem.Stats.s_clwb

let test_refs_shadow () =
  reset ();
  Pmem.Mode.set_shadow true;
  let r = Pmem.Refs.make ~atomic:false 4 "init" in
  Pmem.Refs.clwb_all r;
  Pmem.Refs.set r 0 "flushed";
  Pmem.Refs.clwb r 0;
  Pmem.Refs.set r 1 "lost";
  Pmem.simulate_power_failure ();
  Alcotest.(check string) "flushed ref survives" "flushed" (Pmem.Refs.get r 0);
  Alcotest.(check string) "unflushed ref lost" "init" (Pmem.Refs.get r 1);
  Pmem.Mode.set_shadow false

let test_refs_cas_is_physical () =
  reset ();
  let a = "a" and b = "b" in
  let r = Pmem.Refs.make ~atomic:true 1 a in
  Alcotest.(check bool) "cas on same pointer" true
    (Pmem.Refs.cas r 0 ~expected:a ~desired:b);
  Alcotest.(check bool) "cas with stale pointer" false
    (Pmem.Refs.cas r 0 ~expected:a ~desired:b)

(* --- Crash points -------------------------------------------------------- *)

let test_crash_countdown () =
  reset ();
  Pmem.Crash.arm_at 3;
  Pmem.Crash.point ();
  Pmem.Crash.point ();
  (match Pmem.Crash.point () with
  | () -> Alcotest.fail "expected crash at point 3"
  | exception Pmem.Crash.Simulated_crash -> ());
  (* Disarmed after firing. *)
  Pmem.Crash.point ()

let test_crash_probability () =
  reset ();
  Pmem.Crash.arm ~probability:1.0 ~seed:42;
  (match Pmem.Crash.point () with
  | () -> Alcotest.fail "p=1.0 must fire immediately"
  | exception Pmem.Crash.Simulated_crash -> ());
  Pmem.Crash.arm ~probability:0.0 ~seed:42;
  for _ = 1 to 1000 do
    Pmem.Crash.point ()
  done;
  Pmem.Crash.disarm ()

let test_count_points () =
  reset ();
  let n =
    Pmem.Crash.count_points (fun () ->
        Pmem.Crash.point ();
        Pmem.Crash.point ())
  in
  Alcotest.(check int) "two points" 2 n

(* --- LLC simulator ------------------------------------------------------- *)

let test_llc_miss_counting () =
  reset ();
  Pmem.Llc.configure ~capacity_bytes:(64 * 64) ~ways:4 ();
  Pmem.Llc.set_enabled true;
  Pmem.Llc.reset ();
  let w = Pmem.Words.make 8 0 in
  ignore (Pmem.Words.get w 0);
  (* compulsory miss *)
  ignore (Pmem.Words.get w 1);
  (* same line: hit *)
  Alcotest.(check int) "accesses" 2 (Pmem.Llc.accesses ());
  Alcotest.(check int) "misses" 1 (Pmem.Llc.misses ());
  Pmem.Llc.set_enabled false

let test_llc_capacity_eviction () =
  reset ();
  (* 16 lines capacity, 4-way: touching 64 distinct lines then re-touching
     the first must miss again. *)
  Pmem.Llc.configure ~capacity_bytes:(16 * 64) ~ways:4 ();
  Pmem.Llc.set_enabled true;
  Pmem.Llc.reset ();
  let ws = Array.init 64 (fun _ -> Pmem.Words.make 8 0) in
  Array.iter (fun w -> ignore (Pmem.Words.get w 0)) ws;
  let m = Pmem.Llc.misses () in
  Alcotest.(check int) "all compulsory misses" 64 m;
  ignore (Pmem.Words.get ws.(0) 0);
  Alcotest.(check int) "evicted line misses again" (m + 1) (Pmem.Llc.misses ());
  Pmem.Llc.set_enabled false

(* Flat words and atomic-declared words must go through the same shadow
   machinery: run one script of stores and flushes against both layouts,
   crash, and demand identical surviving images. *)
let test_shadow_flat_vs_atomic_equivalence () =
  reset ();
  Pmem.Mode.set_shadow true;
  let len = 32 in
  let flat = Pmem.Words.make len 0 in
  let atomics = Pmem.Words.make ~atomic_words:(List.init len Fun.id) len 0 in
  let script w =
    Pmem.Words.clwb_all w;
    (* persist initial zeros *)
    (* A fixed pseudo-random walk: some lines flushed, some left dirty. *)
    let x = ref 7 in
    for step = 1 to 200 do
      x := (!x * 1103515245) + 12345;
      let i = !x land (len - 1) in
      Pmem.Words.set w i step;
      if step land 3 = 0 then Pmem.Words.clwb w i
    done
  in
  script flat;
  script atomics;
  Pmem.simulate_power_failure ();
  for i = 0 to len - 1 do
    Alcotest.(check int)
      (Printf.sprintf "post-crash word %d" i)
      (Pmem.Words.get flat i)
      (Pmem.Words.get atomics i)
  done;
  Pmem.Mode.set_shadow false

(* --- Concurrency smoke --------------------------------------------------- *)

(* Publication safety of the flat substrate: writers fill flat Words with
   plain stores, then publish each object with a CAS on an atomic Refs slot
   (a release).  Readers discover objects through plain-mode get on the same
   slots (an acquire on the Atomic cell) and must never observe the
   pre-publication zeros inside — this is the happens-before edge every
   index's node-allocation path relies on. *)
let test_publication_smoke () =
  reset ();
  let n_slots = 128 and n_words = 16 in
  let slots = Pmem.Refs.make ~atomic:true n_slots None in
  let n_writers = 2 and n_readers = 2 in
  let writer w () =
    let i = ref w in
    while !i < n_slots do
      let s = !i in
      let words = Pmem.Words.make n_words 0 in
      for j = 0 to n_words - 1 do
        Pmem.Words.set words j ((s * 1000) + j)
      done;
      if not (Pmem.Refs.cas slots s ~expected:None ~desired:(Some (s, words)))
      then Alcotest.fail "publication cas lost on a writer-private slot";
      i := !i + n_writers
    done
  in
  let reader () =
    let bad = ref 0 and seen = ref 0 in
    while !seen < n_slots do
      seen := 0;
      for s = 0 to n_slots - 1 do
        match Pmem.Refs.get slots s with
        | None -> ()
        | Some (id, words) ->
            incr seen;
            for j = 0 to n_words - 1 do
              if Pmem.Words.get words j <> (id * 1000) + j then incr bad
            done
      done
    done;
    !bad
  in
  let writers = List.init n_writers (fun w -> Domain.spawn (writer w)) in
  let readers = List.init n_readers (fun _ -> Domain.spawn reader) in
  List.iter Domain.join writers;
  let bad = List.fold_left (fun a d -> a + Domain.join d) 0 readers in
  Alcotest.(check int) "readers saw no pre-publication words" 0 bad

let test_parallel_cas_counter () =
  reset ();
  let w = Pmem.Words.make ~atomic_words:[ 0 ] 1 0 in
  let n_domains = 4 and per = 5_000 in
  let body () =
    for _ = 1 to per do
      let rec bump () =
        let v = Pmem.Words.get w 0 in
        if not (Pmem.Words.cas w 0 ~expected:v ~desired:(v + 1)) then bump ()
      in
      bump ()
    done
  in
  let ds = List.init n_domains (fun _ -> Domain.spawn body) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost increments" (n_domains * per) (Pmem.Words.get w 0)

let () =
  Alcotest.run "pmem"
    [
      ( "words",
        [
          Alcotest.test_case "basic" `Quick test_words_basic;
          Alcotest.test_case "counters" `Quick test_words_counters;
        ] );
      ( "shadow",
        [
          Alcotest.test_case "revert" `Quick test_shadow_revert;
          Alcotest.test_case "same line" `Quick test_shadow_same_line;
          Alcotest.test_case "allocation dirty" `Quick test_allocation_starts_dirty;
          Alcotest.test_case "clwb_all_dirty" `Quick test_clwb_all_dirty;
          Alcotest.test_case "refs" `Quick test_refs_shadow;
          Alcotest.test_case "refs cas physical" `Quick test_refs_cas_is_physical;
          Alcotest.test_case "flat vs atomic equivalence" `Quick
            test_shadow_flat_vs_atomic_equivalence;
        ] );
      ( "crash",
        [
          Alcotest.test_case "countdown" `Quick test_crash_countdown;
          Alcotest.test_case "probability" `Quick test_crash_probability;
          Alcotest.test_case "count points" `Quick test_count_points;
        ] );
      ( "llc",
        [
          Alcotest.test_case "miss counting" `Quick test_llc_miss_counting;
          Alcotest.test_case "capacity eviction" `Quick test_llc_capacity_eviction;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "publication" `Quick test_publication_smoke;
          Alcotest.test_case "parallel cas" `Quick test_parallel_cas_counter;
        ] );
    ]
