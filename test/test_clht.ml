(* Tests for P-CLHT: sequential semantics vs a model, resize behaviour,
   concurrency, crash consistency (paper §5 methodology) and durability. *)

(* Under RECIPE_SANITIZE (the @sanitize alias) the whole suite runs with
   the psan sanitizer enabled and must produce zero diagnostics. *)
let () = Harness.Sanitize_env.init ()


let reset () =
  Pmem.Mode.set_shadow false;
  Pmem.Llc.set_enabled false;
  Pmem.Crash.disarm ();
  ignore (Pmem.persist_everything ());
  Pmem.Stats.reset ();
  Util.Lock.new_epoch ()

(* --- Sequential semantics ------------------------------------------------ *)

let test_insert_lookup () =
  reset ();
  let t = Clht.create ~capacity:16 () in
  Alcotest.(check bool) "insert fresh" true (Clht.insert t 1 100);
  Alcotest.(check bool) "insert dup fails" false (Clht.insert t 1 200);
  Alcotest.(check (option int)) "lookup" (Some 100) (Clht.lookup t 1);
  Alcotest.(check (option int)) "missing" None (Clht.lookup t 2);
  Alcotest.(check int) "length" 1 (Clht.length t)

let test_delete () =
  reset ();
  let t = Clht.create ~capacity:16 () in
  ignore (Clht.insert t 5 50);
  Alcotest.(check bool) "delete present" true (Clht.delete t 5);
  Alcotest.(check (option int)) "gone" None (Clht.lookup t 5);
  Alcotest.(check bool) "delete absent" false (Clht.delete t 5);
  Alcotest.(check bool) "reinsert after delete" true (Clht.insert t 5 51);
  Alcotest.(check (option int)) "new value" (Some 51) (Clht.lookup t 5)

let test_chain_overflow () =
  reset ();
  (* Tiny table: every bucket chains. *)
  let t = Clht.create ~capacity:4 () in
  let n = 40 in
  for k = 1 to n do
    Alcotest.(check bool) "insert" true (Clht.insert t k (k * 10))
  done;
  for k = 1 to n do
    Alcotest.(check (option int)) "find all" (Some (k * 10)) (Clht.lookup t k)
  done

let test_resize_preserves_contents () =
  reset ();
  let t = Clht.create ~capacity:4 () in
  let n = 5_000 in
  for k = 1 to n do
    ignore (Clht.insert t k k)
  done;
  Alcotest.(check bool) "table grew" true (Clht.bucket_count t > 4);
  for k = 1 to n do
    if Clht.lookup t k <> Some k then Alcotest.failf "lost key %d after resize" k
  done;
  Alcotest.(check int) "length" n (Clht.length t)

let test_invalid_key () =
  reset ();
  let t = Clht.create ~capacity:4 () in
  Alcotest.check_raises "zero key" (Invalid_argument "Clht.insert: key must be positive")
    (fun () -> ignore (Clht.insert t 0 1))

(* --- Model-based property test ------------------------------------------- *)

type op = Insert of int * int | Delete of int | Lookup of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun k v -> Insert (k, v)) (int_range 1 200) (int_range 0 1000));
        (2, map (fun k -> Delete k) (int_range 1 200));
        (2, map (fun k -> Lookup k) (int_range 1 200));
      ])

let show_op = function
  | Insert (k, v) -> Printf.sprintf "Insert(%d,%d)" k v
  | Delete k -> Printf.sprintf "Delete %d" k
  | Lookup k -> Printf.sprintf "Lookup %d" k

let prop_matches_model =
  QCheck.Test.make ~name:"clht matches Hashtbl model" ~count:200
    QCheck.(make ~print:(fun l -> String.concat ";" (List.map show_op l))
              (QCheck.Gen.list_size (QCheck.Gen.int_range 0 400) op_gen))
    (fun ops ->
      reset ();
      let t = Clht.create ~capacity:4 () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun op ->
          match op with
          | Insert (k, v) ->
              let fresh = not (Hashtbl.mem model k) in
              if fresh then Hashtbl.replace model k v;
              Clht.insert t k v = fresh
          | Delete k ->
              let present = Hashtbl.mem model k in
              Hashtbl.remove model k;
              Clht.delete t k = present
          | Lookup k -> Clht.lookup t k = Hashtbl.find_opt model k)
        ops
      && Hashtbl.fold (fun k v ok -> ok && Clht.lookup t k = Some v) model true)

(* --- Concurrency ---------------------------------------------------------- *)

let test_concurrent_disjoint_inserts () =
  reset ();
  let t = Clht.create ~capacity:16 () in
  let n_domains = 4 and per = 10_000 in
  let body d () =
    for i = 0 to per - 1 do
      let k = (i * n_domains) + d + 1 in
      if not (Clht.insert t k (k * 2)) then failwith "duplicate?"
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (body d)) in
  List.iter Domain.join ds;
  Alcotest.(check int) "all inserted" (n_domains * per) (Clht.length t);
  for k = 1 to n_domains * per do
    if Clht.lookup t k <> Some (k * 2) then Alcotest.failf "lost key %d" k
  done

let test_concurrent_same_keys () =
  reset ();
  let t = Clht.create ~capacity:16 () in
  let n_domains = 4 and keys = 2_000 in
  let wins = Array.init n_domains (fun _ -> Atomic.make 0) in
  let body d () =
    for k = 1 to keys do
      if Clht.insert t k ((d * 1_000_000) + k) then Atomic.incr wins.(d)
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (body d)) in
  List.iter Domain.join ds;
  let total = Array.fold_left (fun acc w -> acc + Atomic.get w) 0 wins in
  Alcotest.(check int) "exactly one winner per key" keys total;
  for k = 1 to keys do
    match Clht.lookup t k with
    | Some v -> Alcotest.(check int) "value is a winner's" k (v mod 1_000_000)
    | None -> Alcotest.failf "lost key %d" k
  done

let test_concurrent_reads_during_writes () =
  reset ();
  let t = Clht.create ~capacity:16 () in
  for k = 1 to 1_000 do
    ignore (Clht.insert t k k)
  done;
  let stop = Atomic.make false in
  let reader () =
    let r = Util.Rng.create 99 in
    let bad = ref 0 in
    while not (Atomic.get stop) do
      let k = 1 + Util.Rng.below r 1_000 in
      match Clht.lookup t k with
      | Some v when v = k -> ()
      | Some _ -> incr bad
      | None -> incr bad
    done;
    !bad
  in
  let writer () =
    for k = 1_001 to 20_000 do
      ignore (Clht.insert t k k)
    done;
    0
  in
  let rd = Domain.spawn reader and wd = Domain.spawn writer in
  ignore (Domain.join wd);
  Atomic.set stop true;
  let bad = Domain.join rd in
  Alcotest.(check int) "loaded keys always readable" 0 bad

(* --- Crash consistency (paper §5) ----------------------------------------- *)

(* Enumerate every crash position of an insert; after each crash + recovery
   the index must be consistent: previously inserted keys still readable, and
   the interrupted insert either fully visible or fully absent; re-inserting
   must succeed. *)
let test_crash_every_point_insert () =
  reset ();
  Pmem.Mode.set_shadow true;
  let max_points = 8 in
  for point = 1 to max_points do
    reset ();
    Pmem.Mode.set_shadow true;
    let t = Clht.create ~capacity:4 () in
    for k = 1 to 50 do
      ignore (Clht.insert t k k)
    done;
    Pmem.persist_everything ();
    Pmem.Crash.arm_at point;
    (try ignore (Clht.insert t 999 999) with Pmem.Crash.Simulated_crash -> ());
    Pmem.Crash.disarm ();
    Pmem.simulate_power_failure ();
    Clht.recover t;
    (* All previously persisted keys survive. *)
    for k = 1 to 50 do
      if Clht.lookup t k <> Some k then
        Alcotest.failf "crash point %d lost key %d" point k
    done;
    (* The interrupted key is atomic: absent or fully present. *)
    (match Clht.lookup t 999 with
    | None -> ignore (Clht.insert t 999 999)
    | Some v -> Alcotest.(check int) "committed value" 999 v);
    Alcotest.(check (option int)) "post-recovery insert works" (Some 999)
      (Clht.lookup t 999)
  done;
  Pmem.Mode.set_shadow false

(* Crash in the middle of a resize: the table pointer swap is the commit
   point, so either the old or the new table is current and no key is lost. *)
let test_crash_during_resize () =
  for point = 1 to 3 do
    reset ();
    Pmem.Mode.set_shadow true;
    let t = Clht.create ~capacity:4 () in
    (* Fill up to just below the resize trigger (4 buckets * 3 slots * 3/4 = 9). *)
    for k = 1 to 9 do
      ignore (Clht.insert t k k)
    done;
    Pmem.persist_everything ();
    Pmem.Crash.arm_at point;
    (* This insert trips the resize. *)
    (try ignore (Clht.insert t 1000 1000) with Pmem.Crash.Simulated_crash -> ());
    Pmem.Crash.disarm ();
    Pmem.simulate_power_failure ();
    Clht.recover t;
    for k = 1 to 9 do
      if Clht.lookup t k <> Some k then
        Alcotest.failf "resize crash point %d lost key %d" point k
    done;
    (* Writes after recovery must work, including completing another resize. *)
    for k = 2000 to 2100 do
      ignore (Clht.insert t k k)
    done;
    for k = 2000 to 2100 do
      if Clht.lookup t k <> Some k then
        Alcotest.failf "post-recovery insert lost %d" k
    done
  done;
  Pmem.Mode.set_shadow false

(* --- Durability (paper §5): no dirty lines at operation boundaries -------- *)

let test_durability_no_dirty_lines () =
  reset ();
  Pmem.Mode.set_shadow true;
  let t = Clht.create ~capacity:4 () in
  Alcotest.(check int) "clean after create" 0 (Pmem.dirty_count ());
  for k = 1 to 200 do
    ignore (Clht.insert t k k);
    let d = Pmem.dirty_count () in
    if d <> 0 then
      Alcotest.failf "dirty lines after insert %d: %s" k
        (String.concat "," (Pmem.dirty_objects ()))
  done;
  for k = 1 to 200 do
    ignore (Clht.delete t k);
    if Pmem.dirty_count () <> 0 then Alcotest.failf "dirty after delete %d" k
  done;
  Pmem.Mode.set_shadow false

let () =
  Alcotest.run "clht"
    [
      ( "sequential",
        [
          Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "chain overflow" `Quick test_chain_overflow;
          Alcotest.test_case "resize preserves" `Quick test_resize_preserves_contents;
          Alcotest.test_case "invalid key" `Quick test_invalid_key;
        ] );
      ("model", [ QCheck_alcotest.to_alcotest prop_matches_model ]);
      ( "concurrent",
        [
          Alcotest.test_case "disjoint inserts" `Quick test_concurrent_disjoint_inserts;
          Alcotest.test_case "same keys" `Quick test_concurrent_same_keys;
          Alcotest.test_case "reads during writes" `Quick
            test_concurrent_reads_during_writes;
        ] );
      ( "crash",
        [
          Alcotest.test_case "every insert point" `Quick test_crash_every_point_insert;
          Alcotest.test_case "during resize" `Quick test_crash_during_resize;
        ] );
      ( "durability",
        [ Alcotest.test_case "no dirty lines" `Quick test_durability_no_dirty_lines ] );
    ]
