(* Tests for P-HOT: trie semantics, height optimization, ordered scans with
   pruning, concurrency, crash consistency (Condition #1), durability. *)

(* Under RECIPE_SANITIZE (the @sanitize alias) the whole suite runs with
   the psan sanitizer enabled and must produce zero diagnostics. *)
let () = Harness.Sanitize_env.init ()


let reset () =
  Pmem.Mode.set_shadow false;
  Pmem.Llc.set_enabled false;
  Pmem.Crash.disarm ();
  ignore (Pmem.persist_everything ());
  Pmem.Stats.reset ();
  Util.Lock.new_epoch ()

let k = Util.Keys.encode_int

let test_insert_lookup () =
  reset ();
  let t = Hot.create () in
  Alcotest.(check bool) "insert" true (Hot.insert t (k 1) 10);
  Alcotest.(check bool) "dup" false (Hot.insert t (k 1) 20);
  Alcotest.(check (option int)) "lookup" (Some 10) (Hot.lookup t (k 1));
  Alcotest.(check (option int)) "missing" None (Hot.lookup t (k 2))

let test_bulk_random () =
  reset ();
  let t = Hot.create () in
  let r = Util.Rng.create 12 in
  let keys = Array.init 10_000 (fun _ -> Util.Rng.key r) in
  Array.iter (fun key -> ignore (Hot.insert t (k key) (key land 0xFFFF))) keys;
  Array.iter
    (fun key ->
      if Hot.lookup t (k key) <> Some (key land 0xFFFF) then
        Alcotest.failf "lost %d" key)
    keys

let test_height_optimized () =
  reset ();
  let t = Hot.create () in
  let r = Util.Rng.create 2 in
  for _ = 1 to 10_000 do
    ignore (Hot.insert t (k (Util.Rng.key r)) 1)
  done;
  (* 10K random 62-bit keys: a binary trie would be ~ 14+ deep in crit-bit
     nodes; packing 5 levels per physical node should stay near
     ceil(14/5)+slack.  Assert a generous bound that still proves fanout
     packing works. *)
  let h = Hot.height t in
  Alcotest.(check bool) (Printf.sprintf "height %d <= 8" h) true (h <= 8)

let test_dense_keys () =
  reset ();
  let t = Hot.create () in
  for i = 0 to 4_999 do
    ignore (Hot.insert t (k i) i)
  done;
  for i = 0 to 4_999 do
    if Hot.lookup t (k i) <> Some i then Alcotest.failf "lost %d" i
  done

let test_string_keys () =
  reset ();
  let t = Hot.create () in
  for i = 1 to 3_000 do
    ignore (Hot.insert t (Util.Keys.string_key i) i)
  done;
  for i = 1 to 3_000 do
    if Hot.lookup t (Util.Keys.string_key i) <> Some i then
      Alcotest.failf "lost string key %d" i
  done

let test_update () =
  reset ();
  let t = Hot.create () in
  for i = 1 to 300 do
    ignore (Hot.insert t (k i) i)
  done;
  Alcotest.(check bool) "update existing" true (Hot.update t (k 42) 4242);
  Alcotest.(check (option int)) "new value" (Some 4242) (Hot.lookup t (k 42));
  Alcotest.(check bool) "update absent" false (Hot.update t (k 9_999) 1);
  for i = 1 to 300 do
    if i <> 42 && Hot.lookup t (k i) <> Some i then
      Alcotest.failf "update disturbed %d" i
  done

let test_delete () =
  reset ();
  let t = Hot.create () in
  for i = 1 to 400 do
    ignore (Hot.insert t (k i) i)
  done;
  for i = 1 to 400 do
    if i mod 2 = 0 then Alcotest.(check bool) "delete" true (Hot.delete t (k i))
  done;
  for i = 1 to 400 do
    let expect = if i mod 2 = 0 then None else Some i in
    Alcotest.(check (option int)) "after delete" expect (Hot.lookup t (k i))
  done;
  Alcotest.(check bool) "delete absent" false (Hot.delete t (k 2));
  for i = 1 to 400 do
    if i mod 2 = 0 then
      Alcotest.(check bool) "reinsert" true (Hot.insert t (k i) (i * 7))
  done;
  for i = 2 to 400 do
    if i mod 2 = 0 && Hot.lookup t (k i) <> Some (i * 7) then
      Alcotest.failf "reinsert lost %d" i
  done

let test_scan_sorted () =
  reset ();
  let t = Hot.create () in
  let r = Util.Rng.create 3 in
  let keys = Array.init 2_000 (fun i -> (i * 5) + 2 ) in
  Util.Rng.shuffle r keys;
  Array.iter (fun key -> ignore (Hot.insert t (k key) key)) keys;
  let seen = ref [] in
  let n = Hot.scan t (k 1_000) 30 (fun key v -> seen := (key, v) :: !seen) in
  Alcotest.(check int) "scan count" 30 n;
  let seen = List.rev !seen in
  (* First key >= 1000 in the 5i+2 sequence is 1002. *)
  List.iteri
    (fun i (key, v) ->
      let expect = 1002 + (5 * i) in
      Alcotest.(check int) "scan value" expect v;
      Alcotest.(check string) "scan key" (k expect) key)
    seen

let test_range () =
  reset ();
  let t = Hot.create () in
  for i = 1 to 500 do
    ignore (Hot.insert t (k i) i)
  done;
  let rs = Hot.range t (k 200) (k 230) in
  Alcotest.(check int) "range size" 30 (List.length rs);
  Alcotest.(check int) "first" 200 (snd (List.hd rs))

let prop_matches_model =
  QCheck.Test.make ~name:"hot matches Hashtbl model" ~count:60
    QCheck.(
      make
        ~print:(fun l ->
          String.concat ";"
            (List.map (fun (op, key) -> Printf.sprintf "%d:%d" op key) l))
        (QCheck.Gen.list_size (QCheck.Gen.int_range 0 400)
           (QCheck.Gen.pair (QCheck.Gen.int_range 0 2) (QCheck.Gen.int_range 1 200))))
    (fun ops ->
      reset ();
      let t = Hot.create () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (op, key) ->
          match op with
          | 0 ->
              let fresh = not (Hashtbl.mem model key) in
              if fresh then Hashtbl.replace model key (key * 3);
              Hot.insert t (k key) (key * 3) = fresh
          | 1 ->
              let present = Hashtbl.mem model key in
              Hashtbl.remove model key;
              Hot.delete t (k key) = present
          | _ -> Hot.lookup t (k key) = Hashtbl.find_opt model key)
        ops)

(* qcheck: scan returns exactly the sorted bindings >= start. *)
let prop_scan_sorted =
  QCheck.Test.make ~name:"hot scan = sorted model tail" ~count:40
    QCheck.(
      make
        ~print:(fun (keys, s) ->
          Printf.sprintf "start=%d keys=%s" s
            (String.concat "," (List.map string_of_int keys)))
        (QCheck.Gen.pair
           (QCheck.Gen.list_size (QCheck.Gen.int_range 0 200) (QCheck.Gen.int_range 1 500))
           (QCheck.Gen.int_range 1 500)))
    (fun (keys, s) ->
      reset ();
      let t = Hot.create () in
      List.iter (fun key -> ignore (Hot.insert t (k key) key)) keys;
      let expected =
        List.sort_uniq compare (List.filter (fun x -> x >= s) keys)
      in
      let got = ref [] in
      ignore (Hot.scan t (k s) max_int (fun _ v -> got := v :: !got));
      List.rev !got = expected)

let test_concurrent_inserts () =
  reset ();
  let t = Hot.create () in
  let n_domains = 4 and per = 4_000 in
  let body d () =
    for i = 0 to per - 1 do
      let key = (i * n_domains) + d + 1 in
      ignore (Hot.insert t (k key) key)
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (body d)) in
  List.iter Domain.join ds;
  for key = 1 to n_domains * per do
    if Hot.lookup t (k key) <> Some key then Alcotest.failf "lost %d" key
  done

let test_concurrent_readers_writers () =
  reset ();
  let t = Hot.create () in
  for i = 1 to 2_000 do
    ignore (Hot.insert t (k i) i)
  done;
  let stop = Atomic.make false in
  let reader () =
    let r = Util.Rng.create 19 in
    let bad = ref 0 in
    while not (Atomic.get stop) do
      let key = 1 + Util.Rng.below r 2_000 in
      if Hot.lookup t (k key) <> Some key then incr bad
    done;
    !bad
  in
  let writer () =
    let r = Util.Rng.create 23 in
    for _ = 1 to 15_000 do
      ignore (Hot.insert t (k (Util.Rng.key r)) 1)
    done;
    0
  in
  let rd = Domain.spawn reader and wd = Domain.spawn writer in
  ignore (Domain.join wd);
  Atomic.set stop true;
  Alcotest.(check int) "stable keys always readable" 0 (Domain.join rd)

(* Condition #1: a crash at any point leaves either the old or the new
   state; no recovery logic beyond lock re-initialization. *)
let test_crash_campaign () =
  for point = 1 to 60 do
    reset ();
    Pmem.Mode.set_shadow true;
    let t = Hot.create () in
    let r = Util.Rng.create 42 in
    let loaded = Array.init 300 (fun _ -> Util.Rng.key r) in
    Array.iter (fun key -> ignore (Hot.insert t (k key) key)) loaded;
    Pmem.persist_everything ();
    Pmem.Crash.arm_at point;
    (try
       for _ = 1 to 200 do
         ignore (Hot.insert t (k (Util.Rng.key r)) 7)
       done;
       Pmem.Crash.disarm ()
     with Pmem.Crash.Simulated_crash -> ());
    Pmem.simulate_power_failure ();
    Hot.recover t;
    Array.iter
      (fun key ->
        if Hot.lookup t (k key) <> Some key then
          Alcotest.failf "crash point %d lost key %d" point key)
      loaded;
    (* Post-recovery writes work. *)
    for i = 1 to 100 do
      ignore (Hot.insert t (k (1 lsl 40 lor i)) i);
      if Hot.lookup t (k (1 lsl 40 lor i)) <> Some i then
        Alcotest.failf "post-crash insert broken at point %d" point
    done
  done;
  Pmem.Mode.set_shadow false

let test_durability () =
  reset ();
  Pmem.Mode.set_shadow true;
  let t = Hot.create () in
  Alcotest.(check int) "clean after create" 0 (Pmem.dirty_count ());
  let r = Util.Rng.create 31 in
  for i = 1 to 1_500 do
    ignore (Hot.insert t (k (Util.Rng.key r)) i);
    if Pmem.dirty_count () <> 0 then
      Alcotest.failf "dirty lines after insert %d: %s" i
        (String.concat "," (Pmem.dirty_objects ()))
  done;
  for i = 1 to 200 do
    ignore (Hot.insert t (k i) i);
    ignore (Hot.delete t (k i));
    if Pmem.dirty_count () <> 0 then Alcotest.failf "dirty after delete %d" i
  done;
  Pmem.Mode.set_shadow false

let () =
  Alcotest.run "hot"
    [
      ( "sequential",
        [
          Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
          Alcotest.test_case "bulk random" `Quick test_bulk_random;
          Alcotest.test_case "height optimized" `Quick test_height_optimized;
          Alcotest.test_case "dense keys" `Quick test_dense_keys;
          Alcotest.test_case "string keys" `Quick test_string_keys;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "scan sorted" `Quick test_scan_sorted;
          Alcotest.test_case "range" `Quick test_range;
        ] );
      ( "model",
        [
          QCheck_alcotest.to_alcotest prop_matches_model;
          QCheck_alcotest.to_alcotest prop_scan_sorted;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "inserts" `Quick test_concurrent_inserts;
          Alcotest.test_case "readers+writers" `Quick test_concurrent_readers_writers;
        ] );
      ("crash", [ Alcotest.test_case "campaign" `Quick test_crash_campaign ]);
      ("durability", [ Alcotest.test_case "no dirty lines" `Quick test_durability ]);
    ]
