(* Tests for P-BwTree: delta-chain semantics, consolidation, splits with
   helping, lock-free concurrency, crash consistency, durability. *)

(* Under RECIPE_SANITIZE (the @sanitize alias) the whole suite runs with
   the psan sanitizer enabled and must produce zero diagnostics. *)
let () = Harness.Sanitize_env.init ()


let reset () =
  Pmem.Mode.set_shadow false;
  Pmem.Llc.set_enabled false;
  Pmem.Crash.disarm ();
  ignore (Pmem.persist_everything ());
  Pmem.Stats.reset ();
  Util.Lock.new_epoch ()

let k = Util.Keys.encode_int
let bw () = Bwtree.create ~space:(Recipe.Wordkey.int_space ()) ()

let test_insert_lookup () =
  reset ();
  let t = bw () in
  Alcotest.(check bool) "insert" true (Bwtree.insert t (k 1) 10);
  Alcotest.(check bool) "dup" false (Bwtree.insert t (k 1) 20);
  Alcotest.(check (option int)) "lookup" (Some 10) (Bwtree.lookup t (k 1));
  Alcotest.(check (option int)) "missing" None (Bwtree.lookup t (k 2))

let test_bulk_splits () =
  reset ();
  let t = bw () in
  let r = Util.Rng.create 17 in
  let keys = Array.init 20_000 (fun i -> i + 1) in
  Util.Rng.shuffle r keys;
  Array.iter (fun key -> ignore (Bwtree.insert t (k key) (key * 3))) keys;
  Alcotest.(check bool) "consolidations happened" true
    (Bwtree.consolidation_count t > 0);
  Array.iter
    (fun key ->
      if Bwtree.lookup t (k key) <> Some (key * 3) then
        Alcotest.failf "lost %d" key)
    keys

let test_update_shadows () =
  reset ();
  let t = bw () in
  for i = 1 to 2_000 do
    ignore (Bwtree.insert t (k i) i)
  done;
  (* Updates shadow older deltas and survive consolidation. *)
  for round = 1 to 3 do
    for i = 1 to 2_000 do
      if i mod 5 = 0 then
        Alcotest.(check bool) "update" true (Bwtree.update t (k i) (i * round))
    done
  done;
  Alcotest.(check bool) "update absent" false (Bwtree.update t (k 99_999) 1);
  for i = 1 to 2_000 do
    let expect = if i mod 5 = 0 then Some (i * 3) else Some i in
    if Bwtree.lookup t (k i) <> expect then Alcotest.failf "bad value at %d" i
  done

let test_delete_tombstones () =
  reset ();
  let t = bw () in
  for i = 1 to 1_000 do
    ignore (Bwtree.insert t (k i) i)
  done;
  for i = 1 to 1_000 do
    if i mod 2 = 0 then
      Alcotest.(check bool) "delete" true (Bwtree.delete t (k i))
  done;
  for i = 1 to 1_000 do
    let expect = if i mod 2 = 0 then None else Some i in
    Alcotest.(check (option int)) "after delete" expect (Bwtree.lookup t (k i))
  done;
  Alcotest.(check bool) "delete absent" false (Bwtree.delete t (k 2));
  for i = 1 to 1_000 do
    if i mod 2 = 0 then
      Alcotest.(check bool) "reinsert" true (Bwtree.insert t (k i) (i * 5))
  done;
  for i = 2 to 1_000 do
    if i mod 2 = 0 && Bwtree.lookup t (k i) <> Some (i * 5) then
      Alcotest.failf "reinsert lost %d" i
  done

let test_string_keys () =
  reset ();
  let t = Bwtree.create ~space:(Recipe.Wordkey.string_space ()) () in
  for i = 1 to 3_000 do
    ignore (Bwtree.insert t (Util.Keys.string_key i) i)
  done;
  for i = 1 to 3_000 do
    if Bwtree.lookup t (Util.Keys.string_key i) <> Some i then
      Alcotest.failf "lost string key %d" i
  done

let test_scan_sorted () =
  reset ();
  let t = bw () in
  let r = Util.Rng.create 4 in
  let keys = Array.init 3_000 (fun i -> (i * 2) + 1) in
  Util.Rng.shuffle r keys;
  Array.iter (fun key -> ignore (Bwtree.insert t (k key) key)) keys;
  let seen = ref [] in
  let n = Bwtree.scan t (k 200) 50 (fun key v -> seen := (key, v) :: !seen) in
  Alcotest.(check int) "scan count" 50 n;
  List.iteri
    (fun i (key, v) ->
      let expect = 201 + (2 * i) in
      Alcotest.(check int) "scan value" expect v;
      Alcotest.(check string) "scan key" (k expect) key)
    (List.rev !seen)

let test_range () =
  reset ();
  let t = bw () in
  for i = 1 to 500 do
    ignore (Bwtree.insert t (k i) i)
  done;
  let rs = Bwtree.range t (k 100) (k 150) in
  Alcotest.(check int) "range size" 50 (List.length rs)

let prop_matches_model =
  QCheck.Test.make ~name:"bwtree matches Hashtbl model" ~count:60
    QCheck.(
      make
        ~print:(fun l ->
          String.concat ";"
            (List.map (fun (op, key) -> Printf.sprintf "%d:%d" op key) l))
        (QCheck.Gen.list_size (QCheck.Gen.int_range 0 400)
           (QCheck.Gen.pair (QCheck.Gen.int_range 0 2) (QCheck.Gen.int_range 1 200))))
    (fun ops ->
      reset ();
      let t = bw () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (op, key) ->
          match op with
          | 0 ->
              let fresh = not (Hashtbl.mem model key) in
              if fresh then Hashtbl.replace model key (key * 3);
              Bwtree.insert t (k key) (key * 3) = fresh
          | 1 ->
              let present = Hashtbl.mem model key in
              Hashtbl.remove model key;
              Bwtree.delete t (k key) = present
          | _ -> Bwtree.lookup t (k key) = Hashtbl.find_opt model key)
        ops)

(* --- Concurrency (fully lock-free paths) ---------------------------------------- *)

let test_concurrent_inserts () =
  reset ();
  let t = bw () in
  let n_domains = 4 and per = 5_000 in
  let body d () =
    for i = 0 to per - 1 do
      let key = (i * n_domains) + d + 1 in
      ignore (Bwtree.insert t (k key) key)
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (body d)) in
  List.iter Domain.join ds;
  for key = 1 to n_domains * per do
    if Bwtree.lookup t (k key) <> Some key then Alcotest.failf "lost %d" key
  done

let test_concurrent_same_keys () =
  reset ();
  let t = bw () in
  let n_domains = 4 and keys = 3_000 in
  let wins = Array.init n_domains (fun _ -> Atomic.make 0) in
  let body d () =
    for key = 1 to keys do
      if Bwtree.insert t (k key) ((d * 1_000_000) + key) then
        Atomic.incr wins.(d)
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (body d)) in
  List.iter Domain.join ds;
  let total = Array.fold_left (fun acc w -> acc + Atomic.get w) 0 wins in
  Alcotest.(check int) "one winner per key" keys total;
  for key = 1 to keys do
    match Bwtree.lookup t (k key) with
    | Some v -> Alcotest.(check int) "winner value" key (v mod 1_000_000)
    | None -> Alcotest.failf "lost %d" key
  done

let test_concurrent_readers_writers () =
  reset ();
  let t = bw () in
  for i = 1 to 2_000 do
    ignore (Bwtree.insert t (k i) i)
  done;
  let stop = Atomic.make false in
  let reader () =
    let r = Util.Rng.create 9 in
    let bad = ref 0 in
    while not (Atomic.get stop) do
      let key = 1 + Util.Rng.below r 2_000 in
      if Bwtree.lookup t (k key) <> Some key then incr bad
    done;
    !bad
  in
  let writer () =
    for i = 2_001 to 20_000 do
      ignore (Bwtree.insert t (k i) i)
    done;
    0
  in
  let rd = Domain.spawn reader and wd = Domain.spawn writer in
  ignore (Domain.join wd);
  Atomic.set stop true;
  Alcotest.(check int) "stable keys always readable" 0 (Domain.join rd)

(* --- Crash consistency (Condition #2: helping repairs) ----------------------------- *)

let test_crash_campaign () =
  let helps = ref 0 in
  for point = 1 to 80 do
    reset ();
    Pmem.Mode.set_shadow true;
    let t = bw () in
    for key = 1 to 400 do
      ignore (Bwtree.insert t (k key) key)
    done;
    Pmem.persist_everything ();
    Pmem.Crash.arm_at point;
    (try
       for key = 401 to 2_000 do
         ignore (Bwtree.insert t (k key) key)
       done;
       Pmem.Crash.disarm ()
     with Pmem.Crash.Simulated_crash -> ());
    Pmem.simulate_power_failure ();
    Bwtree.recover t;
    for key = 1 to 400 do
      if Bwtree.lookup t (k key) <> Some key then
        Alcotest.failf "crash point %d lost key %d" point key
    done;
    (* Post-crash writes trigger the helping mechanism where needed. *)
    for key = 10_001 to 10_400 do
      ignore (Bwtree.insert t (k key) key);
      if Bwtree.lookup t (k key) <> Some key then
        Alcotest.failf "post-crash insert broken at point %d" point
    done;
    helps := !helps + Bwtree.help_count t
  done;
  Pmem.Mode.set_shadow false;
  ignore !helps

let test_durability () =
  reset ();
  Pmem.Mode.set_shadow true;
  let t = bw () in
  Alcotest.(check int) "clean after create" 0 (Pmem.dirty_count ());
  let r = Util.Rng.create 7 in
  for i = 1 to 2_000 do
    ignore (Bwtree.insert t (k (Util.Rng.key r)) i);
    if Pmem.dirty_count () <> 0 then
      Alcotest.failf "dirty lines after insert %d: %s" i
        (String.concat "," (Pmem.dirty_objects ()))
  done;
  for i = 1 to 300 do
    ignore (Bwtree.insert t (k i) i);
    ignore (Bwtree.delete t (k i));
    if Pmem.dirty_count () <> 0 then Alcotest.failf "dirty after delete %d" i
  done;
  Pmem.Mode.set_shadow false

let () =
  Alcotest.run "bwtree"
    [
      ( "sequential",
        [
          Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
          Alcotest.test_case "bulk splits" `Quick test_bulk_splits;
          Alcotest.test_case "update shadows" `Quick test_update_shadows;
          Alcotest.test_case "delete tombstones" `Quick test_delete_tombstones;
          Alcotest.test_case "string keys" `Quick test_string_keys;
          Alcotest.test_case "scan sorted" `Quick test_scan_sorted;
          Alcotest.test_case "range" `Quick test_range;
        ] );
      ("model", [ QCheck_alcotest.to_alcotest prop_matches_model ]);
      ( "concurrent",
        [
          Alcotest.test_case "inserts" `Quick test_concurrent_inserts;
          Alcotest.test_case "same keys" `Quick test_concurrent_same_keys;
          Alcotest.test_case "readers+writers" `Quick test_concurrent_readers_writers;
        ] );
      ("crash", [ Alcotest.test_case "campaign" `Quick test_crash_campaign ]);
      ("durability", [ Alcotest.test_case "no dirty lines" `Quick test_durability ]);
    ]
