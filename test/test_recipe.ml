(* Tests for the recipe core library: Persist combinators (flush counting in
   naive vs coalesced mode), Wordkey spaces, and the Condition taxonomy. *)

let reset () =
  Pmem.Mode.set_shadow false;
  Pmem.Crash.disarm ();
  ignore (Pmem.persist_everything ());
  Recipe.Persist.set_naive false;
  Pmem.Stats.reset ()

(* --- Persist combinators -------------------------------------------------- *)

let clwb_count () = (Pmem.Stats.snapshot ()).Pmem.Stats.s_clwb
let sfence_count () = (Pmem.Stats.snapshot ()).Pmem.Stats.s_sfence

let test_coalesced_store_does_not_flush () =
  reset ();
  let w = Pmem.Words.make 8 0 in
  Pmem.Stats.reset ();
  Recipe.Persist.store w 0 1;
  Recipe.Persist.store w 1 2;
  Alcotest.(check int) "no flush for plain stores" 0 (clwb_count ());
  Recipe.Persist.commit w 2 3;
  Alcotest.(check int) "commit flushes once" 1 (clwb_count ());
  Alcotest.(check int) "commit fences once" 1 (sfence_count ())

let test_naive_store_flushes () =
  reset ();
  let w = Pmem.Words.make 8 0 in
  Recipe.Persist.set_naive true;
  Pmem.Stats.reset ();
  Recipe.Persist.store w 0 1;
  Recipe.Persist.store w 1 2;
  Alcotest.(check int) "naive mode flushes every store" 2 (clwb_count ());
  Alcotest.(check int) "and fences every store" 2 (sfence_count ());
  Recipe.Persist.set_naive false

let test_commit_cas_flushes_only_on_success () =
  reset ();
  let r = Pmem.Refs.make ~atomic:true 1 "a" in
  Pmem.Stats.reset ();
  let ok = Recipe.Persist.commit_cas_ref r 0 ~expected:"a" ~desired:"b" in
  Alcotest.(check bool) "cas won" true ok;
  Alcotest.(check int) "winning cas flushes" 1 (clwb_count ());
  let ok2 = Recipe.Persist.commit_cas_ref r 0 ~expected:"a" ~desired:"c" in
  Alcotest.(check bool) "cas lost" false ok2;
  Alcotest.(check int) "losing cas does not flush (§6.3)" 1 (clwb_count ())

(* --- Wordkey spaces --------------------------------------------------------- *)

let test_int_space () =
  reset ();
  let ks = Recipe.Wordkey.int_space () in
  let w = ks.Recipe.Wordkey.intern (Util.Keys.encode_int 12345) in
  Alcotest.(check int) "intern decodes" 12345 w;
  Alcotest.(check string) "to_key" (Util.Keys.encode_int 12345)
    (ks.Recipe.Wordkey.to_key w);
  Alcotest.(check int) "probe compare eq" 0
    (ks.Recipe.Wordkey.compare_probe (Util.Keys.encode_int 12345) w);
  Alcotest.(check bool) "probe compare lt" true
    (ks.Recipe.Wordkey.compare_probe (Util.Keys.encode_int 3) w < 0);
  Alcotest.(check bool) "word compare" true
    (ks.Recipe.Wordkey.compare_words 3 12345 < 0)

let test_string_space () =
  reset ();
  let ks = Recipe.Wordkey.string_space () in
  let wa = ks.Recipe.Wordkey.intern "alpha" in
  let wb = ks.Recipe.Wordkey.intern "beta" in
  Alcotest.(check string) "to_key a" "alpha" (ks.Recipe.Wordkey.to_key wa);
  Alcotest.(check string) "to_key b" "beta" (ks.Recipe.Wordkey.to_key wb);
  Alcotest.(check bool) "words ordered by string" true
    (ks.Recipe.Wordkey.compare_words wa wb < 0);
  Alcotest.(check int) "probe eq" 0 (ks.Recipe.Wordkey.compare_probe "beta" wb);
  (* Interning goes through the persistent pool: it must flush. *)
  Pmem.Stats.reset ();
  ignore (ks.Recipe.Wordkey.intern "gamma");
  Alcotest.(check bool) "pool append flushes" true (clwb_count () >= 1)

let prop_string_space_order =
  QCheck.Test.make ~name:"string space preserves order" ~count:300
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 30))
              (string_of_size (QCheck.Gen.int_range 0 30)))
    (fun (a, b) ->
      let ks = Recipe.Wordkey.string_space () in
      let wa = ks.Recipe.Wordkey.intern a and wb = ks.Recipe.Wordkey.intern b in
      let sign x = compare x 0 in
      sign (ks.Recipe.Wordkey.compare_words wa wb) = sign (String.compare a b))

(* --- Condition taxonomy ------------------------------------------------------- *)

let test_taxonomy_table () =
  Alcotest.(check int) "five converted indexes" 5
    (List.length Recipe.Condition.converted);
  (* Table 2 invariants from the paper. *)
  List.iter
    (fun e ->
      let open Recipe.Condition in
      Alcotest.(check bool) (e.name ^ ": readers non-blocking") true
        (e.reader = Non_blocking);
      Alcotest.(check bool) (e.name ^ ": non-SMO is #1") true (e.non_smo = C1))
    Recipe.Condition.converted;
  (match Recipe.Condition.find "BwTree" with
  | Some e ->
      Alcotest.(check bool) "BwTree writer non-blocking" true
        (e.Recipe.Condition.writer = Recipe.Condition.Non_blocking);
      Alcotest.(check bool) "BwTree SMO #2" true
        (e.Recipe.Condition.smo = Recipe.Condition.C2)
  | None -> Alcotest.fail "BwTree missing");
  (match Recipe.Condition.find "P-ART" with
  | Some e ->
      Alcotest.(check bool) "ART SMO #3" true
        (e.Recipe.Condition.smo = Recipe.Condition.C3)
  | None -> Alcotest.fail "P-ART missing")

let () =
  Alcotest.run "recipe"
    [
      ( "persist",
        [
          Alcotest.test_case "coalesced stores" `Quick
            test_coalesced_store_does_not_flush;
          Alcotest.test_case "naive mode" `Quick test_naive_store_flushes;
          Alcotest.test_case "cas flush on success only" `Quick
            test_commit_cas_flushes_only_on_success;
        ] );
      ( "wordkey",
        [
          Alcotest.test_case "int space" `Quick test_int_space;
          Alcotest.test_case "string space" `Quick test_string_space;
          QCheck_alcotest.to_alcotest prop_string_space_order;
        ] );
      ("taxonomy", [ Alcotest.test_case "tables 1&2" `Quick test_taxonomy_table ]);
    ]
