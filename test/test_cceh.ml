(* Tests for the CCEH baseline: semantics, segment splits, directory
   doubling, concurrency, crash recovery normalization, and the §3
   directory-doubling bug reproduction. *)

(* Under RECIPE_SANITIZE (the @sanitize alias) the whole suite runs with
   the psan sanitizer enabled and must produce zero diagnostics. *)
let () = Harness.Sanitize_env.init ()


let reset () =
  Pmem.Mode.set_shadow false;
  Pmem.Llc.set_enabled false;
  Pmem.Crash.disarm ();
  ignore (Pmem.persist_everything ());
  Pmem.Stats.reset ();
  Util.Lock.new_epoch ()

(* --- Sequential ---------------------------------------------------------- *)

let test_insert_lookup () =
  reset ();
  let t = Cceh.create ~capacity:128 () in
  Alcotest.(check bool) "insert" true (Cceh.insert t 42 420);
  Alcotest.(check bool) "dup" false (Cceh.insert t 42 999);
  Alcotest.(check (option int)) "lookup" (Some 420) (Cceh.lookup t 42);
  Alcotest.(check (option int)) "missing" None (Cceh.lookup t 43)

let test_delete () =
  reset ();
  let t = Cceh.create ~capacity:128 () in
  ignore (Cceh.insert t 7 70);
  Alcotest.(check bool) "delete" true (Cceh.delete t 7);
  Alcotest.(check (option int)) "gone" None (Cceh.lookup t 7);
  Alcotest.(check bool) "delete absent" false (Cceh.delete t 7);
  Alcotest.(check bool) "reinsert" true (Cceh.insert t 7 71);
  Alcotest.(check (option int)) "new value" (Some 71) (Cceh.lookup t 7)

let test_splits_and_doubling () =
  reset ();
  let t = Cceh.create ~capacity:128 () in
  let d0 = Cceh.global_depth t in
  let r = Util.Rng.create 7 in
  let n = 30_000 in
  let keys = Array.init n (fun _ -> Util.Rng.key r) in
  Array.iter (fun k -> ignore (Cceh.insert t k (k land 0xFFFF))) keys;
  Alcotest.(check bool) "splits happened" true (Cceh.split_count t > 0);
  Alcotest.(check bool) "directory doubled" true (Cceh.global_depth t > d0);
  Array.iter
    (fun k ->
      if Cceh.lookup t k <> Some (k land 0xFFFF) then Alcotest.failf "lost %d" k)
    keys

let prop_matches_model =
  QCheck.Test.make ~name:"cceh matches Hashtbl model" ~count:100
    QCheck.(
      make
        ~print:(fun l ->
          String.concat ";"
            (List.map (fun (op, key) -> Printf.sprintf "%d:%d" op key) l))
        (QCheck.Gen.list_size (QCheck.Gen.int_range 0 400)
           (QCheck.Gen.pair (QCheck.Gen.int_range 0 2) (QCheck.Gen.int_range 1 300))))
    (fun ops ->
      reset ();
      let t = Cceh.create ~capacity:128 () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (op, key) ->
          match op with
          | 0 ->
              let fresh = not (Hashtbl.mem model key) in
              if fresh then Hashtbl.replace model key (key * 3);
              Cceh.insert t key (key * 3) = fresh
          | 1 ->
              let present = Hashtbl.mem model key in
              Hashtbl.remove model key;
              Cceh.delete t key = present
          | _ -> Cceh.lookup t key = Hashtbl.find_opt model key)
        ops)

(* --- Concurrency ---------------------------------------------------------- *)

let test_concurrent_inserts () =
  reset ();
  let t = Cceh.create ~capacity:128 () in
  let n_domains = 4 and per = 8_000 in
  let body d () =
    for i = 0 to per - 1 do
      let k = (i * n_domains) + d + 1 in
      ignore (Cceh.insert t k k)
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (body d)) in
  List.iter Domain.join ds;
  for k = 1 to n_domains * per do
    if Cceh.lookup t k <> Some k then Alcotest.failf "lost %d" k
  done

let test_concurrent_readers_during_splits () =
  reset ();
  let t = Cceh.create ~capacity:128 () in
  for k = 1 to 2_000 do
    ignore (Cceh.insert t k k)
  done;
  let stop = Atomic.make false in
  let reader () =
    let r = Util.Rng.create 13 in
    let bad = ref 0 in
    while not (Atomic.get stop) do
      let k = 1 + Util.Rng.below r 2_000 in
      if Cceh.lookup t k <> Some k then incr bad
    done;
    !bad
  in
  let writer () =
    for k = 2_001 to 30_000 do
      ignore (Cceh.insert t k k)
    done;
    0
  in
  let rd = Domain.spawn reader and wd = Domain.spawn writer in
  ignore (Domain.join wd);
  Atomic.set stop true;
  Alcotest.(check int) "stable keys readable across splits" 0 (Domain.join rd)

(* --- Crash recovery -------------------------------------------------------- *)

(* Crash at every point of a split-heavy insert burst; after recovery no
   previously-persisted key may be lost and writes must proceed. *)
let test_crash_split_recovery () =
  let campaign_points = 80 in
  for point = 1 to campaign_points do
    reset ();
    Pmem.Mode.set_shadow true;
    let t = Cceh.create ~capacity:128 () in
    for k = 1 to 400 do
      ignore (Cceh.insert t k k)
    done;
    Pmem.persist_everything ();
    Pmem.Crash.arm_at point;
    (try
       for k = 401 to 2_000 do
         ignore (Cceh.insert t k k)
       done;
       Pmem.Crash.disarm ()
     with Pmem.Crash.Simulated_crash -> ());
    Pmem.simulate_power_failure ();
    Cceh.recover t;
    for k = 1 to 400 do
      if Cceh.lookup t k <> Some k then
        Alcotest.failf "crash point %d lost key %d" point k
    done;
    ignore (Cceh.insert t 1_000_000 1);
    if Cceh.lookup t 1_000_000 <> Some 1 then
      Alcotest.failf "post-recovery insert broken at point %d" point
  done;
  Pmem.Mode.set_shadow false

(* The §3 doubling bug: the deterministic crash-point sweep must find the
   state (between the directory-pointer and global-depth commits) after
   which operations stall. *)
let test_crash_doubling_bug () =
  reset ();
  let make () =
    let t = Cceh.create ~bug_doubling:true ~capacity:128 () in
    {
      Crashtest.sname = "CCEH(buggy)";
      insert = (fun k v -> Cceh.insert t k v);
      lookup = (fun k -> Cceh.lookup t k);
      recover = (fun () -> Cceh.recover t);
      scan_all = None;
      sweep = Some (fun () -> Cceh.leak_sweep ~reclaim:true t);
    }
  in
  let r = Crashtest.sweep ~make ~points:20_000 ~stride:1 ~load:3_000 () in
  Alcotest.(check bool) "doubling bug produces a stall" true
    (r.Crashtest.stalled > 0);
  (* This test *wants* the bug; under @sanitize, drop the diagnostics the
     buggy variant rightly produced so the at-exit zero check stays clean. *)
  Obs.Diag.clear ()

(* Fixed version: same campaign must never stall. *)
let test_no_stall_when_fixed () =
  for point = 1 to 40 do
    reset ();
    Pmem.Mode.set_shadow true;
    let t = Cceh.create ~capacity:128 () in
    Pmem.Crash.arm_at (point * 53);
    (try
       let r = Util.Rng.create 22 in
       for _ = 1 to 20_000 do
         ignore (Cceh.insert t (Util.Rng.key r) 1)
       done;
       Pmem.Crash.disarm ()
     with Pmem.Crash.Simulated_crash -> ());
    Pmem.simulate_power_failure ();
    (try
       Cceh.recover t;
       ignore (Cceh.insert t 999_999 1)
     with Cceh.Stalled -> Alcotest.fail "fixed CCEH must never stall")
  done;
  Pmem.Mode.set_shadow false

(* --- Durability -------------------------------------------------------------- *)

let test_durability () =
  reset ();
  Pmem.Mode.set_shadow true;
  let t = Cceh.create ~capacity:128 () in
  Alcotest.(check int) "clean after create" 0 (Pmem.dirty_count ());
  let r = Util.Rng.create 31 in
  for i = 1 to 3_000 do
    ignore (Cceh.insert t (Util.Rng.key r) i);
    if Pmem.dirty_count () <> 0 then
      Alcotest.failf "dirty lines after insert %d: %s" i
        (String.concat "," (Pmem.dirty_objects ()))
  done;
  Pmem.Mode.set_shadow false

let () =
  Alcotest.run "cceh"
    [
      ( "sequential",
        [
          Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "splits+doubling" `Quick test_splits_and_doubling;
        ] );
      ("model", [ QCheck_alcotest.to_alcotest prop_matches_model ]);
      ( "concurrent",
        [
          Alcotest.test_case "inserts" `Quick test_concurrent_inserts;
          Alcotest.test_case "reads during splits" `Quick
            test_concurrent_readers_during_splits;
        ] );
      ( "crash",
        [
          Alcotest.test_case "split recovery" `Quick test_crash_split_recovery;
          Alcotest.test_case "doubling bug stalls" `Quick test_crash_doubling_bug;
          Alcotest.test_case "fixed never stalls" `Quick test_no_stall_when_fixed;
        ] );
      ("durability", [ Alcotest.test_case "no dirty lines" `Quick test_durability ]);
    ]
