(* Property-based differential testing: random operation tapes applied in
   lockstep to every index subject and a Hashtbl oracle, over a small key
   space so collisions, duplicate inserts and misses are all exercised.
   Two properties:

   - agreement: after a full tape, the subject answers exactly like the
     oracle for every key in the space (present with the same value, or
     absent);
   - crash agreement: a tape interrupted at a random declared crash point,
     power-failed, recovered and leak-swept must preserve every
     acknowledged insert; the only key allowed to differ from the oracle is
     the single in-flight insert (which may or may not have committed), and
     ordered subjects must scan the oracle's keys in order without
     duplicates.

   Tapes are driven by a seeded [Random.State], so every failure replays. *)

let key_space = 80
let value_of k = (k * 13) + 5

let fresh_env () =
  Pmem.Crash.disarm ();
  Pmem.Mode.set_shadow true;
  ignore (Pmem.persist_everything ());
  Util.Lock.new_epoch ()

let teardown () =
  Pmem.Crash.disarm ();
  Pmem.Mode.set_shadow false

let subjects =
  [
    ("P-CLHT", Harness.Subjects.clht);
    ("P-HOT", Harness.Subjects.hot);
    ("P-ART", Harness.Subjects.art);
    ("P-Masstree", Harness.Subjects.masstree);
    ("P-BwTree", Harness.Subjects.bwtree);
    ("FAST&FAIR", fun () -> Harness.Subjects.fastfair ());
    ("CCEH", fun () -> Harness.Subjects.cceh ());
    ("Level", Harness.Subjects.levelhash);
    ("WOART", Harness.Subjects.woart);
  ]

(* One tape op: 60% insert (random key), 40% lookup checked on the spot. *)
let apply_op rng (s : Crashtest.subject) oracle =
  let k = 1 + Random.State.int rng key_space in
  if Random.State.int rng 10 < 6 then begin
    let acked = s.Crashtest.insert k (value_of k) in
    let fresh = not (Hashtbl.mem oracle k) in
    if acked then begin
      if not fresh then
        Alcotest.failf "insert %d acked but oracle already had it" k;
      Hashtbl.replace oracle k (value_of k)
    end
    else if fresh then
      Alcotest.failf "insert %d rejected but oracle does not have it" k
  end
  else
    let expect = Hashtbl.find_opt oracle k in
    let got = s.Crashtest.lookup k in
    if got <> expect then
      Alcotest.failf "lookup %d: oracle %s, index %s" k
        (match expect with Some v -> string_of_int v | None -> "None")
        (match got with Some v -> string_of_int v | None -> "None")

let check_agreement name (s : Crashtest.subject) oracle ~allow =
  for k = 1 to key_space do
    let expect = Hashtbl.find_opt oracle k in
    let got = s.Crashtest.lookup k in
    let ok =
      got = expect
      || (List.mem k allow && (got = None || got = Some (value_of k)))
    in
    if not ok then
      Alcotest.failf "%s: key %d diverged from oracle (oracle %s, index %s)"
        name k
        (match expect with Some v -> string_of_int v | None -> "None")
        (match got with Some v -> string_of_int v | None -> "None")
  done;
  match s.Crashtest.scan_all with
  | None -> ()
  | Some scan ->
      let bindings = scan () in
      let keys = List.map fst bindings in
      if keys <> List.sort_uniq compare keys then
        Alcotest.failf "%s: scan out of order or duplicated" name;
      List.iter
        (fun (k, v) ->
          match Hashtbl.find_opt oracle k with
          | Some ov ->
              if v <> ov then
                Alcotest.failf "%s: scan key %d value %d <> oracle %d" name k
                  v ov
          | None ->
              if not (List.mem k allow && v = value_of k) then
                Alcotest.failf "%s: scan surfaced unknown key %d" name k)
        bindings;
      Hashtbl.iter
        (fun k _ ->
          if not (List.mem k keys) then
            Alcotest.failf "%s: scan missed oracle key %d" name k)
        oracle

let test_tapes_agree () =
  Fun.protect ~finally:teardown (fun () ->
      List.iter
        (fun (name, make) ->
          List.iter
            (fun seed ->
              fresh_env ();
              let rng = Random.State.make [| seed; 77 |] in
              let s = make () in
              let oracle = Hashtbl.create 64 in
              for _ = 1 to 300 do
                apply_op rng s oracle
              done;
              check_agreement name s oracle ~allow:[])
            [ 1; 2; 3 ])
        subjects)

(* Crash the tape at a random declared crash point, recover, verify, then
   keep going on the recovered structure and verify again: recovery must
   hand back a structure that is both correct and still writable. *)
let test_crashed_tapes_agree () =
  Fun.protect ~finally:teardown (fun () ->
      List.iter
        (fun (name, make) ->
          List.iter
            (fun seed ->
              fresh_env ();
              let rng = Random.State.make [| seed; 1234 |] in
              let s = make () in
              let oracle = Hashtbl.create 64 in
              Pmem.Crash.arm_at (1 + Random.State.int rng 400);
              let in_flight = ref [] in
              (try
                 for _ = 1 to 300 do
                   (* Remember the key the op might touch: if the crash
                      lands inside this insert, the key is neither promised
                      present nor promised absent. *)
                   let saved = Random.State.copy rng in
                   let k = 1 + Random.State.int saved key_space in
                   in_flight := [ k ];
                   apply_op rng s oracle;
                   in_flight := []
                 done
               with Pmem.Crash.Simulated_crash -> ());
              Pmem.Crash.disarm ();
              Pmem.simulate_power_failure ();
              s.Crashtest.recover ();
              (match s.Crashtest.sweep with
              | Some sweep -> ignore (sweep ())
              | None -> ());
              check_agreement name s oracle ~allow:!in_flight;
              (* The recovered structure must accept the rest of the tape.
                 The in-flight key's slot may hold an unacked committed
                 binding; drop it from further play to keep the oracle
                 exact. *)
              let rng2 = Random.State.make [| seed; 4321 |] in
              for _ = 1 to 150 do
                let k = 1 + Random.State.int rng2 key_space in
                if not (List.mem k !in_flight) then begin
                  if Random.State.int rng2 10 < 6 then begin
                    let acked = s.Crashtest.insert k (value_of k) in
                    if acked then Hashtbl.replace oracle k (value_of k)
                    else if not (Hashtbl.mem oracle k) then
                      (* Committed-but-unacked leftovers of the crashed op
                         are legal; anything else is a divergence. *)
                      if s.Crashtest.lookup k <> Some (value_of k) then
                        Alcotest.failf
                          "%s: post-recovery insert %d rejected on empty slot"
                          name k
                      else Hashtbl.replace oracle k (value_of k)
                  end
                  else begin
                    let expect = Hashtbl.find_opt oracle k in
                    let got = s.Crashtest.lookup k in
                    if got <> expect then
                      Alcotest.failf "%s: post-recovery lookup %d diverged"
                        name k
                  end
                end
              done;
              check_agreement name s oracle ~allow:!in_flight)
            [ 1; 2; 3 ])
        subjects)

let () =
  Alcotest.run "differential"
    [
      ( "oracle",
        [
          Alcotest.test_case "random tapes agree" `Quick test_tapes_agree;
          Alcotest.test_case "crashed tapes agree after recovery" `Quick
            test_crashed_tapes_agree;
        ] );
    ]
