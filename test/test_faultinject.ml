(* The fault-injection subsystem end to end: the off path costs nothing,
   plans fire deterministically and exactly once, every index survives the
   fault-injected recovery-under-load campaign (including crashes during
   recovery itself), structural recovery repairs deliberately interrupted
   CLHT rehashes and FAST & FAIR splits, and crash campaigns are
   seed-deterministic.  Complements test_crashtest.ml, which drives the
   declared-crash-point campaigns. *)

let fresh_env () =
  Faultinject.disarm ();
  Pmem.Crash.disarm ();
  Pmem.Mode.set_shadow true;
  ignore (Pmem.persist_everything ());
  Util.Lock.new_epoch ()

let teardown () =
  Faultinject.disarm ();
  Pmem.Crash.disarm ();
  Pmem.Mode.set_shadow false

let with_env f = Fun.protect ~finally:teardown (fun () -> fresh_env (); f ())

(* --- the off path -------------------------------------------------------

   With hooks installed but inject mode off, no substrate accessor may call
   them: the seam costs exactly the one bit in the flags test the accessors
   already perform (the mirror of test_psan.ml's off-path assertion). *)

let test_off_path_untouched () =
  Faultinject.disarm ();
  let calls = ref 0 in
  Pmem.Fault.install
    {
      Pmem.Fault.f_alloc = (fun _ -> incr calls);
      f_store = (fun _ _ -> incr calls);
      f_clwb = (fun _ _ -> incr calls);
      f_sfence = (fun _ -> incr calls);
    };
  Fun.protect ~finally:Pmem.Fault.uninstall (fun () ->
      let w = Pmem.Words.make ~name:"fi.off" 32 0 in
      for i = 0 to 31 do
        Pmem.Words.set w i (i + 1)
      done;
      Pmem.Words.clwb w 0;
      Pmem.sfence ();
      let t = Clht.create ~capacity:8 () in
      for k = 1 to 64 do
        ignore (Clht.insert t k k)
      done);
  Alcotest.(check int) "no hook calls with inject off" 0 !calls

(* [count_events] reports the substrate event stream of a closure; two
   identical runs must see identical streams — the foundation of
   deterministic plan positions. *)
let test_count_events_deterministic () =
  with_env (fun () ->
      let run () =
        Faultinject.count_events (fun () ->
            let t = Clht.create ~capacity:8 () in
            for k = 1 to 100 do
              ignore (Clht.insert t k (k * 3))
            done)
      in
      let a = run () and b = run () in
      Alcotest.(check bool)
        "events counted" true
        (a.Faultinject.flushes > 0 && a.Faultinject.fences > 0
        && a.Faultinject.stores > 0 && a.Faultinject.allocs > 0);
      Alcotest.(check bool) "two runs, same stream" true (a = b))

(* --- one-shot plans ------------------------------------------------------ *)

let load_clht ?(n = 100) acked t =
  for k = 1 to n do
    if Clht.insert t k (k * 7) then acked := k :: !acked
  done

(* A flush-position plan fires exactly once, disarms itself, and recovery
   then finds every acknowledged insert (commit combinators flush+fence
   before acking, so the acked set survives any single crash position). *)
let test_flush_plan_fires_once () =
  with_env (fun () ->
      let ev = Faultinject.count_events (fun () -> load_clht (ref []) (Clht.create ~capacity:8 ())) in
      fresh_env ();
      let t = Clht.create ~capacity:8 () in
      let acked = ref [] in
      Faultinject.arm
        (Faultinject.Crash_at_flush { site = None; k = ev.Faultinject.flushes / 2 });
      let before = Faultinject.fire_count () in
      let crashed =
        try load_clht acked t; false
        with Pmem.Crash.Simulated_crash -> true
      in
      Alcotest.(check bool) "plan fired" true crashed;
      Alcotest.(check int) "exactly one fault" (before + 1) (Faultinject.fire_count ());
      Alcotest.(check bool) "one-shot: disarmed after firing" false (Faultinject.armed ());
      Pmem.simulate_power_failure ();
      Clht.recover t;
      List.iter
        (fun k ->
          Alcotest.(check (option int))
            (Printf.sprintf "acked key %d survives" k)
            (Some (k * 7)) (Clht.lookup t k))
        !acked)

(* Allocation failure: the k-th allocation raises before the object exists;
   after disarming, the same construction succeeds. *)
let test_alloc_fail () =
  with_env (fun () ->
      Faultinject.arm (Faultinject.Alloc_fail { k = 1 });
      (match Clht.create ~capacity:8 () with
      | _ -> Alcotest.fail "allocation unexpectedly succeeded"
      | exception Pmem.Fault.Alloc_failed _ -> ());
      Alcotest.(check bool) "one-shot" false (Faultinject.armed ());
      let t = Clht.create ~capacity:8 () in
      ignore (Clht.insert t 1 1);
      Alcotest.(check (option int)) "usable after disarm" (Some 1) (Clht.lookup t 1))

(* Torn line: the chosen flush persists only a store-order prefix of the
   line's pending stores, then crashes.  Recovery must still produce a
   state in which every acknowledged insert reads back correctly. *)
let test_torn_flush_recovers () =
  with_env (fun () ->
      let t = Clht.create ~capacity:8 () in
      let acked = ref [] in
      Faultinject.arm (Faultinject.Torn_flush { k = 17; keep = 1 });
      let crashed =
        try load_clht acked t; false
        with Pmem.Crash.Simulated_crash -> true
      in
      Alcotest.(check bool) "torn plan fired" true crashed;
      Pmem.simulate_power_failure ();
      Clht.recover t;
      List.iter
        (fun k ->
          Alcotest.(check (option int))
            (Printf.sprintf "acked key %d after torn line" k)
            (Some (k * 7)) (Clht.lookup t k))
        !acked)

(* --- recovery under load, all indexes ----------------------------------- *)

let subjects =
  [
    ("P-CLHT", Harness.Subjects.clht);
    ("P-HOT", Harness.Subjects.hot);
    ("P-ART", Harness.Subjects.art);
    ("P-Masstree", Harness.Subjects.masstree);
    ("P-BwTree", Harness.Subjects.bwtree);
    ("FAST&FAIR", fun () -> Harness.Subjects.fastfair ());
    ("CCEH", fun () -> Harness.Subjects.cceh ());
    ("Level", Harness.Subjects.levelhash);
    ("WOART", Harness.Subjects.woart);
  ]

(* The capstone: crash a multi-domain run at arbitrary substrate events,
   power-fail, recover (recovery itself crashed and retried), leak-sweep,
   resume traffic on fresh domains, and lose nothing that was acked. *)
let test_recovery_under_load_all () =
  let total_crashes = ref 0 in
  List.iter
    (fun (name, make) ->
      let r =
        Crashtest.recovery_under_load_campaign ~make ~states:6 ~load:120
          ~ops:120 ~threads:4 ~seed:19 ~faults:true
          ~crash_during_recovery:true ()
      in
      let b = r.Crashtest.base in
      if
        b.Crashtest.lost_keys <> 0 || b.Crashtest.wrong_values <> 0
        || b.Crashtest.stalled <> 0
      then
        Alcotest.failf "%s failed recovery-under-load: %s" name
          (Format.asprintf "%a" Crashtest.pp_load_report r);
      if r.Crashtest.recoveries < b.Crashtest.states_tested then
        Alcotest.failf "%s: fewer recoveries than states" name;
      total_crashes := !total_crashes + b.Crashtest.crashes_fired)
    subjects;
  Alcotest.(check bool) "some faults actually fired" true (!total_crashes > 0)

(* --- mutation tests: recovery repairs a deliberately broken structure --- *)

(* Interrupt a CLHT rehash mid-copy with a site-targeted flush crash: the
   pending-intent slot survives, the half-copied table is orphaned until
   [recover] rolls the copy forward, after which nothing is leaked and
   every acknowledged insert is back. *)
let test_clht_interrupted_rehash_repaired () =
  with_env (fun () ->
      let t = Clht.create ~capacity:4 () in
      let acked = ref [] in
      Faultinject.arm
        (Faultinject.Crash_at_flush { site = Some "P-CLHT/rehash"; k = 3 });
      let crashed =
        try
          for k = 1 to 60 do
            if Clht.insert t k (k * 11) then acked := k :: !acked
          done;
          false
        with Pmem.Crash.Simulated_crash -> true
      in
      Alcotest.(check bool) "rehash interrupted" true crashed;
      Pmem.simulate_power_failure ();
      Clht.recover t;
      let s = Clht.leak_sweep t in
      Alcotest.(check bool)
        "roll-forward repaired leftovers" true
        (s.Recipe.Recovery.repaired > 0);
      Alcotest.(check int) "no orphans after repair" 0 s.Recipe.Recovery.orphans;
      List.iter
        (fun k ->
          Alcotest.(check (option int))
            (Printf.sprintf "acked key %d after rehash repair" k)
            (Some (k * 11)) (Clht.lookup t k))
        !acked)

(* Abandon instead of adopt: the reclaiming sweep on the same interrupted
   rehash counts the half-copied bindings as orphans and retires the
   intent, and the live table still answers for every acked key. *)
let test_clht_interrupted_rehash_reclaimed () =
  with_env (fun () ->
      let t = Clht.create ~capacity:4 () in
      let acked = ref [] in
      Faultinject.arm
        (Faultinject.Crash_at_flush { site = Some "P-CLHT/rehash"; k = 4 });
      (try
         for k = 1 to 60 do
           if Clht.insert t k (k * 11) then acked := k :: !acked
         done
       with Pmem.Crash.Simulated_crash -> ());
      Pmem.simulate_power_failure ();
      Util.Lock.new_epoch ();
      let s = Clht.leak_sweep ~reclaim:true t in
      Alcotest.(check bool)
        "interrupted copy orphaned some bindings" true
        (s.Recipe.Recovery.orphans > 0);
      Alcotest.(check int)
        "reclaim retired them" s.Recipe.Recovery.orphans
        s.Recipe.Recovery.reclaimed;
      Clht.recover t;
      List.iter
        (fun k ->
          Alcotest.(check (option int))
            (Printf.sprintf "acked key %d after reclaim" k)
            (Some (k * 11)) (Clht.lookup t k))
        !acked)

(* Interrupt FAST & FAIR leaf/inner splits at every early flush position of
   the split site: a torn sibling (persisted header, unflushed entries, or
   an un-relinked half) must be repaired by recovery's eager fix pass, and
   no acknowledged key may be lost at any position. *)
let test_fastfair_torn_split_repaired () =
  (* Measure how many split-site flushes a clean run performs, then place
     crash positions across the whole window — the repair-worthy states
     (sibling linked, stale suffix not yet nulled) sit well past the first
     sibling persist. *)
  let split_site = Obs.Site.find_or_create ~index:"FAST&FAIR" "split" in
  fresh_env ();
  let probe = Harness.Subjects.fastfair () in
  let before = Obs.Site.clwb_count split_site in
  for key = 1 to 120 do
    ignore (probe.Crashtest.insert key (key * 5))
  done;
  let n_split = Obs.Site.clwb_count split_site - before in
  Alcotest.(check bool) "clean run splits nodes" true (n_split > 0);
  let positions =
    List.filter
      (fun k -> k <= n_split)
      (List.init 12 (fun i -> 1 + (i * max 1 (n_split / 12))))
  in
  let repairs = ref 0 and fired = ref 0 in
  List.iter (fun k ->
    fresh_env ();
    let s = Harness.Subjects.fastfair () in
    let acked = ref [] in
    Faultinject.arm
      (Faultinject.Crash_at_flush { site = Some "FAST&FAIR/split"; k });
    (try
       for key = 1 to 120 do
         if s.Crashtest.insert key (key * 5) then acked := key :: !acked
       done
     with Pmem.Crash.Simulated_crash -> incr fired);
    Faultinject.disarm ();
    Pmem.simulate_power_failure ();
    s.Crashtest.recover ();
    (match s.Crashtest.sweep with
    | Some sweep ->
        let st = sweep () in
        repairs := !repairs + st.Recipe.Recovery.repaired + st.Recipe.Recovery.orphans
    | None -> ());
    List.iter
      (fun key ->
        Alcotest.(check (option int))
          (Printf.sprintf "k=%d: acked key %d survives torn split" k key)
          (Some (key * 5))
          (s.Crashtest.lookup key))
      !acked;
    (* Ordered-scan consistency: the repaired tree must enumerate every
       acked key in order, without duplicates from the torn sibling. *)
    (match s.Crashtest.scan_all with
    | None -> ()
    | Some scan ->
        let keys = List.map fst (scan ()) in
        let sorted = List.sort_uniq compare keys in
        if keys <> sorted then
          Alcotest.failf "k=%d: scan out of order or duplicated" k))
    positions;
  teardown ();
  Alcotest.(check bool) "some split crash fired" true (!fired > 0);
  Alcotest.(check bool) "recovery repaired torn splits" true (!repairs > 0)

(* The fault plans still reproduce the paper's §3 bugs behind the bug
   flags: with FAST & FAIR's split commits deliberately reordered, some
   flush position inside the split window must lose an acknowledged key —
   the fault-injection analogue of test_crashtest.ml's campaign catch. *)
let test_fastfair_bug_caught_by_faults () =
  let split_site = Obs.Site.find_or_create ~index:"FAST&FAIR" "split" in
  fresh_env ();
  let probe = Harness.Subjects.fastfair ~bug_split_order:true () in
  let before = Obs.Site.clwb_count split_site in
  for key = 1 to 120 do
    ignore (probe.Crashtest.insert key (key * 5))
  done;
  let n_split = Obs.Site.clwb_count split_site - before in
  let lost = ref 0 in
  for k = 1 to n_split do
    fresh_env ();
    let s = Harness.Subjects.fastfair ~bug_split_order:true () in
    let acked = ref [] in
    Faultinject.arm
      (Faultinject.Crash_at_flush { site = Some "FAST&FAIR/split"; k });
    (try
       for key = 1 to 120 do
         if s.Crashtest.insert key (key * 5) then acked := key :: !acked
       done
     with Pmem.Crash.Simulated_crash -> ());
    Faultinject.disarm ();
    Pmem.simulate_power_failure ();
    s.Crashtest.recover ();
    List.iter
      (fun key ->
        if s.Crashtest.lookup key <> Some (key * 5) then incr lost)
      !acked
  done;
  teardown ();
  Alcotest.(check bool)
    "split-order bug loses acked keys under fault sweep" true (!lost > 0)

(* --- campaign determinism ------------------------------------------------ *)

(* Fixed seed -> identical crash-state digest across two runs, for both
   fault-injected and declared-crash-point campaigns (the regression that
   keeps the whole harness replayable). *)
let test_digest_deterministic () =
  let check name make ~faults =
    let d1 = Crashtest.crash_state_digest ~make ~states:6 ~load:120 ~seed:23 ~faults ()
    and d2 = Crashtest.crash_state_digest ~make ~states:6 ~load:120 ~seed:23 ~faults () in
    Alcotest.(check int)
      (Printf.sprintf "%s digest stable (faults=%b)" name faults)
      d1 d2
  in
  check "P-CLHT" Harness.Subjects.clht ~faults:true;
  check "P-CLHT" Harness.Subjects.clht ~faults:false;
  check "P-ART" Harness.Subjects.art ~faults:true;
  check "FAST&FAIR" (fun () -> Harness.Subjects.fastfair ()) ~faults:false

let () =
  Alcotest.run "faultinject"
    [
      ( "seam",
        [
          Alcotest.test_case "off path untouched" `Quick test_off_path_untouched;
          Alcotest.test_case "event stream deterministic" `Quick
            test_count_events_deterministic;
        ] );
      ( "plans",
        [
          Alcotest.test_case "flush plan fires once" `Quick
            test_flush_plan_fires_once;
          Alcotest.test_case "alloc failure" `Quick test_alloc_fail;
          Alcotest.test_case "torn flush recovers" `Quick
            test_torn_flush_recovers;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "recovery under load, all indexes" `Quick
            test_recovery_under_load_all;
          Alcotest.test_case "digest deterministic" `Quick
            test_digest_deterministic;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "clht rehash roll-forward" `Quick
            test_clht_interrupted_rehash_repaired;
          Alcotest.test_case "clht rehash reclaim" `Quick
            test_clht_interrupted_rehash_reclaimed;
          Alcotest.test_case "fastfair torn split" `Quick
            test_fastfair_torn_split_repaired;
          Alcotest.test_case "fastfair split-order bug caught" `Quick
            test_fastfair_bug_caught_by_faults;
        ] );
    ]
