(* Tests for the WOART baseline: semantics under the global lock, concurrent
   serialization, crash recovery of a held global lock. *)

(* Under RECIPE_SANITIZE (the @sanitize alias) the whole suite runs with
   the psan sanitizer enabled and must produce zero diagnostics. *)
let () = Harness.Sanitize_env.init ()


let reset () =
  Pmem.Mode.set_shadow false;
  Pmem.Crash.disarm ();
  ignore (Pmem.persist_everything ());
  Pmem.Stats.reset ();
  Util.Lock.new_epoch ()

let k = Util.Keys.encode_int

let test_basic () =
  reset ();
  let t = Woart.create () in
  Alcotest.(check bool) "insert" true (Woart.insert t (k 1) 10);
  Alcotest.(check bool) "dup" false (Woart.insert t (k 1) 11);
  Alcotest.(check (option int)) "lookup" (Some 10) (Woart.lookup t (k 1));
  Alcotest.(check bool) "update" true (Woart.update t (k 1) 11);
  Alcotest.(check (option int)) "updated" (Some 11) (Woart.lookup t (k 1));
  Alcotest.(check bool) "update absent" false (Woart.update t (k 2) 1);
  Alcotest.(check bool) "delete" true (Woart.delete t (k 1));
  Alcotest.(check (option int)) "gone" None (Woart.lookup t (k 1))

let test_bulk_and_scan () =
  reset ();
  let t = Woart.create () in
  let r = Util.Rng.create 6 in
  let keys = Array.init 3_000 (fun i -> i + 1) in
  Util.Rng.shuffle r keys;
  Array.iter (fun key -> ignore (Woart.insert t (k key) key)) keys;
  Array.iter
    (fun key ->
      if Woart.lookup t (k key) <> Some key then Alcotest.failf "lost %d" key)
    keys;
  let got = ref [] in
  let n = Woart.scan t (k 100) 20 (fun _ v -> got := v :: !got) in
  Alcotest.(check int) "scan count" 20 n;
  Alcotest.(check int) "scan start" 100 (List.hd (List.rev !got))

let test_concurrent_correctness () =
  reset ();
  let t = Woart.create () in
  let n_domains = 4 and per = 3_000 in
  let body d () =
    for i = 0 to per - 1 do
      let key = (i * n_domains) + d + 1 in
      ignore (Woart.insert t (k key) key);
      ignore (Woart.lookup t (k key))
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (body d)) in
  List.iter Domain.join ds;
  for key = 1 to n_domains * per do
    if Woart.lookup t (k key) <> Some key then Alcotest.failf "lost %d" key
  done

(* A crash while the global lock is held must not deadlock recovery. *)
let test_crash_with_held_lock () =
  reset ();
  Pmem.Mode.set_shadow true;
  let t = Woart.create () in
  for i = 1 to 100 do
    ignore (Woart.insert t (k i) i)
  done;
  Pmem.persist_everything ();
  Pmem.Crash.arm_at 2;
  (try ignore (Woart.insert t (k 999) 999) with Pmem.Crash.Simulated_crash -> ());
  Pmem.Crash.disarm ();
  Pmem.simulate_power_failure ();
  Woart.recover t;
  for i = 1 to 100 do
    if Woart.lookup t (k i) <> Some i then Alcotest.failf "lost %d" i
  done;
  Alcotest.(check bool) "writes work after recovery" true
    (Woart.insert t (k 1000) 1 || true);
  Pmem.Mode.set_shadow false

let () =
  Alcotest.run "woart"
    [
      ( "all",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "bulk+scan" `Quick test_bulk_and_scan;
          Alcotest.test_case "concurrent" `Quick test_concurrent_correctness;
          Alcotest.test_case "crash with held lock" `Quick test_crash_with_held_lock;
        ] );
    ]
