(* The §7.5 experiment as a test: every RECIPE-converted index passes the
   consistency and durability campaigns; the buggy baseline variants are
   caught. *)

let campaign mk ~states =
  Crashtest.consistency_campaign ~make:mk ~states ~load:400 ~ops:400 ~threads:4
    ~seed:11 ()

let check_passes name mk =
  let r = campaign mk ~states:25 in
  if r.Crashtest.lost_keys <> 0 || r.Crashtest.wrong_values <> 0
     || r.Crashtest.stalled <> 0
  then
    Alcotest.failf "%s failed crash campaign: %s" name
      (Format.asprintf "%a" Crashtest.pp_report r);
  Alcotest.(check bool) (name ^ ": some crashes fired") true
    (r.Crashtest.crashes_fired > 0)

let test_converted_pass () =
  check_passes "P-CLHT" Harness.Subjects.clht;
  check_passes "P-HOT" Harness.Subjects.hot;
  check_passes "P-ART" Harness.Subjects.art;
  check_passes "P-Masstree" Harness.Subjects.masstree;
  check_passes "P-BwTree" Harness.Subjects.bwtree

let test_correct_baselines_pass () =
  check_passes "FAST&FAIR(fixed)" (fun () -> Harness.Subjects.fastfair ());
  check_passes "CCEH(fixed)" (fun () -> Harness.Subjects.cceh ());
  check_passes "Level" Harness.Subjects.levelhash;
  check_passes "WOART" Harness.Subjects.woart

(* The buggy FAST & FAIR split order loses committed keys in some state. *)
let test_fastfair_bug_caught () =
  let r =
    campaign (fun () -> Harness.Subjects.fastfair ~bug_split_order:true ())
      ~states:60
  in
  Alcotest.(check bool) "data loss detected" true (r.Crashtest.lost_keys > 0)

(* The buggy CCEH directory doubling stalls after some crash state.  The
   stall window is a single crash point per doubling, so a sampled campaign
   is not guaranteed to land on it at any one seed; search a bounded range
   of seeds and require that at least one exposes the stall.  (This is the
   honest statement of §7.5's methodology — the bug is found by sampling,
   not by a magic seed baked into the test.) *)
let test_cceh_bug_caught () =
  let max_seed = 32 in
  let rec search seed =
    if seed > max_seed then
      Alcotest.failf
        "CCEH doubling stall not reproduced by any seed in 1..%d" max_seed
    else
      let r =
        Crashtest.consistency_campaign
          ~make:(fun () -> Harness.Subjects.cceh ~bug_doubling:true ())
          ~states:12 ~load:400 ~ops:400 ~threads:4 ~seed ()
      in
      if r.Crashtest.stalled > 0 then seed else search (seed + 1)
  in
  let found = search 1 in
  Alcotest.(check bool)
    (Printf.sprintf "stall detected (seed %d)" found)
    true (found >= 1)

(* Double crashes: the second crash interrupts writers that may be fixing
   leftovers of the first (the consecutive-crash scenario behind the FAST &
   FAIR merge bug §7.5 describes).  All converted indexes must pass, with
   ordered-scan verification included. *)
let test_double_crash_converted () =
  List.iter
    (fun (name, mk) ->
      let r =
        Crashtest.double_crash_campaign ~make:mk ~states:25 ~load:400 ~seed:5 ()
      in
      if
        r.Crashtest.lost_keys <> 0 || r.Crashtest.wrong_values <> 0
        || r.Crashtest.stalled <> 0
      then
        Alcotest.failf "%s failed double-crash: %s" name
          (Format.asprintf "%a" Crashtest.pp_report r))
    [
      ("P-CLHT", Harness.Subjects.clht);
      ("P-HOT", Harness.Subjects.hot);
      ("P-ART", Harness.Subjects.art);
      ("P-Masstree", Harness.Subjects.masstree);
      ("P-BwTree", Harness.Subjects.bwtree);
      ("FAST&FAIR", fun () -> Harness.Subjects.fastfair ());
    ]

let test_durability_all_pass () =
  List.iter
    (fun (name, mk) ->
      let v = Crashtest.durability_test ~make:mk ~inserts:1_500 ~seed:3 () in
      Alcotest.(check int) (name ^ ": durability violations") 0 v)
    [
      ("P-CLHT", Harness.Subjects.clht);
      ("P-HOT", Harness.Subjects.hot);
      ("P-ART", Harness.Subjects.art);
      ("P-Masstree", Harness.Subjects.masstree);
      ("P-BwTree", Harness.Subjects.bwtree);
      ("FAST&FAIR", fun () -> Harness.Subjects.fastfair ());
      ("CCEH", fun () -> Harness.Subjects.cceh ());
      ("Level", Harness.Subjects.levelhash);
    ]

(* The durability test catches the unflushed initial allocation (§7.5's
   "initial node allocation containing the root pointer is not persisted"). *)
let test_durability_root_bug_caught () =
  let v =
    Crashtest.durability_test
      ~make:(fun () -> Harness.Subjects.fastfair ~bug_root_flush:true ())
      ~inserts:50 ~seed:3 ()
  in
  Alcotest.(check bool) "unflushed root detected" true (v > 0)

let () =
  Alcotest.run "crashtest"
    [
      ( "consistency",
        [
          Alcotest.test_case "converted indexes pass" `Quick test_converted_pass;
          Alcotest.test_case "correct baselines pass" `Quick
            test_correct_baselines_pass;
          Alcotest.test_case "FAST&FAIR bug caught" `Quick test_fastfair_bug_caught;
          Alcotest.test_case "CCEH bug caught" `Quick test_cceh_bug_caught;
          Alcotest.test_case "double-crash converted pass" `Quick
            test_double_crash_converted;
        ] );
      ( "durability",
        [
          Alcotest.test_case "all indexes flush everything" `Quick
            test_durability_all_pass;
          Alcotest.test_case "root-flush bug caught" `Quick
            test_durability_root_bug_caught;
        ] );
    ]
