(* PSan runner: exercise one index (optionally a deliberately buggy
   variant) under the persistency-ordering & domain-race sanitizer and
   report every diagnostic, exit status 1 if any fired.

     dune exec bin/psan_check.exe -- --index P-ART --ops 5000
     dune exec bin/psan_check.exe -- --index fastfair --bug root-flush
     dune exec bin/psan_check.exe -- --index cceh --bug doubling --threads 1

   A clean converted index must produce zero diagnostics; the reproduced §3
   bugs must produce site-attributed [unpersisted-publish] reports. *)

open Cmdliner

let subject name bug =
  match (String.lowercase_ascii name, bug) with
  | ("p-clht" | "clht"), _ -> Some Harness.Subjects.clht
  | ("p-hot" | "hot"), _ -> Some Harness.Subjects.hot
  | ("p-art" | "art"), _ -> Some Harness.Subjects.art
  | ("p-masstree" | "masstree"), _ -> Some Harness.Subjects.masstree
  | ("p-bwtree" | "bwtree"), _ -> Some Harness.Subjects.bwtree
  | ("woart" | "w"), _ -> Some Harness.Subjects.woart
  | ("level" | "levelhash"), _ -> Some Harness.Subjects.levelhash
  | ("fast&fair" | "fastfair" | "ff"), Some "highkey" ->
      Some (fun () -> Harness.Subjects.fastfair ~bug_highkey:true ())
  | ("fast&fair" | "fastfair" | "ff"), Some "split-order" ->
      Some (fun () -> Harness.Subjects.fastfair ~bug_split_order:true ())
  | ("fast&fair" | "fastfair" | "ff"), Some "root-flush" ->
      Some (fun () -> Harness.Subjects.fastfair ~bug_root_flush:true ())
  | ("fast&fair" | "fastfair" | "ff"), _ ->
      Some (fun () -> Harness.Subjects.fastfair ())
  | "cceh", Some "doubling" ->
      Some (fun () -> Harness.Subjects.cceh ~bug_doubling:true ())
  | "cceh", _ -> Some (fun () -> Harness.Subjects.cceh ())
  | _ -> None

(* Insert/lookup/recover workload, [ops] keys split over [threads] domains
   on disjoint ranges.  Every substrate event runs under the sanitizer; the
   recovery pass exercises the post-crash read paths too. *)
let drive make ~ops ~threads ~races =
  Psan.enable ~races ();
  let s = make () in
  let per = max 1 (ops / threads) in
  let worker tid () =
    for i = 1 to per do
      let k = (tid * per) + i in
      ignore (s.Crashtest.insert k (k * 3) : bool);
      if i land 7 = 0 then ignore (s.Crashtest.lookup k : int option)
    done
  in
  if threads <= 1 then worker 0 ()
  else begin
    let ds = List.init threads (fun tid -> Domain.spawn (worker tid)) in
    List.iter
      (fun d ->
        Domain.join d;
        Pmem.sanitize_sync ())
      ds
  end;
  s.Crashtest.recover ();
  for k = 1 to min ops 256 do
    ignore (s.Crashtest.lookup k : int option)
  done;
  (match s.Crashtest.scan_all with Some f -> ignore (f () : (int * int) list) | None -> ());
  Psan.disable ();
  s.Crashtest.sname

let main index bug ops threads no_races =
  match subject index bug with
  | None ->
      Printf.eprintf "unknown index %S (or bad --bug for it)\n" index;
      1
  | Some make ->
      (* Bug reproductions default to one domain: the pending-set check is
         per-domain, so the unflushed-allocation bugs are only exposed when
         the allocating domain itself publishes — exactly the deterministic
         single-threaded §3 reproductions.  Multi-domain stays the default
         for clean-index runs (the race check needs it). *)
      let threads =
        match threads with Some t -> t | None -> if bug = None then 4 else 1
      in
      let name = drive make ~ops ~threads ~races:(not no_races) in
      let n = Psan.diagnostic_count () in
      if n = 0 then begin
        Printf.printf "psan: %s clean (%d ops, %d domain%s)\n" name ops threads
          (if threads = 1 then "" else "s");
        0
      end
      else begin
        Format.printf "psan: %s FAILED@.%t@." name Psan.print_report;
        1
      end

let cmd =
  let index =
    Arg.(value & opt string "P-ART" & info [ "index"; "i" ] ~docv:"INDEX")
  in
  let bug =
    Arg.(
      value
      & opt (some string) None
      & info [ "bug" ] ~docv:"BUG"
          ~doc:
            "Enable a reproduced paper bug: highkey | split-order | \
             root-flush (FAST&FAIR), doubling (CCEH).")
  in
  let ops = Arg.(value & opt int 5_000 & info [ "ops" ] ~docv:"N") in
  let threads =
    Arg.(
      value
      & opt (some int) None
      & info [ "threads"; "t" ] ~docv:"T"
          ~doc:"Domains to run (default 4, or 1 when --bug is given).")
  in
  let no_races =
    Arg.(
      value & flag
      & info [ "no-races" ]
          ~doc:
            "Keep the persistency-ordering checks but disable the \
             cross-domain race check.")
  in
  Cmd.v
    (Cmd.info "psan_check"
       ~doc:"Run one index under the PSan sanitizer (RECIPE §4 conditions)")
    Term.(const main $ index $ bug $ ops $ threads $ no_races)

let () = exit (Cmd.eval' cmd)
