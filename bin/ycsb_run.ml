(* Run one YCSB workload against one index and print the measurement.

     dune exec bin/ycsb_run.exe -- --index P-ART --workload a --keys 100000

   Indexes: P-ART P-HOT P-Masstree P-BwTree P-CLHT FAST&FAIR WOART CCEH Level *)

open Cmdliner

let build_driver p name kind =
  let space () =
    match kind with
    | Ycsb.Randint -> Recipe.Wordkey.int_space ()
    | Ycsb.Strkey -> Recipe.Wordkey.string_space ()
  in
  match String.lowercase_ascii name with
  | "p-art" | "art" -> Some (Harness.Drivers.art p (Art.create ()))
  | "p-hot" | "hot" -> Some (Harness.Drivers.hot p (Hot.create ()))
  | "p-masstree" | "masstree" ->
      Some (Harness.Drivers.masstree p (Masstree.create ()))
  | "p-bwtree" | "bwtree" ->
      Some (Harness.Drivers.bwtree p (Bwtree.create ~space:(space ()) ()))
  | "fast&fair" | "fastfair" | "ff" ->
      Some (Harness.Drivers.fastfair p (Fastfair.create ~space:(space ()) ()))
  | "woart" -> Some (Harness.Drivers.woart p (Woart.create ()))
  | "p-clht" | "clht" -> Some (Harness.Drivers.clht p (Clht.create ()))
  | "cceh" -> Some (Harness.Drivers.cceh p (Cceh.create ()))
  | "level" | "levelhash" ->
      Some (Harness.Drivers.levelhash p (Levelhash.create ()))
  | _ -> None

(* [--shards N]: route every operation through the sharded KV service
   instead of calling the index directly — each YCSB thread becomes a
   closed-loop client of the group-persist router, so concurrent clients'
   writes coalesce into shared batch fences.  Returns the server so the
   caller can stop it after the measurement. *)
let kvparts_name name =
  match String.lowercase_ascii name with
  | "fast&fair" | "ff" -> "fastfair"
  | "level" -> "levelhash"
  | n ->
      if String.length n > 2 && String.sub n 0 2 = "p-" then
        String.sub n 2 (String.length n - 2)
      else n

let build_served_driver p name ~shards ~batch =
  match Harness.Kvparts.find (kvparts_name name) with
  | None -> None
  | Some make ->
      let parts = Array.init shards (fun _ -> make ()) in
      let cfg =
        {
          Kvserve.Server.shards;
          batch;
          queue_cap = max 256 batch;
          mode = (if batch > 1 then Kvserve.Server.Group else Kvserve.Server.Per_op);
        }
      in
      let srv = Kvserve.Server.start cfg parts in
      let submit1 i op =
        let resp = Kvserve.Server.submit srv { Kvserve.Wire.rid = i; ops = [ op ] } in
        match (resp.Kvserve.Wire.status, resp.Kvserve.Wire.replies) with
        | Kvserve.Wire.Ok, [ r ] -> Some r
        | _ -> None
      in
      let scan =
        if parts.(0).Kvserve.Server.p_scan = None then None
        else
          Some
            (fun i len ->
              match submit1 i (Kvserve.Wire.Scan (Ycsb.key_string p i, len)) with
              | Some (Kvserve.Wire.Scanned items) -> List.length items
              | _ -> 0)
      in
      Some
        ( srv,
          {
            Ycsb.dname = Printf.sprintf "%s/serve(%dx%d)" name shards batch;
            insert =
              (fun i ->
                ignore
                  (submit1 i
                     (Kvserve.Wire.Put (Ycsb.key_string p i, i))));
            read =
              (fun i ->
                match submit1 i (Kvserve.Wire.Get (Ycsb.key_string p i)) with
                | Some (Kvserve.Wire.Found _) -> true
                | _ -> false);
            scan;
          } )

let main index workload keys ops threads strkeys seed shards batch sanitize
    trace_out =
  match Ycsb.workload_of_string workload with
  | None ->
      Printf.eprintf "unknown workload %S (loada|a|b|c|e)\n" workload;
      1
  | Some w -> (
      let kind = if strkeys then Ycsb.Strkey else Ycsb.Randint in
      let p =
        Ycsb.prepare ~workload:w ~kind ~nloaded:keys ~nops:ops ~threads ~seed ()
      in
      let built =
        if shards > 0 then
          Option.map
            (fun (srv, d) -> (Some srv, d))
            (build_served_driver p index ~shards ~batch)
        else Option.map (fun d -> (None, d)) (build_driver p index kind)
      in
      match built with
      | None ->
          Printf.eprintf "unknown index %S\n" index;
          1
      | Some (srv, d) ->
          if trace_out <> None then begin
            Obs.Span.set_enabled true;
            Obs.Trace.set_enabled true
          end;
          if sanitize then Psan.enable ();
          let loadres = Ycsb.load p d in
          Format.printf "load: %a@." Ycsb.pp_result loadres;
          if w <> Ycsb.Load_a then begin
            match Ycsb.run p d with
            | r -> Format.printf "run:  %a@." Ycsb.pp_result r
            | exception Ycsb.Scan_unsupported dname ->
                Printf.printf
                  "run:  skipped — %s is unordered and does not support \
                   range scans (workload E)\n"
                  dname
          end;
          Option.iter Kvserve.Server.stop srv;
          Option.iter
            (fun file ->
              Obs.Traceview.write_file file;
              Printf.printf "ycsb_run: wrote trace-event JSON to %s (spans \
                             only in --shards mode)\n%!"
                file)
            trace_out;
          if sanitize then begin
            Psan.disable ();
            let n = Psan.diagnostic_count () in
            if n = 0 then begin
              print_endline "psan: no diagnostics";
              0
            end
            else begin
              Format.printf "%t@." Psan.print_report;
              1
            end
          end
          else 0)

let cmd =
  let index =
    Arg.(value & opt string "P-ART" & info [ "index"; "i" ] ~docv:"INDEX")
  in
  let workload =
    Arg.(value & opt string "a" & info [ "workload"; "w" ] ~docv:"WORKLOAD")
  in
  let keys = Arg.(value & opt int 100_000 & info [ "keys" ] ~docv:"N") in
  let ops = Arg.(value & opt int 100_000 & info [ "ops" ] ~docv:"N") in
  let threads = Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N") in
  let strkeys = Arg.(value & flag & info [ "string-keys" ]) in
  let seed = Arg.(value & opt int 42 & info [ "seed" ]) in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Route operations through the sharded KV service with $(docv) \
             shards instead of calling the index directly (0: direct).")
  in
  let batch =
    Arg.(
      value & opt int 32
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Group-persist batch size for --shards mode (1: per-op \
             flush+fence).")
  in
  let sanitize =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:
            "Run the whole workload under the PSan sanitizer and report its \
             diagnostics; exit 1 if any fired.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Enable request spans + event tracing and write a Chrome \
             trace-event JSON file after the run (load it in \
             chrome://tracing or ui.perfetto.dev).")
  in
  Cmd.v
    (Cmd.info "ycsb_run" ~doc:"Run one YCSB workload against one index")
    Term.(
      const main $ index $ workload $ keys $ ops $ threads $ strkeys $ seed
      $ shards $ batch $ sanitize $ trace_out)

let () = exit (Cmd.eval' cmd)
