(* Run one YCSB workload against one index and print the measurement.

     dune exec bin/ycsb_run.exe -- --index P-ART --workload a --keys 100000

   Indexes: P-ART P-HOT P-Masstree P-BwTree P-CLHT FAST&FAIR WOART CCEH Level *)

open Cmdliner

let build_driver p name kind =
  let space () =
    match kind with
    | Ycsb.Randint -> Recipe.Wordkey.int_space ()
    | Ycsb.Strkey -> Recipe.Wordkey.string_space ()
  in
  match String.lowercase_ascii name with
  | "p-art" | "art" -> Some (Harness.Drivers.art p (Art.create ()))
  | "p-hot" | "hot" -> Some (Harness.Drivers.hot p (Hot.create ()))
  | "p-masstree" | "masstree" ->
      Some (Harness.Drivers.masstree p (Masstree.create ()))
  | "p-bwtree" | "bwtree" ->
      Some (Harness.Drivers.bwtree p (Bwtree.create ~space:(space ()) ()))
  | "fast&fair" | "fastfair" | "ff" ->
      Some (Harness.Drivers.fastfair p (Fastfair.create ~space:(space ()) ()))
  | "woart" -> Some (Harness.Drivers.woart p (Woart.create ()))
  | "p-clht" | "clht" -> Some (Harness.Drivers.clht p (Clht.create ()))
  | "cceh" -> Some (Harness.Drivers.cceh p (Cceh.create ()))
  | "level" | "levelhash" ->
      Some (Harness.Drivers.levelhash p (Levelhash.create ()))
  | _ -> None

let main index workload keys ops threads strkeys seed sanitize =
  match Ycsb.workload_of_string workload with
  | None ->
      Printf.eprintf "unknown workload %S (loada|a|b|c|e)\n" workload;
      1
  | Some w -> (
      let kind = if strkeys then Ycsb.Strkey else Ycsb.Randint in
      let p =
        Ycsb.prepare ~workload:w ~kind ~nloaded:keys ~nops:ops ~threads ~seed ()
      in
      match build_driver p index kind with
      | None ->
          Printf.eprintf "unknown index %S\n" index;
          1
      | Some d ->
          if sanitize then Psan.enable ();
          let loadres = Ycsb.load p d in
          Format.printf "load: %a@." Ycsb.pp_result loadres;
          if w <> Ycsb.Load_a then begin
            match Ycsb.run p d with
            | r -> Format.printf "run:  %a@." Ycsb.pp_result r
            | exception Ycsb.Scan_unsupported dname ->
                Printf.printf
                  "run:  skipped — %s is unordered and does not support \
                   range scans (workload E)\n"
                  dname
          end;
          if sanitize then begin
            Psan.disable ();
            let n = Psan.diagnostic_count () in
            if n = 0 then begin
              print_endline "psan: no diagnostics";
              0
            end
            else begin
              Format.printf "%t@." Psan.print_report;
              1
            end
          end
          else 0)

let cmd =
  let index =
    Arg.(value & opt string "P-ART" & info [ "index"; "i" ] ~docv:"INDEX")
  in
  let workload =
    Arg.(value & opt string "a" & info [ "workload"; "w" ] ~docv:"WORKLOAD")
  in
  let keys = Arg.(value & opt int 100_000 & info [ "keys" ] ~docv:"N") in
  let ops = Arg.(value & opt int 100_000 & info [ "ops" ] ~docv:"N") in
  let threads = Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N") in
  let strkeys = Arg.(value & flag & info [ "string-keys" ]) in
  let seed = Arg.(value & opt int 42 & info [ "seed" ]) in
  let sanitize =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:
            "Run the whole workload under the PSan sanitizer and report its \
             diagnostics; exit 1 if any fired.")
  in
  Cmd.v
    (Cmd.info "ycsb_run" ~doc:"Run one YCSB workload against one index")
    Term.(
      const main $ index $ workload $ keys $ ops $ threads $ strkeys $ seed
      $ sanitize)

let () = exit (Cmd.eval' cmd)
