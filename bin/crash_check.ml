(* Crash-recovery checker: run the §5 consistency campaign and durability
   test against one index (optionally a deliberately buggy variant).

     dune exec bin/crash_check.exe -- --index P-ART --states 100
     dune exec bin/crash_check.exe -- --index fastfair --bug split-order *)

open Cmdliner

let subject name bug =
  match (String.lowercase_ascii name, bug) with
  | ("p-clht" | "clht"), _ -> Some Harness.Subjects.clht
  | ("p-hot" | "hot"), _ -> Some Harness.Subjects.hot
  | ("p-art" | "art"), _ -> Some Harness.Subjects.art
  | ("p-masstree" | "masstree"), _ -> Some Harness.Subjects.masstree
  | ("p-bwtree" | "bwtree"), _ -> Some Harness.Subjects.bwtree
  | ("woart" | "w"), _ -> Some Harness.Subjects.woart
  | ("level" | "levelhash"), _ -> Some Harness.Subjects.levelhash
  | ("fast&fair" | "fastfair" | "ff"), Some "highkey" ->
      Some (fun () -> Harness.Subjects.fastfair ~bug_highkey:true ())
  | ("fast&fair" | "fastfair" | "ff"), Some "split-order" ->
      Some (fun () -> Harness.Subjects.fastfair ~bug_split_order:true ())
  | ("fast&fair" | "fastfair" | "ff"), Some "root-flush" ->
      Some (fun () -> Harness.Subjects.fastfair ~bug_root_flush:true ())
  | ("fast&fair" | "fastfair" | "ff"), _ ->
      Some (fun () -> Harness.Subjects.fastfair ())
  | "cceh", Some "doubling" ->
      Some (fun () -> Harness.Subjects.cceh ~bug_doubling:true ())
  | "cceh", _ -> Some (fun () -> Harness.Subjects.cceh ())
  | _ -> None

(* Crash-point coverage over the campaign just run: for every index whose
   declared crash sites were reached while armed, how many of them actually
   had a crash injected (and which never fired).  Sites register at module
   init for all linked indexes; only the subject under test gets visits, so
   the report stays focused on it (WOART's points surface as P-ART's — it
   delegates every persist). *)
let print_coverage () =
  print_endline "crash-point coverage:";
  let any = ref false in
  List.iter
    (fun idx ->
      let c = Obs.Site.coverage idx in
      if c.Obs.Site.registered > 0 && c.Obs.Site.visited > 0 then begin
        any := true;
        Printf.printf
          "  %-12s %d/%d declared points exercised (%d visited while armed)\n"
          c.Obs.Site.cov_index c.Obs.Site.exercised c.Obs.Site.registered
          c.Obs.Site.visited;
        if c.Obs.Site.unexercised <> [] then
          Printf.printf "    never fired: %s\n"
            (String.concat ", " c.Obs.Site.unexercised)
      end)
    (Obs.Site.indexes ());
  if not !any then
    print_endline "  (no declared crash point was reached while armed)"

let failed r =
  Crashtest.(r.lost_keys > 0 || r.wrong_values > 0 || r.stalled > 0)

let dump_trace () =
  Format.printf "%a@." Obs.Trace.pp_header ();
  let recent = Obs.Trace.recent 64 in
  Printf.printf "last %d events:\n" (List.length recent);
  List.iter (fun e -> Format.printf "  %a@." Obs.Trace.pp_event e) recent

let main index bug states sweep faults load seed trace =
  match subject index bug with
  | None ->
      Printf.eprintf "unknown index %S (or bad --bug for it)\n" index;
      1
  | Some make ->
      if trace then Obs.Trace.set_enabled true;
      let bad =
        if sweep then begin
          let r =
            Crashtest.sweep ~make ~points:(states * 100) ~stride:1 ~load ()
          in
          Format.printf "sweep: %a@." Crashtest.pp_report r;
          failed r
        end
        else if faults then begin
          let r =
            Crashtest.recovery_under_load_campaign ~make ~states ~load
              ~ops:load ~threads:4 ~seed ~faults:true
              ~crash_during_recovery:true ()
          in
          Format.printf "faults: %a@." Crashtest.pp_load_report r;
          failed r.Crashtest.base
        end
        else begin
          let r =
            Crashtest.consistency_campaign ~make ~states ~load ~ops:load
              ~threads:4 ~seed ()
          in
          Format.printf "campaign: %a@." Crashtest.pp_report r;
          failed r
        end
      in
      print_coverage ();
      if trace && bad then dump_trace ();
      let v = Crashtest.durability_test ~make ~inserts:1_000 ~seed () in
      Printf.printf "durability violations: %d -> %s\n" v
        (if v = 0 then "PASS" else "FAIL");
      0

let cmd =
  let index =
    Arg.(value & opt string "P-ART" & info [ "index"; "i" ] ~docv:"INDEX")
  in
  let bug =
    Arg.(
      value
      & opt (some string) None
      & info [ "bug" ] ~docv:"BUG"
          ~doc:
            "Enable a reproduced paper bug: highkey | split-order | \
             root-flush (FAST&FAIR), doubling (CCEH).")
  in
  let states = Arg.(value & opt int 100 & info [ "states" ] ~docv:"N") in
  let sweep =
    Arg.(value & flag & info [ "sweep" ] ~doc:"Deterministic crash-point sweep")
  in
  let faults =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Recovery-under-load campaign with fault injection: crash a \
             multi-domain run at arbitrary substrate events (flush, fence, \
             store, allocation, torn line), crash recovery itself, and \
             verify zero lost acknowledged operations plus the leak sweep.")
  in
  let load = Arg.(value & opt int 400 & info [ "load" ] ~docv:"N") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ]) in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Record the event trace ring during the campaign and dump the \
             most recent events if it fails.")
  in
  Cmd.v
    (Cmd.info "crash_check" ~doc:"Crash-recovery testing for one index (§5)")
    Term.(
      const main $ index $ bug $ states $ sweep $ faults $ load $ seed $ trace)

let () = exit (Cmd.eval' cmd)
