(* TCP front-end for the KV service layer.

     dune exec bin/kv_server.exe -- --index art --shards 4 --port 7700

   Speaks the framed binary codec of {!Kvserve.Wire}: clients write
   length-prefixed request frames and read response frames; each accepted
   connection gets one systhread feeding {!Kvserve.Server.Conn}, and all
   connections share the sharded group-persist router.  A malformed frame
   earns one [Bad_request] response after which the connection is closed
   (the stream cannot be resynchronized).

   [--smoke] runs a self-contained loopback check instead of serving
   forever: bind an ephemeral port, drive a real TCP client through puts,
   gets, a delete and a scan, and exit 0 iff every response matches — the
   CI-facing end-to-end test of codec + socket + router. *)

open Cmdliner
module Wire = Kvserve.Wire
module Server = Kvserve.Server

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let handle_conn srv fd =
  let conn = Server.Conn.create srv in
  let buf = Bytes.create 4096 in
  let rec loop () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
        let out = Server.Conn.feed conn (Bytes.sub_string buf 0 n) in
        if String.length out > 0 then write_all fd out;
        if not (Server.Conn.broken conn) then loop ()
    | exception Unix.Unix_error _ -> ()
  in
  (try loop () with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Bind + listen, returning the socket and the actual port (learned back
   from the kernel when [port] was 0). *)
let listen_on host port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock 64;
  let actual =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (sock, actual)

(* Accept loop: one handler thread per connection.  [max_conns = 0] serves
   forever; otherwise the loop returns after accepting that many (the smoke
   path accepts exactly one). *)
let accept_loop srv sock max_conns =
  let served = ref 0 and threads = ref [] in
  while max_conns = 0 || !served < max_conns do
    let fd, _ = Unix.accept sock in
    incr served;
    threads := Thread.create (handle_conn srv) fd :: !threads
  done;
  List.iter Thread.join !threads

(* --- smoke client -------------------------------------------------------- *)

let read_response fd pendbuf =
  let tmp = Bytes.create 4096 in
  let rec go () =
    match Wire.decode_response (Buffer.contents pendbuf) 0 with
    | `Ok (resp, consumed) ->
        let data = Buffer.contents pendbuf in
        Buffer.clear pendbuf;
        Buffer.add_substring pendbuf data consumed (String.length data - consumed);
        resp
    | `Malformed m -> failwith ("smoke: malformed response: " ^ m)
    | `Need_more ->
        let n = Unix.read fd tmp 0 (Bytes.length tmp) in
        if n = 0 then failwith "smoke: connection closed mid-response";
        Buffer.add_subbytes pendbuf tmp 0 n;
        go ()
  in
  go ()

let smoke_client port scan_supported errors () =
  try
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    let pend = Buffer.create 256 in
    let rid = ref 0 in
    let roundtrip ops =
      incr rid;
      write_all fd (Wire.request_string { Wire.rid = !rid; ops });
      let resp = read_response fd pend in
      if resp.Wire.rrid <> !rid then failwith "smoke: response id mismatch";
      resp
    in
    let check what cond =
      if not cond then begin
        incr errors;
        Printf.eprintf "kv_server smoke: FAIL %s\n%!" what
      end
    in
    let key = Util.Keys.encode_int in
    (* A batched put frame: keys 1..50, value 3k. *)
    let puts = List.init 50 (fun i -> Wire.Put (key (i + 1), 3 * (i + 1))) in
    let r = roundtrip puts in
    check "puts acked"
      (r.Wire.status = Wire.Ok
      && List.for_all (function Wire.Done _ -> true | _ -> false) r.Wire.replies);
    let r = roundtrip [ Wire.Get (key 7); Wire.Get (key 51) ] in
    check "get found/absent"
      (r.Wire.status = Wire.Ok
      && r.Wire.replies = [ Wire.Found 21; Wire.Absent ]);
    let r = roundtrip [ Wire.Delete (key 7); Wire.Get (key 7) ] in
    check "delete then absent"
      (r.Wire.status = Wire.Ok && r.Wire.replies = [ Wire.Done true; Wire.Absent ]);
    if scan_supported then begin
      let r = roundtrip [ Wire.Scan (key 1, 5) ] in
      check "scan merged across shards"
        (match r.Wire.replies with
        | [ Wire.Scanned items ] ->
            List.map fst items = List.map key [ 1; 2; 3; 4; 5 ]
        | _ -> false)
    end;
    Unix.close fd
  with e ->
    incr errors;
    Printf.eprintf "kv_server smoke: FAIL %s\n%!" (Printexc.to_string e)

(* --- main ----------------------------------------------------------------- *)

let main index shards batch queue_cap mode_sel host port max_conns smoke
    trace_out =
  match Harness.Kvparts.find index with
  | None ->
      Printf.eprintf "unknown index %S (see bin/kv_bench.exe --help)\n" index;
      1
  | Some make ->
      let mode =
        match mode_sel with
        | `Per_op -> Server.Per_op
        | `Group -> Server.Group
        | `Epoch -> Server.Epoch Kvserve.Epoch_ctl.default_cfg
      in
      let cfg =
        { Server.shards; batch; queue_cap = max queue_cap batch; mode }
      in
      let parts = Array.init cfg.Server.shards (fun _ -> make ()) in
      let scan_supported = parts.(0).Server.p_scan <> None in
      if trace_out <> None then begin
        Obs.Span.set_enabled true;
        Obs.Trace.set_enabled true
      end;
      let srv = Server.start cfg parts in
      let sock, actual_port = listen_on host (if smoke then 0 else port) in
      Printf.printf
        "kv_server: %s, %d shard(s), batch %d (persist mode %s), listening \
         on %s:%d\n\
         %!"
        parts.(0).Server.p_name cfg.Server.shards cfg.Server.batch
        (Server.mode_name cfg.Server.mode)
        host actual_port;
      let errors = ref 0 in
      let client =
        if smoke then
          Some (Thread.create (smoke_client actual_port scan_supported errors) ())
        else None
      in
      accept_loop srv sock (if smoke then 1 else max_conns);
      Option.iter Thread.join client;
      Unix.close sock;
      Server.stop srv;
      Option.iter
        (fun file ->
          Obs.Traceview.write_file file;
          Printf.printf "kv_server: wrote trace-event JSON to %s (open in \
                         ui.perfetto.dev)\n%!"
            file)
        trace_out;
      if smoke then
        if !errors = 0 then begin
          print_endline "kv_server smoke: ok";
          0
        end
        else 1
      else 0

let cmd =
  let index =
    Arg.(value & opt string "art" & info [ "index"; "i" ] ~docv:"INDEX")
  in
  let shards = Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N") in
  let batch = Arg.(value & opt int 32 & info [ "batch" ] ~docv:"N") in
  let queue_cap = Arg.(value & opt int 256 & info [ "queue-cap" ] ~docv:"N") in
  let mode_sel =
    Arg.(
      value
      & opt
          (enum [ ("per_op", `Per_op); ("group", `Group); ("epoch", `Epoch) ])
          `Epoch
      & info [ "persist-mode" ] ~docv:"MODE"
          ~doc:
            "Durability mode: $(b,per_op) flushes+fences each operation, \
             $(b,group) fences once per dequeued batch, $(b,epoch) (default) \
             runs fence-free applies with adaptive epoch advances.")
  in
  let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ]) in
  let port = Arg.(value & opt int 7700 & info [ "port" ] ~docv:"PORT") in
  let max_conns =
    Arg.(
      value & opt int 0
      & info [ "max-conns" ] ~docv:"N"
          ~doc:"Exit after serving $(docv) connections (0: serve forever).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Self-test: bind an ephemeral port, run a loopback TCP client \
             through puts/gets/delete/scan, exit 0 iff all responses match.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Enable request spans + event tracing and write a Chrome \
             trace-event JSON file on exit (load it in chrome://tracing or \
             ui.perfetto.dev).")
  in
  Cmd.v
    (Cmd.info "kv_server" ~doc:"Serve a persistent index over TCP")
    Term.(
      const main $ index $ shards $ batch $ queue_cap $ mode_sel $ host $ port
      $ max_conns $ smoke $ trace_out)

let () = exit (Cmd.eval' cmd)
