(* pmlint — the persistence-hygiene linter over the library tree.

   Usage:
     pmlint [ROOTS...]                    lint and print every finding
     pmlint --baseline FILE [ROOTS...]    fail only on findings not in FILE,
                                          and on stale FILE entries
     pmlint --update-baseline             rewrite the baseline from the tree
     pmlint --mutation-check              also verify that deleting the clwb
                                          on the FAST&FAIR split path is
                                          caught statically
     pmlint --stats                       per-library call-site statistics
     pmlint --rules                       print the rule catalog *)

let () =
  let opts = ref Staticcheck.Driver.default_opts in
  let roots = ref [] in
  let usage = "pmlint [options] [roots]  (default root: lib)" in
  let spec =
    [
      ( "--baseline",
        Arg.String
          (fun p -> opts := { !opts with Staticcheck.Driver.baseline = Some p }),
        "FILE compare findings against FILE; fail on new or stale entries" );
      ( "--update-baseline",
        Arg.Unit (fun () -> opts := { !opts with update_baseline = true }),
        " rewrite the baseline file from the current tree" );
      ( "--mutation-check",
        Arg.Unit (fun () -> opts := { !opts with run_mutation_check = true }),
        " verify seeded FAST&FAIR clwb deletions are caught statically" );
      ( "--mutation-file",
        Arg.String (fun p -> opts := { !opts with mutation_file = p }),
        "FILE file the mutation self-check mutates (default \
         lib/fastfair/fastfair.ml)" );
      ( "--all-rules",
        Arg.Unit (fun () -> opts := { !opts with all_rules = true }),
        " apply every rule to every file (for fixture trees outside lib/)" );
      ( "--stats",
        Arg.Unit (fun () -> opts := { !opts with show_stats = true }),
        " print per-library persistence call-site statistics" );
      ( "--rules",
        Arg.Unit
          (fun () ->
            List.iter
              (fun r ->
                Printf.printf "%-5s %s\n"
                  (Staticcheck.Finding.rule_id r)
                  (Staticcheck.Finding.rule_doc r))
              Staticcheck.Finding.[ R1; R2; R3; R4; Parse ];
            exit 0),
        " print the rule catalog and exit" );
    ]
  in
  Arg.parse spec (fun r -> roots := r :: !roots) usage;
  let opts =
    match List.rev !roots with
    | [] -> !opts
    | roots -> { !opts with roots }
  in
  exit (Staticcheck.Driver.run opts)
