(* Batched-durability benchmark CLI.

     dune exec bin/kv_bench.exe -- --index art --shards 2,4 --batch 32

   Runs the closed-loop load generator against the sharded KV service for
   every requested shard count in all three persist modes — per_op (the
   ablation), group (fence per batch), epoch (adaptive buffered
   durability) — over write-heavy overwrite traffic, and prints the
   batching table: throughput, p50/p99 ack latency, realized batch size,
   and flushes/fences per acknowledged operation.  [--json FILE] writes
   the same rows as the machine-readable [serve] table (the schema the
   bench export and bench/check_json.ml share). *)

open Cmdliner
module J = Obs.Json

let parse_shards s =
  try
    let l =
      String.split_on_char ',' s
      |> List.filter (fun x -> String.trim x <> "")
      |> List.map (fun x -> int_of_string (String.trim x))
    in
    if l = [] || List.exists (fun n -> n <= 0) l then None else Some l
  with Failure _ -> None

let main index shards_s batch workers requests opr write_pct key_space seed
    json trace_out =
  match (Harness.Kvparts.find index, parse_shards shards_s) with
  | None, _ ->
      Printf.eprintf "unknown index %S (one of: %s)\n" index
        (String.concat " " (List.map fst Harness.Kvparts.all));
      1
  | _, None ->
      Printf.eprintf "bad --shards %S (comma-separated positive ints)\n"
        shards_s;
      1
  | Some make, Some shard_counts ->
      Printf.printf
        "kv_bench: %s, %d worker(s) x %d request(s) x %d op(s), %d%% writes \
         over %d keys, seed %d\n"
        index workers requests opr write_pct key_space seed;
      if trace_out <> None then Obs.Trace.set_enabled true;
      Kvserve.Servebench.print_header ();
      let rows =
        List.concat_map
          (fun shards ->
            List.map
              (fun mode ->
                let r =
                  Kvserve.Servebench.run_one ~make ~shards ~batch ~mode
                    ~workers ~requests ~ops_per_request:opr ~write_pct
                    ~key_space ~seed ()
                in
                Kvserve.Servebench.print_row r;
                r)
              Kvserve.Servebench.default_modes)
          shard_counts
      in
      print_endline "latency breakdown (us):";
      List.iter Kvserve.Servebench.print_breakdown rows;
      (* Headline: fence amortization and the p99 cost of each batched mode
         vs the per-op ablation, per shard count. *)
      List.iter
        (fun shards ->
          let cell m =
            List.find
              (fun r ->
                r.Kvserve.Servebench.r_shards = shards
                && Kvserve.Server.mode_name r.Kvserve.Servebench.r_mode = m)
              rows
          in
          let per_op = cell "per_op"
          and group = cell "group"
          and epoch = cell "epoch" in
          let p99 r = float_of_int r.Kvserve.Servebench.r_ack_p99_ns /. 1e3 in
          Printf.printf
            "%d shard(s): sfence/op per_op %.2f, group %.2f, epoch %.2f; \
             ack p99 (us) per_op %.1f, group %.1f, epoch %.1f\n"
            shards per_op.Kvserve.Servebench.r_fences_per_op
            group.Kvserve.Servebench.r_fences_per_op
            epoch.Kvserve.Servebench.r_fences_per_op (p99 per_op) (p99 group)
            (p99 epoch))
        shard_counts;
      (match json with
      | None -> ()
      | Some file ->
          let doc =
            J.Obj
              [
                ("schema", J.Str "recipe-serve-bench/3");
                ( "meta",
                  J.Obj
                    [
                      ("index", J.Str index);
                      ("workers", J.int workers);
                      ("requests", J.int requests);
                      ("ops_per_request", J.int opr);
                      ("write_pct", J.int write_pct);
                      ("key_space", J.int key_space);
                      ("seed", J.int seed);
                    ] );
                ("serve", Kvserve.Servebench.rows_json rows);
              ]
          in
          let oc = open_out file in
          J.to_channel oc doc;
          close_out oc;
          Printf.printf "kv_bench: wrote %s\n" file);
      Option.iter
        (fun file ->
          Obs.Traceview.write_file file;
          Printf.printf
            "kv_bench: wrote trace-event JSON to %s (most recent spans \
             within the ring window)\n"
            file)
        trace_out;
      0

let cmd =
  let index =
    Arg.(value & opt string "art" & info [ "index"; "i" ] ~docv:"INDEX")
  in
  let shards =
    Arg.(
      value & opt string "2,4"
      & info [ "shards" ] ~docv:"N,M"
          ~doc:"Comma-separated shard counts to sweep.")
  in
  let batch = Arg.(value & opt int 32 & info [ "batch" ] ~docv:"N") in
  let workers = Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N") in
  let requests =
    Arg.(
      value & opt int 200
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per worker.")
  in
  let opr = Arg.(value & opt int 16 & info [ "ops-per-req" ] ~docv:"N") in
  let write_pct = Arg.(value & opt int 100 & info [ "write-pct" ] ~docv:"PCT") in
  let key_space =
    Arg.(
      value & opt int 64
      & info [ "key-space" ] ~docv:"N"
          ~doc:"Overwrite key range (small: write-heavy line reuse).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ]) in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the rows as JSON.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON file after the grid (load it \
             in chrome://tracing or ui.perfetto.dev).")
  in
  Cmd.v
    (Cmd.info "kv_bench"
       ~doc:"Benchmark per-op/group/epoch durability in the KV service layer")
    Term.(
      const main $ index $ shards $ batch $ workers $ requests $ opr
      $ write_pct $ key_space $ seed $ json $ trace_out)

let () = exit (Cmd.eval' cmd)
