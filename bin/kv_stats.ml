(* Live stats client for a running kv_server.

     dune exec bin/kv_stats.exe -- --port 7700

   Sends one [Stats] request over the framed binary codec and renders the
   server's snapshot as a human-readable report: serving counters, epoch
   progress (advances, ops/epoch, parked acks) when the server runs in
   epoch mode, pmem flush/fence cost per acked op, ack percentiles, and
   the per-shard queue/apply/epoch_wait/fence/ack phase decomposition
   (populated when the server runs with spans enabled, e.g. --trace-out).

   [--smoke] is the CI loopback self-test: start an in-process server on an
   ephemeral port, drive puts over real TCP, then query stats over the same
   connection and exit 0 iff the snapshot is present and consistent. *)

open Cmdliner
module Wire = Kvserve.Wire
module Server = Kvserve.Server

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let read_response fd pendbuf =
  let tmp = Bytes.create 4096 in
  let rec go () =
    match Wire.decode_response (Buffer.contents pendbuf) 0 with
    | `Ok (resp, consumed) ->
        let data = Buffer.contents pendbuf in
        Buffer.clear pendbuf;
        Buffer.add_substring pendbuf data consumed (String.length data - consumed);
        resp
    | `Malformed m -> failwith ("malformed response: " ^ m)
    | `Need_more ->
        let n = Unix.read fd tmp 0 (Bytes.length tmp) in
        if n = 0 then failwith "connection closed mid-response";
        Buffer.add_subbytes pendbuf tmp 0 n;
        go ()
  in
  go ()

(* One stats round trip on an established connection. *)
let query fd pend rid =
  write_all fd (Wire.request_string { Wire.rid; ops = [ Wire.Stats ] });
  let resp = read_response fd pend in
  if resp.Wire.rrid <> rid then failwith "response id mismatch";
  match (resp.Wire.status, resp.Wire.replies) with
  | Wire.Ok, [ Wire.Stats_reply fields ] -> fields
  | st, _ -> failwith ("stats request failed: " ^ Wire.status_name st)

(* --- rendering ------------------------------------------------------------ *)

let fv fields k = Option.value ~default:0 (List.assoc_opt k fields)
let us v = float_of_int v /. 1e3

let per_op fields k =
  let ops = max 1 (fv fields "ops_acked") in
  float_of_int (fv fields k) /. float_of_int ops

let mode_label = function
  | 0 -> "per_op"
  | 1 -> "group"
  | 2 -> "epoch"
  | _ -> "?"

let render fields =
  let f = fv fields in
  let epoch_mode = f "persist_mode" = 2 in
  Printf.printf "server: %d shard(s), batch %d, queue cap %d, persist mode %s%s\n"
    (f "shards") (f "batch") (f "queue_cap")
    (mode_label (f "persist_mode"))
    (if f "crashed" = 1 then "  [CRASHED]" else "");
  Printf.printf
    "serving: %d ops acked in %d batches, %d overloaded rejections, %d group \
     lines\n"
    (f "ops_acked") (f "batches") (f "overloaded") (f "group_lines");
  if epoch_mode then begin
    let epochs = f "epochs" in
    let pending =
      let s = ref 0 in
      for sid = 0 to f "shards" - 1 do
        s := !s + f (Printf.sprintf "shard.%d.pending_acks" sid)
      done;
      !s
    in
    Printf.printf
      "epochs: %d advance(s), %.2f ops/epoch mean, %d ack(s) pending (cfg: \
       max_ops %d, max_lines %d, max_delay %.0f us)\n"
      epochs
      (float_of_int (f "ops_acked") /. float_of_int (max 1 epochs))
      pending (f "epoch.max_ops") (f "epoch.max_lines")
      (us (f "epoch.max_delay_ns"))
  end;
  Printf.printf
    "pmem (process totals): %d clwb (%.2f/op), %d sfence (%.2f/op)\n"
    (f "pmem.clwb") (per_op fields "pmem.clwb") (f "pmem.sfence")
    (per_op fields "pmem.sfence");
  Printf.printf "ack latency: %d samples, p50 %.1f us, p99 %.1f us\n"
    (f "ack_ns.count") (us (f "ack_ns.p50")) (us (f "ack_ns.p99"));
  if f "spans_enabled" = 0 then
    print_endline
      "phase breakdown: spans disabled on the server (start it with \
       --trace-out to populate)";
  let phases = [ "queue"; "apply"; "epoch_wait"; "fence"; "ack" ] in
  Printf.printf "%6s %6s %5s %6s %11s" "shard" "depth" "pend" "epoch"
    "batch_mean";
  List.iter
    (fun phase -> Printf.printf " %19s" (phase ^ " p50/p99us"))
    phases;
  print_newline ();
  for sid = 0 to f "shards" - 1 do
    let sf k = f (Printf.sprintf "shard.%d.%s" sid k) in
    Printf.printf "%6d %6d %5d %6d %11.2f" sid (sf "queue_depth")
      (sf "pending_acks") (sf "last_epoch")
      (float_of_int (sf "batch_ops.mean_x1000") /. 1e3);
    List.iter
      (fun phase ->
        Printf.printf " %9.1f/%9.1f"
          (us (sf (phase ^ "_ns.p50")))
          (us (sf (phase ^ "_ns.p99"))))
      phases;
    print_newline ()
  done

(* --- modes ---------------------------------------------------------------- *)

let query_mode host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  with
  | () ->
      let fields = query fd (Buffer.create 256) 1 in
      Unix.close fd;
      render fields;
      0
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "kv_stats: cannot connect to %s:%d: %s\n" host port
        (Unix.error_message e);
      1

(* Loopback self-test: everything kv_server's smoke does for the data path,
   for the stats path — real TCP, real codec, assertions on the snapshot. *)
let smoke_mode () =
  match Harness.Kvparts.find "art" with
  | None ->
      prerr_endline "kv_stats smoke: art partition builder missing";
      1
  | Some make ->
      Obs.Span.set_enabled true;
      let cfg = { Server.default_config with shards = 2; batch = 8 } in
      let parts = Array.init cfg.Server.shards (fun _ -> make ()) in
      let srv = Server.start cfg parts in
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      Unix.listen sock 4;
      let port =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> assert false
      in
      let server_thread =
        Thread.create
          (fun () ->
            let fd, _ = Unix.accept sock in
            let conn = Server.Conn.create srv in
            let buf = Bytes.create 4096 in
            let rec loop () =
              match Unix.read fd buf 0 (Bytes.length buf) with
              | 0 -> ()
              | n ->
                  let out = Server.Conn.feed conn (Bytes.sub_string buf 0 n) in
                  if String.length out > 0 then write_all fd out;
                  if not (Server.Conn.broken conn) then loop ()
              | exception Unix.Unix_error _ -> ()
            in
            (try loop () with _ -> ());
            try Unix.close fd with Unix.Unix_error _ -> ())
          ()
      in
      let errors = ref 0 in
      let check what cond =
        if not cond then begin
          incr errors;
          Printf.eprintf "kv_stats smoke: FAIL %s\n%!" what
        end
      in
      (try
         let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
         Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
         let pend = Buffer.create 256 in
         let nput = 100 in
         let puts =
           List.init nput (fun i -> Wire.Put (Util.Keys.encode_int i, i))
         in
         write_all fd (Wire.request_string { Wire.rid = 1; ops = puts });
         let r = read_response fd pend in
         check "puts acked" (r.Wire.status = Wire.Ok);
         let fields = query fd pend 2 in
         let f = fv fields in
         check "shards reported" (f "shards" = cfg.Server.shards);
         check "acked ops counted" (f "ops_acked" >= nput);
         check "server healthy" (f "crashed" = 0);
         check "queues drained"
           (f "shard.0.queue_depth" = 0 && f "shard.1.queue_depth" = 0);
         check "ack percentiles ordered" (f "ack_ns.p50" <= f "ack_ns.p99");
         check "spans populate phase hists"
           (f "shard.0.ack_ns.count" + f "shard.1.ack_ns.count" >= nput);
         check "fence phase sampled"
           (f "shard.0.fence_ns.count" + f "shard.1.fence_ns.count" >= nput);
         (* default_config serves in epoch mode: the snapshot must carry the
            epoch story — mode tag, at least one advance behind the acks,
            the epoch_wait phase sampled, and nothing left parked once every
            submit has returned. *)
         check "epoch mode reported" (f "persist_mode" = 2);
         check "epoch advances counted" (f "epochs" >= 1);
         check "epoch_wait phase sampled"
           (f "shard.0.epoch_wait_ns.count" + f "shard.1.epoch_wait_ns.count"
           >= nput);
         check "no acks parked after drain"
           (f "shard.0.pending_acks" = 0 && f "shard.1.pending_acks" = 0);
         check "epoch ops accounted"
           (f "shard.0.epoch_ops.count" + f "shard.1.epoch_ops.count" >= 1);
         render fields;
         Unix.close fd
       with e ->
         incr errors;
         Printf.eprintf "kv_stats smoke: FAIL %s\n%!" (Printexc.to_string e));
      Thread.join server_thread;
      Unix.close sock;
      Server.stop srv;
      Obs.Span.set_enabled false;
      if !errors = 0 then begin
        print_endline "kv_stats smoke: ok";
        0
      end
      else 1

let main host port smoke = if smoke then smoke_mode () else query_mode host port

let cmd =
  let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ]) in
  let port = Arg.(value & opt int 7700 & info [ "port" ] ~docv:"PORT") in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Self-test: start an in-process server on an ephemeral port, \
             drive traffic over loopback TCP, and validate the stats \
             snapshot; exit 0 iff consistent.")
  in
  Cmd.v
    (Cmd.info "kv_stats"
       ~doc:"Query a running kv_server for a live stats snapshot")
    Term.(const main $ host $ port $ smoke)

let () = exit (Cmd.eval' cmd)
